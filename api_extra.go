package adaptivemm

import (
	"adaptivemm/internal/core"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/opt"
	"adaptivemm/internal/workload"
)

// DesignMarginalsExact returns the provably optimal strategy for a
// workload that is a union of marginals over the listed attribute subsets
// (e.g. [][]int{{0,1},{0,2},{1,2}} for the 2-way marginals of a
// 3-attribute domain). It exploits the closed-form spectral structure of
// marginal workloads — no O(n³) work — and its error meets the Thm 2 lower
// bound exactly.
func DesignMarginalsExact(subsets [][]int, dims ...int) (*Strategy, error) {
	res, err := core.DesignMarginals(domain.MustShape(dims...), subsets)
	if err != nil {
		return nil, err
	}
	return newStrategy("EigenDesign(marginals, exact)", res.Strategy, res.Eigenvalues)
}

// Refine polishes a strategy toward the exact optimum of the strategy
// selection problem by projected gradient descent (practical for small
// domains; the problem is convex in AᵀA so with the Design output as the
// start the result approximates the global optimum). Use it to certify
// how far from optimal a design is, as the paper does in Example 4.
func Refine(w *Workload, s *Strategy, iterations int) (*Strategy, error) {
	dense, err := s.mech.StrategyDense()
	if err != nil {
		return nil, err
	}
	refined, err := opt.RefineStrategy(w.Gram(), dense, opt.RefineOptions{Iterations: iterations})
	if err != nil {
		return nil, err
	}
	return newStrategy(s.name+"+refined", refined, s.eigenvalues)
}

// DesignL1 runs the ε-differential-privacy (Laplace / L1) variant of the
// weighting program over a design basis (Sec 3.5). basisRows may be nil to
// use the workload's eigen-queries, though for L1 a structured basis such
// as the wavelet often works better (as the paper notes).
func DesignL1(w *Workload, basisRows [][]float64) (*Strategy, error) {
	o := core.Options{L1: true}
	if basisRows != nil {
		o.DesignBasis = linalg.NewFromRows(basisRows)
	}
	res, err := core.Design(w, o)
	if err != nil {
		return nil, err
	}
	return newStrategy("EigenDesign(L1)", res.Strategy, res.Eigenvalues)
}

// AnswerLaplace performs one pure ε-differentially private release using
// Laplace noise calibrated to the strategy's L1 sensitivity.
func (s *Strategy) AnswerLaplace(w *Workload, x []float64, epsilon float64, r NoiseSource) ([]float64, error) {
	xhat, err := s.mech.EstimateLaplace(x, epsilon, r)
	if err != nil {
		return nil, err
	}
	return s.mech.WorkloadAnswers(w, xhat)
}

// ErrorL1 returns the analytic RMSE of answering w with this strategy
// under the ε-matrix mechanism (Laplace noise, L1 sensitivity).
func (s *Strategy) ErrorL1(w *Workload, epsilon float64) (float64, error) {
	return mm.ErrorL1(w, s.mech.Strategy(), epsilon)
}

// EstimateNonNegative is Estimate followed by projection onto non-negative
// cell counts (free post-processing that often reduces error on sparse
// data). Like Estimate, it refuses sharded strategies.
func (s *Strategy) EstimateNonNegative(x []float64, p Privacy, r NoiseSource) ([]float64, error) {
	if err := s.requireJointEstimate(); err != nil {
		return nil, err
	}
	return s.mech.EstimateGaussianNonNegative(x, p, r)
}

// QueryVariances returns the exact noise variance of each query answer of
// an explicit workload under this strategy; combine with
// ConfidenceInterval for error bars on released answers.
func (s *Strategy) QueryVariances(w *Workload, p Privacy) ([]float64, error) {
	return s.mech.QueryVariances(w, p)
}

// ConfidenceInterval returns the half-width of an exact two-sided Gaussian
// confidence interval at the given level for an answer with the given
// variance.
func ConfidenceInterval(variance, level float64) (float64, error) {
	return mm.ConfidenceInterval(variance, level)
}

// FromRowsStrategy wraps explicit strategy query rows (e.g. a hand-built
// wavelet or hierarchical matrix) as a usable Strategy, preparing its
// least-squares inference operator.
func FromRowsStrategy(rows [][]float64) (*Strategy, error) {
	return newStrategy("custom", linalg.NewFromRows(rows), nil)
}

// AllPredicate returns the workload of all nonempty predicate queries
// (implicit; see the workload package for the normalization note).
func AllPredicate(dims ...int) *Workload {
	return workload.AllPredicate(domain.MustShape(dims...))
}

// AllMarginals returns the union of k-way marginals for every k.
func AllMarginals(dims ...int) *Workload {
	return workload.AllMarginals(domain.MustShape(dims...))
}
