// Benchmarks regenerating every table and figure of the paper's evaluation
// (at the fast "small" scale; use cmd/ambench -scale full for paper sizes)
// plus micro-benchmarks of the pipeline's hot stages. Run with:
//
//	go test -bench=. -benchmem
package adaptivemm

import (
	"fmt"
	"math/rand"
	"testing"

	"adaptivemm/internal/core"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/experiments"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

var benchCfg = experiments.Config{Scale: "small", Seed: 1, Trials: 2}

// benchExperiment regenerates one paper artifact per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkExample4(b *testing.B) { benchExperiment(b, "example4") } // Fig 2
func BenchmarkFig3a(b *testing.B)    { benchExperiment(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)    { benchExperiment(b, "fig3b") }
func BenchmarkFig3c(b *testing.B)    { benchExperiment(b, "fig3c") }
func BenchmarkFig3d(b *testing.B)    { benchExperiment(b, "fig3d") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkFig4(b *testing.B)     { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// --- Micro-benchmarks of the pipeline stages ---

func BenchmarkEigenDesign64(b *testing.B)  { benchDesign(b, 64) }
func BenchmarkEigenDesign128(b *testing.B) { benchDesign(b, 128) }
func BenchmarkEigenDesign256(b *testing.B) { benchDesign(b, 256) }

func benchDesign(b *testing.B, n int) {
	w := workload.AllRange(domain.MustShape(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Design(w, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenSeparation256(b *testing.B) {
	w := workload.AllRange(domain.MustShape(256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EigenSeparation(w, 8, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrincipalVectors256(b *testing.B) {
	w := workload.AllRange(domain.MustShape(256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PrincipalVectors(w, 16, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFirstOrderDesign256(b *testing.B) {
	w := workload.AllRange(domain.MustShape(256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Design(w, core.Options{Solver: core.SolverFirstOrder}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEigen128(b *testing.B) {
	g := workload.AllRange(domain.MustShape(128)).Gram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.SymEigen(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEigen512(b *testing.B) {
	g := workload.AllRange(domain.MustShape(512)).Gram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.SymEigen(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadError256(b *testing.B) {
	w := workload.AllRange(domain.MustShape(256))
	res, err := core.Design(w, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	p := mm.Privacy{Epsilon: 0.5, Delta: 1e-4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mm.Error(w, res.Strategy, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMechanismAnswer(b *testing.B) {
	w := workload.Marginals(domain.MustShape(8, 8, 2), 2)
	res, err := core.Design(w, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	mech, err := mm.NewMechanism(res.Strategy)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 128)
	for i := range x {
		x[i] = float64(i)
	}
	p := mm.Privacy{Epsilon: 0.5, Delta: 1e-4}
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mech.AnswerGaussian(w, x, p, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGramAllRange512(b *testing.B) {
	shape := domain.MustShape(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.AllRange(shape).Gram()
	}
}

// --- Dense vs operator inference, and design at scale ---

// BenchmarkEstimate compares one private release (noisy strategy answers
// + least-squares inference) on the dense pseudo-inverse path against the
// matrix-free operator path, over the same hierarchical strategy at
// n ∈ {256, 1024, 4096}. The dense arm materializes the strategy and its
// pseudo-inverse (setup, untimed) and pays O(m·n) per release; the
// operator arm runs CGLS with O(nnz) matvecs. The dense arm is skipped at
// 4096 where the O(n³) pseudo-inverse setup is no longer reasonable —
// that asymmetry is the point.
func BenchmarkEstimate(b *testing.B) {
	p := mm.Privacy{Epsilon: 0.5, Delta: 1e-4}
	for _, n := range []int{256, 1024, 4096} {
		op := strategy.HierarchicalOperator(domain.MustShape(n), 2)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i % 13)
		}
		if n <= 1024 {
			b.Run(fmt.Sprintf("dense/%d", n), func(b *testing.B) {
				mech, err := mm.NewMechanism(linalg.ToDense(op))
				if err != nil {
					b.Fatal(err)
				}
				if mech.MatrixFree() {
					b.Fatal("expected dense pseudo-inverse path")
				}
				r := rand.New(rand.NewSource(1))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := mech.EstimateGaussian(x, p, r); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("operator/%d", n), func(b *testing.B) {
			mech, err := mm.NewMechanismOp(op)
			if err != nil {
				b.Fatal(err)
			}
			if !mech.MatrixFree() {
				b.Fatal("expected matrix-free path")
			}
			r := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mech.EstimateGaussian(x, p, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDesign measures strategy design on 2-D all-range workloads at
// n ∈ {256, 1024, 4096} cells via the principal-vector optimization: the
// two smaller sizes run the dense pipeline, 4096 crosses the structured
// threshold and runs the factored Kronecker pipeline — the configuration
// the server uses past the dense cap.
func BenchmarkDesign(b *testing.B) {
	for _, d := range []int{16, 32, 64} {
		n := d * d
		b.Run(fmt.Sprintf("allrange-%dx%d/%d", d, d, n), func(b *testing.B) {
			w := workload.AllRange(domain.MustShape(d, d))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.PrincipalVectors(w, 16, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
