package adaptivemm

import (
	"math"
	"math/rand"
	"testing"
)

func TestDesignMarginalsExactMeetsBound(t *testing.T) {
	w := Marginals(2, 4, 4, 2)
	s, err := DesignMarginalsExact([][]int{{0, 1}, {0, 2}, {1, 2}}, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.Error(w, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := LowerBound(w, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e/lb-1) > 1e-6 {
		t.Fatalf("exact marginal design %g vs bound %g", e, lb)
	}
}

func TestRefineImprovesOrMatches(t *testing.T) {
	w := Prefix(12)
	s, err := Design(w)
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.Error(w, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Refine(w, s, 300)
	if err != nil {
		t.Fatal(err)
	}
	after, err := refined.Error(w, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if after > before*(1+1e-9) {
		t.Fatalf("refine worsened: %g -> %g", before, after)
	}
}

func TestDesignL1AndAnswerLaplace(t *testing.T) {
	w := AllRange(16)
	wav := make([][]float64, 0)
	// Use the designed-strategy path with nil basis (eigen-queries).
	_ = wav
	s, err := DesignL1(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.ErrorL1(w, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 || math.IsNaN(e) {
		t.Fatalf("L1 error = %g", e)
	}
	x := make([]float64, 16)
	for i := range x {
		x[i] = 5
	}
	r := rand.New(rand.NewSource(1))
	ans, err := s.AnswerLaplace(w, x, 1.0, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != w.NumQueries() {
		t.Fatalf("answers = %d", len(ans))
	}
}

func TestEstimateNonNegativePublic(t *testing.T) {
	w := Prefix(8)
	s, err := Design(w)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 8)
	x[2] = 30
	r := rand.New(rand.NewSource(2))
	xhat, err := s.EstimateNonNegative(x, testPrivacy, r)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range xhat {
		if v < 0 {
			t.Fatalf("negative cell %d = %g", i, v)
		}
	}
}

func TestQueryVariancesAndCI(t *testing.T) {
	w := Marginals(1, 4, 4)
	s, err := Design(w)
	if err != nil {
		t.Fatal(err)
	}
	vars, err := s.QueryVariances(w, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != w.NumQueries() {
		t.Fatalf("variances = %d", len(vars))
	}
	hw, err := ConfidenceInterval(vars[0], 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if hw <= 0 {
		t.Fatalf("CI half-width = %g", hw)
	}
}

func TestAllPredicateAndAllMarginalsBuilders(t *testing.T) {
	p := AllPredicate(5)
	if p.NumQueries() != 31 {
		t.Fatalf("all-predicate m = %d", p.NumQueries())
	}
	m := AllMarginals(2, 3)
	// k=0:1, k=1: 2+3, k=2: 6 → 12.
	if m.NumQueries() != 12 {
		t.Fatalf("all-marginals m = %d", m.NumQueries())
	}
	// Designing for the implicit all-predicate workload must work.
	s, err := Design(p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.Error(p, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := LowerBound(p, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if e < lb || e > 1.3*lb {
		t.Fatalf("all-predicate design %g vs bound %g", e, lb)
	}
}

// Sharded plans refuse the joint-histogram entry points with actionable
// errors, answer only the workload they were planned for, and report
// their shards through PlanInfo.
func TestShardedStrategyGuards(t *testing.T) {
	w := Marginals(1, 16, 16)
	s, err := DesignAuto(w, PlanHints{})
	if err != nil {
		t.Fatal(err)
	}
	info, ok := s.PlanInfo()
	if !ok || info.Generator != "sharded" || len(info.Shards) != 2 {
		t.Fatalf("plan info = %+v ok=%v, want sharded with 2 shards", info, ok)
	}
	x := make([]float64, w.Cells())
	p := Privacy{Epsilon: 0.5, Delta: 1e-4}
	r := rand.New(rand.NewSource(4))
	if _, err := s.Estimate(x, p, r); err == nil {
		t.Fatal("Estimate must refuse sharded strategies (no joint histogram)")
	}
	if _, err := s.EstimateNonNegative(x, p, r); err == nil {
		t.Fatal("EstimateNonNegative must refuse sharded strategies")
	}
	if _, err := s.Answer(w, x, p, r); err != nil {
		t.Fatalf("Answer on the planned workload: %v", err)
	}
	// Same query count, different workload: the shard row segments do not
	// apply, so the release must be refused rather than mislabeled.
	other := Marginals(1, 16, 16)
	if _, err := s.Answer(other, x, p, r); err == nil {
		t.Fatal("Answer must refuse a workload the plan was not made for")
	}
	// A monolithic plan of the same workload still estimates.
	mono, err := DesignAuto(w, PlanHints{MaxShards: -1})
	if err != nil {
		t.Fatal(err)
	}
	if mi, _ := mono.PlanInfo(); mi.Generator == "sharded" {
		t.Fatalf("MaxShards -1 planned %q", mi.Generator)
	}
	if _, err := mono.Estimate(x, p, r); err != nil {
		t.Fatalf("monolithic Estimate: %v", err)
	}
}
