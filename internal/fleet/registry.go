package fleet

import (
	"strings"
	"sync"
	"time"
)

// Health-probe backoff: a worker's first failure schedules a re-probe
// after baseBackoff; each consecutive failure doubles the delay up to
// maxBackoff, so a dead worker costs one probe per backoff window
// instead of one timeout per shard.
const (
	baseBackoff = 250 * time.Millisecond
	maxBackoff  = 30 * time.Second
)

// Registry tracks the fleet's workers and their health. Routing treats
// a down worker as usable again once its probe is due — the next shard
// request doubles as the probe, so recovery needs no side channel —
// and Client.ProbeDown additionally re-probes idle fleets in the
// background.
type Registry struct {
	mu      sync.Mutex
	workers map[string]*workerState
	urls    []string
	now     func() time.Time
}

type workerState struct {
	down      bool
	failures  int // consecutive failures
	lastErr   string
	nextProbe time.Time
	served    int64 // successful requests routed here (shards and probes)
}

// WorkerStatus is a point-in-time health snapshot, shaped for the
// GET /fleet response.
type WorkerStatus struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Failures int    `json:"failures,omitempty"`
	// LastError is the most recent failure, kept after recovery until
	// the next failure overwrites it.
	LastError string `json:"lastError,omitempty"`
	// NextProbeMillis is how long until a down worker is probed again
	// (0 when healthy or already due).
	NextProbeMillis int64 `json:"nextProbeMillis,omitempty"`
	Served          int64 `json:"served"`
}

// NewRegistry tracks the given worker base URLs (trailing slashes are
// normalized away; duplicates collapse). All workers start healthy.
func NewRegistry(urls []string) *Registry {
	g := &Registry{workers: map[string]*workerState{}, now: time.Now}
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		if _, ok := g.workers[u]; ok {
			continue
		}
		g.workers[u] = &workerState{}
		g.urls = append(g.urls, u)
	}
	return g
}

// SetClock injects a deterministic clock for tests.
func (g *Registry) SetClock(now func() time.Time) {
	g.mu.Lock()
	g.now = now
	g.mu.Unlock()
}

// URLs returns the registered worker URLs in registration order.
func (g *Registry) URLs() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.urls...)
}

// Usable reports whether a shard request may be routed to url: the
// worker is healthy, or it is down and its backoff has elapsed (the
// request itself is the probe).
func (g *Registry) Usable(url string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[url]
	if !ok {
		return false
	}
	return !w.down || !g.now().Before(w.nextProbe)
}

// probeDue reports whether url is down with an elapsed backoff — the
// candidates ProbeDown re-checks.
func (g *Registry) probeDue(url string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[url]
	return ok && w.down && !g.now().Before(w.nextProbe)
}

// MarkUp records a successful request to url, clearing its failure
// state.
func (g *Registry) MarkUp(url string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[url]
	if !ok {
		return
	}
	w.down = false
	w.failures = 0
	w.nextProbe = time.Time{}
	w.served++
}

// MarkDown records a failed request to url and schedules its next probe
// with exponential backoff.
func (g *Registry) MarkDown(url string, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[url]
	if !ok {
		return
	}
	w.down = true
	w.failures++
	if err != nil {
		w.lastErr = err.Error()
	}
	delay := baseBackoff
	for i := 1; i < w.failures && delay < maxBackoff; i++ {
		delay *= 2
	}
	if delay > maxBackoff {
		delay = maxBackoff
	}
	w.nextProbe = g.now().Add(delay)
}

// Status snapshots every worker's health in registration order.
func (g *Registry) Status() []WorkerStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.now()
	out := make([]WorkerStatus, 0, len(g.urls))
	for _, u := range g.urls {
		w := g.workers[u]
		st := WorkerStatus{
			URL:       u,
			Healthy:   !w.down,
			Failures:  w.failures,
			LastError: w.lastErr,
			Served:    w.served,
		}
		if w.down && w.nextProbe.After(now) {
			st.NextProbeMillis = int64(w.nextProbe.Sub(now) / time.Millisecond)
		}
		out = append(out, st)
	}
	return out
}
