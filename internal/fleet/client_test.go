package fleet

import (
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// shardHandler doubles the decoded vector, recording how many requests
// it served.
func shardHandler(served *int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		blob, _ := io.ReadAll(r.Body)
		y := make([]float64, 4)
		if err := DecodeVectorInto(y, blob); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for i := range y {
			y[i] *= 2
		}
		*served++
		w.Write(AppendVector(nil, y))
	}
}

func TestClientInferShard(t *testing.T) {
	var served1, served2 int
	w1 := httptest.NewServer(shardHandler(&served1))
	defer w1.Close()
	w2 := httptest.NewServer(shardHandler(&served2))
	defer w2.Close()

	c := NewClient([]string{w1.URL, w2.URL}, nil, 0)
	y := []float64{1, 2, 3, 4}
	dst := make([]float64, 4)
	if err := c.InferShard(context.Background(), nil, "abc123", 0, dst, y); err != nil {
		t.Fatalf("InferShard: %v", err)
	}
	for i := range y {
		if math.Float64bits(dst[i]) != math.Float64bits(2*y[i]) {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], 2*y[i])
		}
	}
	if served1+served2 != 1 {
		t.Fatalf("one request served %d times", served1+served2)
	}
	if st := c.Stats(); st.Remote != 1 || st.Retries != 0 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// A dead first-choice worker must fail over to the next worker on the
// ring, mark the dead one down, and still return the right answer.
func TestClientFailover(t *testing.T) {
	var served int
	alive := httptest.NewServer(shardHandler(&served))
	defer alive.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down for maintenance", http.StatusServiceUnavailable)
	}))
	defer dead.Close()

	c := NewClient([]string{alive.URL, dead.URL}, nil, 0)
	// Find a (plan, shard) the dead worker owns so failover is exercised.
	// The worker URLs carry random httptest ports, so no fixed key is
	// guaranteed to land on the dead worker — search until one does.
	shard := -1
	for i := 0; i < 1<<16; i++ {
		if c.Ring.Place(ShardKey("plan", i)) == dead.URL {
			shard = i
			break
		}
	}
	if shard < 0 {
		t.Fatal("dead worker owns none of 65536 shards; ring is degenerate")
	}
	dst := make([]float64, 4)
	if err := c.InferShard(context.Background(), nil, "plan", shard, dst, []float64{1, 2, 3, 4}); err != nil {
		t.Fatalf("InferShard with failover: %v", err)
	}
	if served != 1 {
		t.Fatalf("live worker served %d requests, want 1", served)
	}
	st := c.Stats()
	if st.Remote != 1 || st.Retries != 1 || st.Failures != 1 {
		t.Fatalf("stats = %+v, want one remote, one retry, one failure", st)
	}
	if c.Registry.Usable(dead.URL) {
		t.Fatal("failed worker still usable with a fresh backoff")
	}
}

// With every worker down and backed off, InferShard returns ErrNoWorkers
// without a network attempt.
func TestClientNoUsableWorkers(t *testing.T) {
	c := NewClient([]string{"http://a", "http://b"}, nil, 50*time.Millisecond)
	now := time.Unix(1000, 0)
	c.Registry.SetClock(func() time.Time { return now })
	c.Registry.MarkDown("http://a", errors.New("x"))
	c.Registry.MarkDown("http://b", errors.New("x"))
	err := c.InferShard(context.Background(), nil, "p", 0, make([]float64, 1), []float64{1})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// A worker returning a mangled body is a failed attempt — the wire
// checksum downgrades corruption to unavailability.
func TestClientRejectsCorruptResponse(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("AMFVgarbage"))
	}))
	defer bad.Close()
	c := NewClient([]string{bad.URL}, nil, 0)
	err := c.InferShard(context.Background(), nil, "p", 0, make([]float64, 4), []float64{1, 2, 3, 4})
	if err == nil {
		t.Fatal("corrupt response accepted")
	}
	if c.Registry.Usable(bad.URL) {
		t.Fatal("corrupting worker not marked down")
	}
}

// ProbeDown brings a recovered worker back without any shard traffic.
func TestClientProbeDown(t *testing.T) {
	healthy := false
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/fleet") {
			http.NotFound(w, r)
			return
		}
		if !healthy {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"mode":"worker"}`))
	}))
	defer ts.Close()

	c := NewClient([]string{ts.URL}, nil, 0)
	now := time.Unix(1000, 0)
	c.Registry.SetClock(func() time.Time { return now })
	c.Registry.MarkDown(ts.URL, errors.New("initial failure"))

	// Backoff not yet elapsed: no probe happens.
	c.ProbeDown(context.Background())
	// Backoff elapsed but worker still sick: probed, stays down.
	now = now.Add(baseBackoff)
	c.ProbeDown(context.Background())
	if len(c.Registry.Status()) != 1 || c.Registry.Status()[0].Healthy {
		t.Fatal("sick worker marked healthy by probe")
	}
	// Worker recovers; next due probe brings it back.
	healthy = true
	now = now.Add(2 * baseBackoff)
	c.ProbeDown(context.Background())
	if !c.Registry.Status()[0].Healthy {
		t.Fatal("recovered worker not marked healthy by probe")
	}
}
