package fleet

import (
	"math"
	"testing"
)

func TestWireRoundTripExactBits(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1.5, -math.Pi, math.MaxFloat64,
		math.SmallestNonzeroFloat64, math.Inf(1), math.Inf(-1), math.NaN()}
	blob := AppendVector(nil, vals)
	got := make([]float64, len(vals))
	if err := DecodeVectorInto(got, blob); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: bits %016x round-tripped to %016x",
				i, math.Float64bits(vals[i]), math.Float64bits(got[i]))
		}
	}
}

func TestWireRejectsDamage(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	blob := AppendVector(nil, vals)
	dst := make([]float64, len(vals))

	cases := map[string][]byte{
		"truncated":   blob[:len(blob)/2],
		"padded":      append(append([]byte(nil), blob...), 0),
		"bad magic":   append([]byte("XXXX"), blob[4:]...),
		"empty":       nil,
		"header only": blob[:5],
	}
	for name, damaged := range cases {
		if err := DecodeVectorInto(dst, damaged); err == nil {
			t.Fatalf("%s body decoded without error", name)
		}
	}

	// One flipped payload bit must fail the checksum.
	corrupt := append([]byte(nil), blob...)
	corrupt[len(corrupt)/2] ^= 0x01
	if err := DecodeVectorInto(dst, corrupt); err == nil {
		t.Fatal("corrupted body decoded without error")
	}

	// Count mismatch: the caller knows the dimensions.
	if err := DecodeVectorInto(make([]float64, 3), blob); err == nil {
		t.Fatal("length-3 decode of a 4-vector succeeded")
	}
}
