package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// DefaultShardTimeout bounds one shard request attempt when the client
// is not configured otherwise.
const DefaultShardTimeout = 5 * time.Second

// ErrNoWorkers reports that every fleet worker was down with an
// unexpired backoff — the request never left the coordinator. The
// caller's local fallback turns this into a slower-but-served release.
var ErrNoWorkers = errors.New("fleet: no usable worker")

// Client routes per-shard inference requests to the fleet: placement by
// consistent hash of (planID, shard), failover along the ring's
// deterministic walk order, health bookkeeping through the registry.
// All fields are set at construction and never mutated, so one client
// serves every plan's releases concurrently.
type Client struct {
	Registry *Registry
	Ring     *Ring
	// HTTP performs the requests; its Transport is where tests inject
	// a FaultRoundTripper. nil falls back to http.DefaultClient.
	HTTP *http.Client
	// Timeout bounds each attempt (≤0 selects DefaultShardTimeout).
	Timeout time.Duration

	remote   atomic.Int64 // shards answered by a worker
	retries  atomic.Int64 // extra attempts past each shard's first
	failures atomic.Int64 // failed attempts (marked the worker down)
}

// NewClient wires a registry and ring over one worker set.
func NewClient(workers []string, hc *http.Client, timeout time.Duration) *Client {
	reg := NewRegistry(workers)
	return &Client{Registry: reg, Ring: NewRing(reg.URLs(), 0), HTTP: hc, Timeout: timeout}
}

// Stats is a snapshot of the client's shard-routing counters.
type Stats struct {
	// Remote counts shards answered by a fleet worker.
	Remote int64 `json:"remote"`
	// Retries counts failover attempts past each shard's first.
	Retries int64 `json:"retries"`
	// Failures counts failed attempts (each marked its worker down).
	Failures int64 `json:"failures"`
}

// Stats snapshots the routing counters.
func (c *Client) Stats() Stats {
	return Stats{
		Remote:   c.remote.Load(),
		Retries:  c.retries.Load(),
		Failures: c.failures.Load(),
	}
}

// InferShard asks the fleet to solve one shard: POST the measurement
// vector to the worker owning (planID, shard), walking the ring's
// failover order past down or failing workers. It returns nil with dst
// filled on the first success; when every usable worker fails (or none
// is usable) it returns the last error for the caller to fall back on.
func (c *Client) InferShard(ctx context.Context, planID string, shard int, dst, y []float64) error {
	seq := c.Ring.Sequence(ShardKey(planID, shard))
	body := AppendVector(make([]byte, 0, len(vecMagic)+10+8*len(y)+8), y)
	lastErr := ErrNoWorkers
	tried := 0
	for _, url := range seq {
		if !c.Registry.Usable(url) {
			continue
		}
		tried++
		if tried > 1 {
			c.retries.Add(1)
		}
		err := c.post(ctx, url, planID, shard, body, dst)
		if err == nil {
			c.Registry.MarkUp(url)
			c.remote.Add(1)
			return nil
		}
		c.Registry.MarkDown(url, err)
		c.failures.Add(1)
		lastErr = err
	}
	return fmt.Errorf("fleet: shard %d of plan %s: %w", shard, planID, lastErr)
}

// post performs one attempt against one worker.
func (c *Client) post(ctx context.Context, workerURL, planID string, shard int, body []byte, dst []float64) error {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = DefaultShardTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		workerURL+"/shards/"+planID+"/"+strconv.Itoa(shard), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	want := len(vecMagic) + 10 + 8*len(dst) + 8
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("worker %s: status %d: %s", workerURL, resp.StatusCode, bytes.TrimSpace(msg))
	}
	// Read one byte past the maximum valid frame so padding is detected
	// as an oversized (invalid) vector rather than silently dropped.
	blob, err := io.ReadAll(io.LimitReader(resp.Body, int64(want)+1))
	if err != nil {
		return fmt.Errorf("worker %s: reading shard estimate: %w", workerURL, err)
	}
	if err := DecodeVectorInto(dst, blob); err != nil {
		return fmt.Errorf("worker %s: %w", workerURL, err)
	}
	return nil
}

// ProbeDown re-probes every down worker whose backoff has elapsed with
// a GET {worker}/fleet health check. Coordinators run it periodically
// so an idle fleet still notices recovered workers; under traffic the
// shard requests themselves are the probes.
func (c *Client) ProbeDown(ctx context.Context) {
	for _, url := range c.Registry.URLs() {
		if !c.Registry.probeDue(url) {
			continue
		}
		c.probe(ctx, url)
	}
}

func (c *Client) probe(ctx context.Context, workerURL string) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = DefaultShardTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, workerURL+"/fleet", nil)
	if err != nil {
		c.Registry.MarkDown(workerURL, err)
		return
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		c.Registry.MarkDown(workerURL, err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.Registry.MarkDown(workerURL, fmt.Errorf("health probe: status %d", resp.StatusCode))
		return
	}
	c.Registry.MarkUp(workerURL)
}
