package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"adaptivemm/internal/obs"
)

// DefaultShardTimeout bounds one shard request attempt when the client
// is not configured otherwise.
const DefaultShardTimeout = 5 * time.Second

// TraceHeader carries the coordinator's release trace ID on outgoing
// shard requests, so a worker can record its side of the work as a
// child trace.
const TraceHeader = "X-AM-Trace"

// ErrNoWorkers reports that every fleet worker was down with an
// unexpired backoff — the request never left the coordinator. The
// caller's local fallback turns this into a slower-but-served release.
var ErrNoWorkers = errors.New("fleet: no usable worker")

// Client routes per-shard inference requests to the fleet: placement by
// consistent hash of (planID, shard), failover along the ring's
// deterministic walk order, health bookkeeping through the registry.
// All fields are set at construction and never mutated, so one client
// serves every plan's releases concurrently.
type Client struct {
	Registry *Registry
	Ring     *Ring
	// HTTP performs the requests; its Transport is where tests inject
	// a FaultRoundTripper. nil falls back to http.DefaultClient.
	HTTP *http.Client
	// Timeout bounds each attempt (≤0 selects DefaultShardTimeout).
	Timeout time.Duration

	// The routing counters are obs values so one atomic backs Stats(),
	// GET /fleet and the /metrics exposition (a coordinator adopts them
	// into its registry with RegisterCounter — no duplicated counters to
	// drift apart). NewClient fills them; they must not be replaced once
	// traffic is flowing.
	Remote   *obs.Counter // shards answered by a worker
	Retries  *obs.Counter // extra attempts past each shard's first
	Failures *obs.Counter // failed attempts (marked the worker down)
	// RPCSeconds observes the latency of each shard POST attempt,
	// successful or not. NewClient fills it with a detached histogram;
	// a coordinator may swap in a registry-backed one before traffic.
	RPCSeconds *obs.Histogram
}

// NewClient wires a registry and ring over one worker set.
func NewClient(workers []string, hc *http.Client, timeout time.Duration) *Client {
	reg := NewRegistry(workers)
	return &Client{
		Registry: reg, Ring: NewRing(reg.URLs(), 0), HTTP: hc, Timeout: timeout,
		Remote: new(obs.Counter), Retries: new(obs.Counter), Failures: new(obs.Counter),
		RPCSeconds: obs.NewHistogram(obs.DefTimeBuckets),
	}
}

// Stats is a snapshot of the client's shard-routing counters.
type Stats struct {
	// Remote counts shards answered by a fleet worker.
	Remote int64 `json:"remote"`
	// Retries counts failover attempts past each shard's first.
	Retries int64 `json:"retries"`
	// Failures counts failed attempts (each marked its worker down).
	Failures int64 `json:"failures"`
}

// Stats snapshots the routing counters.
func (c *Client) Stats() Stats {
	return Stats{
		Remote:   c.Remote.Value(),
		Retries:  c.Retries.Value(),
		Failures: c.Failures.Value(),
	}
}

// InferShard asks the fleet to solve one shard: POST the measurement
// vector to the worker owning (planID, shard), walking the ring's
// failover order past down or failing workers. It returns nil with dst
// filled on the first success; when every usable worker fails (or none
// is usable) it returns the last error for the caller to fall back on.
// tr, when non-nil, is the coordinator's release trace: its ID rides
// the TraceHeader so the worker can record a child trace.
func (c *Client) InferShard(ctx context.Context, tr *obs.Trace, planID string, shard int, dst, y []float64) error {
	seq := c.Ring.Sequence(ShardKey(planID, shard))
	body := AppendVector(make([]byte, 0, len(vecMagic)+10+8*len(y)+8), y)
	lastErr := ErrNoWorkers
	tried := 0
	for _, url := range seq {
		if !c.Registry.Usable(url) {
			continue
		}
		tried++
		if tried > 1 {
			c.Retries.Inc()
		}
		err := c.post(ctx, tr, url, planID, shard, body, dst)
		if err == nil {
			c.Registry.MarkUp(url)
			c.Remote.Inc()
			return nil
		}
		c.Registry.MarkDown(url, err)
		c.Failures.Inc()
		lastErr = err
	}
	return fmt.Errorf("fleet: shard %d of plan %s: %w", shard, planID, lastErr)
}

// post performs one attempt against one worker.
func (c *Client) post(ctx context.Context, tr *obs.Trace, workerURL, planID string, shard int, body []byte, dst []float64) error {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = DefaultShardTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	t0 := time.Now()
	defer c.RPCSeconds.ObserveSince(t0)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		workerURL+"/shards/"+planID+"/"+strconv.Itoa(shard), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if tr != nil {
		req.Header.Set(TraceHeader, tr.ID)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	want := len(vecMagic) + 10 + 8*len(dst) + 8
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("worker %s: status %d: %s", workerURL, resp.StatusCode, bytes.TrimSpace(msg))
	}
	// Read one byte past the maximum valid frame so padding is detected
	// as an oversized (invalid) vector rather than silently dropped.
	blob, err := io.ReadAll(io.LimitReader(resp.Body, int64(want)+1))
	if err != nil {
		return fmt.Errorf("worker %s: reading shard estimate: %w", workerURL, err)
	}
	if err := DecodeVectorInto(dst, blob); err != nil {
		return fmt.Errorf("worker %s: %w", workerURL, err)
	}
	return nil
}

// ProbeDown re-probes every down worker whose backoff has elapsed with
// a GET {worker}/fleet health check. Coordinators run it periodically
// so an idle fleet still notices recovered workers; under traffic the
// shard requests themselves are the probes.
func (c *Client) ProbeDown(ctx context.Context) {
	for _, url := range c.Registry.URLs() {
		if !c.Registry.probeDue(url) {
			continue
		}
		c.probe(ctx, url)
	}
}

func (c *Client) probe(ctx context.Context, workerURL string) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = DefaultShardTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, workerURL+"/fleet", nil)
	if err != nil {
		c.Registry.MarkDown(workerURL, err)
		return
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		c.Registry.MarkDown(workerURL, err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.Registry.MarkDown(workerURL, fmt.Errorf("health probe: status %d", resp.StatusCode))
		return
	}
	c.Registry.MarkUp(workerURL)
}
