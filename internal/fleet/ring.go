// Package fleet is the distributed-release transport: a coordinator
// amserve routes per-shard inference of sharded plans to worker
// amserves over HTTP. The package owns the pieces that make that safe
// and deterministic — consistent-hash shard placement (Ring), worker
// health tracking with exponential probe backoff (Registry), the
// retrying shard client (Client) with its self-verifying binary vector
// wire format, and a deterministic fault-injection transport
// (FaultRoundTripper) for testing every failure mode.
//
// The wire contract is the plan ID: the content address
// (planstore.EntryID) of the coordinator's cache key for the plan. A
// worker that does not hold the plan fetches it from the coordinator's
// GET /plans/{id}/raw and verifies the bytes against the ID, so the
// transfer needs no further trust. Shard placement hashes (planID,
// shard) onto the ring; the solve itself is deterministic, so a remote
// shard returns bit-identical estimates to a local one as long as the
// float bits round-trip exactly — which the binary vector format
// guarantees (raw IEEE-754 bits, FNV-64a checksummed).
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per worker. More replicas
// smooth the key distribution and shrink the fraction of keys that move
// on membership change toward the ideal 1/N.
const DefaultReplicas = 128

// Ring is a consistent-hash ring over worker URLs. Construction is a
// pure function of the worker set (workers are sorted, hashing is
// FNV-64a, no randomness), so two coordinators — or one coordinator
// across restarts — place every shard identically.
type Ring struct {
	points  []ringPoint
	workers []string
}

type ringPoint struct {
	hash   uint64
	worker int
}

// NewRing builds a ring with replicas virtual nodes per worker (≤0
// selects DefaultReplicas). The input order of workers is irrelevant.
func NewRing(workers []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	ws := append([]string(nil), workers...)
	sort.Strings(ws)
	r := &Ring{workers: ws, points: make([]ringPoint, 0, len(ws)*replicas)}
	for wi, w := range ws {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(w + "#" + strconv.Itoa(v)),
				worker: wi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Colliding virtual nodes are ordered by worker index (already
		// sorted by URL), keeping ties deterministic too.
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// ShardKey is the placement key for one shard of one plan.
func ShardKey(planID string, shard int) string {
	return planID + "/" + strconv.Itoa(shard)
}

// Workers returns the ring's worker set in its canonical (sorted)
// order.
func (r *Ring) Workers() []string { return r.workers }

// Place returns the worker that owns key, or "" on an empty ring.
func (r *Ring) Place(key string) string {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns every worker in ring-walk order starting at key's
// position: the first entry owns the key, and the rest are the
// deterministic failover order a client tries when earlier workers are
// down.
func (r *Ring) Sequence(key string) []string {
	if len(r.workers) == 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	seen := make([]bool, len(r.workers))
	out := make([]string, 0, len(r.workers))
	for k := 0; k < len(r.points) && len(out) < len(r.workers); k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, r.workers[p.worker])
		}
	}
	return out
}
