package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = ShardKey(fmt.Sprintf("plan%04d", i/4), i%4)
	}
	return keys
}

// Placement must be a pure function of the worker set: input order and
// reconstruction (a coordinator restart) cannot move a single key.
func TestRingPlacementDeterministic(t *testing.T) {
	workers := []string{"http://c", "http://a", "http://b"}
	shuffled := []string{"http://b", "http://c", "http://a"}
	r1 := NewRing(workers, 0)
	r2 := NewRing(shuffled, 0)
	r3 := NewRing(workers, 0) // the "restart"
	for _, key := range ringKeys(1000) {
		p := r1.Place(key)
		if got := r2.Place(key); got != p {
			t.Fatalf("key %q: input order changed placement: %q vs %q", key, p, got)
		}
		if got := r3.Place(key); got != p {
			t.Fatalf("key %q: reconstruction changed placement: %q vs %q", key, p, got)
		}
	}
}

// A worker joining moves only the keys it takes ownership of — roughly
// 1/N of them — and every moved key moves TO the new worker. Nothing
// reshuffles between the old workers.
func TestRingJoinMovesOnlyToNewWorker(t *testing.T) {
	old := []string{"http://a", "http://b", "http://c"}
	grown := append(append([]string(nil), old...), "http://d")
	before := NewRing(old, 0)
	after := NewRing(grown, 0)
	keys := ringKeys(1000)
	moved := 0
	for _, key := range keys {
		b, a := before.Place(key), after.Place(key)
		if b == a {
			continue
		}
		moved++
		if a != "http://d" {
			t.Fatalf("key %q moved %q -> %q, not to the joining worker", key, b, a)
		}
	}
	// Ideal is 1/4 of the keys; virtual nodes keep it near that. The
	// bound only guards against a broken ring reshuffling everything.
	if moved == 0 || moved > len(keys)/2 {
		t.Fatalf("join moved %d of %d keys, want roughly %d", moved, len(keys), len(keys)/4)
	}
}

// A worker leaving moves only its own keys; everyone else's stay put.
func TestRingLeaveMovesOnlyOrphans(t *testing.T) {
	all := []string{"http://a", "http://b", "http://c", "http://d"}
	shrunk := []string{"http://a", "http://b", "http://d"}
	before := NewRing(all, 0)
	after := NewRing(shrunk, 0)
	for _, key := range ringKeys(1000) {
		b, a := before.Place(key), after.Place(key)
		if b != "http://c" && a != b {
			t.Fatalf("key %q was owned by surviving %q but moved to %q", key, b, a)
		}
		if b == "http://c" && a == "http://c" {
			t.Fatalf("key %q still placed on the departed worker", key)
		}
	}
}

// The failover sequence lists every worker exactly once, starting with
// the owner, and is itself deterministic.
func TestRingSequence(t *testing.T) {
	workers := []string{"http://a", "http://b", "http://c"}
	r := NewRing(workers, 0)
	for _, key := range ringKeys(100) {
		seq := r.Sequence(key)
		if len(seq) != len(workers) {
			t.Fatalf("key %q: sequence has %d workers, want %d", key, len(seq), len(workers))
		}
		if seq[0] != r.Place(key) {
			t.Fatalf("key %q: sequence starts at %q, owner is %q", key, seq[0], r.Place(key))
		}
		seen := map[string]bool{}
		for _, w := range seq {
			if seen[w] {
				t.Fatalf("key %q: worker %q appears twice in %v", key, w, seq)
			}
			seen[w] = true
		}
		if !reflect.DeepEqual(seq, r.Sequence(key)) {
			t.Fatalf("key %q: sequence not deterministic", key)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Place("anything"); got != "" {
		t.Fatalf("empty ring placed %q", got)
	}
	if seq := r.Sequence("anything"); seq != nil {
		t.Fatalf("empty ring sequence %v", seq)
	}
}

// Virtual nodes must spread keys: no worker may own an outsized share.
func TestRingBalance(t *testing.T) {
	workers := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(workers, 0)
	counts := map[string]int{}
	keys := ringKeys(4000)
	for _, key := range keys {
		counts[r.Place(key)]++
	}
	for _, w := range workers {
		share := float64(counts[w]) / float64(len(keys))
		if share < 0.10 || share > 0.45 {
			t.Fatalf("worker %q owns %.0f%% of keys; distribution %v", w, share*100, counts)
		}
	}
}
