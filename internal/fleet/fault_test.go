package fleet

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// echoServer answers every POST by decoding a 4-vector and doubling it.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		blob, _ := io.ReadAll(r.Body)
		y := make([]float64, 4)
		if err := DecodeVectorInto(y, blob); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for i := range y {
			y[i] *= 2
		}
		w.Write(AppendVector(nil, y))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func doPost(t *testing.T, rt http.RoundTripper, url string) (*http.Response, error) {
	t.Helper()
	body := AppendVector(nil, []float64{1, 2, 3, 4})
	req, err := http.NewRequest(http.MethodPost, url+"/shards/x/0", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	// bytes.Reader bodies get GetBody for free via http.NewRequest.
	return (&http.Client{Transport: rt}).Do(req)
}

func TestFaultRoundTripperModes(t *testing.T) {
	ts := echoServer(t)

	always := func(mode FaultMode, d time.Duration) Schedule {
		return func(n int, req *http.Request) Fault { return Fault{Mode: mode, Delay: d} }
	}
	decode := func(resp *http.Response) error {
		defer resp.Body.Close()
		blob, _ := io.ReadAll(resp.Body)
		return DecodeVectorInto(make([]float64, 4), blob)
	}

	t.Run("drop", func(t *testing.T) {
		rt := &FaultRoundTripper{Schedule: always(FaultDrop, 0)}
		if _, err := doPost(t, rt, ts.URL); err == nil || !strings.Contains(err.Error(), "injected connection drop") {
			t.Fatalf("err = %v, want injected drop", err)
		}
		if rt.Requests() != 1 {
			t.Fatalf("requests = %d, want 1", rt.Requests())
		}
	})
	t.Run("5xx", func(t *testing.T) {
		resp, err := doPost(t, &FaultRoundTripper{Schedule: always(Fault5xx, 0)}, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", resp.StatusCode)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		resp, err := doPost(t, &FaultRoundTripper{Schedule: always(FaultTruncate, 0)}, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		if derr := decode(resp); derr == nil {
			t.Fatal("truncated body decoded cleanly")
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		resp, err := doPost(t, &FaultRoundTripper{Schedule: always(FaultCorrupt, 0)}, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		if derr := decode(resp); derr == nil {
			t.Fatal("corrupted body decoded cleanly")
		}
	})
	t.Run("duplicate", func(t *testing.T) {
		resp, err := doPost(t, &FaultRoundTripper{Schedule: always(FaultDuplicate, 0)}, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		if derr := decode(resp); derr != nil {
			t.Fatalf("duplicated request's final response invalid: %v", derr)
		}
	})
	t.Run("delay honors context", func(t *testing.T) {
		rt := &FaultRoundTripper{Schedule: always(FaultDelay, time.Hour)}
		body := AppendVector(nil, []float64{1, 2, 3, 4})
		req, _ := http.NewRequest(http.MethodPost, ts.URL, bytes.NewReader(body))
		hc := &http.Client{Transport: rt, Timeout: 20 * time.Millisecond}
		start := time.Now()
		if _, err := hc.Do(req); err == nil {
			t.Fatal("delayed request succeeded before its delay")
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("delayed request ignored the client timeout")
		}
	})
	t.Run("none passes through", func(t *testing.T) {
		resp, err := doPost(t, &FaultRoundTripper{}, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		if derr := decode(resp); derr != nil {
			t.Fatalf("fault-free pass-through mangled the body: %v", derr)
		}
	})
}

// A seeded schedule must be a pure function of the request counter:
// replaying it yields the same faults regardless of evaluation order.
func TestSeededScheduleDeterministic(t *testing.T) {
	sched := SeededSchedule(42, 0.3, FaultDrop)
	req, _ := http.NewRequest(http.MethodGet, "http://x/", nil)
	first := make([]FaultMode, 100)
	for n := range first {
		first[n] = sched(n, req).Mode
	}
	faulted := 0
	// Replay in reverse order.
	for n := len(first) - 1; n >= 0; n-- {
		if got := sched(n, req).Mode; got != first[n] {
			t.Fatalf("request %d: replay fault %v, first run %v", n, got, first[n])
		}
		if first[n] == FaultDrop {
			faulted++
		}
	}
	if faulted == 0 || faulted == len(first) {
		t.Fatalf("rate 0.3 faulted %d of %d requests", faulted, len(first))
	}

	// A different seed must give a different schedule.
	other := SeededSchedule(43, 0.3, FaultDrop)
	same := true
	for n := range first {
		if other(n, req).Mode != first[n] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

func TestPathSchedule(t *testing.T) {
	sched := PathSchedule(func(p string) bool { return strings.HasPrefix(p, "/shards/") }, Fault{Mode: Fault5xx})
	shards, _ := http.NewRequest(http.MethodPost, "http://x/shards/p/1", nil)
	fleet, _ := http.NewRequest(http.MethodGet, "http://x/fleet", nil)
	if sched(0, shards).Mode != Fault5xx {
		t.Fatal("matching path not faulted")
	}
	if sched(1, fleet).Mode != FaultNone {
		t.Fatal("non-matching path faulted")
	}
}
