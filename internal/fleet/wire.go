package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// The shard wire format. Per-shard inference exchanges two float64
// vectors (noisy measurements out, sub-domain estimate back); for the
// distributed release to be bit-identical to the local one, those bits
// must round-trip exactly — JSON float formatting would not. A vector
// is framed as
//
//	"AMFV" | uvarint count | count × 8 bytes little-endian IEEE-754 bits | 8 bytes LE FNV-64a
//
// with the checksum taken over the float bytes. A truncated or
// corrupted body fails the checksum (or the length arithmetic) and is
// treated as a failed request — the coordinator retries or falls back
// locally, so an injected fault can change latency but never bits.

// vecMagic frames shard measurement/estimate vectors.
const vecMagic = "AMFV"

// AppendVector appends the wire encoding of vals to dst.
func AppendVector(dst []byte, vals []float64) []byte {
	dst = append(dst, vecMagic...)
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	start := len(dst)
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	h := fnv.New64a()
	h.Write(dst[start:])
	return binary.LittleEndian.AppendUint64(dst, h.Sum64())
}

// DecodeVectorInto decodes a wire-encoded vector into dst, which must
// have exactly the expected length — the caller always knows the
// shard's dimensions, so a count mismatch is a protocol error, not a
// resize.
func DecodeVectorInto(dst []float64, blob []byte) error {
	if len(blob) < len(vecMagic) || string(blob[:len(vecMagic)]) != vecMagic {
		return fmt.Errorf("fleet: not a shard vector (bad magic)")
	}
	rest := blob[len(vecMagic):]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("fleet: truncated shard vector header")
	}
	rest = rest[n:]
	if count != uint64(len(dst)) {
		return fmt.Errorf("fleet: shard vector carries %d values, want %d", count, len(dst))
	}
	if len(rest) != 8*len(dst)+8 {
		return fmt.Errorf("fleet: shard vector is %d payload bytes, want %d (truncated or padded)",
			len(rest), 8*len(dst)+8)
	}
	floats, sum := rest[:8*len(dst)], rest[8*len(dst):]
	h := fnv.New64a()
	h.Write(floats)
	if binary.LittleEndian.Uint64(sum) != h.Sum64() {
		return fmt.Errorf("fleet: shard vector checksum mismatch (corrupt body)")
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(floats[8*i:]))
	}
	return nil
}
