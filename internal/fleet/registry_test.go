package fleet

import (
	"errors"
	"testing"
	"time"
)

func TestRegistryBackoff(t *testing.T) {
	g := NewRegistry([]string{"http://a/", "http://a", ""})
	if got := g.URLs(); len(got) != 1 || got[0] != "http://a" {
		t.Fatalf("URLs = %v, want the one normalized worker", got)
	}
	now := time.Unix(1000, 0)
	g.SetClock(func() time.Time { return now })

	if !g.Usable("http://a") {
		t.Fatal("fresh worker not usable")
	}
	g.MarkDown("http://a", errors.New("boom"))
	if g.Usable("http://a") {
		t.Fatal("worker usable immediately after failure")
	}
	// First failure: probe due after baseBackoff.
	now = now.Add(baseBackoff)
	if !g.Usable("http://a") {
		t.Fatal("worker not usable after base backoff elapsed")
	}
	// Second consecutive failure doubles the delay.
	g.MarkDown("http://a", errors.New("boom again"))
	now = now.Add(baseBackoff)
	if g.Usable("http://a") {
		t.Fatal("worker usable after only base backoff on second failure")
	}
	now = now.Add(baseBackoff) // total 2×base
	if !g.Usable("http://a") {
		t.Fatal("worker not usable after doubled backoff")
	}

	// Many failures cap at maxBackoff.
	for i := 0; i < 20; i++ {
		g.MarkDown("http://a", nil)
	}
	st := g.Status()[0]
	if st.Healthy {
		t.Fatal("status reports a down worker healthy")
	}
	if st.NextProbeMillis > int64(maxBackoff/time.Millisecond) {
		t.Fatalf("backoff %dms exceeds the %v cap", st.NextProbeMillis, maxBackoff)
	}
	if st.Failures != 22 {
		t.Fatalf("failures = %d, want 22", st.Failures)
	}
	if st.LastError != "boom again" {
		t.Fatalf("lastError = %q, want the most recent non-nil error", st.LastError)
	}

	// Success clears failure state but keeps the last error for the
	// status page.
	g.MarkUp("http://a")
	st = g.Status()[0]
	if !st.Healthy || st.Failures != 0 || st.NextProbeMillis != 0 {
		t.Fatalf("recovered worker status = %+v", st)
	}
	if st.Served != 1 {
		t.Fatalf("served = %d, want 1", st.Served)
	}
}

func TestRegistryUnknownWorker(t *testing.T) {
	g := NewRegistry([]string{"http://a"})
	if g.Usable("http://b") {
		t.Fatal("unknown worker reported usable")
	}
	g.MarkUp("http://b")
	g.MarkDown("http://b", nil)
	if len(g.Status()) != 1 {
		t.Fatal("marking an unknown worker grew the registry")
	}
}
