package fleet

import (
	"bytes"
	"fmt"
	"io"
	//lint:allow noiserand: deterministic fault-schedule PRNG for the test transport — decides which requests to break, never draws release noise
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// FaultMode names one injectable transport failure.
type FaultMode int

const (
	// FaultNone forwards the request untouched.
	FaultNone FaultMode = iota
	// FaultDrop fails the request without contacting the server, like a
	// refused connection.
	FaultDrop
	// FaultDelay sleeps Fault.Delay before forwarding — drive it past
	// the client timeout to simulate a slow worker.
	FaultDelay
	// FaultTruncate forwards the request but cuts the response body in
	// half, like a connection dying mid-body.
	FaultTruncate
	// Fault5xx synthesizes a 503 without contacting the server.
	Fault5xx
	// FaultCorrupt forwards the request but flips one byte in the
	// middle of the response body.
	FaultCorrupt
	// FaultDuplicate delivers the request twice (the first response is
	// discarded) and returns the second response — duplicate delivery
	// on an at-least-once transport; shard inference is stateless and
	// deterministic, so duplicates must be harmless.
	FaultDuplicate
)

// Fault is one schedule decision.
type Fault struct {
	Mode  FaultMode
	Delay time.Duration
}

// Schedule decides the fault for the n-th request through the transport
// (0-based, counted across all requests). Implementations must be pure
// functions of (n, req) so a seeded schedule replays identically.
type Schedule func(n int, req *http.Request) Fault

// FaultRoundTripper is a deterministic fault-injecting
// http.RoundTripper: every request consults the schedule and is
// forwarded, delayed, dropped, truncated, corrupted or duplicated
// accordingly. Wrap it around a coordinator's fleet transport to prove
// the release path survives each failure mode bit-identically.
type FaultRoundTripper struct {
	// Base performs the real requests (nil = http.DefaultTransport).
	Base http.RoundTripper
	// Schedule decides each request's fault (nil = no faults).
	Schedule Schedule

	mu sync.Mutex
	n  int
}

// Requests returns how many requests have passed through.
func (f *FaultRoundTripper) Requests() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

func (f *FaultRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	n := f.n
	f.n++
	f.mu.Unlock()
	base := f.Base
	if base == nil {
		base = http.DefaultTransport
	}
	var fault Fault
	if f.Schedule != nil {
		fault = f.Schedule(n, req)
	}
	switch fault.Mode {
	case FaultDrop:
		return nil, fmt.Errorf("fleet: injected connection drop (request %d to %s)", n, req.URL.Path)
	case Fault5xx:
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"application/json"}},
			Body:    io.NopCloser(bytes.NewReader([]byte(`{"error":"injected 503"}`))),
			Request: req,
		}, nil
	case FaultDelay:
		select {
		case <-time.After(fault.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return base.RoundTrip(req)
	case FaultTruncate:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return mangleBody(resp, func(blob []byte) []byte { return blob[:len(blob)/2] }), nil
	case FaultCorrupt:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return mangleBody(resp, func(blob []byte) []byte {
			if len(blob) > 0 {
				blob[len(blob)/2] ^= 0x40
			}
			return blob
		}), nil
	case FaultDuplicate:
		if req.GetBody != nil {
			if b, err := req.GetBody(); err == nil {
				first := req.Clone(req.Context())
				first.Body = b
				if resp, err := base.RoundTrip(first); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			if b, err := req.GetBody(); err == nil {
				second := req.Clone(req.Context())
				second.Body = b
				req = second
			}
		}
		return base.RoundTrip(req)
	default:
		return base.RoundTrip(req)
	}
}

// mangleBody buffers the response body and rewrites it through mutate.
func mangleBody(resp *http.Response, mutate func([]byte) []byte) *http.Response {
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	blob = mutate(blob)
	resp.Body = io.NopCloser(bytes.NewReader(blob))
	resp.ContentLength = int64(len(blob))
	resp.Header.Del("Content-Length")
	return resp
}

// SeededSchedule injects mode on each request independently with the
// given probability, decided by a PRNG derived from (seed, n) — a pure
// function of the request counter, so concurrent arrival order cannot
// change which requests fault and a replay faults identically.
func SeededSchedule(seed int64, rate float64, mode FaultMode) Schedule {
	return func(n int, req *http.Request) Fault {
		rng := rand.New(rand.NewSource(seed ^ (int64(n)+1)*0x9E3779B9))
		if rng.Float64() < rate {
			return Fault{Mode: mode}
		}
		return Fault{}
	}
}

// PathSchedule injects fault on every request whose URL path matches
// the predicate.
func PathSchedule(match func(path string) bool, fault Fault) Schedule {
	return func(n int, req *http.Request) Fault {
		if match(req.URL.Path) {
			return fault
		}
		return Fault{}
	}
}
