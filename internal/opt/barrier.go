package opt

import (
	"errors"
	"fmt"
	"math"

	"adaptivemm/internal/linalg"
)

// BarrierOptions tunes the interior-point solver. The zero value selects
// sensible defaults via the withDefaults method.
type BarrierOptions struct {
	// Tol is the duality-gap target; the barrier loop stops when
	// (#constraints)/t < Tol. Default 1e-7.
	Tol float64
	// Mu is the barrier parameter multiplier per outer iteration. Default 10.
	Mu float64
	// MaxNewton bounds Newton iterations per outer step. Default 50.
	MaxNewton int
	// MaxOuter bounds outer barrier iterations. Default 40.
	MaxOuter int
}

func (o BarrierOptions) withDefaults() BarrierOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	if o.Mu <= 1 {
		o.Mu = 10
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = 50
	}
	if o.MaxOuter <= 0 {
		o.MaxOuter = 40
	}
	return o
}

// ErrInfeasible is returned when no strictly feasible starting point can be
// constructed (e.g. a constraint column of B is all zero while every cost
// is zero, or B has an empty row set).
var ErrInfeasible = errors.New("opt: could not construct a strictly feasible starting point")

// SolveBarrier minimizes the program with a log-barrier interior-point
// method and returns the full-length solution vector u (zero-cost variables
// are fixed at zero). The result is normalized so max_j (Bᵀu)_j = 1.
func SolveBarrier(p *Program, opts BarrierOptions) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	red, idx := p.reduced(1e-14)
	if len(idx) == 0 {
		return make([]float64, len(p.C)), nil
	}
	u, err := solveBarrierActive(red, opts)
	if err != nil {
		return nil, err
	}
	full := make([]float64, len(p.C))
	for r, i := range idx {
		full[i] = u[r]
	}
	p.Normalize(full)
	return full, nil
}

// solveBarrierActive runs the barrier method on a program whose costs are
// all strictly positive.
func solveBarrierActive(p *Program, opts BarrierOptions) ([]float64, error) {
	k := len(p.C)
	n := p.B.Cols()

	// Strictly feasible start: u = α·1 with α chosen so Bᵀu ≤ 1/2.
	colSums := p.B.TMulVec(ones(k))
	var maxSum float64
	for _, v := range colSums {
		if v > maxSum {
			maxSum = v
		}
	}
	if maxSum <= 0 {
		return nil, ErrInfeasible
	}
	u := make([]float64, k)
	for i := range u {
		u[i] = 0.5 / maxSum
	}

	nConstraints := float64(n + k)
	// Initial t: balance barrier against objective magnitude.
	t := 1.0
	if obj := p.Objective(u); obj > 0 && !math.IsInf(obj, 1) {
		t = math.Max(1, nConstraints/obj)
	}

	for outer := 0; outer < opts.MaxOuter; outer++ {
		if err := newtonCenter(p, u, t, opts); err != nil {
			return nil, err
		}
		if nConstraints/t < opts.Tol {
			break
		}
		t *= opts.Mu
	}
	return u, nil
}

// newtonCenter minimizes φ_t(u) = t·f(u) − Σ log s_j − Σ log u_i for fixed
// t, updating u in place.
func newtonCenter(p *Program, u []float64, t float64, opts BarrierOptions) error {
	k := len(p.C)
	n := p.B.Cols()
	pw := float64(p.Power)

	for iter := 0; iter < opts.MaxNewton; iter++ {
		s := slack(p, u)
		for _, v := range s {
			if v <= 0 {
				return fmt.Errorf("opt: interior point left the feasible region (slack %g)", v)
			}
		}
		// Gradient.
		grad := make([]float64, k)
		invS := make([]float64, n)
		for j, v := range s {
			invS[j] = 1 / v
		}
		bInvS := p.B.MulVec(invS) // (B · 1/s)_i = Σ_j B_ij / s_j
		for i := range grad {
			grad[i] = -pw*t*p.C[i]/ipow(u[i], p.Power+1) + bInvS[i] - 1/u[i]
		}
		// Hessian: diag part + B diag(1/s²) Bᵀ.
		hess := linalg.New(k, k)
		for i := 0; i < k; i++ {
			hess.Set(i, i, pw*(pw+1)*t*p.C[i]/ipow(u[i], p.Power+2)+1/(u[i]*u[i]))
		}
		// Accumulate B diag(1/s²) Bᵀ (symmetric).
		w := make([]float64, n)
		for j := range w {
			w[j] = invS[j] * invS[j]
		}
		addWeightedGram(hess, p.B, w)

		// Newton step: solve H Δ = -grad.
		neg := make([]float64, k)
		for i := range neg {
			neg[i] = -grad[i]
		}
		step, err := linalg.SolveSPD(hess, neg)
		if err != nil {
			return err
		}
		// Newton decrement: λ² = -gradᵀΔ (for convex φ this is ≥ 0).
		var dec float64
		for i := range step {
			dec += -grad[i] * step[i]
		}
		if dec < 0 {
			dec = 0
		}
		if dec/2 < 1e-10 {
			return nil
		}
		// Backtracking line search keeping strict feasibility.
		alpha := maxFeasibleStep(p, u, step)
		phi0 := barrierValue(p, u, t)
		gdotd := -dec
		for ; alpha > 1e-14; alpha *= 0.5 {
			cand := axpy(u, step, alpha)
			if !strictlyFeasible(p, cand) {
				continue
			}
			if barrierValue(p, cand, t) <= phi0+0.25*alpha*gdotd {
				copy(u, cand)
				break
			}
		}
		if alpha <= 1e-14 {
			// No progress possible; treat as converged at this t.
			return nil
		}
	}
	return nil
}

// slack returns 1 - Bᵀu.
func slack(p *Program, u []float64) []float64 {
	s := p.B.TMulVec(u)
	for j := range s {
		s[j] = 1 - s[j]
	}
	return s
}

func strictlyFeasible(p *Program, u []float64) bool {
	for _, v := range u {
		if v <= 0 {
			return false
		}
	}
	for _, v := range slack(p, u) {
		if v <= 0 {
			return false
		}
	}
	return true
}

// maxFeasibleStep returns a step length ≤ 1 that keeps u positive, leaving
// the slack check to the line search.
func maxFeasibleStep(p *Program, u, step []float64) float64 {
	alpha := 1.0
	for i := range u {
		if step[i] < 0 {
			if a := -0.99 * u[i] / step[i]; a < alpha {
				alpha = a
			}
		}
	}
	return alpha
}

func barrierValue(p *Program, u []float64, t float64) float64 {
	v := t * p.Objective(u)
	if math.IsInf(v, 1) {
		return v
	}
	for _, x := range u {
		if x <= 0 {
			return math.Inf(1)
		}
		v -= math.Log(x)
	}
	for _, x := range slack(p, u) {
		if x <= 0 {
			return math.Inf(1)
		}
		v -= math.Log(x)
	}
	return v
}

// addWeightedGram adds B diag(w) Bᵀ to the symmetric matrix h in place.
func addWeightedGram(h *linalg.Matrix, b *linalg.Matrix, w []float64) {
	k := b.Rows()
	for i := 0; i < k; i++ {
		bi := b.Row(i)
		hrow := h.Row(i)
		for j := i; j < k; j++ {
			bj := b.Row(j)
			var s float64
			for l, wl := range w {
				if bi[l] != 0 && bj[l] != 0 {
					s += wl * bi[l] * bj[l]
				}
			}
			hrow[j] += s
			if i != j {
				h.Set(j, i, h.At(j, i)+s)
			}
		}
	}
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func axpy(u, step []float64, alpha float64) []float64 {
	out := make([]float64, len(u))
	for i := range u {
		out[i] = u[i] + alpha*step[i]
	}
	return out
}
