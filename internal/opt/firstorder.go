package opt

import (
	"math"
)

// FirstOrderOptions tunes the scalable first-order solver.
type FirstOrderOptions struct {
	// Iterations is the number of Adam steps. Default 600.
	Iterations int
	// LearningRate is the initial Adam step size in log-space. Default 0.05.
	LearningRate float64
	// BetaStart and BetaEnd control the log-sum-exp sharpness schedule used
	// to smooth the max-constraint term. Defaults 8 and 400.
	BetaStart, BetaEnd float64
}

func (o FirstOrderOptions) withDefaults() FirstOrderOptions {
	if o.Iterations <= 0 {
		o.Iterations = 600
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.05
	}
	if o.BetaStart <= 0 {
		o.BetaStart = 8
	}
	if o.BetaEnd <= 0 {
		o.BetaEnd = 400
	}
	return o
}

// SolveFirstOrder minimizes the scale-invariant form of the weighting
// program,
//
//	minimize  p·log(max_j (Bᵀu)_j) + log(Σᵢ cᵢ/uᵢᵖ)    over u > 0,
//
// which has the same minimizers (up to scaling) as the constrained program:
// the error of the weighted strategy is sens^p_term × trace_term, and both
// the sensitivity term and the trace term are homogeneous in u. Working in
// log-space (u = e^z) with a log-sum-exp smoothed max keeps the iterates
// positive and the gradient cheap (O(kn) per step), so this solver scales
// to the n = 8192 instances of the paper's Sec 5.2 where forming Newton
// systems would be prohibitive.
//
// The returned vector is normalized so max_j (Bᵀu)_j = 1. Zero-cost
// variables are fixed at zero.
func SolveFirstOrder(p *Program, opts FirstOrderOptions) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	red, idx := p.reduced(1e-14)
	if len(idx) == 0 {
		return make([]float64, len(p.C)), nil
	}
	u := solveFirstOrderActive(red, opts)
	full := make([]float64, len(p.C))
	for r, i := range idx {
		full[i] = u[r]
	}
	p.Normalize(full)
	return full, nil
}

func solveFirstOrderActive(p *Program, opts FirstOrderOptions) []float64 {
	k := len(p.C)
	pw := float64(p.Power)

	// Initialize with the singular-value-bound weighting u_i ∝ c_i^{1/(p+1)},
	// which is the unconstrained optimum of the trace term against the
	// average (rather than max) column norm — the strategy A_l that
	// motivates Theorem 2. It is an excellent warm start.
	z := make([]float64, k)
	for i, c := range p.C {
		z[i] = math.Log(c) / float64(p.Power+1)
	}
	// Center z so u starts O(1).
	var mean float64
	for _, v := range z {
		mean += v
	}
	mean /= float64(k)
	for i := range z {
		z[i] -= mean
	}

	u := make([]float64, k)
	mAdam := make([]float64, k)
	vAdam := make([]float64, k)
	grad := make([]float64, k)
	const b1, b2, eps = 0.9, 0.999, 1e-8

	best := math.Inf(1)
	bestU := make([]float64, k)

	for it := 0; it < opts.Iterations; it++ {
		frac := float64(it) / float64(opts.Iterations-1+1)
		beta := opts.BetaStart * math.Pow(opts.BetaEnd/opts.BetaStart, frac)
		lr := opts.LearningRate * (1 - 0.9*frac)

		for i := range u {
			u[i] = math.Exp(z[i])
		}
		// Constraint values and softmax weights.
		s := p.B.TMulVec(u)
		maxS := 0.0
		for _, v := range s {
			if v > maxS {
				maxS = v
			}
		}
		var zsum float64
		soft := make([]float64, len(s))
		for j, v := range s {
			soft[j] = math.Exp(beta * (v - maxS) / maxS)
			zsum += soft[j]
		}
		for j := range soft {
			soft[j] /= zsum
		}
		// True (non-smoothed) objective for best-iterate tracking.
		objTrace := p.Objective(u)
		trueObj := pw*math.Log(maxS) + math.Log(objTrace)
		if trueObj < best {
			best = trueObj
			copy(bestU, u)
		}

		// Gradient of p·log smax: p/smax · Σ_j soft_j B_ij u_i ≈ use maxS for
		// smax (smoothing error is absorbed by the schedule).
		bSoft := p.B.MulVec(soft)
		// Gradient of log Σ c e^{-p z}: -p·c_i u_i^{-p} / Σ.
		for i := range grad {
			grad[i] = pw*bSoft[i]*u[i]/maxS - pw*(p.C[i]/ipow(u[i], p.Power))/objTrace
		}
		// Adam update.
		t := float64(it + 1)
		for i := range z {
			mAdam[i] = b1*mAdam[i] + (1-b1)*grad[i]
			vAdam[i] = b2*vAdam[i] + (1-b2)*grad[i]*grad[i]
			mh := mAdam[i] / (1 - math.Pow(b1, t))
			vh := vAdam[i] / (1 - math.Pow(b2, t))
			z[i] -= lr * mh / (math.Sqrt(vh) + eps)
		}
	}
	// Final evaluation of the last iterate.
	for i := range u {
		u[i] = math.Exp(z[i])
	}
	s := p.B.TMulVec(u)
	maxS := 0.0
	for _, v := range s {
		if v > maxS {
			maxS = v
		}
	}
	if obj := pw*math.Log(maxS) + math.Log(p.Objective(u)); obj < best {
		copy(bestU, u)
	}
	return bestU
}
