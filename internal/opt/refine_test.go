package opt

import (
	"math"
	"math/rand"
	"testing"

	"adaptivemm/internal/linalg"
)

// refineErr evaluates the scale-invariant strategy error proxy
// (max col norm² = 1 after normalization, so just the trace term).
func refineErr(t *testing.T, g, a *linalg.Matrix) float64 {
	t.Helper()
	obj, ok := refineObjective(g, normalizeCols(a))
	if !ok {
		t.Fatal("strategy does not support workload")
	}
	return obj
}

func TestRefineImprovesIdentityOnPrefix(t *testing.T) {
	// The CDF/prefix Gram: identity is far from optimal; refinement must
	// find something substantially better.
	n := 8
	w := linalg.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			w.Set(i, j, 1)
		}
	}
	g := w.Gram()
	id := linalg.Identity(n)
	before := refineErr(t, g, id)
	refined, err := RefineStrategy(g, id, RefineOptions{Iterations: 600})
	if err != nil {
		t.Fatal(err)
	}
	after := refineErr(t, g, refined)
	if after > before*0.9 {
		t.Fatalf("refinement too weak: %g -> %g", before, after)
	}
}

func TestRefineNeverWorsens(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		n := 4 + r.Intn(4)
		wm := linalg.New(n+2, n)
		for i := 0; i < wm.Rows(); i++ {
			for j := 0; j < n; j++ {
				wm.Set(i, j, r.NormFloat64())
			}
		}
		g := wm.Gram()
		a0 := linalg.Identity(n)
		before := refineErr(t, g, a0)
		refined, err := RefineStrategy(g, a0, RefineOptions{Iterations: 150})
		if err != nil {
			t.Fatal(err)
		}
		after := refineErr(t, g, refined)
		if after > before*(1+1e-9) {
			t.Fatalf("refinement worsened: %g -> %g", before, after)
		}
	}
}

func TestRefineRespectsSensitivity(t *testing.T) {
	n := 6
	w := linalg.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			w.Set(i, j, 1)
		}
	}
	refined, err := RefineStrategy(w.Gram(), linalg.Identity(n), RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s := refined.MaxColNorm2(); math.Abs(s-1) > 1e-9 {
		t.Fatalf("sensitivity = %g, want 1", s)
	}
}

func TestRefineDimensionMismatch(t *testing.T) {
	g := linalg.Identity(4)
	if _, err := RefineStrategy(g, linalg.Identity(3), RefineOptions{}); err == nil {
		t.Fatal("accepted mismatched dimensions")
	}
}

func TestNormalizeCols(t *testing.T) {
	a := linalg.NewFromRows([][]float64{{3, 0.1}, {4, 0}})
	out := normalizeCols(a)
	norms := out.ColNorms2()
	if math.Abs(norms[0]-1) > 1e-12 {
		t.Fatalf("big column norm² = %g", norms[0])
	}
	if norms[1] > 1+1e-12 {
		t.Fatalf("small column norm² = %g", norms[1])
	}
	// Max column norm is exactly 1.
	if math.Abs(out.MaxColNorm2()-1) > 1e-12 {
		t.Fatal("max column norm != 1")
	}
}
