// Package opt implements the convex optimization machinery behind the
// paper's optimal query weighting problem (Program 1). The reference
// implementation used cvxopt's dsdp semidefinite solver; here the 2x2
// semidefinite blocks [[uᵢ,1],[1,vᵢ]] ⪰ 0 are eliminated analytically
// (at the optimum vᵢ = 1/uᵢ), which reduces the SDP to the smooth convex
// program
//
//	minimize   Σᵢ cᵢ / uᵢᵖ
//	subject to Bᵀu ≤ 1  (entrywise),  u > 0
//
// solved with a log-barrier interior-point method (Newton steps with
// backtracking line search). A scalable first-order solver on the
// equivalent scale-invariant objective is provided for large instances.
//
// For the (ε,δ) / L2 setting of the paper, p = 1 and uᵢ = λᵢ² where λᵢ is
// the weight of design query i, and B = Q∘Q (entrywise square of the design
// matrix) so that (Bᵀu)ⱼ is the squared L2 norm of column j of the weighted
// strategy. For the ε / L1 variant (Sec 3.5), p = 2, uᵢ = λᵢ and B = |Q|,
// so (Bᵀu)ⱼ is the L1 norm of column j.
package opt

import (
	"errors"
	"fmt"
	"math"

	"adaptivemm/internal/linalg"
)

// Program is an optimal query weighting problem instance.
type Program struct {
	// C holds the nonnegative costs c_i, one per design query. For the
	// eigen design these are the eigenvalues of WᵀW (Theorem 1 with
	// orthonormal design queries).
	C []float64
	// B is the k x n constraint matrix with nonnegative entries; column j
	// constrains the (squared, for p=1) norm of strategy column j.
	B *linalg.Matrix
	// Power is the exponent p in the objective Σ c_i/u_i^p: 1 for the
	// L2/Gaussian setting, 2 for the L1/Laplace variant.
	Power int
}

// Validate checks structural invariants of the program.
func (p *Program) Validate() error {
	if p.B == nil {
		return errors.New("opt: nil constraint matrix")
	}
	if len(p.C) != p.B.Rows() {
		return fmt.Errorf("opt: %d costs for %d constraint rows", len(p.C), p.B.Rows())
	}
	if p.Power != 1 && p.Power != 2 {
		return fmt.Errorf("opt: unsupported power %d", p.Power)
	}
	for i, c := range p.C {
		if c < 0 || math.IsNaN(c) {
			return fmt.Errorf("opt: invalid cost c[%d] = %g", i, c)
		}
	}
	for i := 0; i < p.B.Rows(); i++ {
		for _, v := range p.B.Row(i) {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("opt: negative or NaN entry in constraint row %d", i)
			}
		}
	}
	return nil
}

// Objective evaluates Σ c_i/u_i^p. Variables with zero cost contribute
// nothing regardless of u_i; variables with positive cost and u_i <= 0
// yield +Inf.
func (p *Program) Objective(u []float64) float64 {
	var s float64
	for i, c := range p.C {
		if c == 0 {
			continue
		}
		if u[i] <= 0 {
			return math.Inf(1)
		}
		s += c / ipow(u[i], p.Power)
	}
	return s
}

// MaxConstraint returns max_j (Bᵀu)_j.
func (p *Program) MaxConstraint(u []float64) float64 {
	s := p.B.TMulVec(u)
	var best float64
	for _, v := range s {
		if v > best {
			best = v
		}
	}
	return best
}

// Feasible reports whether u is strictly positive on active variables and
// satisfies Bᵀu ≤ 1 + tol.
func (p *Program) Feasible(u []float64, tol float64) bool {
	for i, c := range p.C {
		if c > 0 && u[i] <= 0 {
			return false
		}
	}
	return p.MaxConstraint(u) <= 1+tol
}

// active returns the indices with positive cost; inactive variables are
// fixed to zero in solutions (a zero-cost design query carries no workload
// weight, matching the paper's treatment of zero eigenvalues in Sec 4.1).
func (p *Program) active(tol float64) []int {
	var maxC float64
	for _, c := range p.C {
		if c > maxC {
			maxC = c
		}
	}
	var idx []int
	for i, c := range p.C {
		if c > tol*maxC {
			idx = append(idx, i)
		}
	}
	return idx
}

// reduced returns the sub-program over the active variables together with
// the index mapping back to the full variable vector.
func (p *Program) reduced(tol float64) (*Program, []int) {
	idx := p.active(tol)
	if len(idx) == len(p.C) {
		return p, idx
	}
	c := make([]float64, len(idx))
	b := linalg.New(len(idx), p.B.Cols())
	for r, i := range idx {
		c[r] = p.C[i]
		copy(b.Row(r), p.B.Row(i))
	}
	return &Program{C: c, B: b, Power: p.Power}, idx
}

// Normalize scales u (in place) so the largest constraint equals exactly 1,
// maximizing information subject to the sensitivity budget. It returns u.
// A zero vector is returned unchanged.
func (p *Program) Normalize(u []float64) []float64 {
	m := p.MaxConstraint(u)
	if m <= 0 {
		return u
	}
	s := 1 / m
	for i := range u {
		u[i] *= s
	}
	return u
}

func ipow(x float64, p int) float64 {
	switch p {
	case 1:
		return x
	case 2:
		return x * x
	default:
		return math.Pow(x, float64(p))
	}
}
