package opt

import (
	"errors"
	"math"

	"adaptivemm/internal/linalg"
)

// RefineOptions tunes the exact-strategy refinement.
type RefineOptions struct {
	// Iterations bounds the projected-gradient steps. Default 400.
	Iterations int
	// Tol stops early when the relative objective improvement over 20
	// iterations falls below it. Default 1e-9.
	Tol float64
}

func (o RefineOptions) withDefaults() RefineOptions {
	if o.Iterations <= 0 {
		o.Iterations = 400
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// RefineStrategy polishes a strategy matrix toward the exact optimum of
// the strategy selection problem (the paper's Problem 1):
//
//	minimize  (max column norm²) · trace(G (AᵀA)⁻¹)
//
// by projected gradient descent on A: the gradient of trace(G(AᵀA)⁻¹) is
// −2A(AᵀA)⁻¹G(AᵀA)⁻¹, and after each step every column is clipped back to
// the unit-norm ball (the sensitivity budget). The problem is convex in
// M = AᵀA, so with a sensible starting point — e.g. the Eigen-Design
// output — the refinement converges to the global optimum for small n.
// The paper solves this exact program (infeasibly slowly at scale) to
// report "no strategy can do better than 29.18" in Example 4; this routine
// reproduces such certificates at small n.
//
// The input strategy must support G (rowspace containment); its scale is
// normalized internally. The returned strategy has max column norm 1.
func RefineStrategy(g *linalg.Matrix, a0 *linalg.Matrix, o RefineOptions) (*linalg.Matrix, error) {
	o = o.withDefaults()
	n := g.Rows()
	if a0.Cols() != n {
		return nil, errors.New("opt: strategy and Gram dimensions disagree")
	}
	a := normalizeCols(a0)
	best := a
	bestObj := math.Inf(1)
	if obj, ok := refineObjective(g, a); ok {
		bestObj = obj
	}
	lastCheck := bestObj
	step := 0.5

	for it := 0; it < o.Iterations; it++ {
		m := a.Gram()
		minv, err := linalg.PseudoInverseSym(m, 1e-12)
		if err != nil {
			return nil, err
		}
		// grad = -2 A M⁻¹ G M⁻¹ (descent direction is its negative).
		mg := minv.Mul(g).Mul(minv)
		grad := a.Mul(mg).Scale(-2)
		// Backtracking on the step size (a - step·grad descends).
		improved := false
		for try := 0; try < 25; try++ {
			cand := normalizeCols(a.Sub(grad.Scale(step)))
			obj, ok := refineObjective(g, cand)
			if ok && obj < bestObj {
				a = cand
				bestObj = obj
				best = cand
				improved = true
				step *= 1.3
				break
			}
			step *= 0.5
			if step < 1e-12 {
				break
			}
		}
		if !improved && step < 1e-12 {
			break
		}
		if it%20 == 19 {
			if lastCheck-bestObj < o.Tol*math.Abs(lastCheck) {
				break
			}
			lastCheck = bestObj
		}
	}
	return best, nil
}

// refineObjective evaluates trace(G(AᵀA)⁺) for a column-normalized A,
// reporting ok=false when A fails to support G.
func refineObjective(g *linalg.Matrix, a *linalg.Matrix) (float64, bool) {
	m := a.Gram()
	minv, err := linalg.PseudoInverseSym(m, 1e-12)
	if err != nil {
		return 0, false
	}
	// Support check (cheap): trace should be finite and the projected Gram
	// close to G.
	proj := g.Mul(minv).Mul(m)
	if !proj.Equal(g, 1e-5*(1+g.FrobeniusNorm())) {
		return 0, false
	}
	tr := g.TraceProduct(minv)
	if math.IsNaN(tr) || math.IsInf(tr, 0) || tr < 0 {
		return 0, false
	}
	return tr, true
}

// normalizeCols clips every column of a to L2 norm at most 1 and rescales
// the whole matrix so the maximum column norm equals exactly 1 (using the
// full sensitivity budget).
func normalizeCols(a *linalg.Matrix) *linalg.Matrix {
	out := a.Clone()
	norms := out.ColNorms2()
	maxN := 0.0
	for j, s := range norms {
		if s <= 0 {
			continue
		}
		if s > 1 {
			inv := 1 / math.Sqrt(s)
			for i := 0; i < out.Rows(); i++ {
				out.Set(i, j, out.At(i, j)*inv)
			}
			norms[j] = 1
		}
		if norms[j] > maxN {
			maxN = norms[j]
		}
	}
	if maxN > 0 && maxN < 1 {
		out = out.Scale(1 / math.Sqrt(maxN))
	}
	return out
}
