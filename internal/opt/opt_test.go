package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptivemm/internal/linalg"
)

// scaleInvariantObjective is the quantity both solvers minimize up to
// scaling: (max_j (Bᵀu)_j)^p · Σ c_i/u_i^p. For a normalized solution the
// first factor is 1 and this reduces to the program objective.
func scaleInvariantObjective(p *Program, u []float64) float64 {
	return ipow(p.MaxConstraint(u), p.Power) * p.Objective(u)
}

func TestValidate(t *testing.T) {
	good := &Program{C: []float64{1, 2}, B: linalg.Identity(2), Power: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	bad := []*Program{
		{C: []float64{1}, B: linalg.Identity(2), Power: 1},               // length mismatch
		{C: []float64{1, -1}, B: linalg.Identity(2), Power: 1},           // negative cost
		{C: []float64{1, 1}, B: linalg.Identity(2), Power: 3},            // bad power
		{C: []float64{1, 1}, B: nil, Power: 1},                           // nil B
		{C: []float64{1, 1}, B: linalg.Diag([]float64{1, -1}), Power: 1}, // negative B
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad program %d accepted", i)
		}
	}
}

func TestBarrierBoxConstraints(t *testing.T) {
	// B = I: minimize c1/u1 + c2/u2 s.t. u ≤ 1 → u = (1,1).
	p := &Program{C: []float64{3, 5}, B: linalg.Identity(2), Power: 1}
	u, err := SolveBarrier(p, BarrierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range u {
		if math.Abs(v-1) > 1e-3 {
			t.Fatalf("u[%d] = %g, want 1", i, v)
		}
	}
}

func TestBarrierSimplexAnalytic(t *testing.T) {
	// Single constraint u1+u2 ≤ 1: optimum u_i = √c_i / (√c1+√c2).
	c1, c2 := 4.0, 9.0
	b := linalg.NewFromRows([][]float64{{1}, {1}})
	p := &Program{C: []float64{c1, c2}, B: b, Power: 1}
	u, err := SolveBarrier(p, BarrierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := math.Sqrt(c1), math.Sqrt(c2)
	want := []float64{s1 / (s1 + s2), s2 / (s1 + s2)}
	for i := range u {
		if math.Abs(u[i]-want[i]) > 1e-4 {
			t.Fatalf("u = %v, want %v", u, want)
		}
	}
}

func TestBarrierSimplexAnalyticPower2(t *testing.T) {
	// Power 2, single constraint: 2c_i/u_i³ = μ → u_i ∝ c_i^{1/3}.
	c1, c2 := 1.0, 8.0
	b := linalg.NewFromRows([][]float64{{1}, {1}})
	p := &Program{C: []float64{c1, c2}, B: b, Power: 2}
	u, err := SolveBarrier(p, BarrierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// c2/c1 = 8 → u2/u1 = 2.
	if math.Abs(u[1]/u[0]-2) > 1e-3 {
		t.Fatalf("u2/u1 = %g, want 2 (u=%v)", u[1]/u[0], u)
	}
	if math.Abs(u[0]+u[1]-1) > 1e-6 {
		t.Fatalf("constraint not tight: %v", u)
	}
}

func TestBarrierZeroCostVariableDropped(t *testing.T) {
	b := linalg.Identity(3)
	p := &Program{C: []float64{2, 0, 3}, B: b, Power: 1}
	u, err := SolveBarrier(p, BarrierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if u[1] != 0 {
		t.Fatalf("zero-cost variable got weight %g", u[1])
	}
	if u[0] < 0.99 || u[2] < 0.99 {
		t.Fatalf("active variables should saturate: %v", u)
	}
}

func TestBarrierAllZeroCosts(t *testing.T) {
	p := &Program{C: []float64{0, 0}, B: linalg.Identity(2), Power: 1}
	u, err := SolveBarrier(p, BarrierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != 0 || u[1] != 0 {
		t.Fatalf("u = %v, want zeros", u)
	}
}

func TestBarrierFeasibilityAndSaturation(t *testing.T) {
	// On random doubly-stochastic-like B from an orthogonal Q, the solution
	// must be feasible with max constraint exactly 1 after normalization.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		q := randomOrthogonal(r, n)
		b := q.Hadamard(q)
		c := make([]float64, n)
		for i := range c {
			c[i] = 0.1 + r.Float64()*5
		}
		p := &Program{C: c, B: b, Power: 1}
		u, err := SolveBarrier(p, BarrierOptions{})
		if err != nil {
			return false
		}
		if !p.Feasible(u, 1e-9) {
			return false
		}
		return math.Abs(p.MaxConstraint(u)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierLocalOptimality(t *testing.T) {
	// Random feasible perturbations around the solution cannot improve the
	// scale-invariant objective: a first-order certificate of optimality.
	r := rand.New(rand.NewSource(42))
	n := 6
	q := randomOrthogonal(r, n)
	b := q.Hadamard(q)
	c := make([]float64, n)
	for i := range c {
		c[i] = 0.5 + r.Float64()*4
	}
	p := &Program{C: c, B: b, Power: 1}
	u, err := SolveBarrier(p, BarrierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base := scaleInvariantObjective(p, u)
	for trial := 0; trial < 200; trial++ {
		cand := make([]float64, n)
		for i := range cand {
			cand[i] = u[i] * math.Exp(0.05*r.NormFloat64())
		}
		if scaleInvariantObjective(p, cand) < base*(1-1e-6) {
			t.Fatalf("perturbation improved objective: %g < %g", scaleInvariantObjective(p, cand), base)
		}
	}
}

func TestFirstOrderMatchesBarrier(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		q := randomOrthogonal(r, n)
		b := q.Hadamard(q)
		c := make([]float64, n)
		for i := range c {
			c[i] = 0.1 + r.Float64()*10
		}
		p := &Program{C: c, B: b, Power: 1}
		ub, err := SolveBarrier(p, BarrierOptions{})
		if err != nil {
			return false
		}
		uf, err := SolveFirstOrder(p, FirstOrderOptions{})
		if err != nil {
			return false
		}
		if !p.Feasible(uf, 1e-9) {
			return false
		}
		ob := scaleInvariantObjective(p, ub)
		of := scaleInvariantObjective(p, uf)
		// The first-order solver should be within 3% of the interior point.
		return of <= ob*1.03
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestFirstOrderPower2(t *testing.T) {
	c1, c2 := 1.0, 8.0
	b := linalg.NewFromRows([][]float64{{1}, {1}})
	p := &Program{C: []float64{c1, c2}, B: b, Power: 2}
	u, err := SolveFirstOrder(p, FirstOrderOptions{Iterations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u[1]/u[0]-2) > 0.05 {
		t.Fatalf("u2/u1 = %g, want 2 (u=%v)", u[1]/u[0], u)
	}
}

func TestNormalize(t *testing.T) {
	p := &Program{C: []float64{1, 1}, B: linalg.Identity(2), Power: 1}
	u := []float64{0.5, 0.25}
	p.Normalize(u)
	if u[0] != 1 || u[1] != 0.5 {
		t.Fatalf("Normalize = %v", u)
	}
	zero := []float64{0, 0}
	p.Normalize(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatalf("Normalize of zero changed it: %v", zero)
	}
}

func TestObjectiveEdgeCases(t *testing.T) {
	p := &Program{C: []float64{1, 0}, B: linalg.Identity(2), Power: 1}
	if v := p.Objective([]float64{0, 1}); !math.IsInf(v, 1) {
		t.Fatalf("Objective with zero u on positive cost = %g, want +Inf", v)
	}
	if v := p.Objective([]float64{1, 0}); v != 1 {
		t.Fatalf("Objective ignoring zero-cost variable = %g, want 1", v)
	}
}

func TestBarrierLargerInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := rand.New(rand.NewSource(99))
	n := 48
	q := randomOrthogonal(r, n)
	b := q.Hadamard(q)
	c := make([]float64, n)
	for i := range c {
		c[i] = math.Exp(2 * r.NormFloat64()) // wide dynamic range
	}
	p := &Program{C: c, B: b, Power: 1}
	u, err := SolveBarrier(p, BarrierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(u, 1e-9) {
		t.Fatal("infeasible solution")
	}
	// Must beat the naive uniform weighting.
	uni := make([]float64, n)
	for i := range uni {
		uni[i] = 1
	}
	p.Normalize(uni)
	if scaleInvariantObjective(p, u) > scaleInvariantObjective(p, uni) {
		t.Fatal("optimized weights worse than uniform")
	}
}

// randomOrthogonal builds a random orthogonal matrix via Gram-Schmidt on a
// Gaussian matrix.
func randomOrthogonal(r *rand.Rand, n int) *linalg.Matrix {
	m := linalg.New(n, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		// Orthogonalize against previous rows.
		for k := 0; k < i; k++ {
			prev := m.Row(k)
			var dot float64
			for j := range row {
				dot += row[j] * prev[j]
			}
			for j := range row {
				row[j] -= dot * prev[j]
			}
		}
		var norm float64
		for _, v := range row {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		for j := range row {
			row[j] /= norm
		}
	}
	return m
}
