package planner

import (
	"fmt"
	"math"

	"adaptivemm/internal/core"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

// This file holds the default generator registry. Each generator couples
// an admission rule with a modeled design cost (work units ≈ floating
// point operations) and an error rank (Proposal.Score) drawn from the
// paper's comparative analysis:
//
//	0 marginals          closed form, provably meets the Thm 2 bound
//	1 eigen              exact Program 2 (near-optimal, Thm 3 cap)
//	2 eigen-separation   Sec 4.2 grouping, slightly above exact
//	3 principal-vectors  Sec 4.2 k-weight reduction, above separation
//	4 hierarchical       Hay et al. tree, near-optimal on ranges only
//	5 identity           noisy counts, the universal fallback
//
// Cost-model constants: a pure-Go symmetric eigendecomposition or
// weighting solve is modeled at ~20·n³ units; per-iteration solver work
// at ~30 units per touched entry. The absolute scale only matters
// relative to the budget (DefaultMaxDesignCost admits exact eigen up to
// ~SmallCellCap cells).

// refuse builds a rejection reason tagged with the named admission rule,
// so /design explain output pairs every refused candidate with the
// specific rule that failed (the Decision already carries the public
// generator name). Rules in the default registry: shape (workload
// representation), dims, size-cap (domain too large for the family's
// algebra), regime (another family dominates here), branch, hint,
// min-cells, block-count, shard-admission, monolithic-dominates, budget,
// build.
func refuse(rule, format string, args ...any) string {
	return "rule " + rule + ": " + fmt.Sprintf(format, args...)
}

func cube(n int) float64 { f := float64(n); return f * f * f }

// denseCubeCost models one O(n³) dense stage (eigendecomposition, or a
// weighting program over n variables).
func denseCubeCost(n int) float64 { return 20 * cube(n) }

// factorCubesCost models the per-dimension eigendecompositions of the
// factored pipeline.
func factorCubesCost(w *workload.Workload) float64 {
	factors, ok := w.GramFactors()
	if !ok {
		return math.Inf(1)
	}
	var s float64
	for _, f := range factors {
		s += denseCubeCost(f.Rows())
	}
	return s
}

// factoredAdmission reports whether the factored pipeline is the one to
// use: eligible product form past the structured threshold. This is the
// admission rule that used to live in core as StructuredThreshold.
func factoredAdmission(w *workload.Workload) bool {
	return core.FactoredEligible(w) && w.Cells() > StructuredThreshold
}

// PipelineFor exposes the admission rule to callers that drive core
// directly (the experiment harness): the core pipeline the planner would
// select for an eigen-family design on w.
func PipelineFor(w *workload.Workload) core.Pipeline {
	if factoredAdmission(w) {
		return core.PipelineFactored
	}
	return core.PipelineDense
}

func solverName(h Hints, designSet int) string {
	if h.FirstOrder || designSet > 384 {
		return "first-order"
	}
	return "barrier"
}

func coreOptions(h Hints, factored bool) core.Options {
	o := core.Options{}
	if factored {
		o.Pipeline = core.PipelineFactored
	}
	if h.FirstOrder {
		o.Solver = core.SolverFirstOrder
	}
	return o
}

// --- marginals: the closed-form optimal designer for marginal sets ---

type marginalsGen struct{}

func (marginalsGen) Name() string { return "marginals" }

func (marginalsGen) Propose(w *workload.Workload, h Hints, forced bool) (*Proposal, string) {
	subsets, ok := w.MarginalSubsets()
	if !ok {
		return nil, refuse("shape", "workload is not a plain marginal set (no marginal-subset metadata)")
	}
	dims := w.Shape().Dims()
	if dims > 30 {
		return nil, refuse("dims", "%d dimensions exceed the subset-mask limit of 30", dims)
	}
	n := w.Cells()
	if h.sizeClass(n) > SizeMedium {
		return nil, refuse("size-cap", "dense marginal strategy needs ≤ %d cells, workload has %d", MediumCellCap, n)
	}
	cost := float64(n)*float64(n) + math.Exp2(float64(dims))*float64(n)
	return &Proposal{
		Cost:  cost,
		Score: 0,
		Note:  "closed-form marginal design: provably optimal (meets the Thm 2 bound), no O(n³) work",
		Build: func() (Built, error) {
			res, err := core.DesignMarginals(w.Shape(), subsets)
			if err != nil {
				return Built{}, err
			}
			return Built{Op: res.Strategy, Dense: res.Strategy, Eigenvalues: res.Eigenvalues}, nil
		},
	}, ""
}

// --- eigen: the exact Eigen-Design (Program 2) ---

type eigenGen struct{}

func (eigenGen) Name() string { return "eigen" }

func (eigenGen) Propose(w *workload.Workload, h Hints, forced bool) (*Proposal, string) {
	n := w.Cells()
	factored := factoredAdmission(w)
	var cost float64
	var note string
	if factored {
		if n > FactoredExactCellCap {
			return nil, refuse("size-cap", "exact factored design streams an n×n constraint matrix; %d cells past the %d cap (principal-vectors covers this regime)", n, FactoredExactCellCap)
		}
		cost = factorCubesCost(w) + 2*denseCubeCost(n)
		note = fmt.Sprintf("exact Program 2 on the factored Kronecker eigenbasis (solver: %s)", solverName(h, n))
	} else {
		if h.sizeClass(n) > SizeMedium {
			return nil, refuse("size-cap", "dense pipeline needs ≤ %d cells (O(n³) algebra), workload has %d", MediumCellCap, n)
		}
		cost = 2 * denseCubeCost(n)
		note = fmt.Sprintf("exact Program 2 on the dense eigenbasis (solver: %s)", solverName(h, n))
	}
	return &Proposal{
		Cost:  cost,
		Score: 1,
		Note:  note,
		Build: func() (Built, error) {
			res, err := core.Design(w, coreOptions(h, factored))
			if err != nil {
				return Built{}, err
			}
			return Built{Op: res.Op, Dense: res.Strategy, Eigenvalues: res.Eigenvalues}, nil
		},
	}, ""
}

// --- eigen-separation: Sec 4.2 grouped weighting ---

type separationGen struct{}

func (separationGen) Name() string { return "eigen-separation" }

func (separationGen) Propose(w *workload.Workload, h Hints, forced bool) (*Proposal, string) {
	n := w.Cells()
	g := h.GroupSize
	if g <= 0 {
		g = int(math.Max(2, math.Round(math.Cbrt(float64(n)))))
	}
	factored := factoredAdmission(w)
	if factored && !forced {
		// The second separation phase optimizes n/g ≈ n^⅔ variables — not
		// the scalable factored design. Auto mode leaves this regime to
		// principal-vectors; an explicit hint still gets it.
		return nil, refuse("regime", "factored separation's second phase keeps n^⅔ variables; principal-vectors is the scalable choice here (force eigen-separation to override)")
	}
	var cost float64
	if factored {
		cost = factorCubesCost(w) + 30*float64(g)*float64(n)*float64(n)
	} else {
		if h.sizeClass(n) > SizeMedium {
			return nil, refuse("size-cap", "dense pipeline needs ≤ %d cells (O(n³) algebra), workload has %d", MediumCellCap, n)
		}
		cost = denseCubeCost(n) + 30*float64(g)*float64(n)*float64(n)
	}
	return &Proposal{
		Cost:  cost,
		Score: 2,
		Note:  fmt.Sprintf("eigen-query separation with group size %d (Sec 4.2): near-exact error at a fraction of the weighting cost", g),
		Build: func() (Built, error) {
			res, err := core.EigenSeparation(w, g, coreOptions(h, factored))
			if err != nil {
				return Built{}, err
			}
			return Built{Op: res.Op, Dense: res.Strategy, Eigenvalues: res.Eigenvalues}, nil
		},
	}, ""
}

// --- principal-vectors: Sec 4.2 k-weight reduction ---

// defaultPrincipalK is the weighted eigen-query count when no hint sets
// one — the value the server's escalation ladder used.
const defaultPrincipalK = 16

type principalGen struct{}

func (principalGen) Name() string { return "principal-vectors" }

func (principalGen) Propose(w *workload.Workload, h Hints, forced bool) (*Proposal, string) {
	n := w.Cells()
	k := h.PrincipalK
	if k <= 0 {
		k = defaultPrincipalK
	}
	factored := factoredAdmission(w)
	var cost float64
	var note string
	if factored {
		cost = factorCubesCost(w) + 30*float64(k)*float64(k)*float64(n) + denseCubeCost(k)
		note = fmt.Sprintf("factored principal-vector design, k=%d: per-dimension eigendecompositions only, k+1 weight variables regardless of n", k)
	} else {
		if h.sizeClass(n) > SizeMedium {
			return nil, refuse("size-cap", "dense pipeline needs ≤ %d cells (O(n³) algebra), workload has %d", MediumCellCap, n)
		}
		cost = denseCubeCost(n) + 30*float64(k)*float64(k)*float64(n)
		note = fmt.Sprintf("principal-vector design, k=%d (Sec 4.2)", k)
	}
	return &Proposal{
		Cost:  cost,
		Score: 3,
		Note:  note,
		Build: func() (Built, error) {
			res, err := core.PrincipalVectors(w, k, coreOptions(h, factored))
			if err != nil {
				return Built{}, err
			}
			return Built{Op: res.Op, Dense: res.Strategy, Eigenvalues: res.Eigenvalues}, nil
		},
	}, ""
}

// --- hierarchical: the Hay et al. tree strategy ---

type hierarchicalGen struct{}

func (hierarchicalGen) Name() string { return "hierarchical" }

func (hierarchicalGen) Propose(w *workload.Workload, h Hints, forced bool) (*Proposal, string) {
	branch := h.Branch
	if branch <= 0 {
		branch = 2
	}
	if branch < 2 {
		return nil, refuse("branch", "branching factor %d < 2", branch)
	}
	n := w.Cells()
	return &Proposal{
		Cost:  4 * float64(n),
		Score: 4,
		Note:  fmt.Sprintf("%d-ary hierarchical strategy (Hay et al.): no optimization cost, near-optimal for range workloads, full rank at any scale", branch),
		Build: func() (Built, error) {
			return Built{Op: strategy.HierarchicalOperator(w.Shape(), branch)}, nil
		},
	}, ""
}

// --- identity: noisy cell counts, the universal fallback ---

type identityGen struct{}

func (identityGen) Name() string { return "identity" }

func (identityGen) Propose(w *workload.Workload, h Hints, forced bool) (*Proposal, string) {
	return &Proposal{
		Cost:  1,
		Score: 5,
		Note:  "identity strategy (noisy cell counts): O(1) memory, supports every workload",
		Build: func() (Built, error) {
			return Built{Op: strategy.IdentityOperator(w.Shape())}, nil
		},
	}, ""
}
