package planner

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"adaptivemm/internal/mm"
	"adaptivemm/internal/workload"
)

// The sharded generator: the first plan that is itself a composition of
// plans. A workload that decomposes into independent blocks — disjoint
// marginal-subset groups, or an explicit block-diagonal query matrix
// (see workload.MarginalBlocks / workload.CellBlocks) — is split, each
// shard is planned independently through this same registry (shards may
// win different generators: closed-form marginals for one block,
// hierarchical for another), and the per-shard plans are stitched into
// one composite Plan whose operator is a block-diagonal linalg stack over
// the shard projections, whose expected error combines the shard
// analyses, and whose release path runs the shard mechanisms with bounded
// parallelism under the caller's single accountant reservation.

const (
	// DefaultMaxShards caps the shard count when hints set none. Past it,
	// the smallest blocks are merged (shards keep all queries; only the
	// split granularity drops).
	DefaultMaxShards = 16

	// ShardMinCells is the smallest domain worth sharding: below it even
	// the exact monolithic design costs microseconds and the composition
	// bookkeeping is pure overhead.
	ShardMinCells = 64

	// shardStitchCostPerCell models the per-cell stitch work (lifting the
	// shard column norms onto the original domain), per shard.
	shardStitchCostPerCell = 10
)

// shardedGen plans each block of a splittable workload through the
// planner it is registered in, then stitches the sub-plans.
type shardedGen struct {
	p *Planner
}

func (g *shardedGen) Name() string { return "sharded" }

// subHints derives the hints a shard's sub-plan is made with: solver and
// budget knobs are inherited, while the forced generator, cache key,
// eager error analysis and shard cap do not apply inside a shard.
func subHints(h Hints) Hints {
	sh := h
	sh.Generator = ""
	sh.CacheKey = ""
	sh.Privacy = mm.Privacy{} // shard analyses are memoized lazily
	sh.MaxShards = -1         // a shard never re-shards
	return sh
}

// splitBlocks runs the splitters in order: marginal blocks for marginal
// sets, cell blocks for explicit block-diagonal matrices. The second
// result is a refusal reason when the workload is not shardable.
func splitBlocks(w *workload.Workload, maxShards int) ([]workload.Block, string) {
	if blocks, ok := workload.MarginalBlocks(w, maxShards); ok {
		if len(blocks) < 2 {
			return nil, refuse("block-count", "the marginal subsets form one connected attribute group; sharding needs ≥2 disjoint blocks")
		}
		return blocks, ""
	}
	if blocks, ok := workload.CellBlocks(w, maxShards); ok {
		if len(blocks) < 2 {
			return nil, refuse("block-count", "the query rows touch one connected cell group; sharding needs ≥2 disjoint blocks")
		}
		return blocks, ""
	}
	return nil, refuse("shape", "workload is neither a marginal set with disjoint attribute groups nor an explicit block-diagonal matrix")
}

func (g *shardedGen) Propose(w *workload.Workload, h Hints, forced bool) (*Proposal, string) {
	if h.MaxShards < 0 {
		return nil, refuse("hint", "sharding disabled (MaxShards < 0)")
	}
	maxShards := h.MaxShards
	if maxShards == 0 {
		maxShards = DefaultMaxShards
	}
	if n := w.Cells(); n < ShardMinCells {
		return nil, refuse("min-cells", "%d cells under the %d-cell sharding floor (composition overhead would dominate)", n, ShardMinCells)
	}
	blocks, reject := splitBlocks(w, maxShards)
	if reject != "" {
		return nil, reject
	}

	// Admit each shard through the registry without building anything:
	// the composite's modeled cost is the sum of the shards' winning
	// candidates plus the stitch work, and its error rank is the worst
	// shard's rank (a composite is only as good as its weakest family).
	sh := subHints(h)
	cost := float64(len(blocks)) * float64(w.Cells()) * shardStitchCostPerCell
	score := 0.0
	var summary []string
	for _, b := range blocks {
		cands, _, err := g.p.propose(b.Sub, sh)
		if err != nil {
			return nil, refuse("shard-admission", "block (%s) has no admissible generator: %v", b.Label(), err)
		}
		top := cands[0]
		cost += top.prop.Cost
		if top.prop.Score > score {
			score = top.prop.Score
		}
		summary = append(summary, fmt.Sprintf("%s→%s", b.Label(), top.gen.Name()))
	}

	if !forced {
		// The split must beat the best monolithic candidate on the
		// planner's own (error rank, cost) order; otherwise report which
		// generator dominates so /design explain output is actionable.
		if name, ms, mc, ok := g.bestMonolithic(w, h); ok &&
			//lint:allow floateq: lexicographic (rank, cost) tie-break on the planner's own modeled scores; exact ties are meaningful, not accidental
			(ms < score || (ms == score && mc <= cost)) {
			return nil, refuse("monolithic-dominates", "%s covers the whole workload at rank %.0f for modeled cost %.3g (sharded: rank %.0f, cost %.3g)",
				name, ms, mc, score, cost)
		}
	}

	return &Proposal{
		Cost:  cost,
		Score: score,
		Note: fmt.Sprintf("sharded into %d independent blocks (%s): per-shard designs stitched into a block-diagonal composite",
			len(blocks), strings.Join(summary, "; ")),
		Build: func() (Built, error) { return g.build(w, blocks, sh) },
	}, ""
}

// bestMonolithic runs every other generator's admission on the whole
// workload and returns the best (score, cost) candidate that fits the
// design budget — a refused split must never cite a generator the budget
// gate is about to reject.
func (g *shardedGen) bestMonolithic(w *workload.Workload, h Hints) (name string, score, cost float64, ok bool) {
	g.p.mu.Lock()
	gens := append([]Generator(nil), g.p.gens...)
	g.p.mu.Unlock()
	for _, other := range gens {
		if other.Name() == g.Name() {
			continue
		}
		prop, _ := other.Propose(w, h, false)
		if prop == nil || prop.Cost > g.p.budgetFor(h, other.Name()) {
			continue
		}
		//lint:allow floateq: lexicographic (rank, cost) tie-break on modeled scores, same order as the refusal check above
		if !ok || prop.Score < score || (prop.Score == score && prop.Cost < cost) {
			name, score, cost, ok = other.Name(), prop.Score, prop.Cost, true
		}
	}
	return name, score, cost, ok
}

// build plans every shard (in parallel, bounded by the host's cores) and
// stitches the sub-plans into the composite mechanism.
func (g *shardedGen) build(w *workload.Workload, blocks []workload.Block, sh Hints) (Built, error) {
	plans := make([]*Plan, len(blocks))
	errs := make([]error, len(blocks))
	par := runtime.GOMAXPROCS(0)
	if par > len(blocks) {
		par = len(blocks)
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, b := range blocks {
		wg.Add(1)
		go func(i int, b workload.Block) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			plans[i], errs[i] = g.p.Plan(b.Sub, sh)
		}(i, b)
	}
	wg.Wait()
	shards := make([]mm.Shard, len(blocks))
	infos := make([]ShardInfo, len(blocks))
	for i, b := range blocks {
		if errs[i] != nil {
			return Built{}, fmt.Errorf("shard (%s): %w", b.Label(), errs[i])
		}
		segs := make([]mm.RowSegment, len(b.Segments))
		for j, s := range b.Segments {
			segs[j] = mm.RowSegment{Start: s.Start, Len: s.Len}
		}
		shards[i] = mm.Shard{
			Mechanism: plans[i].Mechanism,
			Project:   b.Project,
			Workload:  b.Sub,
			Segments:  segs,
		}
		infos[i] = ShardInfo{
			Kind:        b.Kind,
			Attrs:       b.Attrs,
			Cells:       b.Sub.Cells(),
			Queries:     b.Sub.NumQueries(),
			Generator:   plans[i].Generator,
			Inference:   plans[i].Inference.String(),
			ModeledCost: plans[i].ModeledCost,
		}
	}
	mech, err := mm.NewShardedMechanism(w, shards, 0)
	if err != nil {
		return Built{}, err
	}
	return Built{
		Op:         mech.Strategy(),
		Prepared:   mech,
		Shards:     infos,
		ShardPlans: plans,
	}, nil
}
