// Package planner is the unified cost-based strategy planner: the single
// place where "which strategy answers this workload, and how" is decided.
//
// Before it existed the choice was re-implemented three times with
// different rules — core auto-switched its pipelines on a structured
// threshold, the HTTP server hard-coded an eigen→principal→hierarchical
// escalation ladder, and the mechanism guessed its inference path from
// the strategy representation. The planner consolidates all of that:
//
//   - a registry of candidate strategy GENERATORS (identity, hierarchical,
//     exact eigen design with its barrier/first-order solvers,
//     eigen-separation, principal-vectors, the closed-form marginal
//     designer), each with an admission rule and a modeled design cost;
//   - a COST MODEL combining the paper's comparative expected-error
//     analysis (generators are ranked by the error class the paper
//     establishes for them) with modeled design-time cost in work units,
//     calibrated against measured build times;
//   - per-request HINTS (latency budget, max design time/cost, domain
//     size class, privacy pair) that tilt the choice;
//   - a PLAN artifact carrying the chosen operator, eigenvalues, error
//     estimate, prepared mechanism and the explicit inference method, so
//     downstream layers execute decisions instead of re-making them;
//   - an optional PLAN CACHE keyed by caller-supplied canonical workload
//     keys plus the hint fingerprint — the "cached" generator.
//
// The public API, core and the release-engine server all plan through
// this package; new generators (sharded, multi-backend) register here
// without touching any caller.
package planner

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/workload"
)

// StructuredThreshold is the admission rule, moved here from core, that
// sends product-form workloads down the factored (matrix-free) pipeline:
// past this many cells the dense eigenbasis is never materialized.
const StructuredThreshold = 1024

// SizeClass buckets domains by the algebra they can afford. The planner
// derives it from the cell count; a hint can only restrict it further
// (declare a domain Large to forbid dense algebra regardless of size).
type SizeClass int

const (
	// SizeAuto derives the class from the workload's cell count.
	SizeAuto SizeClass = iota
	// SizeSmall domains (≤ SmallCellCap cells) afford exact dense design
	// within the default design budget.
	SizeSmall
	// SizeMedium domains (≤ MediumCellCap cells) afford dense algebra
	// when the budget allows it.
	SizeMedium
	// SizeLarge domains run matrix-free only.
	SizeLarge
)

const (
	// SmallCellCap bounds SizeSmall.
	SmallCellCap = 512
	// MediumCellCap bounds SizeMedium, and with it every generator that
	// needs dense O(n²) memory or O(n³) algebra.
	MediumCellCap = 4096
	// FactoredExactCellCap bounds the exact factored eigen design, whose
	// weighting program still streams an n×n constraint matrix.
	FactoredExactCellCap = 8192
)

// DefaultAnalysisCellCap is the cell count up to which a plan computes
// the exact expected-error analysis (an O(n³) dense eigendecomposition)
// when no hint overrides it.
const DefaultAnalysisCellCap = 512

// DefaultMaxDesignCost is the design budget, in modeled work units
// (roughly floating-point operations), applied when hints set none. It is
// calibrated so the exact eigen design is admitted up to ~SmallCellCap
// cells and refused past it — the escalation point the server shipped
// with before the planner existed.
const DefaultMaxDesignCost = 6e9

// DefaultUnitsPerSecond seeds the work-units-per-second rate used to
// convert MaxDesignTime hints into a cost budget. The planner refines it
// with an EWMA of measured build throughput.
const DefaultUnitsPerSecond = 5e8

// Hints are the per-request knobs a caller passes to Plan. The zero value
// asks for the default cost-based choice.
type Hints struct {
	// Privacy is the (ε,δ) pair used to report the plan's expected error
	// and lower bound. The zero value skips the error analysis (the
	// generator ranking does not depend on it: expected error scales
	// uniformly in P(ε,δ) across candidates).
	Privacy mm.Privacy
	// MaxDesignCost bounds the modeled design cost in work units; 0
	// applies DefaultMaxDesignCost.
	MaxDesignCost float64
	// MaxDesignTime bounds design time, converted to work units with the
	// planner's measured throughput. When both it and MaxDesignCost are
	// set the tighter bound wins.
	MaxDesignTime time.Duration
	// LatencyTarget is the per-release latency the caller wants. A target
	// tighter than the modeled iterative-inference latency makes the plan
	// buy the one-time dense pseudo-inverse when the strategy fits it.
	LatencyTarget time.Duration
	// Size restricts the domain-size class (it can only tighten the
	// derived class, never relax it).
	Size SizeClass
	// Generator forces a named generator instead of the cost-based
	// choice; the design budget is then ignored, but hard admission rules
	// (memory, representation) still apply.
	Generator string
	// GroupSize overrides eigen-separation's group size (default n^⅓).
	GroupSize int
	// PrincipalK overrides principal-vectors' weighted-query count
	// (default 16).
	PrincipalK int
	// Branch overrides the hierarchical branching factor (default 2).
	Branch int
	// FirstOrder forces the first-order solver in the optimizing
	// generators.
	FirstOrder bool
	// AnalysisCap overrides the cell count up to which the exact error
	// analysis runs: 0 applies DefaultAnalysisCellCap, negative disables
	// the analysis.
	AnalysisCap int
	// MaxShards bounds how many shards the sharded generator may split a
	// workload into: 0 applies DefaultMaxShards, values ≥ 2 cap the count
	// (excess blocks are merged smallest-first), and negative values
	// disable sharding entirely.
	MaxShards int
	// CacheKey, when non-empty and the planner has a cache, makes the
	// plan reusable under this canonical workload key combined with the
	// hint fingerprint. Callers must guarantee equal keys mean equal
	// workloads.
	CacheKey string
}

// Fingerprint returns the canonical encoding of every hint that affects
// generator choice — the cache-key suffix. Privacy is excluded: it scales
// all candidates' errors by the same factor and never changes the winner
// (per-pair error analyses are memoized on the Plan instead). AnalysisCap
// is excluded too: it only bounds how large a domain gets the eager error
// analysis, never which generator wins — and keeping it out lets a plan
// saved offline (amdesign -save, analysis cap 2048) land in the cache
// slot a server (analysis cap 512) looks up for the same spec.
func (h Hints) Fingerprint() string {
	return fmt.Sprintf("v3|c=%g|t=%d|lat=%d|sz=%d|gen=%s|g=%d|k=%d|b=%d|fo=%t|ms=%d",
		h.MaxDesignCost, int64(h.MaxDesignTime), int64(h.LatencyTarget), h.Size,
		h.Generator, h.GroupSize, h.PrincipalK, h.Branch, h.FirstOrder, h.MaxShards)
}

// sizeClass returns the effective class: derived from the cell count,
// tightened by the hint.
func (h Hints) sizeClass(n int) SizeClass {
	derived := SizeSmall
	switch {
	case n > MediumCellCap:
		derived = SizeLarge
	case n > SmallCellCap:
		derived = SizeMedium
	}
	if h.Size > derived {
		return h.Size
	}
	return derived
}

func (h Hints) analysisCap() int {
	switch {
	case h.AnalysisCap < 0:
		return 0
	case h.AnalysisCap == 0:
		return DefaultAnalysisCellCap
	default:
		return h.AnalysisCap
	}
}

// Proposal is a generator's admission answer: the modeled design cost,
// the error rank used for selection, and the deferred build.
type Proposal struct {
	// Cost is the modeled design cost in work units.
	Cost float64
	// Score ranks the expected workload error of this generator's output
	// relative to the other generators (lower is better), following the
	// paper's comparative analysis. Ties break toward lower Cost.
	Score float64
	// Note is a one-line rationale reported in the plan.
	Note string
	// Build runs the design.
	Build func() (Built, error)
}

// Built is a generator's raw output before the planner prepares the
// mechanism around it.
type Built struct {
	// Op is the strategy operator (always set).
	Op linalg.Operator
	// Dense is the explicit strategy matrix when the pipeline produced
	// one.
	Dense *linalg.Matrix
	// Eigenvalues of WᵀW when the generator computed them.
	Eigenvalues []float64
	// Prepared is a mechanism the generator already built around the
	// strategy; when set the planner skips its own inference choice and
	// mechanism preparation (the sharded generator's composite mechanism
	// fixes both).
	Prepared *mm.Mechanism
	// Shards describes the composite plan's shards, in order, when the
	// strategy is a sharded composition.
	Shards []ShardInfo
	// ShardPlans are the underlying per-shard plans of a composite.
	ShardPlans []*Plan
}

// ShardInfo is the reportable summary of one shard of a composite plan;
// the server surfaces the list in /design responses.
type ShardInfo struct {
	// Kind is "marginal-block" or "cell-block".
	Kind string `json:"kind"`
	// Attrs lists the original attribute ids the shard owns (marginal
	// blocks only).
	Attrs []int `json:"attrs,omitempty"`
	// Cells is the shard's sub-domain size.
	Cells int `json:"cells"`
	// Queries is the shard's sub-workload query count.
	Queries int `json:"queries"`
	// Generator names the generator that won the shard's sub-plan.
	Generator string `json:"generator"`
	// Inference is the shard's chosen inference method.
	Inference string `json:"inference"`
	// ModeledCost is the shard sub-plan's modeled design cost.
	ModeledCost float64 `json:"modeledCost"`
}

// Generator is one candidate strategy family in the registry. Propose
// returns the admission decision for (w, h): a proposal, or a one-line
// rejection reason. forced reports that the caller named this generator
// explicitly — admission may then relax budget-motivated gates (e.g. the
// separation generator offers its factored pipeline only when forced,
// since principal-vectors dominates it in auto mode at scale).
type Generator interface {
	Name() string
	Propose(w *workload.Workload, h Hints, forced bool) (*Proposal, string)
}

// Decision records one generator's fate during planning; the server
// surfaces the list in /design responses.
type Decision struct {
	Generator   string  `json:"generator"`
	Admitted    bool    `json:"admitted"`
	Selected    bool    `json:"selected"`
	ModeledCost float64 `json:"modeledCost,omitempty"`
	Reason      string  `json:"reason,omitempty"`
}

// Plan is the artifact a planning run produces: everything downstream
// layers need to execute releases without re-deciding anything.
type Plan struct {
	// Generator names the winning generator.
	Generator string
	// Note is the winner's rationale.
	Note string
	// Workload is the planned workload.
	Workload *workload.Workload
	// Op is the strategy operator.
	Op linalg.Operator
	// Dense is the explicit strategy matrix when one exists.
	Dense *linalg.Matrix
	// Eigenvalues of WᵀW when the winning generator computed them (they
	// feed the Thm 2 lower bound).
	Eigenvalues []float64
	// Inference is the explicitly chosen inference method.
	Inference mm.Inference
	// Mechanism is the prepared release mechanism.
	Mechanism *mm.Mechanism
	// ModeledCost is the winner's modeled design cost.
	ModeledCost float64
	// DesignTime is the measured build time.
	DesignTime time.Duration
	// Decisions lists every generator's admission outcome.
	Decisions []Decision
	// Shards describes the per-shard sub-plans when the plan is a sharded
	// composition (generator "sharded"); nil otherwise.
	Shards []ShardInfo

	// shardPlans backs the composite error analysis of sharded plans.
	shardPlans []*Plan

	analysisCap int
	mu          sync.Mutex
	errByPair   map[mm.Privacy]float64
}

// ExpectedError returns the analytic RMSE of answering the planned
// workload with this plan's strategy at the given privacy pair (Prop. 4),
// memoized per pair. It reports 0 without error past the plan's analysis
// cap, where the O(n³) analysis is deliberately skipped. Sharded plans
// combine the per-shard analyses instead — each shard analyzes its own
// (much smaller) sub-domain, so a composite over a domain far past the
// cap still reports a real error as long as every shard affords its own
// analysis.
func (p *Plan) ExpectedError(pr mm.Privacy) (float64, error) {
	if p.shardPlans != nil {
		return p.shardedExpectedError(pr)
	}
	if p.Workload.Cells() > p.analysisCap {
		return 0, nil
	}
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.errByPair[pr]; ok {
		return e, nil
	}
	e, err := mm.Error(p.Workload, p.Op, pr)
	if err != nil {
		return 0, err
	}
	if p.errByPair == nil {
		p.errByPair = map[mm.Privacy]float64{}
	}
	p.errByPair[pr] = e
	return e, nil
}

// shardedExpectedError combines the shard plans' analyses into the
// composite RMSE. Shard i's per-query mean squared error under the
// composite noise scale is its standalone MSE rescaled by the sensitivity
// ratio (the composite calibrates one σ to the end-to-end sensitivity),
// so with Eᵢ the standalone shard error, sᵢ the shard sensitivity and s
// the composite sensitivity,
//
//	E² = Σᵢ mᵢ·(Eᵢ·s/sᵢ)² / Σᵢ mᵢ.
//
// If any shard skipped its analysis (past the analysis cap) the composite
// reports 0 (skipped) too.
func (p *Plan) shardedExpectedError(pr mm.Privacy) (float64, error) {
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	p.mu.Lock()
	if e, ok := p.errByPair[pr]; ok {
		p.mu.Unlock()
		return e, nil
	}
	p.mu.Unlock()
	sens := p.Mechanism.SensitivityL2()
	var sumSq float64
	var m int
	for _, sp := range p.shardPlans {
		e, err := sp.ExpectedError(pr)
		if err != nil {
			return 0, err
		}
		if e == 0 {
			return 0, nil // a shard skipped its analysis: composite skipped
		}
		si := sp.Mechanism.SensitivityL2()
		if si <= 0 {
			return 0, fmt.Errorf("planner: shard %q has zero sensitivity", sp.Generator)
		}
		mi := sp.Workload.NumQueries()
		scaled := e * sens / si
		sumSq += float64(mi) * scaled * scaled
		m += mi
	}
	if m == 0 {
		return 0, fmt.Errorf("planner: sharded plan has no queries")
	}
	e := math.Sqrt(sumSq / float64(m))
	p.mu.Lock()
	if p.errByPair == nil {
		p.errByPair = map[mm.Privacy]float64{}
	}
	p.errByPair[pr] = e
	p.mu.Unlock()
	return e, nil
}

// LowerBound returns the Thm 2 lower bound for the planned workload at
// the given pair, or 0 when the winning generator did not compute the
// workload eigenvalues.
func (p *Plan) LowerBound(pr mm.Privacy) float64 {
	if p.Eigenvalues == nil || pr.Validate() != nil {
		return 0
	}
	return mm.LowerBoundFromEigenvalues(p.Eigenvalues, p.Workload.NumQueries(), pr)
}

// Config configures a Planner.
type Config struct {
	// CacheSize bounds the plan cache; 0 disables caching.
	CacheSize int
}

// Planner holds the generator registry, the plan cache and the measured
// design throughput. It is safe for concurrent use.
type Planner struct {
	mu   sync.Mutex
	gens []Generator
	// rate is the global EWMA of work units per second, the fallback for
	// generators with no measured history of their own.
	rate float64
	// rates calibrates the throughput per generator: the cost models of
	// different families measure different work (an eigendecomposition's
	// work unit is not a weighting solve's), so MaxDesignTime budgets are
	// converted with the rate of the generator being admitted.
	rates map[string]float64
	// builds counts strategy builds actually executed (successful or
	// failed), as opposed to plans served from the cache or rehydrated
	// from a store. Restart tests assert it stays zero on a warm server.
	builds int64
	pc     *planCache
}

// New returns a planner with the default generator registry.
func New(cfg Config) *Planner {
	p := &Planner{rate: DefaultUnitsPerSecond, rates: map[string]float64{}}
	if cfg.CacheSize > 0 {
		p.pc = newPlanCache(cfg.CacheSize)
	}
	p.gens = []Generator{
		marginalsGen{},
		eigenGen{},
		separationGen{},
		principalGen{},
		hierarchicalGen{},
		identityGen{},
		&shardedGen{p: p},
	}
	return p
}

// Register appends a generator to the registry. Selection ranks by
// (Score, Cost), so registration order only breaks exact ties.
func (p *Planner) Register(g Generator) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gens = append(p.gens, g)
}

// Generators returns the registered generator names in registry order.
func (p *Planner) Generators() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, len(p.gens))
	for i, g := range p.gens {
		names[i] = g.Name()
	}
	return names
}

func (p *Planner) currentRate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rate
}

// rateFor returns the measured throughput for one generator, falling back
// to the global rate while the generator has no history.
func (p *Planner) rateFor(gen string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.rates[gen]; ok {
		return r
	}
	return p.rate
}

// RateSnapshot returns the calibrated design-throughput state: one entry
// per generator with measured history, plus the global fallback rate
// under the empty key. The snapshot is what the plan store persists so a
// restarted server budgets MaxDesignTime hints from measured history
// instead of the cold default.
func (p *Planner) RateSnapshot() map[string]float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]float64, len(p.rates)+1)
	for g, r := range p.rates {
		out[g] = r
	}
	out[""] = p.rate
	return out
}

// RestoreRates folds a persisted snapshot back into the calibration:
// the empty key restores the global rate, other keys their generator's.
// Non-positive or absurd rates are clamped like measured ones.
func (p *Planner) RestoreRates(rates map[string]float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for g, r := range rates {
		r = clampRate(r)
		if g == "" {
			p.rate = r
		} else {
			p.rates[g] = r
		}
	}
}

// Builds returns how many strategy builds this planner has executed
// (cache hits and rehydrated plans do not count).
func (p *Planner) Builds() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.builds
}

func clampRate(r float64) float64 {
	// The negated comparison also catches NaN (from a corrupt persisted
	// snapshot): a NaN rate would turn every budget check into a no-op.
	if !(r >= 1e6) {
		return 1e6
	}
	if r > 1e13 {
		return 1e13
	}
	return r
}

// minCalibrationCost is the smallest modeled cost a build must have to
// feed the throughput estimate: trivial builds (identity, hierarchical)
// measure timer noise, not compute throughput, and would drag the rate
// orders of magnitude off.
const minCalibrationCost = 1e7

// observeRate folds one measured build into the throughput estimates used
// to convert MaxDesignTime hints into cost budgets: the winning
// generator's own rate (seeded from the global rate on its first
// measurement) and the global fallback.
func (p *Planner) observeRate(gen string, cost float64, elapsed time.Duration) {
	secs := elapsed.Seconds()
	if secs <= 0 || cost < minCalibrationCost {
		return
	}
	observed := cost / secs
	p.mu.Lock()
	defer p.mu.Unlock()
	prev, ok := p.rates[gen]
	if !ok {
		prev = p.rate
	}
	p.rates[gen] = clampRate(0.75*prev + 0.25*observed)
	p.rate = clampRate(0.75*p.rate + 0.25*observed)
}

// budgetFor resolves the hints into one cost bound for a named generator:
// a MaxDesignTime hint converts to work units at that generator's own
// measured throughput (per-generator cost models measure different work,
// so one global rate would misbudget the others).
func (p *Planner) budgetFor(h Hints, gen string) float64 {
	b := h.MaxDesignCost
	if h.MaxDesignTime > 0 {
		tb := h.MaxDesignTime.Seconds() * p.rateFor(gen)
		if b == 0 || tb < b {
			b = tb
		}
	}
	if b == 0 {
		return DefaultMaxDesignCost
	}
	return b
}

// scoredCand pairs an admitted proposal with its decision-slot index.
type scoredCand struct {
	gen  Generator
	prop *Proposal
	di   int
}

// propose runs admission for every generator (or only the forced one) and
// returns the admitted candidates in build-preference order.
func (p *Planner) propose(w *workload.Workload, h Hints) ([]scoredCand, []Decision, error) {
	p.mu.Lock()
	gens := append([]Generator(nil), p.gens...)
	p.mu.Unlock()

	if h.Generator != "" {
		for _, g := range gens {
			if g.Name() != h.Generator {
				continue
			}
			prop, reject := g.Propose(w, h, true)
			if prop == nil {
				return nil, nil, fmt.Errorf("planner: generator %q refused workload %q: %s", h.Generator, w.Name(), reject)
			}
			d := []Decision{{Generator: g.Name(), Admitted: true, ModeledCost: prop.Cost, Reason: "forced by hint: " + prop.Note}}
			return []scoredCand{{gen: g, prop: prop, di: 0}}, d, nil
		}
		return nil, nil, fmt.Errorf("planner: unknown generator %q (registered: %s)", h.Generator, strings.Join(p.Generators(), ", "))
	}

	decisions := make([]Decision, 0, len(gens))
	var admitted []scoredCand
	var cheapest *scoredCand
	for _, g := range gens {
		prop, reject := g.Propose(w, h, false)
		if prop == nil {
			decisions = append(decisions, Decision{Generator: g.Name(), Reason: reject})
			continue
		}
		di := len(decisions)
		decisions = append(decisions, Decision{Generator: g.Name(), ModeledCost: prop.Cost, Reason: prop.Note})
		c := scoredCand{gen: g, prop: prop, di: di}
		if cheapest == nil || prop.Cost < cheapest.prop.Cost {
			cc := c
			cheapest = &cc
		}
		// Each generator is budgeted at its own measured throughput:
		// MaxDesignTime converts to a different work-unit bound per family.
		if budget := p.budgetFor(h, g.Name()); prop.Cost > budget {
			decisions[di].Reason = refuse("budget", "modeled cost %.3g exceeds the design budget %.3g", prop.Cost, budget)
			continue
		}
		decisions[di].Admitted = true
		admitted = append(admitted, c)
	}
	if len(admitted) == 0 {
		if cheapest == nil {
			return nil, decisions, fmt.Errorf("planner: no generator can produce a strategy for workload %q", w.Name())
		}
		// Nothing fits the budget: escalate to the cheapest candidate
		// rather than fail — a plan that is late beats no plan.
		decisions[cheapest.di].Admitted = true
		decisions[cheapest.di].Reason = fmt.Sprintf(
			"over the design budget %.3g like every candidate; selected as the cheapest escape (modeled cost %.3g)",
			p.budgetFor(h, cheapest.gen.Name()), cheapest.prop.Cost)
		admitted = []scoredCand{*cheapest}
	}
	sort.SliceStable(admitted, func(i, j int) bool {
		//lint:allow floateq: sort tie-break — a tolerance here would make the comparator intransitive; ties fall through to cost deterministically
		if admitted[i].prop.Score != admitted[j].prop.Score {
			return admitted[i].prop.Score < admitted[j].prop.Score
		}
		return admitted[i].prop.Cost < admitted[j].prop.Cost
	})
	return admitted, decisions, nil
}

// Explain runs admission and selection without building anything: the
// returned decisions mark which generator would win. It backs the
// table-driven planner tests and diagnostic endpoints.
func (p *Planner) Explain(w *workload.Workload, h Hints) ([]Decision, error) {
	cands, decisions, err := p.propose(w, h)
	if err != nil {
		return decisions, err
	}
	decisions[cands[0].di].Selected = true
	return decisions, nil
}

// Plan picks a generator for (w, h), builds the strategy (falling back
// through the admission order when a build fails), chooses the inference
// method, prepares the mechanism, and runs the error analysis when the
// domain affords it.
func (p *Planner) Plan(w *workload.Workload, h Hints) (*Plan, error) {
	var key string
	if p.pc != nil && h.CacheKey != "" {
		key = h.CacheKey + "#" + h.Fingerprint()
		if pl, ok := p.pc.get(key); ok {
			return pl, nil
		}
	}

	cands, decisions, err := p.propose(w, h)
	if err != nil {
		return nil, err
	}
	var built *Built
	var win scoredCand
	var failures []string
	var elapsed time.Duration
	for _, c := range cands {
		// Time each build separately: a failed candidate's wasted time
		// must not pollute the winner's reported design time or the
		// throughput calibration.
		p.mu.Lock()
		p.builds++
		p.mu.Unlock()
		start := time.Now()
		b, err := c.prop.Build()
		if err != nil {
			decisions[c.di].Reason = refuse("build", "design failed: %v", err)
			decisions[c.di].Admitted = false
			failures = append(failures, fmt.Sprintf("%s: %v", c.gen.Name(), err))
			continue
		}
		elapsed = time.Since(start)
		built, win = &b, c
		break
	}
	if built == nil {
		return nil, fmt.Errorf("planner: every admitted generator failed: %s", strings.Join(failures, "; "))
	}
	if built.Prepared == nil {
		// Composite builds plan their shards concurrently and each shard's
		// own Plan call already calibrated the rate; folding the summed
		// cost over the parallel wall-clock would double-count the work
		// and inflate the throughput by up to the core count.
		p.observeRate(win.gen.Name(), win.prop.Cost, elapsed)
	}
	decisions[win.di].Selected = true

	mech := built.Prepared
	var inf mm.Inference
	if mech != nil {
		// The generator prepared the mechanism itself (sharded composites
		// fix their own inference); the planner only reports it.
		inf = mech.Inference()
	} else {
		inf = p.chooseInference(*built, h)
		mech, err = mm.NewMechanismInference(built.Op, inf)
		if err != nil {
			return nil, fmt.Errorf("planner: preparing %s inference for generator %s: %w", inf, win.gen.Name(), err)
		}
	}
	plan := &Plan{
		Generator:   win.gen.Name(),
		Note:        win.prop.Note,
		Workload:    w,
		Op:          built.Op,
		Dense:       built.Dense,
		Eigenvalues: built.Eigenvalues,
		Inference:   inf,
		Mechanism:   mech,
		ModeledCost: win.prop.Cost,
		DesignTime:  elapsed,
		Decisions:   decisions,
		Shards:      built.Shards,
		shardPlans:  built.ShardPlans,
		analysisCap: h.analysisCap(),
	}
	if h.Privacy.Validate() == nil {
		if _, err := plan.ExpectedError(h.Privacy); err != nil {
			return nil, fmt.Errorf("planner: error analysis: %w", err)
		}
	}
	if key != "" {
		p.pc.put(key, plan)
	}
	return plan, nil
}

// normalCGCellCap bounds the dense Gram the normal-equations inference
// precomputes; tallRowFactor is how much taller than square a strategy
// must be before the O(n²)-per-iteration normal path beats CGLS's two
// operator matvecs.
const (
	normalCGCellCap = 2048
	tallRowFactor   = 4
)

// chooseInference picks the inference method for a built strategy —
// explicitly, so mm.Mechanism executes rather than guesses.
func (p *Planner) chooseInference(b Built, h Hints) mm.Inference {
	op := b.Op
	n := op.Cols()
	if b.Dense != nil && n <= mm.DenseInferenceCap {
		return mm.InferDensePinv
	}
	// A latency target tighter than the modeled iterative solve buys the
	// one-time pseudo-inverse when the strategy can be densified.
	if h.LatencyTarget > 0 && n <= mm.DenseInferenceCap &&
		n > 0 && op.Rows() <= linalg.MaterializeCap/n &&
		h.LatencyTarget < p.estimateIterativeLatency(op) {
		return mm.InferDensePinv
	}
	// Very tall strategies with an affordable Gram: per-release cost
	// O(n²) per iteration regardless of the row count.
	if n <= normalCGCellCap && op.Rows() > tallRowFactor*n {
		return mm.InferNormalCG
	}
	return mm.InferCGLS
}

// matvecOpsPerSecond is the fixed throughput the release-latency model
// assumes. Deliberately NOT the design-throughput EWMA: that rate is
// calibrated in modeled design-cost units and drifts with planning
// history, which would make the LatencyTarget hint's behavior — and the
// cached plan it freezes — depend on which requests arrived first.
const matvecOpsPerSecond = 5e8

// estimateIterativeLatency is a coarse model of one CGLS release:
// ~150 iterations of two matvecs, each touching rows+cols values.
func (p *Planner) estimateIterativeLatency(op linalg.Operator) time.Duration {
	ops := 150 * 2 * 8 * float64(op.Rows()+op.Cols())
	return time.Duration(ops / matvecOpsPerSecond * float64(time.Second))
}

// PlanState is the complete persistable state of a Plan, exposing the
// unexported pieces (analysis cap, memoized per-pair errors, shard
// sub-plans) the plan-store codec needs. State snapshots it; RehydratePlan
// reassembles a Plan from a decoded snapshot.
type PlanState struct {
	Generator   string
	Note        string
	Workload    *workload.Workload
	Op          linalg.Operator
	Dense       *linalg.Matrix
	Eigenvalues []float64
	Inference   mm.Inference
	Mechanism   *mm.Mechanism
	ModeledCost float64
	DesignTime  time.Duration
	Decisions   []Decision
	Shards      []ShardInfo
	// ShardPlans are the per-shard sub-plans of a sharded composition, in
	// shard order; nil for monolithic plans.
	ShardPlans []*Plan
	// AnalysisCap is the cell count up to which ExpectedError runs the
	// exact analysis.
	AnalysisCap int
	// ErrByPair is the memoized per-privacy-pair error analysis.
	ErrByPair map[mm.Privacy]float64
}

// State returns a snapshot of the plan for persistence. The error memo is
// copied under the plan's lock, so concurrent ExpectedError calls are
// safe; operators and the mechanism are shared, not copied (they are
// immutable after construction).
func (p *Plan) State() PlanState {
	p.mu.Lock()
	memo := make(map[mm.Privacy]float64, len(p.errByPair))
	for pr, e := range p.errByPair {
		memo[pr] = e
	}
	p.mu.Unlock()
	return PlanState{
		Generator:   p.Generator,
		Note:        p.Note,
		Workload:    p.Workload,
		Op:          p.Op,
		Dense:       p.Dense,
		Eigenvalues: p.Eigenvalues,
		Inference:   p.Inference,
		Mechanism:   p.Mechanism,
		ModeledCost: p.ModeledCost,
		DesignTime:  p.DesignTime,
		Decisions:   p.Decisions,
		Shards:      p.Shards,
		ShardPlans:  p.shardPlans,
		AnalysisCap: p.analysisCap,
		ErrByPair:   memo,
	}
}

// RehydratePlan reassembles a Plan from a persisted snapshot. It
// validates the structural invariants downstream layers rely on — a
// workload, a strategy operator and a prepared mechanism must be present,
// the mechanism's inference method must match the recorded one, and a
// sharded plan must carry one sub-plan per shard.
func RehydratePlan(st PlanState) (*Plan, error) {
	if st.Workload == nil || st.Op == nil || st.Mechanism == nil {
		return nil, fmt.Errorf("planner: rehydrated plan needs a workload, a strategy operator and a mechanism")
	}
	if st.Mechanism.Inference() != st.Inference {
		return nil, fmt.Errorf("planner: rehydrated mechanism infers by %s, plan recorded %s",
			st.Mechanism.Inference(), st.Inference)
	}
	if st.Op.Cols() != st.Workload.Cells() {
		return nil, fmt.Errorf("planner: rehydrated strategy has %d cells, workload %d", st.Op.Cols(), st.Workload.Cells())
	}
	if len(st.Shards) != len(st.ShardPlans) {
		return nil, fmt.Errorf("planner: rehydrated plan has %d shard infos for %d shard plans",
			len(st.Shards), len(st.ShardPlans))
	}
	memo := make(map[mm.Privacy]float64, len(st.ErrByPair))
	for pr, e := range st.ErrByPair {
		memo[pr] = e
	}
	return &Plan{
		Generator:   st.Generator,
		Note:        st.Note,
		Workload:    st.Workload,
		Op:          st.Op,
		Dense:       st.Dense,
		Eigenvalues: st.Eigenvalues,
		Inference:   st.Inference,
		Mechanism:   st.Mechanism,
		ModeledCost: st.ModeledCost,
		DesignTime:  st.DesignTime,
		Decisions:   st.Decisions,
		Shards:      st.Shards,
		shardPlans:  st.ShardPlans,
		analysisCap: st.AnalysisCap,
		errByPair:   memo,
	}, nil
}

// planCache is a bounded FIFO plan cache.
type planCache struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*Plan
	order []string
}

func newPlanCache(cap int) *planCache {
	return &planCache{cap: cap, m: map[string]*Plan{}}
}

func (c *planCache) get(key string) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[key]
	return p, ok
}

func (c *planCache) put(key string, p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		c.m[key] = p
		return
	}
	for len(c.m) >= c.cap && len(c.order) > 0 {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.m, old)
	}
	c.m[key] = p
	c.order = append(c.order, key)
}
