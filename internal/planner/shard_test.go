package planner

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/workload"
)

// A marginal workload over ≥2 disjoint attribute groups must be planned
// sharded by default, with every shard winning the closed-form marginal
// designer and the plan reporting the per-shard details.
func TestShardedWinsOnDisjointMarginals(t *testing.T) {
	w := workload.Marginals(domain.MustShape(16, 16), 1) // subsets {0},{1}: 2 blocks
	p := New(Config{})
	if got := winner(t, p, w, Hints{}); got != "sharded" {
		t.Fatalf("winner = %q, want sharded", got)
	}
	plan, err := p.Plan(w, Hints{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Generator != "sharded" || plan.Inference != mm.InferSharded {
		t.Fatalf("plan = %s/%s, want sharded/sharded", plan.Generator, plan.Inference)
	}
	if len(plan.Shards) != 2 {
		t.Fatalf("plan reports %d shards, want 2", len(plan.Shards))
	}
	for i, s := range plan.Shards {
		if s.Generator != "marginals" {
			t.Fatalf("shard %d generator = %q, want marginals (closed-form optimal per block)", i, s.Generator)
		}
		if s.Kind != "marginal-block" || s.Cells != 16 || s.Queries != 16 {
			t.Fatalf("shard %d = %+v", i, s)
		}
	}
	// The composite must release end to end.
	x := make([]float64, w.Cells())
	for i := range x {
		x[i] = float64(i % 5)
	}
	pr := mm.Privacy{Epsilon: 0.5, Delta: 1e-4}
	ans, err := plan.Mechanism.AnswerGaussian(w, x, pr, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != w.NumQueries() {
		t.Fatalf("got %d answers, want %d", len(ans), w.NumQueries())
	}
	// The per-shard analyses combine into a real composite error report.
	e, err := plan.ExpectedError(pr)
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 {
		t.Fatalf("expected error = %g, want > 0 (shards are small enough to analyze)", e)
	}
	// Sanity: the composite cannot beat the provably optimal monolithic
	// closed form, and per-shard designs should stay in its ballpark.
	mono, err := p.Plan(w, Hints{MaxShards: -1})
	if err != nil {
		t.Fatal(err)
	}
	if mono.Generator != "marginals" {
		t.Fatalf("monolithic winner = %q, want marginals", mono.Generator)
	}
	me, err := mono.ExpectedError(pr)
	if err != nil {
		t.Fatal(err)
	}
	if e < me*(1-1e-9) {
		t.Fatalf("sharded error %g beats the optimal monolithic %g", e, me)
	}
	if e > 3*me {
		t.Fatalf("sharded error %g more than 3x the monolithic optimum %g", e, me)
	}
}

// blockDiagWorkload builds an explicit workload whose query matrix is
// block-diagonal: `blocks` dense blocks of the given size, each a small
// random 0/1 design, shifted onto disjoint cell ranges.
func blockDiagWorkload(t *testing.T, blocks, rowsPer, cellsPer int, seed int64) *workload.Workload {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	n := blocks * cellsPer
	mat := linalg.New(blocks*rowsPer, n)
	for b := 0; b < blocks; b++ {
		for i := 0; i < rowsPer; i++ {
			row := mat.Row(b*rowsPer + i)
			nonzero := false
			for j := 0; j < cellsPer; j++ {
				if r.Intn(2) == 1 {
					row[b*cellsPer+j] = 1
					nonzero = true
				}
			}
			if !nonzero {
				row[b*cellsPer+r.Intn(cellsPer)] = 1
			}
		}
	}
	return workload.FromMatrix("blockdiag", domain.MustShape(n), mat)
}

// The two sharded-plan properties of the issue, on a cell-partition
// workload where they hold exactly:
//
//  1. the sharded plan's answers equal the monolithic plan's answers (the
//     same composite strategy solved by one joint least squares) on the
//     same seeded noise stream, to ≤1e-8;
//  2. the combined shard error equals mm.Error of the composite operator.
func TestShardedMatchesMonolithicProperty(t *testing.T) {
	w := blockDiagWorkload(t, 2, 24, 40, 11) // 80 cells ≥ ShardMinCells
	p := New(Config{})
	plan, err := p.Plan(w, Hints{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Generator != "sharded" {
		t.Fatalf("winner = %q, want sharded", plan.Generator)
	}
	pr := mm.Privacy{Epsilon: 0.8, Delta: 1e-5}

	// Property 2: shard error sum == mm.Error of the composite. On a cell
	// partition the joint least squares decomposes exactly, so the
	// combination formula must reproduce the composite analysis.
	got, err := plan.ExpectedError(pr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mm.Error(w, plan.Op, pr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-8*(1+want) {
		t.Fatalf("combined shard error %g != composite mm.Error %g", got, want)
	}

	// Property 1: same seeded noise stream, sharded inference vs one
	// monolithic joint least-squares solve of the same composite strategy.
	mono, err := mm.NewMechanismInference(linalg.ToDense(plan.Op), mm.InferDensePinv)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, w.Cells())
	for i := range x {
		x[i] = float64((i * 3) % 17)
	}
	const seed = 123
	shardedAns, err := plan.Mechanism.AnswerGaussian(w, x, pr, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	monoAns, err := mono.AnswerGaussian(w, x, pr, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range shardedAns {
		if math.Abs(shardedAns[i]-monoAns[i]) > 1e-8 {
			t.Fatalf("answer %d: sharded %g, monolithic %g", i, shardedAns[i], monoAns[i])
		}
	}
}

// MaxShards caps the split (excess blocks merge) and negative values
// disable sharding entirely.
func TestShardedMaxShardsHint(t *testing.T) {
	w := workload.Marginals(domain.MustShape(4, 4, 4, 4), 1) // 4 blocks, 256 cells
	p := New(Config{})
	plan, err := p.Plan(w, Hints{MaxShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Generator != "sharded" || len(plan.Shards) != 2 {
		t.Fatalf("plan = %s with %d shards, want sharded with 2", plan.Generator, len(plan.Shards))
	}
	if got := winner(t, p, w, Hints{MaxShards: -1}); got == "sharded" {
		t.Fatal("MaxShards < 0 must disable sharding")
	}
}

// Refusal reasons are rule-tagged and name what failed.
func TestShardedAdmissionReasons(t *testing.T) {
	p := New(Config{})
	cases := []struct {
		name string
		w    *workload.Workload
		want string
	}{
		{"connected", workload.Marginals(domain.MustShape(8, 8, 8), 2), "rule block-count"},
		{"tiny", workload.Marginals(domain.MustShape(4, 4), 1), "rule min-cells"},
		{"unsplittable", workload.Prefix(256), "rule shape"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			decisions, err := p.Explain(c.w, Hints{})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range decisions {
				if d.Generator != "sharded" {
					continue
				}
				if d.Admitted {
					t.Fatalf("sharded admitted for %s: %+v", c.name, d)
				}
				if !strings.Contains(d.Reason, c.want) {
					t.Fatalf("reason %q does not carry %q", d.Reason, c.want)
				}
				return
			}
			t.Fatal("no sharded decision in the explain output")
		})
	}
}

// Every refused candidate's reason is rule-tagged so explain output pairs
// the public generator name with the specific failed rule.
func TestRefusalReasonsAreRuleTagged(t *testing.T) {
	p := New(Config{})
	decisions, err := p.Explain(workload.Prefix(2048), Hints{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range decisions {
		if d.Admitted || d.Reason == "" {
			continue
		}
		if !strings.HasPrefix(d.Reason, "rule ") {
			t.Fatalf("generator %s refusal %q is not rule-tagged", d.Generator, d.Reason)
		}
	}
}

// Forcing the sharded generator bypasses the dominance rule but not the
// hard shape rules.
func TestShardedForced(t *testing.T) {
	p := New(Config{})
	w := workload.Marginals(domain.MustShape(16, 16), 1)
	plan, err := p.Plan(w, Hints{Generator: "sharded"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Generator != "sharded" {
		t.Fatalf("generator = %q", plan.Generator)
	}
	if _, err := p.Plan(workload.Prefix(256), Hints{Generator: "sharded"}); err == nil {
		t.Fatal("forcing sharded on an unsplittable workload must fail")
	}
}

// The plan cache key includes MaxShards: the same workload planned with a
// different shard cap is a different plan.
func TestShardedCacheFingerprint(t *testing.T) {
	p := New(Config{CacheSize: 8})
	w := workload.Marginals(domain.MustShape(16, 16), 1)
	a, err := p.Plan(w, Hints{CacheKey: "m1:16x16"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Plan(w, Hints{CacheKey: "m1:16x16"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical hints must hit the plan cache")
	}
	c, err := p.Plan(w, Hints{CacheKey: "m1:16x16", MaxShards: -1})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("a different MaxShards hint must miss the cache")
	}
	if c.Generator == "sharded" {
		t.Fatalf("MaxShards -1 planned %q", c.Generator)
	}
}
