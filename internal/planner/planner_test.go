package planner

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/workload"
)

var testPrivacy = mm.Privacy{Epsilon: 0.5, Delta: 1e-4}

func winner(t *testing.T, p *Planner, w *workload.Workload, h Hints) string {
	t.Helper()
	decisions, err := p.Explain(w, h)
	if err != nil {
		t.Fatalf("Explain(%s): %v", w.Name(), err)
	}
	for _, d := range decisions {
		if d.Selected {
			return d.Generator
		}
	}
	t.Fatalf("Explain(%s): no generator selected in %+v", w.Name(), decisions)
	return ""
}

// The admission table: which generator wins for the canonical workload
// shapes under tight, default and loose design budgets. This pins the
// escalation ladder that used to be hard-coded in the server.
func TestAdmissionTable(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	prefix1024 := workload.Prefix(1024)
	allrange2D := workload.AllRange(domain.MustShape(64, 64))
	marginals := workload.Marginals(domain.MustShape(8, 8, 4), 2)
	randomDense := workload.Predicate(domain.MustShape(64), 12, r)

	const (
		tight = 1e6
		loose = 1e12
		huge  = 1e13
	)
	cases := []struct {
		name string
		w    *workload.Workload
		h    Hints
		want string
	}{
		// Prefix(1024): dense algebra is over the default budget, loose
		// hints buy the exact design back.
		{"prefix1024/tight", prefix1024, Hints{MaxDesignCost: tight}, "hierarchical"},
		{"prefix1024/default", prefix1024, Hints{}, "hierarchical"},
		{"prefix1024/loose", prefix1024, Hints{MaxDesignCost: loose}, "eigen"},

		// AllRange(64,64): product form past the structured threshold —
		// the factored principal-vector design is the scalable choice;
		// only an extreme budget admits the exact factored design, and a
		// tight one falls to the tree.
		{"allrange64x64/tight", allrange2D, Hints{MaxDesignCost: tight}, "hierarchical"},
		{"allrange64x64/default", allrange2D, Hints{}, "principal-vectors"},
		{"allrange64x64/loose", allrange2D, Hints{MaxDesignCost: loose}, "principal-vectors"},
		{"allrange64x64/huge", allrange2D, Hints{MaxDesignCost: huge}, "eigen"},

		// Marginal sets: the closed-form optimal designer is nearly free,
		// so it wins even under a tight budget.
		{"marginals/tight", marginals, Hints{MaxDesignCost: tight}, "marginals"},
		{"marginals/default", marginals, Hints{}, "marginals"},
		{"marginals/loose", marginals, Hints{MaxDesignCost: loose}, "marginals"},

		// Random dense rows on a small domain: exact eigen under default
		// and loose budgets, tree under tight.
		{"randomdense/tight", randomDense, Hints{MaxDesignCost: tight}, "hierarchical"},
		{"randomdense/default", randomDense, Hints{}, "eigen"},
		{"randomdense/loose", randomDense, Hints{MaxDesignCost: loose}, "eigen"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := New(Config{})
			if got := winner(t, p, c.w, c.h); got != c.want {
				t.Fatalf("winner = %q, want %q", got, c.want)
			}
		})
	}
}

// MaxDesignTime hints convert to cost budgets through the calibrated
// throughput: an hour admits the exact design on 1024 cells, a
// millisecond does not.
func TestDesignTimeHintConversion(t *testing.T) {
	w := workload.Prefix(1024)
	if got := winner(t, New(Config{}), w, Hints{MaxDesignTime: time.Hour}); got != "eigen" {
		t.Fatalf("loose time hint: winner = %q, want eigen", got)
	}
	if got := winner(t, New(Config{}), w, Hints{MaxDesignTime: time.Millisecond}); got != "hierarchical" {
		t.Fatalf("tight time hint: winner = %q, want hierarchical", got)
	}
}

// A tighter Size hint forbids dense algebra even when the budget allows.
func TestSizeClassHintRestricts(t *testing.T) {
	w := workload.Prefix(256)
	if got := winner(t, New(Config{}), w, Hints{}); got != "eigen" {
		t.Fatalf("default: winner = %q, want eigen", got)
	}
	if got := winner(t, New(Config{}), w, Hints{Size: SizeLarge}); got != "hierarchical" {
		t.Fatalf("SizeLarge hint: winner = %q, want hierarchical", got)
	}
}

// Forcing a generator bypasses the budget but not hard admission rules.
func TestForcedGenerator(t *testing.T) {
	p := New(Config{})
	w := workload.AllRange(domain.MustShape(48, 48))
	decisions, err := p.Explain(w, Hints{Generator: "eigen-separation"})
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 1 || !decisions[0].Selected || decisions[0].Generator != "eigen-separation" {
		t.Fatalf("forced separation decisions = %+v", decisions)
	}
	if _, err := p.Explain(w, Hints{Generator: "marginals"}); err == nil {
		t.Fatal("forcing marginals on a range workload did not error")
	}
	if _, err := p.Explain(w, Hints{Generator: "no-such-generator"}); err == nil {
		t.Fatal("unknown generator did not error")
	}
}

// failingGen admits with the best score and then fails its build: the
// planner must fall through the admission order to the next candidate and
// record the failure.
type failingGen struct{}

func (failingGen) Name() string { return "always-fails" }
func (failingGen) Propose(w *workload.Workload, h Hints, forced bool) (*Proposal, string) {
	return &Proposal{Cost: 1, Score: -1, Note: "admits everything, builds nothing",
		Build: func() (Built, error) { return Built{}, errors.New("synthetic build failure") },
	}, ""
}

func TestBuildFallbackOrder(t *testing.T) {
	p := New(Config{})
	p.Register(failingGen{})
	w := workload.Prefix(64)
	plan, err := p.Plan(w, Hints{Privacy: testPrivacy})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Generator != "eigen" {
		t.Fatalf("fallback winner = %q, want eigen", plan.Generator)
	}
	var sawFailure bool
	for _, d := range plan.Decisions {
		if d.Generator == "always-fails" {
			sawFailure = true
			if d.Admitted || d.Selected {
				t.Fatalf("failed generator still marked admitted/selected: %+v", d)
			}
		}
	}
	if !sawFailure {
		t.Fatal("failed generator missing from decisions")
	}
}

// Property: whatever the planner picks, the error it reports must match
// the core error analysis of the chosen strategy to 1e-8 (relative).
func TestPlanErrorMatchesCoreAnalysis(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	workloads := []*workload.Workload{
		workload.Prefix(64),
		workload.AllRange(domain.MustShape(8, 16)),
		workload.Marginals(domain.MustShape(4, 4, 2), 2),
		workload.Predicate(domain.MustShape(32), 20, r),
	}
	p := New(Config{})
	for _, w := range workloads {
		plan, err := p.Plan(w, Hints{Privacy: testPrivacy})
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		reported, err := plan.ExpectedError(testPrivacy)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		independent, err := mm.Error(w, plan.Op, testPrivacy)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if reported <= 0 {
			t.Fatalf("%s: reported error %g not positive", w.Name(), reported)
		}
		if math.Abs(reported-independent) > 1e-8*independent {
			t.Fatalf("%s (%s): reported %g vs core analysis %g", w.Name(), plan.Generator, reported, independent)
		}
		// The marginal generator must also meet its optimality claim.
		if plan.Generator == "marginals" {
			lb := plan.LowerBound(testPrivacy)
			if lb <= 0 || reported > lb*(1+1e-6) {
				t.Fatalf("%s: closed-form error %g above lower bound %g", w.Name(), reported, lb)
			}
		}
	}
}

// The plan cache returns the identical plan for identical (key, hints)
// and distinguishes different hint fingerprints.
func TestPlanCache(t *testing.T) {
	p := New(Config{CacheSize: 8})
	w := workload.Prefix(32)
	h := Hints{Privacy: testPrivacy, CacheKey: "prefix:32"}
	p1, err := p.Plan(w, h)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.Plan(w, h)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("identical key and hints did not hit the plan cache")
	}
	h3 := h
	h3.Generator = "hierarchical"
	p3, err := p.Plan(w, h3)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("different hint fingerprint reused the cached plan")
	}
	if p3.Generator != "hierarchical" {
		t.Fatalf("forced generator = %q", p3.Generator)
	}
}

// Inference selection: small dense strategies get the pseudo-inverse,
// structured strategies CGLS, and a tight latency target buys the
// pseudo-inverse for a densifiable structured strategy.
func TestInferenceSelection(t *testing.T) {
	p := New(Config{})
	dense, err := p.Plan(workload.Prefix(64), Hints{})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Inference != mm.InferDensePinv {
		t.Fatalf("small dense plan inference = %s, want dense-pinv", dense.Inference)
	}
	structured, err := p.Plan(workload.AllRange(domain.MustShape(64, 64)), Hints{})
	if err != nil {
		t.Fatal(err)
	}
	if structured.Generator != "principal-vectors" || structured.Inference != mm.InferCGLS {
		t.Fatalf("structured plan = %s/%s, want principal-vectors/cgls", structured.Generator, structured.Inference)
	}
	lowLat, err := p.Plan(workload.Prefix(256), Hints{Generator: "hierarchical", LatencyTarget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if lowLat.Inference != mm.InferDensePinv {
		t.Fatalf("tight-latency hierarchical plan inference = %s, want dense-pinv", lowLat.Inference)
	}
	relaxed, err := p.Plan(workload.Prefix(256), Hints{Generator: "hierarchical"})
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Inference != mm.InferCGLS {
		t.Fatalf("relaxed hierarchical plan inference = %s, want cgls", relaxed.Inference)
	}
}

// Every candidate over a microscopic budget still yields a plan: the
// cheapest generator is escalated to rather than failing the request.
func TestOverBudgetEscapesToCheapest(t *testing.T) {
	p := New(Config{})
	if got := winner(t, p, workload.Prefix(64), Hints{MaxDesignCost: 0.5}); got != "identity" {
		t.Fatalf("winner under impossible budget = %q, want identity", got)
	}
}

// The throughput calibration is per generator: a build calibrates the
// winner's own rate (alongside the global fallback), a restored snapshot
// round-trips, and each candidate's MaxDesignTime budget converts at its
// own generator's measured rate.
func TestPerGeneratorRateCalibration(t *testing.T) {
	p := New(Config{})
	w := workload.Prefix(256)
	if _, err := p.Plan(w, Hints{}); err != nil {
		t.Fatal(err)
	}
	snap := p.RateSnapshot()
	eigenRate, ok := snap["eigen"]
	if !ok {
		t.Fatalf("eigen build calibrated no per-generator rate: %v", snap)
	}
	if snap[""] == 0 {
		t.Fatalf("global fallback rate missing from snapshot: %v", snap)
	}
	if _, ok := snap["hierarchical"]; ok {
		t.Fatalf("hierarchical never built but has a rate: %v", snap)
	}

	// A fresh planner restored from the snapshot budgets eigen at the
	// measured rate, and a generator with no history at the global rate.
	q := New(Config{})
	q.RestoreRates(snap)
	h := Hints{MaxDesignTime: time.Second}
	if got, want := q.budgetFor(h, "eigen"), clampRate(eigenRate); got != want {
		t.Fatalf("eigen budget for 1s = %g, want measured rate %g", got, want)
	}
	if got, want := q.budgetFor(h, "hierarchical"), clampRate(snap[""]); got != want {
		t.Fatalf("no-history budget for 1s = %g, want global rate %g", got, want)
	}
}

// Trivial builds (identity, hierarchical) measure timer noise, not
// throughput: they must not drag the calibrated rate — and with it every
// MaxDesignTime conversion — orders of magnitude down.
func TestCheapBuildsDoNotCorruptRateCalibration(t *testing.T) {
	p := New(Config{})
	w := workload.Prefix(1024)
	for i := 0; i < 12; i++ {
		if _, err := p.Plan(w, Hints{Generator: "identity"}); err != nil {
			t.Fatal(err)
		}
	}
	if r := p.currentRate(); r != DefaultUnitsPerSecond {
		t.Fatalf("rate drifted to %g after trivial builds, want %g untouched", r, DefaultUnitsPerSecond)
	}
}
