//go:build race

package mm

// raceEnabled reports that this binary was built with the race
// detector, whose sync.Pool poisoning makes pooled paths allocate.
const raceEnabled = true
