package mm

import (
	"math"
	"math/rand"
	"testing"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

func TestNonNegativeEstimateIsNonNegative(t *testing.T) {
	shape := domain.MustShape(16)
	mech, err := NewMechanism(strategy.Hierarchical(shape, 2).A)
	if err != nil {
		t.Fatal(err)
	}
	// Sparse data: most cells zero, so the unconstrained estimate goes
	// negative often.
	x := make([]float64, 16)
	x[3] = 50
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		xhat, err := mech.EstimateGaussianNonNegative(x, testPrivacy, r)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range xhat {
			if v < 0 {
				t.Fatalf("negative cell %d = %g", i, v)
			}
		}
	}
}

func TestNonNegativeEstimateHelpsOnSparseData(t *testing.T) {
	// On sparse data the projected estimate should have lower L2 error
	// than the raw least-squares estimate, on average.
	shape := domain.MustShape(32)
	a := strategy.Hierarchical(shape, 2).A
	mech, err := NewMechanism(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 32)
	x[5], x[20] = 40, 25

	var rawErr, nnErr float64
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		// Use paired noise for a fair comparison.
		r1 := rand.New(rand.NewSource(int64(trial)))
		raw, err := mech.EstimateGaussian(x, testPrivacy, r1)
		if err != nil {
			t.Fatal(err)
		}
		r2 := rand.New(rand.NewSource(int64(trial)))
		nn, err := mech.EstimateGaussianNonNegative(x, testPrivacy, r2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			rawErr += (raw[i] - x[i]) * (raw[i] - x[i])
			nnErr += (nn[i] - x[i]) * (nn[i] - x[i])
		}
	}
	if nnErr >= rawErr {
		t.Fatalf("non-negativity did not help: %g vs %g", nnErr, rawErr)
	}
}

func TestNonNegativeValidation(t *testing.T) {
	mech, err := NewMechanism(linalg.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	if _, err := mech.EstimateGaussianNonNegative([]float64{1}, testPrivacy, r); err == nil {
		t.Fatal("accepted wrong-length data")
	}
	if _, err := mech.EstimateGaussianNonNegative(make([]float64, 4), Privacy{}, r); err == nil {
		t.Fatal("accepted empty privacy")
	}
}

func TestQueryVariancesMatchMonteCarlo(t *testing.T) {
	w := workload.Fig1()
	mech, err := NewMechanism(strategy.Wavelet(domain.MustShape(8)).A)
	if err != nil {
		t.Fatal(err)
	}
	vars, err := mech.QueryVariances(w, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{10, 20, 30, 40, 50, 60, 70, 80}
	truth := w.Matrix().MulVec(x)
	r := rand.New(rand.NewSource(3))
	const trials = 3000
	sq := make([]float64, len(truth))
	for trial := 0; trial < trials; trial++ {
		ans, err := mech.AnswerGaussian(w, x, testPrivacy, r)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ans {
			d := ans[i] - truth[i]
			sq[i] += d * d
		}
	}
	for i := range vars {
		measured := sq[i] / trials
		if math.Abs(measured-vars[i]) > 0.12*vars[i] {
			t.Fatalf("query %d: measured var %g vs analytic %g", i, measured, vars[i])
		}
	}
}

func TestConfidenceInterval(t *testing.T) {
	// 95% CI half-width for unit variance is ≈ 1.96.
	hw, err := ConfidenceInterval(1, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hw-1.959964) > 1e-3 {
		t.Fatalf("95%% half-width = %g", hw)
	}
	// Scales with the standard deviation.
	hw4, err := ConfidenceInterval(4, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hw4-2*hw) > 1e-9 {
		t.Fatal("CI does not scale with sqrt variance")
	}
	for _, bad := range []struct{ v, l float64 }{{-1, 0.9}, {1, 0}, {1, 1}} {
		if _, err := ConfidenceInterval(bad.v, bad.l); err == nil {
			t.Fatalf("accepted variance %g level %g", bad.v, bad.l)
		}
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	// Empirical coverage of the 90% interval on a released query.
	w := workload.Total(domain.MustShape(8))
	mech, err := NewMechanism(linalg.Identity(8))
	if err != nil {
		t.Fatal(err)
	}
	vars, err := mech.QueryVariances(w, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := ConfidenceInterval(vars[0], 0.90)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	truth := 40.0
	r := rand.New(rand.NewSource(4))
	const trials = 5000
	inside := 0
	for trial := 0; trial < trials; trial++ {
		ans, err := mech.AnswerGaussian(w, x, testPrivacy, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ans[0]-truth) <= hw {
			inside++
		}
	}
	cov := float64(inside) / trials
	if cov < 0.88 || cov > 0.92 {
		t.Fatalf("90%% CI coverage = %g", cov)
	}
}

func TestSplitBudget(t *testing.T) {
	p := Privacy{Epsilon: 1.0, Delta: 1e-4}
	half, err := p.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	if half.Epsilon != 0.5 || half.Delta != 5e-5 {
		t.Fatalf("Split = %+v", half)
	}
	if _, err := p.Split(0); err == nil {
		t.Fatal("accepted k = 0")
	}
}

func TestBatchBeatsSplitBudget(t *testing.T) {
	// The paper's motivation for batch answering: answering two workload
	// halves with split budgets costs strictly more error than answering
	// the union once with the full budget.
	shape := domain.MustShape(16)
	w1 := workload.Prefix(16)
	w2 := workload.Identity(shape)
	union := workload.Union("both", w1, w2)
	p := Privacy{Epsilon: 1.0, Delta: 1e-4}
	half, err := p.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Error(union, strategy.Hierarchical(shape, 2).A, p)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := Error(w1, strategy.Hierarchical(shape, 2).A, half)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Error(w2, linalg.Identity(16), half)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := float64(w1.NumQueries()), float64(w2.NumQueries())
	splitRMSE := math.Sqrt((m1*e1*e1 + m2*e2*e2) / (m1 + m2))
	if batch >= splitRMSE {
		t.Fatalf("batch %g not better than split %g", batch, splitRMSE)
	}
}

// Every explicit inference method must produce the same least-squares
// estimate from the same noisy answers: the method is a performance
// choice, never a semantic one.
func TestInferenceMethodsAgree(t *testing.T) {
	shape := domain.MustShape(24)
	a := strategy.Hierarchical(shape, 2).A // tall: ~2n rows
	x := make([]float64, 24)
	for i := range x {
		x[i] = float64((i*7 + 2) % 11)
	}
	methods := []Inference{InferDensePinv, InferCGLS, InferNormalCG}
	var baseline []float64
	for _, inf := range methods {
		mech, err := NewMechanismInference(a, inf)
		if err != nil {
			t.Fatalf("%s: %v", inf, err)
		}
		if mech.Inference() != inf {
			t.Fatalf("inference = %s, want %s", mech.Inference(), inf)
		}
		// Identical seed → identical noisy answers → the estimates must
		// agree to solver tolerance.
		xhat, err := mech.EstimateGaussian(x, testPrivacy, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatalf("%s: %v", inf, err)
		}
		if baseline == nil {
			baseline = xhat
			continue
		}
		for i := range xhat {
			if math.Abs(xhat[i]-baseline[i]) > 1e-6*(1+math.Abs(baseline[i])) {
				t.Fatalf("%s cell %d: %g vs dense-pinv %g", inf, i, xhat[i], baseline[i])
			}
		}
	}
}

// InferAuto resolves by representation and size, and dense-pinv refuses
// operators past the materialization cap instead of exhausting memory.
func TestInferenceResolution(t *testing.T) {
	small, err := NewMechanismOp(strategy.Hierarchical(domain.MustShape(8), 2).A)
	if err != nil {
		t.Fatal(err)
	}
	if small.Inference() != InferDensePinv {
		t.Fatalf("small dense resolved to %s", small.Inference())
	}
	structured, err := NewMechanismOp(strategy.HierarchicalOperator(domain.MustShape(64, 64), 2))
	if err != nil {
		t.Fatal(err)
	}
	if structured.Inference() != InferCGLS {
		t.Fatalf("structured resolved to %s", structured.Inference())
	}
	huge := strategy.HierarchicalOperator(domain.MustShape(2048, 2048), 2)
	if _, err := NewMechanismInference(huge, InferDensePinv); err == nil {
		t.Fatal("dense-pinv on a ~4M-cell operator did not error")
	}
	if _, err := NewMechanismInference(huge, InferNormalCG); err == nil {
		t.Fatal("normal-CG on a ~4M-cell operator did not error (n×n Gram)")
	}
}
