// Pooled release scratch: the allocation-free release entry points.
//
// The mechanism's economics are design-once / release-many, so the
// steady-state cost per release decides serving throughput. The classic
// entry points (EstimateGaussian and friends) allocate the measurement
// vector, the noise vector, the estimate, and fresh solver scratch on
// every call; ReleaseScratch hoists all of it into one reusable object
// recycled through a per-mechanism sync.Pool. The Into variants return
// slices owned by the scratch — valid until the scratch's next use — and
// on the dense-pinv and CGLS paths perform zero steady-state allocations
// (pinned by TestAllocsPerRelease). The classic entry points now rent a
// scratch internally and copy the result out, so both spellings run the
// same kernels and produce bit-identical output on the same noise stream.

package mm

import (
	"fmt"
	"sync"
	"time"

	"adaptivemm/internal/linalg"
	"adaptivemm/internal/obs"
	"adaptivemm/internal/workload"
)

// ReleaseScratch holds every buffer one release needs: noisy strategy
// answers, the noise vector, the estimate, workload answers, and the
// least-squares solver workspace. The zero value is ready to use; buffers
// grow on demand and stay at their high-water mark. A scratch must not be
// used by two releases concurrently.
type ReleaseScratch struct {
	y     []float64 // noisy strategy answers (rows)
	noise []float64 // raw noise draws (rows)
	est   []float64 // cell estimate x̂
	ans   []float64 // workload answers
	rhs   []float64 // normal-equations right-hand side (cols)
	tmp   []float64 // sharded answer scatter staging
	mid   []float64 // composite strategy intermediate (projected cells)
	chunk []float64 // streaming answer chunk (AnswerStream)
	ws    linalg.CGWorkspace

	// Sharded fan-out state, hoisted here so a steady-state sharded
	// release enqueues jobs to the mechanism's persistent shard workers
	// without allocating error slots or a WaitGroup per call.
	shardErrs []error
	wg        sync.WaitGroup

	// Trace, when non-nil, receives per-stage spans for this release
	// and is threaded through to the shard backend so distributed
	// shard calls carry the trace ID. Tracing is opt-in per release —
	// the always-on instrumentation is the (allocation-free) stage
	// timer histograms. PutScratch clears it so pooled reuse never
	// resurrects another release's trace.
	Trace *obs.Trace
}

// growFloats returns buf resized to n, reallocating only when capacity is
// insufficient. Contents are unspecified.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// NewScratch returns a fresh unpooled release scratch for this mechanism.
// Callers that release in a loop hold one of these (or use GetScratch /
// PutScratch to share the mechanism's pool).
func (m *Mechanism) NewScratch() *ReleaseScratch { return &ReleaseScratch{} }

// GetScratch rents a scratch from the mechanism's pool.
func (m *Mechanism) GetScratch() *ReleaseScratch {
	if sc, ok := m.scratch.Get().(*ReleaseScratch); ok {
		return sc
	}
	return &ReleaseScratch{}
}

// PutScratch returns a rented scratch to the pool. Slices previously
// returned by the Into entry points become invalid.
func (m *Mechanism) PutScratch(sc *ReleaseScratch) {
	sc.Trace = nil
	m.scratch.Put(sc)
}

// EstimateGaussianInto is EstimateGaussian computing through caller-owned
// scratch: the returned estimate is sc.est, valid until sc is reused. On
// the dense-pinv and CGLS (tree or iterative, with write-into operators)
// paths the steady state performs zero allocations.
func (m *Mechanism) EstimateGaussianInto(sc *ReleaseScratch, x []float64, p Privacy, r NoiseSource) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(x) != m.a.Cols() {
		return nil, fmt.Errorf("mm: data vector has %d cells, strategy expects %d", len(x), m.a.Cols())
	}
	sigma := p.GaussianSigma(m.sensL2)
	rows := m.a.Rows()
	timers := m.timers.Load()
	instr := timers != nil || sc.Trace != nil
	var t0 time.Time
	if instr {
		t0 = time.Now()
	}
	sc.y = growFloats(sc.y, rows)
	m.answersInto(sc.y, x, sc)
	t0 = m.stageDone(sc, timers, stageAnswer, t0)
	sc.noise = growFloats(sc.noise, rows)
	fillNormal(r, sc.noise)
	for i, n := range sc.noise {
		sc.y[i] += sigma * n
	}
	t0 = m.stageDone(sc, timers, stageNoise, t0)
	sc.est = growFloats(sc.est, m.estimateLen())
	if err := m.inferInto(sc.est, sc.y, sc); err != nil {
		return nil, err
	}
	m.stageDone(sc, timers, stageInfer, t0)
	return sc.est, nil
}

// Stage names of the release pipeline, shared between the stage-timer
// histograms and the per-release trace spans.
const (
	stageAnswer = "answer"
	stageNoise  = "noise"
	stageInfer  = "infer"
)

// stageDone closes one pipeline stage that began at t0: it records the
// latency on the attached stage timers, appends a span to the
// release's trace when one is riding on the scratch, and returns the
// start time of the next stage. With neither attached it is two
// predictable branches and no clock read.
func (m *Mechanism) stageDone(sc *ReleaseScratch, timers *StageTimers, stage string, t0 time.Time) time.Time {
	if timers == nil && sc.Trace == nil {
		return t0
	}
	now := time.Now()
	if timers != nil {
		switch stage {
		case stageAnswer:
			timers.Answer.Observe(now.Sub(t0).Seconds())
		case stageNoise:
			timers.Noise.Observe(now.Sub(t0).Seconds())
		case stageInfer:
			timers.Infer.Observe(now.Sub(t0).Seconds())
		}
	}
	sc.Trace.AddSpanRange(stage, t0, now)
	return now
}

// EstimateLaplaceInto is the scratch-based EstimateLaplace; the returned
// estimate is sc.est, valid until sc is reused.
func (m *Mechanism) EstimateLaplaceInto(sc *ReleaseScratch, x []float64, epsilon float64, r NoiseSource) ([]float64, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("mm: epsilon = %g must be positive", epsilon)
	}
	if len(x) != m.a.Cols() {
		return nil, fmt.Errorf("mm: data vector has %d cells, strategy expects %d", len(x), m.a.Cols())
	}
	b := m.SensitivityL1() / epsilon
	rows := m.a.Rows()
	timers := m.timers.Load()
	instr := timers != nil || sc.Trace != nil
	var t0 time.Time
	if instr {
		t0 = time.Now()
	}
	sc.y = growFloats(sc.y, rows)
	m.answersInto(sc.y, x, sc)
	t0 = m.stageDone(sc, timers, stageAnswer, t0)
	sc.noise = growFloats(sc.noise, rows)
	fillLaplace(r, sc.noise, b)
	for i, n := range sc.noise {
		sc.y[i] += n
	}
	t0 = m.stageDone(sc, timers, stageNoise, t0)
	sc.est = growFloats(sc.est, m.estimateLen())
	if err := m.inferInto(sc.est, sc.y, sc); err != nil {
		return nil, err
	}
	m.stageDone(sc, timers, stageInfer, t0)
	return sc.est, nil
}

// AnswerGaussianInto is the scratch-based AnswerGaussian; the returned
// answers are sc.ans, valid until sc is reused.
func (m *Mechanism) AnswerGaussianInto(sc *ReleaseScratch, w *workload.Workload, x []float64, p Privacy, r NoiseSource) ([]float64, error) {
	xhat, err := m.EstimateGaussianInto(sc, x, p, r)
	if err != nil {
		return nil, err
	}
	return m.workloadAnswersInto(sc, w, xhat)
}

// workloadAnswersInto maps an estimate onto workload answers in sc.ans,
// mirroring WorkloadAnswers' validation.
func (m *Mechanism) workloadAnswersInto(sc *ReleaseScratch, w *workload.Workload, xhat []float64) ([]float64, error) {
	if m.shards == nil {
		sc.ans = growFloats(sc.ans, w.NumQueries())
		return w.MulQueriesInto(sc.ans, xhat), nil
	}
	if m.planned != nil && w != m.planned {
		return nil, fmt.Errorf("mm: sharded mechanism answers only the workload it was planned for (%q); answer %q with its own plan",
			m.planned.Name(), w.Name())
	}
	if w.NumQueries() != m.totalShardQueries() {
		return nil, fmt.Errorf("mm: sharded mechanism answers only its planned workload (%d queries), got one with %d",
			m.totalShardQueries(), w.NumQueries())
	}
	sc.ans = growFloats(sc.ans, m.totalShardQueries())
	m.shardAnswersInto(sc, sc.ans, xhat)
	return sc.ans, nil
}

// answersInto writes the strategy answers A·x into dst, through the tree
// fast path when the strategy is an interval forest.
func (m *Mechanism) answersInto(dst, x []float64, sc *ReleaseScratch) {
	if m.tree != nil {
		m.tree.AnswerInto(dst, x, &sc.ws)
		return
	}
	if m.shards != nil {
		// The composite is blockdiag(strategies)·stack(projections); the
		// generic composed write-into kernel allocates the projected-cell
		// intermediate per call, so run the same two products in the same
		// order through scratch instead — identical bits, zero allocs.
		sc.mid = growFloats(sc.mid, m.projStack.Rows())
		linalg.MulVecInto(m.projStack, sc.mid, x)
		linalg.MulVecInto(m.blockOnly, dst, sc.mid)
		return
	}
	linalg.MulVecInto(m.a, dst, x)
}

// estimateLen is the length of the estimate this mechanism produces:
// the cell count, except for sharded mechanisms, whose estimate is the
// concatenation of the per-shard sub-domain estimates.
func (m *Mechanism) estimateLen() int {
	if m.shards == nil {
		return m.a.Cols()
	}
	total := 0
	for _, s := range m.shards {
		total += s.Mechanism.a.Cols()
	}
	return total
}

// inferInto computes the least-squares estimate x̂ from noisy strategy
// answers y into dst (length estimateLen) through the mechanism's
// resolved inference method.
func (m *Mechanism) inferInto(dst, y []float64, sc *ReleaseScratch) error {
	switch m.inference {
	case InferDensePinv:
		m.apinv.MulVecInto(dst, y)
		return nil
	case InferNormalCG:
		sc.rhs = growFloats(sc.rhs, m.a.Cols())
		linalg.MulVecTInto(m.a, sc.rhs, y)
		return linalg.SolveSymCGInto(m.gram, sc.rhs, dst, linalg.CGOptions{}, &sc.ws)
	case InferSharded:
		return m.inferShardedInto(dst, y, sc)
	default:
		if m.tree != nil {
			m.tree.SolveLSInto(dst, y, &sc.ws)
			return nil
		}
		return linalg.SolveCGLSInto(m.a, y, dst, linalg.CGOptions{}, &sc.ws)
	}
}
