package mm

import (
	"fmt"
	"math"

	"adaptivemm/internal/linalg"
	"adaptivemm/internal/workload"
)

// EstimateGaussianNonNegative runs one private release like
// EstimateGaussian but post-processes the least-squares estimate with
// non-negativity: cell counts cannot be negative, and projecting the
// estimate onto the non-negative orthant (in the least-squares metric of
// the strategy) never hurts and often helps substantially on sparse or
// skewed data. Post-processing of a differentially private output incurs
// no privacy cost. The projection is computed by projected gradient
// descent on ‖Ax − y‖² over x ≥ 0.
func (m *Mechanism) EstimateGaussianNonNegative(x []float64, p Privacy, r NoiseSource) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(x) != m.a.Cols() {
		return nil, fmt.Errorf("mm: data vector has %d cells, strategy expects %d", len(x), m.a.Cols())
	}
	sigma := p.GaussianSigma(m.sensL2)
	y := m.a.MulVec(x)
	for i := range y {
		y[i] += sigma * r.NormFloat64()
	}
	// Warm start from the unconstrained least-squares solution, clipped.
	xhat, err := m.infer(y)
	if err != nil {
		return nil, err
	}
	for i, v := range xhat {
		if v < 0 {
			xhat[i] = 0
		}
	}
	// Sharded estimates live on the concatenated sub-domains, where the
	// measurement operator is the block-diagonal stack (the projections
	// are already folded into y).
	polishOp := m.a
	if m.shards != nil {
		polishOp = m.blockOnly
	}
	return nnlsPolish(polishOp, y, xhat), nil
}

// nnlsPolish runs projected gradient descent for min ‖Ax−y‖² over x ≥ 0,
// with the step size set by a power-iteration bound on λmax(AᵀA). It only
// needs matvecs, so it works for any strategy operator.
func nnlsPolish(a linalg.Operator, y, x0 []float64) []float64 {
	n := a.Cols()
	x := append([]float64(nil), x0...)
	// Power iteration for the Lipschitz constant 2·λmax(AᵀA).
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
	}
	var lmax float64
	for it := 0; it < 30; it++ {
		av := a.MulVec(v)
		w := a.MulVecT(av)
		var norm float64
		for _, z := range w {
			norm += z * z
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}
		lmax = norm
		for i := range v {
			v[i] = w[i] / norm
		}
	}
	if lmax == 0 {
		return x
	}
	step := 1 / lmax
	for it := 0; it < 300; it++ {
		res := a.MulVec(x)
		for i := range res {
			res[i] -= y[i]
		}
		grad := a.MulVecT(res)
		var moved float64
		for i := range x {
			nx := x[i] - step*grad[i]
			if nx < 0 {
				nx = 0
			}
			moved += math.Abs(nx - x[i])
			x[i] = nx
		}
		if moved < 1e-10*(1+l1(x)) {
			break
		}
	}
	return x
}

func l1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// QueryVariances returns the noise variance of each query answer of an
// explicit workload under this mechanism: Var(w x̂) = σ²·‖wA⁺‖². Callers
// can turn these into confidence intervals via ConfidenceInterval. On the
// matrix-free path the identity ‖wᵢA⁺‖² = wᵢᵀ(AᵀA)⁺wᵢ is evaluated with
// one normal-equation CG solve per query.
func (m *Mechanism) QueryVariances(w *workload.Workload, p Privacy) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if m.shards != nil {
		return nil, fmt.Errorf("mm: per-query variances are not available for sharded strategies; compute them per shard")
	}
	if !w.Explicit() {
		return nil, fmt.Errorf("mm: per-query variances need explicit workload rows; %q has %d queries, past the materialization cap", w.Name(), w.NumQueries())
	}
	sigma := p.GaussianSigma(m.sensL2)
	if m.apinv != nil {
		wa := w.Matrix().Mul(m.apinv)
		out := make([]float64, wa.Rows())
		for i := range out {
			var s float64
			for _, v := range wa.Row(i) {
				s += v * v
			}
			out[i] = sigma * sigma * s
		}
		return out, nil
	}
	wm := w.Matrix()
	out := make([]float64, wm.Rows())
	for i := range out {
		wi := wm.Row(i)
		z, err := linalg.SolveNormalCG(m.a, wi, linalg.CGOptions{})
		if err != nil {
			return nil, err
		}
		var s float64
		for j, v := range wi {
			s += v * z[j]
		}
		if s < 0 {
			s = 0
		}
		out[i] = sigma * sigma * s
	}
	return out, nil
}

// ConfidenceInterval returns the half-width of a two-sided Gaussian
// confidence interval at the given level (e.g. 0.95) for an answer with
// the given variance. Released answers are exactly Gaussian around the
// truth (the mechanism adds linear functions of Gaussian noise), so these
// intervals are exact, not asymptotic.
func ConfidenceInterval(variance, level float64) (float64, error) {
	if level <= 0 || level >= 1 {
		return 0, fmt.Errorf("mm: confidence level %g outside (0,1)", level)
	}
	if variance < 0 {
		return 0, fmt.Errorf("mm: negative variance %g", variance)
	}
	z := gaussQuantile(0.5 + level/2)
	return z * math.Sqrt(variance), nil
}

// gaussQuantile computes the standard normal quantile via bisection on the
// complementary error function (plenty accurate for CI use).
func gaussQuantile(p float64) float64 {
	lo, hi := -10.0, 10.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if 0.5*(1+math.Erf(mid/math.Sqrt2)) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Split divides a privacy budget across k sequential releases under basic
// composition: each part gets ε/k and δ/k, so running k mechanisms with
// the part yields (ε,δ)-differential privacy overall. The paper's batch
// setting avoids this cost by answering the whole workload at once — Split
// exists to quantify exactly what that buys (see the composition test).
func (p Privacy) Split(k int) (Privacy, error) {
	if k < 1 {
		return Privacy{}, fmt.Errorf("mm: cannot split a budget %d ways", k)
	}
	return Privacy{Epsilon: p.Epsilon / float64(k), Delta: p.Delta / float64(k)}, nil
}
