package mm

import (
	cryptorand "crypto/rand"
	//lint:allow noiserand: this file defines the NoiseSource implementations themselves; CryptoSource seeds rand from crypto/rand entropy
	"math/rand"
	//lint:allow noiserand: ChaCha8 (math/rand/v2) is the CSPRNG behind CryptoSource, seeded from crypto/rand
	randv2 "math/rand/v2"
	"sync"
)

// NoiseSource is the randomness a release draws its noise from. It is the
// subset of *rand.Rand the mechanisms use, so a deterministic *rand.Rand
// satisfies it directly for tests and reproducible experiments, while
// production releases use a source backed by the operating system's
// CSPRNG (NewCryptoSeededSource). Seeding from a counter or the wall
// clock makes every "random" release predictable to anyone who can guess
// the seed — a privacy hole, not just a testing nicety.
type NoiseSource interface {
	// Float64 returns a uniform draw in [0,1).
	Float64() float64
	// NormFloat64 returns a standard normal draw.
	NormFloat64() float64
}

// NormalFiller is the optional bulk extension of NoiseSource: fill a whole
// vector of standard normal draws in one call, letting the source amortize
// its underlying randomness in large blocks instead of per-draw.
type NormalFiller interface {
	FillNormal(dst []float64)
}

// LaplaceFiller is the bulk Laplace analogue, drawing by inverse CDF with
// scale b.
type LaplaceFiller interface {
	FillLaplace(dst []float64, b float64)
}

// fillNormal fills dst with standard normal draws, through the bulk
// interface when the source has one. The scalar fallback consumes draws in
// index order, so on a deterministic source it produces exactly the stream
// a draw-per-cell loop would.
func fillNormal(r NoiseSource, dst []float64) {
	if f, ok := r.(NormalFiller); ok {
		f.FillNormal(dst)
		return
	}
	for i := range dst {
		dst[i] = r.NormFloat64()
	}
}

// fillLaplace fills dst with Laplace(0, b) draws, through the bulk
// interface when the source has one; the scalar fallback preserves draw
// order like fillNormal.
func fillLaplace(r NoiseSource, dst []float64, b float64) {
	if f, ok := r.(LaplaceFiller); ok {
		f.FillLaplace(dst, b)
		return
	}
	for i := range dst {
		dst[i] = laplace(r, b)
	}
}

// cryptoRekeyWords is how many 64-bit words a cryptoWords stream serves
// before re-keying its generator with fresh OS entropy (1 MiB of output
// per 32-byte getrandom). Re-keying bounds how much output ever depends
// on one key and gives forward secrecy at release granularity: by the
// time an attacker could inspect process memory, the keys behind past
// releases are long gone.
const cryptoRekeyWords = 1 << 17

// cryptoWords adapts a cryptographically strong generator to
// rand.Source64, so math/rand's distribution code (ziggurat NormFloat64,
// Float64) runs on a stream safe to publish noise from. Merely *seeding*
// math/rand from crypto/rand is not enough: rand.NewSource reduces the
// seed modulo 2³¹−1, leaving ~2.1e9 possible noise streams — enumerable
// offline by an attacker holding one release. Words instead come from a
// ChaCha8 stream keyed (and periodically re-keyed) by 256 bits of OS
// entropy: the keyspace is unenumerable and the stream is
// indistinguishable from the OS CSPRNG's own output, at in-process
// generation cost instead of a kernel read per block. A source is used
// by a single release at a time, so no locking is needed.
type cryptoWords struct {
	c *randv2.ChaCha8
	n int // words served under the current key
}

func (s *cryptoWords) Uint64() uint64 {
	if s.c == nil || s.n >= cryptoRekeyWords {
		s.rekey()
	}
	s.n++
	return s.c.Uint64()
}

func (s *cryptoWords) rekey() {
	var seed [32]byte
	if _, err := cryptorand.Read(seed[:]); err != nil {
		// crypto/rand does not fail on any supported platform; if it ever
		// does, releasing with degraded noise is not an option.
		panic("mm: crypto/rand unavailable: " + err.Error())
	}
	if s.c == nil {
		s.c = randv2.NewChaCha8(seed)
	} else {
		s.c.Seed(seed)
	}
	s.n = 0
}

func (s *cryptoWords) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *cryptoWords) Seed(int64) {} // the stream ignores deterministic seeds

// CryptoSource is the production noise source: math/rand distribution
// code over a crypto-keyed ChaCha8 word stream, with the bulk fill
// interfaces. The stream position carries over between pooled releases,
// which is safe — each word is still used exactly once — and is what
// lets a pooled source amortize key setup across releases.
type CryptoSource struct {
	*rand.Rand
	words cryptoWords
}

// NewCryptoSeededSource returns a NoiseSource backed by a
// cryptographically strong generator keyed (and periodically re-keyed)
// from the operating system's CSPRNG, so noise streams are unpredictable
// across releases and across server restarts.
func NewCryptoSeededSource() NoiseSource {
	s := &CryptoSource{}
	s.Rand = rand.New(&s.words)
	return s
}

// FillNormal fills dst with standard normal draws; the ziggurat draws
// stream over the crypto-keyed words.
func (s *CryptoSource) FillNormal(dst []float64) {
	for i := range dst {
		dst[i] = s.Rand.NormFloat64()
	}
}

// FillLaplace fills dst with Laplace(0, b) draws by inverse CDF over the
// crypto-keyed words.
func (s *CryptoSource) FillLaplace(dst []float64, b float64) {
	for i := range dst {
		dst[i] = laplace(s, b)
	}
}

// cryptoPool recycles crypto sources so the server's hot path skips the
// per-release source construction and keeps each source's partially
// consumed CSPRNG block. Pooling is safe because a source holds no
// per-release state: only the word buffer, whose every word is consumed
// exactly once regardless of which release consumes it.
var cryptoPool = sync.Pool{New: func() any { return NewCryptoSeededSource().(*CryptoSource) }}

// AcquireCryptoSource returns a pooled production noise source. Release it
// with ReleaseCryptoSource when the release's noise has been drawn.
func AcquireCryptoSource() *CryptoSource {
	return cryptoPool.Get().(*CryptoSource)
}

// ReleaseCryptoSource returns a source to the pool. The caller must not
// use it afterwards.
func ReleaseCryptoSource(s *CryptoSource) { cryptoPool.Put(s) }
