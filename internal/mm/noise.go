package mm

import (
	"bufio"
	cryptorand "crypto/rand"
	"encoding/binary"
	"io"
	"math/rand"
)

// NoiseSource is the randomness a release draws its noise from. It is the
// subset of *rand.Rand the mechanisms use, so a deterministic *rand.Rand
// satisfies it directly for tests and reproducible experiments, while
// production releases use a source backed by the operating system's
// CSPRNG (NewCryptoSeededSource). Seeding from a counter or the wall
// clock makes every "random" release predictable to anyone who can guess
// the seed — a privacy hole, not just a testing nicety.
type NoiseSource interface {
	// Float64 returns a uniform draw in [0,1).
	Float64() float64
	// NormFloat64 returns a standard normal draw.
	NormFloat64() float64
}

// cryptoSource adapts crypto/rand to rand.Source64, so math/rand's
// distribution code (ziggurat NormFloat64, Float64) runs on a stream
// where every word is fresh CSPRNG output. Merely *seeding* math/rand
// from crypto/rand is not enough: rand.NewSource reduces the seed modulo
// 2³¹−1, leaving ~2.1e9 possible noise streams — enumerable offline by an
// attacker holding one release. The buffered reader amortizes the
// syscall; a source is used by a single release, so no locking is needed.
type cryptoSource struct {
	r *bufio.Reader
}

func (s *cryptoSource) Uint64() uint64 {
	var b [8]byte
	if _, err := io.ReadFull(s.r, b[:]); err != nil {
		// crypto/rand does not fail on any supported platform; if it ever
		// does, releasing with degraded noise is not an option.
		panic("mm: crypto/rand unavailable: " + err.Error())
	}
	return binary.LittleEndian.Uint64(b[:])
}

func (s *cryptoSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *cryptoSource) Seed(int64) {} // the stream has no seed state

// NewCryptoSeededSource returns a NoiseSource whose every draw consumes
// fresh output from the operating system's CSPRNG, so noise streams are
// unpredictable across releases and across server restarts.
func NewCryptoSeededSource() NoiseSource {
	return rand.New(&cryptoSource{r: bufio.NewReaderSize(cryptorand.Reader, 512)})
}
