package mm

// Instrumentation cost pins: attaching the registry-backed stage
// timers (the server's always-on am_release_stage_seconds recording)
// must not cost the pinned release paths a single allocation — single,
// sharded, and streamed alike. Tracing is the deliberate exception
// (opt-in per release, allocates freely) and is not attached here.

import (
	"math/rand"
	"testing"

	"adaptivemm/internal/obs"
)

// testStageTimers builds registry-backed stage histograms exactly the
// way the server wires them.
func testStageTimers() *StageTimers {
	reg := obs.NewRegistry()
	return &StageTimers{
		Answer: reg.Histogram("am_release_stage_seconds", "stage latency", obs.DefTimeBuckets, obs.L("stage", "answer")),
		Noise:  reg.Histogram("am_release_stage_seconds", "stage latency", obs.DefTimeBuckets, obs.L("stage", "noise")),
		Infer:  reg.Histogram("am_release_stage_seconds", "stage latency", obs.DefTimeBuckets, obs.L("stage", "infer")),
	}
}

func TestInstrumentedReleaseZeroAlloc(t *testing.T) {
	const n = 64
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 7)
	}
	p := Privacy{Epsilon: 0.5, Delta: 1e-5}
	for name, m := range scratchMechanisms(t, n) {
		t.Run(name, func(t *testing.T) {
			m.SetStageTimers(testStageTimers())
			r := rand.New(rand.NewSource(5))
			sc := m.NewScratch()
			if _, err := m.EstimateGaussianInto(sc, x, p, r); err != nil {
				t.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(50, func() {
				if _, err := m.EstimateGaussianInto(sc, x, p, r); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Fatalf("instrumented EstimateGaussianInto allocates %v per release, want 0", allocs)
			}
		})
	}
}

func TestInstrumentedShardedReleaseZeroAlloc(t *testing.T) {
	shards, full := buildCellShards(t)
	sm, err := NewShardedMechanism(full, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	sm.SetStageTimers(testStageTimers())
	p := Privacy{Epsilon: 0.5, Delta: 1e-4}
	x := []float64{5, 1, 3, 2, 8, 1}
	r := rand.New(rand.NewSource(5))
	sc := sm.NewScratch()
	if _, err := sm.AnswerGaussianInto(sc, full, x, p, r); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := sm.AnswerGaussianInto(sc, full, x, p, r); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("instrumented sharded AnswerGaussianInto allocates %v per release, want 0", allocs)
	}
}

func TestInstrumentedStreamReleaseAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool poisoning makes the pooled stream scratch allocate; the bound is pinned in the non-race run")
	}
	shards, full := buildCellShards(t)
	sm, err := NewShardedMechanism(full, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	sm.SetStageTimers(testStageTimers())
	p := Privacy{Epsilon: 0.5, Delta: 1e-4}
	x := []float64{5, 1, 3, 2, 8, 1}
	r := rand.New(rand.NewSource(5))
	drain := func() {
		st, err := sm.StreamRelease(full, x, p, r, 3)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, _, ok := st.Next(); !ok {
				break
			}
		}
		st.Close()
	}
	drain()
	// The one deliberate allocation is the AnswerStream handle itself;
	// the chunks come from the pooled scratch.
	if allocs := testing.AllocsPerRun(50, drain); allocs > 1 {
		t.Fatalf("instrumented streamed release allocates %v per release, want ≤ 1", allocs)
	}
}
