package mm

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"adaptivemm/internal/linalg"
	"adaptivemm/internal/obs"
	"adaptivemm/internal/workload"
)

// Sharded (composite) mechanisms: one mechanism built from several
// independently designed per-shard mechanisms. The composite strategy is
// the block-diagonal stack of the shard strategies composed with the
// shard projections,
//
//	A = blockdiag(A₁, …, Aₖ) · stack(P₁, …, Pₖ),
//
// an operator on the ORIGINAL histogram, so noise is calibrated to the
// true end-to-end sensitivity: one changed cell moves through every
// projection, and the composite's squared column norm is the sum of the
// shard strategies' squared column norms at the projected cells. For
// cell-partition shards the projections are disjoint selections and the
// composite sensitivity reduces to the max over shards; for marginal
// blocks every shard sees every cell and the sums are real.
//
// Inference runs per shard — each shard's noisy measurements are solved
// by that shard's own prepared inference method, with bounded parallelism
// — and workload answers are the per-shard sub-workload answers scattered
// back into the original row order.

// RowSegment locates a contiguous run of a shard's answers inside the
// original workload's row order (mirrors workload.RowSegment).
type RowSegment struct {
	Start int
	Len   int
}

// Shard is one component of a sharded mechanism.
type Shard struct {
	// Mechanism is the shard's prepared mechanism over its sub-domain.
	Mechanism *Mechanism
	// Project maps the original histogram onto the shard's sub-domain. It
	// must be a 0/1 operator with at most one nonzero per column (a
	// marginalization or a cell selection); NewShardedMechanism verifies
	// this and refuses anything else.
	Project linalg.Operator
	// Workload is the shard's sub-workload, answered on the shard's
	// private sub-histogram estimate.
	Workload *workload.Workload
	// Segments places the shard's answers in the original workload's row
	// order; lengths must sum to Workload.NumQueries().
	Segments []RowSegment
}

// NewShardedMechanism composes per-shard mechanisms into one mechanism
// whose releases are differentially private end to end: a single noise
// scale calibrated to the composite sensitivity covers every shard's
// measurements. planned is the original workload the composite answers —
// sharded mechanisms can answer no other (nil falls back to a
// query-count check only). parallelism bounds how many shards infer
// concurrently (≤0 selects GOMAXPROCS). At least two shards are
// required.
func NewShardedMechanism(planned *workload.Workload, shards []Shard, parallelism int) (*Mechanism, error) {
	if len(shards) < 2 {
		return nil, fmt.Errorf("mm: sharded mechanism needs ≥2 shards, got %d", len(shards))
	}
	n := shards[0].Project.Cols()
	var totalQueries int
	strategies := make([]linalg.Operator, len(shards))
	projections := make([]linalg.Operator, len(shards))
	cn2 := make([]float64, n)
	cn1 := make([]float64, n)
	var allSegs []RowSegment
	for i, s := range shards {
		if s.Mechanism == nil || s.Project == nil || s.Workload == nil {
			return nil, fmt.Errorf("mm: shard %d is missing a mechanism, projection or workload", i)
		}
		if s.Project.Cols() != n {
			return nil, fmt.Errorf("mm: shard %d projection has %d input cells, shard 0 has %d", i, s.Project.Cols(), n)
		}
		a := s.Mechanism.Strategy()
		if s.Project.Rows() != a.Cols() {
			return nil, fmt.Errorf("mm: shard %d projection produces %d cells, strategy expects %d", i, s.Project.Rows(), a.Cols())
		}
		if s.Workload.Cells() != a.Cols() {
			return nil, fmt.Errorf("mm: shard %d sub-workload has %d cells, strategy expects %d", i, s.Workload.Cells(), a.Cols())
		}
		segLen := 0
		for _, seg := range s.Segments {
			if seg.Start < 0 || seg.Len <= 0 {
				return nil, fmt.Errorf("mm: shard %d has an invalid row segment %+v", i, seg)
			}
			segLen += seg.Len
		}
		if segLen != s.Workload.NumQueries() {
			return nil, fmt.Errorf("mm: shard %d segments cover %d rows, sub-workload has %d queries", i, segLen, s.Workload.NumQueries())
		}
		totalQueries += segLen
		strategies[i] = a
		projections[i] = s.Project
		if err := liftColNorms(s, n, cn2, cn1); err != nil {
			return nil, fmt.Errorf("mm: shard %d: %w", i, err)
		}
		allSegs = append(allSegs, s.Segments...)
	}
	// The segments must tile [0, totalQueries) without gaps or overlaps —
	// otherwise scattered answers would silently drop or clobber rows.
	sort.Slice(allSegs, func(i, j int) bool { return allSegs[i].Start < allSegs[j].Start })
	at := 0
	for _, seg := range allSegs {
		if seg.Start != at {
			return nil, fmt.Errorf("mm: shard row segments leave a gap or overlap at row %d", at)
		}
		at += seg.Len
	}

	blockOnly := linalg.BlockDiag(strategies...)
	projStack := linalg.StackOps(projections...)
	composite := linalg.WithColNorms(
		linalg.ComposeOps(blockOnly, projStack), cn2, cn1)
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(shards) {
		parallelism = len(shards)
	}
	if planned != nil && planned.NumQueries() != totalQueries {
		return nil, fmt.Errorf("mm: planned workload has %d queries, shards cover %d", planned.NumQueries(), totalQueries)
	}
	m := &Mechanism{
		a:         composite,
		sensL2:    linalg.MaxColNorm2Op(composite),
		inference: InferSharded,
		shards:    shards,
		shardPar:  parallelism,
		blockOnly: blockOnly,
		projStack: projStack,
		planned:   planned,
	}
	return m, nil
}

// liftColNorms accumulates a shard's strategy column norms onto the
// original cells through its projection: original cell j contributes to
// shard cell π(j), so the composite's column norm at j gains the shard's
// norm at π(j). The projection must map each original cell to at most one
// shard cell with weight 1; the index map is recovered with two
// transposed matvecs (index vector and coverage vector).
func liftColNorms(s Shard, n int, cn2, cn1 []float64) error {
	subCells := s.Project.Rows()
	idxVec := make([]float64, subCells)
	ones := make([]float64, subCells)
	for i := range idxVec {
		idxVec[i] = float64(i)
		ones[i] = 1
	}
	idx := s.Project.MulVecT(idxVec)
	cover := s.Project.MulVecT(ones)
	shardCN2 := linalg.OperatorColNorms2(s.Mechanism.Strategy())
	shardCN1 := linalg.OperatorColNormsL1(s.Mechanism.Strategy())
	for j := 0; j < n; j++ {
		switch {
		case cover[j] == 0:
			continue
		//lint:allow floateq: validating a 0/1 projection matrix — entries are exactly 0 or 1 by construction, anything else is a malformed shard map
		case cover[j] != 1:
			return fmt.Errorf("projection is not a 0/1 single-target map (cell %d has coverage %g)", j, cover[j])
		}
		k := int(idx[j] + 0.5)
		if k < 0 || k >= subCells {
			return fmt.Errorf("projection maps cell %d outside the sub-domain", j)
		}
		cn2[j] += shardCN2[k]
		cn1[j] += shardCN1[k]
	}
	return nil
}

// Shards returns the shard list for sharded mechanisms and nil otherwise.
func (m *Mechanism) Shards() []Shard { return m.shards }

// ShardBackend routes one shard's inference; implementations may run it
// on a remote worker. dst must be filled with exactly the shard's
// sub-domain estimate for the noisy measurements y. A backend whose
// executors solve with the same plan artifacts (the content-addressed
// store guarantees bit-identical operators) returns bit-identical
// estimates to the in-process path, because the per-shard solvers are
// deterministic. Implementations must be safe for concurrent calls:
// every sharded release fans all shards out at once.
//
// tr is the release's trace, nil unless the caller opted in; a remote
// backend propagates tr.ID to the worker (the X-AM-Trace header) and
// may add spans of its own (e.g. a degraded local fallback).
type ShardBackend interface {
	InferShard(tr *obs.Trace, shard int, dst, y []float64) error
}

// SetShardBackend routes the mechanism's per-shard inference through b
// — local and remote execution share one code path, one noise stream
// and one accountant reservation; only the solve of each shard's slice
// moves. nil detaches the backend and restores the in-process shard
// workers. Attach and detach are atomic with respect to concurrent
// releases (each release reads the backend once).
func (m *Mechanism) SetShardBackend(b ShardBackend) error {
	if m.shards == nil {
		return fmt.Errorf("mm: shard backend on a non-sharded mechanism")
	}
	if b == nil {
		m.backend.Store(nil)
		return nil
	}
	m.backend.Store(&b)
	return nil
}

// ShardBackend returns the currently attached backend, nil when shard
// inference runs in process.
func (m *Mechanism) ShardBackend() ShardBackend {
	if bp := m.backend.Load(); bp != nil {
		return *bp
	}
	return nil
}

// ShardDims reports one shard's measurement-row and sub-domain cell
// counts — the slice lengths InferShardLocal (and any ShardBackend)
// exchanges for that shard.
func (m *Mechanism) ShardDims(shard int) (rows, cells int, err error) {
	if m.shards == nil {
		return 0, 0, fmt.Errorf("mm: not a sharded mechanism")
	}
	if shard < 0 || shard >= len(m.shards) {
		return 0, 0, fmt.Errorf("mm: shard %d out of range [0,%d)", shard, len(m.shards))
	}
	a := m.shards[shard].Mechanism.a
	return a.Rows(), a.Cols(), nil
}

// InferShardLocal solves one shard's noisy measurements with that
// shard's own prepared inference method through pooled scratch — the
// worker-side entry point of a distributed release, and the
// coordinator's local fallback when the fleet fails. The bits written
// to dst are identical to what the in-process sharded path produces for
// the same y.
func (m *Mechanism) InferShardLocal(shard int, dst, y []float64) error {
	rows, cells, err := m.ShardDims(shard)
	if err != nil {
		return err
	}
	if len(y) != rows || len(dst) != cells {
		return fmt.Errorf("mm: shard %d takes %d measurements and %d cells, got %d and %d",
			shard, rows, cells, len(y), len(dst))
	}
	sm := m.shards[shard].Mechanism
	sc := sm.GetScratch()
	err = sm.inferInto(dst, y, sc)
	sm.PutScratch(sc)
	return err
}

// totalShardQueries sums the shard sub-workloads' query counts.
func (m *Mechanism) totalShardQueries() int {
	var total int
	for _, s := range m.shards {
		total += s.Workload.NumQueries()
	}
	return total
}

// shardJob is one shard's inference, enqueued by value to the
// mechanism's persistent shard workers: solve y into dst with sm's own
// inference method, record the error, signal the release's WaitGroup.
type shardJob struct {
	sm      *Mechanism
	dst, y  []float64
	err     *error
	release *sync.WaitGroup
}

// startShardWorkers launches the composite's persistent shard-inference
// workers, shardPar of them, fed by one buffered channel. Starting them
// lazily on the first sharded release (rather than in the constructor)
// keeps design-only mechanisms goroutine-free. The workers live for the
// mechanism's lifetime and serve every release — concurrent releases on
// one composite share the same shardPar inference slots, which preserves
// the bounded-parallelism contract globally rather than per call.
func (m *Mechanism) startShardWorkers() {
	m.shardCh = make(chan shardJob, len(m.shards))
	for i := 0; i < m.shardPar; i++ {
		go func() {
			for j := range m.shardCh {
				sub := j.sm.GetScratch()
				*j.err = j.sm.inferInto(j.dst, j.y, sub)
				j.sm.PutScratch(sub)
				j.release.Done()
			}
		}()
	}
}

// inferShardedInto splits the composite measurement vector by shard and
// runs each shard's own inference, with bounded parallelism, writing the
// per-shard sub-domain estimates into their slices of dst. Each shard
// rents scratch from its own mechanism's pool and the fan-out state
// (error slots, WaitGroup) lives in the release's scratch, so the
// steady-state sharded release performs zero allocations (pinned by
// TestShardedReleaseZeroAlloc).
func (m *Mechanism) inferShardedInto(dst, y []float64, sc *ReleaseScratch) error {
	if bp := m.backend.Load(); bp != nil {
		return m.inferShardedVia(*bp, dst, y, sc)
	}
	m.shardOnce.Do(m.startShardWorkers)
	if cap(sc.shardErrs) < len(m.shards) {
		sc.shardErrs = make([]error, len(m.shards))
	}
	errs := sc.shardErrs[:len(m.shards)]
	sc.wg.Add(len(m.shards))
	at, estAt := 0, 0
	for i, s := range m.shards {
		rows := s.Mechanism.a.Rows()
		cells := s.Mechanism.a.Cols()
		m.shardCh <- shardJob{
			sm:      s.Mechanism,
			dst:     dst[estAt : estAt+cells],
			y:       y[at : at+rows],
			err:     &errs[i],
			release: &sc.wg,
		}
		at += rows
		estAt += cells
	}
	sc.wg.Wait()
	var first error
	for i, err := range errs {
		if err != nil && first == nil {
			first = fmt.Errorf("mm: shard %d inference: %w", i, err)
		}
		errs[i] = nil // don't retain shard errors across pooled reuses
	}
	return first
}

// inferShardedVia fans the shards out to an attached backend, one
// goroutine per shard: the backend path is network-bound, not
// CPU-bound, so the persistent bounded workers would only serialize
// remote waits. dst and y are sliced at exactly the same boundaries as
// the local path, and the first shard error wins with the same shape,
// so local and remote execution differ only in where each slice is
// solved.
func (m *Mechanism) inferShardedVia(b ShardBackend, dst, y []float64, sc *ReleaseScratch) error {
	if cap(sc.shardErrs) < len(m.shards) {
		sc.shardErrs = make([]error, len(m.shards))
	}
	errs := sc.shardErrs[:len(m.shards)]
	sc.wg.Add(len(m.shards))
	tr := sc.Trace
	at, estAt := 0, 0
	for i, s := range m.shards {
		rows := s.Mechanism.a.Rows()
		cells := s.Mechanism.a.Cols()
		go func(i int, dst, y []float64) {
			defer sc.wg.Done()
			var t0 time.Time
			if tr != nil {
				t0 = time.Now()
			}
			errs[i] = b.InferShard(tr, i, dst, y)
			if tr != nil {
				tr.AddSpan("shard:"+strconv.Itoa(i), t0)
			}
		}(i, dst[estAt:estAt+cells], y[at:at+rows])
		at += rows
		estAt += cells
	}
	sc.wg.Wait()
	var first error
	for i, err := range errs {
		if err != nil && first == nil {
			first = fmt.Errorf("mm: shard %d inference: %w", i, err)
		}
		errs[i] = nil // don't retain shard errors across pooled reuses
	}
	return first
}

// shardAnswers turns concatenated sub-domain estimates into the original
// workload's answers: each shard answers its sub-workload on its estimate
// slice and the answers are scattered through the row segments.
func (m *Mechanism) shardAnswers(xcat []float64) []float64 {
	out := make([]float64, m.totalShardQueries())
	sc := m.GetScratch()
	m.shardAnswersInto(sc, out, xcat)
	m.PutScratch(sc)
	return out
}

// shardAnswersInto is shardAnswers writing into dst. Single-segment
// shards (cell partitions) answer straight into their destination rows;
// multi-segment shards stage through the scratch's scatter buffer.
func (m *Mechanism) shardAnswersInto(sc *ReleaseScratch, dst, xcat []float64) {
	at := 0
	for _, s := range m.shards {
		cells := s.Workload.Cells()
		xs := xcat[at : at+cells]
		at += cells
		if len(s.Segments) == 1 {
			seg := s.Segments[0]
			s.Workload.MulQueriesInto(dst[seg.Start:seg.Start+seg.Len], xs)
			continue
		}
		sc.tmp = growFloats(sc.tmp, s.Workload.NumQueries())
		s.Workload.MulQueriesInto(sc.tmp, xs)
		pos := 0
		for _, seg := range s.Segments {
			copy(dst[seg.Start:seg.Start+seg.Len], sc.tmp[pos:pos+seg.Len])
			pos += seg.Len
		}
	}
}
