package mm

import (
	"math"
	"math/rand"
	"testing"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/workload"
)

// streamCollect drains a stream into one flat answer slice, checking
// offsets are contiguous.
func streamCollect(t *testing.T, st *AnswerStream) []float64 {
	t.Helper()
	out := make([]float64, 0, st.Rows())
	for {
		off, chunk, ok := st.Next()
		if !ok {
			break
		}
		if off != len(out) {
			t.Fatalf("chunk offset %d, want %d", off, len(out))
		}
		out = append(out, chunk...)
	}
	if len(out) != st.Rows() {
		t.Fatalf("stream yielded %d answers, want %d", len(out), st.Rows())
	}
	return out
}

// TestStreamReleaseMatchesBufferedBitExact is the streaming bit-identity
// property: on the same seeded noise stream, the chunked release must
// reassemble exactly the buffered answer vector — same noise consumption,
// same inference, same workload product bits — across every inference
// path and awkward chunk sizes (1, a prime, larger than the workload).
func TestStreamReleaseMatchesBufferedBitExact(t *testing.T) {
	const n = 32
	x := make([]float64, n)
	for i := range x {
		x[i] = float64((i*7)%13) - 4
	}
	p := Privacy{Epsilon: 0.4, Delta: 1e-6}
	w := workload.FromOperator("intervals", domain.MustShape(n), linalg.NewIntervalsOp(n))
	rows := w.NumQueries()
	mechs := scratchMechanisms(t, n)
	ncg, err := NewMechanismInference(testTreeStrategy(n), InferNormalCG)
	if err != nil {
		t.Fatal(err)
	}
	mechs["normal-cg"] = ncg
	for name, m := range mechs {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				sc := m.GetScratch()
				want, err := m.AnswerGaussianInto(sc, w, x, p, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				buffered := append([]float64(nil), want...)
				m.PutScratch(sc)
				for _, chunk := range []int{1, 7, 4096, rows} {
					st, err := m.StreamRelease(w, x, p, rand.New(rand.NewSource(seed)), chunk)
					if err != nil {
						t.Fatal(err)
					}
					got := streamCollect(t, st)
					st.Close()
					st.Close() // idempotent
					for i := range buffered {
						if math.Float64bits(got[i]) != math.Float64bits(buffered[i]) {
							t.Fatalf("seed %d chunk %d: answer[%d] = %v, buffered %v (bit mismatch)",
								seed, chunk, i, got[i], buffered[i])
						}
					}
				}
			}
		})
	}
}

// marginalShardedMechanism builds a two-shard marginal-block composite
// whose scatter segments interleave in the original row order — the
// multi-segment case the stream's segment index must route correctly.
func marginalShardedMechanism(t *testing.T) (*Mechanism, *workload.Workload) {
	t.Helper()
	shape := domain.MustShape(3, 4)
	w := workload.MarginalSet("two blocks", shape, [][]int{{0}, {1}})
	blocks, ok := workload.MarginalBlocks(w, 0)
	if !ok || len(blocks) != 2 {
		t.Fatalf("blocks=%d ok=%v, want 2", len(blocks), ok)
	}
	shards := make([]Shard, len(blocks))
	for i, b := range blocks {
		mech, err := NewMechanismInference(linalg.ToDense(b.Sub.Op()), InferDensePinv)
		if err != nil {
			t.Fatal(err)
		}
		segs := make([]RowSegment, len(b.Segments))
		for j, s := range b.Segments {
			segs[j] = RowSegment{Start: s.Start, Len: s.Len}
		}
		shards[i] = Shard{Mechanism: mech, Project: b.Project, Workload: b.Sub, Segments: segs}
	}
	sm, err := NewShardedMechanism(w, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sm, w
}

// TestStreamReleaseShardedBitExact pins the sharded streaming path —
// cell-partition (single-segment) and marginal-block (multi-segment
// interleaved scatter) composites — bit-identical to the buffered
// sharded release at every chunk size.
func TestStreamReleaseShardedBitExact(t *testing.T) {
	cellShards, cellFull := buildCellShards(t)
	cellSM, err := NewShardedMechanism(cellFull, cellShards, 0)
	if err != nil {
		t.Fatal(err)
	}
	margSM, margW := marginalShardedMechanism(t)
	cases := []struct {
		name string
		m    *Mechanism
		w    *workload.Workload
		x    []float64
	}{
		{"cell-partition", cellSM, cellFull, []float64{5, 1, 3, 2, 8, 1}},
		{"marginal-blocks", margSM, margW, []float64{3, 0, 2, 5, 1, 1, 0, 4, 2, 2, 0, 7}},
	}
	p := Privacy{Epsilon: 0.6, Delta: 1e-5}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows := tc.w.NumQueries()
			for seed := int64(0); seed < 4; seed++ {
				sc := tc.m.GetScratch()
				want, err := tc.m.AnswerGaussianInto(sc, tc.w, tc.x, p, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				buffered := append([]float64(nil), want...)
				tc.m.PutScratch(sc)
				for _, chunk := range []int{1, 3, 7, rows} {
					st, err := tc.m.StreamRelease(tc.w, tc.x, p, rand.New(rand.NewSource(seed)), chunk)
					if err != nil {
						t.Fatal(err)
					}
					got := streamCollect(t, st)
					st.Close()
					for i := range buffered {
						if math.Float64bits(got[i]) != math.Float64bits(buffered[i]) {
							t.Fatalf("seed %d chunk %d: answer[%d] = %v, buffered %v (bit mismatch)",
								seed, chunk, i, got[i], buffered[i])
						}
					}
				}
			}
		})
	}
}

// TestStreamReleaseValidation pins the stream's refusal paths: foreign
// workloads on sharded mechanisms fail before any noise is drawn, and a
// failed stream does not leak its scratch (the next release still works).
func TestStreamReleaseValidation(t *testing.T) {
	shards, full := buildCellShards(t)
	sm, err := NewShardedMechanism(full, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := Privacy{Epsilon: 0.5, Delta: 1e-4}
	other := workload.Identity(domain.MustShape(6))
	if _, err := sm.StreamRelease(other, make([]float64, 6), p, rand.New(rand.NewSource(1)), 0); err == nil {
		t.Fatal("sharded stream must refuse foreign workloads")
	}
	if _, err := sm.StreamRelease(full, make([]float64, 6), Privacy{}, rand.New(rand.NewSource(1)), 0); err == nil {
		t.Fatal("stream must refuse invalid privacy")
	}
	st, err := sm.StreamRelease(full, []float64{1, 2, 3, 4, 5, 6}, p, rand.New(rand.NewSource(1)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunkSize() != DefaultStreamChunk {
		t.Fatalf("chunkSize = %d, want default %d", st.ChunkSize(), DefaultStreamChunk)
	}
	streamCollect(t, st)
	if _, _, ok := st.Next(); ok {
		t.Fatal("exhausted stream must report ok=false")
	}
	st.Close()
}

// TestShardedReleaseZeroAlloc is the satellite regression pin: with the
// persistent shard workers and scratch-hoisted fan-out state, a warmed
// steady-state sharded release — estimate and full answer — allocates
// nothing.
func TestShardedReleaseZeroAlloc(t *testing.T) {
	shards, full := buildCellShards(t)
	sm, err := NewShardedMechanism(full, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := Privacy{Epsilon: 0.5, Delta: 1e-4}
	x := []float64{5, 1, 3, 2, 8, 1}
	r := rand.New(rand.NewSource(5))
	sc := sm.NewScratch()
	if _, err := sm.AnswerGaussianInto(sc, full, x, p, r); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := sm.EstimateGaussianInto(sc, x, p, r); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warmed sharded EstimateGaussianInto allocates %v per release, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := sm.AnswerGaussianInto(sc, full, x, p, r); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warmed sharded AnswerGaussianInto allocates %v per release, want 0", allocs)
	}
}
