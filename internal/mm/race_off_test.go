//go:build !race

package mm

const raceEnabled = false
