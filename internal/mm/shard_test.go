package mm

import (
	"math"
	"math/rand"
	"testing"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/workload"
)

// buildCellShards splits a block-diagonal system into two cell-partition
// shards over a 6-cell domain: shard 0 owns cells 0-2, shard 1 owns 3-5.
func buildCellShards(t *testing.T) ([]Shard, *workload.Workload) {
	t.Helper()
	w0 := workload.FromMatrix("left", domain.MustShape(3), linalg.NewFromRows([][]float64{
		{1, 1, 0}, {0, 1, 1}, {1, 0, 0},
	}))
	w1 := workload.FromMatrix("right", domain.MustShape(3), linalg.NewFromRows([][]float64{
		{2, 0, 1}, {0, 1, 1},
	}))
	a0 := linalg.NewFromRows([][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}})
	a1 := linalg.NewFromRows([][]float64{{1, 1, 0}, {0, 1, 1}, {1, 0, 1}})
	m0, err := NewMechanismInference(a0, InferDensePinv)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewMechanismInference(a1, InferDensePinv)
	if err != nil {
		t.Fatal(err)
	}
	shards := []Shard{
		{Mechanism: m0, Project: linalg.PermuteRows(linalg.Eye(6), []int{0, 1, 2}), Workload: w0,
			Segments: []RowSegment{{Start: 0, Len: 3}}},
		{Mechanism: m1, Project: linalg.PermuteRows(linalg.Eye(6), []int{3, 4, 5}), Workload: w1,
			Segments: []RowSegment{{Start: 3, Len: 2}}},
	}
	// The full workload: block-diagonal stack of the two sub-workloads.
	full := linalg.New(5, 6)
	for i := 0; i < 3; i++ {
		copy(full.Row(i)[0:3], w0.Matrix().Row(i))
	}
	for i := 0; i < 2; i++ {
		copy(full.Row(3 + i)[3:6], w1.Matrix().Row(i))
	}
	return shards, workload.FromMatrix("full", domain.MustShape(6), full)
}

// For cell-partition shards the composite is genuinely block-diagonal:
// sharded per-shard inference must equal the monolithic joint
// least-squares answers on the same seeded noise stream, and the
// composite sensitivity must match the composite operator's.
func TestShardedEqualsMonolithicOnCellBlocks(t *testing.T) {
	shards, full := buildCellShards(t)
	sm, err := NewShardedMechanism(full, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Inference() != InferSharded {
		t.Fatalf("inference = %v, want sharded", sm.Inference())
	}
	// The declared (lifted) sensitivity must equal the probed sensitivity
	// of the raw composite operator.
	raw := linalg.ComposeOps(sm.blockOnly, linalg.StackOps(shards[0].Project, shards[1].Project))
	probed := linalg.MaxColNorm2Op(linalg.ToDense(raw))
	if math.Abs(sm.SensitivityL2()-probed) > 1e-12 {
		t.Fatalf("lifted sensitivity %g, probed %g", sm.SensitivityL2(), probed)
	}

	// Monolithic reference: exact joint least squares on the same
	// composite strategy.
	mono, err := NewMechanismInference(linalg.ToDense(raw), InferDensePinv)
	if err != nil {
		t.Fatal(err)
	}
	p := Privacy{Epsilon: 0.5, Delta: 1e-4}
	x := []float64{5, 1, 3, 2, 8, 1}
	const seed = 41
	shardedAns, err := sm.AnswerGaussian(full, x, p, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	monoAns, err := mono.AnswerGaussian(full, x, p, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if len(shardedAns) != len(monoAns) {
		t.Fatalf("answer lengths differ: %d vs %d", len(shardedAns), len(monoAns))
	}
	for i := range shardedAns {
		if math.Abs(shardedAns[i]-monoAns[i]) > 1e-8 {
			t.Fatalf("answer %d: sharded %g, monolithic %g", i, shardedAns[i], monoAns[i])
		}
	}
}

// For marginal-block shards every cell feeds every shard, so the
// composite sensitivity is the column-wise sum of the lifted shard norms
// — strictly more than any single shard's. The lifted norms must match a
// dense probe of the composite operator, and the release must be
// deterministic under a pinned seed (noise drawn sequentially, inference
// parallel).
func TestShardedMarginalBlocksSensitivityAndDeterminism(t *testing.T) {
	shape := domain.MustShape(3, 4)
	w := workload.MarginalSet("two blocks", shape, [][]int{{0}, {1}})
	blocks, ok := workload.MarginalBlocks(w, 0)
	if !ok || len(blocks) != 2 {
		t.Fatalf("blocks=%d ok=%v, want 2", len(blocks), ok)
	}
	shards := make([]Shard, len(blocks))
	for i, b := range blocks {
		mech, err := NewMechanismInference(linalg.ToDense(b.Sub.Op()), InferDensePinv)
		if err != nil {
			t.Fatal(err)
		}
		segs := make([]RowSegment, len(b.Segments))
		for j, s := range b.Segments {
			segs[j] = RowSegment{Start: s.Start, Len: s.Len}
		}
		shards[i] = Shard{Mechanism: mech, Project: b.Project, Workload: b.Sub, Segments: segs}
	}
	sm, err := NewShardedMechanism(w, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw := linalg.ToDense(sm.a)
	if got, want := sm.SensitivityL2(), raw.MaxColNorm2(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("lifted sensitivity %g, probed %g", got, want)
	}
	// Both marginal strategies are identities on their sub-domains, so the
	// composite column norm is 1+1=2 everywhere: sensitivity √2, strictly
	// above either shard alone.
	if want := math.Sqrt2; math.Abs(sm.SensitivityL2()-want) > 1e-12 {
		t.Fatalf("sensitivity %g, want √2", sm.SensitivityL2())
	}

	p := Privacy{Epsilon: 1, Delta: 1e-5}
	x := []float64{3, 0, 2, 5, 1, 1, 0, 4, 2, 2, 0, 7}
	a1, err := sm.AnswerGaussian(w, x, p, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := sm.AnswerGaussian(w, x, p, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("answer %d not deterministic under a pinned seed: %g vs %g", i, a1[i], a2[i])
		}
	}
	// Unbiasedness sanity: with ε huge the answers approach the truth.
	tight := Privacy{Epsilon: 1e6, Delta: 1e-5}
	ans, err := sm.AnswerGaussian(w, x, tight, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	want := w.MulQueries(x)
	for i := range want {
		if math.Abs(ans[i]-want[i]) > 1e-3 {
			t.Fatalf("answer %d = %g, want ≈%g", i, ans[i], want[i])
		}
	}
}

// Guard rails: malformed shard sets are refused, and sharded-only
// operations fail with clear errors rather than panicking.
func TestShardedMechanismValidation(t *testing.T) {
	shards, full := buildCellShards(t)
	if _, err := NewShardedMechanism(nil, shards[:1], 0); err == nil {
		t.Fatal("single shard must be refused")
	}
	bad := make([]Shard, 2)
	copy(bad, shards)
	bad[1].Segments = []RowSegment{{Start: 2, Len: 2}} // overlaps shard 0
	if _, err := NewShardedMechanism(nil, bad, 0); err == nil {
		t.Fatal("overlapping segments must be refused")
	}
	sm, err := NewShardedMechanism(full, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := Privacy{Epsilon: 0.5, Delta: 1e-4}
	if _, err := sm.QueryVariances(full, p); err == nil {
		t.Fatal("QueryVariances must refuse sharded strategies")
	}
	other := workload.Identity(domain.MustShape(6))
	if _, err := sm.AnswerGaussian(other, make([]float64, 6), p, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("sharded mechanisms must refuse foreign workloads")
	}
}
