package mm

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"adaptivemm/internal/obs"
)

// loopbackBackend routes each shard back into the mechanism's own local
// solver — the smallest possible "remote" fleet, exercising the full
// backend code path (slicing, concurrency, error plumbing) with no
// network.
type loopbackBackend struct {
	m     *Mechanism
	calls atomic.Int64
	fail  int // shard index to fail, -1 for none
}

func (b *loopbackBackend) InferShard(_ *obs.Trace, shard int, dst, y []float64) error {
	b.calls.Add(1)
	if shard == b.fail {
		return fmt.Errorf("injected backend failure")
	}
	return b.m.InferShardLocal(shard, dst, y)
}

// A release through a shard backend must be bit-identical to the plain
// sharded release on the same seeded noise stream: the backend swaps
// who runs the deterministic per-shard solve, nothing else.
func TestShardBackendBitIdentical(t *testing.T) {
	shards, full := buildCellShards(t)
	sm, err := NewShardedMechanism(full, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := Privacy{Epsilon: 0.5, Delta: 1e-4}
	x := []float64{5, 1, 3, 2, 8, 1}
	const seed = 17

	base, err := sm.AnswerGaussian(full, x, p, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}

	b := &loopbackBackend{m: sm, fail: -1}
	if err := sm.SetShardBackend(b); err != nil {
		t.Fatal(err)
	}
	if sm.ShardBackend() == nil {
		t.Fatal("backend not attached")
	}
	viaBackend, err := sm.AnswerGaussian(full, x, p, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if b.calls.Load() != int64(len(shards)) {
		t.Fatalf("backend served %d shards, want %d", b.calls.Load(), len(shards))
	}
	if len(base) != len(viaBackend) {
		t.Fatalf("answer lengths differ: %d vs %d", len(base), len(viaBackend))
	}
	for i := range base {
		if math.Float64bits(base[i]) != math.Float64bits(viaBackend[i]) {
			t.Fatalf("answer %d: local bits %016x, backend bits %016x",
				i, math.Float64bits(base[i]), math.Float64bits(viaBackend[i]))
		}
	}

	// Detaching restores the local shard workers.
	if err := sm.SetShardBackend(nil); err != nil {
		t.Fatal(err)
	}
	if sm.ShardBackend() != nil {
		t.Fatal("backend still attached after detach")
	}
	detached, err := sm.AnswerGaussian(full, x, p, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if math.Float64bits(base[i]) != math.Float64bits(detached[i]) {
			t.Fatalf("answer %d changed after detach", i)
		}
	}
}

// A backend error fails the release with the shard identified; the
// mechanism stays usable afterwards.
func TestShardBackendErrorPropagates(t *testing.T) {
	shards, full := buildCellShards(t)
	sm, err := NewShardedMechanism(full, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.SetShardBackend(&loopbackBackend{m: sm, fail: 1}); err != nil {
		t.Fatal(err)
	}
	p := Privacy{Epsilon: 0.5, Delta: 1e-4}
	x := []float64{5, 1, 3, 2, 8, 1}
	if _, err := sm.AnswerGaussian(full, x, p, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("release succeeded despite a failing shard backend")
	}
	if err := sm.SetShardBackend(&loopbackBackend{m: sm, fail: -1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sm.AnswerGaussian(full, x, p, rand.New(rand.NewSource(1))); err != nil {
		t.Fatalf("mechanism unusable after a failed backend release: %v", err)
	}
}

func TestShardDimsAndLocalValidation(t *testing.T) {
	shards, full := buildCellShards(t)
	sm, err := NewShardedMechanism(full, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, cells, err := sm.ShardDims(0)
	if err != nil || rows != 4 || cells != 3 {
		t.Fatalf("ShardDims(0) = (%d, %d, %v), want (4, 3, nil)", rows, cells, err)
	}
	if _, _, err := sm.ShardDims(-1); err == nil {
		t.Fatal("negative shard index accepted")
	}
	if _, _, err := sm.ShardDims(len(shards)); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if err := sm.InferShardLocal(0, make([]float64, 2), make([]float64, 4)); err == nil {
		t.Fatal("wrong dst length accepted")
	}
	if err := sm.InferShardLocal(0, make([]float64, 3), make([]float64, 1)); err == nil {
		t.Fatal("wrong y length accepted")
	}

	// Non-sharded mechanisms have no shards to route.
	plain := shards[0].Mechanism
	if err := plain.SetShardBackend(&loopbackBackend{}); err == nil {
		t.Fatal("backend attached to a non-sharded mechanism")
	}
	if _, _, err := plain.ShardDims(0); err == nil {
		t.Fatal("ShardDims on a non-sharded mechanism succeeded")
	}
}
