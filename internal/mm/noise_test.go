package mm

import (
	"math"
	"testing"

	"adaptivemm/internal/linalg"
)

// boundarySource always returns the worst-case uniform draw 0, the value
// that used to drive the inverse-CDF Laplace sampler to −Inf.
type boundarySource struct{}

func (boundarySource) Float64() float64     { return 0 }
func (boundarySource) NormFloat64() float64 { return 0 }

func TestLaplaceBoundaryDrawIsFinite(t *testing.T) {
	v := laplace(boundarySource{}, 1.0)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("laplace at boundary draw = %g, want finite", v)
	}
	// The clamped sample must sit at the extreme negative tail the
	// generator can legitimately reach, not at some arbitrary value.
	want := math.Log(minLaplaceLogArg)
	if v != want {
		t.Fatalf("laplace at boundary draw = %g, want %g", v, want)
	}
}

// TestEstimateLaplaceBoundaryDraw runs a full Laplace release where every
// uniform draw hits the boundary: before the guard, every strategy answer
// was −Inf and least-squares inference returned a corrupted estimate.
func TestEstimateLaplaceBoundaryDraw(t *testing.T) {
	m, err := NewMechanism(linalg.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	xhat, err := m.EstimateLaplace([]float64{1, 2, 3, 4}, 1.0, boundarySource{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range xhat {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("estimate[%d] = %g after boundary draws, want finite", i, v)
		}
	}
}

// TestCryptoSeededSourcesDiffer checks that independently created
// production sources do not share a noise stream — the property the old
// counter-based seeding violated across server restarts.
func TestCryptoSeededSourcesDiffer(t *testing.T) {
	a, b := NewCryptoSeededSource(), NewCryptoSeededSource()
	for i := 0; i < 8; i++ {
		if a.NormFloat64() != b.NormFloat64() {
			return
		}
	}
	t.Fatal("two crypto-seeded sources produced identical noise streams")
}
