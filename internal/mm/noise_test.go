package mm

import (
	"math"
	"testing"

	"adaptivemm/internal/linalg"
)

// boundarySource always returns the worst-case uniform draw 0, the value
// that used to drive the inverse-CDF Laplace sampler to −Inf.
type boundarySource struct{}

func (boundarySource) Float64() float64     { return 0 }
func (boundarySource) NormFloat64() float64 { return 0 }

func TestLaplaceBoundaryDrawIsFinite(t *testing.T) {
	v := laplace(boundarySource{}, 1.0)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("laplace at boundary draw = %g, want finite", v)
	}
	// The clamped sample must sit at the extreme negative tail the
	// generator can legitimately reach, not at some arbitrary value.
	want := math.Log(minLaplaceLogArg)
	if v != want {
		t.Fatalf("laplace at boundary draw = %g, want %g", v, want)
	}
}

// TestEstimateLaplaceBoundaryDraw runs a full Laplace release where every
// uniform draw hits the boundary: before the guard, every strategy answer
// was −Inf and least-squares inference returned a corrupted estimate.
func TestEstimateLaplaceBoundaryDraw(t *testing.T) {
	m, err := NewMechanism(linalg.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	xhat, err := m.EstimateLaplace([]float64{1, 2, 3, 4}, 1.0, boundarySource{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range xhat {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("estimate[%d] = %g after boundary draws, want finite", i, v)
		}
	}
}

// TestCryptoSeededSourcesDiffer checks that independently created
// production sources do not share a noise stream — the property the old
// counter-based seeding violated across server restarts.
func TestCryptoSeededSourcesDiffer(t *testing.T) {
	a, b := NewCryptoSeededSource(), NewCryptoSeededSource()
	for i := 0; i < 8; i++ {
		if a.NormFloat64() != b.NormFloat64() {
			return
		}
	}
	t.Fatal("two crypto-seeded sources produced identical noise streams")
}

// TestCryptoWordsRekeys drives a word stream past its re-key budget and
// checks the counter wraps: the generator must take fresh OS entropy at
// the boundary instead of serving unbounded output from one key.
func TestCryptoWordsRekeys(t *testing.T) {
	var s cryptoWords
	s.Uint64()
	if s.c == nil || s.n != 1 {
		t.Fatalf("after first draw: generator %v, counter %d", s.c, s.n)
	}
	s.n = cryptoRekeyWords // fast-forward to the boundary
	s.Uint64()
	if s.n != 1 {
		t.Fatalf("counter after re-key draw = %d, want 1", s.n)
	}
}

// TestCryptoFillMatchesScalarOrder checks the bulk fill interfaces draw
// in index order from the same stream the scalar loop would use, so the
// batched server path and a draw-per-cell loop are statistically the
// same sampler. The stream is not reproducible, so the test compares
// moments, signs and continuity properties rather than values.
func TestCryptoFillMatchesScalarOrder(t *testing.T) {
	src := NewCryptoSeededSource().(*CryptoSource)
	normal := make([]float64, 200000)
	src.FillNormal(normal)
	var sum, sum2 float64
	for _, v := range normal {
		sum += v
		sum2 += v * v
	}
	n := float64(len(normal))
	mean, variance := sum/n, sum2/n
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.03 {
		t.Fatalf("FillNormal moments: mean %g, variance %g", mean, variance)
	}
	lap := make([]float64, 200000)
	const b = 2.5
	src.FillLaplace(lap, b)
	sum, sum2 = 0, 0
	for _, v := range lap {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("FillLaplace produced %g", v)
		}
		sum += v
		sum2 += v * v
	}
	mean, variance = sum/n, sum2/n
	// Laplace(0, b) has variance 2b².
	if math.Abs(mean) > 0.05 || math.Abs(variance-2*b*b)/(2*b*b) > 0.05 {
		t.Fatalf("FillLaplace moments: mean %g, variance %g, want ~%g", mean, variance, 2*b*b)
	}
}

// TestCryptoSourcePool checks acquire/release recycling keeps sources
// usable and distinct in output across reuse.
func TestCryptoSourcePool(t *testing.T) {
	s := AcquireCryptoSource()
	a := s.NormFloat64()
	ReleaseCryptoSource(s)
	s2 := AcquireCryptoSource()
	defer ReleaseCryptoSource(s2)
	b := s2.NormFloat64()
	if a == b {
		t.Fatal("pooled source repeated a draw after recycling")
	}
	buf := make([]float64, 64)
	s2.FillNormal(buf)
	for i, v := range buf {
		if v == 0 && i > 0 && buf[i-1] == 0 {
			t.Fatal("pooled source produced a dead stream")
		}
	}
}
