package mm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

var testPrivacy = Privacy{Epsilon: 0.5, Delta: 1e-4}

func TestPrivacyValidate(t *testing.T) {
	bad := []Privacy{
		{Epsilon: 0, Delta: 1e-4},
		{Epsilon: -1, Delta: 1e-4},
		{Epsilon: 1, Delta: 0},
		{Epsilon: 1, Delta: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("accepted %+v", p)
		}
	}
	if err := testPrivacy.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPConstant(t *testing.T) {
	// P = 2 ln(2/δ)/ε².
	want := 2 * math.Log(2/1e-4) / 0.25
	if got := testPrivacy.P(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("P = %g, want %g", got, want)
	}
	// σ² = sens²·P·ε²-free check: σ = sens·sqrt(2 ln(2/δ))/ε → σ² = sens²·P.
	sigma := testPrivacy.GaussianSigma(3)
	if math.Abs(sigma*sigma-9*testPrivacy.P()) > 1e-9 {
		t.Fatalf("sigma inconsistent with P: %g vs %g", sigma*sigma, 9*testPrivacy.P())
	}
}

func TestErrorIdentityStrategyClosedForm(t *testing.T) {
	// With A = I: Error = sqrt(P · ‖W‖_F² / m).
	w := workload.Fig1()
	got, err := Error(w, linalg.Identity(8), testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	frob := w.Matrix().FrobeniusNorm()
	want := math.Sqrt(testPrivacy.P() * frob * frob / 8)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Error = %g, want %g", got, want)
	}
}

func TestErrorWorkloadAsStrategy(t *testing.T) {
	// Using W itself as the strategy: the Fig. 1 workload has rank 4 (no
	// query separates the two high-gpa buckets), so the pseudo-inverse
	// trace term is rank(W) = 4 and Error = ‖W‖₂·sqrt(P·4/m). (The paper's
	// Example 4 figure 47.78 idealizes W as full rank, i.e. trace = n.)
	w := workload.Fig1()
	got, err := Error(w, w.Matrix(), testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(5) * math.Sqrt(testPrivacy.P()*4/8)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Error = %g, want %g", got, want)
	}
}

func TestErrorScaleInvarianceOfStrategy(t *testing.T) {
	// Scaling the strategy does not change the error (sensitivity and
	// inference cancel).
	w := workload.Fig1()
	a := strategy.Wavelet(w.Shape()).A
	e1, err := Error(w, a, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Error(w, a.Scale(7.3), testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e1-e2) > 1e-9*e1 {
		t.Fatalf("error changed under strategy scaling: %g vs %g", e1, e2)
	}
}

func TestExample4Ordering(t *testing.T) {
	// Fig. 2 of the paper compares the identity and the flat 8-cell Haar
	// wavelet on the Fig. 1 workload. All workload errors are defined up to
	// one global constant (choice of P and per-query averaging), so we
	// check the paper's *ratio*: 45.36/34.62 ≈ 1.310.
	w := workload.Fig1()
	id, err := Error(w, linalg.Identity(8), testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	wav, err := Error(w, strategy.Wavelet(domain.MustShape(8)).A, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if wav >= id {
		t.Fatalf("expected wavelet < identity, got %g vs %g", wav, id)
	}
	if r := id / wav; math.Abs(r-45.36/34.62) > 0.01 {
		t.Fatalf("identity/wavelet ratio = %g, paper 1.310", r)
	}
}

func TestErrorCheckedDetectsUnsupported(t *testing.T) {
	// A strategy spanning only the first cell cannot answer the total.
	shape := domain.MustShape(4)
	w := workload.Total(shape)
	a := linalg.New(1, 4)
	a.Set(0, 0, 1)
	if _, err := ErrorChecked(w, a, testPrivacy); err != ErrNotSupported {
		t.Fatalf("err = %v, want ErrNotSupported", err)
	}
	// Identity supports everything.
	if _, err := ErrorChecked(w, linalg.Identity(4), testPrivacy); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundBelowAnyStrategy(t *testing.T) {
	// Thm. 2: no strategy beats the SVD bound. Property-test with random
	// full-rank strategies on random workloads.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6)
		shape := domain.MustShape(n)
		w := workload.RandomRange(shape, 2+r.Intn(10), r)
		lb, err := LowerBound(w, testPrivacy)
		if err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			a := linalg.New(n+2, n)
			for i := 0; i < a.Rows(); i++ {
				row := a.Row(i)
				for j := range row {
					row[j] = r.NormFloat64()
				}
			}
			e, err := Error(w, a, testPrivacy)
			if err != nil {
				return false
			}
			if e < lb*(1-1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundFromEigenvaluesMatches(t *testing.T) {
	w := workload.Fig1()
	lb1, err := LowerBound(w, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	eg, err := linalg.SymEigen(w.Gram())
	if err != nil {
		t.Fatal(err)
	}
	lb2 := LowerBoundFromEigenvalues(eg.Values, w.NumQueries(), testPrivacy)
	if math.Abs(lb1-lb2) > 1e-12 {
		t.Fatalf("bounds disagree: %g vs %g", lb1, lb2)
	}
}

func TestQueryErrorsAggregateToWorkloadError(t *testing.T) {
	w := workload.Fig1()
	a := strategy.Hierarchical(w.Shape(), 2).A
	per, err := QueryErrors(w, a, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for _, e := range per {
		s += e * e
	}
	rms := math.Sqrt(s / float64(len(per)))
	total, err := Error(w, a, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rms-total) > 1e-8*total {
		t.Fatalf("per-query RMS %g != workload error %g", rms, total)
	}
}

func TestMechanismUnbiasedAndMatchesAnalyticError(t *testing.T) {
	// Monte Carlo validation of Prop. 4: measured RMSE over trials must
	// match the analytic error within sampling tolerance.
	w := workload.Fig1()
	a := strategy.Wavelet(w.Shape()).A
	mech, err := NewMechanism(a)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{120, 80, 45, 30, 110, 95, 60, 25}
	truth := w.Matrix().MulVec(x)
	r := rand.New(rand.NewSource(1))
	const trials = 4000
	sq := make([]float64, len(truth))
	bias := make([]float64, len(truth))
	for trial := 0; trial < trials; trial++ {
		ans, err := mech.AnswerGaussian(w, x, testPrivacy, r)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ans {
			d := ans[i] - truth[i]
			sq[i] += d * d
			bias[i] += d
		}
	}
	var totalSq float64
	for i := range sq {
		totalSq += sq[i] / trials
		if b := bias[i] / trials; math.Abs(b) > 5 {
			t.Fatalf("query %d biased by %g", i, b)
		}
	}
	measured := math.Sqrt(totalSq / float64(len(truth)))
	analytic, err := Error(w, a, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(measured-analytic) > 0.05*analytic {
		t.Fatalf("measured RMSE %g vs analytic %g", measured, analytic)
	}
}

func TestMechanismConsistency(t *testing.T) {
	// Answers derive from a single x̂, so consistent: q3 = q1 - q2 exactly
	// in the Fig. 1 workload even under noise.
	w := workload.Fig1()
	mech, err := NewMechanism(strategy.Hierarchical(w.Shape(), 2).A)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{10, 20, 30, 40, 50, 60, 70, 80}
	r := rand.New(rand.NewSource(2))
	ans, err := mech.AnswerGaussian(w, x, testPrivacy, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ans[0]-(ans[1]+ans[2])) > 1e-8 {
		t.Fatalf("inconsistent answers: q1=%g q2+q3=%g", ans[0], ans[1]+ans[2])
	}
}

func TestEstimateLaplaceRuns(t *testing.T) {
	mech, err := NewMechanism(linalg.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	xhat, err := mech.EstimateLaplace([]float64{1, 2, 3, 4}, 1.0, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(xhat) != 4 {
		t.Fatalf("xhat length %d", len(xhat))
	}
	if _, err := mech.EstimateLaplace([]float64{1}, 1.0, r); err == nil {
		t.Fatal("accepted wrong-length data")
	}
	if _, err := mech.EstimateLaplace([]float64{1, 2, 3, 4}, 0, r); err == nil {
		t.Fatal("accepted epsilon = 0")
	}
}

func TestLaplaceSamplerMoments(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const n = 200000
	b := 2.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := laplace(r, b)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("laplace mean = %g", mean)
	}
	// Var = 2b² = 8.
	if math.Abs(variance-8) > 0.3 {
		t.Fatalf("laplace variance = %g, want 8", variance)
	}
}

func TestGaussianBaselineMatchesSigma(t *testing.T) {
	w := workload.Total(domain.MustShape(16))
	x := make([]float64, 16)
	r := rand.New(rand.NewSource(5))
	const trials = 50000
	var sumSq float64
	for i := 0; i < trials; i++ {
		ans, err := Gaussian(w, x, testPrivacy, r)
		if err != nil {
			t.Fatal(err)
		}
		sumSq += ans[0] * ans[0]
	}
	measured := math.Sqrt(sumSq / trials)
	want := testPrivacy.GaussianSigma(w.SensitivityL2())
	if math.Abs(measured-want) > 0.03*want {
		t.Fatalf("gaussian σ = %g, want %g", measured, want)
	}
}

func TestEstimateGaussianRejectsBadInput(t *testing.T) {
	mech, err := NewMechanism(linalg.Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(6))
	if _, err := mech.EstimateGaussian([]float64{1, 2}, testPrivacy, r); err == nil {
		t.Fatal("accepted wrong-length data")
	}
	if _, err := mech.EstimateGaussian([]float64{1, 2, 3}, Privacy{}, r); err == nil {
		t.Fatal("accepted zero privacy params")
	}
}

func TestSensitivities(t *testing.T) {
	a := linalg.NewFromRows([][]float64{{1, 1}, {1, -1}, {0, 2}})
	mech, err := NewMechanism(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mech.SensitivityL2()-math.Sqrt(6)) > 1e-12 {
		t.Fatalf("L2 sens = %g", mech.SensitivityL2())
	}
	if mech.SensitivityL1() != 4 {
		t.Fatalf("L1 sens = %g", mech.SensitivityL1())
	}
}

func TestErrorImplicitWorkload(t *testing.T) {
	// Implicit all-range workload: error computable via Gram only.
	shape := domain.MustShape(128)
	w := workload.AllRange(shape)
	eWav, err := Error(w, strategy.Wavelet(shape).A, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	eId, err := Error(w, linalg.Identity(128), testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := LowerBound(w, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if !(lb < eWav && eWav < eId) {
		t.Fatalf("expected lb < wavelet < identity: %g, %g, %g", lb, eWav, eId)
	}
	// Wavelet's advantage on all-range should be large (paper: dramatic).
	if eId/eWav < 2 {
		t.Fatalf("wavelet advantage only %g on all-range(128)", eId/eWav)
	}
}
