package mm

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"adaptivemm/internal/linalg"
	"adaptivemm/internal/obs"
	"adaptivemm/internal/workload"
)

// DenseInferenceCap is the largest cell count for which a dense strategy
// matrix gets an eagerly materialized pseudo-inverse. The pseudo-inverse
// costs O(n³) once and O(m·n) per release; past the cap (or for any
// structured operator) inference runs matrix-free through CGLS, which
// needs only matvecs and no cubic preprocessing.
const DenseInferenceCap = 1024

// Inference names a least-squares inference method for deriving the cell
// estimate x̂ from noisy strategy answers. The planner picks one per plan;
// InferAuto preserves the representation-driven default.
type Inference int

const (
	// InferAuto selects dense-pinv for small dense strategies and CGLS
	// otherwise — the historical automatic choice.
	InferAuto Inference = iota
	// InferDensePinv materializes the Moore-Penrose pseudo-inverse once
	// (O(n³)) and answers each release with one m×n product — the lowest
	// per-release latency. Structured operators are densified when they
	// fit the materialization cap.
	InferDensePinv
	// InferCGLS solves each release matrix-free by conjugate gradients on
	// the factored normal equations: no preprocessing, only matvecs.
	InferCGLS
	// InferNormalCG computes the dense Gram AᵀA once and solves
	// (AᵀA)·x̂ = Aᵀy by plain CG per release: O(n²) per iteration
	// independent of the strategy's row count — the right trade for very
	// tall strategies whose Gram is affordable.
	InferNormalCG
	// InferSharded answers per shard and concatenates: the measurement
	// vector is split at shard boundaries, each slice is solved by that
	// shard's own prepared inference method (with bounded parallelism),
	// and the estimate is the concatenation of the per-shard sub-domain
	// estimates. Only NewShardedMechanism produces this method.
	InferSharded
)

// String returns the wire name used in plans and server responses.
func (i Inference) String() string {
	switch i {
	case InferDensePinv:
		return "dense-pinv"
	case InferCGLS:
		return "cgls"
	case InferNormalCG:
		return "normal-cg"
	case InferSharded:
		return "sharded"
	default:
		return "auto"
	}
}

// Mechanism is a prepared instance of the matrix mechanism for one
// strategy operator. The inference path (see Inference) is fixed at
// construction: automatically by representation and size in
// NewMechanismOp, or explicitly by the planner in NewMechanismInference.
type Mechanism struct {
	a         linalg.Operator
	dense     *linalg.Matrix     // a as dense, when that is its representation
	apinv     *linalg.Matrix     // dense pseudo-inverse for InferDensePinv
	gram      *linalg.Matrix     // dense AᵀA for InferNormalCG
	tree      *linalg.TreeSolver // exact O(n) solver for interval-tree strategies
	inference Inference          // resolved method, never InferAuto
	sensL2    float64

	scratch sync.Pool // recycled *ReleaseScratch

	// Sharded (composite) mechanisms only — see NewShardedMechanism.
	shards    []Shard
	shardPar  int                // bounded shard-inference parallelism
	blockOnly linalg.Operator    // blockdiag(shard strategies), no projections
	projStack linalg.Operator    // stack(shard projections)
	planned   *workload.Workload // the one workload the composite answers
	shardOnce sync.Once          // starts the persistent shard workers
	shardCh   chan shardJob      // feeds the persistent shard workers
	// backend, when set, routes per-shard inference through a
	// ShardBackend (a remote worker fleet) instead of the local shard
	// workers; see SetShardBackend. Atomic so attach/detach never races
	// a concurrent release.
	backend atomic.Pointer[ShardBackend]

	// Streaming releases (see stream.go): the scatter segments flattened
	// into one sorted row index, built lazily on the first StreamRelease.
	streamOnce sync.Once
	streamSegs []streamSeg

	l1Once sync.Once
	sensL1 float64

	// timers, when set, receives per-stage release latencies
	// (answer → noise → infer). Atomic so the server can attach its
	// registry-backed histograms after construction without racing
	// in-flight releases; recording is atomic-only, so the pinned
	// zero-alloc release path stays zero-alloc with timers attached.
	timers atomic.Pointer[StageTimers]
}

// StageTimers carries the release pipeline's per-stage latency
// histograms. All three fields must be non-nil when attached.
type StageTimers struct {
	Answer *obs.Histogram // strategy answers A·x
	Noise  *obs.Histogram // CSPRNG draws + noise add
	Infer  *obs.Histogram // least-squares inference
}

// SetStageTimers attaches (or, with nil, detaches) the per-stage
// latency histograms. Safe against concurrent releases.
func (m *Mechanism) SetStageTimers(t *StageTimers) { m.timers.Store(t) }

// NewMechanism prepares a mechanism for a dense strategy matrix. It is
// NewMechanismOp with the dense representation.
func NewMechanism(a *linalg.Matrix) (*Mechanism, error) {
	return NewMechanismOp(a)
}

// NewMechanismOp prepares a mechanism for any strategy operator, selecting
// the inference path by representation and size.
func NewMechanismOp(a linalg.Operator) (*Mechanism, error) {
	return NewMechanismInference(a, InferAuto)
}

// NewMechanismInference prepares a mechanism with an explicit inference
// method — the planner's entry point, so the mechanism no longer guesses.
// InferDensePinv densifies structured operators under the materialization
// cap and errors past it; InferNormalCG computes the dense Gram once
// (using an analytic form when the operator has one).
func NewMechanismInference(a linalg.Operator, inf Inference) (*Mechanism, error) {
	m := &Mechanism{a: a, sensL2: linalg.MaxColNorm2Op(a)}
	if d, ok := a.(*linalg.Matrix); ok {
		m.dense = d
	}
	if inf == InferAuto {
		if m.dense != nil && a.Cols() <= DenseInferenceCap {
			inf = InferDensePinv
		} else {
			inf = InferCGLS
		}
	}
	switch inf {
	case InferDensePinv:
		d := m.dense
		if d == nil {
			if a.Cols() > 0 && a.Rows() > linalg.MaterializeCap/a.Cols() {
				return nil, fmt.Errorf("mm: strategy too large to materialize for dense-pinv inference (%d x %d)", a.Rows(), a.Cols())
			}
			d = linalg.ToDense(a)
			m.dense = d
		}
		pinv, err := linalg.PseudoInverse(d)
		if err != nil {
			return nil, err
		}
		m.apinv = pinv
	case InferNormalCG:
		// The dense Gram is n×n: refuse domains whose Gram would blow the
		// materialization budget instead of attempting the allocation.
		if n := a.Cols(); n > 0 && n > linalg.MaterializeCap/n {
			return nil, fmt.Errorf("mm: strategy Gram too large to materialize for normal-CG inference (%d x %d cells)", n, n)
		}
		m.gram = linalg.OperatorGram(a)
	case InferCGLS:
		// Nothing dense to prepare — but when the strategy is an interval
		// forest (hierarchical trees and friends), precompute the exact
		// O(rows) tree solver. Detection runs on the CSR form, so plans
		// rehydrated from the store accelerate without any codec change;
		// anything unrecognized keeps pure CGLS.
		m.tree, _ = linalg.NewTreeSolver(a)
	case InferSharded:
		return nil, fmt.Errorf("mm: sharded inference requires per-shard mechanisms; use NewShardedMechanism")
	default:
		return nil, fmt.Errorf("mm: unknown inference method %d", inf)
	}
	m.inference = inf
	return m, nil
}

// NewMechanismPrepared rebuilds a mechanism from persisted artifacts: a
// strategy operator, its resolved inference method, and — when the
// method precomputes one — the pseudo-inverse or Gram matrix saved from
// the original mechanism. Supplying the artifact skips the O(n³)
// preparation that NewMechanismInference would redo, which is the whole
// point of rehydrating a plan instead of re-designing it; a nil artifact
// falls back to recomputation. Artifacts with the wrong shape are
// refused: a stale pseudo-inverse would silently corrupt every release.
func NewMechanismPrepared(a linalg.Operator, inf Inference, pinv, gram *linalg.Matrix) (*Mechanism, error) {
	switch inf {
	case InferDensePinv:
		if pinv == nil {
			return NewMechanismInference(a, inf)
		}
		if pinv.Rows() != a.Cols() || pinv.Cols() != a.Rows() {
			return nil, fmt.Errorf("mm: persisted pseudo-inverse is %dx%d for a %dx%d strategy",
				pinv.Rows(), pinv.Cols(), a.Rows(), a.Cols())
		}
		m := &Mechanism{a: a, sensL2: linalg.MaxColNorm2Op(a), apinv: pinv, inference: inf}
		if d, ok := a.(*linalg.Matrix); ok {
			m.dense = d
		}
		return m, nil
	case InferNormalCG:
		if gram == nil {
			return NewMechanismInference(a, inf)
		}
		if gram.Rows() != a.Cols() || gram.Cols() != a.Cols() {
			return nil, fmt.Errorf("mm: persisted Gram is %dx%d for a strategy with %d cells",
				gram.Rows(), gram.Cols(), a.Cols())
		}
		m := &Mechanism{a: a, sensL2: linalg.MaxColNorm2Op(a), gram: gram, inference: inf}
		if d, ok := a.(*linalg.Matrix); ok {
			m.dense = d
		}
		return m, nil
	default:
		return NewMechanismInference(a, inf)
	}
}

// PreparedPinv returns the precomputed dense pseudo-inverse backing
// InferDensePinv, or nil — the artifact the plan store persists so a
// rehydrated mechanism skips the O(n³) preparation.
func (m *Mechanism) PreparedPinv() *linalg.Matrix { return m.apinv }

// PreparedGram returns the precomputed dense Gram backing InferNormalCG,
// or nil.
func (m *Mechanism) PreparedGram() *linalg.Matrix { return m.gram }

// Inference returns the resolved inference method.
func (m *Mechanism) Inference() Inference { return m.inference }

// Strategy returns the strategy operator.
func (m *Mechanism) Strategy() linalg.Operator { return m.a }

// StrategyDense returns the strategy as a dense matrix, materializing a
// structured operator when rows×cols is affordable.
func (m *Mechanism) StrategyDense() (*linalg.Matrix, error) {
	if m.dense != nil {
		return m.dense, nil
	}
	if m.a.Cols() > 0 && m.a.Rows() > linalg.MaterializeCap/m.a.Cols() {
		return nil, fmt.Errorf("mm: strategy too large to materialize (%d x %d)", m.a.Rows(), m.a.Cols())
	}
	return linalg.ToDense(m.a), nil
}

// MatrixFree reports whether inference runs through CGLS instead of a
// materialized pseudo-inverse.
func (m *Mechanism) MatrixFree() bool { return m.apinv == nil }

// SensitivityL2 returns ‖A‖₂.
func (m *Mechanism) SensitivityL2() float64 { return m.sensL2 }

// SensitivityL1 returns ‖A‖₁. For structured operators without an analytic
// L1 column-norm form it is computed on first use by probing columns.
func (m *Mechanism) SensitivityL1() float64 {
	m.l1Once.Do(func() { m.sensL1 = linalg.MaxColNormL1Op(m.a) })
	return m.sensL1
}

// infer computes the least-squares estimate x̂ from noisy strategy answers
// y through the mechanism's resolved inference method. For sharded
// mechanisms the estimate is the concatenation of the per-shard
// sub-domain estimates. It is the allocating spelling of inferInto.
func (m *Mechanism) infer(y []float64) ([]float64, error) {
	out := make([]float64, m.estimateLen())
	sc := m.GetScratch()
	err := m.inferInto(out, y, sc)
	m.PutScratch(sc)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EstimateGaussian runs one (ε,δ)-differentially private release: it
// answers the strategy queries with the Gaussian mechanism and returns the
// least-squares estimate x̂ of the data vector (steps 1–2 of Prop. 3's
// three-step description). Workload answers are then consistent linear
// functions of x̂. For sharded mechanisms the estimate is the
// concatenation of the per-shard sub-domain estimates; use
// WorkloadAnswers (or AnswerGaussian) to map it onto workload answers.
func (m *Mechanism) EstimateGaussian(x []float64, p Privacy, r NoiseSource) ([]float64, error) {
	sc := m.GetScratch()
	defer m.PutScratch(sc)
	est, err := m.EstimateGaussianInto(sc, x, p, r)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), est...), nil
}

// EstimateLaplace is the pure ε-differential privacy analogue using Laplace
// noise calibrated to the L1 sensitivity of the strategy.
func (m *Mechanism) EstimateLaplace(x []float64, epsilon float64, r NoiseSource) ([]float64, error) {
	sc := m.GetScratch()
	defer m.PutScratch(sc)
	est, err := m.EstimateLaplaceInto(sc, x, epsilon, r)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), est...), nil
}

// AnswerGaussian answers a workload in one shot: private estimate followed
// by W x̂ (step 3 of Prop. 3). The workload answers go through its
// operator, so structured workloads of millions of queries are answered
// without materializing anything. Sharded mechanisms answer per shard and
// scatter the answers back into the workload's row order; they only
// answer the workload they were planned for.
func (m *Mechanism) AnswerGaussian(w *workload.Workload, x []float64, p Privacy, r NoiseSource) ([]float64, error) {
	sc := m.GetScratch()
	defer m.PutScratch(sc)
	ans, err := m.AnswerGaussianInto(sc, w, x, p, r)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), ans...), nil
}

// WorkloadAnswers maps a private estimate produced by this mechanism onto
// workload answers: W x̂ for ordinary mechanisms, per-shard sub-workload
// answers scattered into the original row order for sharded ones (whose
// estimates are concatenated sub-domain estimates). Sharded mechanisms
// answer only the exact workload they were planned for — the shard row
// segments are meaningless for any other — so a different workload is
// refused even when its query count happens to match.
func (m *Mechanism) WorkloadAnswers(w *workload.Workload, xhat []float64) ([]float64, error) {
	if m.shards == nil {
		return w.MulQueries(xhat), nil
	}
	if m.planned != nil && w != m.planned {
		return nil, fmt.Errorf("mm: sharded mechanism answers only the workload it was planned for (%q); answer %q with its own plan",
			m.planned.Name(), w.Name())
	}
	if w.NumQueries() != m.totalShardQueries() {
		return nil, fmt.Errorf("mm: sharded mechanism answers only its planned workload (%d queries), got one with %d",
			m.totalShardQueries(), w.NumQueries())
	}
	return m.shardAnswers(xhat), nil
}

// Gaussian is the plain Gaussian mechanism of Prop. 2: independent noise
// scaled to the workload's own L2 sensitivity, with no strategy or
// inference. It is the baseline the matrix mechanism improves on.
func Gaussian(w *workload.Workload, x []float64, p Privacy, r NoiseSource) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sigma := p.GaussianSigma(w.SensitivityL2())
	y := w.MulQueries(x)
	for i := range y {
		y[i] += sigma * r.NormFloat64()
	}
	return y, nil
}

// minLaplaceLogArg is the smallest value the log argument in the inverse
// CDF is allowed to take: the spacing of Float64 draws (2⁻⁵³), i.e. the
// smallest nonzero value 1+2u can reach. Clamping there keeps the sample
// at the magnitude of the rarest representable draw instead of −Inf.
const minLaplaceLogArg = 0x1p-53

// laplace draws one Laplace(0, b) sample by inverse CDF.
func laplace(r NoiseSource, b float64) float64 {
	u := r.Float64() - 0.5
	if u >= 0 {
		return -b * math.Log(1-2*u)
	}
	// Float64 can return exactly 0, making u = −0.5 and the log argument
	// 0: the sample would be −Inf and corrupt the whole least-squares
	// estimate. Clamp to the boundary of the generator's support.
	arg := 1 + 2*u
	if arg < minLaplaceLogArg {
		arg = minLaplaceLogArg
	}
	return b * math.Log(arg)
}
