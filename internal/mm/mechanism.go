package mm

import (
	"fmt"
	"math"
	"sync"

	"adaptivemm/internal/linalg"
	"adaptivemm/internal/workload"
)

// denseInferenceCap is the largest cell count for which a dense strategy
// matrix gets an eagerly materialized pseudo-inverse. The pseudo-inverse
// costs O(n³) once and O(m·n) per release; past the cap (or for any
// structured operator) inference runs matrix-free through CGLS, which
// needs only matvecs and no cubic preprocessing.
const denseInferenceCap = 1024

// Mechanism is a prepared instance of the matrix mechanism for one
// strategy operator. Two inference paths exist:
//
//   - dense: for small dense strategies the Moore-Penrose pseudo-inverse
//     is computed once and reused across releases (the paper's one-time
//     preprocessing observation);
//   - matrix-free: for structured operators (Kronecker, sparse, analytic)
//     and large dense strategies, each release solves the least-squares
//     problem by CGLS, touching nothing bigger than length-m/n vectors.
//
// The path is chosen automatically in NewMechanismOp.
type Mechanism struct {
	a      linalg.Operator
	dense  *linalg.Matrix // a as dense, when that is its representation
	apinv  *linalg.Matrix // dense pseudo-inverse; nil selects CGLS
	sensL2 float64

	l1Once sync.Once
	sensL1 float64
}

// NewMechanism prepares a mechanism for a dense strategy matrix. It is
// NewMechanismOp with the dense representation.
func NewMechanism(a *linalg.Matrix) (*Mechanism, error) {
	return NewMechanismOp(a)
}

// NewMechanismOp prepares a mechanism for any strategy operator, selecting
// the inference path by representation and size.
func NewMechanismOp(a linalg.Operator) (*Mechanism, error) {
	m := &Mechanism{a: a, sensL2: linalg.MaxColNorm2Op(a)}
	if d, ok := a.(*linalg.Matrix); ok {
		m.dense = d
		if d.Cols() <= denseInferenceCap {
			pinv, err := linalg.PseudoInverse(d)
			if err != nil {
				return nil, err
			}
			m.apinv = pinv
		}
	}
	return m, nil
}

// Strategy returns the strategy operator.
func (m *Mechanism) Strategy() linalg.Operator { return m.a }

// StrategyDense returns the strategy as a dense matrix, materializing a
// structured operator when rows×cols is affordable.
func (m *Mechanism) StrategyDense() (*linalg.Matrix, error) {
	if m.dense != nil {
		return m.dense, nil
	}
	if m.a.Cols() > 0 && m.a.Rows() > linalg.MaterializeCap/m.a.Cols() {
		return nil, fmt.Errorf("mm: strategy too large to materialize (%d x %d)", m.a.Rows(), m.a.Cols())
	}
	return linalg.ToDense(m.a), nil
}

// MatrixFree reports whether inference runs through CGLS instead of a
// materialized pseudo-inverse.
func (m *Mechanism) MatrixFree() bool { return m.apinv == nil }

// SensitivityL2 returns ‖A‖₂.
func (m *Mechanism) SensitivityL2() float64 { return m.sensL2 }

// SensitivityL1 returns ‖A‖₁. For structured operators without an analytic
// L1 column-norm form it is computed on first use by probing columns.
func (m *Mechanism) SensitivityL1() float64 {
	m.l1Once.Do(func() { m.sensL1 = linalg.MaxColNormL1Op(m.a) })
	return m.sensL1
}

// infer computes the least-squares estimate x̂ from noisy strategy answers
// y: through the pseudo-inverse when it is materialized, by CGLS
// otherwise.
func (m *Mechanism) infer(y []float64) ([]float64, error) {
	if m.apinv != nil {
		return m.apinv.MulVec(y), nil
	}
	return linalg.SolveCGLS(m.a, y, linalg.CGOptions{})
}

// EstimateGaussian runs one (ε,δ)-differentially private release: it
// answers the strategy queries with the Gaussian mechanism and returns the
// least-squares estimate x̂ of the data vector (steps 1–2 of Prop. 3's
// three-step description). Workload answers are then consistent linear
// functions of x̂.
func (m *Mechanism) EstimateGaussian(x []float64, p Privacy, r NoiseSource) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(x) != m.a.Cols() {
		return nil, fmt.Errorf("mm: data vector has %d cells, strategy expects %d", len(x), m.a.Cols())
	}
	sigma := p.GaussianSigma(m.sensL2)
	y := m.a.MulVec(x)
	for i := range y {
		y[i] += sigma * r.NormFloat64()
	}
	return m.infer(y)
}

// EstimateLaplace is the pure ε-differential privacy analogue using Laplace
// noise calibrated to the L1 sensitivity of the strategy.
func (m *Mechanism) EstimateLaplace(x []float64, epsilon float64, r NoiseSource) ([]float64, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("mm: epsilon = %g must be positive", epsilon)
	}
	if len(x) != m.a.Cols() {
		return nil, fmt.Errorf("mm: data vector has %d cells, strategy expects %d", len(x), m.a.Cols())
	}
	b := m.SensitivityL1() / epsilon
	y := m.a.MulVec(x)
	for i := range y {
		y[i] += laplace(r, b)
	}
	return m.infer(y)
}

// AnswerGaussian answers a workload in one shot: private estimate followed
// by W x̂ (step 3 of Prop. 3). The workload answers go through its
// operator, so structured workloads of millions of queries are answered
// without materializing anything.
func (m *Mechanism) AnswerGaussian(w *workload.Workload, x []float64, p Privacy, r NoiseSource) ([]float64, error) {
	xhat, err := m.EstimateGaussian(x, p, r)
	if err != nil {
		return nil, err
	}
	return w.MulQueries(xhat), nil
}

// Gaussian is the plain Gaussian mechanism of Prop. 2: independent noise
// scaled to the workload's own L2 sensitivity, with no strategy or
// inference. It is the baseline the matrix mechanism improves on.
func Gaussian(w *workload.Workload, x []float64, p Privacy, r NoiseSource) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sigma := p.GaussianSigma(w.SensitivityL2())
	y := w.MulQueries(x)
	for i := range y {
		y[i] += sigma * r.NormFloat64()
	}
	return y, nil
}

// minLaplaceLogArg is the smallest value the log argument in the inverse
// CDF is allowed to take: the spacing of Float64 draws (2⁻⁵³), i.e. the
// smallest nonzero value 1+2u can reach. Clamping there keeps the sample
// at the magnitude of the rarest representable draw instead of −Inf.
const minLaplaceLogArg = 0x1p-53

// laplace draws one Laplace(0, b) sample by inverse CDF.
func laplace(r NoiseSource, b float64) float64 {
	u := r.Float64() - 0.5
	if u >= 0 {
		return -b * math.Log(1-2*u)
	}
	// Float64 can return exactly 0, making u = −0.5 and the log argument
	// 0: the sample would be −Inf and corrupt the whole least-squares
	// estimate. Clamp to the boundary of the generator's support.
	arg := 1 + 2*u
	if arg < minLaplaceLogArg {
		arg = minLaplaceLogArg
	}
	return b * math.Log(arg)
}
