package mm

import (
	"fmt"
	"math"
	"math/rand"

	"adaptivemm/internal/linalg"
	"adaptivemm/internal/workload"
)

// Mechanism is a prepared instance of the matrix mechanism for one strategy
// matrix: the pseudo-inverse used for least-squares inference is computed
// once and reused across databases, matching the paper's observation that
// strategy selection and preprocessing are one-time costs per workload.
type Mechanism struct {
	a      *linalg.Matrix
	apinv  *linalg.Matrix
	sensL2 float64
	sensL1 float64
}

// NewMechanism prepares a mechanism for the given strategy matrix.
func NewMechanism(a *linalg.Matrix) (*Mechanism, error) {
	pinv, err := linalg.PseudoInverse(a)
	if err != nil {
		return nil, err
	}
	return &Mechanism{
		a:      a,
		apinv:  pinv,
		sensL2: a.MaxColNorm2(),
		sensL1: a.MaxColNormL1(),
	}, nil
}

// Strategy returns the strategy matrix.
func (m *Mechanism) Strategy() *linalg.Matrix { return m.a }

// SensitivityL2 returns ‖A‖₂.
func (m *Mechanism) SensitivityL2() float64 { return m.sensL2 }

// SensitivityL1 returns ‖A‖₁.
func (m *Mechanism) SensitivityL1() float64 { return m.sensL1 }

// EstimateGaussian runs one (ε,δ)-differentially private release: it
// answers the strategy queries with the Gaussian mechanism and returns the
// least-squares estimate x̂ of the data vector (steps 1–2 of Prop. 3's
// three-step description). Workload answers are then consistent linear
// functions of x̂.
func (m *Mechanism) EstimateGaussian(x []float64, p Privacy, r *rand.Rand) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(x) != m.a.Cols() {
		return nil, fmt.Errorf("mm: data vector has %d cells, strategy expects %d", len(x), m.a.Cols())
	}
	sigma := p.GaussianSigma(m.sensL2)
	y := m.a.MulVec(x)
	for i := range y {
		y[i] += sigma * r.NormFloat64()
	}
	return m.apinv.MulVec(y), nil
}

// EstimateLaplace is the pure ε-differential privacy analogue using Laplace
// noise calibrated to the L1 sensitivity of the strategy.
func (m *Mechanism) EstimateLaplace(x []float64, epsilon float64, r *rand.Rand) ([]float64, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("mm: epsilon = %g must be positive", epsilon)
	}
	if len(x) != m.a.Cols() {
		return nil, fmt.Errorf("mm: data vector has %d cells, strategy expects %d", len(x), m.a.Cols())
	}
	b := m.sensL1 / epsilon
	y := m.a.MulVec(x)
	for i := range y {
		y[i] += laplace(r, b)
	}
	return m.apinv.MulVec(y), nil
}

// AnswerGaussian answers an explicit workload in one shot: private
// estimate followed by W x̂ (step 3 of Prop. 3).
func (m *Mechanism) AnswerGaussian(w *workload.Workload, x []float64, p Privacy, r *rand.Rand) ([]float64, error) {
	xhat, err := m.EstimateGaussian(x, p, r)
	if err != nil {
		return nil, err
	}
	return w.Matrix().MulVec(xhat), nil
}

// Gaussian is the plain Gaussian mechanism of Prop. 2: independent noise
// scaled to the workload's own L2 sensitivity, with no strategy or
// inference. It is the baseline the matrix mechanism improves on.
func Gaussian(w *workload.Workload, x []float64, p Privacy, r *rand.Rand) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sigma := p.GaussianSigma(w.SensitivityL2())
	y := w.Matrix().MulVec(x)
	for i := range y {
		y[i] += sigma * r.NormFloat64()
	}
	return y, nil
}

// laplace draws one Laplace(0, b) sample by inverse CDF.
func laplace(r *rand.Rand, b float64) float64 {
	u := r.Float64() - 0.5
	if u >= 0 {
		return -b * math.Log(1-2*u)
	}
	return b * math.Log(1+2*u)
}
