package mm

import (
	"math"
	"math/rand"
	"testing"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/workload"
)

// Property: the matrix-free CGLS inference path must agree with the dense
// pseudo-inverse path to ‖x̂_cg − x̂_pinv‖ ≤ 1e-8·(1+‖x̂‖) across strategy
// representations — random dense, prefix (analytic), and Kronecker
// (structured) — over random noisy answer vectors.
func TestCGLSInferenceMatchesPseudoInverse(t *testing.T) {
	r := rand.New(rand.NewSource(42))

	randStrategy := func(n int) linalg.Operator {
		m := linalg.New(2*n, n)
		for i := 0; i < 2*n; i++ {
			row := m.Row(i)
			for j := range row {
				row[j] = r.NormFloat64()
			}
		}
		return m
	}
	kronStrategy := func() linalg.Operator {
		// Structured factors: sparse hierarchical-ish CSR ⊗ prefix.
		b := linalg.NewSparseBuilder(6)
		b.AppendRangeRow(0, 5, 1)
		b.AppendRangeRow(0, 2, 1)
		b.AppendRangeRow(3, 5, 1)
		for j := 0; j < 6; j++ {
			b.AppendRangeRow(j, j, 1)
		}
		return linalg.NewKronOp(b.Build(), linalg.NewPrefixOp(5))
	}

	cases := []struct {
		name string
		op   linalg.Operator
	}{
		{"random-24", randStrategy(24)},
		{"random-40", randStrategy(40)},
		{"prefix-32", linalg.NewPrefixOp(32)},
		{"kron-sparse-prefix", kronStrategy()},
		{"kron-intervals-eye", linalg.NewKronOp(linalg.NewIntervalsOp(5), linalg.Eye(4))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dense := linalg.ToDense(c.op)
			pinv, err := linalg.PseudoInverse(dense)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 20; trial++ {
				y := make([]float64, c.op.Rows())
				for i := range y {
					y[i] = 10 * r.NormFloat64()
				}
				want := pinv.MulVec(y)
				got, err := linalg.SolveCGLS(c.op, y, linalg.CGOptions{})
				if err != nil {
					t.Fatal(err)
				}
				var diff, norm float64
				for i := range want {
					d := got[i] - want[i]
					diff += d * d
					norm += want[i] * want[i]
				}
				if math.Sqrt(diff) > 1e-8*(1+math.Sqrt(norm)) {
					t.Fatalf("trial %d: ‖x̂_cg − x̂_pinv‖ = %g over ‖x̂‖ = %g",
						trial, math.Sqrt(diff), math.Sqrt(norm))
				}
			}
		})
	}
}

// The full mechanism paths (noise included) must agree as well: with the
// same seed the dense and operator mechanisms draw identical noise, so the
// released estimates must match to solver precision.
func TestMechanismPathsAgree(t *testing.T) {
	op := linalg.NewKronOp(linalg.NewIntervalsOp(4), linalg.NewPrefixOp(4))
	dense := linalg.ToDense(op)

	md, err := NewMechanism(dense)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := NewMechanismOp(op)
	if err != nil {
		t.Fatal(err)
	}
	if md.MatrixFree() {
		t.Fatal("dense mechanism unexpectedly matrix-free")
	}
	if !mo.MatrixFree() {
		t.Fatal("operator mechanism should be matrix-free")
	}
	if math.Abs(md.SensitivityL2()-mo.SensitivityL2()) > 1e-9*md.SensitivityL2() {
		t.Fatalf("sensitivities differ: %g vs %g", md.SensitivityL2(), mo.SensitivityL2())
	}

	x := make([]float64, 16)
	for i := range x {
		x[i] = float64(i * i % 11)
	}
	p := Privacy{Epsilon: 0.5, Delta: 1e-4}
	a, err := md.EstimateGaussian(x, p, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := mo.EstimateGaussian(x, p, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	var diff, norm float64
	for i := range a {
		d := a[i] - b[i]
		diff += d * d
		norm += a[i] * a[i]
	}
	if math.Sqrt(diff) > 1e-8*(1+math.Sqrt(norm)) {
		t.Fatalf("dense and operator releases diverge: %g", math.Sqrt(diff))
	}
}

// QueryVariances must return an error, not panic, for workloads too large
// to materialize (per-query variances need explicit rows).
func TestQueryVariancesRejectsHugeWorkload(t *testing.T) {
	w := workload.AllRange(domain.MustShape(2048))
	mech, err := NewMechanismOp(linalg.NewIntervalsOp(2048))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mech.QueryVariances(w, Privacy{Epsilon: 1, Delta: 1e-4}); err == nil {
		t.Fatal("expected an error for a workload past the materialization cap")
	}
}
