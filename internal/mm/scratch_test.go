package mm

import (
	"math"
	"math/rand"
	"testing"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/workload"
)

// testTreeStrategy builds a binary interval tree over n = 2^k cells in
// CSR form — the shape the exact tree solver accelerates.
func testTreeStrategy(n int) *linalg.Sparse {
	b := linalg.NewSparseBuilder(n)
	for span := n; span >= 1; span /= 2 {
		for lo := 0; lo < n; lo += span {
			b.AppendRangeRow(lo, lo+span-1, 1)
		}
	}
	return b.Build()
}

// scratchMechanisms returns one mechanism per steady-state inference
// path: dense pseudo-inverse, exact tree least squares, and iterative
// CGLS over a write-into operator.
func scratchMechanisms(t *testing.T, n int) map[string]*Mechanism {
	t.Helper()
	tree := testTreeStrategy(n)
	pinv, err := NewMechanismInference(linalg.ToDense(tree), InferDensePinv)
	if err != nil {
		t.Fatal(err)
	}
	cgls, err := NewMechanismInference(tree, InferCGLS)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := NewMechanismInference(linalg.NewPrefixOp(n), InferCGLS)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Mechanism{"dense-pinv": pinv, "tree-cgls": cgls, "iterative-cgls": iter}
}

// TestEstimateGaussianIntoZeroAlloc is the allocation regression pin for
// the release hot path: once a mechanism's scratch has warmed, a release
// on the dense-pinv and CGLS paths must allocate nothing.
func TestEstimateGaussianIntoZeroAlloc(t *testing.T) {
	const n = 64
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 7)
	}
	p := Privacy{Epsilon: 0.5, Delta: 1e-5}
	for name, m := range scratchMechanisms(t, n) {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(5))
			sc := m.NewScratch()
			if _, err := m.EstimateGaussianInto(sc, x, p, r); err != nil {
				t.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(50, func() {
				if _, err := m.EstimateGaussianInto(sc, x, p, r); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Fatalf("warmed EstimateGaussianInto allocates %v per release, want 0", allocs)
			}
		})
	}
}

// TestScratchReleaseMatchesClassic is the bit-identity property: on the
// same deterministic noise stream, the pooled-scratch release entry
// points must produce exactly the values the allocate-per-call paths
// produce — same noise consumption order, same arithmetic, same bits.
func TestScratchReleaseMatchesClassic(t *testing.T) {
	const n = 32
	x := make([]float64, n)
	for i := range x {
		x[i] = float64((i*13)%11) - 3
	}
	p := Privacy{Epsilon: 0.3, Delta: 1e-6}
	w := workload.FromOperator("prefix", domain.MustShape(n), linalg.NewPrefixOp(n))
	for name, m := range scratchMechanisms(t, n) {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				want, err := m.EstimateGaussian(x, p, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				sc := m.GetScratch()
				got, err := m.EstimateGaussianInto(sc, x, p, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("seed %d: estimate[%d] = %v, classic %v (bit mismatch)", seed, i, got[i], want[i])
					}
				}
				m.PutScratch(sc)

				wantA, err := m.AnswerGaussian(w, x, p, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				sc = m.GetScratch()
				gotA, err := m.AnswerGaussianInto(sc, w, x, p, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				for i := range wantA {
					if math.Float64bits(gotA[i]) != math.Float64bits(wantA[i]) {
						t.Fatalf("seed %d: answer[%d] = %v, classic %v (bit mismatch)", seed, i, gotA[i], wantA[i])
					}
				}
				m.PutScratch(sc)

				wantL, err := m.EstimateLaplace(x, 0.4, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				sc = m.GetScratch()
				gotL, err := m.EstimateLaplaceInto(sc, x, 0.4, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				for i := range wantL {
					if math.Float64bits(gotL[i]) != math.Float64bits(wantL[i]) {
						t.Fatalf("seed %d: laplace[%d] = %v, classic %v (bit mismatch)", seed, i, gotL[i], wantL[i])
					}
				}
				m.PutScratch(sc)
			}
		})
	}
}
