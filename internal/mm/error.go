// Package mm implements the (ε,δ)-matrix mechanism of Li et al. [14] as
// used throughout the paper: analytic workload error (Prop. 4), the
// singular value lower bound (Thm. 2), and the runtime that actually
// answers workloads on data by adding Gaussian noise to strategy queries
// and inferring cell counts by least squares (Prop. 3). A Laplace / ε-DP
// variant supports the Sec 3.5 extension.
package mm

import (
	"errors"
	"fmt"
	"math"

	"adaptivemm/internal/linalg"
	"adaptivemm/internal/workload"
)

// Privacy bundles the differential privacy parameters.
type Privacy struct {
	Epsilon float64
	Delta   float64 // 0 selects pure ε-differential privacy
}

// Validate checks the parameters are usable for the Gaussian mechanism.
func (p Privacy) Validate() error {
	if p.Epsilon <= 0 {
		return fmt.Errorf("mm: epsilon = %g must be positive", p.Epsilon)
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		return fmt.Errorf("mm: delta = %g must be in (0,1) for the Gaussian mechanism", p.Delta)
	}
	return nil
}

// P returns the paper's noise constant P(ε,δ) = 2·ln(2/δ)/ε² (Prop. 4).
func (p Privacy) P() float64 {
	return 2 * math.Log(2/p.Delta) / (p.Epsilon * p.Epsilon)
}

// GaussianSigma returns the Gaussian noise scale for answering queries with
// L2 sensitivity sens: σ = sens·sqrt(2 ln(2/δ))/ε (Prop. 2).
func (p Privacy) GaussianSigma(sens float64) float64 {
	return sens * math.Sqrt(2*math.Log(2/p.Delta)) / p.Epsilon
}

// LaplaceScale returns the Laplace noise scale b = sens/ε for L1
// sensitivity sens under pure ε-differential privacy.
func (p Privacy) LaplaceScale(sens float64) float64 {
	return sens / p.Epsilon
}

// ErrNotSupported is returned when a strategy cannot answer a workload
// because the workload's rows are not contained in the strategy's row
// space (the least-squares estimate would be biased).
var ErrNotSupported = errors.New("mm: workload is not supported by the strategy (row space mismatch)")

// Error computes the analytic root-mean-square workload error of answering
// w with strategy a under the (ε,δ)-matrix mechanism:
//
//	Error_A(W) = ‖A‖₂ · sqrt( P(ε,δ) · trace(WᵀW (AᵀA)⁺) / m )
//
// following Prop. 4 with Def. 5's 1/m averaging. The strategy may be any
// operator — dense matrices use the blocked Gram product, structured
// operators their analytic Gram. The pseudo-inverse handles rank-deficient
// strategies; use ErrorChecked to verify support. The result is
// independent of the database, as the paper emphasizes.
func Error(w *workload.Workload, a linalg.Operator, p Privacy) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	gA := linalg.OperatorGram(a)
	inv, err := linalg.PseudoInverseSym(gA, 1e-11)
	if err != nil {
		return 0, err
	}
	return errorFromParts(w, linalg.MaxColNorm2Op(a), w.Gram().TraceProduct(inv), p)
}

// ErrorChecked is Error plus a verification that the workload's row space
// is contained in the strategy's; it returns ErrNotSupported otherwise.
func ErrorChecked(w *workload.Workload, a linalg.Operator, p Privacy) (float64, error) {
	gA := linalg.OperatorGram(a)
	inv, err := linalg.PseudoInverseSym(gA, 1e-11)
	if err != nil {
		return 0, err
	}
	// Support check: G·(AᵀA)⁺(AᵀA) must reproduce G = WᵀW.
	g := w.Gram()
	proj := g.MulParallel(inv).MulParallel(gA)
	scale := 1 + g.FrobeniusNorm()
	if !proj.Equal(g, 1e-6*scale) {
		return 0, ErrNotSupported
	}
	return errorFromParts(w, linalg.MaxColNorm2Op(a), g.TraceProduct(inv), p)
}

func errorFromParts(w *workload.Workload, sens, trace float64, p Privacy) (float64, error) {
	if trace < 0 {
		trace = 0
	}
	m := float64(w.NumQueries())
	if m == 0 {
		return 0, errors.New("mm: empty workload")
	}
	return sens * math.Sqrt(p.P()*trace/m), nil
}

// ErrorL1 computes the analytic root-mean-square workload error of the
// ε-matrix mechanism (Laplace noise calibrated to L1 sensitivity, Sec 3.5):
//
//	Error_A(W) = ‖A‖₁ · sqrt( 2·trace(WᵀW (AᵀA)⁺) / m ) / ε
//
// using the Laplace distribution's variance 2b². Only the sensitivity term
// differs from the (ε,δ) case, exactly as the paper describes.
func ErrorL1(w *workload.Workload, a linalg.Operator, epsilon float64) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("mm: epsilon = %g must be positive", epsilon)
	}
	inv, err := linalg.PseudoInverseSym(linalg.OperatorGram(a), 1e-11)
	if err != nil {
		return 0, err
	}
	trace := w.Gram().TraceProduct(inv)
	if trace < 0 {
		trace = 0
	}
	m := float64(w.NumQueries())
	if m == 0 {
		return 0, errors.New("mm: empty workload")
	}
	return linalg.MaxColNormL1Op(a) * math.Sqrt(2*trace/m) / epsilon, nil
}

// QueryErrors returns the analytic RMSE of each individual query of an
// explicit workload under strategy a: σ(A)·‖wᵢA⁺‖₂ (Def. 5).
func QueryErrors(w *workload.Workload, a *linalg.Matrix, p Privacy) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pinv, err := linalg.PseudoInverse(a)
	if err != nil {
		return nil, err
	}
	wa := w.Matrix().Mul(pinv)
	sigma := p.GaussianSigma(a.MaxColNorm2())
	out := make([]float64, wa.Rows())
	for i := range out {
		var s float64
		for _, v := range wa.Row(i) {
			s += v * v
		}
		out[i] = sigma * math.Sqrt(s)
	}
	return out, nil
}

// SVDB returns the singular value bound svdb(W) = (Σ√σᵢ)²/n of Thm. 2,
// computed from the eigenvalues of WᵀW (negative round-off is clamped).
func SVDB(w *workload.Workload) (float64, error) {
	eg, err := linalg.SymEigen(w.Gram())
	if err != nil {
		return 0, err
	}
	return svdbFromEigenvalues(eg.Values), nil
}

func svdbFromEigenvalues(values []float64) float64 {
	var s float64
	for _, v := range values {
		if v > 0 {
			s += math.Sqrt(v)
		}
	}
	n := float64(len(values))
	return s * s / n
}

// LowerBound returns the Thm. 2 lower bound on the error any strategy can
// achieve for w: sqrt(P(ε,δ)·svdb(W)/m), in the same units as Error.
func LowerBound(w *workload.Workload, p Privacy) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	svdb, err := SVDB(w)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(p.P() * svdb / float64(w.NumQueries())), nil
}

// LowerBoundFromEigenvalues is LowerBound for callers that already hold the
// eigenvalues of WᵀW (the Eigen-Design pipeline), avoiding a second O(n³)
// decomposition.
func LowerBoundFromEigenvalues(values []float64, m int, p Privacy) float64 {
	return math.Sqrt(p.P() * svdbFromEigenvalues(values) / float64(m))
}
