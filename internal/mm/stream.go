// Streaming releases: answer huge workloads in bounded memory.
//
// A buffered release materializes all W·x̂ answers at once, so its peak
// memory is O(workload rows) — AllRange(2048) alone is ~2.1M float64s per
// release. But the expensive, privacy-relevant part of a release (noise +
// inference) lives entirely in estimate space, which is O(cells); only
// the final workload product is row-sized. StreamRelease splits the two:
// it runs noise and inference once, exactly as the buffered path does
// (consuming the identical noise stream, producing the identical
// estimate), then yields the workload answers chunk by chunk through the
// linalg row-range kernels. Peak memory per active release becomes
// O(cells + ChunkSize), independent of the workload's row count, and the
// chunks reassemble the buffered answer vector bit for bit.

package mm

import (
	"fmt"
	"sort"

	"adaptivemm/internal/workload"
)

// DefaultStreamChunk is the chunk size (in answers) used when the caller
// passes chunkSize ≤ 0: 8192 float64s, 64 KiB per buffer.
const DefaultStreamChunk = 8192

// AnswerStream yields one release's workload answers in row order, chunk
// by chunk. It owns a rented ReleaseScratch until Close; the slice
// returned by Next aliases that scratch and is valid only until the next
// Next or Close call. A stream is single-goroutine; it must be Closed
// exactly once (Close is idempotent).
type AnswerStream struct {
	m         *Mechanism
	w         *workload.Workload
	sc        *ReleaseScratch
	xhat      []float64
	rows      int
	chunkSize int
	off       int
}

// StreamRelease draws noise and infers the cell estimate once — the same
// kernels, the same noise consumption, and therefore bit-identical
// estimates to AnswerGaussianInto on the same noise source — and returns
// a stream over the workload answers. The caller must Close the stream to
// return its scratch to the mechanism's pool.
func (m *Mechanism) StreamRelease(w *workload.Workload, x []float64, p Privacy, r NoiseSource, chunkSize int) (*AnswerStream, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultStreamChunk
	}
	if !w.Answerable() {
		return nil, fmt.Errorf("mm: workload %q is gram-only and cannot be answered on data", w.Name())
	}
	if m.shards != nil {
		if m.planned != nil && w != m.planned {
			return nil, fmt.Errorf("mm: sharded mechanism answers only the workload it was planned for (%q); answer %q with its own plan",
				m.planned.Name(), w.Name())
		}
		if w.NumQueries() != m.totalShardQueries() {
			return nil, fmt.Errorf("mm: sharded mechanism answers only its planned workload (%d queries), got one with %d",
				m.totalShardQueries(), w.NumQueries())
		}
		m.streamOnce.Do(m.buildStreamSegs)
	}
	sc := m.GetScratch()
	xhat, err := m.EstimateGaussianInto(sc, x, p, r)
	if err != nil {
		m.PutScratch(sc)
		return nil, err
	}
	//lint:allow poolescape: intended ownership transfer — the stream owns the scratch and AnswerStream.Close is its PutScratch (poolescape tracks the pair at every caller)
	return &AnswerStream{
		m:         m,
		w:         w,
		sc:        sc,
		xhat:      xhat,
		rows:      w.NumQueries(),
		chunkSize: chunkSize,
	}, nil
}

// Rows is the total number of answers the stream will yield.
func (st *AnswerStream) Rows() int { return st.rows }

// ChunkSize is the resolved chunk size in answers.
func (st *AnswerStream) ChunkSize() int { return st.chunkSize }

// Next yields the next chunk: answers for rows [offset, offset+len).
// The slice aliases the stream's scratch — consume it before the next
// Next or Close. ok is false when the stream is exhausted or closed.
func (st *AnswerStream) Next() (offset int, answers []float64, ok bool) {
	if st.sc == nil || st.off >= st.rows {
		return 0, nil, false
	}
	lo := st.off
	hi := lo + st.chunkSize
	if hi > st.rows {
		hi = st.rows
	}
	st.off = hi
	st.sc.chunk = growFloats(st.sc.chunk, hi-lo)
	dst := st.sc.chunk[:hi-lo]
	if st.m.shards == nil {
		st.w.MulQueriesRangeInto(dst, st.xhat, lo, hi)
	} else {
		st.m.streamShardRange(dst, st.xhat, lo, hi)
	}
	return lo, dst, true
}

// Close returns the stream's scratch to the mechanism's pool. Slices
// returned by Next become invalid. Close is idempotent.
func (st *AnswerStream) Close() {
	if st.sc != nil {
		st.m.PutScratch(st.sc)
		st.sc = nil
		st.xhat = nil
	}
}

// streamSeg locates one contiguous run of workload rows inside a shard:
// original rows [start, start+n) are sub-workload rows [wOff, wOff+n) of
// w, answered on the estimate slice xcat[estOff : estOff+cells].
type streamSeg struct {
	start, n int
	wOff     int
	estOff   int
	cells    int
	w        *workload.Workload
}

// buildStreamSegs flattens the shard scatter segments into one sorted
// index over the original row order. NewShardedMechanism already verified
// the segments tile [0, totalQueries) exactly, so after sorting the index
// is gap-free and binary-searchable.
func (m *Mechanism) buildStreamSegs() {
	var segs []streamSeg
	estAt := 0
	for _, s := range m.shards {
		pos := 0
		for _, seg := range s.Segments {
			segs = append(segs, streamSeg{
				start:  seg.Start,
				n:      seg.Len,
				wOff:   pos,
				estOff: estAt,
				cells:  s.Workload.Cells(),
				w:      s.Workload,
			})
			pos += seg.Len
		}
		estAt += s.Mechanism.a.Cols()
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	m.streamSegs = segs
}

// streamShardRange answers original workload rows [lo,hi) of a sharded
// mechanism into dst: each overlapped scatter segment answers its
// sub-workload row range on its shard's estimate slice. The sub-workload
// range kernel is bit-identical to the full sub-workload product the
// buffered scatter copies from, so streamed sharded answers match the
// buffered ones exactly.
func (m *Mechanism) streamShardRange(dst, xcat []float64, lo, hi int) {
	segs := m.streamSegs
	i := sort.Search(len(segs), func(i int) bool { return segs[i].start+segs[i].n > lo })
	for ; i < len(segs) && segs[i].start < hi; i++ {
		sg := segs[i]
		a, b := sg.start, sg.start+sg.n
		if lo > a {
			a = lo
		}
		if hi < b {
			b = hi
		}
		xs := xcat[sg.estOff : sg.estOff+sg.cells]
		sg.w.MulQueriesRangeInto(dst[a-lo:b-lo], xs, sg.wOff+(a-sg.start), sg.wOff+(b-sg.start))
	}
}
