// Package wio provides the workload/data I/O used by the command-line
// tools: CSV matrices, histogram vectors, domain-shape strings like
// "8x16x16", and compact workload specifications such as "allrange:8x16"
// or "marginals:2:8x8x4".
package wio

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/workload"
)

// ParseShape parses "8x16x16" (case-insensitive 'x') into a Shape.
func ParseShape(s string) (domain.Shape, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(s)), "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("wio: bad shape %q: %v", s, err)
		}
		dims = append(dims, v)
	}
	return domain.NewShape(dims...)
}

// ReadMatrixCSV reads a dense matrix: one row per line, comma-separated
// float64 values, blank lines and lines starting with '#' skipped.
func ReadMatrixCSV(r io.Reader) (*linalg.Matrix, error) {
	var rows [][]float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("wio: line %d field %d: %v", lineNo, i+1, err)
			}
			row[i] = v
		}
		if len(rows) > 0 && len(row) != len(rows[0]) {
			return nil, fmt.Errorf("wio: line %d has %d fields, want %d", lineNo, len(row), len(rows[0]))
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("wio: empty matrix")
	}
	return linalg.NewFromRows(rows), nil
}

// WriteMatrixCSV writes a matrix in the format ReadMatrixCSV accepts.
func WriteMatrixCSV(w io.Writer, m *linalg.Matrix) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadVectorCSV reads a histogram: float64 values separated by commas
// and/or newlines.
func ReadVectorCSV(r io.Reader) ([]float64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	fields := strings.FieldsFunc(string(data), func(c rune) bool {
		return c == ',' || c == '\n' || c == '\r' || c == ' ' || c == '\t'
	})
	out := make([]float64, 0, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("wio: value %d: %v", i+1, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("wio: empty vector")
	}
	return out, nil
}

// ParseWorkloadSpec builds a workload from a compact specification:
//
//	allrange:8x16          all range queries over the shape
//	randomrange:100:8x16   100 sampled range queries
//	marginals:2:8x8x4      all 2-way marginals
//	rangemarginals:1:8x8x4 all 1-way range marginals
//	prefix:256             the 1-D CDF workload
//	identity:8x16          every cell count
//	predicate:50:256       50 random predicate queries
//	fig1                   the paper's running example
//
// Random specs use the provided source for reproducibility.
func ParseWorkloadSpec(spec string, r *rand.Rand) (*workload.Workload, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	kind := strings.ToLower(parts[0])
	arg := func(i int) (string, error) {
		if i >= len(parts) {
			return "", fmt.Errorf("wio: spec %q missing argument %d", spec, i)
		}
		return parts[i], nil
	}
	num := func(i int) (int, error) {
		s, err := arg(i)
		if err != nil {
			return 0, err
		}
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("wio: spec %q argument %d must be a positive integer", spec, i)
		}
		return v, nil
	}
	shapeAt := func(i int) (domain.Shape, error) {
		s, err := arg(i)
		if err != nil {
			return nil, err
		}
		return ParseShape(s)
	}

	switch kind {
	case "allrange":
		shape, err := shapeAt(1)
		if err != nil {
			return nil, err
		}
		return workload.AllRange(shape), nil
	case "randomrange":
		count, err := num(1)
		if err != nil {
			return nil, err
		}
		shape, err := shapeAt(2)
		if err != nil {
			return nil, err
		}
		return workload.RandomRange(shape, count, r), nil
	case "marginals":
		k, err := num(1)
		if err != nil {
			return nil, err
		}
		shape, err := shapeAt(2)
		if err != nil {
			return nil, err
		}
		return workload.Marginals(shape, k), nil
	case "rangemarginals":
		k, err := num(1)
		if err != nil {
			return nil, err
		}
		shape, err := shapeAt(2)
		if err != nil {
			return nil, err
		}
		return workload.RangeMarginals(shape, k), nil
	case "prefix":
		n, err := num(1)
		if err != nil {
			return nil, err
		}
		return workload.Prefix(n), nil
	case "identity":
		shape, err := shapeAt(1)
		if err != nil {
			return nil, err
		}
		return workload.Identity(shape), nil
	case "predicate":
		count, err := num(1)
		if err != nil {
			return nil, err
		}
		shape, err := shapeAt(2)
		if err != nil {
			return nil, err
		}
		return workload.Predicate(shape, count, r), nil
	case "fig1":
		return workload.Fig1(), nil
	default:
		return nil, fmt.Errorf("wio: unknown workload kind %q", kind)
	}
}
