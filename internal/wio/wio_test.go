package wio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestParseShape(t *testing.T) {
	s, err := ParseShape("8x16x16")
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 2048 || s.Dims() != 3 {
		t.Fatalf("shape = %v", s)
	}
	for _, bad := range []string{"", "8x", "axb", "8x0", "8x-2"} {
		if _, err := ParseShape(bad); err == nil {
			t.Fatalf("ParseShape(%q) accepted", bad)
		}
	}
}

func TestReadMatrixCSV(t *testing.T) {
	in := "# comment\n1, 2, 3\n\n4,5,6\n"
	m, err := ReadMatrixCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 3 || m.At(1, 2) != 6 {
		t.Fatalf("matrix = %v", m)
	}
}

func TestReadMatrixCSVErrors(t *testing.T) {
	cases := []string{
		"",       // empty
		"1,2\n3", // ragged
		"1,x\n",  // bad float
	}
	for _, in := range cases {
		if _, err := ReadMatrixCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}

func TestMatrixCSVRoundTrip(t *testing.T) {
	in := "1,2.5,-3\n0,1e-9,42\n"
	m, err := ReadMatrixCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMatrixCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadMatrixCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(m2, 0) {
		t.Fatal("round trip changed the matrix")
	}
}

func TestReadVectorCSV(t *testing.T) {
	v, err := ReadVectorCSV(strings.NewReader("1, 2\n3 4\t5"))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 5 || v[4] != 5 {
		t.Fatalf("vector = %v", v)
	}
	if _, err := ReadVectorCSV(strings.NewReader("")); err == nil {
		t.Fatal("accepted empty vector")
	}
	if _, err := ReadVectorCSV(strings.NewReader("1,x")); err == nil {
		t.Fatal("accepted bad float")
	}
}

func TestParseWorkloadSpec(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cases := []struct {
		spec  string
		cells int
		m     int // 0 = don't check
	}{
		{"allrange:4x4", 16, 100},
		{"randomrange:10:8", 8, 10},
		{"marginals:1:4x4", 16, 8},
		{"rangemarginals:1:3x3", 9, 12},
		{"prefix:16", 16, 16},
		{"identity:4x2", 8, 8},
		{"predicate:7:16", 16, 7},
		{"fig1", 8, 8},
	}
	for _, c := range cases {
		w, err := ParseWorkloadSpec(c.spec, r)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if w.Cells() != c.cells {
			t.Fatalf("%s: cells = %d, want %d", c.spec, w.Cells(), c.cells)
		}
		if c.m > 0 && w.NumQueries() != c.m {
			t.Fatalf("%s: m = %d, want %d", c.spec, w.NumQueries(), c.m)
		}
	}
}

func TestParseWorkloadSpecErrors(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, bad := range []string{
		"", "unknown:4", "allrange", "allrange:bad",
		"marginals:0:4x4", "randomrange:5", "prefix:-1",
	} {
		if _, err := ParseWorkloadSpec(bad, r); err == nil {
			t.Fatalf("accepted spec %q", bad)
		}
	}
}
