package workload

import (
	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
)

// Fig1 returns the running example of the paper's Fig. 1: 8 queries over
// the 8 cells formed by gender (M/F) × four gpa ranges. Cell order follows
// the paper: φ1..φ4 are the gpa buckets for gender=M, φ5..φ8 for gender=F.
//
//	q1: all students            q5: students with gpa ≥ 3.0
//	q2: male students           q6: female students with gpa ≥ 3.0
//	q3: female students         q7: male students with gpa < 3.0
//	q4: students with gpa < 3.0 q8: male minus female students
//
// (The paper's figure labels q2 "female" and q3 "male"; the matrix itself
// is what matters and is reproduced verbatim.)
func Fig1() *Workload {
	m := linalg.NewFromRows([][]float64{
		{1, 1, 1, 1, 1, 1, 1, 1},
		{1, 1, 1, 1, 0, 0, 0, 0},
		{0, 0, 0, 0, 1, 1, 1, 1},
		{1, 1, 0, 0, 1, 1, 0, 0},
		{0, 0, 1, 1, 0, 0, 1, 1},
		{0, 0, 0, 0, 0, 0, 1, 1},
		{1, 1, 0, 0, 0, 0, 0, 0},
		{1, 1, 1, 1, -1, -1, -1, -1},
	})
	return FromMatrix("Fig. 1 example", domain.MustShape(2, 4), m)
}
