package workload

import (
	"math"
	"testing"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
)

// A marginal set over disjoint attribute groups must split into one block
// per connected component, with projections and row segments that
// reassemble the original answers exactly.
func TestMarginalBlocksSplitAndReassemble(t *testing.T) {
	shape := domain.MustShape(3, 4, 2, 5)
	// {0,1} and {1} connect attrs 0,1; {2,3} connects attrs 2,3; the empty
	// subset (total) rides with the first block.
	subsets := [][]int{{0, 1}, {2, 3}, {1}, {}}
	w := MarginalSet("split me", shape, subsets)

	blocks, ok := MarginalBlocks(w, 0)
	if !ok {
		t.Fatal("MarginalBlocks refused a marginal set")
	}
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(blocks))
	}
	b0, b1 := blocks[0], blocks[1]
	if got := b0.Attrs; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("block 0 attrs = %v, want [0 1]", got)
	}
	if got := b1.Attrs; len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("block 1 attrs = %v, want [2 3]", got)
	}
	if b0.Sub.Cells() != 12 || b1.Sub.Cells() != 10 {
		t.Fatalf("sub cells = %d, %d; want 12, 10", b0.Sub.Cells(), b1.Sub.Cells())
	}
	// Block 0 carries subsets {0,1}, {1} and {}: 12+4+1 = 17 queries.
	if b0.Sub.NumQueries() != 17 || b1.Sub.NumQueries() != 10 {
		t.Fatalf("sub queries = %d, %d; want 17, 10", b0.Sub.NumQueries(), b1.Sub.NumQueries())
	}
	if _, ok := b0.Sub.MarginalSubsets(); !ok {
		t.Fatal("sub-workload lost its marginal metadata")
	}

	// Projected sub-workload answers, scattered through the segments, must
	// equal the original workload answers on an arbitrary histogram.
	n := shape.Size()
	x := make([]float64, n)
	for i := range x {
		x[i] = float64((i*7)%13) - 3
	}
	want := w.MulQueries(x)
	got := make([]float64, w.NumQueries())
	for _, b := range blocks {
		sub := b.Sub.MulQueries(b.Project.MulVec(x))
		total := 0
		for _, seg := range b.Segments {
			total += seg.Len
		}
		if total != b.Sub.NumQueries() {
			t.Fatalf("block %s: segments cover %d rows, sub-workload has %d", b.Label(), total, b.Sub.NumQueries())
		}
		pos := 0
		for _, seg := range b.Segments {
			copy(got[seg.Start:seg.Start+seg.Len], sub[pos:pos+seg.Len])
			pos += seg.Len
		}
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("row %d: reassembled %g, want %g", i, got[i], want[i])
		}
	}
}

// A connected marginal set yields a single block; a non-marginal workload
// is refused outright.
func TestMarginalBlocksConnectedAndRefusal(t *testing.T) {
	shape := domain.MustShape(4, 4, 4)
	connected := Marginals(shape, 2) // {0,1},{0,2},{1,2}: one component
	if blocks, ok := MarginalBlocks(connected, 0); !ok || len(blocks) != 1 {
		t.Fatalf("connected marginal set: blocks=%d ok=%v, want 1 block", len(blocks), ok)
	}
	if _, ok := MarginalBlocks(AllRange(shape), 0); ok {
		t.Fatal("AllRange is not a marginal set and must be refused")
	}
}

// maxBlocks merges the smallest blocks and the merged sub-workload is
// still a valid marginal set that reassembles exactly.
func TestMarginalBlocksMergeCap(t *testing.T) {
	shape := domain.MustShape(2, 3, 4, 5)
	subsets := [][]int{{0}, {1}, {2}, {3}}
	w := MarginalSet("four blocks", shape, subsets)
	blocks, ok := MarginalBlocks(w, 2)
	if !ok || len(blocks) != 2 {
		t.Fatalf("blocks=%d ok=%v, want 2 merged blocks", len(blocks), ok)
	}
	x := make([]float64, shape.Size())
	for i := range x {
		x[i] = float64(i % 7)
	}
	want := w.MulQueries(x)
	got := make([]float64, w.NumQueries())
	for _, b := range blocks {
		sub := b.Sub.MulQueries(b.Project.MulVec(x))
		pos := 0
		for _, seg := range b.Segments {
			copy(got[seg.Start:seg.Start+seg.Len], sub[pos:pos+seg.Len])
			pos += seg.Len
		}
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("row %d: reassembled %g, want %g", i, got[i], want[i])
		}
	}
}

// An explicit block-diagonal query matrix splits by cell support, zero
// rows ride with the first block, and the blocks reassemble exactly.
func TestCellBlocksSplitAndReassemble(t *testing.T) {
	rows := [][]float64{
		{1, 1, 0, 0, 0, 0}, // block A: cells 0,1
		{0, 0, 2, 0, 1, 0}, // block B: cells 2,4
		{0, 1, 0, 0, 0, 0}, // block A
		{0, 0, 0, 0, 0, 0}, // zero row: rides with block A
		{0, 0, 0, 3, 0, 1}, // block C: cells 3,5
		{0, 0, 1, 0, 0, 0}, // block B
	}
	w := FromMatrix("blocky", domain.MustShape(6), linalg.NewFromRows(rows))
	blocks, ok := CellBlocks(w, 0)
	if !ok {
		t.Fatal("CellBlocks refused an explicit workload")
	}
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(blocks))
	}
	x := []float64{2, -1, 4, 0.5, 3, -2}
	want := w.MulQueries(x)
	got := make([]float64, w.NumQueries())
	covered := 0
	for _, b := range blocks {
		sub := b.Sub.MulQueries(b.Project.MulVec(x))
		pos := 0
		for _, seg := range b.Segments {
			copy(got[seg.Start:seg.Start+seg.Len], sub[pos:pos+seg.Len])
			pos += seg.Len
			covered += seg.Len
		}
	}
	if covered != w.NumQueries() {
		t.Fatalf("segments cover %d rows, want %d", covered, w.NumQueries())
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("row %d: reassembled %g, want %g", i, got[i], want[i])
		}
	}
}

// Structured (non-materialized) workloads are refused without
// materializing; connected dense workloads return a single block.
func TestCellBlocksRefusals(t *testing.T) {
	if _, ok := CellBlocks(Prefix(64), 0); ok {
		t.Fatal("Prefix is matrix-free and must be refused")
	}
	if Prefix(64).HasDenseRows() {
		t.Fatal("CellBlocks must not materialize dense rows as a side effect")
	}
	connected := FromMatrix("conn", domain.MustShape(3), linalg.NewFromRows([][]float64{{1, 1, 0}, {0, 1, 1}}))
	if blocks, ok := CellBlocks(connected, 0); !ok || len(blocks) != 1 {
		t.Fatalf("connected: blocks=%d ok=%v, want 1 block", len(blocks), ok)
	}
}
