package workload

import (
	"math"
	"testing"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
)

func TestAllPredicateGramMatchesExplicitEnumeration(t *testing.T) {
	// Enumerate all nonempty predicates on a tiny domain and compare the
	// Gram matrix shape (up to the documented 2^(n-2) normalization).
	n := 4
	rows := make([][]float64, 0, 1<<n-1)
	for mask := 1; mask < 1<<n; mask++ {
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				row[j] = 1
			}
		}
		rows = append(rows, row)
	}
	explicit := linalg.NewFromRows(rows).Gram()
	w := AllPredicate(domain.MustShape(n))
	scaled := w.Gram().Scale(math.Pow(2, float64(n-2)))
	if !scaled.Equal(explicit, 1e-9) {
		t.Fatalf("analytic all-predicate gram mismatch:\n%v\nvs\n%v", scaled, explicit)
	}
	if w.NumQueries() != 1<<n-1 {
		t.Fatalf("m = %d, want %d", w.NumQueries(), 1<<n-1)
	}
}

func TestAllPredicateLargeDomain(t *testing.T) {
	// Must not overflow on big domains.
	w := AllPredicate(domain.MustShape(8, 16))
	if w.Cells() != 128 {
		t.Fatalf("cells = %d", w.Cells())
	}
	if w.NumQueries() <= 0 {
		t.Fatal("row count overflowed")
	}
	if w.SensitivityL2() <= 0 {
		t.Fatal("sensitivity not positive")
	}
}

func TestAllPredicateSpectrum(t *testing.T) {
	// J+I has eigenvalues n+1 (once) and 1 (n−1 times) — the normalized
	// all-predicate Gram is 2·I + (J−I)... actually J+I with diagonal 2:
	// J has eigenvalues {n, 0}, so J+I has {n+1, 1}.
	n := 6
	w := AllPredicate(domain.MustShape(n))
	eg, err := linalg.SymEigen(w.Gram())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eg.Values[0]-float64(n+1)) > 1e-9 {
		t.Fatalf("top eigenvalue = %g, want %d", eg.Values[0], n+1)
	}
	for i := 1; i < n; i++ {
		if math.Abs(eg.Values[i]-1) > 1e-9 {
			t.Fatalf("eigenvalue %d = %g, want 1", i, eg.Values[i])
		}
	}
}
