package workload

import (
	"fmt"
	"math/rand"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
)

// AllRange returns the workload of all axis-aligned range queries over the
// shape as a structured operator: the Kronecker product of per-dimension
// interval operators (a multi-dimensional range is the Kronecker product
// of per-dimension intervals). The explicit matrix — Π dᵢ(dᵢ+1)/2 rows —
// is never built; answering runs through the operator in O(rows), and the
// Gram matrix is the Kronecker product of analytic 1-D all-range Grams.
func AllRange(shape domain.Shape) *Workload {
	name := "all range " + shape.String()
	grams := make([]*linalg.Matrix, len(shape))
	parts := make([]linalg.Operator, len(shape))
	for i, d := range shape {
		grams[i] = allRangeGram1D(d)
		parts[i] = linalg.NewIntervalsOp(d)
	}
	w := FromOperator(name, shape, linalg.NewKronOp(parts...))
	w.gramFactors = grams
	return w
}

// allRangeMatrix materializes every axis-aligned range query.
func allRangeMatrix(shape domain.Shape) *linalg.Matrix {
	perDim := make([]*linalg.Matrix, len(shape))
	for i, d := range shape {
		perDim[i] = allRangeMatrix1D(d)
	}
	return linalg.KroneckerAll(perDim...)
}

// allRangeMatrix1D returns the d(d+1)/2 x d matrix of all intervals.
func allRangeMatrix1D(d int) *linalg.Matrix {
	m := linalg.New(d*(d+1)/2, d)
	r := 0
	for lo := 0; lo < d; lo++ {
		for hi := lo; hi < d; hi++ {
			row := m.Row(r)
			for j := lo; j <= hi; j++ {
				row[j] = 1
			}
			r++
		}
	}
	return m
}

// allRangeGram1D returns the d x d Gram matrix of the 1-D all-range
// workload analytically: entry (i,j) counts the intervals [lo,hi] with
// lo ≤ min(i,j) and hi ≥ max(i,j), i.e. (min+1)·(d-max).
func allRangeGram1D(d int) *linalg.Matrix {
	g := linalg.New(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			g.Set(i, j, float64((lo+1)*(d-hi)))
		}
	}
	return g
}

// RandomRange samples count random range queries using the two-step method
// of Xiao et al. [21]: first draw a range length uniformly from the scales
// of the domain, then a position uniformly among ranges of that length.
// This favors a spread of query sizes instead of the large ranges that
// dominate uniform interval sampling.
func RandomRange(shape domain.Shape, count int, r *rand.Rand) *Workload {
	n := shape.Size()
	m := linalg.New(count, n)
	for q := 0; q < count; q++ {
		rng := sampleRange(shape, r)
		row := m.Row(q)
		fillRange(shape, rng, row)
	}
	return FromMatrix(fmt.Sprintf("random range %s (m=%d)", shape, count), shape, m)
}

// sampleRange draws one random multi-dimensional range, two-step per
// dimension.
func sampleRange(shape domain.Shape, r *rand.Rand) domain.Range {
	lo := make([]int, len(shape))
	hi := make([]int, len(shape))
	for i, d := range shape {
		length := 1 + r.Intn(d)         // step 1: uniform length in [1,d]
		start := r.Intn(d - length + 1) // step 2: uniform position
		lo[i] = start
		hi[i] = start + length - 1
	}
	return domain.Range{Lo: lo, Hi: hi}
}

// fillRange sets row[idx] = 1 for every cell in rng.
func fillRange(shape domain.Shape, rng domain.Range, row []float64) {
	coords := append([]int(nil), rng.Lo...)
	for {
		row[shape.Index(coords)] = 1
		// Odometer increment within the box.
		k := len(coords) - 1
		for k >= 0 {
			coords[k]++
			if coords[k] <= rng.Hi[k] {
				break
			}
			coords[k] = rng.Lo[k]
			k--
		}
		if k < 0 {
			return
		}
	}
}

// Prefix returns the 1-D cumulative distribution (CDF) workload: query i
// sums cells 0..i. Its first cell participates in all n queries, giving the
// highly skewed column-norm profile discussed in Sec 5.1. The workload is
// the analytic prefix-sum operator — O(1) memory, O(n) answering.
func Prefix(n int) *Workload {
	return FromOperator(fmt.Sprintf("1D CDF [%d]", n), domain.MustShape(n), linalg.NewPrefixOp(n))
}

// Predicate samples count uniformly random predicate (0/1) queries: each
// cell is included independently with probability 1/2.
func Predicate(shape domain.Shape, count int, r *rand.Rand) *Workload {
	n := shape.Size()
	m := linalg.New(count, n)
	for q := 0; q < count; q++ {
		row := m.Row(q)
		for j := range row {
			if r.Intn(2) == 1 {
				row[j] = 1
			}
		}
	}
	return FromMatrix(fmt.Sprintf("random predicate %s (m=%d)", shape, count), shape, m)
}

// Total returns the single total-count query (the 0-way marginal).
func Total(shape domain.Shape) *Workload {
	n := shape.Size()
	m := linalg.New(1, n)
	for j := range m.Row(0) {
		m.Row(0)[j] = 1
	}
	return FromMatrix("total "+shape.String(), shape, m)
}
