package workload

import (
	"fmt"
	"sort"
	"strings"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
)

// This file implements workload splitting for the sharded planner: a
// workload that decomposes into independent blocks is partitioned into
// sub-workloads that can be planned (and released) separately and
// stitched back together.
//
// Two shapes are shardable:
//
//   - MARGINAL BLOCKS: a marginal-set workload whose attribute subsets
//     fall into ≥2 connected components. Each block owns a disjoint
//     attribute group; its sub-workload is the same marginal set over the
//     projected sub-domain, and its projection operator marginalizes the
//     full histogram onto that sub-domain.
//   - CELL BLOCKS: an explicit workload whose query rows touch ≥2
//     disjoint cell groups (a block-diagonal query matrix up to row and
//     column order). Each block owns a disjoint cell subset; its
//     projection selects those cells.
//
// Both projections are 0/1 operators mapping each original cell to at
// most one sub-domain cell — the property the composite mechanism's
// sensitivity lifting relies on (see mm.NewShardedMechanism).

// RowSegment locates a contiguous run of a block's query answers inside
// the original workload's row order: the block's answers fill rows
// [Start, Start+Len) of the original answer vector, in block row order.
type RowSegment struct {
	Start int
	Len   int
}

// Block is one shard of a split workload.
type Block struct {
	// Kind is "marginal-block" or "cell-block".
	Kind string
	// Attrs lists the original attribute ids the block owns (marginal
	// blocks only), sorted ascending.
	Attrs []int
	// Sub is the block's sub-workload over its own sub-domain.
	Sub *Workload
	// Project maps the full histogram to the block's sub-domain: a 0/1
	// operator with at most one nonzero per column (marginalization for
	// marginal blocks, cell selection for cell blocks).
	Project linalg.Operator
	// Segments maps the block's answer rows back into the original
	// workload's row order; segment lengths sum to Sub.NumQueries().
	Segments []RowSegment
}

// Label returns a short human-readable description of the block.
func (b *Block) Label() string {
	if b.Kind == "marginal-block" {
		parts := make([]string, len(b.Attrs))
		for i, a := range b.Attrs {
			parts[i] = fmt.Sprint(a)
		}
		return "attrs " + strings.Join(parts, ",")
	}
	return fmt.Sprintf("%d cells", b.Sub.Cells())
}

// unionFind is a plain union-find over 0..n-1.
type unionFind []int

func newUnionFind(n int) unionFind {
	uf := make(unionFind, n)
	for i := range uf {
		uf[i] = i
	}
	return uf
}

func (uf unionFind) find(i int) int {
	for uf[i] != i {
		uf[i] = uf[uf[i]]
		i = uf[i]
	}
	return i
}

func (uf unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra != rb {
		uf[ra] = rb
	}
}

// MarginalBlocks partitions a marginal-set workload into its connected
// attribute components: two marginal subsets share a block exactly when
// their attribute sets are (transitively) linked by a shared attribute.
// The empty subset (the total query) carries no attribute and is assigned
// to the first block — every block's total equals the full-domain total,
// so any assignment is exact.
//
// ok is false when the workload is not a plain marginal set (nothing to
// split). A connected workload returns a single block. maxBlocks > 0
// caps the block count by merging the smallest blocks (by sub-domain cell
// count) until it fits; the merged sub-workload is still a plain marginal
// set over the merged attribute group.
func MarginalBlocks(w *Workload, maxBlocks int) ([]Block, bool) {
	subsets, ok := w.MarginalSubsets()
	if !ok {
		return nil, false
	}
	shape := w.Shape()
	dims := shape.Dims()
	if dims < 2 || len(subsets) == 0 {
		return nil, ok
	}
	uf := newUnionFind(dims)
	for _, s := range subsets {
		if len(s) == 0 {
			continue
		}
		for _, a := range s[1:] {
			uf.union(s[0], a)
		}
	}
	// Group subset indices by component; components with no subsets
	// (attributes every query sums over) belong to no block.
	groups := map[int][]int{}
	var order []int // component roots in first-appearance order
	firstRoot := -1
	for t, s := range subsets {
		if len(s) == 0 {
			continue // empty subsets assigned after grouping
		}
		root := uf.find(s[0])
		if _, seen := groups[root]; !seen {
			order = append(order, root)
		}
		groups[root] = append(groups[root], t)
		if firstRoot < 0 {
			firstRoot = root
		}
	}
	if len(order) == 0 {
		// Only total queries: nothing to split along.
		return nil, ok
	}
	for t, s := range subsets {
		if len(s) == 0 {
			groups[firstRoot] = append(groups[firstRoot], t)
		}
	}
	// One subset-index list per block, each kept in original subset order
	// so row segments stay aligned.
	blocksIdx := make([][]int, 0, len(order))
	for _, root := range order {
		idx := groups[root]
		sort.Ints(idx)
		blocksIdx = append(blocksIdx, idx)
	}
	if maxBlocks > 0 {
		// Block size = projected cell count (the product of its attribute
		// dimensions): merging the smallest blocks first keeps the split
		// granularity where it pays.
		blocksIdx = mergeSmallest(blocksIdx, maxBlocks, func(idx []int) int {
			attrs := map[int]bool{}
			for _, t := range idx {
				for _, a := range subsets[t] {
					attrs[a] = true
				}
			}
			n := 1
			for a := range attrs {
				n *= shape[a]
			}
			return n
		})
	}

	// Row offsets: subset t starts at the sum of the preceding subsets'
	// row counts (a marginal over S has Π_{a∈S} shape[a] rows).
	offsets := make([]int, len(subsets)+1)
	for t, s := range subsets {
		rows := 1
		for _, a := range s {
			rows *= shape[a]
		}
		offsets[t+1] = offsets[t] + rows
	}

	out := make([]Block, 0, len(blocksIdx))
	for _, idx := range blocksIdx {
		attrSet := map[int]bool{}
		for _, t := range idx {
			for _, a := range subsets[t] {
				attrSet[a] = true
			}
		}
		attrs := make([]int, 0, len(attrSet))
		for a := range attrSet {
			attrs = append(attrs, a)
		}
		sort.Ints(attrs)
		if len(attrs) == 0 {
			// A block of only total queries cannot stand alone (its
			// sub-domain would be empty); unreachable after the empty-subset
			// assignment above, but refuse splitting rather than panic.
			return nil, ok
		}
		local := make(map[int]int, len(attrs))
		subDims := make([]int, len(attrs))
		for i, a := range attrs {
			local[a] = i
			subDims[i] = shape[a]
		}
		subShape := domain.MustShape(subDims...)
		localSubsets := make([][]int, len(idx))
		segments := make([]RowSegment, 0, len(idx))
		for i, t := range idx {
			ls := make([]int, len(subsets[t]))
			for j, a := range subsets[t] {
				ls[j] = local[a]
			}
			localSubsets[i] = ls
			seg := RowSegment{Start: offsets[t], Len: offsets[t+1] - offsets[t]}
			if n := len(segments); n > 0 && segments[n-1].Start+segments[n-1].Len == seg.Start {
				segments[n-1].Len += seg.Len
			} else {
				segments = append(segments, seg)
			}
		}
		b := Block{
			Kind:     "marginal-block",
			Attrs:    attrs,
			Project:  marginalOperator(shape, attrs),
			Segments: segments,
		}
		b.Sub = MarginalSet(fmt.Sprintf("%s [%s]", w.Name(), b.Label()), subShape, localSubsets)
		out = append(out, b)
	}
	return out, true
}

// mergeSmallest merges the two smallest groups (under the given size
// metric) until at most maxGroups remain. Merged index lists are
// re-sorted so downstream row segments stay in original order.
func mergeSmallest(groups [][]int, maxGroups int, size func([]int) int) [][]int {
	for len(groups) > maxGroups && len(groups) > 1 {
		i0, i1 := 0, 1
		if size(groups[i1]) < size(groups[i0]) {
			i0, i1 = i1, i0
		}
		for i := 2; i < len(groups); i++ {
			s := size(groups[i])
			if s < size(groups[i0]) {
				i0, i1 = i, i0
			} else if s < size(groups[i1]) {
				i1 = i
			}
		}
		merged := append(append([]int(nil), groups[i0]...), groups[i1]...)
		sort.Ints(merged)
		if i0 > i1 {
			i0, i1 = i1, i0
		}
		groups[i0] = merged
		groups = append(groups[:i1], groups[i1+1:]...)
	}
	return groups
}

// CellBlocks partitions an explicit workload whose query matrix is
// block-diagonal up to row and column order: rows land in the same block
// exactly when their nonzero cell supports are (transitively) linked.
// Cells no query touches belong to no block. All-zero query rows are
// assigned to the first block (their answer is 0 under any strategy).
//
// ok is false when the workload has no materialized dense rows — the
// splitter never materializes anything itself. A connected workload
// returns a single block. maxBlocks caps the count like MarginalBlocks.
func CellBlocks(w *Workload, maxBlocks int) ([]Block, bool) {
	if w.mat == nil {
		return nil, false
	}
	mat := w.mat
	m, n := mat.Rows(), mat.Cols()
	if m == 0 || n < 2 {
		return nil, false
	}
	uf := newUnionFind(n)
	rowFirst := make([]int, m) // first nonzero column per row, -1 for zero rows
	for i := 0; i < m; i++ {
		rowFirst[i] = -1
		row := mat.Row(i)
		for j, v := range row {
			if v == 0 {
				continue
			}
			if rowFirst[i] < 0 {
				rowFirst[i] = j
			} else {
				uf.union(rowFirst[i], j)
			}
		}
		// Link runs lazily: every later nonzero was unioned with the first.
	}
	groups := map[int][]int{} // component root → row indices, in order
	var order []int
	for i := 0; i < m; i++ {
		if rowFirst[i] < 0 {
			continue
		}
		root := uf.find(rowFirst[i])
		if _, seen := groups[root]; !seen {
			order = append(order, root)
		}
		groups[root] = append(groups[root], i)
	}
	if len(order) == 0 {
		return nil, false
	}
	for i := 0; i < m; i++ {
		if rowFirst[i] < 0 {
			groups[order[0]] = append(groups[order[0]], i)
		}
	}
	rowsIdx := make([][]int, 0, len(order))
	for _, root := range order {
		idx := groups[root]
		sort.Ints(idx)
		rowsIdx = append(rowsIdx, idx)
	}
	if maxBlocks > 0 {
		// Block size = row count: merge the blocks with the fewest rows.
		rowsIdx = mergeSmallest(rowsIdx, maxBlocks, func(idx []int) int { return len(idx) })
	}

	out := make([]Block, 0, len(rowsIdx))
	for bi, idx := range rowsIdx {
		colSet := map[int]bool{}
		for _, i := range idx {
			row := mat.Row(i)
			for j, v := range row {
				if v != 0 {
					colSet[j] = true
				}
			}
		}
		cols := make([]int, 0, len(colSet))
		for j := range colSet {
			cols = append(cols, j)
		}
		sort.Ints(cols)
		if len(cols) == 0 {
			// A block of only zero rows (possible when every nonzero row
			// merged elsewhere): give it the first cell so the sub-domain is
			// non-empty.
			cols = []int{0}
		}
		localCol := make(map[int]int, len(cols))
		for j, c := range cols {
			localCol[c] = j
		}
		sub := linalg.New(len(idx), len(cols))
		for si, i := range idx {
			row := mat.Row(i)
			srow := sub.Row(si)
			for j, v := range row {
				if v != 0 {
					srow[localCol[j]] = v
				}
			}
		}
		var segments []RowSegment
		for _, i := range idx {
			if k := len(segments); k > 0 && segments[k-1].Start+segments[k-1].Len == i {
				segments[k-1].Len++
			} else {
				segments = append(segments, RowSegment{Start: i, Len: 1})
			}
		}
		out = append(out, Block{
			Kind:     "cell-block",
			Sub:      FromMatrix(fmt.Sprintf("%s [block %d: %d cells]", w.Name(), bi, len(cols)), domain.MustShape(len(cols)), sub),
			Project:  linalg.PermuteRows(linalg.Eye(n), cols),
			Segments: segments,
		})
	}
	return out, true
}

// HasDenseRows reports whether the workload's explicit rows are already
// materialized — the precondition CellBlocks checks, exposed so callers
// can explain a refusal without triggering materialization.
func (w *Workload) HasDenseRows() bool { return w.mat != nil }
