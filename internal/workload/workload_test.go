package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
)

func TestIdentityWorkload(t *testing.T) {
	w := Identity(domain.MustShape(2, 3))
	if w.NumQueries() != 6 || w.Cells() != 6 {
		t.Fatalf("m=%d n=%d", w.NumQueries(), w.Cells())
	}
	if !w.Matrix().Equal(linalg.Identity(6), 0) {
		t.Fatal("identity workload wrong")
	}
	if w.SensitivityL2() != 1 {
		t.Fatalf("sensitivity = %g", w.SensitivityL2())
	}
}

func TestFig1Workload(t *testing.T) {
	w := Fig1()
	if w.NumQueries() != 8 || w.Cells() != 8 {
		t.Fatalf("Fig1 m=%d n=%d", w.NumQueries(), w.Cells())
	}
	// Paper: ‖W‖₂ = √5.
	if math.Abs(w.SensitivityL2()-math.Sqrt(5)) > 1e-12 {
		t.Fatalf("Fig1 sensitivity = %g, want √5", w.SensitivityL2())
	}
	// q3 = q1 - q2.
	m := w.Matrix()
	for j := 0; j < 8; j++ {
		if m.At(2, j) != m.At(0, j)-m.At(1, j) {
			t.Fatal("q3 != q1 - q2 in Fig1")
		}
	}
}

func TestAllRangeSmallExplicit(t *testing.T) {
	w := AllRange(domain.MustShape(4))
	if !w.Explicit() {
		t.Fatal("small all-range should be explicit")
	}
	if w.NumQueries() != 10 {
		t.Fatalf("m = %d, want 10", w.NumQueries())
	}
	// Every row is a contiguous block of ones.
	m := w.Matrix()
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		first, last, count := -1, -1, 0
		for j, v := range row {
			if v == 1 {
				if first < 0 {
					first = j
				}
				last = j
				count++
			} else if v != 0 {
				t.Fatalf("non-0/1 entry %g", v)
			}
		}
		if count != last-first+1 {
			t.Fatalf("row %d is not contiguous: %v", i, row)
		}
	}
}

func TestAllRangeGramMatchesExplicit(t *testing.T) {
	// The analytic Gram must equal the explicit one.
	for _, dims := range [][]int{{5}, {7}, {3, 4}, {2, 3, 2}} {
		shape := domain.MustShape(dims...)
		w := AllRange(shape)
		explicit := allRangeMatrix(shape).Gram()
		grams := make([]*linalg.Matrix, len(shape))
		for i, d := range shape {
			grams[i] = allRangeGram1D(d)
		}
		analytic := linalg.KroneckerAll(grams...)
		if !explicit.Equal(analytic, 1e-9) {
			t.Fatalf("analytic all-range gram mismatch for %v", shape)
		}
		if !w.Gram().Equal(analytic, 1e-9) {
			t.Fatalf("workload gram mismatch for %v", shape)
		}
	}
}

func TestAllRangeLargeImplicit(t *testing.T) {
	shape := domain.MustShape(256)
	w := AllRange(shape)
	if w.NumQueries() != 256*257/2 {
		t.Fatalf("m = %d", w.NumQueries())
	}
	if w.Explicit() && w.NumQueries()*w.Cells() > maxExplicitEntries {
		t.Fatal("should be implicit")
	}
	// Sensitivity of 1-D all-range: middle cell is in (i+1)(n-i) ranges.
	maxCover := 0.0
	for i := 0; i < 256; i++ {
		c := float64((i + 1) * (256 - i))
		if c > maxCover {
			maxCover = c
		}
	}
	if math.Abs(w.SensitivityL2()-math.Sqrt(maxCover)) > 1e-9 {
		t.Fatalf("sensitivity = %g, want %g", w.SensitivityL2(), math.Sqrt(maxCover))
	}
}

func TestMatrixPanicsForImplicit(t *testing.T) {
	w := AllRange(domain.MustShape(512))
	if w.Explicit() {
		t.Skip("unexpectedly explicit")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Matrix() on implicit workload did not panic")
		}
	}()
	w.Matrix()
}

func TestRandomRangeRows(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	shape := domain.MustShape(8, 8)
	w := RandomRange(shape, 50, r)
	if w.NumQueries() != 50 {
		t.Fatalf("m = %d", w.NumQueries())
	}
	m := w.Matrix()
	for i := 0; i < m.Rows(); i++ {
		// Each row must be the indicator of a non-empty box: verify row sums
		// factor as a product of two interval lengths ≤ 8.
		var sum float64
		for _, v := range m.Row(i) {
			if v != 0 && v != 1 {
				t.Fatalf("non-indicator entry %g", v)
			}
			sum += v
		}
		if sum < 1 || sum > 64 {
			t.Fatalf("row %d covers %g cells", i, sum)
		}
	}
}

func TestRandomRangeDeterministicWithSeed(t *testing.T) {
	shape := domain.MustShape(16)
	a := RandomRange(shape, 20, rand.New(rand.NewSource(7)))
	b := RandomRange(shape, 20, rand.New(rand.NewSource(7)))
	if !a.Matrix().Equal(b.Matrix(), 0) {
		t.Fatal("same seed produced different workloads")
	}
}

func TestPrefixWorkload(t *testing.T) {
	w := Prefix(5)
	m := w.Matrix()
	if m.Rows() != 5 {
		t.Fatalf("rows = %d", m.Rows())
	}
	// Lower-triangular ones.
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if j <= i {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Prefix(%d,%d) = %g", i, j, m.At(i, j))
			}
		}
	}
	// First column is in all n queries: sensitivity = sqrt(n).
	if math.Abs(w.SensitivityL2()-math.Sqrt(5)) > 1e-12 {
		t.Fatalf("CDF sensitivity = %g", w.SensitivityL2())
	}
}

func TestPredicateWorkload(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	w := Predicate(domain.MustShape(32), 100, r)
	if w.NumQueries() != 100 {
		t.Fatalf("m = %d", w.NumQueries())
	}
	ones := 0
	m := w.Matrix()
	for i := 0; i < m.Rows(); i++ {
		for _, v := range m.Row(i) {
			if v == 1 {
				ones++
			} else if v != 0 {
				t.Fatalf("non-0/1 entry %g", v)
			}
		}
	}
	// Should be near half the entries.
	frac := float64(ones) / float64(100*32)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("ones fraction = %g", frac)
	}
}

func TestTotalWorkload(t *testing.T) {
	w := Total(domain.MustShape(3, 3))
	if w.NumQueries() != 1 {
		t.Fatalf("m = %d", w.NumQueries())
	}
	for _, v := range w.Matrix().Row(0) {
		if v != 1 {
			t.Fatal("total query must be all ones")
		}
	}
}

func TestMarginalMatrixShapes(t *testing.T) {
	shape := domain.MustShape(2, 3, 4)
	cases := []struct {
		attrs []int
		rows  int
	}{
		{nil, 1},
		{[]int{0}, 2},
		{[]int{1}, 3},
		{[]int{2}, 4},
		{[]int{0, 2}, 8},
		{[]int{0, 1, 2}, 24},
	}
	for _, c := range cases {
		m := MarginalMatrix(shape, c.attrs)
		if m.Rows() != c.rows || m.Cols() != 24 {
			t.Fatalf("marginal %v: %dx%d, want %dx24", c.attrs, m.Rows(), m.Cols(), c.rows)
		}
		// Each column must have exactly one 1 per marginal (cells partition).
		for j := 0; j < m.Cols(); j++ {
			var sum float64
			for i := 0; i < m.Rows(); i++ {
				sum += m.At(i, j)
			}
			if sum != 1 {
				t.Fatalf("marginal %v column %d sums to %g", c.attrs, j, sum)
			}
		}
	}
}

func TestMarginalsWorkload(t *testing.T) {
	shape := domain.MustShape(2, 3, 4)
	w := Marginals(shape, 2)
	// C(3,2)=3 subsets with 6+8+12 rows.
	if w.NumQueries() != 6+8+12 {
		t.Fatalf("m = %d, want 26", w.NumQueries())
	}
	// Each tuple lands in one cell per marginal: sensitivity = sqrt(#subsets).
	if math.Abs(w.SensitivityL2()-math.Sqrt(3)) > 1e-12 {
		t.Fatalf("sensitivity = %g, want √3", w.SensitivityL2())
	}
}

func TestRangeMarginalsWorkload(t *testing.T) {
	shape := domain.MustShape(3, 4)
	w := RangeMarginals(shape, 1)
	// 1-way range marginals: 6 ranges on dim0 + 10 on dim1.
	if w.NumQueries() != 16 {
		t.Fatalf("m = %d, want 16", w.NumQueries())
	}
}

func TestAllMarginalsWorkload(t *testing.T) {
	shape := domain.MustShape(2, 2)
	w := AllMarginals(shape)
	// k=0: 1 row; k=1: 2+2; k=2: 4 → 9 rows.
	if w.NumQueries() != 9 {
		t.Fatalf("m = %d, want 9", w.NumQueries())
	}
}

func TestRandomMarginals(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	shape := domain.MustShape(2, 3, 2)
	w, subsets := RandomMarginals(shape, 5, r)
	if len(subsets) != 5 {
		t.Fatalf("subsets = %d", len(subsets))
	}
	rows := 0
	for _, s := range subsets {
		if len(s) == 0 {
			t.Fatal("empty subset sampled")
		}
		n := 1
		for _, a := range s {
			n *= shape[a]
		}
		rows += n
	}
	if w.NumQueries() != rows {
		t.Fatalf("m = %d, want %d", w.NumQueries(), rows)
	}
}

func TestRandomRangeMarginals(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	w := RandomRangeMarginals(domain.MustShape(3, 3), 4, r)
	if w.NumQueries() == 0 {
		t.Fatal("empty workload")
	}
}

func TestSubsetsOfSize(t *testing.T) {
	got := subsetsOfSize(4, 2)
	if len(got) != 6 {
		t.Fatalf("C(4,2) = %d, want 6", len(got))
	}
	if len(subsetsOfSize(3, 0)) != 1 {
		t.Fatal("C(3,0) != 1")
	}
	if subsetsOfSize(3, 4) != nil {
		t.Fatal("C(3,4) should be empty")
	}
	if subsetsOfSize(3, -1) != nil {
		t.Fatal("negative k should be empty")
	}
}

func TestPermuteCellsExplicit(t *testing.T) {
	w := Fig1()
	perm := []int{7, 6, 5, 4, 3, 2, 1, 0}
	p := w.PermuteCells(perm, "reversed")
	// Gram of permuted equals permuted Gram.
	g := w.Gram()
	pg := p.Gram()
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if math.Abs(pg.At(i, j)-g.At(perm[i], perm[j])) > 1e-12 {
				t.Fatal("permuted gram mismatch")
			}
		}
	}
	// Sensitivity is permutation invariant.
	if math.Abs(p.SensitivityL2()-w.SensitivityL2()) > 1e-12 {
		t.Fatal("sensitivity changed under permutation")
	}
}

func TestPermuteCellsImplicit(t *testing.T) {
	w := AllRange(domain.MustShape(300))
	r := rand.New(rand.NewSource(5))
	perm := randPerm(r, 300)
	p := w.PermuteCells(perm, "permuted range")
	if math.Abs(p.SensitivityL2()-w.SensitivityL2()) > 1e-9 {
		t.Fatal("sensitivity changed under permutation (implicit)")
	}
	// Gram trace invariant.
	if math.Abs(p.Gram().Trace()-w.Gram().Trace()) > 1e-6 {
		t.Fatal("gram trace changed under permutation")
	}
}

func TestNormalizeRows(t *testing.T) {
	w := Fig1().NormalizeRows()
	m := w.Matrix()
	for i := 0; i < m.Rows(); i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += v * v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d norm² = %g", i, s)
		}
	}
}

func TestNormalizeRowsZeroRow(t *testing.T) {
	m := linalg.New(2, 3)
	m.Set(0, 0, 2)
	w := FromMatrix("z", domain.MustShape(3), m).NormalizeRows()
	if w.Matrix().At(0, 0) != 1 {
		t.Fatal("nonzero row not normalized")
	}
	for _, v := range w.Matrix().Row(1) {
		if v != 0 {
			t.Fatal("zero row modified")
		}
	}
}

func TestUnion(t *testing.T) {
	shape := domain.MustShape(4)
	u := Union("u", Identity(shape), Total(shape))
	if u.NumQueries() != 5 {
		t.Fatalf("m = %d, want 5", u.NumQueries())
	}
}

func TestScale(t *testing.T) {
	w := Fig1()
	s := w.Scale(2)
	if math.Abs(s.SensitivityL2()-2*w.SensitivityL2()) > 1e-12 {
		t.Fatal("Scale did not scale sensitivity")
	}
	// Implicit path.
	iw := AllRange(domain.MustShape(300)).Scale(3)
	if math.Abs(iw.SensitivityL2()-3*AllRange(domain.MustShape(300)).SensitivityL2()) > 1e-9 {
		t.Fatal("implicit Scale wrong")
	}
}

func TestGramIsPSD(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := RandomRange(domain.MustShape(6, 4), 10+r.Intn(20), r)
		g := w.Gram()
		// xᵀGx ≥ 0 for random x.
		x := make([]float64, g.Cols())
		for i := range x {
			x[i] = r.NormFloat64()
		}
		gx := g.MulVec(x)
		var q float64
		for i := range x {
			q += x[i] * gx[i]
		}
		return q >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromMatrixPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromMatrix("bad", domain.MustShape(4), linalg.New(2, 5))
}

// Marginal-subset metadata: set by the marginal builders, preserved by
// unions of marginal sets over one shape, and dropped both for non-
// marginal operands and for equal-cell-count unions over a different
// shape (whose subsets would index the wrong dimensions).
func TestMarginalSubsetsMetadata(t *testing.T) {
	shape := domain.MustShape(4, 4)
	m1 := Marginals(shape, 1)
	if subs, ok := m1.MarginalSubsets(); !ok || len(subs) != 2 {
		t.Fatalf("Marginals metadata = %v, %v", subs, ok)
	}
	u := Union("both", Marginals(shape, 1), Marginals(shape, 2))
	if subs, ok := u.MarginalSubsets(); !ok || len(subs) != 3 {
		t.Fatalf("union metadata = %v, %v", subs, ok)
	}
	if _, ok := Union("mixed", Marginals(shape, 1), AllRange(shape)).MarginalSubsets(); ok {
		t.Fatal("union with a non-marginal operand kept marginal metadata")
	}
	// 2x8 has the same cell count as 4x4, so Union admits it — but its
	// attribute-0 marginal is not a marginal of the 4x4 domain.
	reshaped := Marginals(domain.MustShape(2, 8), 1)
	if _, ok := Union("reshaped", m1, reshaped).MarginalSubsets(); ok {
		t.Fatal("union across shapes kept marginal metadata")
	}
}
