package workload

import (
	"fmt"
	"math/rand"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
)

// MarginalMatrix returns the query matrix of the marginal over the
// attribute subset attrs (e.g. attrs = {0,2} gives the 2-way marginal on
// dimensions 0 and 2). It is the Kronecker product, over dimensions, of the
// identity (for dimensions in attrs) and the all-ones row (for the rest).
// The empty subset yields the total query.
func MarginalMatrix(shape domain.Shape, attrs []int) *linalg.Matrix {
	inSet := make([]bool, len(shape))
	for _, a := range attrs {
		if a < 0 || a >= len(shape) {
			panic(fmt.Sprintf("workload: marginal attribute %d out of range for %v", a, shape))
		}
		inSet[a] = true
	}
	parts := make([]*linalg.Matrix, len(shape))
	for i, d := range shape {
		if inSet[i] {
			parts[i] = linalg.Identity(d)
		} else {
			parts[i] = onesRow(d)
		}
	}
	return linalg.KroneckerAll(parts...)
}

// rangeMarginalMatrix is like MarginalMatrix but asks all ranges (instead
// of single values) on the margin attributes — the paper's k-way range
// marginal queries, which avoid the noise accumulation of summing noisy
// marginal cells.
func rangeMarginalMatrix(shape domain.Shape, attrs []int) *linalg.Matrix {
	inSet := make([]bool, len(shape))
	for _, a := range attrs {
		inSet[a] = true
	}
	parts := make([]*linalg.Matrix, len(shape))
	for i, d := range shape {
		if inSet[i] {
			parts[i] = allRangeMatrix1D(d)
		} else {
			parts[i] = onesRow(d)
		}
	}
	return linalg.KroneckerAll(parts...)
}

// marginalOperator is MarginalMatrix in structured form: the Kronecker
// product of identity operators (margin attributes) and 1×d total rows
// (the rest). Nothing dense is materialized.
func marginalOperator(shape domain.Shape, attrs []int) linalg.Operator {
	inSet := make([]bool, len(shape))
	for _, a := range attrs {
		if a < 0 || a >= len(shape) {
			panic(fmt.Sprintf("workload: marginal attribute %d out of range for %v", a, shape))
		}
		inSet[a] = true
	}
	parts := make([]linalg.Operator, len(shape))
	for i, d := range shape {
		if inSet[i] {
			parts[i] = linalg.Eye(d)
		} else {
			parts[i] = onesRowOp(d)
		}
	}
	return linalg.NewKronOp(parts...)
}

// rangeMarginalOperator is rangeMarginalMatrix in structured form, with
// interval operators on the margin attributes.
func rangeMarginalOperator(shape domain.Shape, attrs []int) linalg.Operator {
	inSet := make([]bool, len(shape))
	for _, a := range attrs {
		inSet[a] = true
	}
	parts := make([]linalg.Operator, len(shape))
	for i, d := range shape {
		if inSet[i] {
			parts[i] = linalg.NewIntervalsOp(d)
		} else {
			parts[i] = onesRowOp(d)
		}
	}
	return linalg.NewKronOp(parts...)
}

// Marginals returns the workload of all k-way marginals for the given k,
// as a stack of structured marginal operators.
func Marginals(shape domain.Shape, k int) *Workload {
	subsets := subsetsOfSize(len(shape), k)
	if len(subsets) == 0 {
		panic(fmt.Sprintf("workload: no %d-way marginals on %d dims", k, len(shape)))
	}
	return marginalSetOp(fmt.Sprintf("%d-way marginal %s", k, shape), shape, subsets)
}

// MarginalSet returns the workload consisting of the marginals for the
// given attribute subsets.
func MarginalSet(name string, shape domain.Shape, subsets [][]int) *Workload {
	return marginalSetOp(name, shape, subsets)
}

func marginalSetOp(name string, shape domain.Shape, subsets [][]int) *Workload {
	ops := make([]linalg.Operator, len(subsets))
	for i, s := range subsets {
		ops[i] = marginalOperator(shape, s)
	}
	w := FromOperator(name, shape, linalg.StackOps(ops...))
	w.marginalSubsets = subsets
	return w
}

// RangeMarginals returns the workload of all k-way range marginals.
func RangeMarginals(shape domain.Shape, k int) *Workload {
	subsets := subsetsOfSize(len(shape), k)
	if len(subsets) == 0 {
		panic(fmt.Sprintf("workload: no %d-way range marginals on %d dims", k, len(shape)))
	}
	ops := make([]linalg.Operator, len(subsets))
	for i, s := range subsets {
		ops[i] = rangeMarginalOperator(shape, s)
	}
	return FromOperator(fmt.Sprintf("%d-way range marginal %s", k, shape), shape, linalg.StackOps(ops...))
}

// AllMarginals returns the union of k-way marginals for every k from 0
// (the total) to Dims (the identity).
func AllMarginals(shape domain.Shape) *Workload {
	var subsets [][]int
	for k := 0; k <= len(shape); k++ {
		subsets = append(subsets, subsetsOfSize(len(shape), k)...)
	}
	return marginalSetOp("all marginal "+shape.String(), shape, subsets)
}

// RandomMarginals samples count attribute subsets uniformly at random
// (with replacement, excluding the empty set when dims > 0) following the
// sampling of Ding et al. [7], and returns the union of those marginals.
// The chosen subsets are also returned for use by strategies that need
// them (e.g. the DataCube baseline).
func RandomMarginals(shape domain.Shape, count int, r *rand.Rand) (*Workload, [][]int) {
	dims := len(shape)
	subsets := make([][]int, 0, count)
	for q := 0; q < count; q++ {
		var s []int
		for {
			s = s[:0]
			for i := 0; i < dims; i++ {
				if r.Intn(2) == 1 {
					s = append(s, i)
				}
			}
			if len(s) > 0 || dims == 0 {
				break
			}
		}
		subsets = append(subsets, append([]int(nil), s...))
	}
	w := MarginalSet(fmt.Sprintf("random marginal %s (m=%d)", shape, count), shape, subsets)
	return w, subsets
}

// RandomRangeMarginals samples count random attribute subsets and returns
// the union of the corresponding range-marginal workloads.
func RandomRangeMarginals(shape domain.Shape, count int, r *rand.Rand) *Workload {
	dims := len(shape)
	ops := make([]linalg.Operator, 0, count)
	for q := 0; q < count; q++ {
		var s []int
		for {
			s = s[:0]
			for i := 0; i < dims; i++ {
				if r.Intn(2) == 1 {
					s = append(s, i)
				}
			}
			if len(s) > 0 {
				break
			}
		}
		ops = append(ops, rangeMarginalOperator(shape, s))
	}
	return FromOperator(fmt.Sprintf("random range marginal %s (m=%d)", shape, count),
		shape, linalg.StackOps(ops...))
}

// subsetsOfSize enumerates all subsets of {0..n-1} with exactly k elements,
// in lexicographic order.
func subsetsOfSize(n, k int) [][]int {
	if k < 0 || k > n {
		return nil
	}
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		// Advance combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

func onesRow(d int) *linalg.Matrix {
	m := linalg.New(1, d)
	row := m.Row(0)
	for j := range row {
		row[j] = 1
	}
	return m
}

// onesRowOp is the 1×d total-count row in sparse form.
func onesRowOp(d int) linalg.Operator {
	b := linalg.NewSparseBuilder(d)
	b.AppendRangeRow(0, d-1, 1)
	return b.Build()
}
