// Package workload constructs the query workloads evaluated in the paper:
// all-range and random range queries, k-way marginals and range marginals,
// CDF (prefix) workloads, random predicate queries, and the running example
// of Fig. 1, together with transformations (column permutation, row
// normalization for relative error, unions).
//
// A Workload wraps a set of m linear counting queries over n cells,
// represented by a linalg.Operator rather than an explicit matrix.
// Structured builders return structured operators — AllRange is a
// Kronecker product of per-dimension interval operators, Prefix is the
// analytic prefix-sum operator, Marginals stack Kronecker products of
// identities and total rows — so even workloads whose explicit matrix
// would have billions of entries (all range queries on 2048 cells have
// ~2.1M rows) can be *answered* on data with O(rows) work per release.
// Dense rows are materialized lazily, and only for workloads small enough
// to fit under maxExplicitEntries; error analysis needs just the Gram
// matrix WᵀW and the row count m (Prop. 4), which every representation
// provides analytically.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
)

// Workload is a set of linear counting queries over a cell domain.
type Workload struct {
	name  string
	shape domain.Shape
	m     int             // number of queries
	op    linalg.Operator // the query operator; nil only for gram-only workloads
	mat   *linalg.Matrix  // dense rows, materialized lazily under the cap
	gram  *linalg.Matrix  // cached WᵀW
	// gramFactors, when non-nil, are per-dimension matrices whose Kronecker
	// product equals the Gram matrix — set by product-form builders like
	// AllRange so the eigendecomposition can be composed per dimension.
	gramFactors []*linalg.Matrix
	// marginalSubsets, when non-nil, are the attribute subsets of a
	// workload that is a union of plain marginals — set by the marginal
	// builders so the planner's closed-form marginal designer can admit
	// the workload without inspecting rows.
	marginalSubsets [][]int
}

// maxExplicitEntries caps how many matrix entries (rows × cells) Matrix()
// will materialize from a structured operator. It is no longer a limit on
// what can be answered — answering goes through the operator — only on
// what can be handed out as a dense matrix. The budget is shared with the
// strategy side (mm.StrategyDense) through linalg.MaterializeCap.
const maxExplicitEntries = linalg.MaterializeCap

// FromMatrix wraps an explicit query matrix as a workload. The number of
// columns must match the shape's cell count.
func FromMatrix(name string, shape domain.Shape, m *linalg.Matrix) *Workload {
	if m.Cols() != shape.Size() {
		panic(fmt.Sprintf("workload: matrix has %d cols for shape %v (%d cells)", m.Cols(), shape, shape.Size()))
	}
	return &Workload{name: name, shape: shape, m: m.Rows(), op: m, mat: m}
}

// FromOperator wraps a structured query operator as a workload.
func FromOperator(name string, shape domain.Shape, op linalg.Operator) *Workload {
	if op.Cols() != shape.Size() {
		panic(fmt.Sprintf("workload: operator has %d cols for shape %v (%d cells)", op.Cols(), shape, shape.Size()))
	}
	w := &Workload{name: name, shape: shape, m: op.Rows(), op: op}
	if m, ok := op.(*linalg.Matrix); ok {
		w.mat = m
	}
	return w
}

// fromGram wraps an implicit workload known only through its Gram matrix;
// it can be analyzed but not answered (see AllPredicate).
func fromGram(name string, shape domain.Shape, m int, gram *linalg.Matrix) *Workload {
	if gram.Rows() != shape.Size() || gram.Cols() != shape.Size() {
		panic(fmt.Sprintf("workload: gram is %dx%d for %d cells", gram.Rows(), gram.Cols(), shape.Size()))
	}
	return &Workload{name: name, shape: shape, m: m, gram: gram}
}

// Name returns a human-readable workload label.
func (w *Workload) Name() string { return w.name }

// Shape returns the cell domain shape.
func (w *Workload) Shape() domain.Shape { return w.shape }

// Cells returns the number of cells n.
func (w *Workload) Cells() int { return w.shape.Size() }

// NumQueries returns the number of queries m.
func (w *Workload) NumQueries() int { return w.m }

// Answerable reports whether the workload queries can be evaluated on data
// (an operator is available). Only gram-only workloads are not answerable.
func (w *Workload) Answerable() bool { return w.op != nil }

// Op returns the workload's query operator, or nil for gram-only
// workloads.
func (w *Workload) Op() linalg.Operator { return w.op }

// Explicit reports whether dense query rows are available: already
// materialized, or materializable from the operator under the
// maxExplicitEntries cap.
func (w *Workload) Explicit() bool {
	if w.mat != nil {
		return true
	}
	return w.op != nil && w.withinExplicitCap()
}

func (w *Workload) withinExplicitCap() bool {
	n := w.Cells()
	if n == 0 {
		return true
	}
	return w.m <= maxExplicitEntries/n
}

// Matrix returns the explicit m x n query matrix, materializing it from
// the operator on first use when the workload is small enough. It panics
// for workloads past the cap (use Op / MulQueries) and for gram-only
// workloads; check Explicit first.
func (w *Workload) Matrix() *linalg.Matrix {
	if w.mat != nil {
		return w.mat
	}
	if w.op == nil {
		panic(fmt.Sprintf("workload: %q is gram-only (m=%d); it can be analyzed but not materialized", w.name, w.m))
	}
	if !w.withinExplicitCap() {
		panic(fmt.Sprintf("workload: %q is too large to materialize (%d x %d entries); use Op()/MulQueries", w.name, w.m, w.Cells()))
	}
	w.mat = linalg.ToDense(w.op)
	return w.mat
}

// MulQueries evaluates every workload query on the histogram x through the
// operator — the matrix-free path the mechanism uses to answer large
// structured workloads. It panics for gram-only workloads.
func (w *Workload) MulQueries(x []float64) []float64 {
	if w.op == nil {
		panic(fmt.Sprintf("workload: %q is gram-only and cannot be answered on data", w.name))
	}
	return w.op.MulVec(x)
}

// MulQueriesInto is MulQueries writing into a caller-owned buffer of
// length NumQueries — the release hot path's spelling. It returns dst.
func (w *Workload) MulQueriesInto(dst, x []float64) []float64 {
	if w.op == nil {
		panic(fmt.Sprintf("workload: %q is gram-only and cannot be answered on data", w.name))
	}
	return linalg.MulVecInto(w.op, dst, x)
}

// MulQueriesRangeInto answers query rows [lo,hi) into dst[:hi-lo] — the
// chunked spelling of MulQueriesInto used by streaming releases. The
// values are bit-identical to the matching window of the full product, so
// a streamed release reassembles exactly the buffered answer vector.
func (w *Workload) MulQueriesRangeInto(dst, x []float64, lo, hi int) []float64 {
	if w.op == nil {
		panic(fmt.Sprintf("workload: %q is gram-only and cannot be answered on data", w.name))
	}
	return linalg.MulVecRangeInto(w.op, dst, x, lo, hi)
}

// Gram returns WᵀW, computing and caching it on first use: from the
// Kronecker gram factors when the workload has product form, from the
// operator's analytic Gram when it has one, or from the dense rows.
func (w *Workload) Gram() *linalg.Matrix {
	if w.gram != nil {
		return w.gram
	}
	switch {
	case w.gramFactors != nil:
		w.gram = linalg.KroneckerAll(w.gramFactors...)
	case w.mat != nil:
		w.gram = w.mat.GramParallel()
	case w.op != nil:
		w.gram = linalg.OperatorGram(w.op)
	default:
		panic(fmt.Sprintf("workload: %q has no representation to compute a Gram matrix from", w.name))
	}
	return w.gram
}

// GramFactors returns per-dimension factors whose Kronecker product is the
// Gram matrix, when the workload has product form (e.g. multi-dimensional
// all-range). The second result reports availability.
func (w *Workload) GramFactors() ([]*linalg.Matrix, bool) {
	return w.gramFactors, w.gramFactors != nil
}

// MarginalSubsets returns the attribute subsets when the workload is a
// union of plain marginals (built by Marginals, MarginalSet, AllMarginals
// or RandomMarginals) and ok = false otherwise. Workload transformations
// (unions, permutations, scaling) drop the metadata, since the result is
// no longer a plain marginal set. Callers must not mutate the subsets.
func (w *Workload) MarginalSubsets() ([][]int, bool) {
	if w.marginalSubsets == nil {
		return nil, false
	}
	return w.marginalSubsets, true
}

// SensitivityL2 returns the L2 sensitivity ‖W‖₂ (Prop. 1): the maximum L2
// column norm, from the operator's analytic column norms when available
// and the diagonal of the Gram matrix otherwise.
func (w *Workload) SensitivityL2() float64 {
	if w.op != nil && w.gram == nil {
		if _, ok := w.op.(linalg.ColNorms2er); ok {
			return linalg.MaxColNorm2Op(w.op)
		}
	}
	g := w.Gram()
	var best float64
	for i := 0; i < g.Rows(); i++ {
		if v := g.At(i, i); v > best {
			best = v
		}
	}
	if best < 0 {
		best = 0
	}
	return sqrt(best)
}

// PermuteCells returns the workload with its cell conditions reordered by
// perm (new cell j is old cell perm[j]) — a semantically-equivalent
// workload in the sense of Prop. 5.
func (w *Workload) PermuteCells(perm []int, name string) *Workload {
	if len(perm) != w.Cells() {
		panic(fmt.Sprintf("workload: perm length %d for %d cells", len(perm), w.Cells()))
	}
	out := &Workload{name: name, shape: domain.MustShape(w.Cells()), m: w.m}
	if w.Explicit() {
		out.mat = w.Matrix().PermuteCols(perm)
		out.op = out.mat
		return out
	}
	// Permute the Gram matrix: G'_{ij} = G_{perm[i],perm[j]}.
	g := w.Gram()
	n := w.Cells()
	pg := linalg.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pg.Set(i, j, g.At(perm[i], perm[j]))
		}
	}
	out.gram = pg
	return out
}

// NormalizeRows returns a copy with every query scaled to unit L2 norm,
// the heuristic of Sec 3.4 used to optimize toward relative error.
// Zero rows are left untouched. Only explicit workloads can be normalized.
func (w *Workload) NormalizeRows() *Workload {
	m := w.Matrix().Clone()
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v * v
		}
		if s == 0 {
			continue
		}
		inv := 1 / sqrt(s)
		for j := range row {
			row[j] *= inv
		}
	}
	return FromMatrix(w.name+" (row-normalized)", w.shape, m)
}

// Union stacks several answerable workloads over the same shape into one,
// as when combining the queries of multiple users (Sec 1). Structured
// operands stay structured (the union operator stacks them). A union of
// plain marginal sets is itself a marginal set, so the subset metadata is
// preserved and the planner's closed-form marginal designer still
// applies.
func Union(name string, ws ...*Workload) *Workload {
	if len(ws) == 0 {
		panic("workload: empty union")
	}
	shape := ws[0].shape
	allDense := true
	allMarginal := true
	var subsets [][]int
	ops := make([]linalg.Operator, len(ws))
	for i, w := range ws {
		if !w.shape.Equal(shape) && w.Cells() != shape.Size() {
			panic(fmt.Sprintf("workload: union shape mismatch %v vs %v", w.shape, shape))
		}
		if !w.Answerable() {
			panic(fmt.Sprintf("workload: union operand %q is gram-only", w.name))
		}
		ops[i] = w.op
		if _, ok := w.op.(*linalg.Matrix); !ok {
			allDense = false
		}
		// The subsets are only meaningful relative to the union's shape:
		// Union admits operands whose shape differs but cell count
		// matches, and a marginal over a reshaped domain is not a
		// marginal of this one.
		if w.marginalSubsets == nil || !w.shape.Equal(shape) {
			allMarginal = false
		} else {
			subsets = append(subsets, w.marginalSubsets...)
		}
	}
	var u *Workload
	if allDense {
		mats := make([]*linalg.Matrix, len(ws))
		for i, w := range ws {
			mats[i] = w.Matrix()
		}
		u = FromMatrix(name, shape, linalg.StackRows(mats...))
	} else {
		u = FromOperator(name, shape, linalg.StackOps(ops...))
	}
	if allMarginal {
		u.marginalSubsets = subsets
	}
	return u
}

// Scale returns the workload with all queries multiplied by s.
func (w *Workload) Scale(s float64) *Workload {
	if w.mat != nil {
		return FromMatrix(w.name, w.shape, w.mat.Scale(s))
	}
	if w.op != nil {
		out := FromOperator(w.name, w.shape, linalg.ScaleOp(w.op, s))
		if w.gramFactors != nil {
			// Fold s² into the first factor to keep the product form.
			out.gramFactors = append([]*linalg.Matrix(nil), w.gramFactors...)
			out.gramFactors[0] = out.gramFactors[0].Scale(s * s)
		}
		return out
	}
	return fromGram(w.name, w.shape, w.m, w.Gram().Scale(s*s))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Identity returns the identity workload (every base cell count).
func Identity(shape domain.Shape) *Workload {
	return FromMatrix("identity "+shape.String(), shape, linalg.Identity(shape.Size()))
}

// randPerm draws a permutation using the supplied source, so experiments
// are reproducible.
func randPerm(r *rand.Rand, n int) []int { return r.Perm(n) }
