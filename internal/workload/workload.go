// Package workload constructs the query workloads evaluated in the paper:
// all-range and random range queries, k-way marginals and range marginals,
// CDF (prefix) workloads, random predicate queries, and the running example
// of Fig. 1, together with transformations (column permutation, row
// normalization for relative error, unions).
//
// A Workload wraps a set of m linear counting queries over n cells. For
// error analysis only the Gram matrix WᵀW and the row count m matter
// (Prop. 4), so very large structured workloads — all range queries on
// 2048 cells have ~2.1M rows — are represented implicitly by an
// analytically-computed Gram matrix. Explicit rows are kept whenever the
// workload is small enough to materialize, which the mechanism needs to
// actually answer queries on data.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
)

// Workload is a set of linear counting queries over a cell domain.
type Workload struct {
	name  string
	shape domain.Shape
	m     int            // number of queries
	mat   *linalg.Matrix // explicit m x n rows; nil when implicit
	gram  *linalg.Matrix // cached WᵀW
	// gramFactors, when non-nil, are per-dimension matrices whose Kronecker
	// product equals the Gram matrix — set by product-form builders like
	// AllRange so the eigendecomposition can be composed per dimension.
	gramFactors []*linalg.Matrix
}

// maxExplicitEntries caps how many matrix entries (rows × cells) the
// builders will materialize before switching to implicit Gram form.
const maxExplicitEntries = 8 << 20

// FromMatrix wraps an explicit query matrix as a workload. The number of
// columns must match the shape's cell count.
func FromMatrix(name string, shape domain.Shape, m *linalg.Matrix) *Workload {
	if m.Cols() != shape.Size() {
		panic(fmt.Sprintf("workload: matrix has %d cols for shape %v (%d cells)", m.Cols(), shape, shape.Size()))
	}
	return &Workload{name: name, shape: shape, m: m.Rows(), mat: m}
}

// fromGram wraps an implicit workload known only through its Gram matrix.
func fromGram(name string, shape domain.Shape, m int, gram *linalg.Matrix) *Workload {
	if gram.Rows() != shape.Size() || gram.Cols() != shape.Size() {
		panic(fmt.Sprintf("workload: gram is %dx%d for %d cells", gram.Rows(), gram.Cols(), shape.Size()))
	}
	return &Workload{name: name, shape: shape, m: m, gram: gram}
}

// Name returns a human-readable workload label.
func (w *Workload) Name() string { return w.name }

// Shape returns the cell domain shape.
func (w *Workload) Shape() domain.Shape { return w.shape }

// Cells returns the number of cells n.
func (w *Workload) Cells() int { return w.shape.Size() }

// NumQueries returns the number of queries m.
func (w *Workload) NumQueries() int { return w.m }

// Explicit reports whether the query rows are materialized.
func (w *Workload) Explicit() bool { return w.mat != nil }

// Matrix returns the explicit m x n query matrix. It panics for implicit
// workloads; check Explicit first.
func (w *Workload) Matrix() *linalg.Matrix {
	if w.mat == nil {
		panic(fmt.Sprintf("workload: %q is implicit (m=%d); only its Gram matrix is available", w.name, w.m))
	}
	return w.mat
}

// Gram returns WᵀW, computing and caching it on first use.
func (w *Workload) Gram() *linalg.Matrix {
	if w.gram == nil {
		w.gram = w.mat.GramParallel()
	}
	return w.gram
}

// GramFactors returns per-dimension factors whose Kronecker product is the
// Gram matrix, when the workload has product form (e.g. multi-dimensional
// all-range). The second result reports availability.
func (w *Workload) GramFactors() ([]*linalg.Matrix, bool) {
	return w.gramFactors, w.gramFactors != nil
}

// SensitivityL2 returns the L2 sensitivity ‖W‖₂ (Prop. 1): the maximum L2
// column norm, read off the diagonal of the Gram matrix so it works for
// implicit workloads too.
func (w *Workload) SensitivityL2() float64 {
	g := w.Gram()
	var best float64
	for i := 0; i < g.Rows(); i++ {
		if v := g.At(i, i); v > best {
			best = v
		}
	}
	if best < 0 {
		best = 0
	}
	return sqrt(best)
}

// PermuteCells returns the workload with its cell conditions reordered by
// perm (new cell j is old cell perm[j]) — a semantically-equivalent
// workload in the sense of Prop. 5.
func (w *Workload) PermuteCells(perm []int, name string) *Workload {
	if len(perm) != w.Cells() {
		panic(fmt.Sprintf("workload: perm length %d for %d cells", len(perm), w.Cells()))
	}
	out := &Workload{name: name, shape: domain.MustShape(w.Cells()), m: w.m}
	if w.mat != nil {
		out.mat = w.mat.PermuteCols(perm)
		return out
	}
	// Permute the Gram matrix: G'_{ij} = G_{perm[i],perm[j]}.
	g := w.Gram()
	n := w.Cells()
	pg := linalg.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pg.Set(i, j, g.At(perm[i], perm[j]))
		}
	}
	out.gram = pg
	return out
}

// NormalizeRows returns a copy with every query scaled to unit L2 norm,
// the heuristic of Sec 3.4 used to optimize toward relative error.
// Zero rows are left untouched. Implicit workloads cannot be normalized.
func (w *Workload) NormalizeRows() *Workload {
	m := w.Matrix().Clone()
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v * v
		}
		if s == 0 {
			continue
		}
		inv := 1 / sqrt(s)
		for j := range row {
			row[j] *= inv
		}
	}
	return FromMatrix(w.name+" (row-normalized)", w.shape, m)
}

// Union stacks several explicit workloads over the same shape into one, as
// when combining the queries of multiple users (Sec 1).
func Union(name string, ws ...*Workload) *Workload {
	if len(ws) == 0 {
		panic("workload: empty union")
	}
	shape := ws[0].shape
	mats := make([]*linalg.Matrix, len(ws))
	for i, w := range ws {
		if !w.shape.Equal(shape) && w.Cells() != shape.Size() {
			panic(fmt.Sprintf("workload: union shape mismatch %v vs %v", w.shape, shape))
		}
		mats[i] = w.Matrix()
	}
	return FromMatrix(name, shape, linalg.StackRows(mats...))
}

// Scale returns the workload with all queries multiplied by s.
func (w *Workload) Scale(s float64) *Workload {
	if w.mat != nil {
		return FromMatrix(w.name, w.shape, w.mat.Scale(s))
	}
	return fromGram(w.name, w.shape, w.m, w.Gram().Scale(s*s))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Identity returns the identity workload (every base cell count).
func Identity(shape domain.Shape) *Workload {
	return FromMatrix("identity "+shape.String(), shape, linalg.Identity(shape.Size()))
}

// randPerm draws a permutation using the supplied source, so experiments
// are reproducible.
func randPerm(r *rand.Rand, n int) []int { return r.Perm(n) }
