package workload

import (
	"math"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
)

// AllPredicate returns the workload of all 2ⁿ−1 nonempty predicate (0/1)
// queries over the shape, one of the expressive workload classes of
// Sec 2.1/3.2. It is always implicit: a cell pair (i,j), i≠j, is covered
// by 2ⁿ⁻² predicates and a single cell by 2ⁿ⁻¹, so
//
//	WᵀW = 2ⁿ⁻²·(J + I)    (J the all-ones matrix)
//
// For n beyond a few dozen cells 2ⁿ⁻² overflows float64 dynamic range
// meaningfully, so the Gram matrix is normalized to J+I with the row count
// capped at MaxInt-safe arithmetic; all error *ratios* are unaffected by
// the global scale (they are what the paper compares), and the true scale
// is recorded in the name.
func AllPredicate(shape domain.Shape) *Workload {
	n := shape.Size()
	g := linalg.New(n, n)
	for i := 0; i < n; i++ {
		row := g.Row(i)
		for j := 0; j < n; j++ {
			if i == j {
				row[j] = 2
			} else {
				row[j] = 1
			}
		}
	}
	// Row count: 2^n − 1 saturating at the largest exact int in float64.
	m := math.MaxInt64 / 2
	if n < 62 {
		m = 1<<uint(n) - 1
	}
	return fromGram("all predicate "+shape.String()+" (gram normalized by 2^(n-2))", shape, m, g)
}
