package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestDesignAndAnswerFlow(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/design", map[string]any{"workload": "marginals:1:4x4"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Strategy == "" || d.Queries != 8 || d.Cells != 16 {
		t.Fatalf("design response %+v", d)
	}
	// Marginal workloads sit exactly on the bound; allow float round-off.
	if d.ExpectedError < d.LowerBound*(1-1e-6) {
		t.Fatalf("expected error below bound: %+v", d)
	}

	hist := make([]float64, 16)
	for i := range hist {
		hist[i] = float64(i + 1)
	}
	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "db1", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "seed": 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d: %s", resp.StatusCode, body)
	}
	var a answerResponse
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if len(a.Answers) != 8 {
		t.Fatalf("answers = %d", len(a.Answers))
	}
	if a.Ledger.Epsilon != 0.5 || a.Ledger.Delta != 1e-4 {
		t.Fatalf("ledger %+v", a.Ledger)
	}

	// A second release accumulates budget.
	_, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "db1", "histogram": hist,
		"epsilon": 0.25, "delta": 1e-4, "seed": 4,
	})
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if a.Ledger.Epsilon != 0.75 {
		t.Fatalf("ledger after second release %+v", a.Ledger)
	}

	// Ledger endpoint reflects the spend.
	resp, err := http.Get(ts.URL + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ledger map[string]Budget
	if err := json.NewDecoder(resp.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	if ledger["db1"].Epsilon != 0.75 {
		t.Fatalf("ledger endpoint %+v", ledger)
	}
}

func TestDesignWithExplicitRows(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, body := post(t, ts, "/design", map[string]any{
		"rows":  [][]float64{{1, 1, 0, 0}, {0, 0, 1, 1}},
		"shape": []int{4},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Queries != 2 || d.Cells != 4 {
		t.Fatalf("design %+v", d)
	}
}

func TestDesignValidation(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	cases := []map[string]any{
		{},
		{"workload": "bogus:4"},
		{"workload": "fig1", "rows": [][]float64{{1}}},
		{"rows": [][]float64{{1, 2}}},                    // no shape
		{"rows": [][]float64{{1, 2}}, "shape": []int{4}}, // wrong width
		{"rows": [][]float64{}, "shape": []int{2}},       // empty
	}
	for i, c := range cases {
		resp, _ := post(t, ts, "/design", c)
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestAnswerValidation(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, body := post(t, ts, "/design", map[string]any{"workload": "prefix:4"})
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	cases := []map[string]any{
		{"strategy": "nope", "dataset": "d", "histogram": []float64{1, 2, 3, 4}, "epsilon": 1, "delta": 1e-4},
		{"strategy": d.Strategy, "histogram": []float64{1, 2, 3, 4}, "epsilon": 1, "delta": 1e-4}, // no dataset
		{"strategy": d.Strategy, "dataset": "d", "histogram": []float64{1}, "epsilon": 1, "delta": 1e-4},
		{"strategy": d.Strategy, "dataset": "d", "histogram": []float64{1, 2, 3, 4}, "epsilon": 0, "delta": 1e-4},
	}
	for i, c := range cases {
		resp, _ := post(t, ts, "/answer", c)
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("case %d accepted", i)
		}
	}
	// Failed releases must not charge the ledger.
	resp, err := http.Get(ts.URL + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ledger map[string]Budget
	if err := json.NewDecoder(resp.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	if len(ledger) != 0 {
		t.Fatalf("ledger charged on failures: %+v", ledger)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/design")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /design status %d", resp.StatusCode)
	}
	resp, _ = post(t, ts, "/ledger", map[string]any{})
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /ledger status %d", resp.StatusCode)
	}
}

func TestDeterministicSeed(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	_, body := post(t, ts, "/design", map[string]any{"workload": "identity:4"})
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	req := map[string]any{
		"strategy": d.Strategy, "dataset": "d", "histogram": []float64{1, 2, 3, 4},
		"epsilon": 1, "delta": 1e-4, "seed": 42,
	}
	var a1, a2 answerResponse
	_, b1 := post(t, ts, "/answer", req)
	_, b2 := post(t, ts, "/answer", req)
	if err := json.Unmarshal(b1, &a1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &a2); err != nil {
		t.Fatal(err)
	}
	for i := range a1.Answers {
		if a1.Answers[i] != a2.Answers[i] {
			t.Fatal("same seed produced different answers")
		}
	}
}
