package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestDesignAndAnswerFlow(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/design", map[string]any{"workload": "marginals:1:4x4"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Strategy == "" || d.Queries != 8 || d.Cells != 16 {
		t.Fatalf("design response %+v", d)
	}
	// Marginal workloads sit exactly on the bound; allow float round-off.
	if d.ExpectedError < d.LowerBound*(1-1e-6) {
		t.Fatalf("expected error below bound: %+v", d)
	}

	hist := make([]float64, 16)
	for i := range hist {
		hist[i] = float64(i + 1)
	}
	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "db1", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "seed": 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d: %s", resp.StatusCode, body)
	}
	var a answerResponse
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if len(a.Answers) != 8 {
		t.Fatalf("answers = %d", len(a.Answers))
	}
	if a.Ledger.Epsilon != 0.5 || a.Ledger.Delta != 1e-4 {
		t.Fatalf("ledger %+v", a.Ledger)
	}

	// A second release accumulates budget.
	_, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "db1", "histogram": hist,
		"epsilon": 0.25, "delta": 1e-4, "seed": 4,
	})
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if a.Ledger.Epsilon != 0.75 {
		t.Fatalf("ledger after second release %+v", a.Ledger)
	}

	// Ledger endpoint reflects the spend.
	resp, err := http.Get(ts.URL + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ledger map[string]Budget
	if err := json.NewDecoder(resp.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	// Inline-histogram releases are accounted in the ad-hoc namespace.
	if ledger["adhoc:db1"].Epsilon != 0.75 {
		t.Fatalf("ledger endpoint %+v", ledger)
	}
}

func TestDesignWithExplicitRows(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, body := post(t, ts, "/design", map[string]any{
		"rows":  [][]float64{{1, 1, 0, 0}, {0, 0, 1, 1}},
		"shape": []int{4},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Queries != 2 || d.Cells != 4 {
		t.Fatalf("design %+v", d)
	}
}

func TestDesignValidation(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	cases := []map[string]any{
		{},
		{"workload": "bogus:4"},
		{"workload": "fig1", "rows": [][]float64{{1}}},
		{"rows": [][]float64{{1, 2}}},                    // no shape
		{"rows": [][]float64{{1, 2}}, "shape": []int{4}}, // wrong width
		{"rows": [][]float64{}, "shape": []int{2}},       // empty
	}
	for i, c := range cases {
		resp, _ := post(t, ts, "/design", c)
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestAnswerValidation(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, body := post(t, ts, "/design", map[string]any{"workload": "prefix:4"})
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	cases := []map[string]any{
		{"strategy": "nope", "dataset": "d", "histogram": []float64{1, 2, 3, 4}, "epsilon": 1, "delta": 1e-4},
		{"strategy": d.Strategy, "histogram": []float64{1, 2, 3, 4}, "epsilon": 1, "delta": 1e-4}, // no dataset
		{"strategy": d.Strategy, "dataset": "d", "histogram": []float64{1}, "epsilon": 1, "delta": 1e-4},
		{"strategy": d.Strategy, "dataset": "d", "histogram": []float64{1, 2, 3, 4}, "epsilon": 0, "delta": 1e-4},
	}
	for i, c := range cases {
		resp, _ := post(t, ts, "/answer", c)
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("case %d accepted", i)
		}
	}
	// Failed releases must not charge the ledger.
	resp, err := http.Get(ts.URL + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ledger map[string]Budget
	if err := json.NewDecoder(resp.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	if len(ledger) != 0 {
		t.Fatalf("ledger charged on failures: %+v", ledger)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/design")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /design status %d", resp.StatusCode)
	}
	resp, _ = post(t, ts, "/ledger", map[string]any{})
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /ledger status %d", resp.StatusCode)
	}
}

func TestDeterministicSeed(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	_, body := post(t, ts, "/design", map[string]any{"workload": "identity:4"})
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	req := map[string]any{
		"strategy": d.Strategy, "dataset": "d", "histogram": []float64{1, 2, 3, 4},
		"epsilon": 1, "delta": 1e-4, "seed": 42,
	}
	var a1, a2 answerResponse
	_, b1 := post(t, ts, "/answer", req)
	_, b2 := post(t, ts, "/answer", req)
	if err := json.Unmarshal(b1, &a1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &a2); err != nil {
		t.Fatal(err)
	}
	for i := range a1.Answers {
		if a1.Answers[i] != a2.Answers[i] {
			t.Fatal("same seed produced different answers")
		}
	}
}

// TestLargeDomainHierarchicalDesign exercises the scalability path the
// dense pipeline refused: all range queries over 2048 cells (~2.1M rows)
// are designed with the structured hierarchical strategy and answered in
// estimate mode, all matrix-free.
func TestLargeDomainHierarchicalDesign(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/design", map[string]any{"workload": "allrange:2048"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Cells != 2048 || d.Queries != 2048*2049/2 {
		t.Fatalf("design response %+v", d)
	}
	if d.Form != "hierarchical" {
		t.Fatalf("form = %q, want hierarchical", d.Form)
	}

	hist := make([]float64, 2048)
	for i := range hist {
		hist[i] = float64(i % 13)
	}
	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "big", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "seed": 5, "mode": "estimate",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d: %s", resp.StatusCode, body)
	}
	var a answerResponse
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if len(a.Answers) != 2048 {
		t.Fatalf("estimate length %d, want 2048", len(a.Answers))
	}

	// The default answers mode is capped: 2.1M per-query answers would be
	// an unbounded response, so the server must refuse with guidance.
	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "big", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "seed": 6,
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("uncapped answers mode: status %d: %s", resp.StatusCode, body)
	}
}

// TestLargeProductDomainPrincipalDesign checks that 2-D product workloads
// past the dense cap get the factored principal-vector design.
func TestLargeProductDomainPrincipalDesign(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/design", map[string]any{"workload": "allrange:48x48"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Form != "principal" {
		t.Fatalf("form = %q, want principal", d.Form)
	}
	if d.LowerBound <= 0 {
		t.Fatalf("expected a positive lower bound from the factored eigenvalues, got %+v", d)
	}

	hist := make([]float64, 48*48)
	for i := range hist {
		hist[i] = float64(i % 5)
	}
	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "big2d", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "seed": 6, "mode": "estimate",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d: %s", resp.StatusCode, body)
	}
	var a answerResponse
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if len(a.Answers) != 48*48 {
		t.Fatalf("estimate length %d", len(a.Answers))
	}
}

// TestConcurrentAnswersAndLedger hammers /answer and /ledger in parallel;
// with the read-write lock, reads proceed concurrently and the ledger
// total must still come out exact. Run under -race in CI.
func TestConcurrentAnswersAndLedger(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	_, body := post(t, ts, "/design", map[string]any{"workload": "identity:16"})
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, 16)

	// postQuiet avoids t.Fatal off the test goroutine: failures flow
	// through the errs channel instead.
	postQuiet := func(path string, body any) (int, []byte, error) {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		if _, err := out.ReadFrom(resp.Body); err != nil {
			return resp.StatusCode, nil, err
		}
		return resp.StatusCode, out.Bytes(), nil
	}

	const workers = 8
	const releases = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < releases; i++ {
				code, body, err := postQuiet("/answer", map[string]any{
					"strategy": d.Strategy, "dataset": "shared", "histogram": hist,
					"epsilon": 0.1, "delta": 1e-5, "seed": int64(g*1000 + i + 1),
				})
				if err != nil {
					errs <- err
					return
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("answer status %d: %s", code, body)
					return
				}
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < releases; i++ {
				resp, err := http.Get(ts.URL + "/ledger")
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ledger map[string]Budget
	if err := json.NewDecoder(resp.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	want := 0.1 * workers * releases
	if got := ledger["adhoc:shared"].Epsilon; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("ledger epsilon = %g, want %g", got, want)
	}
}

// TestAnswerModeValidation rejects unknown release modes.
func TestAnswerModeValidation(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	_, body := post(t, ts, "/design", map[string]any{"workload": "identity:4"})
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	resp, _ := post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "d", "histogram": []float64{1, 2, 3, 4},
		"epsilon": 1, "delta": 1e-4, "mode": "bogus",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus mode status %d", resp.StatusCode)
	}
}

// Every /design response must name the winning generator with its modeled
// cost and inference method, and list every candidate's admission outcome
// — the planner is the only place strategy selection happens.
func TestDesignPlannerReport(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/design", map[string]any{"workload": "marginals:2:8x8x4"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Planner.Generator != "marginals" {
		t.Fatalf("generator = %q, want marginals (closed-form optimal)", d.Planner.Generator)
	}
	if d.Form != "marginals" {
		t.Fatalf("form = %q, want marginals", d.Form)
	}
	if d.Planner.ModeledCost <= 0 {
		t.Fatalf("modeled cost %g not reported", d.Planner.ModeledCost)
	}
	if d.Planner.Inference == "" {
		t.Fatal("inference method not reported")
	}
	if len(d.Planner.Considered) < 4 {
		t.Fatalf("expected every registered generator in the report, got %+v", d.Planner.Considered)
	}
	var selected int
	for _, dec := range d.Planner.Considered {
		if dec.Selected {
			selected++
			if dec.Generator != "marginals" {
				t.Fatalf("selected decision = %+v", dec)
			}
		}
	}
	if selected != 1 {
		t.Fatalf("%d selected decisions, want exactly 1", selected)
	}
	// The closed-form marginal design meets the Thm 2 bound exactly.
	if d.LowerBound <= 0 || d.ExpectedError > d.LowerBound*(1+1e-6) {
		t.Fatalf("marginal design error %g above lower bound %g", d.ExpectedError, d.LowerBound)
	}
}

// Design-time hints steer the planner: a tight budget refuses the exact
// design a loose one admits, and the hints are part of the cache key so
// the two requests yield distinct strategies.
func TestDesignHintsChangeGeneratorAndCacheKey(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	var tight, loose designResponse
	resp, body := post(t, ts, "/design", map[string]any{"workload": "prefix:128", "maxDesignMillis": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tight design status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &tight); err != nil {
		t.Fatal(err)
	}
	if tight.Planner.Generator != "hierarchical" {
		t.Fatalf("tight-budget generator = %q, want hierarchical", tight.Planner.Generator)
	}
	resp, body = post(t, ts, "/design", map[string]any{"workload": "prefix:128"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("loose design status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &loose); err != nil {
		t.Fatal(err)
	}
	if loose.Planner.Generator != "eigen" {
		t.Fatalf("default-budget generator = %q, want eigen", loose.Planner.Generator)
	}
	if tight.Strategy == loose.Strategy {
		t.Fatal("different hints reused one cached strategy id")
	}
	if tight.Cached || loose.Cached {
		t.Fatal("fresh designs reported cached")
	}
	// Same spec and hints: cache hit with the same id and planner report.
	resp, body = post(t, ts, "/design", map[string]any{"workload": "prefix:128", "maxDesignMillis": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat design status %d: %s", resp.StatusCode, body)
	}
	var again designResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Strategy != tight.Strategy || again.Planner.Generator != "hierarchical" {
		t.Fatalf("cache hit response %+v", again)
	}
}

// A forced generator hint overrides the cost-based choice.
func TestDesignForcedGenerator(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/design", map[string]any{"workload": "prefix:64", "generator": "identity"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Planner.Generator != "identity" || d.Form != "identity" {
		t.Fatalf("forced generator response %+v", d.Planner)
	}
	resp, body = post(t, ts, "/design", map[string]any{"workload": "prefix:64", "generator": "no-such"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown generator status %d: %s", resp.StatusCode, body)
	}
}

// The strategy table is permanent server state: past its bound, /design
// refuses with 507 instead of growing without limit (a client sweeping
// hint values or posting explicit rows would otherwise mint unbounded
// entries).
func TestStrategyTableBound(t *testing.T) {
	s := New()
	s.mu.Lock()
	for i := 0; i < maxStoredStrategies; i++ {
		s.strategies[fmt.Sprintf("fill%d", i)] = nil
	}
	s.mu.Unlock()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := post(t, ts, "/design", map[string]any{"workload": "identity:16"})
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("design past the strategy bound: status %d: %s", resp.StatusCode, body)
	}
}

// A marginal workload with ≥2 disjoint attribute blocks is planned
// sharded by default: the planner block lists every shard's generator,
// releases run the composite end to end (mode "estimate" is refused with
// guidance), and batch /release drives the sharded strategy too.
func TestDesignShardedPlannerBlock(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/design", map[string]any{"workload": "marginals:1:16x16"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Planner.Generator != "sharded" || d.Form != "sharded" {
		t.Fatalf("generator = %q form = %q, want sharded", d.Planner.Generator, d.Form)
	}
	if d.Planner.Inference != "sharded" {
		t.Fatalf("inference = %q, want sharded", d.Planner.Inference)
	}
	if len(d.Planner.Shards) != 2 {
		t.Fatalf("planner block lists %d shards, want 2: %+v", len(d.Planner.Shards), d.Planner.Shards)
	}
	for i, s := range d.Planner.Shards {
		if s.Generator != "marginals" || s.Cells != 16 || s.Kind != "marginal-block" {
			t.Fatalf("shard %d = %+v", i, s)
		}
	}
	if d.ExpectedError <= 0 {
		t.Fatalf("sharded plan lost its combined error analysis: %+v", d)
	}

	hist := make([]float64, 256)
	for i := range hist {
		hist[i] = float64(i % 9)
	}
	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "sharddb", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d: %s", resp.StatusCode, body)
	}
	var ans answerResponse
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatal(err)
	}
	if len(ans.Answers) != d.Queries {
		t.Fatalf("got %d answers, want %d", len(ans.Answers), d.Queries)
	}

	// Sharded strategies have no joint histogram estimate.
	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "sharddb2", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "mode": "estimate",
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("estimate on sharded strategy: status %d, want 422: %s", resp.StatusCode, body)
	}

	// Batch releases reuse the shard-parallel release path.
	resp, body = post(t, ts, "/datasets", map[string]any{"name": "regd", "histogram": hist})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("datasets status %d: %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts, "/release", map[string]any{
		"releases": []map[string]any{
			{"strategy": d.Strategy, "dataset": "regd", "epsilon": 0.2, "delta": 1e-5},
			{"strategy": d.Strategy, "dataset": "regd", "epsilon": 0.2, "delta": 1e-5},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release status %d: %s", resp.StatusCode, body)
	}
	var batch batchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Succeeded != 2 || batch.Failed != 0 {
		t.Fatalf("batch outcome %+v", batch)
	}
}
