package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestDesignAndAnswerFlow(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/design", map[string]any{"workload": "marginals:1:4x4"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Strategy == "" || d.Queries != 8 || d.Cells != 16 {
		t.Fatalf("design response %+v", d)
	}
	// Marginal workloads sit exactly on the bound; allow float round-off.
	if d.ExpectedError < d.LowerBound*(1-1e-6) {
		t.Fatalf("expected error below bound: %+v", d)
	}

	hist := make([]float64, 16)
	for i := range hist {
		hist[i] = float64(i + 1)
	}
	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "db1", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "seed": 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d: %s", resp.StatusCode, body)
	}
	var a answerResponse
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if len(a.Answers) != 8 {
		t.Fatalf("answers = %d", len(a.Answers))
	}
	if a.Ledger.Epsilon != 0.5 || a.Ledger.Delta != 1e-4 {
		t.Fatalf("ledger %+v", a.Ledger)
	}

	// A second release accumulates budget.
	_, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "db1", "histogram": hist,
		"epsilon": 0.25, "delta": 1e-4, "seed": 4,
	})
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if a.Ledger.Epsilon != 0.75 {
		t.Fatalf("ledger after second release %+v", a.Ledger)
	}

	// Ledger endpoint reflects the spend.
	resp, err := http.Get(ts.URL + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ledger map[string]Budget
	if err := json.NewDecoder(resp.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	// Inline-histogram releases are accounted in the ad-hoc namespace.
	if ledger["adhoc:db1"].Epsilon != 0.75 {
		t.Fatalf("ledger endpoint %+v", ledger)
	}
}

func TestDesignWithExplicitRows(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, body := post(t, ts, "/design", map[string]any{
		"rows":  [][]float64{{1, 1, 0, 0}, {0, 0, 1, 1}},
		"shape": []int{4},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Queries != 2 || d.Cells != 4 {
		t.Fatalf("design %+v", d)
	}
}

func TestDesignValidation(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	cases := []map[string]any{
		{},
		{"workload": "bogus:4"},
		{"workload": "fig1", "rows": [][]float64{{1}}},
		{"rows": [][]float64{{1, 2}}},                    // no shape
		{"rows": [][]float64{{1, 2}}, "shape": []int{4}}, // wrong width
		{"rows": [][]float64{}, "shape": []int{2}},       // empty
	}
	for i, c := range cases {
		resp, _ := post(t, ts, "/design", c)
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestAnswerValidation(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, body := post(t, ts, "/design", map[string]any{"workload": "prefix:4"})
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	cases := []map[string]any{
		{"strategy": "nope", "dataset": "d", "histogram": []float64{1, 2, 3, 4}, "epsilon": 1, "delta": 1e-4},
		{"strategy": d.Strategy, "histogram": []float64{1, 2, 3, 4}, "epsilon": 1, "delta": 1e-4}, // no dataset
		{"strategy": d.Strategy, "dataset": "d", "histogram": []float64{1}, "epsilon": 1, "delta": 1e-4},
		{"strategy": d.Strategy, "dataset": "d", "histogram": []float64{1, 2, 3, 4}, "epsilon": 0, "delta": 1e-4},
	}
	for i, c := range cases {
		resp, _ := post(t, ts, "/answer", c)
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("case %d accepted", i)
		}
	}
	// Failed releases must not charge the ledger.
	resp, err := http.Get(ts.URL + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ledger map[string]Budget
	if err := json.NewDecoder(resp.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	if len(ledger) != 0 {
		t.Fatalf("ledger charged on failures: %+v", ledger)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/design")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /design status %d", resp.StatusCode)
	}
	resp, _ = post(t, ts, "/ledger", map[string]any{})
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /ledger status %d", resp.StatusCode)
	}
}

func TestDeterministicSeed(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	_, body := post(t, ts, "/design", map[string]any{"workload": "identity:4"})
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	req := map[string]any{
		"strategy": d.Strategy, "dataset": "d", "histogram": []float64{1, 2, 3, 4},
		"epsilon": 1, "delta": 1e-4, "seed": 42,
	}
	var a1, a2 answerResponse
	_, b1 := post(t, ts, "/answer", req)
	_, b2 := post(t, ts, "/answer", req)
	if err := json.Unmarshal(b1, &a1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &a2); err != nil {
		t.Fatal(err)
	}
	for i := range a1.Answers {
		if a1.Answers[i] != a2.Answers[i] {
			t.Fatal("same seed produced different answers")
		}
	}
}

// TestLargeDomainHierarchicalDesign exercises the scalability path the
// dense pipeline refused: all range queries over 2048 cells (~2.1M rows)
// are designed with the structured hierarchical strategy and answered in
// estimate mode, all matrix-free.
func TestLargeDomainHierarchicalDesign(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/design", map[string]any{"workload": "allrange:2048"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Cells != 2048 || d.Queries != 2048*2049/2 {
		t.Fatalf("design response %+v", d)
	}
	if d.Form != "hierarchical" {
		t.Fatalf("form = %q, want hierarchical", d.Form)
	}

	hist := make([]float64, 2048)
	for i := range hist {
		hist[i] = float64(i % 13)
	}
	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "big", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "seed": 5, "mode": "estimate",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d: %s", resp.StatusCode, body)
	}
	var a answerResponse
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if len(a.Answers) != 2048 {
		t.Fatalf("estimate length %d, want 2048", len(a.Answers))
	}

	// The default answers mode is capped: 2.1M per-query answers would be
	// an unbounded response, so the server must refuse with guidance.
	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "big", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "seed": 6,
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("uncapped answers mode: status %d: %s", resp.StatusCode, body)
	}
}

// TestLargeProductDomainPrincipalDesign checks that 2-D product workloads
// past the dense cap get the factored principal-vector design.
func TestLargeProductDomainPrincipalDesign(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/design", map[string]any{"workload": "allrange:48x48"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Form != "principal" {
		t.Fatalf("form = %q, want principal", d.Form)
	}
	if d.LowerBound <= 0 {
		t.Fatalf("expected a positive lower bound from the factored eigenvalues, got %+v", d)
	}

	hist := make([]float64, 48*48)
	for i := range hist {
		hist[i] = float64(i % 5)
	}
	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "big2d", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "seed": 6, "mode": "estimate",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d: %s", resp.StatusCode, body)
	}
	var a answerResponse
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if len(a.Answers) != 48*48 {
		t.Fatalf("estimate length %d", len(a.Answers))
	}
}

// TestConcurrentAnswersAndLedger hammers /answer and /ledger in parallel;
// with the read-write lock, reads proceed concurrently and the ledger
// total must still come out exact. Run under -race in CI.
func TestConcurrentAnswersAndLedger(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	_, body := post(t, ts, "/design", map[string]any{"workload": "identity:16"})
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, 16)

	// postQuiet avoids t.Fatal off the test goroutine: failures flow
	// through the errs channel instead.
	postQuiet := func(path string, body any) (int, []byte, error) {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		if _, err := out.ReadFrom(resp.Body); err != nil {
			return resp.StatusCode, nil, err
		}
		return resp.StatusCode, out.Bytes(), nil
	}

	const workers = 8
	const releases = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < releases; i++ {
				code, body, err := postQuiet("/answer", map[string]any{
					"strategy": d.Strategy, "dataset": "shared", "histogram": hist,
					"epsilon": 0.1, "delta": 1e-5, "seed": int64(g*1000 + i + 1),
				})
				if err != nil {
					errs <- err
					return
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("answer status %d: %s", code, body)
					return
				}
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < releases; i++ {
				resp, err := http.Get(ts.URL + "/ledger")
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ledger map[string]Budget
	if err := json.NewDecoder(resp.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	want := 0.1 * workers * releases
	if got := ledger["adhoc:shared"].Epsilon; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("ledger epsilon = %g, want %g", got, want)
	}
}

// TestAnswerModeValidation rejects unknown release modes.
func TestAnswerModeValidation(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	_, body := post(t, ts, "/design", map[string]any{"workload": "identity:4"})
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	resp, _ := post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "d", "histogram": []float64{1, 2, 3, 4},
		"epsilon": 1, "delta": 1e-4, "mode": "bogus",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus mode status %d", resp.StatusCode)
	}
}
