package server

import (
	"encoding/json"
	"errors"
	"fmt"
	//lint:allow noiserand: client-pinned seeds for reproducible releases against ad-hoc data; registered datasets refuse seeds unless -allow-seeded (see resolveAndReserve)
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"adaptivemm/internal/accountant"
	"adaptivemm/internal/fleet"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/obs"
	"adaptivemm/internal/registry"
)

// maxBatchReleases bounds one /release body; bigger jobs should be split
// into several requests so no single call monopolizes the server.
const maxBatchReleases = 256

// defaultBatchParallelism is how many releases of one batch run
// concurrently when the request does not choose.
const defaultBatchParallelism = 8

type answerRequest struct {
	Strategy string `json:"strategy"`
	Dataset  string `json:"dataset"`
	// Histogram carries the data inline; omit it to release against a
	// dataset registered via POST /datasets.
	Histogram []float64 `json:"histogram,omitempty"`
	Epsilon   float64   `json:"epsilon"`
	Delta     float64   `json:"delta"`
	// Seed pins the noise stream for reproducible experiments against
	// inline (ad-hoc) histograms. Absent (null) selects fresh
	// crypto-seeded noise; an explicit 0 is a valid seed, not "absent".
	// Releases against registered datasets refuse pinned seeds: the
	// requester could regenerate the stream, subtract the noise and
	// recover the exact data while paying only the nominal ε.
	Seed *int64 `json:"seed,omitempty"`
	// Mode selects the release payload: "answers" (default) returns the m
	// workload answers, "estimate" the n-cell histogram estimate.
	Mode string `json:"mode,omitempty"`
	// Stream selects the NDJSON streaming response on POST /release (see
	// stream.go): answers arrive chunk by chunk under chunked transfer
	// encoding, exempt from the buffered payload cap.
	Stream bool `json:"stream,omitempty"`
	// ChunkSize is the streamed chunk size in answers (default
	// mm.DefaultStreamChunk, server-clamped to maxStreamChunk).
	ChunkSize int `json:"chunkSize,omitempty"`
	// Trace opts this release into per-stage tracing: the response's
	// ledger block echoes the trace (id + spans), and the full record —
	// status, total duration, per-shard spans on a coordinator — is
	// kept at GET /debug/traces. Tracing allocates, so it is never on
	// by default.
	Trace bool `json:"trace,omitempty"`
}

type answerResponse struct {
	Answers []float64 `json:"answers"`
	Ledger  Budget    `json:"ledger"`
}

// releaseError carries an HTTP status, a message, and — for budget
// refusals — the remaining budget to surface to the analyst.
type releaseError struct {
	code      int
	msg       string
	remaining *Budget
}

func (e *releaseError) Error() string { return e.msg }

func releaseErrorf(code int, format string, args ...any) *releaseError {
	return &releaseError{code: code, msg: fmt.Sprintf(format, args...)}
}

// releaseOut carries one successful release's answers, which live in a
// scratch rented from the mechanism's pool. The handler encodes the
// answers and then calls done() to return the scratch; holding the
// scratch until encoding is what keeps the hot path free of a per-release
// answer copy.
type releaseOut struct {
	ans  []float64
	sc   *mm.ReleaseScratch
	mech *mm.Mechanism
}

// done returns the scratch to its mechanism's pool. The answers are
// invalid afterwards. Safe to call more than once.
func (o *releaseOut) done() {
	if o.sc != nil {
		o.mech.PutScratch(o.sc)
		o.sc = nil
		o.ans = nil
	}
}

// release runs one differentially private release end to end: validate,
// resolve the dataset, reserve budget, draw noise, infer, and commit (or
// refund on failure). It is the /answer entry point; the batch path calls
// releaseWith directly with its strategy snapshot.
func (s *Server) release(req *answerRequest, tr *obs.Trace) (releaseOut, Budget, *releaseError) {
	s.mu.RLock()
	ent := s.strategies[req.Strategy]
	s.mu.RUnlock()
	return s.releaseWith(req, ent, tr)
}

// releaseWith is the shared release core. ent is the caller's resolution
// of req.Strategy (nil for unknown): the batch path passes its snapshot so
// the aggregate payload pre-check and execution share one source of truth.
func (s *Server) releaseWith(req *answerRequest, ent *entry, tr *obs.Trace) (releaseOut, Budget, *releaseError) {
	t0 := time.Now()
	if req.Dataset == "" {
		return releaseOut{}, Budget{}, releaseErrorf(http.StatusBadRequest, "dataset name required for budget accounting")
	}
	if req.Mode != "" && req.Mode != "answers" && req.Mode != "estimate" {
		return releaseOut{}, Budget{}, releaseErrorf(http.StatusBadRequest, "mode %q not recognized (want answers or estimate)", req.Mode)
	}
	p := mm.Privacy{Epsilon: req.Epsilon, Delta: req.Delta}
	if err := p.Validate(); err != nil {
		return releaseOut{}, Budget{}, releaseErrorf(http.StatusBadRequest, "%v", err)
	}
	if ent == nil {
		return releaseOut{}, Budget{}, releaseErrorf(http.StatusNotFound, "unknown strategy %q", req.Strategy)
	}
	// Both modes share one response payload cap: m answers or n estimate
	// cells, either can be the oversized one.
	if req.Mode == "estimate" {
		if ent.plan.Mechanism.Shards() != nil {
			// A sharded plan estimates per-shard sub-histograms, not the
			// n-cell joint histogram (for marginal blocks the joint is never
			// measured); the honest payload is the workload answers.
			return releaseOut{}, Budget{}, releaseErrorf(http.StatusUnprocessableEntity,
				"strategy %q is sharded and has no single joint histogram estimate; request mode \"answers\" instead", req.Strategy)
		}
		if ent.plan.Workload.Cells() > maxAnswerRows {
			return releaseOut{}, Budget{}, releaseErrorf(http.StatusRequestEntityTooLarge,
				"histogram estimate has %d cells, past the %d-value response cap; a domain this large cannot be released over HTTP — use the library API",
				ent.plan.Workload.Cells(), maxAnswerRows)
		}
	} else if ent.plan.Workload.NumQueries() > maxAnswerRows {
		// Only point at estimate mode when it would actually fit.
		hint := "; a workload this large cannot be released over HTTP — use the library API"
		if ent.plan.Workload.Cells() <= maxAnswerRows {
			hint = "; request mode \"estimate\" instead"
		}
		return releaseOut{}, Budget{}, releaseErrorf(http.StatusRequestEntityTooLarge,
			"workload has %d queries, past the %d-answer response cap%s",
			ent.plan.Workload.NumQueries(), maxAnswerRows, hint)
	}

	hist, acctName, res, rerr := s.resolveAndReserve(req, ent, p)
	if rerr != nil {
		return releaseOut{}, Budget{}, rerr
	}
	// Settle by defer: Refund after Commit is a no-op, and a panic in the
	// mechanism can never leak a reservation that would permanently shrink
	// the dataset's available budget.
	defer res.Refund()

	// Noise: deterministic only when the request pins a seed; the default
	// is a pooled crypto source, so "unseeded" releases are unpredictable
	// across requests and across server restarts while the hot path skips
	// per-release source construction.
	var noise mm.NoiseSource
	var cs *mm.CryptoSource
	if req.Seed != nil {
		noise = rand.New(rand.NewSource(*req.Seed))
	} else {
		cs = mm.AcquireCryptoSource()
		noise = cs
	}
	defer func() {
		if cs != nil {
			mm.ReleaseCryptoSource(cs)
		}
	}()

	mech := ent.plan.Mechanism
	sc := mech.GetScratch()
	// The trace rides the scratch through the mechanism: stage spans
	// (answer/noise/infer) and per-shard spans land on it from inside
	// the release kernels. PutScratch clears it.
	sc.Trace = tr
	var ans []float64
	var err error
	if req.Mode == "estimate" {
		ans, err = mech.EstimateGaussianInto(sc, hist, p, noise)
	} else {
		ans, err = mech.AnswerGaussianInto(sc, ent.plan.Workload, hist, p, noise)
	}
	if err != nil {
		mech.PutScratch(sc)
		return releaseOut{}, Budget{}, releaseErrorf(http.StatusUnprocessableEntity, "%v", err)
	}
	res.Commit()
	s.metrics.releases.Inc()
	s.metrics.releaseSec.ObserveSince(t0)
	//lint:allow poolescape: intended ownership transfer — releaseOut carries the scratch to the response encoder, which returns it via done()
	return releaseOut{ans: ans, sc: sc, mech: mech}, fromAcct(s.acct.Spent(acctName)), nil
}

// resolveAndReserve resolves the request's histogram and reserves its
// budget while holding regMu, the same lock POST /datasets registers
// under, so the registered/inline classification of a name and the
// installation of its cap can never interleave with a reservation. It
// returns the accountant key actually charged: registered releases charge
// the dataset name (whose cap was installed before the dataset became
// resolvable), inline releases charge adHocPrefix+name — a disjoint
// namespace, so ad-hoc spend can neither pre-hollow a future cap nor
// squat a name against future registration.
func (s *Server) resolveAndReserve(req *answerRequest, ent *entry, p mm.Privacy) ([]float64, string, *accountant.Reservation, *releaseError) {
	s.regMu.Lock()
	defer s.regMu.Unlock()

	hist := req.Histogram
	acctName := adHocPrefix + req.Dataset
	if hist == nil {
		d, err := s.reg.Get(req.Dataset)
		if err != nil {
			if errors.Is(err, registry.ErrNotFound) {
				return nil, "", nil, releaseErrorf(http.StatusNotFound,
					"dataset %q not registered; POST /datasets first or provide an inline histogram", req.Dataset)
			}
			return nil, "", nil, releaseErrorf(http.StatusBadRequest, "%v", err)
		}
		hist = d.Histogram
		acctName = req.Dataset
	} else if _, err := s.reg.Get(req.Dataset); err == nil {
		return nil, "", nil, releaseErrorf(http.StatusBadRequest,
			"dataset %q is registered; omit the inline histogram so releases answer the registered data", req.Dataset)
	}
	if len(hist) != ent.plan.Workload.Cells() {
		return nil, "", nil, releaseErrorf(http.StatusBadRequest,
			"histogram has %d cells, workload expects %d", len(hist), ent.plan.Workload.Cells())
	}
	// Accountant entries are never evicted, so brand-new ad-hoc names are
	// admitted only while the tracked-dataset count is under its bound —
	// otherwise a client cycling fresh names grows the ledger without
	// limit. regMu makes the check-then-reserve atomic.
	if acctName != req.Dataset && !s.acct.Tracked(acctName) && s.acct.Len() >= maxTrackedDatasets {
		return nil, "", nil, releaseErrorf(http.StatusInsufficientStorage,
			"server is tracking its limit of %d dataset ledgers; reuse an existing dataset name or register the dataset", maxTrackedDatasets)
	}
	// A client-pinned seed lets the requester regenerate the noise stream,
	// subtract it from the answers and recover the exact registered data —
	// total privacy loss at nominal ε cost, nullifying the budget cap. The
	// deterministic path stays available for inline ad-hoc data (which the
	// client supplied in the first place) and behind a server-side debug
	// flag; reproducible experiments belong in the library API.
	if acctName == req.Dataset && req.Seed != nil && !s.allowSeeded {
		return nil, "", nil, releaseErrorf(http.StatusForbidden,
			"seed refused: pinned noise seeds would make releases against registered dataset %q predictable and defeat its privacy budget; omit the seed (or run the server with seeded releases explicitly enabled for debugging)", req.Dataset)
	}

	// Reserve before drawing any noise: concurrent releases against one
	// capped dataset can never jointly overspend, and a refused release
	// costs nothing.
	res, err := s.acct.Reserve(acctName, accountant.Budget{Epsilon: p.Epsilon, Delta: p.Delta})
	if err != nil {
		var over *accountant.OverBudgetError
		if errors.As(err, &over) {
			s.metrics.refusals.Inc()
			rem := fromAcct(over.Remaining)
			return nil, "", nil, &releaseError{
				code:      http.StatusTooManyRequests,
				msg:       fmt.Sprintf("release refused: %v", err),
				remaining: &rem,
			}
		}
		return nil, "", nil, releaseErrorf(http.StatusBadRequest, "%v", err)
	}
	return hist, acctName, res, nil
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req answerRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Stream {
		httpError(w, http.StatusBadRequest, "streaming releases are served by POST /release with \"stream\": true")
		return
	}
	var tr *obs.Trace
	if req.Trace {
		tr = obs.NewTrace("answer", r.Header.Get(fleet.TraceHeader))
	}
	out, ledger, rerr := s.release(&req, tr)
	if rerr != nil {
		tr.Finish(rerr.code)
		s.metrics.ring.Put(tr)
		writeReleaseError(w, rerr)
		return
	}
	// The success body is numeric-only, so it is hand-encoded into a
	// pooled buffer (see jsonenc.go) and written once, with the scratch
	// held until the answers are serialized.
	b := getBuf()
	*b = append(*b, `{"answers":`...)
	tser := time.Now()
	*b = appendFloats(*b, out.ans)
	s.metrics.serializeSec.ObserveSince(tser)
	tr.AddSpan("serialize", tser)
	*b = append(*b, `,"ledger":`...)
	*b = appendBudgetTrace(*b, ledger, tr)
	*b = append(*b, '}', '\n')
	out.done()
	tr.Finish(http.StatusOK)
	s.metrics.ring.Put(tr)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(*b)))
	_, _ = w.Write(*b)
	putBuf(b)
}

// writeReleaseError writes the error with the remaining budget attached
// for budget refusals.
func writeReleaseError(w http.ResponseWriter, e *releaseError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.code)
	body := map[string]any{"error": e.msg}
	if e.remaining != nil {
		body["remaining"] = *e.remaining
	}
	_ = json.NewEncoder(w).Encode(body)
}

// --- batch releases ---

type batchItem struct {
	Strategy string  `json:"strategy"`
	Dataset  string  `json:"dataset"`
	Epsilon  float64 `json:"epsilon"`
	Delta    float64 `json:"delta"`
	Seed     *int64  `json:"seed,omitempty"`
	Mode     string  `json:"mode,omitempty"`
	// Trace opts this entry into per-stage tracing (see
	// answerRequest.Trace); the entry's ledger echoes the trace.
	Trace bool `json:"trace,omitempty"`
}

type batchRequest struct {
	Releases []batchItem `json:"releases"`
	// Parallelism bounds how many releases run concurrently (default 8,
	// capped at the batch size).
	Parallelism int `json:"parallelism,omitempty"`
}

// releaseRequest is the full POST /release body: either a batch
// ("releases") or one streamed release ("stream": true with the /answer
// fields inline). The embedded field sets are disjoint, so one decode
// serves both shapes and the handler branches on Stream.
type releaseRequest struct {
	batchRequest
	answerRequest
}

type batchResult struct {
	Index   int       `json:"index"`
	Status  int       `json:"status"`
	Answers []float64 `json:"answers,omitempty"`
	Ledger  *Budget   `json:"ledger,omitempty"`
	Error   string    `json:"error,omitempty"`
	// Remaining reports the unspent budget for entries refused with 429.
	Remaining *Budget `json:"remaining,omitempty"`
}

type batchResponse struct {
	Results   []batchResult `json:"results"`
	Succeeded int           `json:"succeeded"`
	Failed    int           `json:"failed"`
}

// handleRelease answers a batch of (strategy, dataset, privacy) triples
// concurrently with bounded parallelism. Entries reference registered
// datasets only — the point of the batch path is that request bodies stay
// small no matter how large the data is. Each entry reserves, releases
// and commits (or refunds) independently, so one over-budget or failing
// entry never poisons the rest of the batch.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req releaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Stream {
		if len(req.Releases) > 0 {
			httpError(w, http.StatusBadRequest, "streamed releases take one strategy/dataset inline, not a batch; drop \"releases\" or \"stream\"")
			return
		}
		s.handleStream(w, r, &req.answerRequest)
		return
	}
	if len(req.Releases) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Releases) > maxBatchReleases {
		httpError(w, http.StatusRequestEntityTooLarge,
			"batch of %d releases exceeds the %d-release cap; split the batch", len(req.Releases), maxBatchReleases)
		return
	}
	// Bound the aggregate response, not just each entry: 256 entries near
	// the per-request answer cap would buffer gigabytes before encoding.
	// The whole batch gets the same payload budget as one /answer. The
	// strategy table is snapshot once: an entry whose strategy is unknown
	// here fails with 404 even if a concurrent /design registers it before
	// the entry would execute — otherwise such entries would bypass this
	// aggregate cap.
	ents := make([]*entry, len(req.Releases))
	s.mu.RLock()
	for i, item := range req.Releases {
		ents[i] = s.strategies[item.Strategy]
	}
	s.mu.RUnlock()
	var totalValues int
	for i, item := range req.Releases {
		if ents[i] == nil {
			continue // failed below with 404, never executed
		}
		if item.Mode == "estimate" {
			totalValues += ents[i].plan.Workload.Cells()
		} else {
			totalValues += ents[i].plan.Workload.NumQueries()
		}
	}
	if totalValues > maxAnswerRows {
		httpError(w, http.StatusRequestEntityTooLarge,
			"batch would return %d answer values, past the %d-value response cap; use mode \"estimate\" or split the batch",
			totalValues, maxAnswerRows)
		return
	}

	par := req.Parallelism
	if par <= 0 {
		par = defaultBatchParallelism
	}
	if par > len(req.Releases) {
		par = len(req.Releases)
	}

	results := make([]batchResult, len(req.Releases))
	// Successful entries keep their answers in mechanism-pool scratch
	// until the response is encoded; outs[i] owns entry i's scratch.
	outs := make([]releaseOut, len(req.Releases))
	// traces[i] is entry i's opt-in trace (nil without "trace": true);
	// the parent ID propagates from the incoming X-AM-Trace header.
	traces := make([]*obs.Trace, len(req.Releases))
	parentTrace := r.Header.Get(fleet.TraceHeader)
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, item := range req.Releases {
		wg.Add(1)
		go func(i int, item batchItem) {
			defer wg.Done()
			if ents[i] == nil {
				// Snapshot miss: fail without burning a parallelism slot.
				results[i] = batchResult{Index: i, Status: http.StatusNotFound,
					Error: fmt.Sprintf("unknown strategy %q", item.Strategy)}
				return
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			// Unlike /answer, these goroutines are not covered by net/http's
			// handler recover: an uncaught mechanism panic would crash the
			// whole server. Fail the one entry instead (its reservation is
			// refunded by releaseWith's deferred settle).
			defer func() {
				if r := recover(); r != nil {
					results[i] = batchResult{Index: i, Status: http.StatusInternalServerError,
						Error: fmt.Sprintf("internal error: %v", r)}
				}
			}()
			if item.Trace {
				traces[i] = obs.NewTrace("release", parentTrace)
			}
			out, ledger, rerr := s.releaseWith(&answerRequest{
				Strategy: item.Strategy,
				Dataset:  item.Dataset,
				Epsilon:  item.Epsilon,
				Delta:    item.Delta,
				Seed:     item.Seed,
				Mode:     item.Mode,
			}, ents[i], traces[i])
			if rerr != nil {
				results[i] = batchResult{Index: i, Status: rerr.code, Error: rerr.msg, Remaining: rerr.remaining}
				return
			}
			outs[i] = out
			results[i] = batchResult{Index: i, Status: http.StatusOK, Ledger: &ledger}
		}(i, item)
	}
	wg.Wait()

	var succeeded, failed int
	for _, res := range results {
		if res.Status == http.StatusOK {
			succeeded++
		} else {
			failed++
		}
	}

	// Encode the whole batch into one pooled buffer and write it once.
	// Successful entries are numeric-only and hand-encoded; failed entries
	// carry error strings and go through encoding/json for escaping (they
	// are off the hot path by definition). Each entry's scratch goes back
	// to its mechanism's pool as soon as its answers are serialized.
	b := getBuf()
	*b = append(*b, `{"results":[`...)
	for i := range results {
		if i > 0 {
			*b = append(*b, ',')
		}
		if results[i].Status == http.StatusOK {
			*b = append(*b, `{"index":`...)
			*b = strconv.AppendInt(*b, int64(i), 10)
			*b = append(*b, `,"status":200,"answers":`...)
			tser := time.Now()
			*b = appendFloats(*b, outs[i].ans)
			traces[i].AddSpan("serialize", tser)
			*b = append(*b, `,"ledger":`...)
			*b = appendBudgetTrace(*b, *results[i].Ledger, traces[i])
			*b = append(*b, '}')
			outs[i].done()
			traces[i].Finish(http.StatusOK)
			s.metrics.ring.Put(traces[i])
			continue
		}
		traces[i].Finish(results[i].Status)
		s.metrics.ring.Put(traces[i])
		enc, err := json.Marshal(&results[i])
		if err != nil {
			// Unreachable for these field types; keep the body well-formed.
			enc = []byte(`{"index":` + strconv.Itoa(i) + `,"status":500,"error":"encoding failed"}`)
		}
		*b = append(*b, enc...)
	}
	*b = append(*b, `],"succeeded":`...)
	*b = strconv.AppendInt(*b, int64(succeeded), 10)
	*b = append(*b, `,"failed":`...)
	*b = strconv.AppendInt(*b, int64(failed), 10)
	*b = append(*b, '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(*b)))
	_, _ = w.Write(*b)
	putBuf(b)
}
