package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"

	"adaptivemm/internal/accountant"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/registry"
)

// maxBatchReleases bounds one /release body; bigger jobs should be split
// into several requests so no single call monopolizes the server.
const maxBatchReleases = 256

// defaultBatchParallelism is how many releases of one batch run
// concurrently when the request does not choose.
const defaultBatchParallelism = 8

type answerRequest struct {
	Strategy string `json:"strategy"`
	Dataset  string `json:"dataset"`
	// Histogram carries the data inline; omit it to release against a
	// dataset registered via POST /datasets.
	Histogram []float64 `json:"histogram,omitempty"`
	Epsilon   float64   `json:"epsilon"`
	Delta     float64   `json:"delta"`
	// Seed pins the noise stream for reproducible experiments. Absent
	// (null) selects fresh crypto-seeded noise; an explicit 0 is a valid
	// seed, not "absent".
	Seed *int64 `json:"seed,omitempty"`
	// Mode selects the release payload: "answers" (default) returns the m
	// workload answers, "estimate" the n-cell histogram estimate.
	Mode string `json:"mode,omitempty"`
}

type answerResponse struct {
	Answers []float64 `json:"answers"`
	Ledger  Budget    `json:"ledger"`
}

// releaseError carries an HTTP status, a message, and — for budget
// refusals — the remaining budget to surface to the analyst.
type releaseError struct {
	code      int
	msg       string
	remaining *Budget
}

func (e *releaseError) Error() string { return e.msg }

func releaseErrorf(code int, format string, args ...any) *releaseError {
	return &releaseError{code: code, msg: fmt.Sprintf(format, args...)}
}

// release runs one differentially private release end to end: validate,
// resolve the dataset, reserve budget, draw noise, infer, and commit (or
// refund on failure). It is the shared core of /answer and batch
// /release.
func (s *Server) release(req *answerRequest) ([]float64, Budget, *releaseError) {
	if req.Dataset == "" {
		return nil, Budget{}, releaseErrorf(http.StatusBadRequest, "dataset name required for budget accounting")
	}
	if req.Mode != "" && req.Mode != "answers" && req.Mode != "estimate" {
		return nil, Budget{}, releaseErrorf(http.StatusBadRequest, "mode %q not recognized (want answers or estimate)", req.Mode)
	}
	p := mm.Privacy{Epsilon: req.Epsilon, Delta: req.Delta}
	if err := p.Validate(); err != nil {
		return nil, Budget{}, releaseErrorf(http.StatusBadRequest, "%v", err)
	}
	s.mu.RLock()
	ent, ok := s.strategies[req.Strategy]
	s.mu.RUnlock()
	if !ok {
		return nil, Budget{}, releaseErrorf(http.StatusNotFound, "unknown strategy %q", req.Strategy)
	}

	hist := req.Histogram
	if hist == nil {
		d, err := s.reg.Get(req.Dataset)
		if err != nil {
			if errors.Is(err, registry.ErrNotFound) {
				return nil, Budget{}, releaseErrorf(http.StatusNotFound,
					"dataset %q not registered; POST /datasets first or provide an inline histogram", req.Dataset)
			}
			return nil, Budget{}, releaseErrorf(http.StatusBadRequest, "%v", err)
		}
		hist = d.Histogram
	} else if _, err := s.reg.Get(req.Dataset); err == nil {
		return nil, Budget{}, releaseErrorf(http.StatusBadRequest,
			"dataset %q is registered; omit the inline histogram so releases answer the registered data", req.Dataset)
	}
	if len(hist) != ent.w.Cells() {
		return nil, Budget{}, releaseErrorf(http.StatusBadRequest,
			"histogram has %d cells, workload expects %d", len(hist), ent.w.Cells())
	}
	if req.Mode != "estimate" && ent.w.NumQueries() > maxAnswerRows {
		return nil, Budget{}, releaseErrorf(http.StatusRequestEntityTooLarge,
			"workload has %d queries, past the %d-answer response cap; request mode \"estimate\" instead",
			ent.w.NumQueries(), maxAnswerRows)
	}

	// Reserve before drawing any noise: concurrent releases against one
	// capped dataset can never jointly overspend, and a refused release
	// costs nothing.
	res, err := s.acct.Reserve(req.Dataset, accountant.Budget{Epsilon: p.Epsilon, Delta: p.Delta})
	if err != nil {
		var over *accountant.OverBudgetError
		if errors.As(err, &over) {
			rem := fromAcct(over.Remaining)
			return nil, Budget{}, &releaseError{
				code:      http.StatusTooManyRequests,
				msg:       fmt.Sprintf("release refused: %v", err),
				remaining: &rem,
			}
		}
		return nil, Budget{}, releaseErrorf(http.StatusBadRequest, "%v", err)
	}

	// Noise: deterministic only when the request pins a seed; the default
	// is a crypto-seeded source, so "unseeded" releases are unpredictable
	// across requests and across server restarts.
	var noise mm.NoiseSource
	if req.Seed != nil {
		noise = rand.New(rand.NewSource(*req.Seed))
	} else {
		noise = mm.NewCryptoSeededSource()
	}

	var ans []float64
	if req.Mode == "estimate" {
		ans, err = ent.mech.EstimateGaussian(hist, p, noise)
	} else {
		ans, err = ent.mech.AnswerGaussian(ent.w, hist, p, noise)
	}
	if err != nil {
		res.Refund()
		return nil, Budget{}, releaseErrorf(http.StatusUnprocessableEntity, "%v", err)
	}
	res.Commit()
	return ans, fromAcct(s.acct.Spent(req.Dataset)), nil
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req answerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	ans, ledger, rerr := s.release(&req)
	if rerr != nil {
		writeReleaseError(w, rerr)
		return
	}
	writeJSON(w, answerResponse{Answers: ans, Ledger: ledger})
}

// writeReleaseError writes the error with the remaining budget attached
// for budget refusals.
func writeReleaseError(w http.ResponseWriter, e *releaseError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.code)
	body := map[string]any{"error": e.msg}
	if e.remaining != nil {
		body["remaining"] = *e.remaining
	}
	_ = json.NewEncoder(w).Encode(body)
}

// --- batch releases ---

type batchItem struct {
	Strategy string  `json:"strategy"`
	Dataset  string  `json:"dataset"`
	Epsilon  float64 `json:"epsilon"`
	Delta    float64 `json:"delta"`
	Seed     *int64  `json:"seed,omitempty"`
	Mode     string  `json:"mode,omitempty"`
}

type batchRequest struct {
	Releases []batchItem `json:"releases"`
	// Parallelism bounds how many releases run concurrently (default 8,
	// capped at the batch size).
	Parallelism int `json:"parallelism,omitempty"`
}

type batchResult struct {
	Index   int       `json:"index"`
	Status  int       `json:"status"`
	Answers []float64 `json:"answers,omitempty"`
	Ledger  *Budget   `json:"ledger,omitempty"`
	Error   string    `json:"error,omitempty"`
	// Remaining reports the unspent budget for entries refused with 429.
	Remaining *Budget `json:"remaining,omitempty"`
}

type batchResponse struct {
	Results   []batchResult `json:"results"`
	Succeeded int           `json:"succeeded"`
	Failed    int           `json:"failed"`
}

// handleRelease answers a batch of (strategy, dataset, privacy) triples
// concurrently with bounded parallelism. Entries reference registered
// datasets only — the point of the batch path is that request bodies stay
// small no matter how large the data is. Each entry reserves, releases
// and commits (or refunds) independently, so one over-budget or failing
// entry never poisons the rest of the batch.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.Releases) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Releases) > maxBatchReleases {
		httpError(w, http.StatusRequestEntityTooLarge,
			"batch of %d releases exceeds the %d-release cap; split the batch", len(req.Releases), maxBatchReleases)
		return
	}
	// Bound the aggregate response, not just each entry: 256 entries near
	// the per-request answer cap would buffer gigabytes before encoding.
	// The whole batch gets the same payload budget as one /answer.
	var totalValues int
	for _, item := range req.Releases {
		s.mu.RLock()
		ent, ok := s.strategies[item.Strategy]
		s.mu.RUnlock()
		if !ok {
			continue // the entry will fail with 404 on its own
		}
		if item.Mode == "estimate" {
			totalValues += ent.w.Cells()
		} else {
			totalValues += ent.w.NumQueries()
		}
	}
	if totalValues > maxAnswerRows {
		httpError(w, http.StatusRequestEntityTooLarge,
			"batch would return %d answer values, past the %d-value response cap; use mode \"estimate\" or split the batch",
			totalValues, maxAnswerRows)
		return
	}

	par := req.Parallelism
	if par <= 0 {
		par = defaultBatchParallelism
	}
	if par > len(req.Releases) {
		par = len(req.Releases)
	}

	results := make([]batchResult, len(req.Releases))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, item := range req.Releases {
		wg.Add(1)
		go func(i int, item batchItem) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ans, ledger, rerr := s.release(&answerRequest{
				Strategy: item.Strategy,
				Dataset:  item.Dataset,
				Epsilon:  item.Epsilon,
				Delta:    item.Delta,
				Seed:     item.Seed,
				Mode:     item.Mode,
			})
			if rerr != nil {
				results[i] = batchResult{Index: i, Status: rerr.code, Error: rerr.msg, Remaining: rerr.remaining}
				return
			}
			results[i] = batchResult{Index: i, Status: http.StatusOK, Answers: ans, Ledger: &ledger}
		}(i, item)
	}
	wg.Wait()

	resp := batchResponse{Results: results}
	for _, res := range results {
		if res.Status == http.StatusOK {
			resp.Succeeded++
		} else {
			resp.Failed++
		}
	}
	writeJSON(w, resp)
}
