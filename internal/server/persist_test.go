package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adaptivemm/internal/mm"
	"adaptivemm/internal/planner"
	"adaptivemm/internal/planstore"
	"adaptivemm/internal/wio"
)

// designOn posts a /design request to the given server and decodes the
// response, failing the test on any non-200.
func designSpecOn(t *testing.T, ts *httptest.Server, body string) designResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/design", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("/design %s: status %d: %s", body, resp.StatusCode, e["error"])
	}
	var dr designResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	return dr
}

// TestRestartServesFromRehydratedCache is the acceptance check: a server
// restarted on the same store directory answers previously designed
// workloads from the rehydrated cache — cached:true, with zero generator
// builds in the new process.
func TestRestartServesFromRehydratedCache(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Options{StoreDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	first := designSpecOn(t, ts1, `{"workload":"allrange:8x16"}`)
	if first.Cached {
		t.Fatal("first design reported cached")
	}
	second := designSpecOn(t, ts1, `{"workload":"marginals:1:8x8"}`)
	if second.Planner.Generator != "sharded" {
		t.Fatalf("marginals:1:8x8 won %q, want sharded (the test should cover composite rehydration)", second.Planner.Generator)
	}
	ts1.Close()
	// Close flushes the write-behind queue: both plans must be durable
	// before the "restart".
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{StoreDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	for _, spec := range []string{"allrange:8x16", "marginals:1:8x8"} {
		dr := designSpecOn(t, ts2, fmt.Sprintf(`{"workload":%q}`, spec))
		if !dr.Cached {
			t.Fatalf("%s after restart: cached = false, want true", spec)
		}
		if dr.ExpectedError <= 0 {
			t.Fatalf("%s after restart: expected error %g not restored", spec, dr.ExpectedError)
		}
	}
	if n := s2.pl.Builds(); n != 0 {
		t.Fatalf("restarted server ran %d generator builds, want 0", n)
	}

	// The rehydrated strategy must actually release: answer an inline
	// histogram through the warm plan.
	dr := designSpecOn(t, ts2, `{"workload":"allrange:8x16"}`)
	hist := make([]string, 128)
	for i := range hist {
		hist[i] = "3"
	}
	body := fmt.Sprintf(`{"strategy":%q,"dataset":"smoke","histogram":[%s],"epsilon":0.5,"delta":1e-4}`,
		dr.Strategy, strings.Join(hist, ","))
	resp, err := http.Post(ts2.URL+"/answer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/answer on rehydrated strategy: status %d", resp.StatusCode)
	}
}

// TestRestartRestoresCalibration: the per-generator design-throughput
// EWMA must survive a restart, not reset to the cold default.
func TestRestartRestoresCalibration(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Options{StoreDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	// A real eigen design is expensive enough to feed the calibration.
	designSpecOn(t, ts1, `{"workload":"allrange:512"}`)
	ts1.Close()
	want := s1.pl.RateSnapshot()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := want["eigen"]; !ok {
		t.Fatalf("eigen build did not calibrate a per-generator rate: %v", want)
	}

	s2, err := Open(Options{StoreDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.pl.RateSnapshot()
	for gen, r := range want {
		if got[gen] != r {
			t.Fatalf("rate[%q] = %g after restart, want %g", gen, got[gen], r)
		}
	}
}

// TestCorruptStoreEntrySkippedOnStartup: a bit-flipped entry must not
// poison startup — the server comes up, logs the skip, and re-designs.
func TestCorruptStoreEntrySkippedOnStartup(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Options{StoreDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	designSpecOn(t, ts1, `{"workload":"prefix:64"}`)
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.plan"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("store entries: %v, %v", entries, err)
	}
	blob, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/3] ^= 0x20
	if err := os.WriteFile(entries[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	var skipped bool
	s2, err := Open(Options{StoreDir: dir, Logf: func(format string, args ...any) {
		if strings.Contains(fmt.Sprintf(format, args...), "skipping") {
			skipped = true
		}
	}})
	if err != nil {
		t.Fatalf("corrupt entry made startup fail: %v", err)
	}
	defer s2.Close()
	if !skipped {
		t.Fatal("corrupt entry was not reported as skipped")
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if dr := designSpecOn(t, ts2, `{"workload":"prefix:64"}`); dr.Cached {
		t.Fatal("design served from a corrupt entry")
	}
}

// TestPlansEndpoints covers GET /plans and DELETE /plans/{id}, including
// the no-store 404.
func TestPlansEndpoints(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{StoreDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	designSpecOn(t, ts, `{"workload":"prefix:64"}`)
	designSpecOn(t, ts, `{"workload":"allrange:8x16"}`)
	// The queue is async; drain it deterministically through a second
	// server handle? No — Close would stop the worker. Poll /plans.
	var listing plansResponse
	for attempt := 0; attempt < 200; attempt++ {
		resp, err := http.Get(ts.URL + "/plans")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&listing)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(listing.Plans) == 2 {
			break
		}
	}
	if len(listing.Plans) != 2 {
		t.Fatalf("GET /plans listed %d entries, want 2", len(listing.Plans))
	}
	for _, m := range listing.Plans {
		if m.ID == "" || m.Key == "" || m.Generator == "" || m.SizeBytes == 0 {
			t.Fatalf("incomplete plan meta %+v", m)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/plans/"+listing.Plans[0].ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /plans/{id}: status %d", resp.StatusCode)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE: status %d, want 404", resp.StatusCode)
	}

	// Without a store both endpoints 404.
	bare := httptest.NewServer(New().Handler())
	defer bare.Close()
	resp, err = http.Get(bare.URL + "/plans")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /plans without a store: status %d, want 404", resp.StatusCode)
	}
}

// TestShippedPlanServedFromCache models the amdesign -save → fleet flow:
// a plan designed offline (with amdesign's own analysis cap) is written
// into the store directory under the canonical spec key, and a server
// started on that directory serves /design of the same spec from cache
// without building anything.
func TestShippedPlanServedFromCache(t *testing.T) {
	dir := t.TempDir()
	spec := "allrange:8x16"

	// Offline design, amdesign-style: its own planner, its own hints.
	pl := planner.New(planner.Config{})
	w, err := wio.ParseWorkloadSpec(spec, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	offlineHints := planner.Hints{Privacy: mm.Privacy{Epsilon: 0.5, Delta: 1e-4}, AnalysisCap: 2048}
	plan, err := pl.Plan(w, offlineHints)
	if err != nil {
		t.Fatal(err)
	}
	key := planstore.CanonicalKey(spec, 1, offlineHints.Fingerprint())
	blob, meta, err := planstore.EncodeEntry(key, plan, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, meta.ID+".plan"), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := Open(Options{StoreDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	dr := designSpecOn(t, ts, fmt.Sprintf(`{"workload":%q}`, spec))
	if !dr.Cached {
		t.Fatal("shipped plan not served from cache")
	}
	if n := srv.pl.Builds(); n != 0 {
		t.Fatalf("server ran %d builds despite the shipped plan, want 0", n)
	}
}

// TestDeletedPlanNotRehydrated: DELETE withdraws durability — after a
// restart the spec re-designs instead of serving cached.
func TestDeletedPlanNotRehydrated(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Options{StoreDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	designSpecOn(t, ts1, `{"workload":"prefix:64"}`)
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{StoreDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	var listing plansResponse
	resp, err := http.Get(ts2.URL + "/plans")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Plans) != 1 {
		t.Fatalf("listed %d plans, want 1", len(listing.Plans))
	}
	req, _ := http.NewRequest(http.MethodDelete, ts2.URL+"/plans/"+listing.Plans[0].ID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts2.Close()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, err := Open(Options{StoreDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	ts3 := httptest.NewServer(s3.Handler())
	defer ts3.Close()
	if dr := designSpecOn(t, ts3, `{"workload":"prefix:64"}`); dr.Cached {
		t.Fatal("deleted plan was rehydrated")
	}
}
