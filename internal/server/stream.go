// Streamed releases over HTTP: POST /release with "stream": true.
//
// The buffered /answer path materializes every answer and the full JSON
// body before writing, so its payload cap (maxAnswerRows) is a hard
// ceiling — AllRange(2048)'s ~2.1M answers are designable but were never
// servable. The streamed path runs noise + inference once (O(cells), the
// privacy-relevant work is identical to the buffered path) and then
// writes the answers as NDJSON records of one chunk each under chunked
// transfer encoding:
//
//	{"stream":"answers","strategy":...,"rows":m,"chunkSize":c,"ledger":{...}}
//	{"offset":0,"answers":[...]}
//	{"offset":c,"answers":[...]}
//	...
//	{"done":true,"count":m,"checksum":"<16 hex>"}
//
// Per-stream memory is one chunk buffer plus the estimate, not O(rows);
// the payload cap does not apply. The trailing record carries the answer
// count and an FNV-64a checksum over the little-endian IEEE-754 bits of
// every answer in stream order, so a client can detect a truncated or
// corrupted stream (a dropped connection otherwise looks like a clean
// early EOF at a record boundary). Concurrency is bounded by a semaphore
// acquired non-blocking: past MaxConcurrentStreams, requests get 503 +
// Retry-After instead of queueing buffers.

package server

import (
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	//lint:allow noiserand: client-pinned seeds for reproducible streamed releases against ad-hoc data, same policy as the buffered path (resolveAndReserve)
	"math/rand"

	"adaptivemm/internal/fleet"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/obs"
)

// defaultMaxStreams bounds concurrent streamed releases when Options
// does not choose: 32 streams × the default 8192-value chunk is ~2 MiB
// of chunk buffers at full load.
const defaultMaxStreams = 32

// maxStreamChunk caps the client-chosen chunk size; a huge chunk would
// reintroduce the O(rows) buffering that streaming exists to avoid.
const maxStreamChunk = 1 << 16

// fnv64Offset/fnv64Prime are the FNV-64a parameters; the checksum is
// computed inline (hash/fnv would allocate a byte slice per value).
const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

// fnvFloats folds a chunk of answers into an FNV-64a state, hashing each
// float64's IEEE-754 bits little-endian byte by byte.
func fnvFloats(sum uint64, vals []float64) uint64 {
	for _, v := range vals {
		bits := math.Float64bits(v)
		for i := 0; i < 64; i += 8 {
			sum ^= uint64(byte(bits >> i))
			sum *= fnv64Prime
		}
	}
	return sum
}

// handleStream serves one streamed release. Validation, dataset
// resolution, budget reservation and noise policy are shared with the
// buffered path; what differs is that the workload-size cap is not
// checked (streaming exists for exactly those workloads) and the
// response is written incrementally.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, req *answerRequest) {
	if a := r.Header.Get("Accept"); a != "" &&
		!strings.Contains(a, "application/x-ndjson") && !strings.Contains(a, "*/*") {
		httpError(w, http.StatusNotAcceptable, "streamed releases are NDJSON; send Accept: application/x-ndjson")
		return
	}
	if req.Mode != "" && req.Mode != "answers" {
		httpError(w, http.StatusBadRequest,
			"streamed releases answer workloads (mode \"answers\"); estimates are cell-sized and fit the buffered path")
		return
	}
	if req.Dataset == "" {
		httpError(w, http.StatusBadRequest, "dataset name required for budget accounting")
		return
	}
	p := mm.Privacy{Epsilon: req.Epsilon, Delta: req.Delta}
	if err := p.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	chunkSize := req.ChunkSize
	if chunkSize <= 0 {
		chunkSize = mm.DefaultStreamChunk
	}
	if chunkSize > maxStreamChunk {
		chunkSize = maxStreamChunk
	}

	// Admission before any work: a server at its streaming limit refuses
	// immediately rather than holding the connection and its buffers.
	select {
	case s.streamSem <- struct{}{}:
	default:
		s.metrics.streamRejects.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable,
			"server is at its limit of concurrent streamed releases; retry shortly")
		return
	}
	defer func() { <-s.streamSem }()

	// Opt-in trace: the stream's noise + inference run inside
	// StreamRelease, recorded as one "release" span (the stage
	// breakdown is always on in am_release_stage_seconds); the chunk
	// loop is the "stream" span.
	var tr *obs.Trace
	if req.Trace {
		tr = obs.NewTrace("stream", r.Header.Get(fleet.TraceHeader))
	}
	t0 := time.Now()

	s.mu.RLock()
	ent := s.strategies[req.Strategy]
	s.mu.RUnlock()
	if ent == nil {
		httpError(w, http.StatusNotFound, "unknown strategy %q", req.Strategy)
		return
	}

	hist, acctName, res, rerr := s.resolveAndReserve(req, ent, p)
	if rerr != nil {
		writeReleaseError(w, rerr)
		return
	}
	defer res.Refund()

	var noise mm.NoiseSource
	var cs *mm.CryptoSource
	if req.Seed != nil {
		noise = rand.New(rand.NewSource(*req.Seed))
	} else {
		cs = mm.AcquireCryptoSource()
		noise = cs
	}
	defer func() {
		if cs != nil {
			mm.ReleaseCryptoSource(cs)
		}
	}()

	mech := ent.plan.Mechanism
	tRel := time.Now()
	st, err := mech.StreamRelease(ent.plan.Workload, hist, p, noise, chunkSize)
	if err != nil {
		tr.Finish(http.StatusUnprocessableEntity)
		s.metrics.ring.Put(tr)
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	tr.AddSpan("release", tRel)
	defer st.Close()
	res.Commit()
	s.metrics.releases.Inc()
	ledger := fromAcct(s.acct.Spent(acctName))

	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Answers follow incrementally; no Content-Length, net/http uses
	// chunked transfer encoding.
	w.WriteHeader(http.StatusOK)

	// One pooled buffer, reused record by record. The metadata record
	// leads so a client knows the row count and chunk size before the
	// first answer arrives.
	b := getBuf()
	defer putBuf(b)
	*b = append((*b)[:0], `{"stream":"answers","strategy":`...)
	*b = strconv.AppendQuote(*b, req.Strategy)
	*b = append(*b, `,"rows":`...)
	*b = strconv.AppendInt(*b, int64(st.Rows()), 10)
	*b = append(*b, `,"chunkSize":`...)
	*b = strconv.AppendInt(*b, int64(st.ChunkSize()), 10)
	*b = append(*b, `,"ledger":`...)
	*b = appendBudgetTrace(*b, ledger, tr)
	*b = append(*b, '}', '\n')
	if _, err := w.Write(*b); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}

	sum := fnv64Offset
	count := 0
	tStream := time.Now()
	for {
		off, chunk, ok := st.Next()
		if !ok {
			break
		}
		*b = append((*b)[:0], `{"offset":`...)
		*b = strconv.AppendInt(*b, int64(off), 10)
		*b = append(*b, `,"answers":`...)
		*b = appendFloats(*b, chunk)
		*b = append(*b, '}', '\n')
		if _, err := w.Write(*b); err != nil {
			// Client gone mid-stream; the budget is already committed (the
			// answers were computed and partially delivered).
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		sum = fnvFloats(sum, chunk)
		count += len(chunk)
	}

	tr.AddSpan("stream", tStream)
	*b = append((*b)[:0], `{"done":true,"count":`...)
	*b = strconv.AppendInt(*b, int64(count), 10)
	*b = append(*b, `,"checksum":"`...)
	*b = appendHex16(*b, sum)
	*b = append(*b, '"', '}', '\n')
	_, _ = w.Write(*b)
	if flusher != nil {
		flusher.Flush()
	}
	tr.Finish(http.StatusOK)
	s.metrics.ring.Put(tr)
	s.metrics.releaseSec.ObserveSince(t0)
}

// appendHex16 appends sum as exactly 16 lowercase hex digits.
func appendHex16(b []byte, sum uint64) []byte {
	const digits = "0123456789abcdef"
	for shift := 60; shift >= 0; shift -= 4 {
		b = append(b, digits[(sum>>shift)&0xf])
	}
	return b
}
