package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchServer builds a server with one designed strategy and one
// registered dataset, returning the handler, the strategy id and the
// cell count.
func benchServer(b *testing.B, spec string) (http.Handler, string, int) {
	b.Helper()
	s := New()
	h := s.Handler()

	post := func(path string, body any) map[string]any {
		buf, err := json.Marshal(body)
		if err != nil {
			b.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("%s: status %d: %s", path, rec.Code, rec.Body.String())
		}
		var out map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			b.Fatal(err)
		}
		return out
	}

	design := post("/design", map[string]any{"workload": spec})
	id, _ := design["strategy"].(string)
	cells := int(design["cells"].(float64))
	hist := make([]float64, cells)
	for i := range hist {
		hist[i] = float64(i % 17)
	}
	post("/datasets", map[string]any{"name": "bench", "histogram": hist})
	return h, id, cells
}

// BenchmarkBatchRelease measures the batch /release endpoint at the
// handler level (no network): one op is one batch of 64 estimate-mode
// releases against a registered dataset. This is the end-to-end serving
// hot path: mechanism, noise, inference, accounting and JSON encoding.
func BenchmarkBatchRelease(b *testing.B) {
	h, id, _ := benchServer(b, "allrange:1024")
	const batch = 64
	items := make([]map[string]any, batch)
	for i := range items {
		items[i] = map[string]any{
			"strategy": id, "dataset": "bench",
			"epsilon": 0.01, "delta": 1e-6, "mode": "estimate",
		}
	}
	body, err := json.Marshal(map[string]any{"releases": items, "parallelism": 8})
	if err != nil {
		b.Fatal(err)
	}
	// One reused response buffer: a fresh multi-megabyte recorder per
	// batch would measure buffer growth, which real serving (a socket
	// write) never pays.
	respBody := bytes.NewBuffer(make([]byte, 0, 4<<20))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/release", bytes.NewReader(body))
		respBody.Reset()
		rec := &httptest.ResponseRecorder{Code: http.StatusOK, HeaderMap: http.Header{}, Body: respBody}
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.StopTimer()
	if b.N > 0 {
		relPerSec := float64(batch) / (float64(b.Elapsed().Nanoseconds()) / float64(b.N) / 1e9)
		b.ReportMetric(relPerSec, "releases/s")
	}
}

// BenchmarkAnswerRelease measures the single-release /answer endpoint,
// estimate mode, per release.
func BenchmarkAnswerRelease(b *testing.B) {
	h, id, _ := benchServer(b, "allrange:1024")
	body, err := json.Marshal(map[string]any{
		"strategy": id, "dataset": "bench",
		"epsilon": 0.01, "delta": 1e-6, "mode": "estimate",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/answer", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

var sinkBytes []byte

// BenchmarkEncodeAnswers isolates the response-encoding cost of one
// 1024-value answer body through the pooled hand-rolled encoder.
func BenchmarkEncodeAnswers(b *testing.B) {
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = 1234.56789 * float64(i+1) / 3.0
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := getBuf()
		*buf = appendFloats(*buf, vals)
		sinkBytes = *buf
		putBuf(buf)
	}
}
