// Fast float64 → JSON number conversion for the release hot path.
//
// strconv's shortest-representation search (Ryu) costs ~90ns per value
// on the serving hardware; at a thousand noisy answers per release it is
// the single largest item in the release budget. Noisy answers occupy
// all 52 mantissa bits, so their shortest representation is ~17
// significant digits anyway — the search buys nothing. appendFloat17
// instead always emits exactly 17 significant digits in scientific
// notation, computed by one double-double division against a prebuilt
// 10^k table: 17 significant digits are always sufficient for a
// float64 to round-trip, so the wire value parses back to the identical
// bits (pinned by TestAppendFloatRoundTrip against strconv.ParseFloat).
//
// The emitted digit string d satisfies |d·10^k − f| ≤ 0.51·10^k·ulp-grid
// versus the ≤ 0.5 of perfectly rounded digits; round-tripping tolerates
// anything below ~1.11 (the worst-case ratio of the decimal grid to half
// a binary ulp just above a power of two), so the slack is safe by a
// wide margin.

package server

import (
	"encoding/binary"
	"math"
	"math/big"
)

// pow10 double-double table: pow10hi[i] + pow10lo[i] ≈ 10^(i+pow10Min)
// to ~106 bits. appendFloat17 only serves |f| within [1e-270, 1e300]
// (below ~1e-275 the table's lo words go subnormal and the 106-bit
// precision collapses — strconv covers those extremes); the table's
// slack beyond the served band covers the ±1 exponent-estimate
// correction steps.
const (
	pow10Min = -330
	pow10Max = 310
)

var (
	pow10hi [pow10Max - pow10Min + 1]float64
	pow10lo [pow10Max - pow10Min + 1]float64

	// digitPairs is "00010203...9899": two ASCII digits per value < 100.
	digitPairs [200]byte
	// pairs16 is the same table as little-endian 2-byte words, so eight
	// digits assemble into one uint64 store.
	pairs16 [100]uint16
)

func init() {
	ten := new(big.Float).SetPrec(200).SetInt64(10)
	v := new(big.Float).SetPrec(200).SetInt64(1)
	for k := 0; k > pow10Min; k-- {
		v.Quo(v, ten)
	}
	for i := range pow10hi {
		hi, _ := v.Float64()
		pow10hi[i] = hi
		lo := new(big.Float).SetPrec(200).Sub(v, new(big.Float).SetFloat64(hi))
		pow10lo[i], _ = lo.Float64()
		v.Mul(v, ten)
	}
	for i := 0; i < 100; i++ {
		digitPairs[2*i] = byte('0' + i/10)
		digitPairs[2*i+1] = byte('0' + i%10)
		pairs16[i] = uint16('0'+i/10) | uint16('0'+i%10)<<8
	}
}

// appendFloat17 appends f — finite, nonzero, with 1e-270 ≤ |f| ≤ 1e300 —
// as a JSON number with 17 significant digits in scientific notation.
func appendFloat17(b []byte, f float64) []byte {
	if f < 0 {
		b = append(b, '-')
		f = -f
	}
	// Estimate the decimal exponent from the binary one (within ±1:
	// 78913/2^18 ≈ log10 2); the scaling loop below corrects it.
	e2 := int(math.Float64bits(f)>>52) - 1023
	e10 := (e2 * 78913) >> 18
	for {
		// Target d = round(f / 10^(e10-16)) ∈ [10^16, 10^17): exactly 17
		// digits. The quotient against the double-double 10^k is q0 plus
		// a residual correction delta recovered with two FMAs; |delta| is
		// a handful of units, and the correction's own error is ≪ 0.01,
		// well inside the 0.51-total-slack budget.
		j := e10 - 16 - pow10Min
		phi, plo := pow10hi[j], pow10lo[j]
		q0 := f / phi
		if q0 < 9.9e15 {
			e10--
			continue
		}
		if q0 >= 1.01e17 {
			e10++
			continue
		}
		r := math.FMA(-q0, phi, f)
		r = math.FMA(-q0, plo, r)
		delta := r / phi
		// Round delta (a handful of units either sign) to the nearest
		// integer by the 2^52+2^51 magic-add trick: the sum's ulp is 1,
		// so the hardware's round-to-nearest does the rounding and the
		// result differs from the constant by round(delta) mantissa bits.
		const magic = float64(1<<52 + 1<<51)
		di := int64(math.Float64bits(delta+magic) - math.Float64bits(magic))
		// q0 ≥ 9.9e15 > 2^53, so q0 is an exact integer.
		d := uint64(q0) + uint64(di)
		if d < 1e16 {
			e10--
			continue
		}
		if d >= 1e17 {
			// Includes the rollover d == 10^17 (f just under a power of
			// ten); rescaling yields d = 10^16 exactly.
			e10++
			continue
		}
		return emit17(b, d, e10)
	}
}

// emit17 appends "D.DDDDDDDDDDDDDDDDe±EE" for d ∈ [10^16, 10^17).
func emit17(b []byte, d uint64, e10 int) []byte {
	var buf [24]byte
	buf[0] = byte(d/1e16) + '0'
	buf[1] = '.'
	rem := d % 1e16
	put8(buf[2:10], uint32(rem/1e8))
	put8(buf[10:18], uint32(rem%1e8))
	buf[18] = 'e'
	n := 19
	if e10 < 0 {
		buf[n] = '-'
		e10 = -e10
	} else {
		buf[n] = '+'
	}
	n++
	if e10 >= 100 {
		buf[n] = byte('0' + e10/100)
		n++
		e10 %= 100
	}
	buf[n] = digitPairs[2*e10]
	buf[n+1] = digitPairs[2*e10+1]
	return append(b, buf[:n+2]...)
}

// put8 writes v < 10^8 as eight ASCII digits with one 8-byte store.
func put8(dst []byte, v uint32) {
	a, c := v/10000, v%10000
	u := uint64(pairs16[a/100]) |
		uint64(pairs16[a%100])<<16 |
		uint64(pairs16[c/100])<<32 |
		uint64(pairs16[c%100])<<48
	binary.LittleEndian.PutUint64(dst, u)
}
