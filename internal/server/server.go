// Package server implements a small HTTP service for batch query
// answering under (ε,δ)-differential privacy — the paper's deployment
// setting: analysts submit a workload once, the server designs a strategy,
// and each release against a dataset consumes privacy budget tracked by a
// per-dataset ledger (sequential composition).
//
// Strategy selection scales with the domain: small domains get the exact
// Eigen-Design; product-form domains past the dense cap use the factored
// principal-vector design; everything else large falls back to the
// hierarchical operator strategy. All three paths answer through
// matrix-free inference, so workloads like allrange:2048 (2.1M queries)
// are designed and answered without materializing any dense matrix.
//
// Endpoints (JSON):
//
//	POST /design    {"workload": "allrange:8x16"} or {"rows": [[...]], "shape": [8,16]}
//	                → {"strategy": id, "queries": m, "cells": n, "form": "eigen|principal|hierarchical",
//	                   "expectedError": ..., "lowerBound": ...}   (error fields 0 when skipped at scale)
//	POST /answer    {"strategy": id, "dataset": name, "histogram": [...],
//	                 "epsilon": 0.5, "delta": 1e-4, "seed": 7, "mode": "answers"|"estimate"}
//	                → {"answers": [...], "ledger": {"epsilon": ..., "delta": ...}}
//	                mode "estimate" returns the n-cell private histogram
//	                estimate instead of the m workload answers — the right
//	                choice when m is in the millions.
//	GET  /ledger    → {"<dataset>": {"epsilon": ..., "delta": ...}, ...}
package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"

	"adaptivemm/internal/core"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/wio"
	"adaptivemm/internal/workload"
)

// denseDesignCap is the largest cell count for which the server runs the
// exact dense Eigen-Design (O(n³) eigendecomposition). Past it a
// structured strategy is selected instead.
const denseDesignCap = 512

// analysisCap is the largest cell count for which the server computes the
// analytic expected error and lower bound at design time (both need an
// O(n³) dense eigendecomposition); past it the fields are reported as 0.
const analysisCap = 512

// principalK is the number of individually weighted eigen-queries for the
// factored principal-vector design on large product domains.
const principalK = 16

// maxAnswerRows caps how many per-query answers one /answer request may
// compute and serialize. Larger workloads must use mode "estimate" (the
// n-cell histogram answers every query by post-processing anyway).
const maxAnswerRows = 1 << 20

// Server holds designed strategies and the per-dataset privacy ledger.
// Reads (/answer strategy lookups, /ledger) take the read lock, so
// concurrent releases and ledger inspections never serialize behind a
// long-running /design.
type Server struct {
	mu         sync.RWMutex
	nextID     int
	strategies map[string]*entry
	ledger     map[string]Budget
	seedSalt   int64
}

type entry struct {
	w    *workload.Workload
	mech *mm.Mechanism
}

// Budget is cumulative privacy spend under basic sequential composition.
type Budget struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

// New returns an empty server.
func New() *Server {
	return &Server{
		strategies: map[string]*entry{},
		ledger:     map[string]Budget{},
	}
}

// Handler returns the HTTP handler for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/design", s.handleDesign)
	mux.HandleFunc("/answer", s.handleAnswer)
	mux.HandleFunc("/ledger", s.handleLedger)
	return mux
}

type designRequest struct {
	// Workload is a compact spec like "allrange:8x16" (see wio).
	Workload string `json:"workload,omitempty"`
	// Rows + Shape provide an explicit query matrix instead.
	Rows  [][]float64 `json:"rows,omitempty"`
	Shape []int       `json:"shape,omitempty"`
	// Seed drives randomized workload specs.
	Seed int64 `json:"seed,omitempty"`
	// Epsilon/Delta are used only to report the expected error.
	Epsilon float64 `json:"epsilon,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
}

type designResponse struct {
	Strategy string `json:"strategy"`
	Queries  int    `json:"queries"`
	Cells    int    `json:"cells"`
	// Form reports which design path was selected: "eigen" (exact dense),
	// "principal" (factored Kronecker) or "hierarchical" (structured
	// fallback).
	Form          string  `json:"form"`
	ExpectedError float64 `json:"expectedError"`
	LowerBound    float64 `json:"lowerBound"`
}

func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req designRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	wl, err := s.buildWorkload(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !wl.Answerable() {
		httpError(w, http.StatusUnprocessableEntity, "workload %q is analyzable only, not answerable", wl.Name())
		return
	}

	op, form, eigenvalues, err := s.selectStrategy(wl)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "design failed: %v", err)
		return
	}
	mech, err := mm.NewMechanismOp(op)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "mechanism: %v", err)
		return
	}
	p := mm.Privacy{Epsilon: req.Epsilon, Delta: req.Delta}
	if p.Epsilon == 0 {
		p = mm.Privacy{Epsilon: 0.5, Delta: 1e-4}
	}
	var expected, lb float64
	if wl.Cells() <= analysisCap {
		expected, err = mm.Error(wl, op, p)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "error analysis: %v", err)
			return
		}
	}
	if eigenvalues != nil {
		lb = mm.LowerBoundFromEigenvalues(eigenvalues, wl.NumQueries(), p)
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	s.strategies[id] = &entry{w: wl, mech: mech}
	s.mu.Unlock()

	writeJSON(w, designResponse{
		Strategy:      id,
		Queries:       wl.NumQueries(),
		Cells:         wl.Cells(),
		Form:          form,
		ExpectedError: expected,
		LowerBound:    lb,
	})
}

// selectStrategy picks the design path by domain size and structure.
func (s *Server) selectStrategy(wl *workload.Workload) (linalg.Operator, string, []float64, error) {
	if wl.Cells() <= denseDesignCap {
		res, err := core.Design(wl, core.Options{})
		if err != nil {
			return nil, "", nil, err
		}
		return res.Op, "eigen", res.Eigenvalues, nil
	}
	if factors, ok := wl.GramFactors(); ok && len(factors) >= 2 {
		res, err := core.PrincipalVectors(wl, principalK, core.Options{})
		if err != nil {
			return nil, "", nil, err
		}
		return res.Op, "principal", res.Eigenvalues, nil
	}
	return strategy.HierarchicalOperator(wl.Shape(), 2), "hierarchical", nil, nil
}

func (s *Server) buildWorkload(req *designRequest) (*workload.Workload, error) {
	switch {
	case req.Workload != "" && req.Rows != nil:
		return nil, fmt.Errorf("provide either workload or rows, not both")
	case req.Workload != "":
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		return wio.ParseWorkloadSpec(req.Workload, rand.New(rand.NewSource(seed)))
	case req.Rows != nil:
		if len(req.Shape) == 0 {
			return nil, fmt.Errorf("rows require a shape")
		}
		shape, err := domain.NewShape(req.Shape...)
		if err != nil {
			return nil, err
		}
		if len(req.Rows) == 0 || len(req.Rows[0]) != shape.Size() {
			return nil, fmt.Errorf("rows must be non-empty with %d columns", shape.Size())
		}
		return workload.FromMatrix("custom", shape, linalg.NewFromRows(req.Rows)), nil
	default:
		return nil, fmt.Errorf("empty design request")
	}
}

type answerRequest struct {
	Strategy  string    `json:"strategy"`
	Dataset   string    `json:"dataset"`
	Histogram []float64 `json:"histogram"`
	Epsilon   float64   `json:"epsilon"`
	Delta     float64   `json:"delta"`
	Seed      int64     `json:"seed,omitempty"`
	// Mode selects the release payload: "answers" (default) returns the m
	// workload answers, "estimate" the n-cell histogram estimate.
	Mode string `json:"mode,omitempty"`
}

type answerResponse struct {
	Answers []float64 `json:"answers"`
	Ledger  Budget    `json:"ledger"`
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req answerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if req.Dataset == "" {
		httpError(w, http.StatusBadRequest, "dataset name required for budget accounting")
		return
	}
	if req.Mode != "" && req.Mode != "answers" && req.Mode != "estimate" {
		httpError(w, http.StatusBadRequest, "mode %q not recognized (want answers or estimate)", req.Mode)
		return
	}
	p := mm.Privacy{Epsilon: req.Epsilon, Delta: req.Delta}
	if err := p.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	ent, ok := s.strategies[req.Strategy]
	s.mu.RUnlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown strategy %q", req.Strategy)
		return
	}
	if len(req.Histogram) != ent.w.Cells() {
		httpError(w, http.StatusBadRequest, "histogram has %d cells, workload expects %d", len(req.Histogram), ent.w.Cells())
		return
	}
	seed := req.Seed
	if seed == 0 {
		s.mu.Lock()
		s.seedSalt++
		seed = s.seedSalt + 0x5eed
		s.mu.Unlock()
	}
	rng := rand.New(rand.NewSource(seed))
	var ans []float64
	var err error
	if req.Mode == "estimate" {
		ans, err = ent.mech.EstimateGaussian(req.Histogram, p, rng)
	} else {
		if ent.w.NumQueries() > maxAnswerRows {
			httpError(w, http.StatusRequestEntityTooLarge,
				"workload has %d queries, past the %d-answer response cap; request mode \"estimate\" instead",
				ent.w.NumQueries(), maxAnswerRows)
			return
		}
		ans, err = ent.mech.AnswerGaussian(ent.w, req.Histogram, p, rng)
	}
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	// Charge the ledger only after a successful release.
	s.mu.Lock()
	b := s.ledger[req.Dataset]
	b.Epsilon += p.Epsilon
	b.Delta += p.Delta
	s.ledger[req.Dataset] = b
	s.mu.Unlock()

	writeJSON(w, answerResponse{Answers: ans, Ledger: b})
}

func (s *Server) handleLedger(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.RLock()
	out := make(map[string]Budget, len(s.ledger))
	for k, v := range s.ledger {
		out[k] = v
	}
	s.mu.RUnlock()
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; nothing more to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
