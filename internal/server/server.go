// Package server implements a small HTTP service for batch query
// answering under (ε,δ)-differential privacy — the paper's deployment
// setting: analysts submit a workload once, the server designs a strategy,
// and each release against a dataset consumes privacy budget tracked by a
// per-dataset ledger (sequential composition).
//
// Endpoints (JSON):
//
//	POST /design    {"workload": "allrange:8x16"} or {"rows": [[...]], "shape": [8,16]}
//	                → {"strategy": id, "expectedError": ..., "lowerBound": ...}
//	POST /answer    {"strategy": id, "dataset": name, "histogram": [...],
//	                 "epsilon": 0.5, "delta": 1e-4, "seed": 7}
//	                → {"answers": [...], "ledger": {"epsilon": ..., "delta": ...}}
//	GET  /ledger    → {"<dataset>": {"epsilon": ..., "delta": ...}, ...}
package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"

	"adaptivemm/internal/core"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/wio"
	"adaptivemm/internal/workload"
)

// Server holds designed strategies and the per-dataset privacy ledger.
type Server struct {
	mu         sync.Mutex
	nextID     int
	strategies map[string]*entry
	ledger     map[string]Budget
	seedSalt   int64
}

type entry struct {
	w    *workload.Workload
	mech *mm.Mechanism
}

// Budget is cumulative privacy spend under basic sequential composition.
type Budget struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

// New returns an empty server.
func New() *Server {
	return &Server{
		strategies: map[string]*entry{},
		ledger:     map[string]Budget{},
	}
}

// Handler returns the HTTP handler for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/design", s.handleDesign)
	mux.HandleFunc("/answer", s.handleAnswer)
	mux.HandleFunc("/ledger", s.handleLedger)
	return mux
}

type designRequest struct {
	// Workload is a compact spec like "allrange:8x16" (see wio).
	Workload string `json:"workload,omitempty"`
	// Rows + Shape provide an explicit query matrix instead.
	Rows  [][]float64 `json:"rows,omitempty"`
	Shape []int       `json:"shape,omitempty"`
	// Seed drives randomized workload specs.
	Seed int64 `json:"seed,omitempty"`
	// Epsilon/Delta are used only to report the expected error.
	Epsilon float64 `json:"epsilon,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
}

type designResponse struct {
	Strategy      string  `json:"strategy"`
	Queries       int     `json:"queries"`
	Cells         int     `json:"cells"`
	ExpectedError float64 `json:"expectedError"`
	LowerBound    float64 `json:"lowerBound"`
}

func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req designRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	wl, err := s.buildWorkload(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := core.Design(wl, core.Options{})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "design failed: %v", err)
		return
	}
	mech, err := mm.NewMechanism(res.Strategy)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "mechanism: %v", err)
		return
	}
	p := mm.Privacy{Epsilon: req.Epsilon, Delta: req.Delta}
	if p.Epsilon == 0 {
		p = mm.Privacy{Epsilon: 0.5, Delta: 1e-4}
	}
	expected, err := mm.Error(wl, res.Strategy, p)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "error analysis: %v", err)
		return
	}
	lb := mm.LowerBoundFromEigenvalues(res.Eigenvalues, wl.NumQueries(), p)

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	s.strategies[id] = &entry{w: wl, mech: mech}
	s.mu.Unlock()

	writeJSON(w, designResponse{
		Strategy:      id,
		Queries:       wl.NumQueries(),
		Cells:         wl.Cells(),
		ExpectedError: expected,
		LowerBound:    lb,
	})
}

func (s *Server) buildWorkload(req *designRequest) (*workload.Workload, error) {
	switch {
	case req.Workload != "" && req.Rows != nil:
		return nil, fmt.Errorf("provide either workload or rows, not both")
	case req.Workload != "":
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		return wio.ParseWorkloadSpec(req.Workload, rand.New(rand.NewSource(seed)))
	case req.Rows != nil:
		if len(req.Shape) == 0 {
			return nil, fmt.Errorf("rows require a shape")
		}
		shape, err := domain.NewShape(req.Shape...)
		if err != nil {
			return nil, err
		}
		if len(req.Rows) == 0 || len(req.Rows[0]) != shape.Size() {
			return nil, fmt.Errorf("rows must be non-empty with %d columns", shape.Size())
		}
		return workload.FromMatrix("custom", shape, linalg.NewFromRows(req.Rows)), nil
	default:
		return nil, fmt.Errorf("empty design request")
	}
}

type answerRequest struct {
	Strategy  string    `json:"strategy"`
	Dataset   string    `json:"dataset"`
	Histogram []float64 `json:"histogram"`
	Epsilon   float64   `json:"epsilon"`
	Delta     float64   `json:"delta"`
	Seed      int64     `json:"seed,omitempty"`
}

type answerResponse struct {
	Answers []float64 `json:"answers"`
	Ledger  Budget    `json:"ledger"`
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req answerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if req.Dataset == "" {
		httpError(w, http.StatusBadRequest, "dataset name required for budget accounting")
		return
	}
	p := mm.Privacy{Epsilon: req.Epsilon, Delta: req.Delta}
	if err := p.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	ent, ok := s.strategies[req.Strategy]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown strategy %q", req.Strategy)
		return
	}
	if !ent.w.Explicit() {
		httpError(w, http.StatusUnprocessableEntity, "workload too large to answer explicitly; request Estimate-style releases instead")
		return
	}
	if len(req.Histogram) != ent.w.Cells() {
		httpError(w, http.StatusBadRequest, "histogram has %d cells, workload expects %d", len(req.Histogram), ent.w.Cells())
		return
	}
	seed := req.Seed
	if seed == 0 {
		s.mu.Lock()
		s.seedSalt++
		seed = s.seedSalt + 0x5eed
		s.mu.Unlock()
	}
	ans, err := ent.mech.AnswerGaussian(ent.w, req.Histogram, p, rand.New(rand.NewSource(seed)))
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	// Charge the ledger only after a successful release.
	s.mu.Lock()
	b := s.ledger[req.Dataset]
	b.Epsilon += p.Epsilon
	b.Delta += p.Delta
	s.ledger[req.Dataset] = b
	s.mu.Unlock()

	writeJSON(w, answerResponse{Answers: ans, Ledger: b})
}

func (s *Server) handleLedger(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.Lock()
	out := make(map[string]Budget, len(s.ledger))
	for k, v := range s.ledger {
		out[k] = v
	}
	s.mu.Unlock()
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; nothing more to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
