// Package server implements the HTTP release engine for batch query
// answering under (ε,δ)-differential privacy — the paper's deployment
// setting grown into a multi-user service: analysts submit a workload
// once, the server adapts and caches a strategy, datasets are uploaded
// once into a registry, and every release spends privacy budget through
// an accountant that enforces per-dataset caps with atomic
// check-reserve-commit semantics (a release that would exceed the cap is
// refused before any noise is drawn).
//
// Strategy selection is delegated to the unified cost-based planner
// (internal/planner): /design builds the workload, passes the request's
// hints (privacy pair, design-time budget, latency target, forced
// generator) to the planner, and executes the returned plan. The server
// itself contains no generator-ordering logic; the response's "planner"
// block reports which generator won, its modeled cost, the chosen
// inference method, and why every other candidate lost. Strategies are
// cached keyed on the canonical (workload spec, hints) pair, so repeated
// /design of the same request returns the cached plan without re-running
// design.
//
// Release noise is drawn from a crypto-seeded source by default. A
// request may pin a deterministic seed (any value, including 0) for
// reproducible experiments against its own inline histogram only:
// releases against registered datasets refuse pinned seeds (403), since a
// requester who knows the seed can subtract the noise and recover the
// exact data at nominal ε cost. Options.AllowSeededReleases re-enables
// them for single-user debug servers. Inline releases are accounted in
// the reserved "adhoc:" namespace, disjoint from registered names, so
// ad-hoc spend can never pre-hollow a cap installed later for the same
// name nor block its registration.
//
// Endpoints (JSON):
//
//	POST /design    {"workload": "allrange:8x16"} or {"rows": [[...]], "shape": [8,16]}
//	                → {"strategy": id, "queries": m, "cells": n, "form": "eigen|principal|hierarchical|sharded",
//	                   "epsilon": ..., "delta": ..., "cached": bool,
//	                   "expectedError": ..., "lowerBound": ...}   (error fields 0 when skipped at scale)
//	                The "planner" block names the winning generator; for
//	                sharded plans (workloads that split into independent
//	                blocks) it also lists "shards": each shard's
//	                generator, cells, queries, inference and cost.
//	POST /datasets  {"name": "adult", "histogram": [...], "cap": {"epsilon": 2, "delta": 1e-3}}
//	                → {"name": ..., "cells": n, "cap": {...}}    cap optional (absent = unlimited)
//	GET  /datasets  → {"<name>": {"cells": n, "cap": {...}, "spent": {...}, "remaining": {...}}, ...}
//	POST /answer    {"strategy": id, "dataset": name, "histogram": [...],
//	                 "epsilon": 0.5, "delta": 1e-4, "seed": 7, "mode": "answers"|"estimate"}
//	                → {"answers": [...], "ledger": {"epsilon": ..., "delta": ...}}
//	                histogram may be omitted for a registered dataset;
//	                mode "estimate" returns the n-cell private histogram
//	                estimate instead of the m workload answers — the right
//	                choice when m is in the millions (sharded strategies
//	                refuse it with 422: they never measure the joint
//	                histogram). 429 with the
//	                remaining budget when the release would exceed the cap;
//	                403 when a seed is pinned on a registered dataset.
//	POST /release   {"releases": [{"strategy": id, "dataset": name, "epsilon": ...,
//	                 "delta": ..., "seed": ..., "mode": ...}, ...], "parallelism": 8}
//	                → {"results": [{"index": i, "status": 200, "answers": [...],
//	                   "ledger": {...}} | {"index": i, "status": ..., "error": ...,
//	                   "remaining": {...}}], "succeeded": n, "failed": n}
//	                batch releases against registered datasets, answered
//	                concurrently with bounded parallelism; each entry is
//	                charged through the accountant independently (failed
//	                entries are refunded, successful ones committed).
//	GET  /ledger    → {"<dataset>": {"epsilon": ..., "delta": ...}, ...}  committed spend
//	                (inline-histogram releases appear under "adhoc:<name>")
//	GET  /plans     → {"dir": ..., "plans": [{"id": ..., "key": ..., "generator": ...,
//	                   "workload": ..., "cells": ..., "sizeBytes": ...}, ...]}
//	                the durable plan store's entries (404 without a store).
//	DELETE /plans/{id}  withdraws one entry from future restarts; strategies
//	                already serving keep serving.
//
// With Options.StoreDir set (amserve -store), designed plans are
// persisted write-behind to a durable plan store and rehydrated into the
// strategy cache on startup, together with the planner's per-generator
// design-throughput calibration — a restarted server answers previously
// designed specs with cached:true and zero generator builds.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	//lint:allow noiserand: workload-spec sampling RNG for /design (query selection, not release noise); seeded deterministically so identical specs cache-hit
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"adaptivemm/internal/accountant"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/fleet"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/planner"
	"adaptivemm/internal/planstore"
	"adaptivemm/internal/registry"
	"adaptivemm/internal/wio"
	"adaptivemm/internal/workload"
)

// persistQueueCap bounds the plan-persistence write-behind queue. The
// queue decouples /design latency from disk: when it is full the
// incoming write is dropped with a logged reason rather than ever
// blocking a design response (the plan stays served from memory; only
// its durability is lost until the next design of the same spec).
const persistQueueCap = 64

// analysisCap is the largest cell count for which the server computes the
// analytic expected error and lower bound at design time (both need an
// O(n³) dense eigendecomposition); past it the fields are reported as 0.
// It is passed to the planner as the plan's analysis cap.
const analysisCap = 512

// maxCachedPlans bounds the planner's plan cache, one more piece of
// permanent server state kept finite.
const maxCachedPlans = 4096

// maxStoredStrategies bounds the strategy table (and with it the design
// cache, which only references stored ids). Entries are never evicted —
// /answer must keep resolving old ids — so without a bound a client
// could grow server memory without limit through explicit-rows designs
// or by sweeping hint values on one spec.
const maxStoredStrategies = 1 << 16

// maxAnswerRows caps how many values (per-query answers or estimate
// cells) one /answer request may compute and serialize.
const maxAnswerRows = 1 << 20

// adHocPrefix namespaces accountant entries for inline-histogram (ad-hoc)
// releases away from registered dataset names. The separation means
// ad-hoc spend on a name can never pre-hollow a cap installed later for
// the registered dataset of the same name, nor block ("squat") its
// registration; registered names may not start with the prefix.
const adHocPrefix = "adhoc:"

// Limits on permanent server state and request intake. Registered
// histograms and accountant entries are never evicted, so each growth
// path is bounded: without these an unauthenticated client could grow
// the registry or the ad-hoc ledger until the server OOMs.
const (
	// maxRequestBody bounds every request body (histograms dominate:
	// maxHistogramCells JSON numbers at ~25 bytes each fit comfortably).
	maxRequestBody = 64 << 20
	// maxHistogramCells bounds registered histograms; a larger domain
	// could not be released over HTTP anyway (maxAnswerRows).
	maxHistogramCells = maxAnswerRows
	// maxRegisteredDatasets bounds POST /datasets registrations.
	maxRegisteredDatasets = 4096
	// maxTrackedDatasets bounds distinct accountant entries (registered +
	// ad-hoc names); past it, releases under brand-new ad-hoc names are
	// refused.
	maxTrackedDatasets = 1 << 16
)

// Default privacy parameters applied independently when a /design request
// omits one of them (they only drive the reported expected error).
const (
	defaultEpsilon = 0.5
	defaultDelta   = 1e-4
)

// Server holds designed strategies, the strategy cache, the dataset
// registry and the budget accountant. Reads (/answer strategy lookups,
// cache hits) take the read lock, so concurrent releases never serialize
// behind a long-running /design; the registry and accountant have their
// own finer-grained locks.
type Server struct {
	mu         sync.RWMutex
	nextID     int
	strategies map[string]*entry
	// cache maps a canonical (workload spec, hints fingerprint) key to
	// the id of the strategy planned for it, so repeated /design of the
	// same request is O(1) instead of a repeated planning run.
	cache map[string]string

	// pl is the unified cost-based strategy planner every /design goes
	// through; the server adds no generator-ordering logic of its own.
	pl *planner.Planner

	acct *accountant.Accountant
	reg  *registry.Registry
	// regMu serializes dataset registration against the release path's
	// resolve-and-reserve step (see resolveAndReserve), so a cap can
	// never be bypassed by a release racing its installation and the cap
	// is always installed before the dataset becomes resolvable.
	regMu sync.Mutex

	// allowSeeded permits client-pinned noise seeds on releases against
	// registered datasets (see Options.AllowSeededReleases). Never enable
	// on a server guarding shared data.
	allowSeeded bool

	// store is the durable plan store, nil when persistence is off. New
	// plans are persisted through the write-behind queue; on startup the
	// strategy cache and the planner's throughput calibration are
	// rehydrated from it.
	store *planstore.Store
	// persistMu guards persistCh against enqueue-after-Close.
	persistMu     sync.Mutex
	persistCh     chan persistReq
	persistClosed bool
	persistWG     sync.WaitGroup
	logf          func(format string, args ...any)

	// metrics is the server-wide observability core: the metric
	// registry behind GET /metrics and the trace ring behind GET
	// /debug/traces. Built once in Open, read-only afterwards.
	metrics *serverMetrics

	// streamSem bounds concurrent streamed releases (see handleStream):
	// acquired non-blocking, so excess streams fail fast with 503 instead
	// of queuing chunk buffers.
	streamSem chan struct{}

	// byID indexes keyed strategies by their plan content address
	// (planstore.EntryID of the cache key) — the wire identity shard
	// requests and GET /plans/{id}/raw resolve. Guarded by mu.
	byID map[string]planRef

	// fleetSt is the coordinator role (Options.FleetWorkers), workerSt
	// the worker role (Options.CoordinatorURL); both nil on a standalone
	// server. See fleet.go.
	fleetSt  *fleetState
	workerSt *workerFleetState
	// fetched caches plans resolved by content address (local store or
	// coordinator fetch), bounded FIFO; see cacheFetched.
	fetchedMu    sync.Mutex
	fetched      map[string]*planner.Plan
	fetchedOrder []string
}

// persistReq is one queued write-behind persistence job.
type persistReq struct {
	key  string
	plan *planner.Plan
}

// Options configures a Server.
type Options struct {
	// AllowSeededReleases permits client-pinned noise seeds on releases
	// against registered datasets. A pinned seed lets the requester
	// regenerate the noise stream locally, subtract it from the answers
	// and recover the exact data while the accountant charges only the
	// nominal ε — total privacy loss. This is a debug flag for
	// single-user test servers only; reproducible experiments should use
	// the library API, not the multi-user engine. Seeds on inline ad-hoc
	// histograms are always allowed (the client supplied that data).
	AllowSeededReleases bool

	// StoreDir, when non-empty, enables plan persistence: designed plans
	// are written (asynchronously) to a planstore in this directory, and
	// a new server rehydrates its strategy cache and design-throughput
	// calibration from it on startup. Use Open, which can report store
	// errors; NewWithOptions panics on them.
	StoreDir string

	// StoreQuotaBytes, when positive, bounds the plan store's total plan
	// bytes: past the budget, the least-recently-served entries are
	// evicted (amserve -store-quota). 0 means unlimited. Ignored without
	// StoreDir.
	StoreQuotaBytes int64

	// MaxConcurrentStreams bounds how many streamed releases run at once;
	// per-connection streaming memory is ChunkSize × this. 0 applies
	// defaultMaxStreams. Excess streamed requests are refused with 503
	// rather than queued, so they never pile up buffers.
	MaxConcurrentStreams int

	// Logf receives operational messages (rehydration skips, persistence
	// failures). nil means the standard library logger.
	Logf func(format string, args ...any)

	// FleetWorkers lists worker base URLs; non-empty makes this server a
	// fleet coordinator (amserve -workers): sharded plans route their
	// per-shard inference to the fleet, falling back to local inference
	// when a shard's workers are all down.
	FleetWorkers []string

	// CoordinatorURL makes this server a fleet worker of that
	// coordinator (amserve -worker-of): plans referenced by POST /shards
	// that the worker has never seen are fetched from the coordinator by
	// content address.
	CoordinatorURL string

	// FleetTransport overrides the coordinator's HTTP transport for
	// shard requests and health probes — the fault-injection seam
	// (fleet.FaultRoundTripper). nil means http.DefaultTransport.
	FleetTransport http.RoundTripper

	// ShardTimeout bounds one remote shard attempt; 0 applies
	// fleet.DefaultShardTimeout.
	ShardTimeout time.Duration

	// FleetRequireRemote disables the coordinator's local-inference
	// fallback so a fleet-wide failure fails the release instead of
	// degrading it. For tests proving budget settlement; production
	// coordinators keep the fallback.
	FleetRequireRemote bool

	// FleetProbeInterval is the coordinator's background health re-probe
	// period: 0 applies the default (2s), negative disables the loop
	// (deterministic tests; traffic still re-probes via backoff expiry).
	FleetProbeInterval time.Duration
}

// entry wraps one stored plan. The plan carries the workload, the
// prepared mechanism, the chosen generator and inference method, and the
// per-privacy-pair memoized error analysis — everything the release path
// needs without re-deciding anything.
type entry struct {
	plan *planner.Plan
}

// Budget is cumulative privacy spend under basic sequential composition.
type Budget struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

func fromAcct(b accountant.Budget) Budget { return Budget{Epsilon: b.Epsilon, Delta: b.Delta} }

// New returns an empty server with default (production) options.
func New() *Server {
	return NewWithOptions(Options{})
}

// NewWithOptions returns an empty server configured by opts. It panics
// if opts.StoreDir cannot be opened; servers with persistence should use
// Open and handle the error.
func NewWithOptions(opts Options) *Server {
	s, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Open returns a server configured by opts. With a StoreDir it opens the
// plan store, restores the planner's per-generator design-throughput
// calibration, rehydrates every compatible stored plan into the strategy
// cache (corrupt or incompatible entries are skipped with a logged
// reason), and starts the write-behind persistence worker.
func Open(opts Options) (*Server, error) {
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	maxStreams := opts.MaxConcurrentStreams
	if maxStreams <= 0 {
		maxStreams = defaultMaxStreams
	}
	s := &Server{
		strategies:  map[string]*entry{},
		cache:       map[string]string{},
		byID:        map[string]planRef{},
		pl:          planner.New(planner.Config{CacheSize: maxCachedPlans}),
		acct:        accountant.New(),
		reg:         registry.New(),
		allowSeeded: opts.AllowSeededReleases,
		logf:        logf,
		streamSem:   make(chan struct{}, maxStreams),
	}
	// The metrics core exists before any role wiring or rehydration so
	// every later step (fleet counters, stage timers on rehydrated
	// plans, store eviction counting) registers against it.
	s.metrics = newServerMetrics(s)
	if len(opts.FleetWorkers) > 0 && opts.CoordinatorURL != "" {
		return nil, fmt.Errorf("server: a fleet coordinator cannot also be a worker; -workers and -worker-of are mutually exclusive")
	}
	if len(opts.FleetWorkers) > 0 {
		client := fleet.NewClient(opts.FleetWorkers, &http.Client{Transport: opts.FleetTransport}, opts.ShardTimeout)
		if len(client.Registry.URLs()) == 0 {
			return nil, fmt.Errorf("server: fleet coordinator configured with no usable worker URLs")
		}
		s.fleetSt = &fleetState{
			client:        client,
			requireRemote: opts.FleetRequireRemote,
			stop:          make(chan struct{}),
		}
		s.metrics.registerFleetMetrics(s.fleetSt)
		interval := opts.FleetProbeInterval
		if interval == 0 {
			interval = defaultProbeInterval
		}
		if interval > 0 {
			s.startFleetProbes(interval)
		}
	}
	if opts.CoordinatorURL != "" {
		s.workerSt = &workerFleetState{
			coordinator: strings.TrimRight(opts.CoordinatorURL, "/"),
			hc:          &http.Client{Timeout: 30 * time.Second},
		}
		s.metrics.registerWorkerMetrics(s.workerSt)
	}
	if opts.StoreDir == "" {
		return s, nil
	}
	store, err := planstore.Open(opts.StoreDir)
	if err != nil {
		return nil, err
	}
	s.store = store
	if opts.StoreQuotaBytes > 0 {
		// Every quota-eviction log line counts once in
		// am_store_evictions_total on its way to the store component log.
		store.SetQuota(opts.StoreQuotaBytes, func(format string, args ...any) {
			s.metrics.evictions.Inc()
			s.warnf(compStore, format, args...)
		})
	}
	if rates, err := store.LoadCalibration(); err != nil {
		s.warnf(compStore, "ignoring design-throughput calibration: %v", err)
	} else if len(rates) > 0 {
		s.pl.RestoreRates(rates)
	}
	loaded, err := store.LoadAll(func(format string, args ...any) {
		s.warnf(compStore, format, args...)
	})
	if err != nil {
		return nil, err
	}
	for _, l := range loaded {
		if len(s.strategies) >= maxStoredStrategies {
			s.warnf(compStore, "strategy table full at %d entries; remaining stored plans not rehydrated", maxStoredStrategies)
			break
		}
		s.nextID++
		id := fmt.Sprintf("s%d", s.nextID)
		ent := &entry{plan: l.Plan}
		s.instrumentPlan(ent.plan.Mechanism)
		s.strategies[id] = ent
		s.cache[l.Meta.Key] = id
		s.recordPlanID(l.Meta.Key, ent)
		s.attachFleet(l.Meta.Key, ent)
	}
	if len(loaded) > 0 {
		s.infof(compStore, "rehydrated %d plan(s) from %s", len(loaded), opts.StoreDir)
	}
	s.persistCh = make(chan persistReq, persistQueueCap)
	s.persistWG.Add(1)
	go s.persistLoop()
	return s, nil
}

// persistLoop is the write-behind worker: it drains the queue, writing
// each plan and a fresh calibration snapshot to the store. Persistence
// failures are logged, never surfaced to the designing client (the plan
// is already serving from memory).
func (s *Server) persistLoop() {
	defer s.persistWG.Done()
	for req := range s.persistCh {
		if _, err := s.store.Put(req.key, req.plan); err != nil {
			s.warnf(compPersist, "persisting plan %q: %v", req.key, err)
			continue
		}
		if err := s.store.SaveCalibration(s.pl.RateSnapshot()); err != nil {
			s.warnf(compPersist, "persisting calibration: %v", err)
		}
	}
}

// enqueuePersist hands a freshly designed plan to the write-behind
// worker. It never blocks: with the queue full the write is dropped with
// a logged reason (the plan still serves from memory; durability catches
// up on the next design of the same spec).
func (s *Server) enqueuePersist(key string, plan *planner.Plan) {
	if s.store == nil || key == "" {
		return
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.persistClosed {
		return
	}
	select {
	case s.persistCh <- persistReq{key: key, plan: plan}:
	default:
		s.metrics.persistDrops.Inc()
		s.warnf(compPersist, "plan-persistence queue full (%d pending); dropping write for %q", persistQueueCap, key)
	}
}

// Close stops the fleet's background health probes, flushes the
// plan-persistence write-behind queue and saves a final calibration
// snapshot. The HTTP handler must be drained first
// (http.Server.Shutdown). It is safe to call on a server without a
// store, and more than once.
func (s *Server) Close() error {
	s.stopFleet()
	if s.store == nil {
		return nil
	}
	s.persistMu.Lock()
	if s.persistClosed {
		s.persistMu.Unlock()
		return nil
	}
	s.persistClosed = true
	close(s.persistCh)
	s.persistMu.Unlock()
	s.persistWG.Wait()
	return s.store.SaveCalibration(s.pl.RateSnapshot())
}

// Handler returns the HTTP handler for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/design", s.handleDesign)
	mux.HandleFunc("/datasets", s.handleDatasets)
	mux.HandleFunc("/answer", s.handleAnswer)
	mux.HandleFunc("/release", s.handleRelease)
	mux.HandleFunc("/ledger", s.handleLedger)
	mux.HandleFunc("/plans", s.handlePlans)
	mux.HandleFunc("/plans/", s.handlePlanByID)
	mux.HandleFunc("/fleet", s.handleFleet)
	mux.HandleFunc("/shards/", s.handleShard)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	return s.metrics.wrap(http.MaxBytesHandler(mux, maxRequestBody))
}

// decodeJSON decodes the request body into v, writing the error response
// (413 for oversized bodies, 400 otherwise) itself; callers just return
// on false.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds the %d-byte cap", mbe.Limit)
		} else {
			httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		}
		return false
	}
	return true
}

type designRequest struct {
	// Workload is a compact spec like "allrange:8x16" (see wio).
	Workload string `json:"workload,omitempty"`
	// Rows + Shape provide an explicit query matrix instead.
	Rows  [][]float64 `json:"rows,omitempty"`
	Shape []int       `json:"shape,omitempty"`
	// Seed drives randomized workload specs.
	Seed int64 `json:"seed,omitempty"`
	// Epsilon/Delta are used only to report the expected error. Each
	// defaults independently when omitted.
	Epsilon float64 `json:"epsilon,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
	// MaxDesignMillis bounds how long strategy design may take: the
	// planner skips generators whose modeled cost exceeds it. 0 applies
	// the default design budget.
	MaxDesignMillis int64 `json:"maxDesignMillis,omitempty"`
	// LatencyTargetMillis is the per-release latency to aim for; a tight
	// target makes the plan prepare the dense pseudo-inverse when the
	// strategy fits it.
	LatencyTargetMillis int64 `json:"latencyTargetMillis,omitempty"`
	// Generator forces a named planner generator instead of the
	// cost-based choice.
	Generator string `json:"generator,omitempty"`
}

// plannerReport is the /design response block naming the winning
// generator and why every other candidate lost. For sharded plans it
// also lists each shard's generator, cost and inference method.
type plannerReport struct {
	Generator    string              `json:"generator"`
	Note         string              `json:"note,omitempty"`
	ModeledCost  float64             `json:"modeledCost"`
	DesignMillis float64             `json:"designMillis"`
	Inference    string              `json:"inference"`
	Shards       []planner.ShardInfo `json:"shards,omitempty"`
	Considered   []planner.Decision  `json:"considered,omitempty"`
}

type designResponse struct {
	Strategy string `json:"strategy"`
	Queries  int    `json:"queries"`
	Cells    int    `json:"cells"`
	// Form is the legacy short name of the winning generator ("eigen",
	// "principal", "hierarchical", ...); see Planner for the full report.
	Form string `json:"form"`
	// Epsilon/Delta echo the privacy pair the error analysis used,
	// including any defaulted component.
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	// Cached reports that the strategy came from the cache, not a fresh
	// planning run.
	Cached        bool    `json:"cached"`
	ExpectedError float64 `json:"expectedError"`
	LowerBound    float64 `json:"lowerBound"`
	// Planner reports which generator won, its modeled cost and the
	// chosen inference method, plus every candidate's admission outcome.
	Planner plannerReport `json:"planner"`
}

// formFor maps generator names onto the legacy "form" field values.
func formFor(generator string) string {
	switch generator {
	case "eigen-separation":
		return "separated"
	case "principal-vectors":
		return "principal"
	default:
		return generator
	}
}

func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req designRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// Default each privacy field independently: a request carrying only ε
	// (or only δ) is valid and must not reach the error analysis as an
	// invalid pair.
	p := mm.Privacy{Epsilon: req.Epsilon, Delta: req.Delta}
	if p.Epsilon == 0 {
		p.Epsilon = defaultEpsilon
	}
	if p.Delta == 0 {
		p.Delta = defaultDelta
	}
	if err := p.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hints := s.hintsFor(&req, p)

	key := s.cacheKey(&req, hints)
	if key != "" {
		s.mu.RLock()
		id, ok := s.cache[key]
		var ent *entry
		if ok {
			ent = s.strategies[id]
		}
		s.mu.RUnlock()
		if ent != nil {
			s.metrics.cacheHits.Inc()
			if s.store != nil {
				// A cache hit is this plan being served: protect its stored
				// entry from quota eviction.
				s.store.Touch(planstore.EntryID(key))
			}
			s.respondDesign(w, id, ent, p, true)
			return
		}
	}

	// Refuse before planning: a server at its strategy bound must not
	// burn a full (possibly O(n³)) design per rejected request.
	s.mu.RLock()
	full := len(s.strategies) >= maxStoredStrategies
	s.mu.RUnlock()
	if full {
		httpError(w, http.StatusInsufficientStorage,
			"server stores its limit of %d strategies; reuse an existing strategy id", maxStoredStrategies)
		return
	}

	wl, err := s.buildWorkload(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !wl.Answerable() {
		httpError(w, http.StatusUnprocessableEntity, "workload %q is analyzable only, not answerable", wl.Name())
		return
	}

	hints.CacheKey = key
	s.metrics.cacheMisses.Inc()
	t0 := time.Now()
	plan, err := s.pl.Plan(wl, hints)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "design failed: %v", err)
		return
	}
	s.metrics.designSec.ObserveSince(t0)
	if c, ok := s.metrics.designs[plan.Generator]; ok {
		c.Inc()
	}
	ent := &entry{plan: plan}
	s.instrumentPlan(plan.Mechanism)

	s.mu.Lock()
	if len(s.strategies) >= maxStoredStrategies {
		s.mu.Unlock()
		httpError(w, http.StatusInsufficientStorage,
			"server stores its limit of %d strategies; reuse an existing strategy id", maxStoredStrategies)
		return
	}
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	s.strategies[id] = ent
	if key != "" {
		// Concurrent designs of the same request can both get here; the
		// last one wins the cache slot and the loser's strategy stays
		// usable under its own id.
		s.cache[key] = id
		s.recordPlanID(key, ent)
	}
	s.mu.Unlock()

	// A sharded plan on a coordinator routes through the fleet from its
	// first release.
	s.attachFleet(key, ent)

	// Durability is write-behind: the response never waits on disk.
	s.enqueuePersist(key, plan)

	s.respondDesign(w, id, ent, p, false)
}

// hintsFor translates the request's knobs into planner hints.
func (s *Server) hintsFor(req *designRequest, p mm.Privacy) planner.Hints {
	return planner.Hints{
		Privacy:       p,
		MaxDesignTime: time.Duration(req.MaxDesignMillis) * time.Millisecond,
		LatencyTarget: time.Duration(req.LatencyTargetMillis) * time.Millisecond,
		Generator:     req.Generator,
		AnalysisCap:   analysisCap,
	}
}

// cacheKey returns the canonical cache key for a spec-based design
// request — the workload spec (with sampling seed) plus the hint
// fingerprint — or "" when the request is not cacheable (explicit rows).
// The privacy pair is deliberately not part of the key: it never changes
// the winning generator, and per-pair error analyses are memoized on the
// plan.
func (s *Server) cacheKey(req *designRequest, hints planner.Hints) string {
	if req.Workload == "" || req.Rows != nil {
		return ""
	}
	// The construction is shared with the plan store (and amdesign -save)
	// so offline-designed plans land in the cache slot a /design of the
	// same spec looks up.
	return planstore.CanonicalKey(req.Workload, req.Seed, hints.Fingerprint())
}

// respondDesign writes the design response; the error analysis for the
// requested privacy pair is memoized on the plan.
func (s *Server) respondDesign(w http.ResponseWriter, id string, ent *entry, p mm.Privacy, cached bool) {
	plan := ent.plan
	expected, err := plan.ExpectedError(p)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "error analysis: %v", err)
		return
	}
	writeJSON(w, designResponse{
		Strategy:      id,
		Queries:       plan.Workload.NumQueries(),
		Cells:         plan.Workload.Cells(),
		Form:          formFor(plan.Generator),
		Epsilon:       p.Epsilon,
		Delta:         p.Delta,
		Cached:        cached,
		ExpectedError: expected,
		LowerBound:    plan.LowerBound(p),
		Planner: plannerReport{
			Generator:    plan.Generator,
			Note:         plan.Note,
			ModeledCost:  plan.ModeledCost,
			DesignMillis: float64(plan.DesignTime) / float64(time.Millisecond),
			Inference:    plan.Inference.String(),
			Shards:       plan.Shards,
			Considered:   plan.Decisions,
		},
	})
}

func (s *Server) buildWorkload(req *designRequest) (*workload.Workload, error) {
	switch {
	case req.Workload != "" && req.Rows != nil:
		return nil, fmt.Errorf("provide either workload or rows, not both")
	case req.Workload != "":
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		return wio.ParseWorkloadSpec(req.Workload, rand.New(rand.NewSource(seed)))
	case req.Rows != nil:
		if len(req.Shape) == 0 {
			return nil, fmt.Errorf("rows require a shape")
		}
		shape, err := domain.NewShape(req.Shape...)
		if err != nil {
			return nil, err
		}
		if len(req.Rows) == 0 {
			return nil, fmt.Errorf("rows must be non-empty with %d columns", shape.Size())
		}
		// Every row must match the domain: a single ragged row would
		// otherwise reach the dense constructor undetected.
		for i, row := range req.Rows {
			if len(row) != shape.Size() {
				return nil, fmt.Errorf("row %d has %d columns, want %d", i, len(row), shape.Size())
			}
		}
		return workload.FromMatrix("custom", shape, linalg.NewFromRows(req.Rows)), nil
	default:
		return nil, fmt.Errorf("empty design request")
	}
}

// --- dataset registry endpoints ---

type datasetRequest struct {
	Name      string    `json:"name"`
	Histogram []float64 `json:"histogram"`
	// Cap is an optional per-dataset privacy budget cap; a zero or absent
	// component is unlimited.
	Cap *Budget `json:"cap,omitempty"`
}

type datasetResponse struct {
	Name  string  `json:"name"`
	Cells int     `json:"cells"`
	Cap   *Budget `json:"cap,omitempty"`
}

type datasetInfo struct {
	Cells     int     `json:"cells"`
	Cap       *Budget `json:"cap,omitempty"`
	Spent     Budget  `json:"spent"`
	Remaining *Budget `json:"remaining,omitempty"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req datasetRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		// Validate up front so the cap is never installed for a
		// registration that cannot complete.
		if req.Name == "" {
			httpError(w, http.StatusBadRequest, "registry: dataset name required")
			return
		}
		if strings.HasPrefix(req.Name, adHocPrefix) {
			// The prefix is the accountant namespace for inline releases; a
			// registered name inside it could collide with (and be charged
			// by) some other name's ad-hoc spend.
			httpError(w, http.StatusBadRequest,
				"registry: dataset names starting with %q are reserved for ad-hoc release accounting", adHocPrefix)
			return
		}
		if len(req.Histogram) == 0 {
			httpError(w, http.StatusBadRequest, "registry: dataset %q has an empty histogram", req.Name)
			return
		}
		if len(req.Histogram) > maxHistogramCells {
			httpError(w, http.StatusRequestEntityTooLarge,
				"registry: histogram has %d cells, past the %d-cell cap (larger domains cannot be released over HTTP)",
				len(req.Histogram), maxHistogramCells)
			return
		}
		if req.Cap != nil {
			// The accountant treats non-positive components as unlimited,
			// so a typo like {"epsilon": -1} would silently uncap the
			// dataset; reject it, and reject the all-zero cap for the same
			// reason (omit cap entirely for an unlimited dataset).
			if req.Cap.Epsilon < 0 || req.Cap.Delta < 0 {
				httpError(w, http.StatusBadRequest,
					"registry: cap components must be non-negative, got (ε=%g, δ=%g)", req.Cap.Epsilon, req.Cap.Delta)
				return
			}
			if req.Cap.Epsilon == 0 && req.Cap.Delta == 0 {
				httpError(w, http.StatusBadRequest,
					"registry: cap must bound at least one of ε, δ; omit the cap for an unlimited dataset")
				return
			}
		}
		s.regMu.Lock()
		defer s.regMu.Unlock()
		if _, err := s.reg.Get(req.Name); err == nil {
			// Refuse before touching the accountant: a failed duplicate
			// registration must not alter the existing dataset's cap.
			httpError(w, http.StatusConflict, "%v: %q", registry.ErrExists, req.Name)
			return
		}
		// Registered histograms are retained for the server's lifetime, so
		// the registry is bounded too.
		if s.reg.Len() >= maxRegisteredDatasets {
			httpError(w, http.StatusInsufficientStorage,
				"registry holds its limit of %d datasets", maxRegisteredDatasets)
			return
		}
		// Install the cap before the dataset becomes visible to releases:
		// a release can only reserve after reg.Get succeeds, so it always
		// sees the cap.
		if req.Cap != nil {
			if err := s.acct.SetCap(req.Name, accountant.Budget{Epsilon: req.Cap.Epsilon, Delta: req.Cap.Delta}); err != nil {
				// Unreachable after the validation above; refuse anyway
				// rather than register uncapped.
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
		if err := s.reg.Put(req.Name, req.Histogram); err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, registry.ErrExists) {
				code = http.StatusConflict
			}
			httpError(w, code, "%v", err)
			return
		}
		writeJSON(w, datasetResponse{Name: req.Name, Cells: len(req.Histogram), Cap: req.Cap})
	case http.MethodGet:
		out := map[string]datasetInfo{}
		for _, name := range s.reg.Names() {
			d, err := s.reg.Get(name)
			if err != nil {
				continue
			}
			info := datasetInfo{Cells: d.Cells(), Spent: fromAcct(s.acct.Spent(name))}
			if cap, ok := s.acct.Cap(name); ok {
				b := fromAcct(cap)
				info.Cap = &b
			}
			if rem, ok := s.acct.Remaining(name); ok {
				b := fromAcct(rem)
				info.Remaining = &b
			}
			out[name] = info
		}
		writeJSON(w, out)
	default:
		httpError(w, http.StatusMethodNotAllowed, "POST or GET required")
	}
}

// --- plan-store endpoints ---

// plansResponse lists the durable plan store's entries.
type plansResponse struct {
	// Dir is the store directory.
	Dir string `json:"dir"`
	// Plans lists each entry's id (the DELETE handle), cache key,
	// generator, workload fingerprint and size.
	Plans []planstore.Meta `json:"plans"`
}

func (s *Server) handlePlans(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.store == nil {
		httpError(w, http.StatusNotFound, "no plan store configured (start the server with a store directory)")
		return
	}
	metas, err := s.store.List()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "listing plan store: %v", err)
		return
	}
	if metas == nil {
		metas = []planstore.Meta{}
	}
	writeJSON(w, plansResponse{Dir: s.store.Dir(), Plans: metas})
}

// handlePlanByID dispatches the by-id plan routes:
//
//	GET    /plans/{id}      one entry's stored metadata
//	GET    /plans/{id}/raw  the entry's verified encoded bytes — the
//	                        fleet's plan-distribution payload
//	DELETE /plans/{id}      withdraw the entry from future restarts
//
// A strategy already rehydrated or designed in this process keeps
// serving after DELETE — /answer ids stay valid for the server's
// lifetime; only durability is withdrawn. A GET racing quota eviction
// gets a 404 naming the eviction, never a 500: listing and loading are
// deliberately not atomic (see planstore.Store).
func (s *Server) handlePlanByID(w http.ResponseWriter, r *http.Request) {
	id, sub, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/plans/"), "/")
	if id == "" {
		httpError(w, http.StatusBadRequest, "/plans/{id} with an id from GET /plans")
		return
	}
	switch {
	case r.Method == http.MethodGet && sub == "raw":
		s.handlePlanRaw(w, id)
	case r.Method == http.MethodGet && sub == "":
		s.handlePlanMeta(w, id)
	case r.Method == http.MethodDelete && sub == "":
		s.handlePlanDelete(w, id)
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or DELETE /plans/{id}, or GET /plans/{id}/raw")
	}
}

// planNotFound writes the by-id 404, naming the quota eviction when the
// store remembers one — the answer to "GET /plans listed it a moment
// ago" is "the quota evicted it in between", not a server error.
func (s *Server) planNotFound(w http.ResponseWriter, id string) {
	if s.store != nil {
		if t, ok := s.store.Evicted(id); ok {
			httpError(w, http.StatusNotFound,
				"plan %q was evicted by the store quota at %s; re-design its workload to restore it",
				id, t.UTC().Format(time.RFC3339))
			return
		}
	}
	httpError(w, http.StatusNotFound, "no stored plan %q", id)
}

func (s *Server) handlePlanMeta(w http.ResponseWriter, id string) {
	if s.store == nil {
		httpError(w, http.StatusNotFound, "no plan store configured (start the server with a store directory)")
		return
	}
	meta, err := s.store.Stat(id)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			s.planNotFound(w, id)
		} else {
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, meta)
}

// handlePlanRaw serves the entry's verified encoded bytes. The store is
// preferred; a coordinator without a store (or whose entry was evicted)
// re-encodes the in-memory plan, so workers can always fetch any plan
// the coordinator is actively serving.
func (s *Server) handlePlanRaw(w http.ResponseWriter, id string) {
	if !planstore.ValidID(id) {
		httpError(w, http.StatusBadRequest, "plan id %q is not a content address", id)
		return
	}
	var storeErr error
	if s.store != nil {
		blob, err := s.store.GetRaw(id)
		if err == nil {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
			_, _ = w.Write(blob)
			return
		}
		storeErr = err
	}
	s.mu.RLock()
	ref, ok := s.byID[id]
	s.mu.RUnlock()
	if ok {
		blob, _, err := planstore.EncodeEntry(ref.key, ref.ent.plan, time.Now())
		if err != nil {
			httpError(w, http.StatusInternalServerError, "encoding plan %s: %v", id, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
		_, _ = w.Write(blob)
		return
	}
	if storeErr != nil && !errors.Is(storeErr, os.ErrNotExist) {
		httpError(w, http.StatusInternalServerError, "reading stored plan %s: %v", id, storeErr)
		return
	}
	s.planNotFound(w, id)
}

func (s *Server) handlePlanDelete(w http.ResponseWriter, id string) {
	if s.store == nil {
		httpError(w, http.StatusNotFound, "no plan store configured (start the server with a store directory)")
		return
	}
	if err := s.store.Delete(id); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			s.planNotFound(w, id)
		} else {
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, map[string]string{"deleted": id})
}

func (s *Server) handleLedger(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	out := map[string]Budget{}
	for _, name := range s.acct.Datasets() {
		spent := s.acct.Spent(name)
		if spent.Epsilon == 0 && spent.Delta == 0 {
			// Tracked but never charged (e.g. only refunded releases):
			// not yet part of the spend ledger.
			continue
		}
		out[name] = fromAcct(spent)
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; nothing more to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
