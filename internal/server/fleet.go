package server

// Distributed release fleet. A coordinator server routes the per-shard
// inference of sharded plans to worker servers over HTTP; the wire
// contract is the plan's content address (planstore.EntryID of its
// cache key), so a worker that has never seen a plan fetches its
// encoded entry from the coordinator (GET /plans/{id}/raw), verifies it
// against the address, and caches it. Only the deterministic per-shard
// solve moves to the worker — the coordinator draws the noise stream,
// reserves the privacy budget once, and commits only after every shard
// returns, so distributed answers are bit-identical to local ones and a
// failed release refunds its entire reservation. A shard whose workers
// are all down falls back to local inference (counted in "degraded"):
// a dead worker degrades latency, never availability.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"adaptivemm/internal/fleet"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/obs"
	"adaptivemm/internal/planner"
	"adaptivemm/internal/planstore"
)

// defaultProbeInterval is how often a coordinator re-probes down
// workers in the background when Options.FleetProbeInterval is 0. Under
// traffic the shard requests themselves double as probes; the
// background loop only matters for idle fleets.
const defaultProbeInterval = 2 * time.Second

// maxFetchedPlans bounds the worker-side cache of plans resolved by
// content address (from the local store or fetched from the
// coordinator); past it the oldest fetch is dropped and would be
// re-fetched on next use.
const maxFetchedPlans = 128

// fleetState is the coordinator side of the fleet: the routing client
// plus the background health-probe loop.
type fleetState struct {
	client *fleet.Client
	// requireRemote disables the local-inference fallback so tests can
	// prove what a release does when the fleet alone must answer.
	requireRemote bool
	// degraded counts shards served by local fallback after the fleet
	// failed them. Registry-backed (am_fleet_degraded_total): the GET
	// /fleet JSON and the /metrics scrape read the same atomic.
	degraded *obs.Counter

	stop     chan struct{}
	stopOnce sync.Once
	probeWG  sync.WaitGroup
}

// workerFleetState is the worker side: where to fetch plans it has
// never seen.
type workerFleetState struct {
	coordinator string
	hc          *http.Client
	// fetches counts plans fetched from the coordinator.
	// Registry-backed (am_fleet_plan_fetches_total).
	fetches *obs.Counter
	// fetchMu single-flights coordinator fetches: concurrent shard
	// requests for one unknown plan (the common case — every shard of a
	// release lands at once) resolve with one transfer.
	fetchMu sync.Mutex
}

// planRef ties a strategy entry to its plan-store identity so the
// by-content-address lookups (shard requests, raw plan serving) reach
// the same in-memory plan the strategy id serves.
type planRef struct {
	key string
	ent *entry
}

// fleetShardBackend routes one sharded mechanism's per-shard inference
// through the fleet, falling back to the local shard solver when the
// fleet fails — the release is slower, never unavailable. It is
// attached at design/rehydration time (see attachFleet) and holds no
// per-release state, so concurrent releases share it.
type fleetShardBackend struct {
	s      *Server
	mech   *mm.Mechanism
	planID string
}

func (b *fleetShardBackend) InferShard(tr *obs.Trace, shard int, dst, y []float64) error {
	fs := b.s.fleetSt
	err := fs.client.InferShard(context.Background(), tr, b.planID, shard, dst, y)
	if err == nil {
		return nil
	}
	if fs.requireRemote {
		return err
	}
	fs.degraded.Inc()
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	b.s.warnf(compFleet, "shard %d of plan %s served locally after fleet error: %v", shard, b.planID, err)
	lerr := b.mech.InferShardLocal(shard, dst, y)
	if tr != nil {
		tr.AddSpan("shard:"+strconv.Itoa(shard)+":local-fallback", t0)
	}
	return lerr
}

// attachFleet routes a sharded plan's inference through the fleet. A
// no-op on non-coordinators, uncacheable (explicit-rows) designs, and
// non-sharded plans — those have no per-shard work to distribute.
func (s *Server) attachFleet(key string, ent *entry) {
	if s.fleetSt == nil || key == "" {
		return
	}
	mech := ent.plan.Mechanism
	if mech.Shards() == nil {
		return
	}
	b := &fleetShardBackend{s: s, mech: mech, planID: planstore.EntryID(key)}
	if err := mech.SetShardBackend(b); err != nil {
		s.warnf(compFleet, "attaching fleet backend to plan %s: %v", b.planID, err)
	}
}

// recordPlanID indexes a keyed strategy by its content address for the
// by-id lookups. Caller holds s.mu.
func (s *Server) recordPlanID(key string, ent *entry) {
	if key == "" {
		return
	}
	s.byID[planstore.EntryID(key)] = planRef{key: key, ent: ent}
}

// startFleetProbes runs the coordinator's background re-probe loop.
func (s *Server) startFleetProbes(interval time.Duration) {
	fs := s.fleetSt
	fs.probeWG.Add(1)
	go func() {
		defer fs.probeWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-fs.stop:
				return
			case <-t.C:
				fs.client.ProbeDown(context.Background())
			}
		}
	}()
}

// stopFleet stops the probe loop and waits for it. Safe without a
// fleet and safe to call more than once.
func (s *Server) stopFleet() {
	if s.fleetSt == nil {
		return
	}
	s.fleetSt.stopOnce.Do(func() { close(s.fleetSt.stop) })
	s.fleetSt.probeWG.Wait()
}

// --- worker shard endpoint ---

// handleShard serves POST /shards/{planID}/{shard}: decode the noisy
// measurement vector, solve the shard with the plan's own deterministic
// inference, and return the sub-domain estimate — both vectors in the
// exact-bits wire framing, so the distributed release reproduces the
// local one bit for bit.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	id, shardStr, ok := strings.Cut(strings.TrimPrefix(r.URL.Path, "/shards/"), "/")
	shard, convErr := strconv.Atoi(shardStr)
	if !ok || convErr != nil || shard < 0 || !planstore.ValidID(id) {
		httpError(w, http.StatusBadRequest, "POST /shards/{planID}/{shard} with a plan content address and a shard index")
		return
	}
	// An incoming X-AM-Trace header makes this shard call a child of
	// the coordinator's release trace: the worker records its own
	// decode/infer/encode spans under the propagated parent ID, visible
	// at this worker's GET /debug/traces.
	var tr *obs.Trace
	if parent := r.Header.Get(fleet.TraceHeader); parent != "" {
		tr = obs.NewTrace("shard", parent)
	}
	finish := func(status int) {
		tr.Finish(status)
		s.metrics.ring.Put(tr)
	}
	mech, rerr := s.resolvePlanByID(id)
	if rerr != nil {
		finish(rerr.code)
		writeReleaseError(w, rerr)
		return
	}
	rows, cells, err := mech.ShardDims(shard)
	if err != nil {
		finish(http.StatusUnprocessableEntity)
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	tDecode := time.Now()
	blob, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			finish(http.StatusRequestEntityTooLarge)
			httpError(w, http.StatusRequestEntityTooLarge, "shard vector exceeds the %d-byte cap", mbe.Limit)
		} else {
			finish(http.StatusBadRequest)
			httpError(w, http.StatusBadRequest, "reading shard vector: %v", err)
		}
		return
	}
	y := make([]float64, rows)
	if err := fleet.DecodeVectorInto(y, blob); err != nil {
		finish(http.StatusBadRequest)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tr.AddSpan("decode", tDecode)
	tInfer := time.Now()
	dst := make([]float64, cells)
	if err := mech.InferShardLocal(shard, dst, y); err != nil {
		finish(http.StatusUnprocessableEntity)
		httpError(w, http.StatusUnprocessableEntity, "shard %d inference: %v", shard, err)
		return
	}
	tr.AddSpan("infer", tInfer)
	s.metrics.shardRequests.Inc()
	tEncode := time.Now()
	out := fleet.AppendVector(make([]byte, 0, 16+8*len(dst)+8), dst)
	tr.AddSpan("encode", tEncode)
	finish(http.StatusOK)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(out)))
	_, _ = w.Write(out)
}

// resolvePlanByID resolves a plan content address to its mechanism:
// first the strategies designed or rehydrated here, then the bounded
// fetched-plan cache, then the local store, and finally — on a worker —
// a fetch from the coordinator.
func (s *Server) resolvePlanByID(id string) (*mm.Mechanism, *releaseError) {
	s.mu.RLock()
	ref, ok := s.byID[id]
	s.mu.RUnlock()
	if ok {
		return ref.ent.plan.Mechanism, nil
	}
	s.fetchedMu.Lock()
	plan, ok := s.fetched[id]
	s.fetchedMu.Unlock()
	if ok {
		return plan.Mechanism, nil
	}
	if s.store != nil {
		if plan, _, err := s.store.Load(id); err == nil {
			s.cacheFetched(id, plan)
			return plan.Mechanism, nil
		}
	}
	if s.workerSt != nil {
		s.workerSt.fetchMu.Lock()
		defer s.workerSt.fetchMu.Unlock()
		// Re-check the cache: a concurrent shard request may have fetched
		// the plan while this one waited for the fetch lock.
		s.fetchedMu.Lock()
		plan, ok = s.fetched[id]
		s.fetchedMu.Unlock()
		if ok {
			return plan.Mechanism, nil
		}
		plan, err := s.fetchPlan(id)
		if err != nil {
			return nil, releaseErrorf(http.StatusBadGateway, "fetching plan %s from coordinator: %v", id, err)
		}
		s.cacheFetched(id, plan)
		return plan.Mechanism, nil
	}
	return nil, releaseErrorf(http.StatusNotFound, "no plan %q on this server", id)
}

// cacheFetched installs a by-address-resolved plan in the bounded FIFO
// cache so repeated shard requests skip the store/coordinator.
func (s *Server) cacheFetched(id string, plan *planner.Plan) {
	s.fetchedMu.Lock()
	defer s.fetchedMu.Unlock()
	if s.fetched == nil {
		s.fetched = map[string]*planner.Plan{}
	}
	if _, ok := s.fetched[id]; ok {
		return
	}
	s.fetched[id] = plan
	s.fetchedOrder = append(s.fetchedOrder, id)
	for len(s.fetchedOrder) > maxFetchedPlans {
		delete(s.fetched, s.fetchedOrder[0])
		s.fetchedOrder = s.fetchedOrder[1:]
	}
}

// fetchPlan pulls one encoded plan entry from the coordinator and
// verifies it against its content address — the transfer is
// self-checking, a corrupted or substituted entry cannot be installed.
func (s *Server) fetchPlan(id string) (*planner.Plan, error) {
	ws := s.workerSt
	resp, err := ws.hc.Get(ws.coordinator + "/plans/" + id + "/raw")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("coordinator: status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, planstore.MaxEntryBytes+1))
	if err != nil {
		return nil, err
	}
	if len(blob) > planstore.MaxEntryBytes {
		return nil, fmt.Errorf("coordinator sent more than the %d-byte entry cap", planstore.MaxEntryBytes)
	}
	plan, meta, err := planstore.DecodeEntry(blob)
	if err != nil {
		return nil, err
	}
	if planstore.EntryID(meta.Key) != id {
		return nil, fmt.Errorf("entry content address is %s, want %s (corrupt or substituted transfer)",
			planstore.EntryID(meta.Key), id)
	}
	ws.fetches.Inc()
	if s.store != nil {
		// Durability is best-effort: the plan already serves from memory.
		if _, err := s.store.ImportRaw(blob); err != nil {
			s.warnf(compStore, "storing fetched plan %s: %v", id, err)
		}
	}
	return plan, nil
}

// --- fleet status endpoint ---

// shardStats is the coordinator's shard-routing counter block in the
// GET /fleet response.
type shardStats struct {
	// Remote counts shards answered by a worker.
	Remote int64 `json:"remote"`
	// Retries counts failover attempts past each shard's first.
	Retries int64 `json:"retries"`
	// Failures counts failed attempts (each marked its worker down).
	Failures int64 `json:"failures"`
	// Degraded counts shards served by local fallback after the fleet
	// failed them.
	Degraded int64 `json:"degraded"`
}

type fleetResponse struct {
	// Mode is "coordinator", "worker" or "standalone".
	Mode string `json:"mode"`
	// Workers is the coordinator's per-worker health snapshot.
	Workers []fleet.WorkerStatus `json:"workers,omitempty"`
	// Shards is the coordinator's routing counters.
	Shards *shardStats `json:"shards,omitempty"`
	// Coordinator is the worker's coordinator base URL.
	Coordinator string `json:"coordinator,omitempty"`
	// ShardRequests counts POST /shards served by this process.
	ShardRequests int64 `json:"shardRequests"`
	// PlanFetches counts plans fetched from the coordinator.
	PlanFetches int64 `json:"planFetches,omitempty"`
	// CachedPlans is the fetched-plan cache's current size.
	CachedPlans int `json:"cachedPlans,omitempty"`
}

// handleFleet serves GET /fleet: the fleet role plus its health and
// routing counters. It doubles as the health-probe target — a worker
// answering it is back in rotation.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := fleetResponse{Mode: "standalone", ShardRequests: s.metrics.shardRequests.Value()}
	switch {
	case s.fleetSt != nil:
		st := s.fleetSt.client.Stats()
		resp.Mode = "coordinator"
		resp.Workers = s.fleetSt.client.Registry.Status()
		resp.Shards = &shardStats{
			Remote:   st.Remote,
			Retries:  st.Retries,
			Failures: st.Failures,
			Degraded: s.fleetSt.degraded.Value(),
		}
	case s.workerSt != nil:
		resp.Mode = "worker"
		resp.Coordinator = s.workerSt.coordinator
		resp.PlanFetches = s.workerSt.fetches.Value()
		s.fetchedMu.Lock()
		resp.CachedPlans = len(s.fetched)
		s.fetchedMu.Unlock()
	}
	writeJSON(w, resp)
}
