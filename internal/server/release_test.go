package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"adaptivemm/internal/planner"
	"adaptivemm/internal/wio"
)

// designOn posts a /design request and returns the decoded response.
func designOn(t *testing.T, ts *httptest.Server, req map[string]any) designResponse {
	t.Helper()
	resp, body := post(t, ts, "/design", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	return d
}

func registerDataset(t *testing.T, ts *httptest.Server, name string, hist []float64, cap *Budget) {
	t.Helper()
	req := map[string]any{"name": name, "histogram": hist}
	if cap != nil {
		req["cap"] = cap
	}
	resp, body := post(t, ts, "/datasets", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register status %d: %s", resp.StatusCode, body)
	}
}

func TestDatasetRegistryRoundTrip(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	d := designOn(t, ts, map[string]any{"workload": "identity:4"})

	registerDataset(t, ts, "adult", []float64{1, 2, 3, 4}, &Budget{Epsilon: 2, Delta: 1e-3})

	// Duplicate registration conflicts.
	resp, _ := post(t, ts, "/datasets", map[string]any{"name": "adult", "histogram": []float64{9, 9, 9, 9}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate registration status %d", resp.StatusCode)
	}

	// A release referencing the registered dataset needs no histogram.
	resp, body := post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "adult", "epsilon": 0.5, "delta": 1e-4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("registered release status %d: %s", resp.StatusCode, body)
	}

	// Inline histograms conflict with registered data.
	resp, _ = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "adult", "histogram": []float64{1, 2, 3, 4},
		"epsilon": 0.5, "delta": 1e-4,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inline histogram for registered dataset: status %d", resp.StatusCode)
	}

	// Unknown datasets without an inline histogram are 404.
	resp, _ = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "ghost", "epsilon": 0.5, "delta": 1e-4,
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset status %d", resp.StatusCode)
	}

	// GET /datasets reports cells, cap, spend and remaining budget.
	resp2, err := http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var list map[string]datasetInfo
	if err := json.NewDecoder(resp2.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	info, ok := list["adult"]
	if !ok || info.Cells != 4 || info.Cap == nil || info.Cap.Epsilon != 2 {
		t.Fatalf("dataset listing: %+v", list)
	}
	if info.Spent.Epsilon != 0.5 || info.Remaining == nil || math.Abs(info.Remaining.Epsilon-1.5) > 1e-9 {
		t.Fatalf("spend/remaining: %+v", info)
	}
}

// TestBudgetCapRefusal is the acceptance scenario: a capped dataset
// refuses the release that would exceed its budget with HTTP 429 and the
// remaining budget in the body, while in-cap releases keep succeeding.
func TestBudgetCapRefusal(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	d := designOn(t, ts, map[string]any{"workload": "identity:4"})
	registerDataset(t, ts, "capped", []float64{5, 6, 7, 8}, &Budget{Epsilon: 1, Delta: 1e-2})

	resp, body := post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "capped", "epsilon": 0.6, "delta": 1e-4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-cap release status %d: %s", resp.StatusCode, body)
	}

	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "capped", "epsilon": 0.6, "delta": 1e-4,
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap release status %d: %s", resp.StatusCode, body)
	}
	var refusal struct {
		Error     string `json:"error"`
		Remaining Budget `json:"remaining"`
	}
	if err := json.Unmarshal(body, &refusal); err != nil {
		t.Fatal(err)
	}
	if refusal.Error == "" || math.Abs(refusal.Remaining.Epsilon-0.4) > 1e-9 {
		t.Fatalf("refusal body: %s", body)
	}

	// The refused release must not have charged anything: a smaller
	// release that fits the remaining budget still succeeds.
	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "capped", "epsilon": 0.4, "delta": 1e-4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remaining-budget release status %d: %s", resp.StatusCode, body)
	}
	var a answerResponse
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Ledger.Epsilon-1.0) > 1e-9 {
		t.Fatalf("ledger after exact-cap spend: %+v", a.Ledger)
	}
}

// TestConcurrentCappedReleases races many in-cap releases against one
// capped dataset: all must succeed and the committed spend must come out
// exact. Run under -race in CI.
func TestConcurrentCappedReleases(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	d := designOn(t, ts, map[string]any{"workload": "identity:8"})
	hist := make([]float64, 8)
	registerDataset(t, ts, "shared", hist, &Budget{Epsilon: 10, Delta: 1})

	reqBody, err := json.Marshal(map[string]any{
		"strategy": d.Strategy, "dataset": "shared",
		"epsilon": 0.1, "delta": 1e-5,
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const releases = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < releases; i++ {
				resp, err := http.Post(ts.URL+"/answer", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("concurrent in-cap release status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ledger map[string]Budget
	if err := json.NewDecoder(resp.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	want := 0.1 * workers * releases
	if got := ledger["shared"].Epsilon; math.Abs(got-want) > 1e-9 {
		t.Fatalf("ledger epsilon = %g, want %g", got, want)
	}
}

// TestUnseededNoiseUnpredictable covers the headline bugfix: "unseeded"
// releases must draw fresh noise per release and per server instance —
// the old counter seeding repeated the identical stream after every
// restart.
func TestUnseededNoiseUnpredictable(t *testing.T) {
	hist := []float64{10, 20, 30, 40}
	run := func() []float64 {
		ts := httptest.NewServer(New().Handler())
		defer ts.Close()
		d := designOn(t, ts, map[string]any{"workload": "identity:4"})
		resp, body := post(t, ts, "/answer", map[string]any{
			"strategy": d.Strategy, "dataset": "db", "histogram": hist,
			"epsilon": 0.5, "delta": 1e-4,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("answer status %d: %s", resp.StatusCode, body)
		}
		var a answerResponse
		if err := json.Unmarshal(body, &a); err != nil {
			t.Fatal(err)
		}
		return a.Answers
	}
	// Two fresh server instances simulate a restart: the first unseeded
	// release of each used to be identical.
	first, second := run(), run()
	same := true
	for i := range first {
		if first[i] != second[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("unseeded releases identical across restarts: %v", first)
	}
}

// TestExplicitZeroSeedHonored: seed 0 used to be conflated with "absent"
// and silently replaced by the salt counter; as a *int64 it now pins the
// stream like any other seed.
func TestExplicitZeroSeedHonored(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	d := designOn(t, ts, map[string]any{"workload": "identity:4"})
	req := map[string]any{
		"strategy": d.Strategy, "dataset": "db", "histogram": []float64{1, 2, 3, 4},
		"epsilon": 1, "delta": 1e-4, "seed": 0,
	}
	var a1, a2 answerResponse
	_, b1 := post(t, ts, "/answer", req)
	_, b2 := post(t, ts, "/answer", req)
	if err := json.Unmarshal(b1, &a1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &a2); err != nil {
		t.Fatal(err)
	}
	for i := range a1.Answers {
		if a1.Answers[i] != a2.Answers[i] {
			t.Fatal("seed 0 produced different answers across releases")
		}
	}
}

// TestSeededReleaseRefusedOnRegisteredDataset: a client-pinned seed lets
// the requester regenerate the noise stream and recover the exact
// registered data at nominal ε cost, so the engine refuses it with 403
// unless the server explicitly opts in for debugging.
func TestSeededReleaseRefusedOnRegisteredDataset(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	d := designOn(t, ts, map[string]any{"workload": "identity:4"})
	registerDataset(t, ts, "adult", []float64{1, 2, 3, 4}, &Budget{Epsilon: 2, Delta: 1e-3})

	// Seeded release against registered data: refused, and nothing charged.
	resp, body := post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "adult", "epsilon": 0.5, "delta": 1e-4, "seed": 42,
	})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("seeded registered release status %d: %s", resp.StatusCode, body)
	}
	resp2, err := http.Get(ts.URL + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var ledger map[string]Budget
	if err := json.NewDecoder(resp2.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	if _, charged := ledger["adult"]; charged {
		t.Fatalf("refused seeded release charged the ledger: %+v", ledger)
	}

	// The same seed on the batch path is refused per entry too.
	resp, body = post(t, ts, "/release", map[string]any{
		"releases": []map[string]any{
			{"strategy": d.Strategy, "dataset": "adult", "epsilon": 0.5, "delta": 1e-4, "seed": 42},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Failed != 1 || br.Results[0].Status != http.StatusForbidden {
		t.Fatalf("seeded batch entry not refused: %s", body)
	}

	// Unseeded releases against the registered dataset still work.
	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "adult", "epsilon": 0.5, "delta": 1e-4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unseeded registered release status %d: %s", resp.StatusCode, body)
	}

	// A debug server with AllowSeededReleases honors the seed again.
	dbg := httptest.NewServer(NewWithOptions(Options{AllowSeededReleases: true}).Handler())
	defer dbg.Close()
	dd := designOn(t, dbg, map[string]any{"workload": "identity:4"})
	registerDataset(t, dbg, "adult", []float64{1, 2, 3, 4}, nil)
	resp, body = post(t, dbg, "/answer", map[string]any{
		"strategy": dd.Strategy, "dataset": "adult", "epsilon": 0.5, "delta": 1e-4, "seed": 42,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug-server seeded release status %d: %s", resp.StatusCode, body)
	}
}

// TestCapValidation: negative cap components would read as "unlimited" in
// the accountant, so a typo like {"epsilon": -1} must 400 instead of
// silently uncapping the dataset; the all-zero cap is equally meaningless.
func TestCapValidation(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	for i, cap := range []map[string]any{
		{"epsilon": -1.0, "delta": 1e-3},
		{"epsilon": 1.0, "delta": -1e-3},
		{"epsilon": 0.0, "delta": 0.0},
	} {
		resp, body := post(t, ts, "/datasets", map[string]any{
			"name": fmt.Sprintf("d%d", i), "histogram": []float64{1, 2}, "cap": cap,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("cap case %d accepted: status %d: %s", i, resp.StatusCode, body)
		}
	}
	// A legitimate one-sided cap still registers.
	resp, body := post(t, ts, "/datasets", map[string]any{
		"name": "ok", "histogram": []float64{1, 2}, "cap": map[string]any{"epsilon": 1.0},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("one-sided cap refused: status %d: %s", resp.StatusCode, body)
	}
}

// TestAdHocSpendIsolatedFromRegisteredCap: inline releases are accounted
// in the "adhoc:" namespace, so a client can neither pre-spend a name with
// uncapped inline releases to hollow out a cap installed later, nor squat
// a name to block its registration.
func TestAdHocSpendIsolatedFromRegisteredCap(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	d := designOn(t, ts, map[string]any{"workload": "identity:4"})

	// Heavy ad-hoc spend on the name before it exists as a dataset.
	resp, body := post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "adult", "histogram": []float64{1, 2, 3, 4},
		"epsilon": 5, "delta": 1e-3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ad-hoc release status %d: %s", resp.StatusCode, body)
	}

	// Registration still succeeds, with a cap far below the ad-hoc spend …
	registerDataset(t, ts, "adult", []float64{9, 9, 9, 9}, &Budget{Epsilon: 1, Delta: 1e-3})

	// … and the cap starts whole: a 0.9 release fits, the next one is
	// refused — the prior ε=5 never counted against the registered budget.
	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "adult", "epsilon": 0.9, "delta": 1e-4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh-cap release status %d: %s", resp.StatusCode, body)
	}
	resp, _ = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "adult", "epsilon": 0.9, "delta": 1e-4,
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap release status %d", resp.StatusCode)
	}

	// The ledger keeps the two spends apart.
	resp2, err := http.Get(ts.URL + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var ledger map[string]Budget
	if err := json.NewDecoder(resp2.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	if math.Abs(ledger["adhoc:adult"].Epsilon-5) > 1e-9 || math.Abs(ledger["adult"].Epsilon-0.9) > 1e-9 {
		t.Fatalf("ad-hoc and registered spend not isolated: %+v", ledger)
	}

	// The ad-hoc namespace itself cannot be registered into.
	resp, _ = post(t, ts, "/datasets", map[string]any{
		"name": "adhoc:adult", "histogram": []float64{1, 2, 3, 4},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reserved-prefix registration status %d", resp.StatusCode)
	}
}

// TestEstimatePayloadCap: mode "estimate" returns n values, so it must
// honor the same response payload cap as answers mode — otherwise a
// single /answer against a multi-million-cell domain would buffer tens of
// MB of JSON the batch endpoint's aggregate check would refuse. The
// strategy is installed directly (design on a 2^21-cell domain is too
// slow for a test).
func TestEstimatePayloadCap(t *testing.T) {
	wl, err := wio.ParseWorkloadSpec("allrange:1024x1024x2", rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if wl.Cells() <= maxAnswerRows {
		t.Fatalf("domain too small to exercise the cap: %d cells", wl.Cells())
	}
	plan, err := planner.New(planner.Config{}).Plan(wl, planner.Hints{Generator: "hierarchical"})
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.strategies["s1"] = &entry{plan: plan}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, mode := range []string{"estimate", ""} {
		resp, body := post(t, ts, "/answer", map[string]any{
			"strategy": "s1", "dataset": "huge", "epsilon": 1, "delta": 1e-4, "mode": mode,
		})
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("mode %q status %d: %s", mode, resp.StatusCode, body)
		}
	}
}

// TestRegistryHistogramCap: registered histograms are retained forever,
// so the registry refuses ones past the cell cap (they could not be
// released over HTTP anyway).
func TestRegistryHistogramCap(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, body := post(t, ts, "/datasets", map[string]any{
		"name": "huge", "histogram": make([]float64, maxHistogramCells+1),
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized histogram status %d: %s", resp.StatusCode, body)
	}
}

// TestStrategyCacheHit: repeated /design of the same canonical spec
// returns the cached strategy id without re-running design.
func TestStrategyCacheHit(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	d1 := designOn(t, ts, map[string]any{"workload": "allrange:2048"})
	if d1.Cached {
		t.Fatalf("first design reported cached: %+v", d1)
	}
	d2 := designOn(t, ts, map[string]any{"workload": "allrange:2048"})
	if !d2.Cached || d2.Strategy != d1.Strategy {
		t.Fatalf("second design not served from cache: %+v vs %+v", d2, d1)
	}
	// Canonicalization: case and whitespace do not defeat the cache.
	d3 := designOn(t, ts, map[string]any{"workload": "  AllRange:2048 "})
	if !d3.Cached || d3.Strategy != d1.Strategy {
		t.Fatalf("canonicalized spec missed the cache: %+v", d3)
	}
	// A different spec is a different strategy.
	d4 := designOn(t, ts, map[string]any{"workload": "identity:16"})
	if d4.Cached || d4.Strategy == d1.Strategy {
		t.Fatalf("distinct spec served from cache: %+v", d4)
	}
	// Randomized specs sample by seed, so the seed is part of the key.
	r1 := designOn(t, ts, map[string]any{"workload": "randomrange:8:16", "seed": 1})
	r2 := designOn(t, ts, map[string]any{"workload": "randomrange:8:16", "seed": 2})
	if r2.Cached || r2.Strategy == r1.Strategy {
		t.Fatalf("different seeds shared a cache slot: %+v vs %+v", r1, r2)
	}
}

// TestDesignPrivacyDefaulting: a request carrying only ε (or only δ) is
// valid; the omitted field defaults independently and the response echoes
// the pair actually used.
func TestDesignPrivacyDefaulting(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	d := designOn(t, ts, map[string]any{"workload": "identity:4", "epsilon": 2.0})
	if d.Epsilon != 2.0 || d.Delta != defaultDelta {
		t.Fatalf("epsilon-only design used (ε=%g, δ=%g)", d.Epsilon, d.Delta)
	}
	if d.ExpectedError <= 0 {
		t.Fatalf("expected error missing: %+v", d)
	}

	d = designOn(t, ts, map[string]any{"workload": "identity:4", "delta": 1e-6})
	if d.Epsilon != defaultEpsilon || d.Delta != 1e-6 {
		t.Fatalf("delta-only design used (ε=%g, δ=%g)", d.Epsilon, d.Delta)
	}

	// Invalid explicit values are still rejected.
	resp, _ := post(t, ts, "/design", map[string]any{"workload": "identity:4", "epsilon": -1.0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative epsilon status %d", resp.StatusCode)
	}
}

// TestRaggedRowsRejected: every row is validated, and the error names the
// offending row.
func TestRaggedRowsRejected(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, body := post(t, ts, "/design", map[string]any{
		"rows":  [][]float64{{1, 0, 0, 0}, {0, 1, 0, 0}, {1, 1}},
		"shape": []int{4},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ragged rows status %d: %s", resp.StatusCode, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if got := e["error"]; got != "row 2 has 2 columns, want 4" {
		t.Fatalf("ragged row error %q", got)
	}
}

// TestBatchRelease covers the batch endpoint's partial-failure semantics:
// successful entries commit, refused or failing entries charge nothing.
func TestBatchRelease(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	d := designOn(t, ts, map[string]any{"workload": "identity:4"})
	registerDataset(t, ts, "b", []float64{1, 2, 3, 4}, &Budget{Epsilon: 0.25, Delta: 1e-2})
	registerDataset(t, ts, "free", []float64{4, 3, 2, 1}, nil)

	resp, body := post(t, ts, "/release", map[string]any{
		"parallelism": 4,
		"releases": []map[string]any{
			// Two 0.2-entries race for a 0.25 cap: exactly one commits.
			{"strategy": d.Strategy, "dataset": "b", "epsilon": 0.2, "delta": 1e-4},
			{"strategy": d.Strategy, "dataset": "b", "epsilon": 0.2, "delta": 1e-4},
			{"strategy": "bogus", "dataset": "b", "epsilon": 0.1, "delta": 1e-4},
			{"strategy": d.Strategy, "dataset": "free", "epsilon": 0.3, "delta": 1e-4, "mode": "estimate"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Succeeded != 2 || br.Failed != 2 || len(br.Results) != 4 {
		t.Fatalf("batch outcome: %s", body)
	}
	var saw429, saw404 bool
	for _, res := range br.Results {
		switch res.Status {
		case http.StatusOK:
			if len(res.Answers) != 4 || res.Ledger == nil {
				t.Fatalf("successful entry missing payload: %+v", res)
			}
		case http.StatusTooManyRequests:
			saw429 = true
			if res.Remaining == nil || math.Abs(res.Remaining.Epsilon-0.05) > 1e-9 {
				t.Fatalf("429 entry remaining: %+v", res)
			}
		case http.StatusNotFound:
			saw404 = true
		default:
			t.Fatalf("unexpected entry status: %+v", res)
		}
	}
	if !saw429 || !saw404 {
		t.Fatalf("expected one 429 and one 404 entry: %s", body)
	}

	// Ledger: exactly one 0.2 release committed on "b", the failed ones
	// refunded/uncharged; "free" carries its 0.3.
	resp2, err := http.Get(ts.URL + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var ledger map[string]Budget
	if err := json.NewDecoder(resp2.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	if got := ledger["b"].Epsilon; math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("capped dataset spend %g, want exactly one committed 0.2", got)
	}
	if got := ledger["free"].Epsilon; math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("uncapped dataset spend %g", got)
	}
}

func TestBatchReleaseValidation(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, _ := post(t, ts, "/release", map[string]any{"releases": []map[string]any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d", resp.StatusCode)
	}
	big := make([]map[string]any, maxBatchReleases+1)
	for i := range big {
		big[i] = map[string]any{"strategy": "s1", "dataset": "d", "epsilon": 0.1, "delta": 1e-4}
	}
	resp, _ = post(t, ts, "/release", map[string]any{"releases": big})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status %d", resp.StatusCode)
	}
}

// TestBatchAggregatePayloadCap: each entry may be under the per-request
// answer cap, but the batch as a whole shares one payload budget —
// otherwise 256 near-cap entries would buffer gigabytes server-side.
func TestBatchAggregatePayloadCap(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	// allrange:1024 has 524,800 queries: one answers-mode entry fits the
	// 2^20 cap, two together exceed it.
	d := designOn(t, ts, map[string]any{"workload": "allrange:1024"})
	registerDataset(t, ts, "big", make([]float64, 1024), nil)

	entry := map[string]any{"strategy": d.Strategy, "dataset": "big", "epsilon": 0.1, "delta": 1e-4}
	resp, body := post(t, ts, "/release", map[string]any{
		"releases": []map[string]any{entry, entry},
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("aggregate over-cap batch status %d: %s", resp.StatusCode, body)
	}
	// The refused batch must not have charged anything.
	resp2, err := http.Get(ts.URL + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var ledger map[string]Budget
	if err := json.NewDecoder(resp2.Body).Decode(&ledger); err != nil {
		t.Fatal(err)
	}
	if _, charged := ledger["big"]; charged {
		t.Fatalf("refused batch charged the ledger: %+v", ledger)
	}
	// In estimate mode the same two entries are 2×1024 values and sail
	// through.
	est := map[string]any{"strategy": d.Strategy, "dataset": "big", "epsilon": 0.1, "delta": 1e-4, "mode": "estimate"}
	resp, body = post(t, ts, "/release", map[string]any{
		"releases": []map[string]any{est, est},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate batch status %d: %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Succeeded != 2 {
		t.Fatalf("estimate batch outcome: %s", body)
	}
}
