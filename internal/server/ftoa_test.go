package server

import (
	"encoding/json"
	"math"
	"math/rand"
	"strconv"
	"testing"
)

// roundTrip pushes one value through the hot-path encoder and back
// through the standard parser, failing unless the bits survive.
func roundTrip(t *testing.T, f float64) {
	t.Helper()
	out := appendFloat(nil, f)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		if string(out) != "null" {
			t.Fatalf("appendFloat(%v) = %q, want null", f, out)
		}
		return
	}
	back, err := strconv.ParseFloat(string(out), 64)
	if err != nil {
		t.Fatalf("appendFloat(%v) = %q does not parse: %v", f, out, err)
	}
	if math.Float64bits(back) != math.Float64bits(f) {
		t.Fatalf("appendFloat(%v) = %q parses to %v: bits %x != %x",
			f, out, back, math.Float64bits(back), math.Float64bits(f))
	}
	// The emitted text must also be a legal JSON number.
	var v float64
	if err := json.Unmarshal(out, &v); err != nil {
		t.Fatalf("appendFloat(%v) = %q is not valid JSON: %v", f, out, err)
	}
}

// TestAppendFloatRoundTrip is the correctness pin for the fast float
// emitter: every finite float64 it serves must parse back bit-identical.
func TestAppendFloatRoundTrip(t *testing.T) {
	// Hand-picked hard cases: signed zeros, powers of ten and two (and
	// their neighbors, where the decimal grid is coarsest relative to the
	// binary one), subnormals, extremes, halfway-looking values.
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.1, -0.1, 0.5, 2.0 / 3.0,
		math.Pi, -math.E, 1e15, 1e15 + 1, 1e16, 1e17, 1e22, 1e23,
		1e-300, 1e300, 1.0000000000000002, 9.999999999999998e16,
		math.MaxFloat64, math.SmallestNonzeroFloat64, 5e-324, 2.2250738585072014e-308,
		1797.6931348623157, 123456.78901234567, math.NaN(), math.Inf(1), math.Inf(-1),
	}
	for e := -310; e <= 310; e++ {
		p := math.Pow(10, float64(e))
		cases = append(cases, p, math.Nextafter(p, 0), math.Nextafter(p, math.Inf(1)))
	}
	for e := -1022; e <= 1023; e += 7 {
		p := math.Ldexp(1, e)
		cases = append(cases, p, math.Nextafter(p, 0), math.Nextafter(p, math.Inf(1)))
	}
	for _, f := range cases {
		roundTrip(t, f)
		roundTrip(t, -f)
	}

	// Random bit patterns cover the whole representable range, including
	// the strconv fallback band and subnormals.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500000; i++ {
		f := math.Float64frombits(r.Uint64())
		roundTrip(t, f)
	}
	// Random "release-like" values: noisy magnitudes the server actually
	// serves.
	for i := 0; i < 200000; i++ {
		f := r.NormFloat64() * math.Pow(10, float64(r.Intn(13)-6))
		roundTrip(t, f)
	}
}

// TestAppendFloatsShape pins the array framing and the integer fast path.
func TestAppendFloatsShape(t *testing.T) {
	got := string(appendFloats(nil, []float64{1, -2, 0, 0.5}))
	want := `[1,-2,0,5.0000000000000000e-01]`
	if got != want {
		t.Fatalf("appendFloats = %q, want %q", got, want)
	}
	if got := string(appendFloats(nil, nil)); got != "[]" {
		t.Fatalf("appendFloats(nil) = %q, want []", got)
	}
	var back []float64
	if err := json.Unmarshal(appendFloats(nil, []float64{math.Pi, 1e-9}), &back); err != nil {
		t.Fatal(err)
	}
	if back[0] != math.Pi || back[1] != 1e-9 {
		t.Fatalf("decoded %v", back)
	}
}
