// Pooled hand-rolled JSON encoding for the release hot path.
//
// encoding/json renders a []float64 through reflection at roughly a
// microsecond per handful of values; at a thousand full-precision floats
// per release the encoder, not the mechanism, dominates serving cost.
// The release responses are numeric-only on their success path (answers,
// budgets, counters), so they are assembled by hand with
// strconv.AppendFloat into buffers recycled through a sync.Pool — no
// reflection, no intermediate allocations, one Write per response.
// Anything carrying client-influenced strings (error messages) still goes
// through encoding/json for correct escaping; those paths are cold.

package server

import (
	"math"
	"strconv"
	"sync"
)

// maxPooledBuf is the largest response buffer returned to the pool.
// A full batch near the aggregate answer cap encodes to tens of
// megabytes; keeping such outliers pooled would pin their memory for the
// server's lifetime.
const maxPooledBuf = 4 << 20

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// getBuf rents an empty byte buffer from the pool.
func getBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// putBuf returns a buffer to the pool, dropping oversized outliers.
func putBuf(b *[]byte) {
	if cap(*b) <= maxPooledBuf {
		bufPool.Put(b)
	}
}

// appendFloat appends one JSON number that parses back to the identical
// float64: integers verbatim, typical magnitudes through the fast
// 17-significant-digit emitter (see ftoa.go), extreme magnitudes through
// strconv. Non-finite values (which no valid release yields) become
// null, since JSON has no literal for them.
func appendFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(b, "null"...)
	}
	//lint:allow floateq: integer fast path — exactly-integral values (the common count-query answers) print through AppendInt; near-integral values must keep full precision
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		if f == 0 && math.Signbit(f) {
			return append(b, '-', '0')
		}
		return strconv.AppendInt(b, int64(f), 10)
	}
	if a := math.Abs(f); a >= 1e-270 && a <= 1e300 {
		return appendFloat17(b, f)
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// appendFloats appends a JSON array of numbers.
func appendFloats(b []byte, v []float64) []byte {
	b = append(b, '[')
	for i, f := range v {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendFloat(b, f)
	}
	return append(b, ']')
}

// appendBudget appends a Budget in its wire form.
func appendBudget(b []byte, v Budget) []byte {
	b = append(b, `{"epsilon":`...)
	b = appendFloat(b, v.Epsilon)
	b = append(b, `,"delta":`...)
	b = appendFloat(b, v.Delta)
	return append(b, '}')
}
