package server

// Flight-recorder integration tests: the /metrics exposition is driven
// by real HTTP traffic and re-parsed with obs.ParseText (the same
// pipeline an external scraper runs), per-release traces round-trip
// through the /answer ledger and GET /debug/traces, the distributed
// fleet's sharded releases carry per-shard spans across processes, and
// the instrumentation's allocation cost on the pinned release path
// stays at zero.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"adaptivemm/internal/obs"
)

// scrapeMetrics GETs /metrics and re-parses the exposition.
func scrapeMetrics(t *testing.T, ts *httptest.Server) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	exp, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics exposition does not parse: %v", err)
	}
	return exp
}

// mustValue asserts a sample exists and returns it. pairs are
// label-name/label-value alternations, as Exposition.Value takes them.
func mustValue(t *testing.T, exp *obs.Exposition, name string, pairs ...string) float64 {
	t.Helper()
	v, ok := exp.Value(name, pairs...)
	if !ok {
		t.Fatalf("metric %s%v missing from /metrics", name, pairs)
	}
	return v
}

// TestMetricsEndpointFamilies drives one of everything — a design (cache
// miss), a repeat design (hit), a dataset registration, successful and
// budget-refused releases, a streamed release — then asserts the scrape
// reflects all of it across the server, planner, accountant, and store
// families.
func TestMetricsEndpointFamilies(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	d := designOn(t, ts, map[string]any{"workload": "identity:8"})
	designOn(t, ts, map[string]any{"workload": "identity:8"}) // cache hit
	registerDataset(t, ts, "obs", []float64{1, 2, 3, 4, 5, 6, 7, 8}, &Budget{Epsilon: 1, Delta: 1e-2})

	resp, body := post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "obs", "epsilon": 0.5, "delta": 1e-4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d: %s", resp.StatusCode, body)
	}
	// Refused: this would blow the epsilon cap.
	resp, _ = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "obs", "epsilon": 5, "delta": 1e-4,
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget answer status %d", resp.StatusCode)
	}
	// Streamed release.
	resp, body = post(t, ts, "/release", map[string]any{
		"strategy": d.Strategy, "dataset": "obs", "epsilon": 0.25, "delta": 1e-4,
		"stream": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}

	exp := scrapeMetrics(t, ts)

	// Server: HTTP traffic by route and status class, release totals.
	if v := mustValue(t, exp, "am_http_requests_total", "route", "answer", "code", "2xx"); v < 1 {
		t.Fatalf("answer 2xx count %g", v)
	}
	if v := mustValue(t, exp, "am_http_requests_total", "route", "answer", "code", "4xx"); v < 1 {
		t.Fatalf("answer 4xx count %g", v)
	}
	if v := mustValue(t, exp, "am_releases_total"); v != 2 { // buffered + streamed
		t.Fatalf("am_releases_total = %g, want 2", v)
	}
	if v := mustValue(t, exp, "am_release_seconds_count"); v != 2 {
		t.Fatalf("am_release_seconds_count = %g, want 2", v)
	}
	if v := mustValue(t, exp, "am_http_request_seconds_count", "route", "design"); v != 2 {
		t.Fatalf("design latency count %g, want 2", v)
	}
	// Stage timers fire for buffered and streamed releases alike.
	for _, stage := range []string{"answer", "noise", "infer", "serialize"} {
		if v := mustValue(t, exp, "am_release_stage_seconds_count", "stage", stage); v < 1 {
			t.Fatalf("stage %q count %g, want ≥ 1", stage, v)
		}
	}

	// Planner: one miss, one hit, the win credited to a generator.
	if v := mustValue(t, exp, "am_plan_cache_hits_total"); v != 1 {
		t.Fatalf("cache hits %g, want 1", v)
	}
	if v := mustValue(t, exp, "am_plan_cache_misses_total"); v != 1 {
		t.Fatalf("cache misses %g, want 1", v)
	}
	if v := mustValue(t, exp, "am_plan_design_seconds_count"); v != 1 {
		t.Fatalf("design seconds count %g, want 1", v)
	}
	if v := mustValue(t, exp, "am_plan_designs_total", "generator", d.Planner.Generator); v != 1 {
		t.Fatalf("designs won by %q = %g, want 1", d.Planner.Generator, v)
	}

	// Accountant: spend and remaining per dataset, refusal count.
	if v := mustValue(t, exp, "am_acct_refusals_total"); v != 1 {
		t.Fatalf("refusals %g, want 1", v)
	}
	if v := mustValue(t, exp, "am_acct_epsilon_spent", "dataset", "obs"); v != 0.75 {
		t.Fatalf("epsilon spent %g, want 0.75", v)
	}
	if v := mustValue(t, exp, "am_acct_epsilon_remaining", "dataset", "obs"); v != 0.25 {
		t.Fatalf("epsilon remaining %g, want 0.25", v)
	}

	// Store and server gauges.
	if v := mustValue(t, exp, "am_server_strategies"); v != 1 {
		t.Fatalf("strategies gauge %g, want 1", v)
	}
	mustValue(t, exp, "am_store_persist_queue_depth")
	mustValue(t, exp, "am_stream_in_flight")
	mustValue(t, exp, "am_store_persist_drops_total")
	mustValue(t, exp, "am_store_evictions_total")
}

// ledgerTrace is the trace block echoed inside a release ledger when
// the request set "trace": true.
type ledgerTrace struct {
	ID     string     `json:"id"`
	Parent string     `json:"parent"`
	Spans  []spanJSON `json:"spans"`
}

// tracedAnswer posts /answer with "trace": true and returns the echoed
// trace block.
func tracedAnswer(t *testing.T, ts *httptest.Server, strategy string, extra map[string]any) ledgerTrace {
	t.Helper()
	req := map[string]any{
		"strategy": strategy, "dataset": "traced",
		"histogram": []float64{1, 2, 3, 4, 5, 6, 7, 8},
		"epsilon":   0.1, "delta": 1e-5, "trace": true,
	}
	for k, v := range extra {
		req[k] = v
	}
	resp, body := post(t, ts, "/answer", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced answer status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Ledger struct {
			Epsilon float64      `json:"epsilon"`
			Trace   *ledgerTrace `json:"trace"`
		} `json:"ledger"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("traced answer body does not parse: %v: %s", err, body)
	}
	if out.Ledger.Trace == nil {
		t.Fatalf("ledger has no trace block: %s", body)
	}
	return *out.Ledger.Trace
}

// spanNames flattens a span list for set membership checks.
func spanNames(spans []spanJSON) map[string]bool {
	set := make(map[string]bool, len(spans))
	for _, sp := range spans {
		set[sp.Name] = true
	}
	return set
}

// getTraces fetches GET /debug/traces with a raw query string.
func getTraces(t *testing.T, ts *httptest.Server, query string) tracesResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/traces" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces%s: status %d", query, resp.StatusCode)
	}
	var tr tracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestAnswerTraceEchoAndRing pins the opt-in trace contract: the ledger
// echoes the trace with the pipeline stages, the full record (with
// status and duration) is at /debug/traces, and untraced requests leave
// nothing behind.
func TestAnswerTraceEchoAndRing(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	d := designOn(t, ts, map[string]any{"workload": "identity:8"})

	// Untraced request first: no ledger trace, nothing in the ring.
	resp, body := post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "plain",
		"histogram": []float64{1, 2, 3, 4, 5, 6, 7, 8},
		"epsilon":   0.1, "delta": 1e-5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("untraced answer status %d: %s", resp.StatusCode, body)
	}
	if bytes.Contains(body, []byte(`"trace"`)) {
		t.Fatalf("untraced answer leaked a trace block: %s", body)
	}
	if tr := getTraces(t, ts, ""); tr.Total != 0 {
		t.Fatalf("ring has %d traces before any traced request", tr.Total)
	}

	echo := tracedAnswer(t, ts, d.Strategy, nil)
	if len(echo.ID) != 16 {
		t.Fatalf("trace id %q, want 16 hex chars", echo.ID)
	}
	names := spanNames(echo.Spans)
	for _, want := range []string{"answer", "noise", "infer", "serialize"} {
		if !names[want] {
			t.Fatalf("echoed trace missing span %q: %+v", want, echo.Spans)
		}
	}

	ring := getTraces(t, ts, "")
	if ring.Total != 1 || len(ring.Traces) != 1 {
		t.Fatalf("ring: total %d, %d traces, want 1/1", ring.Total, len(ring.Traces))
	}
	rec := ring.Traces[0]
	if rec.ID != echo.ID || rec.Route != "answer" || rec.Status != http.StatusOK {
		t.Fatalf("recorded trace %+v does not match echo id %q", rec, echo.ID)
	}
	if rec.DurationMillis <= 0 {
		t.Fatalf("recorded trace has no duration: %+v", rec)
	}

	// Filters: route match, route miss, status miss, an unreachable
	// min_ms threshold, and n capping.
	if tr := getTraces(t, ts, "?route=answer"); len(tr.Traces) != 1 {
		t.Fatalf("route=answer matched %d traces", len(tr.Traces))
	}
	if tr := getTraces(t, ts, "?route=stream"); len(tr.Traces) != 0 {
		t.Fatalf("route=stream matched %d traces", len(tr.Traces))
	}
	if tr := getTraces(t, ts, "?status=500"); len(tr.Traces) != 0 {
		t.Fatalf("status=500 matched %d traces", len(tr.Traces))
	}
	if tr := getTraces(t, ts, "?min_ms=600000"); len(tr.Traces) != 0 {
		t.Fatalf("min_ms=600000 matched %d traces", len(tr.Traces))
	}
	tracedAnswer(t, ts, d.Strategy, nil)
	if tr := getTraces(t, ts, "?n=1"); tr.Total != 2 || len(tr.Traces) != 1 {
		t.Fatalf("n=1: total %d, %d traces, want total 2 with 1 returned", tr.Total, len(tr.Traces))
	}

	// Malformed filters are 400, not 500.
	resp2, err := http.Get(ts.URL + "/debug/traces?min_ms=soon")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("min_ms=soon status %d", resp2.StatusCode)
	}
}

// TestStreamTraceRecorded pins the streamed-release trace shape: the
// metadata record's ledger echoes the trace, and the ring record carries
// the release and stream spans.
func TestStreamTraceRecorded(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	d := designOn(t, ts, map[string]any{"workload": "identity:8"})

	resp, body := post(t, ts, "/release", map[string]any{
		"strategy": d.Strategy, "dataset": "streamtrace",
		"histogram": []float64{1, 2, 3, 4, 5, 6, 7, 8},
		"epsilon":   0.1, "delta": 1e-5, "stream": true, "trace": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	meta := bytes.SplitN(body, []byte("\n"), 2)[0]
	if !bytes.Contains(meta, []byte(`"trace"`)) {
		t.Fatalf("stream metadata record has no trace: %s", meta)
	}

	ring := getTraces(t, ts, "?route=stream")
	if len(ring.Traces) != 1 {
		t.Fatalf("stream traces recorded: %d, want 1", len(ring.Traces))
	}
	names := spanNames(ring.Traces[0].Spans)
	for _, want := range []string{"release", "stream"} {
		if !names[want] {
			t.Fatalf("stream trace missing span %q: %+v", want, ring.Traces[0].Spans)
		}
	}
}

// TestFleetShardTraceSpans is the distributed acceptance check: a traced
// sharded release through real HTTP workers records per-shard spans on
// the coordinator, and each worker records a child trace (parented on
// the coordinator's trace ID) with its own decode/infer/encode stages.
func TestFleetShardTraceSpans(t *testing.T) {
	h := newFleetHarness(t, 2, nil, Options{})
	strategy := h.designSharded(t)

	hist := seededHistogram()
	req := map[string]any{
		"strategy": strategy, "dataset": "fleettrace", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "seed": int64(7), "trace": true,
	}
	resp, body := post(t, h.coordTS, "/answer", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced sharded answer status %d: %s", resp.StatusCode, body)
	}

	coord := getTraces(t, h.coordTS, "?route=answer")
	if len(coord.Traces) != 1 {
		t.Fatalf("coordinator recorded %d answer traces, want 1", len(coord.Traces))
	}
	root := coord.Traces[0]
	names := spanNames(root.Spans)
	for _, want := range []string{"answer", "noise", "infer", "shard:0", "shard:1", "serialize"} {
		if !names[want] {
			t.Fatalf("coordinator trace missing span %q: %+v", want, root.Spans)
		}
	}

	// Each shard landed on some worker as a child trace of the root.
	children := 0
	for _, wts := range h.workerTS {
		for _, tr := range getTraces(t, wts, "?route=shard").Traces {
			if tr.Parent != root.ID {
				t.Fatalf("worker trace parent %q, want root %q", tr.Parent, root.ID)
			}
			wn := spanNames(tr.Spans)
			for _, want := range []string{"decode", "infer", "encode"} {
				if !wn[want] {
					t.Fatalf("worker shard trace missing span %q: %+v", want, tr.Spans)
				}
			}
			children++
		}
	}
	if children != 2 {
		t.Fatalf("workers recorded %d shard traces, want 2", children)
	}

	// The fleet counters on /metrics are the same atomics /fleet reads.
	exp := scrapeMetrics(t, h.coordTS)
	fs := fleetStatus(t, h.coordTS)
	if fs.Shards == nil {
		t.Fatal("/fleet has no shard stats on the coordinator")
	}
	if v := mustValue(t, exp, "am_fleet_shards_remote_total"); v != float64(fs.Shards.Remote) {
		t.Fatalf("scrape remote %g, /fleet remote %d", v, fs.Shards.Remote)
	}
	mustValue(t, exp, "am_fleet_degraded_total")
	if v := mustValue(t, exp, "am_fleet_worker_up", "worker", h.workerTS[0].URL); v != 1 {
		t.Fatalf("worker 0 up gauge %g, want 1", v)
	}
	// Placement hashes the worker URLs, so which worker serves which
	// shard varies with the httptest ports — assert across the fleet.
	var fetches, served float64
	for _, wts := range h.workerTS {
		wexp := scrapeMetrics(t, wts)
		fetches += mustValue(t, wexp, "am_fleet_plan_fetches_total")
		served += mustValue(t, wexp, "am_fleet_shard_requests_total")
	}
	if fetches < 1 {
		t.Fatalf("fleet-wide plan fetches %g, want ≥ 1", fetches)
	}
	if served != 2 {
		t.Fatalf("fleet-wide shard requests %g, want 2", served)
	}
}

// TestSingleAnswerAllocBound pins the instrumentation's cost on the
// single-release path: with metrics always on (counters, stage timers,
// middleware) but tracing off, a steady-state /answer stays within the
// same deliberate-bookkeeping budget it had before the flight recorder.
func TestSingleAnswerAllocBound(t *testing.T) {
	s := New()
	h := s.Handler()
	respBody := bytes.NewBuffer(make([]byte, 0, 1<<20))
	drive := func(path string, body []byte) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		respBody.Reset()
		rec := &httptest.ResponseRecorder{Code: http.StatusOK, HeaderMap: http.Header{}, Body: respBody}
		h.ServeHTTP(rec, req)
		return rec
	}
	designBody, _ := json.Marshal(map[string]any{"workload": "allrange:64"})
	if rec := drive("/design", designBody); rec.Code != http.StatusOK {
		t.Fatalf("design: status %d: %s", rec.Code, respBody.String())
	}
	var design struct {
		Strategy string `json:"strategy"`
		Cells    int    `json:"cells"`
	}
	if err := json.Unmarshal(respBody.Bytes(), &design); err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, design.Cells)
	for i := range hist {
		hist[i] = float64(i % 5)
	}
	dsBody, _ := json.Marshal(map[string]any{"name": "alloc1", "histogram": hist})
	if rec := drive("/datasets", dsBody); rec.Code != http.StatusOK {
		t.Fatalf("datasets: status %d: %s", rec.Code, respBody.String())
	}
	ansBody, _ := json.Marshal(map[string]any{
		"strategy": design.Strategy, "dataset": "alloc1",
		"epsilon": 1e-4, "delta": 1e-9, "mode": "estimate",
	})
	for i := 0; i < 3; i++ {
		if rec := drive("/answer", ansBody); rec.Code != http.StatusOK {
			t.Fatalf("warm-up answer: status %d: %s", rec.Code, respBody.String())
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if rec := drive("/answer", ansBody); rec.Code != http.StatusOK {
			t.Fatalf("answer: status %d", rec.Code)
		}
	})
	// Steady state measures ~20 allocations: request decode, budget
	// bookkeeping, header map — none from metric recording. A trace
	// (opt-in) would add more; this request doesn't opt in.
	if allocs > 40 {
		t.Fatalf("single /answer allocates %.0f, want ≤ 40", allocs)
	}
}

// TestMetricRecordingZeroAllocServer pins that the recording primitives
// the handlers call on every request are allocation-free, measured
// against the server's own live registry.
func TestMetricRecordingZeroAllocServer(t *testing.T) {
	s := New()
	m := s.metrics
	if allocs := testing.AllocsPerRun(100, func() {
		m.releases.Inc()
		m.httpReq[routeAnswer][1].Inc()
		m.inFlight[routeAnswer].Add(1)
		m.inFlight[routeAnswer].Add(-1)
		m.releaseSec.Observe(3e-4)
		m.stage.Infer.Observe(1e-4)
	}); allocs != 0 {
		t.Fatalf("metric recording allocates %.1f per op, want 0", allocs)
	}
}

// TestMetricsScrapeDuringTrafficRace hammers the registry and trace
// ring from concurrent traced releases, scrapes, and trace reads. Run
// with -race this is the data-race pin for the whole flight recorder.
func TestMetricsScrapeDuringTrafficRace(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	d := designOn(t, ts, map[string]any{"workload": "identity:8"})

	const workers, iters = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				body, _ := json.Marshal(map[string]any{
					"strategy": d.Strategy, "dataset": "race",
					"histogram": []float64{1, 2, 3, 4, 5, 6, 7, 8},
					"epsilon":   1e-4, "delta": 1e-9, "trace": i%2 == 0,
				})
				resp, err := http.Post(ts.URL+"/answer", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err == nil {
					resp.Body.Close()
				}
				resp, err = http.Get(ts.URL + "/debug/traces")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	exp := scrapeMetrics(t, ts)
	if v := mustValue(t, exp, "am_releases_total"); v != workers*iters {
		t.Fatalf("am_releases_total = %g, want %d", v, workers*iters)
	}
}
