package server

// The distributed-fleet equivalence harness: an in-process coordinator
// plus worker Servers wired over real loopback HTTP, with a
// deterministic fault-injecting transport between them. The pinned
// property throughout: a sharded release routed through the fleet is
// bit-identical (math.Float64bits) to the same release solved locally
// on the same seeded noise stream — under every injected failure mode —
// and a release that fails settles its entire budget reservation.

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"adaptivemm/internal/fleet"
	"adaptivemm/internal/mm"
)

// swapHandler lets a httptest server exist (its URL known) before the
// Server that will answer on it — breaking the coordinator/worker
// bootstrap cycle: workers need the coordinator's URL, the coordinator
// needs the workers' URLs.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) Set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "worker not wired yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// fleetHarness is one coordinator + n workers on loopback HTTP.
type fleetHarness struct {
	coord    *Server
	coordTS  *httptest.Server
	workers  []*Server
	workerTS []*httptest.Server
	rt       *fleet.FaultRoundTripper
}

// newFleetHarness builds the fleet. sched is the coordinator-side fault
// schedule (nil = fault-free); background probes are disabled so the
// schedule's request counter stays deterministic. coordOpts customizes
// the coordinator (store, RequireRemote, ...); fleet wiring fields are
// overwritten.
func newFleetHarness(t *testing.T, nWorkers int, sched fleet.Schedule, coordOpts Options) *fleetHarness {
	t.Helper()
	h := &fleetHarness{rt: &fleet.FaultRoundTripper{Schedule: sched}}
	swaps := make([]*swapHandler, nWorkers)
	urls := make([]string, nWorkers)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		h.workerTS = append(h.workerTS, ts)
		urls[i] = ts.URL
	}
	coordOpts.FleetWorkers = urls
	coordOpts.FleetTransport = h.rt
	coordOpts.FleetProbeInterval = -1
	if coordOpts.ShardTimeout == 0 {
		coordOpts.ShardTimeout = 2 * time.Second
	}
	if coordOpts.Logf == nil {
		coordOpts.Logf = t.Logf
	}
	coord, err := Open(coordOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	h.coord = coord
	h.coordTS = httptest.NewServer(coord.Handler())
	t.Cleanup(h.coordTS.Close)
	for i := range swaps {
		w, err := Open(Options{CoordinatorURL: h.coordTS.URL, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		h.workers = append(h.workers, w)
		swaps[i].Set(w.Handler())
	}
	return h
}

// designSharded designs the harness's canonical sharded workload (two
// marginal blocks over an 8×8 domain) and returns the strategy id.
func (h *fleetHarness) designSharded(t *testing.T) string {
	t.Helper()
	dr := designSpecOn(t, h.coordTS, `{"workload":"marginals:1:8x8"}`)
	if dr.Planner.Generator != "sharded" {
		t.Fatalf("marginals:1:8x8 won generator %q, want sharded", dr.Planner.Generator)
	}
	return dr.Strategy
}

// mech returns the strategy's mechanism for backend attach/detach.
func (h *fleetHarness) mech(t *testing.T, strategy string) *mm.Mechanism {
	t.Helper()
	h.coord.mu.RLock()
	ent := h.coord.strategies[strategy]
	h.coord.mu.RUnlock()
	if ent == nil {
		t.Fatalf("strategy %q not on the coordinator", strategy)
	}
	return ent.plan.Mechanism
}

// seededHistogram is the 64-cell release input every equivalence test
// shares.
func seededHistogram() []float64 {
	hist := make([]float64, 64)
	for i := range hist {
		hist[i] = float64((i*7)%11) + 0.5
	}
	return hist
}

// answerSeeded releases strategy against an inline histogram with a
// pinned seed and returns the answers. Shortest-round-trip JSON floats
// preserve the exact bits, so answers compare bit-identically.
func answerSeeded(t *testing.T, ts *httptest.Server, strategy string, hist []float64, seed int64) []float64 {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"strategy": strategy, "dataset": "equiv", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "seed": seed,
	})
	resp, err := http.Post(ts.URL+"/answer", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Answers []float64 `json:"answers"`
		Error   string    `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/answer: status %d: %s", resp.StatusCode, out.Error)
	}
	return out.Answers
}

// localBaseline answers the same release with the fleet detached — the
// single-process sharded reference the distributed answers must match
// bit for bit.
func (h *fleetHarness) localBaseline(t *testing.T, strategy string, hist []float64, seed int64) []float64 {
	t.Helper()
	mech := h.mech(t, strategy)
	b := mech.ShardBackend()
	if b == nil {
		t.Fatal("no fleet backend attached to the sharded strategy")
	}
	if err := mech.SetShardBackend(nil); err != nil {
		t.Fatal(err)
	}
	base := answerSeeded(t, h.coordTS, strategy, hist, seed)
	if err := mech.SetShardBackend(b); err != nil {
		t.Fatal(err)
	}
	return base
}

func requireBitIdentical(t *testing.T, want, got []float64, context string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: answer lengths differ: %d vs %d", context, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: answer %d: local bits %016x, distributed bits %016x",
				context, i, math.Float64bits(want[i]), math.Float64bits(got[i]))
		}
	}
}

// fleetStatus fetches GET /fleet from any of the harness's servers.
func fleetStatus(t *testing.T, ts *httptest.Server) fleetResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet: status %d", resp.StatusCode)
	}
	var fr fleetResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	return fr
}

// The core equivalence property: a release routed through two real HTTP
// workers is bit-identical to the single-process sharded release on the
// same seeded noise stream.
func TestFleetDistributedBitIdentical(t *testing.T) {
	h := newFleetHarness(t, 2, nil, Options{})
	strategy := h.designSharded(t)
	hist := seededHistogram()

	base := h.localBaseline(t, strategy, hist, 7)
	dist := answerSeeded(t, h.coordTS, strategy, hist, 7)
	requireBitIdentical(t, base, dist, "fault-free fleet")

	st := fleetStatus(t, h.coordTS)
	if st.Mode != "coordinator" {
		t.Fatalf("coordinator /fleet mode = %q", st.Mode)
	}
	if st.Shards == nil || st.Shards.Remote == 0 {
		t.Fatalf("no shards answered remotely: %+v", st.Shards)
	}
	if st.Shards.Degraded != 0 {
		t.Fatalf("fault-free fleet degraded %d shards", st.Shards.Degraded)
	}
	var served int64
	for _, wts := range h.workerTS {
		ws := fleetStatus(t, wts)
		if ws.Mode != "worker" {
			t.Fatalf("worker /fleet mode = %q", ws.Mode)
		}
		served += ws.ShardRequests
	}
	if served != st.Shards.Remote {
		t.Fatalf("workers served %d shard requests, coordinator counted %d remote", served, st.Shards.Remote)
	}
}

// Every injected failure mode must leave the answers bit-identical to
// the local baseline: faults may move a shard to another worker
// (retries) or back to the coordinator (degraded), never change bits.
func TestFleetFaultSchedulesBitIdentical(t *testing.T) {
	shardsOnly := func(f fleet.Fault) fleet.Schedule {
		return fleet.PathSchedule(func(p string) bool { return strings.HasPrefix(p, "/shards/") }, f)
	}
	cases := []struct {
		name string
		// sched decides each coordinator-side request's fault.
		sched fleet.Schedule
		// wantRetries / wantDegraded assert how the release survived.
		wantRetries  bool
		wantDegraded bool
	}{
		{
			name: "worker down at first attempt",
			sched: func(n int, r *http.Request) fleet.Fault {
				if n == 0 {
					return fleet.Fault{Mode: fleet.FaultDrop}
				}
				return fleet.Fault{}
			},
			wantRetries: true,
		},
		{
			name:  "one shard's requests always drop",
			sched: fleet.PathSchedule(func(p string) bool { return strings.HasPrefix(p, "/shards/") && strings.HasSuffix(p, "/1") }, fleet.Fault{Mode: fleet.FaultDrop}),
			// Both workers fail shard 1: retried, then served locally.
			wantRetries:  true,
			wantDegraded: true,
		},
		{
			name:         "all workers down",
			sched:        shardsOnly(fleet.Fault{Mode: fleet.FaultDrop}),
			wantDegraded: true,
		},
		{
			name:         "mid-body truncation",
			sched:        shardsOnly(fleet.Fault{Mode: fleet.FaultTruncate}),
			wantDegraded: true,
		},
		{
			name:         "responses corrupted",
			sched:        shardsOnly(fleet.Fault{Mode: fleet.FaultCorrupt}),
			wantDegraded: true,
		},
		{
			name:         "workers return 503",
			sched:        shardsOnly(fleet.Fault{Mode: fleet.Fault5xx}),
			wantDegraded: true,
		},
		{
			name:         "slow worker past the timeout",
			sched:        shardsOnly(fleet.Fault{Mode: fleet.FaultDelay, Delay: 500 * time.Millisecond}),
			wantDegraded: true,
		},
		{
			name:  "duplicate delivery",
			sched: shardsOnly(fleet.Fault{Mode: fleet.FaultDuplicate}),
			// Shard inference is stateless: duplicates are harmless and the
			// release stays fully remote.
		},
		{
			name:  "seeded random drops",
			sched: fleet.SeededSchedule(42, 0.5, fleet.FaultDrop),
			// Outcome depends on the seed; only bit-identity is pinned.
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{}
			if tc.name == "slow worker past the timeout" {
				opts.ShardTimeout = 50 * time.Millisecond
			}
			h := newFleetHarness(t, 2, tc.sched, opts)
			strategy := h.designSharded(t)
			hist := seededHistogram()
			base := h.localBaseline(t, strategy, hist, 11)
			dist := answerSeeded(t, h.coordTS, strategy, hist, 11)
			requireBitIdentical(t, base, dist, tc.name)

			st := fleetStatus(t, h.coordTS).Shards
			if tc.wantRetries && st.Retries == 0 {
				t.Fatalf("%s: expected retries, got %+v", tc.name, st)
			}
			if tc.wantDegraded && st.Degraded == 0 {
				t.Fatalf("%s: expected degraded local fallback, got %+v", tc.name, st)
			}
			if !tc.wantDegraded && tc.sched == nil && st.Degraded > 0 {
				t.Fatalf("%s: unexpected degradation: %+v", tc.name, st)
			}
		})
	}
}

// datasetBudgets reads one dataset's spent/remaining from GET /datasets.
func datasetBudgets(t *testing.T, ts *httptest.Server, name string) datasetInfo {
	t.Helper()
	resp, err := http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]datasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out[name]
}

// A distributed release that fails must refund its entire reservation:
// the budget is reserved once at the coordinator and committed only
// after all shards return — there is no partial commit to leak spend.
func TestFleetFailedReleaseRefundsFullReservation(t *testing.T) {
	run := func(t *testing.T, sched fleet.Schedule) {
		// RequireRemote turns fleet failure into release failure instead of
		// silent local fallback — the failure path under test.
		h := newFleetHarness(t, 2, sched, Options{FleetRequireRemote: true})
		strategy := h.designSharded(t)
		_, body := post(t, h.coordTS, "/datasets", map[string]any{
			"name": "capped", "histogram": seededHistogram(),
			"cap": map[string]float64{"epsilon": 1, "delta": 1e-3},
		})
		_ = body
		resp, errBody := post(t, h.coordTS, "/answer", map[string]any{
			"strategy": strategy, "dataset": "capped", "epsilon": 0.5, "delta": 1e-4,
		})
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("release succeeded with the fleet required and failing: %s", errBody)
		}
		info := datasetBudgets(t, h.coordTS, "capped")
		if info.Spent.Epsilon != 0 || info.Spent.Delta != 0 {
			t.Fatalf("failed release left spend on the ledger: %+v", info.Spent)
		}
		if info.Remaining == nil || info.Remaining.Epsilon != 1 || info.Remaining.Delta != 1e-3 {
			t.Fatalf("failed release shrank the remaining budget: %+v", info.Remaining)
		}
		// The budget is intact: a retried release with the fleet healthy
		// succeeds and charges exactly once. Jump the registry clock past
		// every probe backoff so the recovered workers are usable now.
		h.rt.Schedule = nil
		h.coord.fleetSt.client.Registry.SetClock(func() time.Time { return time.Now().Add(time.Minute) })
		resp, errBody = post(t, h.coordTS, "/answer", map[string]any{
			"strategy": strategy, "dataset": "capped", "epsilon": 0.5, "delta": 1e-4,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("retry after recovery failed: %s", errBody)
		}
		info = datasetBudgets(t, h.coordTS, "capped")
		if info.Spent.Epsilon != 0.5 {
			t.Fatalf("recovered release spent ε=%g, want 0.5", info.Spent.Epsilon)
		}
	}
	t.Run("whole fleet down", func(t *testing.T) {
		run(t, fleet.PathSchedule(func(p string) bool { return strings.HasPrefix(p, "/shards/") }, fleet.Fault{Mode: fleet.FaultDrop}))
	})
	t.Run("single shard fails — no partial commit", func(t *testing.T) {
		run(t, fleet.PathSchedule(func(p string) bool {
			return strings.HasPrefix(p, "/shards/") && strings.HasSuffix(p, "/1")
		}, fleet.Fault{Mode: fleet.FaultDrop}))
	})
}

// Workers fetch a plan they have never seen from the coordinator once,
// verify it against its content address, and serve every later shard
// request from the cached copy.
func TestFleetWorkerFetchesPlanOnce(t *testing.T) {
	h := newFleetHarness(t, 2, nil, Options{})
	strategy := h.designSharded(t)
	hist := seededHistogram()

	answerSeeded(t, h.coordTS, strategy, hist, 3)
	var fetchesAfterFirst, cached int64
	for _, wts := range h.workerTS {
		ws := fleetStatus(t, wts)
		fetchesAfterFirst += ws.PlanFetches
		cached += int64(ws.CachedPlans)
	}
	if fetchesAfterFirst == 0 {
		t.Fatal("no worker fetched the plan from the coordinator")
	}
	if cached != fetchesAfterFirst {
		t.Fatalf("%d fetches but %d cached plans", fetchesAfterFirst, cached)
	}

	answerSeeded(t, h.coordTS, strategy, hist, 4)
	var fetchesAfterSecond int64
	for _, wts := range h.workerTS {
		fetchesAfterSecond += fleetStatus(t, wts).PlanFetches
	}
	if fetchesAfterSecond != fetchesAfterFirst {
		t.Fatalf("second release re-fetched the plan: %d -> %d fetches", fetchesAfterFirst, fetchesAfterSecond)
	}
}

// A shard request naming a plan nobody holds fails cleanly, and
// malformed shard paths are rejected.
func TestFleetShardRequestValidation(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fleet.AppendVector(nil, []float64{1, 2, 3})
	for path, want := range map[string]int{
		"/shards/0123456789abcdef01234567/0":  http.StatusNotFound, // unknown plan
		"/shards/not-a-content-address/0":     http.StatusBadRequest,
		"/shards/0123456789abcdef01234567/-1": http.StatusBadRequest,
		"/shards/0123456789abcdef01234567/x":  http.StatusBadRequest,
		"/shards/0123456789abcdef01234567":    http.StatusBadRequest,
	} {
		resp, err := http.Post(ts.URL+path, "application/octet-stream", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("POST %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}

	if st := fleetStatus(t, ts); st.Mode != "standalone" {
		t.Fatalf("plain server /fleet mode = %q, want standalone", st.Mode)
	}
}

// Regression for the List/quota-GC race: an id listed by GET /plans a
// moment ago whose entry the quota then evicted must come back as a 404
// naming the eviction — never a 500 — while /plans/{id}/raw keeps
// serving from the in-memory strategy.
func TestPlanEvictedBetweenListAndGet(t *testing.T) {
	s, err := Open(Options{StoreDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	designSpecOn(t, ts, `{"workload":"prefix:64"}`)
	// Flush the write-behind queue so the entry is durably listed.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	metas, err := s.store.List()
	if err != nil || len(metas) != 1 {
		t.Fatalf("List = %d entries (%v), want 1", len(metas), err)
	}
	id := metas[0].ID

	fetch := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 4096)
		n, _ := resp.Body.Read(buf)
		return resp.StatusCode, string(buf[:n])
	}

	if code, _ := fetch("/plans/" + id); code != http.StatusOK {
		t.Fatalf("GET /plans/{id} before eviction: status %d", code)
	}

	// The "GC lands between List and Get" moment: evict everything.
	s.store.SetQuota(1, t.Logf)

	code, body := fetch("/plans/" + id)
	if code != http.StatusNotFound {
		t.Fatalf("GET /plans/{id} after eviction: status %d (%s), want 404", code, body)
	}
	if !strings.Contains(body, "evicted") {
		t.Fatalf("eviction 404 carries no hint: %s", body)
	}
	// A never-existing id is a plain 404, no eviction claim.
	code, body = fetch("/plans/ffffffffffffffffffffffff")
	if code != http.StatusNotFound || strings.Contains(body, "evicted") {
		t.Fatalf("unknown id: status %d body %s, want plain 404", code, body)
	}
	// The in-memory strategy still serves the raw entry for the fleet.
	if code, _ := fetch("/plans/" + id + "/raw"); code != http.StatusOK {
		t.Fatalf("GET /plans/{id}/raw after eviction: status %d, want 200 from memory", code)
	}
}

// Coordinator and worker roles are mutually exclusive, and a
// coordinator needs at least one usable worker URL.
func TestFleetOptionValidation(t *testing.T) {
	if _, err := Open(Options{FleetWorkers: []string{"http://w"}, CoordinatorURL: "http://c"}); err == nil {
		t.Fatal("coordinator+worker accepted")
	}
	if _, err := Open(Options{FleetWorkers: []string{"", "  "}}); err == nil {
		t.Fatal("coordinator with no usable worker URLs accepted")
	}
}
