package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/planner"
	"adaptivemm/internal/workload"
)

// streamRecord is the union of the three NDJSON record shapes.
type streamRecord struct {
	Stream    string    `json:"stream"`
	Strategy  string    `json:"strategy"`
	Rows      int       `json:"rows"`
	ChunkSize int       `json:"chunkSize"`
	Ledger    *Budget   `json:"ledger"`
	Offset    *int      `json:"offset"`
	Answers   []float64 `json:"answers"`
	Done      bool      `json:"done"`
	Count     int       `json:"count"`
	Checksum  string    `json:"checksum"`
}

// verifyNDJSONStream is the client-side contract check: parse the NDJSON
// records, require contiguous chunk offsets and a trailing done record
// whose count and FNV-64a checksum match the received answers. It
// returns the reassembled answers; any truncation or corruption is an
// error.
func verifyNDJSONStream(body []byte) ([]float64, *streamRecord, error) {
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) < 2 {
		return nil, nil, fmt.Errorf("stream has %d records, want metadata + trailer at least", len(lines))
	}
	var meta streamRecord
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		return nil, nil, fmt.Errorf("metadata record: %w", err)
	}
	if meta.Stream != "answers" {
		return nil, nil, fmt.Errorf("metadata stream %q, want answers", meta.Stream)
	}
	var answers []float64
	sum := fnv64Offset
	var done *streamRecord
	for _, line := range lines[1:] {
		var rec streamRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, nil, fmt.Errorf("record after %d answers: %w (truncated mid-record?)", len(answers), err)
		}
		if rec.Done {
			done = &rec
			break
		}
		if rec.Offset == nil {
			return nil, nil, fmt.Errorf("record after %d answers has neither offset nor done", len(answers))
		}
		if *rec.Offset != len(answers) {
			return nil, nil, fmt.Errorf("chunk offset %d, want %d", *rec.Offset, len(answers))
		}
		answers = append(answers, rec.Answers...)
		sum = fnvFloats(sum, rec.Answers)
	}
	if done == nil {
		return nil, nil, fmt.Errorf("stream ended after %d answers without a done record (truncated)", len(answers))
	}
	if done.Count != len(answers) {
		return nil, nil, fmt.Errorf("done record counts %d answers, received %d", done.Count, len(answers))
	}
	if got := string(appendHex16(nil, sum)); got != done.Checksum {
		return nil, nil, fmt.Errorf("checksum %s, stream carried %s (corrupted)", got, done.Checksum)
	}
	if meta.Rows != len(answers) {
		return nil, nil, fmt.Errorf("metadata promised %d rows, received %d", meta.Rows, len(answers))
	}
	return answers, &meta, nil
}

// TestStreamedReleaseMatchesBufferedHTTP pins the full HTTP contract:
// a streamed release under a pinned seed reproduces the buffered
// /answer payload bit for bit (the float emitter round-trips exactly),
// arrives as NDJSON over chunked transfer encoding, and carries a
// verifiable trailer.
func TestStreamedReleaseMatchesBufferedHTTP(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/design", map[string]any{"workload": "allrange:16"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, 16)
	for i := range hist {
		hist[i] = float64((i * 5) % 9)
	}

	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "db1", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "seed": 7,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d: %s", resp.StatusCode, body)
	}
	var buffered answerResponse
	if err := json.Unmarshal(body, &buffered); err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{1, 3, 4096} {
		resp, body = post(t, ts, "/release", map[string]any{
			"strategy": d.Strategy, "dataset": "db1", "histogram": hist,
			"epsilon": 0.5, "delta": 1e-4, "seed": 7,
			"stream": true, "chunkSize": chunk,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream status %d: %s", resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
		}
		if len(resp.TransferEncoding) == 0 || resp.TransferEncoding[0] != "chunked" {
			t.Fatalf("TransferEncoding %v, want chunked", resp.TransferEncoding)
		}
		answers, meta, err := verifyNDJSONStream(body)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if len(answers) != len(buffered.Answers) {
			t.Fatalf("chunk %d: %d answers, buffered %d", chunk, len(answers), len(buffered.Answers))
		}
		for i := range answers {
			if math.Float64bits(answers[i]) != math.Float64bits(buffered.Answers[i]) {
				t.Fatalf("chunk %d: answer[%d] = %v, buffered %v (bit mismatch)", chunk, i, answers[i], buffered.Answers[i])
			}
		}
		if meta.Ledger == nil || meta.Ledger.Epsilon <= 0 {
			t.Fatalf("chunk %d: metadata ledger %+v", chunk, meta.Ledger)
		}
	}
}

// TestStreamTruncationDetected pins the trailer's purpose: every way a
// stream can arrive incomplete — cut mid-record, cut at a record
// boundary before the trailer, or with a corrupted answer — fails
// client-side verification.
func TestStreamTruncationDetected(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, body := post(t, ts, "/design", map[string]any{"workload": "allrange:16"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, 16)
	resp, body = post(t, ts, "/release", map[string]any{
		"strategy": d.Strategy, "dataset": "db1", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "seed": 1, "stream": true, "chunkSize": 16,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	if _, _, err := verifyNDJSONStream(body); err != nil {
		t.Fatalf("intact stream must verify: %v", err)
	}

	lines := strings.SplitAfter(string(body), "\n")
	dropTrailer := strings.Join(lines[:len(lines)-2], "")
	if _, _, err := verifyNDJSONStream([]byte(dropTrailer)); err == nil {
		t.Fatal("stream without its trailer must fail verification")
	}
	cutMidRecord := string(body)[:len(body)/2]
	if _, _, err := verifyNDJSONStream([]byte(cutMidRecord)); err == nil {
		t.Fatal("stream cut mid-record must fail verification")
	}
	corrupted := strings.Replace(string(body), `"answers":[`, `"answers":[1e9,`, 1)
	if _, _, err := verifyNDJSONStream([]byte(corrupted)); err == nil {
		t.Fatal("corrupted answers must fail checksum verification")
	}
}

// TestStreamRequestValidation covers the refusal paths specific to
// streaming: wrong endpoint, wrong mode, batch/stream conflicts, Accept
// mismatch, unknown strategy.
func TestStreamRequestValidation(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, body := post(t, ts, "/design", map[string]any{"workload": "allrange:8"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, 8)
	base := map[string]any{
		"strategy": d.Strategy, "dataset": "db1", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "stream": true,
	}

	resp, _ = post(t, ts, "/answer", base)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/answer with stream: status %d, want 400", resp.StatusCode)
	}

	withMode := map[string]any{}
	for k, v := range base {
		withMode[k] = v
	}
	withMode["mode"] = "estimate"
	resp, _ = post(t, ts, "/release", withMode)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("streamed estimate: status %d, want 400", resp.StatusCode)
	}

	withBatch := map[string]any{}
	for k, v := range base {
		withBatch[k] = v
	}
	withBatch["releases"] = []map[string]any{{"strategy": d.Strategy}}
	resp, _ = post(t, ts, "/release", withBatch)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stream+batch: status %d, want 400", resp.StatusCode)
	}

	unknown := map[string]any{}
	for k, v := range base {
		unknown[k] = v
	}
	unknown["strategy"] = "nope"
	resp, _ = post(t, ts, "/release", unknown)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown strategy: status %d, want 404", resp.StatusCode)
	}

	// An Accept header that cannot take NDJSON is refused up front.
	buf, _ := json.Marshal(base)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/release", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotAcceptable {
		t.Fatalf("Accept: application/json: status %d, want 406", r2.StatusCode)
	}
}

// TestStreamConcurrencyLimit pins the semaphore: past the configured
// concurrent-stream limit the server refuses with 503 + Retry-After
// rather than queueing, and recovers once a slot frees.
func TestStreamConcurrencyLimit(t *testing.T) {
	s := NewWithOptions(Options{MaxConcurrentStreams: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := post(t, ts, "/design", map[string]any{"workload": "allrange:8"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	req := map[string]any{
		"strategy": d.Strategy, "dataset": "db1", "histogram": make([]float64, 8),
		"epsilon": 0.1, "delta": 1e-5, "stream": true,
	}

	s.streamSem <- struct{}{} // occupy the only slot
	resp, _ = post(t, ts, "/release", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 must carry Retry-After")
	}
	<-s.streamSem
	resp, body = post(t, ts, "/release", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d: %s", resp.StatusCode, body)
	}
	if _, _, err := verifyNDJSONStream(body); err != nil {
		t.Fatal(err)
	}
}

// bigTreeEntry builds a served strategy over an AllRange(n) workload
// (n(n+1)/2 queries) with a hierarchical tree strategy and exact tree
// inference — the shape whose buffered release the payload cap refuses.
// Constructing the entry directly (the release path reads only the
// plan's Workload and Mechanism) keeps the test independent of design
// cost at this scale.
func bigTreeEntry(t testing.TB, n int) *entry {
	t.Helper()
	b := linalg.NewSparseBuilder(n)
	for span := n; span >= 1; span /= 2 {
		for lo := 0; lo < n; lo += span {
			b.AppendRangeRow(lo, lo+span-1, 1)
		}
	}
	mech, err := mm.NewMechanismInference(b.Build(), mm.InferCGLS)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.FromOperator("allrange", domain.MustShape(n), linalg.NewIntervalsOp(n))
	return &entry{plan: &planner.Plan{Workload: w, Mechanism: mech}}
}

// countingDiscardWriter discards the response stream while counting it,
// so the heap measurement sees only the server's own buffers.
type countingDiscardWriter struct {
	h      http.Header
	status int
	n      int64
}

func (w *countingDiscardWriter) Header() http.Header {
	if w.h == nil {
		w.h = http.Header{}
	}
	return w.h
}
func (w *countingDiscardWriter) WriteHeader(code int) { w.status = code }
func (w *countingDiscardWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// TestStreamReleaseHeapBound is the bounded-memory acceptance pin: a
// streamed release of AllRange(2048) — ~2.1M answers, over twice the
// buffered payload cap — must complete with heap growth during the
// stream bounded by a small multiple of the chunk size, not O(rows).
// GC is disabled during the measured pass, so the delta is cumulative
// allocation, a ceiling on the true peak.
func TestStreamReleaseHeapBound(t *testing.T) {
	const n = 2048
	s := New()
	ent := bigTreeEntry(t, n)
	s.mu.Lock()
	s.strategies["big"] = ent
	s.mu.Unlock()
	rows := ent.plan.Workload.NumQueries()
	if rows <= maxAnswerRows {
		t.Fatalf("workload has %d rows, want past the %d buffered cap", rows, maxAnswerRows)
	}
	h := s.Handler()

	body, err := json.Marshal(map[string]any{
		"strategy": "big", "dataset": "db1", "histogram": make([]float64, n),
		"epsilon": 0.5, "delta": 1e-4, "seed": 3, "stream": true,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *countingDiscardWriter {
		w := &countingDiscardWriter{}
		req := httptest.NewRequest(http.MethodPost, "/release", strings.NewReader(string(body)))
		h.ServeHTTP(w, req)
		return w
	}

	// Warm-up: grows the mechanism scratch, the pooled record buffer and
	// the stream chunk to their steady-state sizes.
	if w := run(); w.status != http.StatusOK {
		t.Fatalf("warm-up status %d", w.status)
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	w := run()
	runtime.ReadMemStats(&after)
	if w.status != http.StatusOK {
		t.Fatalf("stream status %d", w.status)
	}
	// ~25 bytes per serialized answer is a floor; far under it means the
	// stream was cut short.
	if w.n < int64(rows)*10 {
		t.Fatalf("stream wrote %d bytes for %d answers — truncated?", w.n, rows)
	}
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	limit := int64(32 * mm.DefaultStreamChunk * 8) // 32 chunk-buffers of float64s
	if growth > limit {
		t.Fatalf("heap grew %d bytes during a %d-answer stream, want ≤ %d (bounded by chunk size, not rows)",
			growth, rows, limit)
	}
	t.Logf("streamed %d answers (%d bytes) with %d bytes heap growth", rows, w.n, growth)
}

// TestStreamedBufferedEquivalenceSharded covers the sharded inference
// path end to end over HTTP: a designed sharded plan streams
// bit-identically to its buffered release.
func TestStreamedBufferedEquivalenceSharded(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	// Marginal sets split into independent per-attribute blocks, the
	// planner's sharded form.
	resp, body := post(t, ts, "/design", map[string]any{"workload": "marginals:1:8x8"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status %d: %s", resp.StatusCode, body)
	}
	var d designResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, 64)
	for i := range hist {
		hist[i] = float64(i % 5)
	}
	resp, body = post(t, ts, "/answer", map[string]any{
		"strategy": d.Strategy, "dataset": "db1", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "seed": 11,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d: %s", resp.StatusCode, body)
	}
	var buffered answerResponse
	if err := json.Unmarshal(body, &buffered); err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, ts, "/release", map[string]any{
		"strategy": d.Strategy, "dataset": "db1", "histogram": hist,
		"epsilon": 0.5, "delta": 1e-4, "seed": 11, "stream": true, "chunkSize": 5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	answers, _, err := verifyNDJSONStream(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(buffered.Answers) {
		t.Fatalf("%d answers, buffered %d", len(answers), len(buffered.Answers))
	}
	for i := range answers {
		if math.Float64bits(answers[i]) != math.Float64bits(buffered.Answers[i]) {
			t.Fatalf("answer[%d] = %v, buffered %v (bit mismatch)", i, answers[i], buffered.Answers[i])
		}
	}
}
