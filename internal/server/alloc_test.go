package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestBatchReleaseAllocBound is the serving-layer allocation regression
// pin. The mechanism hot path is allocation-free (see mm's zero-alloc
// test); what remains per batch entry is deliberate bookkeeping — the
// budget reservation, the per-entry goroutine, the decoded request — and
// this test fails if that overhead creeps past a small per-entry budget,
// e.g. if response encoding or noise sourcing starts allocating again.
func TestBatchReleaseAllocBound(t *testing.T) {
	s := New()
	h := s.Handler()
	drive := func(path string, body []byte, respBody *bytes.Buffer) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		respBody.Reset()
		rec := &httptest.ResponseRecorder{Code: http.StatusOK, HeaderMap: http.Header{}, Body: respBody}
		h.ServeHTTP(rec, req)
		return rec
	}
	respBody := bytes.NewBuffer(make([]byte, 0, 1<<20))

	designBody, _ := json.Marshal(map[string]any{"workload": "allrange:64"})
	rec := drive("/design", designBody, respBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("design: status %d: %s", rec.Code, respBody.String())
	}
	var design struct {
		Strategy string `json:"strategy"`
		Cells    int    `json:"cells"`
	}
	if err := json.Unmarshal(respBody.Bytes(), &design); err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, design.Cells)
	for i := range hist {
		hist[i] = float64(i % 5)
	}
	dsBody, _ := json.Marshal(map[string]any{"name": "alloc", "histogram": hist})
	if rec := drive("/datasets", dsBody, respBody); rec.Code != http.StatusOK {
		t.Fatalf("datasets: status %d: %s", rec.Code, respBody.String())
	}

	const batch = 16
	items := make([]map[string]any, batch)
	for i := range items {
		items[i] = map[string]any{
			"strategy": design.Strategy, "dataset": "alloc",
			"epsilon": 1e-4, "delta": 1e-9, "mode": "estimate",
		}
	}
	relBody, _ := json.Marshal(map[string]any{"releases": items, "parallelism": 4})

	// Warm every pool (scratch, noise sources, response buffers).
	for i := 0; i < 3; i++ {
		if rec := drive("/release", relBody, respBody); rec.Code != http.StatusOK {
			t.Fatalf("warm-up release: status %d: %s", rec.Code, respBody.String())
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if rec := drive("/release", relBody, respBody); rec.Code != http.StatusOK {
			t.Fatalf("release: status %d", rec.Code)
		}
	})
	// Measured steady state is ~9 allocations per entry plus ~20 per
	// batch for request decoding. The bound leaves headroom for Go
	// version drift while still catching a per-answer or per-cell
	// regression (which would add hundreds per entry).
	const perEntryBudget = 25
	if perEntry := (allocs - 40) / batch; perEntry > perEntryBudget {
		t.Fatalf("batch /release allocates %.0f per batch (%.1f per entry), want ≤ %d per entry",
			allocs, perEntry, perEntryBudget)
	}
}
