package server

import (
	"math"
	"strconv"
	"testing"
)

// FuzzFtoa pins the hand-rolled float emitter to strconv: every finite
// float64 must print as a string that strconv parses back to the
// bit-identical value (the release answers must survive the JSON round
// trip exactly), and non-finite values must become null.
func FuzzFtoa(f *testing.F) {
	for _, v := range []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 1.0 / 3.0,
		1e15, 1e15 - 1, 9007199254740993, // around the integer fast path's cutoffs
		1e300, 5e-324, -2.5e-10, math.MaxFloat64, // extreme magnitudes take the strconv path
		math.NaN(), math.Inf(1), math.Inf(-1),
	} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, x float64) {
		out := string(appendFloat(nil, x))
		if math.IsNaN(x) || math.IsInf(x, 0) {
			if out != "null" {
				t.Fatalf("appendFloat(%v) = %q, want null", x, out)
			}
			return
		}
		got, err := strconv.ParseFloat(out, 64)
		if err != nil {
			t.Fatalf("appendFloat(%v) emitted unparseable %q: %v", x, out, err)
		}
		if math.Float64bits(got) != math.Float64bits(x) {
			t.Fatalf("appendFloat(%v) = %q parses back to %v (bits %016x, want %016x)",
				x, out, got, math.Float64bits(got), math.Float64bits(x))
		}
	})
}
