// Server observability: the flight recorder wired through every layer.
//
// One obs.Registry per server holds every metric family — HTTP traffic
// by route and status class, release latency and its per-stage
// breakdown (threaded into the mechanism via mm.StageTimers), planner
// design activity and cache behavior, accountant budgets, plan-store
// persistence health, and the fleet's routing counters — and renders
// them at GET /metrics in the Prometheus text exposition. The fleet
// counters are the same atomics the GET /fleet JSON reads (adopted via
// obs.Registry.RegisterCounter), so the two surfaces can never drift.
//
// Recording is atomic-only: the instrumentation rides inside the
// pinned zero-allocation release path (see alloc_test.go), so nothing
// on a request's success path may allocate. Per-release traces are the
// exception and are opt-in per request ("trace": true, or an incoming
// X-AM-Trace header on a worker): a trace allocates freely, lands in a
// bounded lock-free ring, and is served at GET /debug/traces.
//
// Operational log messages all flow through infof/warnf with a
// component tag; warnings are counted per component in
// am_log_warnings_total so "is it logging errors" is a scrape, not a
// grep.

package server

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"adaptivemm/internal/mm"
	"adaptivemm/internal/obs"
)

// traceRingSize bounds the /debug/traces flight recorder.
const traceRingSize = 256

// defaultTraceN is how many traces GET /debug/traces returns when the
// request does not choose (?n=).
const defaultTraceN = 50

// Route indices for the HTTP middleware's pre-registered series. Every
// request maps onto exactly one of these, so the route label set is
// closed at compile time.
const (
	routeDesign = iota
	routeDatasets
	routeAnswer
	routeRelease
	routeLedger
	routePlans
	routeFleet
	routeShards
	routeMetrics
	routeTraces
	routeOther
	numRoutes
)

var routeNames = [numRoutes]string{
	"design", "datasets", "answer", "release", "ledger",
	"plans", "fleet", "shards", "metrics", "traces", "other",
}

// routeIndex classifies a request path onto a route index without
// allocating.
func routeIndex(path string) int {
	switch path {
	case "/design":
		return routeDesign
	case "/datasets":
		return routeDatasets
	case "/answer":
		return routeAnswer
	case "/release":
		return routeRelease
	case "/ledger":
		return routeLedger
	case "/fleet":
		return routeFleet
	case "/metrics":
		return routeMetrics
	case "/debug/traces":
		return routeTraces
	}
	switch {
	case len(path) >= len("/plans") && path[:len("/plans")] == "/plans":
		return routePlans
	case len(path) >= len("/shards/") && path[:len("/shards/")] == "/shards/":
		return routeShards
	}
	return routeOther
}

// Log components. The set is closed so am_log_warnings_total has a
// fixed label set; messages from an unlisted component count under
// "other".
const (
	compHTTP    = "http"
	compPlan    = "plan"
	compPersist = "persist"
	compStore   = "store"
	compFleet   = "fleet"
	compOther   = "other"
)

var logComponents = [...]string{compHTTP, compPlan, compPersist, compStore, compFleet, compOther}

// serverMetrics is every pre-registered series the server records on.
// It is built once in Open, before any request can arrive; all fields
// are read-only afterwards, so recording needs no lock.
type serverMetrics struct {
	reg  *obs.Registry
	ring *obs.TraceRing

	// HTTP middleware series, indexed by route; status classes are
	// 1xx..5xx at indices 0..4.
	httpReq  [numRoutes][5]*obs.Counter
	httpSec  [numRoutes]*obs.Histogram
	inFlight [numRoutes]*obs.Gauge

	// Release path.
	releases      *obs.Counter
	releaseSec    *obs.Histogram
	serializeSec  *obs.Histogram
	stage         *mm.StageTimers
	refusals      *obs.Counter
	streamRejects *obs.Counter

	// Planner + plan store.
	designSec    *obs.Histogram
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	designs      map[string]*obs.Counter
	persistDrops *obs.Counter
	evictions    *obs.Counter

	// Worker-side shard serving.
	shardRequests *obs.Counter

	// Per-component warning counters for warnf.
	warns map[string]*obs.Counter
}

// newServerMetrics registers the server-wide families on a fresh
// registry. Fleet-role series are added later by registerFleetMetrics /
// registerWorkerMetrics once the role is known.
func newServerMetrics(s *Server) *serverMetrics {
	m := &serverMetrics{
		reg:  obs.NewRegistry(),
		ring: obs.NewTraceRing(traceRingSize),
	}
	classes := [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}
	for rt := 0; rt < numRoutes; rt++ {
		for c, class := range classes {
			//lint:allow obscard: route and status-class label values index compile-time-constant tables (routeNames, classes)
			m.httpReq[rt][c] = m.reg.Counter("am_http_requests_total", "HTTP requests by route and status class", obs.L("route", routeNames[rt]), obs.L("code", class))
		}
		//lint:allow obscard: route label values index the compile-time-constant routeNames table
		m.httpSec[rt] = m.reg.Histogram("am_http_request_seconds", "HTTP request latency by route", obs.DefTimeBuckets, obs.L("route", routeNames[rt]))
		//lint:allow obscard: route label values index the compile-time-constant routeNames table
		m.inFlight[rt] = m.reg.Gauge("am_http_in_flight", "in-flight HTTP requests by route", obs.L("route", routeNames[rt]))
	}

	m.releases = m.reg.Counter("am_releases_total", "successful private releases (buffered, batch entries, and streamed)")
	m.releaseSec = m.reg.Histogram("am_release_seconds", "end-to-end release latency (validate, reserve, noise, inference)", obs.DefTimeBuckets)
	m.serializeSec = m.reg.Histogram("am_release_stage_seconds", "release pipeline stage latency", obs.DefTimeBuckets, obs.L("stage", "serialize"))
	m.stage = &mm.StageTimers{
		Answer: m.reg.Histogram("am_release_stage_seconds", "release pipeline stage latency", obs.DefTimeBuckets, obs.L("stage", "answer")),
		Noise:  m.reg.Histogram("am_release_stage_seconds", "release pipeline stage latency", obs.DefTimeBuckets, obs.L("stage", "noise")),
		Infer:  m.reg.Histogram("am_release_stage_seconds", "release pipeline stage latency", obs.DefTimeBuckets, obs.L("stage", "infer")),
	}
	m.refusals = m.reg.Counter("am_acct_refusals_total", "releases refused by the budget accountant (HTTP 429)")
	m.streamRejects = m.reg.Counter("am_stream_rejects_total", "streamed releases refused at the concurrency limit (HTTP 503)")

	m.designSec = m.reg.Histogram("am_plan_design_seconds", "strategy design latency (planner runs, cache misses only)", obs.DefTimeBuckets)
	m.cacheHits = m.reg.Counter("am_plan_cache_hits_total", "designs served from the strategy cache")
	m.cacheMisses = m.reg.Counter("am_plan_cache_misses_total", "designs that ran the planner")
	m.designs = make(map[string]*obs.Counter)
	for _, g := range s.pl.Generators() {
		//lint:allow obscard: generator label values come from the planner's compile-time generator registry, a bounded set fixed at startup
		m.designs[g] = m.reg.Counter("am_plan_designs_total", "won designs by planner generator", obs.L("generator", g))
	}
	m.persistDrops = m.reg.Counter("am_store_persist_drops_total", "plan persistence writes dropped at the full write-behind queue")
	m.evictions = m.reg.Counter("am_store_evictions_total", "plan-store entries evicted by the byte quota")

	m.shardRequests = m.reg.Counter("am_fleet_shard_requests_total", "POST /shards requests served by this process")

	m.warns = make(map[string]*obs.Counter, len(logComponents))
	for _, c := range logComponents {
		//lint:allow obscard: component label values come from the compile-time logComponents table
		m.warns[c] = m.reg.Counter("am_log_warnings_total", "operational warnings logged, by component", obs.L("component", c))
	}

	// Collect-at-scrape gauges for state that lives elsewhere. The
	// closures read the server's own structures under their own locks;
	// nil channels (persistence off) read as depth 0.
	m.reg.GaugeFunc("am_acct_epsilon_spent", "committed epsilon spend by dataset", func(emit func(v float64, labels ...obs.Label)) {
		for _, name := range s.acct.Datasets() {
			emit(s.acct.Spent(name).Epsilon, obs.L("dataset", name))
		}
	})
	m.reg.GaugeFunc("am_acct_delta_spent", "committed delta spend by dataset", func(emit func(v float64, labels ...obs.Label)) {
		for _, name := range s.acct.Datasets() {
			emit(s.acct.Spent(name).Delta, obs.L("dataset", name))
		}
	})
	m.reg.GaugeFunc("am_acct_epsilon_remaining", "remaining epsilon under the cap, capped datasets only", func(emit func(v float64, labels ...obs.Label)) {
		for _, name := range s.acct.Datasets() {
			if rem, ok := s.acct.Remaining(name); ok {
				emit(rem.Epsilon, obs.L("dataset", name))
			}
		}
	})
	m.reg.GaugeFunc("am_acct_delta_remaining", "remaining delta under the cap, capped datasets only", func(emit func(v float64, labels ...obs.Label)) {
		for _, name := range s.acct.Datasets() {
			if rem, ok := s.acct.Remaining(name); ok {
				emit(rem.Delta, obs.L("dataset", name))
			}
		}
	})
	m.reg.GaugeFunc("am_store_persist_queue_depth", "pending plan writes in the write-behind queue", func(emit func(v float64, labels ...obs.Label)) {
		emit(float64(len(s.persistCh)))
	})
	m.reg.GaugeFunc("am_stream_in_flight", "streamed releases currently running", func(emit func(v float64, labels ...obs.Label)) {
		emit(float64(len(s.streamSem)))
	})
	m.reg.GaugeFunc("am_server_strategies", "strategies resident in the table", func(emit func(v float64, labels ...obs.Label)) {
		s.mu.RLock()
		n := len(s.strategies)
		s.mu.RUnlock()
		emit(float64(n))
	})
	m.reg.GaugeFunc("am_fleet_cached_plans", "plans resident in the by-address fetch cache", func(emit func(v float64, labels ...obs.Label)) {
		s.fetchedMu.Lock()
		n := len(s.fetched)
		s.fetchedMu.Unlock()
		emit(float64(n))
	})
	return m
}

// registerFleetMetrics adopts the coordinator's routing counters into
// the exposition — the same atomics fleet.Client.Stats and GET /fleet
// read, so the JSON and the scrape cannot disagree — and registers the
// per-worker health gauge.
func (m *serverMetrics) registerFleetMetrics(fs *fleetState) {
	c := fs.client
	c.Remote = m.reg.RegisterCounter("am_fleet_shards_remote_total", "shards answered by a fleet worker", c.Remote)
	c.Retries = m.reg.RegisterCounter("am_fleet_retries_total", "shard failover attempts past each shard's first", c.Retries)
	c.Failures = m.reg.RegisterCounter("am_fleet_failures_total", "failed remote shard attempts (each marked its worker down)", c.Failures)
	// The RPC latency histogram is replaced before any traffic flows;
	// afterwards one histogram backs both surfaces.
	c.RPCSeconds = m.reg.Histogram("am_fleet_shard_rpc_seconds", "remote shard RPC latency", obs.DefTimeBuckets)
	fs.degraded = m.reg.Counter("am_fleet_degraded_total", "shards served by local fallback after the fleet failed them")
	m.reg.GaugeFunc("am_fleet_worker_up", "per-worker health (1 healthy, 0 down)", func(emit func(v float64, labels ...obs.Label)) {
		for _, ws := range c.Registry.Status() {
			v := 0.0
			if ws.Healthy {
				v = 1
			}
			emit(v, obs.L("worker", ws.URL))
		}
	})
}

// registerWorkerMetrics registers the worker role's plan-fetch counter.
func (m *serverMetrics) registerWorkerMetrics(ws *workerFleetState) {
	ws.fetches = m.reg.Counter("am_fleet_plan_fetches_total", "plans fetched from the coordinator by content address")
}

// instrumentPlan attaches the shared stage-timer histograms to a plan's
// mechanism so every release through it feeds am_release_stage_seconds.
func (s *Server) instrumentPlan(mech *mm.Mechanism) {
	mech.SetStageTimers(s.metrics.stage)
}

// --- leveled component logging ---

// infof logs an informational message under a component tag.
func (s *Server) infof(component, format string, args ...any) {
	s.logf("server/"+component+": "+format, args...)
}

// warnf logs a warning under a component tag and counts it in
// am_log_warnings_total{component}.
func (s *Server) warnf(component, format string, args ...any) {
	c, ok := s.metrics.warns[component]
	if !ok {
		c = s.metrics.warns[compOther]
	}
	c.Inc()
	s.logf("server/"+component+": warning: "+format, args...)
}

// --- HTTP middleware ---

// statusWriter captures the response status for the middleware. Pooled:
// the wrapper must not charge the zero-alloc release path a per-request
// allocation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

var statusWriterPool = sync.Pool{New: func() any { return new(statusWriter) }}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streamed releases keep
// their chunk-by-chunk delivery through the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// wrap is the instrumentation middleware: per-route request counters by
// status class, latency histograms, and in-flight gauges — atomic
// recording only, no per-request allocation in steady state.
func (m *serverMetrics) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt := routeIndex(r.URL.Path)
		m.inFlight[rt].Add(1)
		t0 := time.Now()
		sw := statusWriterPool.Get().(*statusWriter)
		sw.ResponseWriter, sw.code = w, 0
		h.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		sw.ResponseWriter = nil
		statusWriterPool.Put(sw)
		m.httpSec[rt].ObserveSince(t0)
		m.inFlight[rt].Add(-1)
		class := code/100 - 1
		if class < 0 || class > 4 {
			class = 4
		}
		m.httpReq[rt][class].Inc()
	})
}

// --- /metrics and /debug/traces ---

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WriteText(w)
}

// spanJSON is one stage of a trace in the /debug/traces response, as
// microsecond offsets from the trace start.
type spanJSON struct {
	Name        string `json:"name"`
	StartMicros int64  `json:"startMicros"`
	EndMicros   int64  `json:"endMicros"`
}

type traceJSON struct {
	ID             string     `json:"id"`
	Parent         string     `json:"parent,omitempty"`
	Route          string     `json:"route"`
	Status         int        `json:"status"`
	DurationMillis float64    `json:"durationMillis"`
	Spans          []spanJSON `json:"spans"`
}

type tracesResponse struct {
	// Total is how many traces have ever been recorded (the ring keeps
	// the most recent traceRingSize of them).
	Total  uint64      `json:"total"`
	Traces []traceJSON `json:"traces"`
}

// handleTraces serves GET /debug/traces: the most recent traces, newest
// first, filterable by ?route=, ?status=, ?min_ms= and capped at ?n=.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	route := q.Get("route")
	status := 0
	if v := q.Get("status"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "status filter %q is not an integer", v)
			return
		}
		status = n
	}
	minMS := 0.0
	if v := q.Get("min_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "min_ms filter %q is not a number", v)
			return
		}
		minMS = f
	}
	n := defaultTraceN
	if v := q.Get("n"); v != "" {
		i, err := strconv.Atoi(v)
		if err != nil || i <= 0 {
			httpError(w, http.StatusBadRequest, "n filter %q is not a positive integer", v)
			return
		}
		n = i
	}
	resp := tracesResponse{Total: s.metrics.ring.Len(), Traces: []traceJSON{}}
	for _, tr := range s.metrics.ring.Snapshot() {
		if route != "" && tr.Route != route {
			continue
		}
		if status != 0 && tr.Status != status {
			continue
		}
		if minMS > 0 && tr.Duration < time.Duration(minMS*float64(time.Millisecond)) {
			continue
		}
		spans := tr.Spans()
		js := traceJSON{
			ID:             tr.ID,
			Parent:         tr.Parent,
			Route:          tr.Route,
			Status:         tr.Status,
			DurationMillis: float64(tr.Duration) / float64(time.Millisecond),
			Spans:          make([]spanJSON, len(spans)),
		}
		for i, sp := range spans {
			js.Spans[i] = spanJSON{Name: sp.Name, StartMicros: sp.Start.Microseconds(), EndMicros: sp.End.Microseconds()}
		}
		resp.Traces = append(resp.Traces, js)
		if len(resp.Traces) >= n {
			break
		}
	}
	writeJSON(w, resp)
}

// MetricsHandler returns a handler serving only the observability
// surface (/metrics and /debug/traces) — the amserve -metrics-addr side
// listener, so operators can scrape a server whose main port sits
// behind stricter network policy.
func (s *Server) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	return mux
}

// appendBudgetTrace appends the ledger block, with the release's trace
// echoed inside it when the request opted in ("trace": true). Status
// and total duration are not final at encode time; the full record is
// at GET /debug/traces under the echoed id.
func appendBudgetTrace(b []byte, v Budget, tr *obs.Trace) []byte {
	if tr == nil {
		return appendBudget(b, v)
	}
	b = append(b, `{"epsilon":`...)
	b = appendFloat(b, v.Epsilon)
	b = append(b, `,"delta":`...)
	b = appendFloat(b, v.Delta)
	b = append(b, `,"trace":{"id":"`...)
	b = append(b, tr.ID...)
	b = append(b, '"')
	if tr.Parent != "" {
		b = append(b, `,"parent":"`...)
		b = append(b, tr.Parent...)
		b = append(b, '"')
	}
	b = append(b, `,"spans":[`...)
	for i, sp := range tr.Spans() {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, sp.Name)
		b = append(b, `,"startMicros":`...)
		b = strconv.AppendInt(b, sp.Start.Microseconds(), 10)
		b = append(b, `,"endMicros":`...)
		b = strconv.AppendInt(b, sp.End.Microseconds(), 10)
		b = append(b, '}')
	}
	return append(b, ']', '}', '}')
}
