package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKronEigenMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randSPD(r, 2+r.Intn(3))
		b := randSPD(r, 2+r.Intn(3))
		ea, err := SymEigen(a)
		if err != nil {
			return false
		}
		eb, err := SymEigen(b)
		if err != nil {
			return false
		}
		kron := KronEigen(ea, eb)
		dense, err := SymEigen(Kronecker(a, b))
		if err != nil {
			return false
		}
		// Same spectrum.
		for i := range kron.Values {
			if math.Abs(kron.Values[i]-dense.Values[i]) > 1e-7*(1+math.Abs(dense.Values[i])) {
				return false
			}
		}
		// Reconstruction matches the Kronecker Gram.
		return kron.Reconstruct().Equal(Kronecker(a, b), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestKronEigenOrthonormal(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := randSPD(r, 3)
	b := randSPD(r, 4)
	ea, _ := SymEigen(a)
	eb, _ := SymEigen(b)
	k := KronEigen(ea, eb)
	if !k.Vectors.Mul(k.Vectors.T()).Equal(Identity(12), 1e-9) {
		t.Fatal("Kron eigenvectors not orthonormal")
	}
}

func TestKronEigenSorted(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	a := randSPD(r, 4)
	b := randSPD(r, 3)
	ea, _ := SymEigen(a)
	eb, _ := SymEigen(b)
	k := KronEigen(ea, eb)
	for i := 1; i < len(k.Values); i++ {
		if k.Values[i] > k.Values[i-1]+1e-12 {
			t.Fatalf("values not descending: %v", k.Values)
		}
	}
}

func TestKronEigenThreeFactors(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	mats := []*Matrix{randSPD(r, 2), randSPD(r, 3), randSPD(r, 2)}
	parts := make([]*EigenSym, 3)
	for i, m := range mats {
		eg, err := SymEigen(m)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = eg
	}
	k := KronEigen(parts...)
	want := Kronecker(Kronecker(mats[0], mats[1]), mats[2])
	if !k.Reconstruct().Equal(want, 1e-8) {
		t.Fatal("3-factor KronEigen reconstruction failed")
	}
}

func TestKronEigenNoFactors(t *testing.T) {
	k := KronEigen()
	if len(k.Values) != 1 || k.Values[0] != 1 {
		t.Fatalf("empty KronEigen = %v", k.Values)
	}
}
