package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting of a square matrix.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// FactorLU computes the LU factorization with partial pivoting of a square
// matrix a. It returns ErrSingular if a pivot underflows.
func FactorLU(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("linalg: FactorLU of non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Find pivot.
		p := k
		best := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > best {
				best, p = v, i
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves a x = b for a single right-hand side.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: LU.Solve rhs length %d, want %d", len(b), n))
	}
	x := make([]float64, n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution (unit lower triangle).
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// Inverse computes the inverse matrix via the factorization.
func (f *LU) Inverse() *Matrix {
	n := f.lu.rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col := f.Solve(e)
		e[j] = 0
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Inverse returns a⁻¹ for a square matrix a, or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse(), nil
}

// Cholesky holds the lower-triangular Cholesky factor of a symmetric
// positive-definite matrix.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the Cholesky factorization a = L Lᵀ of a
// symmetric positive-definite matrix. It returns ErrSingular if a is not
// positive definite to working precision.
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("linalg: FactorCholesky of non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		li := l.Row(i)
		for j := 0; j <= i; j++ {
			lj := l.Row(j)
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				li[j] = math.Sqrt(s)
			} else {
				li[j] = s / lj[j]
			}
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve solves a x = b using the factorization.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.l.rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: Cholesky.Solve rhs length %d, want %d", len(b), n))
	}
	// L y = b
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := c.l.Row(i)
		s := b[i]
		for j := 0; j < i; j++ {
			s -= row[j] * y[j]
		}
		y[i] = s / row[i]
	}
	// Lᵀ x = y
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}

// Inverse computes the inverse of the factored matrix.
func (c *Cholesky) Inverse() *Matrix {
	n := c.l.rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col := c.Solve(e)
		e[j] = 0
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv
}

// L returns the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l }

// SolveSPD solves a x = b for symmetric positive-definite a, falling back
// to LU with a tiny diagonal ridge when a is only semi-definite. This is
// the solver the interior-point optimizer relies on.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	if c, err := FactorCholesky(a); err == nil {
		return c.Solve(b), nil
	}
	// Ridge fallback: a + eps*I keeps the Newton step well-defined when the
	// Hessian is nearly singular near the boundary of the feasible set.
	n := a.rows
	ridge := a.Clone()
	eps := 1e-10 * (1 + a.Trace()/float64(n))
	for i := 0; i < n; i++ {
		ridge.data[i*n+i] += eps
	}
	if c, err := FactorCholesky(ridge); err == nil {
		return c.Solve(b), nil
	}
	f, err := FactorLU(ridge)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
