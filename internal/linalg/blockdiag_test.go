package linalg

import (
	"math/rand"
	"testing"
)

// BlockDiag must agree entry-for-entry with the dense block-diagonal
// matrix, on matvecs, transposed matvecs, Gram and column norms.
func TestBlockDiagMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := NewFromRows([][]float64{{1, 2, 0}, {0, -1, 3}})  // 2x3
	b := NewFromRows([][]float64{{2, 0}, {1, 1}, {0, 4}}) // 3x2
	c := NewFromRows([][]float64{{-1, 0.5, 2, 0, 1}})     // 1x5
	op := BlockDiag(a, b, c)
	if op.Rows() != 6 || op.Cols() != 10 {
		t.Fatalf("BlockDiag is %dx%d, want 6x10", op.Rows(), op.Cols())
	}
	dense := ToDense(op)
	// The dense form must literally be block-diagonal.
	if dense.At(0, 3) != 0 || dense.At(2, 0) != 0 || dense.At(5, 3) != 0 {
		t.Fatal("off-block entries are not zero")
	}
	x := randVec(r, 10)
	vecsClose(t, op.MulVec(x), dense.MulVec(x), 1e-12, "MulVec")
	y := randVec(r, 6)
	vecsClose(t, op.MulVecT(y), dense.TMulVec(y), 1e-12, "MulVecT")

	g := OperatorGram(op)
	gd := dense.GramParallel()
	for i := 0; i < 10; i++ {
		vecsClose(t, g.Row(i), gd.Row(i), 1e-12, "Gram row")
	}
	vecsClose(t, OperatorColNorms2(op), dense.ColNorms2(), 1e-12, "ColNorms2")
	vecsClose(t, OperatorColNormsL1(op), dense.ColNormsL1(), 1e-12, "ColNormsL1")
}

// A single-part BlockDiag is the part itself, not a wrapper.
func TestBlockDiagSinglePart(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}})
	if BlockDiag(a) != Operator(a) {
		t.Fatal("single-part BlockDiag should return the part unchanged")
	}
}

// ComposeOps must agree with the dense product on both matvec directions.
func TestComposeOpsMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	outer := NewFromRows([][]float64{{1, 0, 2}, {0, 1, -1}})                    // 2x3
	inner := NewFromRows([][]float64{{1, 1, 0, 0}, {0, 2, 1, 0}, {0, 0, 1, 3}}) // 3x4
	op := ComposeOps(outer, inner)
	if op.Rows() != 2 || op.Cols() != 4 {
		t.Fatalf("ComposeOps is %dx%d, want 2x4", op.Rows(), op.Cols())
	}
	product := outer.MulParallel(inner)
	x := randVec(r, 4)
	vecsClose(t, op.MulVec(x), product.MulVec(x), 1e-12, "MulVec")
	y := randVec(r, 2)
	vecsClose(t, op.MulVecT(y), product.TMulVec(y), 1e-12, "MulVecT")
}

func TestComposeOpsDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	ComposeOps(NewFromRows([][]float64{{1, 2}}), NewFromRows([][]float64{{1}}))
}
