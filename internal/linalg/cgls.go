package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrCGDiverged is returned when an iterative solve produces non-finite
// values (an ill-posed operator or catastrophically scaled input).
var ErrCGDiverged = errors.New("linalg: conjugate-gradient iteration diverged")

// CGOptions tunes the iterative least-squares solvers.
type CGOptions struct {
	// Tol is the relative stopping tolerance on ‖Aᵀr‖ (CGLS) or ‖r‖ (CG),
	// measured against the initial value. Default 1e-13.
	Tol float64
	// MaxIter caps the iteration count. Default 4·cols + 50 — CGLS
	// converges in at most cols steps in exact arithmetic; the slack
	// absorbs rounding on ill-conditioned strategies.
	MaxIter int
}

func (o CGOptions) withDefaults(n int) CGOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-13
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 4*n + 50
	}
	return o
}

// CGWorkspace holds the iteration vectors of the workspace-based solvers
// so a steady-state caller (one release after another on the same
// mechanism) allocates them once and reuses them. The zero value is ready
// to use; buffers grow on demand and are retained at their high-water
// mark. A workspace must not be shared by concurrent solves.
type CGWorkspace struct {
	r []float64 // residual (rows for CGLS, n for symmetric CG)
	s []float64 // Aᵀr / rhs scratch (cols)
	p []float64 // search direction (cols / n)
	q []float64 // A·p (rows) or G·p (n)
	t []float64 // extra pass state (normal-equations inner product, tree solver)
}

// growVec returns buf resized to n, reallocating only when capacity is
// insufficient. Contents are unspecified.
func growVec(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// SolveCGLS solves the least-squares problem min ‖Ax − b‖₂ by conjugate
// gradients on the normal equations in factored form (CGLS / CGNR). Only
// MulVec and MulVecT are used, so A may be any Operator — this is the
// matrix-free inference path that replaces the dense pseudo-inverse for
// structured strategies. Starting from x₀ = 0 the iterates stay in
// range(Aᵀ), so for rank-deficient A the result converges to the
// minimum-norm least-squares solution A⁺b, matching PseudoInverse.
func SolveCGLS(a Operator, b []float64, o CGOptions) ([]float64, error) {
	x := make([]float64, a.Cols())
	if err := SolveCGLSInto(a, b, x, o, &CGWorkspace{}); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveCGLSInto is SolveCGLS writing the solution into dst (length
// a.Cols()) using caller-owned scratch. With an operator whose matvecs
// have write-into fast paths (IntoOperator) the steady state allocates
// nothing.
func SolveCGLSInto(a Operator, b, dst []float64, o CGOptions, ws *CGWorkspace) error {
	if len(b) != a.Rows() {
		panic(fmt.Sprintf("linalg: SolveCGLS rhs length %d, want %d", len(b), a.Rows()))
	}
	rows, n := a.Rows(), a.Cols()
	if len(dst) != n {
		panic(fmt.Sprintf("linalg: SolveCGLS dst length %d, want %d", len(dst), n))
	}
	o = o.withDefaults(n)

	x := dst
	for i := range x {
		x[i] = 0
	}
	ws.r = growVec(ws.r, rows)
	r := ws.r
	copy(r, b) // r = b − A x
	ws.s = growVec(ws.s, n)
	s := ws.s
	MulVecTInto(a, s, r) // s = Aᵀ r
	ws.p = growVec(ws.p, n)
	p := ws.p
	copy(p, s)
	ws.q = growVec(ws.q, rows)
	q := ws.q
	gamma := dot(s, s)
	if gamma == 0 {
		return nil // b ⟂ range(A): least-squares solution is 0
	}
	tol2 := o.Tol * o.Tol * gamma
	for it := 0; it < o.MaxIter; it++ {
		MulVecInto(a, q, p)
		qq := dot(q, q)
		if qq == 0 {
			break // p in the null space; nothing further to gain
		}
		alpha := gamma / qq
		for i := range x {
			x[i] += alpha * p[i]
		}
		for i := range r {
			r[i] -= alpha * q[i]
		}
		MulVecTInto(a, s, r)
		gammaNew := dot(s, s)
		if math.IsNaN(gammaNew) || math.IsInf(gammaNew, 0) {
			return ErrCGDiverged
		}
		if gammaNew <= tol2 {
			return nil
		}
		beta := gammaNew / gamma
		for i := range p {
			p[i] = s[i] + beta*p[i]
		}
		gamma = gammaNew
	}
	return nil
}

// SolveNormalCG solves (AᵀA)·x = b by plain conjugate gradients with the
// Gram product evaluated as MulVecT(MulVec(·)). b must lie in range(AᵀA)
// for an exact solution; it is used for per-query variance computation
// wᵢᵀ(AᵀA)⁺wᵢ without forming a pseudo-inverse.
func SolveNormalCG(a Operator, b []float64, o CGOptions) ([]float64, error) {
	x := make([]float64, a.Cols())
	if err := SolveNormalCGInto(a, b, x, o, &CGWorkspace{}); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveNormalCGInto is SolveNormalCG writing into dst with caller-owned
// scratch; the Gram product flows through ws.t (length a.Rows()).
func SolveNormalCGInto(a Operator, b, dst []float64, o CGOptions, ws *CGWorkspace) error {
	n := a.Cols()
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveNormalCG rhs length %d, want %d", len(b), n))
	}
	ws.t = growVec(ws.t, a.Rows())
	mid := ws.t
	return symCGInto(func(gp, p []float64) {
		MulVecInto(a, mid, p)
		MulVecTInto(a, gp, mid)
	}, b, dst, o, ws)
}

// symCGInto is the shared plain-CG core for a symmetric positive-
// semidefinite map presented as a write-into matvec. Starting from x₀ = 0
// the iterates stay in the Krylov span of b, so for consistent systems the
// result converges to the minimum-norm solution.
func symCGInto(matvec func(dst, p []float64), b, dst []float64, o CGOptions, ws *CGWorkspace) error {
	n := len(b)
	if len(dst) != n {
		panic(fmt.Sprintf("linalg: symCG dst length %d, want %d", len(dst), n))
	}
	o = o.withDefaults(n)

	x := dst
	for i := range x {
		x[i] = 0
	}
	ws.r = growVec(ws.r, n)
	r := ws.r
	copy(r, b)
	ws.p = growVec(ws.p, n)
	p := ws.p
	copy(p, r)
	ws.q = growVec(ws.q, n)
	gp := ws.q
	rr := dot(r, r)
	if rr == 0 {
		return nil
	}
	tol2 := o.Tol * o.Tol * rr
	for it := 0; it < o.MaxIter; it++ {
		matvec(gp, p)
		pgp := dot(p, gp)
		if pgp <= 0 {
			break // numerical null-space direction
		}
		alpha := rr / pgp
		for i := range x {
			x[i] += alpha * p[i]
		}
		for i := range r {
			r[i] -= alpha * gp[i]
		}
		rrNew := dot(r, r)
		if math.IsNaN(rrNew) || math.IsInf(rrNew, 0) {
			return ErrCGDiverged
		}
		if rrNew <= tol2 {
			return nil
		}
		for i := range p {
			p[i] = r[i] + (rrNew/rr)*p[i]
		}
		rr = rrNew
	}
	return nil
}

// SolveSymCG solves g·x = b for a symmetric positive-semidefinite dense
// matrix g by plain conjugate gradients. Starting from x₀ = 0 the iterates
// stay in the Krylov span of b, so for a consistent system (b ∈ range(g))
// the result converges to the minimum-norm solution g⁺b. It is the
// normal-equations inference path: with g = AᵀA computed once, each solve
// costs O(n²) per iteration independent of the strategy's row count —
// the right trade for very tall strategies.
func SolveSymCG(g *Matrix, b []float64, o CGOptions) ([]float64, error) {
	x := make([]float64, g.Rows())
	if err := SolveSymCGInto(g, b, x, o, &CGWorkspace{}); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveSymCGInto is SolveSymCG writing into dst with caller-owned scratch;
// the steady state allocates nothing.
func SolveSymCGInto(g *Matrix, b, dst []float64, o CGOptions, ws *CGWorkspace) error {
	n := g.Rows()
	if g.Cols() != n {
		panic(fmt.Sprintf("linalg: SolveSymCG of non-square %dx%d", g.Rows(), g.Cols()))
	}
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveSymCG rhs length %d, want %d", len(b), n))
	}
	return symCGInto(g.MulVecInto, b, dst, o, ws)
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
