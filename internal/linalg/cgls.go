package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrCGDiverged is returned when an iterative solve produces non-finite
// values (an ill-posed operator or catastrophically scaled input).
var ErrCGDiverged = errors.New("linalg: conjugate-gradient iteration diverged")

// CGOptions tunes the iterative least-squares solvers.
type CGOptions struct {
	// Tol is the relative stopping tolerance on ‖Aᵀr‖ (CGLS) or ‖r‖ (CG),
	// measured against the initial value. Default 1e-13.
	Tol float64
	// MaxIter caps the iteration count. Default 4·cols + 50 — CGLS
	// converges in at most cols steps in exact arithmetic; the slack
	// absorbs rounding on ill-conditioned strategies.
	MaxIter int
}

func (o CGOptions) withDefaults(n int) CGOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-13
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 4*n + 50
	}
	return o
}

// SolveCGLS solves the least-squares problem min ‖Ax − b‖₂ by conjugate
// gradients on the normal equations in factored form (CGLS / CGNR). Only
// MulVec and MulVecT are used, so A may be any Operator — this is the
// matrix-free inference path that replaces the dense pseudo-inverse for
// structured strategies. Starting from x₀ = 0 the iterates stay in
// range(Aᵀ), so for rank-deficient A the result converges to the
// minimum-norm least-squares solution A⁺b, matching PseudoInverse.
func SolveCGLS(a Operator, b []float64, o CGOptions) ([]float64, error) {
	if len(b) != a.Rows() {
		panic(fmt.Sprintf("linalg: SolveCGLS rhs length %d, want %d", len(b), a.Rows()))
	}
	n := a.Cols()
	o = o.withDefaults(n)

	x := make([]float64, n)
	r := append([]float64(nil), b...) // r = b − A x
	s := a.MulVecT(r)                 // s = Aᵀ r
	p := append([]float64(nil), s...)
	gamma := dot(s, s)
	if gamma == 0 {
		return x, nil // b ⟂ range(A): least-squares solution is 0
	}
	tol2 := o.Tol * o.Tol * gamma
	for it := 0; it < o.MaxIter; it++ {
		q := a.MulVec(p)
		qq := dot(q, q)
		if qq == 0 {
			break // p in the null space; nothing further to gain
		}
		alpha := gamma / qq
		for i := range x {
			x[i] += alpha * p[i]
		}
		for i := range r {
			r[i] -= alpha * q[i]
		}
		s = a.MulVecT(r)
		gammaNew := dot(s, s)
		if math.IsNaN(gammaNew) || math.IsInf(gammaNew, 0) {
			return nil, ErrCGDiverged
		}
		if gammaNew <= tol2 {
			return x, nil
		}
		beta := gammaNew / gamma
		for i := range p {
			p[i] = s[i] + beta*p[i]
		}
		gamma = gammaNew
	}
	return x, nil
}

// SolveNormalCG solves (AᵀA)·x = b by plain conjugate gradients with the
// Gram product evaluated as MulVecT(MulVec(·)). b must lie in range(AᵀA)
// for an exact solution; it is used for per-query variance computation
// wᵢᵀ(AᵀA)⁺wᵢ without forming a pseudo-inverse.
func SolveNormalCG(a Operator, b []float64, o CGOptions) ([]float64, error) {
	n := a.Cols()
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveNormalCG rhs length %d, want %d", len(b), n))
	}
	return symCG(func(p []float64) []float64 { return a.MulVecT(a.MulVec(p)) }, b, o)
}

// symCG is the shared plain-CG core for a symmetric positive-semidefinite
// map presented as a matvec. Starting from x₀ = 0 the iterates stay in
// the Krylov span of b, so for consistent systems the result converges to
// the minimum-norm solution.
func symCG(matvec func([]float64) []float64, b []float64, o CGOptions) ([]float64, error) {
	n := len(b)
	o = o.withDefaults(n)

	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), r...)
	rr := dot(r, r)
	if rr == 0 {
		return x, nil
	}
	tol2 := o.Tol * o.Tol * rr
	for it := 0; it < o.MaxIter; it++ {
		gp := matvec(p)
		pgp := dot(p, gp)
		if pgp <= 0 {
			break // numerical null-space direction
		}
		alpha := rr / pgp
		for i := range x {
			x[i] += alpha * p[i]
		}
		for i := range r {
			r[i] -= alpha * gp[i]
		}
		rrNew := dot(r, r)
		if math.IsNaN(rrNew) || math.IsInf(rrNew, 0) {
			return nil, ErrCGDiverged
		}
		if rrNew <= tol2 {
			return x, nil
		}
		for i := range p {
			p[i] = r[i] + (rrNew/rr)*p[i]
		}
		rr = rrNew
	}
	return x, nil
}

// SolveSymCG solves g·x = b for a symmetric positive-semidefinite dense
// matrix g by plain conjugate gradients. Starting from x₀ = 0 the iterates
// stay in the Krylov span of b, so for a consistent system (b ∈ range(g))
// the result converges to the minimum-norm solution g⁺b. It is the
// normal-equations inference path: with g = AᵀA computed once, each solve
// costs O(n²) per iteration independent of the strategy's row count —
// the right trade for very tall strategies.
func SolveSymCG(g *Matrix, b []float64, o CGOptions) ([]float64, error) {
	n := g.Rows()
	if g.Cols() != n {
		panic(fmt.Sprintf("linalg: SolveSymCG of non-square %dx%d", g.Rows(), g.Cols()))
	}
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveSymCG rhs length %d, want %d", len(b), n))
	}
	return symCG(g.MulVec, b, o)
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
