// Exact linear-time least squares for interval-tree strategies.
//
// The hierarchical strategies of Hay et al. — and any strategy whose rows
// are constant-weight contiguous intervals forming a laminar partition
// forest — admit a closed-form least-squares solve: the measurement graph
// is a tree over interval sums, so two passes of Gaussian belief
// propagation (a weighted generalization of the consistency step in Hay
// et al.'s hierarchical mechanism) compute the exact minimum-norm
// least-squares estimate in O(rows + cells), versus O(iters · nnz) for
// CGLS. On the release hot path this is the difference between ~100
// matvec sweeps and one.
//
// NewTreeSolver recognizes the structure at mechanism-construction time
// directly from the CSR form — no new operator kind, no codec change, so
// plans rehydrated from the store accelerate automatically — and refuses
// anything it cannot prove tree-shaped, leaving those to CGLS.

package linalg

import (
	"math"
	"sort"
)

// TreeSolver solves min ‖Ax − y‖₂ exactly for an interval-tree strategy
// A, returning the minimum-norm solution (matching PseudoInverse and the
// CGLS limit). All y-independent quantities — the forest topology, node
// precisions, and the upward/downward fusion coefficients — are
// precomputed at construction, so a solve is two linear passes with no
// divisions and no allocation beyond one workspace vector.
//
// Nodes are renumbered into topological order (parents before children)
// at construction: every per-node array below is indexed by topological
// position, so the two passes stream through memory instead of chasing a
// permutation, and row holds each node's original strategy row for y and
// answer indexing.
type TreeSolver struct {
	rows, cols int
	row        []int     // node -> original strategy row
	lo, hi     []int     // inclusive cell interval per node
	w          []float64 // constant row weight
	childOff   []int     // len rows+1: children of v are childList[childOff[v]:childOff[v+1]]
	childList  []int     // child node ids (always > their parent's id)
	childGain  []float64 // downward gain per child, aligned with childList
	invW       []float64 // leaves: 1/w
	invLen     []float64 // leaves: 1/interval length
	coefA      []float64 // internal: w/τ
	coefB      []float64 // internal: τ_children/τ
	covered    bool      // the root intervals tile every cell
}

// NewTreeSolver inspects an operator and returns an exact solver when the
// operator is a CSR matrix whose rows are constant-valued contiguous
// intervals forming a laminar forest in which every parent's interval is
// exactly tiled by its children. NormedOp wrappers are looked through.
// The second result is false when the structure does not hold.
func NewTreeSolver(op Operator) (*TreeSolver, bool) {
	for {
		if n, ok := op.(*NormedOp); ok {
			op = n.Operator
			continue
		}
		break
	}
	s, ok := op.(*Sparse)
	if !ok || s.rows == 0 {
		return nil, false
	}
	lo := make([]int, s.rows)
	hi := make([]int, s.rows)
	w := make([]float64, s.rows)
	// Every row must be one constant-valued contiguous interval.
	for i := 0; i < s.rows; i++ {
		a, b := s.rowPtr[i], s.rowPtr[i+1]
		if b == a {
			return nil, false
		}
		v := s.val[a]
		if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, false
		}
		prev := s.colIdx[a]
		for k := a + 1; k < b; k++ {
			//lint:allow floateq: structural detection — the exact-tree fast path applies only to bit-identical range-sum coefficients; near-equal rows must take the general solver
			if s.colIdx[k] != prev+1 || s.val[k] != v {
				return nil, false
			}
			prev = s.colIdx[k]
		}
		lo[i], hi[i], w[i] = s.colIdx[a], prev, v
	}
	// Sorted by (lo asc, hi desc), containment nests: a stack sweep
	// assigns each row its tightest enclosing row as parent and rejects
	// crossing intervals. Duplicate intervals chain (one becomes the
	// other's only child), which the fusion handles exactly. The sorted
	// order is also the topological numbering the solver runs in.
	order := make([]int, s.rows)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if lo[i] != lo[j] {
			return lo[i] < lo[j]
		}
		return hi[i] > hi[j]
	})
	t := &TreeSolver{
		rows: s.rows,
		cols: s.cols,
		row:  order,
		lo:   make([]int, s.rows),
		hi:   make([]int, s.rows),
		w:    make([]float64, s.rows),
	}
	for k, v := range order {
		t.lo[k], t.hi[k], t.w[k] = lo[v], hi[v], w[v]
	}
	// parent[k] in topological ids; roots keep -1.
	parent := make([]int, s.rows)
	counts := make([]int, s.rows+1)
	stack := make([]int, 0, 64)
	rootCells := 0
	for k := 0; k < s.rows; k++ {
		for len(stack) > 0 && t.hi[stack[len(stack)-1]] < t.lo[k] {
			stack = stack[:len(stack)-1]
		}
		parent[k] = -1
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			if t.hi[k] > t.hi[top] {
				return nil, false // crossing intervals
			}
			parent[k] = top
			counts[top+1]++
		} else {
			rootCells += t.hi[k] - t.lo[k] + 1
		}
		stack = append(stack, k)
	}
	// Root intervals are disjoint, so they tile the domain exactly when
	// their lengths sum to it; then the leaf-spread pass writes every
	// cell and the solve can skip zeroing the estimate.
	t.covered = rootCells == s.cols
	// Group children per parent, preserving topological (lo) order.
	t.childOff = counts
	for v := 0; v < s.rows; v++ {
		t.childOff[v+1] += t.childOff[v]
	}
	t.childList = make([]int, t.childOff[s.rows])
	fill := make([]int, s.rows)
	copy(fill, t.childOff[:s.rows])
	for k := 0; k < s.rows; k++ {
		if p := parent[k]; p >= 0 {
			t.childList[fill[p]] = k
			fill[p]++
		}
	}
	// Every internal node's children must tile its interval exactly:
	// partial coverage would introduce unmeasured implicit leaves the
	// two-pass fusion does not model.
	for v := 0; v < s.rows; v++ {
		c0, c1 := t.childOff[v], t.childOff[v+1]
		if c0 == c1 {
			continue
		}
		at := t.lo[v]
		for _, c := range t.childList[c0:c1] {
			if t.lo[c] != at {
				return nil, false
			}
			at = t.hi[c] + 1
		}
		if at != t.hi[v]+1 {
			return nil, false
		}
	}
	// Precompute node precisions τ and fusion coefficients. For a leaf,
	// the interval-sum estimate is y/w with precision τ = w². For an
	// internal node, the children's sum has precision τ_c = 1/Σ(1/τ_child)
	// and fuses with the node's own measurement:
	//   τ = w² + τ_c,  u = (w·y + τ_c·Σ u_child)/τ.
	// The downward pass distributes the surplus of the parent's final
	// estimate over children proportionally to their variance:
	//   gain_child = (1/τ_child)/Σ(1/τ_child).
	tau := make([]float64, s.rows)
	t.invW = make([]float64, s.rows)
	t.invLen = make([]float64, s.rows)
	t.coefA = make([]float64, s.rows)
	t.coefB = make([]float64, s.rows)
	t.childGain = make([]float64, len(t.childList))
	for v := s.rows - 1; v >= 0; v-- {
		c0, c1 := t.childOff[v], t.childOff[v+1]
		if c0 == c1 {
			tau[v] = t.w[v] * t.w[v]
			t.invW[v] = 1 / t.w[v]
			t.invLen[v] = 1 / float64(t.hi[v]-t.lo[v]+1)
			continue
		}
		var invSum float64
		for _, c := range t.childList[c0:c1] {
			invSum += 1 / tau[c]
		}
		tauC := 1 / invSum
		tau[v] = t.w[v]*t.w[v] + tauC
		if math.IsNaN(tau[v]) || math.IsInf(tau[v], 0) || tau[v] <= 0 {
			return nil, false
		}
		t.coefA[v] = t.w[v] / tau[v]
		t.coefB[v] = tauC / tau[v]
		for ci := c0; ci < c1; ci++ {
			t.childGain[ci] = (1 / tau[t.childList[ci]]) / invSum
		}
	}
	return t, true
}

// Rows returns the strategy's row (measurement) count.
func (t *TreeSolver) Rows() int { return t.rows }

// Cols returns the strategy's column (cell) count.
func (t *TreeSolver) Cols() int { return t.cols }

// SolveLSInto writes the exact minimum-norm least-squares solution of
// min ‖Ax − y‖₂ into dst (length Cols). ws provides the single node-sized
// workspace vector; the call performs no allocation once ws has warmed.
func (t *TreeSolver) SolveLSInto(dst, y []float64, ws *CGWorkspace) {
	if len(y) != t.rows {
		panic("linalg: TreeSolver rhs length mismatch")
	}
	if len(dst) != t.cols {
		panic("linalg: TreeSolver dst length mismatch")
	}
	ws.r = growVec(ws.r, t.rows)
	u := ws.r
	// Upward: fuse each node's own measurement with its children's sum.
	for v := t.rows - 1; v >= 0; v-- {
		c0, c1 := t.childOff[v], t.childOff[v+1]
		if c0 == c1 {
			u[v] = y[t.row[v]] * t.invW[v]
			continue
		}
		var sumU float64
		for _, c := range t.childList[c0:c1] {
			sumU += u[c]
		}
		u[v] = t.coefA[v]*y[t.row[v]] + t.coefB[v]*sumU
	}
	// Downward: condition children on the parent's final estimate. u[v]
	// is final once v is visited (roots keep their upward value), and
	// each child is overwritten only after the parent's surplus is known.
	for v := 0; v < t.rows; v++ {
		c0, c1 := t.childOff[v], t.childOff[v+1]
		if c0 == c1 {
			continue
		}
		var sumU float64
		for _, c := range t.childList[c0:c1] {
			sumU += u[c]
		}
		corr := u[v] - sumU
		for ci := c0; ci < c1; ci++ {
			u[t.childList[ci]] += t.childGain[ci] * corr
		}
	}
	// Leaves carry the cell estimates: spread each leaf's interval sum
	// evenly (the minimum-norm completion). Cells under no root are
	// unmeasured; minimum norm leaves them at zero (when the roots tile
	// the whole domain the leaf writes cover dst and zeroing is skipped).
	if !t.covered {
		for j := range dst {
			dst[j] = 0
		}
	}
	for v := 0; v < t.rows; v++ {
		if t.childOff[v] != t.childOff[v+1] {
			continue
		}
		val := u[v] * t.invLen[v]
		for j := t.lo[v]; j <= t.hi[v]; j++ {
			dst[j] = val
		}
	}
}

// AnswerInto writes the strategy answers A·x into dst (length Rows) in
// O(rows + cells): leaf sums from the cells, internal sums from children,
// one reverse-topological pass. It is the matvec fast path paired with
// SolveLSInto on the release hot path.
func (t *TreeSolver) AnswerInto(dst, x []float64, ws *CGWorkspace) {
	if len(x) != t.cols {
		panic("linalg: TreeSolver input length mismatch")
	}
	if len(dst) != t.rows {
		panic("linalg: TreeSolver dst length mismatch")
	}
	ws.r = growVec(ws.r, t.rows)
	sum := ws.r
	for v := t.rows - 1; v >= 0; v-- {
		c0, c1 := t.childOff[v], t.childOff[v+1]
		var s float64
		if c0 == c1 {
			for j := t.lo[v]; j <= t.hi[v]; j++ {
				s += x[j]
			}
		} else {
			for _, c := range t.childList[c0:c1] {
				s += sum[c]
			}
		}
		sum[v] = s
		dst[t.row[v]] = t.w[v] * s
	}
}
