package linalg

import "runtime"

// parallelThreshold is the approximate flop count above which row-blocked
// operations fan out across cores. Small problems stay single-threaded to
// avoid handoff overhead.
const parallelThreshold = 1 << 22

// ParallelRows splits [0,n) into contiguous blocks and runs f on each
// block across the persistent worker pool (see pool.go), the caller
// working alongside. Each block writes disjoint output rows, so results
// are deterministic. With work ≤ parallelThreshold (or a single CPU) it
// runs inline.
func ParallelRows(n int, work int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || work <= parallelThreshold || n < 2*workers {
		f(0, n)
		return
	}
	block := (n + workers - 1) / workers
	runParallel(&funcTask{f: f}, n, block, workers-1)
}

// MulParallel is Mul with row-blocked parallelism; results are identical.
func (m *Matrix) MulParallel(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic("linalg: MulParallel shape mismatch")
	}
	out := New(m.rows, other.cols)
	work := m.rows * m.cols * other.cols
	ParallelRows(m.rows, work, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mrow := m.Row(i)
			orow := out.Row(i)
			for k, a := range mrow {
				if a == 0 {
					continue
				}
				brow := other.Row(k)
				for j, b := range brow {
					orow[j] += a * b
				}
			}
		}
	})
	return out
}

// GramParallel is Gram with parallelism over output rows; results are
// identical to Gram.
func (m *Matrix) GramParallel() *Matrix {
	n := m.cols
	out := New(n, n)
	work := m.rows * n * n / 2
	ParallelRows(n, work, func(lo, hi int) {
		// Compute output rows [lo,hi) of the upper triangle: entry (a,b)
		// with b >= a needs Σ_i m[i][a]·m[i][b].
		for i := 0; i < m.rows; i++ {
			row := m.Row(i)
			for a := lo; a < hi; a++ {
				va := row[a]
				if va == 0 {
					continue
				}
				orow := out.Row(a)
				for b := a; b < n; b++ {
					orow[b] += va * row[b]
				}
			}
		}
	})
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			out.data[b*n+a] = out.data[a*n+b]
		}
	}
	return out
}
