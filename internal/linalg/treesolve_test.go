package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// treeCase builds one interval-forest CSR strategy for the solver tests.
type treeCase struct {
	name  string
	cols  int
	build func(b *SparseBuilder)
}

func treeCases() []treeCase {
	return []treeCase{
		{"single root", 4, func(b *SparseBuilder) {
			b.AppendRangeRow(0, 3, 1)
		}},
		{"identity leaves", 4, func(b *SparseBuilder) {
			for i := 0; i < 4; i++ {
				b.AppendRangeRow(i, i, 1)
			}
		}},
		{"binary tree", 8, func(b *SparseBuilder) {
			b.AppendRangeRow(0, 7, 1)
			b.AppendRangeRow(0, 3, 1)
			b.AppendRangeRow(4, 7, 1)
			b.AppendRangeRow(0, 1, 1)
			b.AppendRangeRow(2, 3, 1)
			b.AppendRangeRow(4, 5, 1)
			b.AppendRangeRow(6, 7, 1)
		}},
		{"weighted tree shuffled rows", 8, func(b *SparseBuilder) {
			b.AppendRangeRow(4, 7, 0.5)
			b.AppendRangeRow(0, 7, 2)
			b.AppendRangeRow(2, 3, 3)
			b.AppendRangeRow(0, 3, 1.5)
			b.AppendRangeRow(0, 1, 0.25)
			b.AppendRangeRow(4, 5, 1)
			b.AppendRangeRow(6, 7, 2)
		}},
		{"forest of two trees", 6, func(b *SparseBuilder) {
			b.AppendRangeRow(0, 2, 1)
			b.AppendRangeRow(0, 0, 2)
			b.AppendRangeRow(1, 2, 1)
			b.AppendRangeRow(3, 5, 1)
			b.AppendRangeRow(3, 4, 0.5)
			b.AppendRangeRow(5, 5, 1)
		}},
		{"uncovered cells", 6, func(b *SparseBuilder) {
			// Cells 2 and 5 are measured by no row: minimum norm pins
			// their estimate to zero, exercising the zeroing path.
			b.AppendRangeRow(0, 1, 1)
			b.AppendRangeRow(3, 4, 2)
			b.AppendRangeRow(3, 3, 1)
			b.AppendRangeRow(4, 4, 1)
		}},
		{"duplicate intervals", 4, func(b *SparseBuilder) {
			b.AppendRangeRow(0, 3, 1)
			b.AppendRangeRow(0, 3, 2)
			b.AppendRangeRow(0, 1, 1)
			b.AppendRangeRow(2, 3, 1)
			b.AppendRangeRow(2, 3, 0.5)
		}},
		{"deep chain with negative weight", 5, func(b *SparseBuilder) {
			b.AppendRangeRow(0, 4, 1)
			b.AppendRangeRow(0, 3, -1)
			b.AppendRangeRow(4, 4, 1)
			b.AppendRangeRow(0, 2, 1)
			b.AppendRangeRow(3, 3, 1)
			b.AppendRangeRow(0, 1, 2)
			b.AppendRangeRow(2, 2, 1)
		}},
	}
}

// TestTreeSolverMatchesPseudoInverse is the correctness pin for the exact
// O(n) tree least squares: on every recognized forest shape, the
// two-pass solve must reproduce the dense minimum-norm pseudo-inverse
// solution, and AnswerInto must reproduce the CSR matvec.
func TestTreeSolverMatchesPseudoInverse(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, tc := range treeCases() {
		b := NewSparseBuilder(tc.cols)
		tc.build(b)
		s := b.Build()
		ts, ok := NewTreeSolver(s)
		if !ok {
			t.Fatalf("%s: NewTreeSolver refused a valid forest", tc.name)
		}
		if ts.Rows() != s.Rows() || ts.Cols() != s.Cols() {
			t.Fatalf("%s: dims %dx%d, want %dx%d", tc.name, ts.Rows(), ts.Cols(), s.Rows(), s.Cols())
		}
		pinv, err := PseudoInverse(ToDense(s))
		if err != nil {
			t.Fatalf("%s: pinv: %v", tc.name, err)
		}
		ws := &CGWorkspace{}
		dst := make([]float64, tc.cols)
		ans := make([]float64, s.Rows())
		for trial := 0; trial < 20; trial++ {
			y := make([]float64, s.Rows())
			for i := range y {
				y[i] = r.NormFloat64() * 10
			}
			// Dirty dst: the solver must fully overwrite it whether or not
			// the forest covers every cell.
			for j := range dst {
				dst[j] = math.NaN()
			}
			ts.SolveLSInto(dst, y, ws)
			want := pinv.MulVec(y)
			for j := range dst {
				if math.Abs(dst[j]-want[j]) > 1e-8 {
					t.Fatalf("%s trial %d: solve[%d] = %g, want %g", tc.name, trial, j, dst[j], want[j])
				}
			}
			x := make([]float64, tc.cols)
			for j := range x {
				x[j] = r.NormFloat64()
			}
			ts.AnswerInto(ans, x, ws)
			wantAns := s.MulVec(x)
			for i := range ans {
				if math.Abs(ans[i]-wantAns[i]) > 1e-10 {
					t.Fatalf("%s trial %d: answer[%d] = %g, want %g", tc.name, trial, i, ans[i], wantAns[i])
				}
			}
		}
	}
}

// TestTreeSolverRejectsNonForests pins the detector's refusals: anything
// that is not a laminar, exactly-tiled interval forest must fall back to
// the iterative solver rather than return wrong answers.
func TestTreeSolverRejectsNonForests(t *testing.T) {
	cases := []treeCase{
		{"crossing intervals", 6, func(b *SparseBuilder) {
			b.AppendRangeRow(0, 3, 1)
			b.AppendRangeRow(2, 5, 1)
		}},
		{"children undertile parent", 4, func(b *SparseBuilder) {
			b.AppendRangeRow(0, 3, 1)
			b.AppendRangeRow(0, 0, 1)
			b.AppendRangeRow(2, 3, 1) // cell 1 unmeasured under the root
		}},
		{"non-constant row", 3, func(b *SparseBuilder) {
			b.AppendRow([]int{0, 1, 2}, []float64{1, 2, 1})
		}},
		{"non-contiguous row", 4, func(b *SparseBuilder) {
			b.AppendRow([]int{0, 2}, []float64{1, 1})
		}},
		{"zero-weight row", 3, func(b *SparseBuilder) {
			b.AppendRow([]int{0, 1, 2}, []float64{0, 0, 0})
		}},
	}
	for _, tc := range cases {
		b := NewSparseBuilder(tc.cols)
		tc.build(b)
		if _, ok := NewTreeSolver(b.Build()); ok {
			t.Fatalf("%s: NewTreeSolver accepted a non-forest", tc.name)
		}
	}
	if _, ok := NewTreeSolver(Identity(4)); ok {
		t.Fatal("NewTreeSolver accepted a dense operator")
	}
	if _, ok := NewTreeSolver(NewSparseBuilder(3).Build()); ok {
		t.Fatal("NewTreeSolver accepted an empty operator")
	}
}

// TestTreeSolverLooksThroughNormedOp checks the NormedOp unwrap, since
// mechanisms hand their strategy to the detector wrapped.
func TestTreeSolverLooksThroughNormedOp(t *testing.T) {
	b := NewSparseBuilder(4)
	b.AppendRangeRow(0, 3, 1)
	b.AppendRangeRow(0, 1, 1)
	b.AppendRangeRow(2, 3, 1)
	if _, ok := NewTreeSolver(&NormedOp{Operator: b.Build()}); !ok {
		t.Fatal("NewTreeSolver failed to unwrap NormedOp")
	}
}

// TestTreeSolverZeroAlloc pins the hot-path guarantee: once the workspace
// has warmed, solve and answer allocate nothing.
func TestTreeSolverZeroAlloc(t *testing.T) {
	b := NewSparseBuilder(8)
	for _, iv := range [][2]int{{0, 7}, {0, 3}, {4, 7}, {0, 1}, {2, 3}, {4, 5}, {6, 7}} {
		b.AppendRangeRow(iv[0], iv[1], 1)
	}
	s := b.Build()
	ts, ok := NewTreeSolver(s)
	if !ok {
		t.Fatal("NewTreeSolver refused a binary tree")
	}
	ws := &CGWorkspace{}
	y := make([]float64, s.Rows())
	for i := range y {
		y[i] = float64(i + 1)
	}
	dst := make([]float64, s.Cols())
	ans := make([]float64, s.Rows())
	ts.SolveLSInto(dst, y, ws) // warm the workspace
	if n := testing.AllocsPerRun(100, func() {
		ts.SolveLSInto(dst, y, ws)
		ts.AnswerInto(ans, dst, ws)
	}); n != 0 {
		t.Fatalf("tree solve+answer allocates %v per run, want 0", n)
	}
}
