package linalg

import (
	"sort"
)

// KronEigen composes the eigendecomposition of a Kronecker product
// G₁ ⊗ G₂ ⊗ … from the decompositions of its factors: the eigenvalues are
// all products of per-factor eigenvalues and the eigenvectors the
// corresponding Kronecker products of per-factor eigenvectors. For a
// product workload on [64·32] this replaces one O(2048³) decomposition
// with O(64³ + 32³) ones — the trick that makes the paper's full-scale
// multi-dimensional experiments fast.
//
// The result is sorted by descending eigenvalue like SymEigen.
func KronEigen(factors ...*EigenSym) *EigenSym {
	if len(factors) == 0 {
		return &EigenSym{Values: []float64{1}, Vectors: NewFromRows([][]float64{{1}})}
	}
	n := 1
	for _, f := range factors {
		n *= len(f.Values)
	}
	// Enumerate all index combinations with their eigenvalue products.
	type pair struct {
		val float64
		idx []int
	}
	pairs := make([]pair, 0, n)
	idx := make([]int, len(factors))
	for {
		v := 1.0
		for fi, f := range factors {
			v *= f.Values[idx[fi]]
		}
		pairs = append(pairs, pair{v, append([]int(nil), idx...)})
		// Odometer.
		k := len(factors) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(factors[k].Values) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].val > pairs[b].val })

	values := make([]float64, n)
	vectors := New(n, n)
	for r, pr := range pairs {
		values[r] = pr.val
		row := vectors.Row(r)
		kronRowInto(row, factors, pr.idx)
	}
	return &EigenSym{Values: values, Vectors: vectors}
}

// FactoredEigen is the eigendecomposition of a Kronecker product
// G₁ ⊗ G₂ ⊗ … kept in factored form: only the per-factor decompositions
// (O(Σ dᵢ²) memory) are stored, never the n×n eigenvector matrix. Rows can
// be materialized individually on demand, and the full eigenvector matrix
// is available as a matrix-free Operator, which is what lets the
// Eigen-Design pipeline run on product domains far past the dense cap.
type FactoredEigen struct {
	// Factors holds the per-dimension decompositions.
	Factors []*EigenSym
	// Values are the eigenvalue products in descending order, matching
	// KronEigen's ordering exactly.
	Values []float64
	// perm maps sorted position r to the flat Kronecker row index.
	perm []int
	// dims caches the per-factor sizes.
	dims []int
}

// KronEigenFactored composes the factored eigendecomposition of a
// Kronecker product from per-factor decompositions, sorted by descending
// eigenvalue product, without materializing eigenvectors.
func KronEigenFactored(factors ...*EigenSym) *FactoredEigen {
	if len(factors) == 0 {
		return &FactoredEigen{
			Factors: nil,
			Values:  []float64{1},
			perm:    []int{0},
			dims:    nil,
		}
	}
	dims := make([]int, len(factors))
	n := 1
	for i, f := range factors {
		dims[i] = len(f.Values)
		n *= dims[i]
	}
	vals := make([]float64, n)
	idx := make([]int, len(factors))
	for flat := 0; flat < n; flat++ {
		v := 1.0
		for fi, f := range factors {
			v *= f.Values[idx[fi]]
		}
		vals[flat] = v
		// Odometer over the multi-index (last factor fastest), matching
		// flat = ((i₁·d₂ + i₂)·d₃ + i₃)…
		k := len(factors) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < dims[k] {
				break
			}
			idx[k] = 0
			k--
		}
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return vals[perm[a]] > vals[perm[b]] })
	values := make([]float64, n)
	for r, p := range perm {
		values[r] = vals[p]
	}
	return &FactoredEigen{Factors: factors, Values: values, perm: perm, dims: dims}
}

// N returns the composite dimension Π dᵢ.
func (fe *FactoredEigen) N() int { return len(fe.Values) }

// multiIndex decomposes sorted position r into per-factor indices.
func (fe *FactoredEigen) multiIndex(r int) []int {
	flat := fe.perm[r]
	idx := make([]int, len(fe.dims))
	for k := len(fe.dims) - 1; k >= 0; k-- {
		idx[k] = flat % fe.dims[k]
		flat /= fe.dims[k]
	}
	return idx
}

// Row materializes the eigenvector for Values[r] as a length-n slice: the
// Kronecker product of the per-factor eigenvector rows. Cost O(n).
func (fe *FactoredEigen) Row(r int) []float64 {
	dst := make([]float64, fe.N())
	kronRowInto(dst, fe.Factors, fe.multiIndex(r))
	return dst
}

// VectorsOperator returns the full eigenvector matrix Q (rows sorted by
// descending eigenvalue) as a matrix-free Operator: a row permutation of
// the Kronecker product of per-factor eigenvector matrices.
func (fe *FactoredEigen) VectorsOperator() Operator {
	parts := make([]Operator, len(fe.Factors))
	for i, f := range fe.Factors {
		parts[i] = f.Vectors
	}
	return PermuteRows(NewKronOp(parts...), fe.perm)
}

// kronRowInto writes the Kronecker product of the selected factor
// eigenvectors into dst.
func kronRowInto(dst []float64, factors []*EigenSym, idx []int) {
	dst[0] = 1
	length := 1
	for fi, f := range factors {
		vec := f.Vectors.Row(idx[fi])
		fl := len(vec)
		// Expand dst[:length] by vec.
		for i := length - 1; i >= 0; i-- {
			base := dst[i]
			for j := fl - 1; j >= 0; j-- {
				dst[i*fl+j] = base * vec[j]
			}
		}
		length *= fl
	}
}
