package linalg

import (
	"sort"
)

// KronEigen composes the eigendecomposition of a Kronecker product
// G₁ ⊗ G₂ ⊗ … from the decompositions of its factors: the eigenvalues are
// all products of per-factor eigenvalues and the eigenvectors the
// corresponding Kronecker products of per-factor eigenvectors. For a
// product workload on [64·32] this replaces one O(2048³) decomposition
// with O(64³ + 32³) ones — the trick that makes the paper's full-scale
// multi-dimensional experiments fast.
//
// The result is sorted by descending eigenvalue like SymEigen.
func KronEigen(factors ...*EigenSym) *EigenSym {
	if len(factors) == 0 {
		return &EigenSym{Values: []float64{1}, Vectors: NewFromRows([][]float64{{1}})}
	}
	n := 1
	for _, f := range factors {
		n *= len(f.Values)
	}
	// Enumerate all index combinations with their eigenvalue products.
	type pair struct {
		val float64
		idx []int
	}
	pairs := make([]pair, 0, n)
	idx := make([]int, len(factors))
	for {
		v := 1.0
		for fi, f := range factors {
			v *= f.Values[idx[fi]]
		}
		pairs = append(pairs, pair{v, append([]int(nil), idx...)})
		// Odometer.
		k := len(factors) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(factors[k].Values) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].val > pairs[b].val })

	values := make([]float64, n)
	vectors := New(n, n)
	for r, pr := range pairs {
		values[r] = pr.val
		row := vectors.Row(r)
		kronRowInto(row, factors, pr.idx)
	}
	return &EigenSym{Values: values, Vectors: vectors}
}

// kronRowInto writes the Kronecker product of the selected factor
// eigenvectors into dst.
func kronRowInto(dst []float64, factors []*EigenSym, idx []int) {
	dst[0] = 1
	length := 1
	for fi, f := range factors {
		vec := f.Vectors.Row(idx[fi])
		fl := len(vec)
		// Expand dst[:length] by vec.
		for i := length - 1; i >= 0; i-- {
			base := dst[i]
			for j := fl - 1; j >= 0; j-- {
				dst[i*fl+j] = base * vec[j]
			}
		}
		length *= fl
	}
}
