package linalg

// KronOp is the Kronecker product A₁ ⊗ A₂ ⊗ … ⊗ A_k of arbitrary
// operators, evaluated factor by factor without ever materializing the
// product: a matvec costs Σᵢ (Πⱼ<ᵢ mⱼ)·(Πⱼ>ᵢ nⱼ) factor matvecs instead of
// Π mᵢ · Π nᵢ work. Row and column ordering match the dense Kronecker
// construction (first factor is most significant).
type KronOp struct {
	factors []Operator
	rows    int
	cols    int
}

// NewKronOp returns the Kronecker product of the factors, in order. A
// single factor is returned unchanged; zero factors panic.
func NewKronOp(factors ...Operator) Operator {
	if len(factors) == 0 {
		panic("linalg: NewKronOp of nothing")
	}
	if len(factors) == 1 {
		return factors[0]
	}
	rows, cols := 1, 1
	for _, f := range factors {
		rows *= f.Rows()
		cols *= f.Cols()
	}
	return &KronOp{factors: factors, rows: rows, cols: cols}
}

// Factors returns the underlying factors.
func (o *KronOp) Factors() []Operator { return o.factors }

// Rows returns Π mᵢ.
func (o *KronOp) Rows() int { return o.rows }

// Cols returns Π nᵢ.
func (o *KronOp) Cols() int { return o.cols }

// MulVec applies the factors mode by mode: before factor i the working
// tensor has shape (m₁…mᵢ₋₁) × nᵢ × (nᵢ₊₁…n_k); factor i maps its middle
// mode from nᵢ to mᵢ.
func (o *KronOp) MulVec(x []float64) []float64 {
	checkMulVecLen(o, len(x), o.cols, false)
	return o.apply(x, false)
}

// MulVecT is the transposed product, applying each factor's MulVecT.
func (o *KronOp) MulVecT(y []float64) []float64 {
	checkMulVecLen(o, len(y), o.rows, true)
	return o.apply(y, true)
}

func (o *KronOp) apply(x []float64, transposed bool) []float64 {
	dimIn := func(f Operator) int {
		if transposed {
			return f.Rows()
		}
		return f.Cols()
	}
	dimOut := func(f Operator) int {
		if transposed {
			return f.Cols()
		}
		return f.Rows()
	}
	cur := x
	left := 1
	for fi, f := range o.factors {
		n, m := dimIn(f), dimOut(f)
		right := 1
		for _, g := range o.factors[fi+1:] {
			right *= dimIn(g)
		}
		next := make([]float64, left*m*right)
		buf := make([]float64, n)
		for l := 0; l < left; l++ {
			for r := 0; r < right; r++ {
				base := l * n * right
				for j := 0; j < n; j++ {
					buf[j] = cur[base+j*right+r]
				}
				var out []float64
				if transposed {
					out = f.MulVecT(buf)
				} else {
					out = f.MulVec(buf)
				}
				obase := l * m * right
				for i := 0; i < m; i++ {
					next[obase+i*right+r] = out[i]
				}
			}
		}
		cur = next
		left *= m
	}
	return cur
}

// Gram returns the dense Kronecker product of the factors' Gram matrices
// (Gram distributes over ⊗). Use only when Cols() is affordable.
func (o *KronOp) Gram() *Matrix {
	grams := make([]*Matrix, len(o.factors))
	for i, f := range o.factors {
		grams[i] = OperatorGram(f)
	}
	return KroneckerAll(grams...)
}

// ColNorms2 is the outer product of the factors' squared column norms
// (entries of a Kronecker product multiply).
func (o *KronOp) ColNorms2() []float64 {
	parts := make([][]float64, len(o.factors))
	for i, f := range o.factors {
		parts[i] = OperatorColNorms2(f)
	}
	return outerAll(parts)
}

// ColNormsL1 is the outer product of the factors' L1 column norms.
func (o *KronOp) ColNormsL1() []float64 {
	parts := make([][]float64, len(o.factors))
	for i, f := range o.factors {
		parts[i] = OperatorColNormsL1(f)
	}
	return outerAll(parts)
}

// outerAll flattens the outer product of the given vectors with the first
// vector most significant, matching Kronecker index order.
func outerAll(parts [][]float64) []float64 {
	out := []float64{1}
	for _, p := range parts {
		next := make([]float64, len(out)*len(p))
		for i, a := range out {
			base := i * len(p)
			for j, b := range p {
				next[base+j] = a * b
			}
		}
		out = next
	}
	return out
}

// Compile-time interface checks for the operator suite.
var (
	_ = []Operator{
		(*Matrix)(nil), (*IdentityOp)(nil), (*PrefixOp)(nil), (*IntervalsOp)(nil),
		(*Sparse)(nil), (*KronOp)(nil), (*StackOp)(nil), (*ScaledOp)(nil),
		(*RowScaledOp)(nil), (*RowPermutedOp)(nil), (*NormedOp)(nil),
	}
	_ = []Grammer{
		(*Matrix)(nil), (*IdentityOp)(nil), (*PrefixOp)(nil), (*IntervalsOp)(nil),
		(*Sparse)(nil), (*KronOp)(nil), (*StackOp)(nil), (*ScaledOp)(nil), (*NormedOp)(nil),
	}
)
