package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnown(t *testing.T) {
	a := NewFromRows([][]float64{{2, 1}, {1, 3}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{3, 5})
	// 2x+y=3, x+3y=5 -> x=4/5, y=7/5
	if math.Abs(x[0]-0.8) > 1e-12 || math.Abs(x[1]-1.4) > 1e-12 {
		t.Fatalf("Solve = %v", x)
	}
}

func TestLUInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randMatrix(r, n, n)
		// Diagonal boost makes singularity vanishingly unlikely.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return a.Mul(inv).Equal(Identity(n), 1e-8) && inv.Mul(a).Equal(Identity(n), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err != ErrSingular {
		t.Fatalf("FactorLU(singular) err = %v, want ErrSingular", err)
	}
	if _, err := Inverse(a); err != ErrSingular {
		t.Fatalf("Inverse(singular) err = %v, want ErrSingular", err)
	}
}

func TestLUDet(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-(-2)) > 1e-12 {
		t.Fatalf("Det = %g, want -2", f.Det())
	}
}

func TestLUSolvePermutedSystem(t *testing.T) {
	// Force pivoting with a zero on the leading diagonal.
	a := NewFromRows([][]float64{{0, 1}, {1, 0}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{2, 3})
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("Solve = %v, want [3 2]", x)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := NewFromRows([][]float64{{4, 2}, {2, 3}})
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := c.L()
	if !l.Mul(l.T()).Equal(a, 1e-12) {
		t.Fatalf("LLᵀ != a: %v", l)
	}
}

func TestCholeskySolveMatchesLU(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		c, err := FactorCholesky(a)
		if err != nil {
			return false
		}
		lu, err := FactorLU(a)
		if err != nil {
			return false
		}
		x1 := c.Solve(b)
		x2 := lu.Solve(b)
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-7*(1+math.Abs(x2[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := FactorCholesky(a); err != ErrSingular {
		t.Fatalf("FactorCholesky(indefinite) err = %v, want ErrSingular", err)
	}
}

func TestCholeskyInverse(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randSPD(r, 6)
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := c.Inverse()
	if !a.Mul(inv).Equal(Identity(6), 1e-8) {
		t.Fatal("Cholesky inverse round trip failed")
	}
}

func TestSolveSPDFallback(t *testing.T) {
	// A singular PSD matrix: SolveSPD should still produce a finite answer
	// via the ridge fallback.
	a := NewFromRows([][]float64{{1, 1}, {1, 1}})
	x, err := SolveSPD(a, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("SolveSPD returned non-finite %v", x)
		}
	}
}

func TestSolveSPDAgreesWithCholesky(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randSPD(r, 5)
	b := []float64{1, 2, 3, 4, 5}
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := a.MulVec(x)
	for i := range got {
		if math.Abs(got[i]-b[i]) > 1e-8 {
			t.Fatalf("residual too large: got %v want %v", got, b)
		}
	}
}
