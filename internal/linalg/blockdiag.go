// Block-diagonal and composed operators: the combinators the sharded
// planner uses to stitch per-shard strategies into one composite strategy
// without materializing anything. BlockDiag is the direct sum A₁ ⊕ … ⊕ Aₖ
// (each part owns its own slice of the input and output); ComposeOps is
// the product A·B presented through matvecs. A sharded strategy is
// ComposeOps(BlockDiag(shard strategies...), StackOps(shard
// projections...)): project the histogram onto each shard's sub-domain,
// then measure each sub-domain with its own strategy.

package linalg

import "fmt"

// BlockDiagOp is the direct sum of operators: a block-diagonal operator
// whose i-th block maps the i-th slice of the input to the i-th slice of
// the output. Rows and Cols are the sums of the parts'.
type BlockDiagOp struct {
	parts []Operator
	rows  int
	cols  int
}

// BlockDiag returns the direct sum of the given operators. A single part
// is returned unchanged.
func BlockDiag(parts ...Operator) Operator {
	if len(parts) == 0 {
		panic("linalg: BlockDiag of nothing")
	}
	if len(parts) == 1 {
		return parts[0]
	}
	var rows, cols int
	for _, p := range parts {
		rows += p.Rows()
		cols += p.Cols()
	}
	return &BlockDiagOp{parts: parts, rows: rows, cols: cols}
}

// Parts returns the diagonal blocks in order.
func (o *BlockDiagOp) Parts() []Operator { return o.parts }

// Rows returns the total output dimension.
func (o *BlockDiagOp) Rows() int { return o.rows }

// Cols returns the total input dimension.
func (o *BlockDiagOp) Cols() int { return o.cols }

// MulVec applies each block to its input slice and concatenates.
func (o *BlockDiagOp) MulVec(x []float64) []float64 {
	checkMulVecLen(o, len(x), o.cols, false)
	out := make([]float64, 0, o.rows)
	at := 0
	for _, p := range o.parts {
		out = append(out, p.MulVec(x[at:at+p.Cols()])...)
		at += p.Cols()
	}
	return out
}

// MulVecT applies each block's transpose to its output slice and
// concatenates.
func (o *BlockDiagOp) MulVecT(y []float64) []float64 {
	checkMulVecLen(o, len(y), o.rows, true)
	out := make([]float64, 0, o.cols)
	at := 0
	for _, p := range o.parts {
		out = append(out, p.MulVecT(y[at:at+p.Rows()])...)
		at += p.Rows()
	}
	return out
}

// Gram returns the dense block-diagonal Gram matrix assembled from the
// parts' Grams. Only call when cols² is affordable.
func (o *BlockDiagOp) Gram() *Matrix {
	out := New(o.cols, o.cols)
	at := 0
	for _, p := range o.parts {
		g := OperatorGram(p)
		n := p.Cols()
		for i := 0; i < n; i++ {
			copy(out.Row(at + i)[at:at+n], g.Row(i))
		}
		at += n
	}
	return out
}

// ColNorms2 concatenates the parts' squared column norms.
func (o *BlockDiagOp) ColNorms2() []float64 {
	out := make([]float64, 0, o.cols)
	for _, p := range o.parts {
		out = append(out, OperatorColNorms2(p)...)
	}
	return out
}

// ColNormsL1 concatenates the parts' L1 column norms.
func (o *BlockDiagOp) ColNormsL1() []float64 {
	out := make([]float64, 0, o.cols)
	for _, p := range o.parts {
		out = append(out, OperatorColNormsL1(p)...)
	}
	return out
}

// ComposedOp is the product outer·inner, applied as two matvecs.
type ComposedOp struct {
	outer Operator
	inner Operator
}

// ComposeOps returns the operator outer·inner (first apply inner, then
// outer). The dimensions must chain: outer.Cols() == inner.Rows().
func ComposeOps(outer, inner Operator) *ComposedOp {
	if outer.Cols() != inner.Rows() {
		panic(fmt.Sprintf("linalg: ComposeOps dimension mismatch: outer is %dx%d, inner %dx%d",
			outer.Rows(), outer.Cols(), inner.Rows(), inner.Cols()))
	}
	return &ComposedOp{outer: outer, inner: inner}
}

// Rows returns the outer operator's row count.
func (o *ComposedOp) Rows() int { return o.outer.Rows() }

// Cols returns the inner operator's column count.
func (o *ComposedOp) Cols() int { return o.inner.Cols() }

// MulVec returns outer·(inner·x).
func (o *ComposedOp) MulVec(x []float64) []float64 {
	return o.outer.MulVec(o.inner.MulVec(x))
}

// MulVecT returns innerᵀ·(outerᵀ·y).
func (o *ComposedOp) MulVecT(y []float64) []float64 {
	return o.inner.MulVecT(o.outer.MulVecT(y))
}
