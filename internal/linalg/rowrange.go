// Row-range matvec: the chunked third of the Operator contract. MulVec
// materializes all m rows and MulVecInto needs a caller buffer of all m
// rows; both make peak memory O(rows), which is exactly what a streaming
// release must avoid — the large structured workloads (all-range on 2048
// cells is ~2.1M rows) are answerable but not materializable per release.
// RowChunkAnswerer lets a representation answer just rows [lo,hi) of A·x
// into a chunk-sized buffer, so a release pipeline can stream answers
// with peak memory bounded by the chunk size instead of the workload.
//
// Bit-compatibility contract: for every representation,
//
//	MulVecRangeInto(dst, x, lo, hi)  ==  MulVecInto(full, x)[lo:hi]
//
// bit for bit (for operators without an Into form — Kron — the reference
// is MulVec, which is what the Into helper falls back to). Streamed and
// buffered releases of the same noisy estimate must agree exactly, so
// every range kernel below reproduces the full kernel's accumulation
// order, including partial sums recomputed up to a mid-segment start.
//
// Structured analytic operators (Prefix, Intervals, Stack, BlockDiag and
// the cheap wrappers) answer a chunk allocation-free in O(chunk + setup)
// where setup is the per-call cost of locating the range (a prefix
// re-accumulation, a segment scan). Combinators that need the full
// intermediate (Kron's inner slabs, Composed's inner product, RowPermuted
// bases) allocate internally, but bounded by factor/cell dimensions — never
// by the output row count.

package linalg

import "fmt"

// RowChunkAnswerer is implemented by operators that can answer a
// contiguous row range of A·x into a caller-supplied buffer without
// materializing the other rows.
type RowChunkAnswerer interface {
	Operator
	// MulVecRangeInto writes rows [lo,hi) of A·x into dst[:hi-lo].
	// len(x) must be Cols(), 0 ≤ lo ≤ hi ≤ Rows(), len(dst) ≥ hi-lo, and
	// dst must not alias x. The values are bit-identical to the matching
	// window of MulVecInto (MulVec for operators without an Into form).
	MulVecRangeInto(dst, x []float64, lo, hi int)
}

// MulVecRangeInto writes rows [lo,hi) of op·x into dst, using the
// RowChunkAnswerer fast path when the representation has one and falling
// back to a full product plus a copy otherwise (O(rows) scratch — the
// fallback keeps exotic operators correct, not bounded). It returns dst.
func MulVecRangeInto(op Operator, dst, x []float64, lo, hi int) []float64 {
	checkRowRange(op, lo, hi, len(dst))
	if ra, ok := op.(RowChunkAnswerer); ok {
		ra.MulVecRangeInto(dst, x, lo, hi)
		return dst
	}
	full := make([]float64, op.Rows())
	MulVecInto(op, full, x)
	copy(dst, full[lo:hi])
	return dst
}

// checkRowRange validates a row-range request against the operator.
func checkRowRange(op Operator, lo, hi, dstLen int) {
	if lo < 0 || hi < lo || hi > op.Rows() {
		panic(fmt.Sprintf("linalg: MulVecRangeInto range [%d,%d) of %d rows", lo, hi, op.Rows()))
	}
	if dstLen < hi-lo {
		panic(fmt.Sprintf("linalg: MulVecRangeInto buffer %d for %d rows", dstLen, hi-lo))
	}
}

// --- Matrix ---

// MulVecRangeInto answers dense rows [lo,hi) with the same unrolled row
// kernel the full matvec uses, so chunked answers match it bit for bit.
func (m *Matrix) MulVecRangeInto(dst, x []float64, lo, hi int) {
	checkRowRange(m, lo, hi, len(dst))
	checkMulVecLen(m, len(x), m.cols, false)
	for i := lo; i < hi; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+4 <= len(row); j += 4 {
			s0 += row[j] * x[j]
			s1 += row[j+1] * x[j+1]
			s2 += row[j+2] * x[j+2]
			s3 += row[j+3] * x[j+3]
		}
		s := s0 + s1 + s2 + s3
		for ; j < len(row); j++ {
			s += row[j] * x[j]
		}
		dst[i-lo] = s
	}
}

// --- Sparse ---

// MulVecRangeInto answers CSR rows [lo,hi) in O(nnz of the range).
func (s *Sparse) MulVecRangeInto(dst, x []float64, lo, hi int) {
	checkRowRange(s, lo, hi, len(dst))
	checkMulVecLen(s, len(x), s.cols, false)
	for i := lo; i < hi; i++ {
		var acc float64
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			acc += s.val[k] * x[s.colIdx[k]]
		}
		dst[i-lo] = acc
	}
}

// --- Identity ---

// MulVecRangeInto copies the matching window of x.
func (o *IdentityOp) MulVecRangeInto(dst, x []float64, lo, hi int) {
	checkRowRange(o, lo, hi, len(dst))
	checkMulVecLen(o, len(x), o.n, false)
	copy(dst, x[lo:hi])
}

// --- Prefix ---

// MulVecRangeInto re-accumulates the running sum through the skipped
// prefix x[0:lo] in the same left-to-right order as the full kernel — the
// O(lo) setup is what makes a mid-stream chunk bit-identical to the
// buffered row.
func (o *PrefixOp) MulVecRangeInto(dst, x []float64, lo, hi int) {
	checkRowRange(o, lo, hi, len(dst))
	checkMulVecLen(o, len(x), o.n, false)
	var s float64
	for i := 0; i < lo; i++ {
		s += x[i]
	}
	for i := lo; i < hi; i++ {
		s += x[i]
		dst[i-lo] = s
	}
}

// --- Intervals ---

// MulVecRangeInto walks the lo-major interval blocks, skipping whole
// blocks before the range and re-accumulating the partial running sum of
// the first covered block in ascending-cell order — the same fold the
// full write-into kernel uses, so chunk boundaries never change a bit.
func (o *IntervalsOp) MulVecRangeInto(dst, x []float64, rlo, rhi int) {
	checkRowRange(o, rlo, rhi, len(dst))
	checkMulVecLen(o, len(x), o.d, false)
	r := 0
	for qlo := 0; qlo < o.d && r < rhi; qlo++ {
		blockLen := o.d - qlo
		if r+blockLen <= rlo {
			r += blockLen // block entirely before the range
			continue
		}
		var s float64
		for qhi := qlo; qhi < o.d; qhi++ {
			s += x[qhi]
			if r >= rlo {
				dst[r-rlo] = s
			}
			r++
			if r >= rhi {
				return
			}
		}
	}
}

// --- Kron ---

// MulVecRangeInto answers rows [lo,hi) of the Kronecker product by
// recursing on the leading factor: the covered leading rows r₁ select
// slabs z[q] = (A₁·x[·,q])[r₁] of the first mode application, and the
// remaining factors answer their sub-range of each slab. The slabs are
// extracted from full leading-factor matvecs — the same per-column
// products the mode-by-mode MulVec computes — so chunked Kron answers are
// bit-identical to the buffered ones. Internal scratch is bounded by the
// covered slab count × the trailing column product and the factor row
// counts, never by the total row count.
func (o *KronOp) MulVecRangeInto(dst, x []float64, lo, hi int) {
	checkRowRange(o, lo, hi, len(dst))
	checkMulVecLen(o, len(x), o.cols, false)
	kronRange(o.factors, dst, x, lo, hi)
}

// kronRange answers rows [lo,hi) of the Kronecker product of factors
// applied to x (length Π cols). It requires lo < hi.
func kronRange(factors []Operator, dst, x []float64, lo, hi int) {
	if lo >= hi {
		return
	}
	f := factors[0]
	if len(factors) == 1 {
		// The mode-by-mode algorithm applies the last factor's MulVec to
		// each slab whole; reproduce that and keep the window.
		full := f.MulVec(x)
		copy(dst, full[lo:hi])
		return
	}
	rest := factors[1:]
	mRest, nRest := 1, 1
	for _, g := range rest {
		mRest *= g.Rows()
		nRest *= g.Cols()
	}
	n1 := f.Cols()
	r1a, r1b := lo/mRest, (hi-1)/mRest+1
	// slabs[(r1-r1a)*nRest+q] = (A₁·x[·,q])[r1]: one full factor matvec
	// per trailing column, shared by every covered leading row.
	slabs := make([]float64, (r1b-r1a)*nRest)
	buf := make([]float64, n1)
	for q := 0; q < nRest; q++ {
		for j := 0; j < n1; j++ {
			buf[j] = x[j*nRest+q]
		}
		out := f.MulVec(buf)
		for r1 := r1a; r1 < r1b; r1++ {
			slabs[(r1-r1a)*nRest+q] = out[r1]
		}
	}
	for r1 := r1a; r1 < r1b; r1++ {
		slabLo, slabHi := r1*mRest, (r1+1)*mRest
		a, b := slabLo, slabHi
		if lo > a {
			a = lo
		}
		if hi < b {
			b = hi
		}
		z := slabs[(r1-r1a)*nRest : (r1-r1a+1)*nRest]
		kronRange(rest, dst[a-lo:b-lo], z, a-slabLo, b-slabLo)
	}
}

// --- Structural combinators ---

// MulVecRangeInto routes the range to the overlapped parts, each
// answering its part-relative sub-range.
func (o *StackOp) MulVecRangeInto(dst, x []float64, lo, hi int) {
	checkRowRange(o, lo, hi, len(dst))
	checkMulVecLen(o, len(x), o.cols, false)
	at := 0
	for _, p := range o.parts {
		rows := p.Rows()
		a, b := at, at+rows
		if lo > a {
			a = lo
		}
		if hi < b {
			b = hi
		}
		if a < b {
			MulVecRangeInto(p, dst[a-lo:b-lo], x, a-at, b-at)
		}
		at += rows
		if at >= hi {
			return
		}
	}
}

// MulVecRangeInto routes the range to the overlapped diagonal blocks,
// each answering its sub-range on its column slice.
func (o *BlockDiagOp) MulVecRangeInto(dst, x []float64, lo, hi int) {
	checkRowRange(o, lo, hi, len(dst))
	checkMulVecLen(o, len(x), o.cols, false)
	atR, atC := 0, 0
	for _, p := range o.parts {
		rows, cols := p.Rows(), p.Cols()
		a, b := atR, atR+rows
		if lo > a {
			a = lo
		}
		if hi < b {
			b = hi
		}
		if a < b {
			MulVecRangeInto(p, dst[a-lo:b-lo], x[atC:atC+cols], a-atR, b-atR)
		}
		atR += rows
		atC += cols
		if atR >= hi {
			return
		}
	}
}

// MulVecRangeInto scales the base range by s.
func (o *ScaledOp) MulVecRangeInto(dst, x []float64, lo, hi int) {
	checkRowRange(o, lo, hi, len(dst))
	MulVecRangeInto(o.base, dst, x, lo, hi)
	for i := range dst[:hi-lo] {
		dst[i] *= o.s
	}
}

// MulVecRangeInto scales the base range by the matching scale window.
func (o *RowScaledOp) MulVecRangeInto(dst, x []float64, lo, hi int) {
	checkRowRange(o, lo, hi, len(dst))
	MulVecRangeInto(o.base, dst, x, lo, hi)
	for i, s := range o.scale[lo:hi] {
		dst[i] *= s
	}
}

// MulVecRangeInto delegates to the wrapped operator's range path.
func (o *NormedOp) MulVecRangeInto(dst, x []float64, lo, hi int) {
	MulVecRangeInto(o.Operator, dst, x, lo, hi)
}

// MulVecRangeInto computes the base product and gathers the selected rows
// of the window. Like the full write-into kernel it allocates the
// base-sized intermediate (the permutation makes the range non-contiguous
// in the base), and it reuses the base's own MulVec so the gathered values
// are the buffered ones.
func (o *RowPermutedOp) MulVecRangeInto(dst, x []float64, lo, hi int) {
	checkRowRange(o, lo, hi, len(dst))
	if _, ok := o.base.(*IdentityOp); ok {
		checkMulVecLen(o, len(x), o.base.Cols(), false)
		for i, p := range o.perm[lo:hi] {
			dst[i] = x[p]
		}
		return
	}
	full := o.base.MulVec(x)
	for i, p := range o.perm[lo:hi] {
		dst[i] = full[p]
	}
}

// MulVecRangeInto applies the full inner product (its rows are the
// composition's columns, bounded by cells, not output rows) and answers
// the outer range on it.
func (o *ComposedOp) MulVecRangeInto(dst, x []float64, lo, hi int) {
	checkRowRange(o, lo, hi, len(dst))
	mid := make([]float64, o.inner.Rows())
	MulVecInto(o.inner, mid, x)
	MulVecRangeInto(o.outer, dst, mid, lo, hi)
}

// Compile-time checks that every hot-path representation can answer row
// ranges.
var _ = []RowChunkAnswerer{
	(*Matrix)(nil),
	(*Sparse)(nil),
	(*IdentityOp)(nil),
	(*PrefixOp)(nil),
	(*IntervalsOp)(nil),
	(*KronOp)(nil),
	(*StackOp)(nil),
	(*BlockDiagOp)(nil),
	(*ScaledOp)(nil),
	(*RowScaledOp)(nil),
	(*RowPermutedOp)(nil),
	(*NormedOp)(nil),
	(*ComposedOp)(nil),
}
