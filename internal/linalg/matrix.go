// Package linalg provides the linear-algebra substrate used by the
// adaptive matrix mechanism. It is written against the standard library
// only and replaces the numpy/LAPACK layer used by the paper's reference
// implementation.
//
// The package has two tiers:
//
//   - The dense tier: row-major float64 Matrix with arithmetic,
//     factorizations (LU, Cholesky), a symmetric eigensolver,
//     pseudo-inverses, and Kronecker / Hadamard products. O(n³)
//     algorithms, right up to a few thousand cells.
//   - The operator tier: the Operator interface (see operator.go for the
//     representation guide) with matrix-free structured implementations —
//     Sparse CSR, Identity, Prefix, Intervals, Kronecker products and
//     structural combinators — plus the iterative CGLS least-squares
//     solver. This is the tier that scales past the dense ceiling: only
//     matvecs are ever required, so memory is O(nonzeros or less) and a
//     release costs O(rows) for the analytic forms.
//
// Matrix itself implements Operator, so dense remains just one
// representation choice among several.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Use New, NewFromRows, Identity or
// one of the structured constructors to build a useful instance.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// New returns a zero-filled matrix with the given shape.
// It panics if rows or cols is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewFromRows builds a matrix from a slice of equal-length rows. The data
// is copied. It panics if the rows have inconsistent lengths.
func NewFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	n := len(rows[0])
	m := New(len(rows), n)
	for i, r := range rows {
		if len(r) != n {
			panic(fmt.Sprintf("linalg: row %d has length %d, want %d", i, len(r), n))
		}
		copy(m.data[i*n:(i+1)*n], r)
	}
	return m
}

// NewFromData wraps the given row-major backing slice without copying.
// It panics if len(data) != rows*cols.
func NewFromData(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: data}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square diagonal matrix with the given diagonal entries.
func Diag(d []float64) *Matrix {
	n := len(d)
	m := New(n, n)
	for i, v := range d {
		m.data[i*n+i] = v
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view (not a copy) of row i as a slice.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the row-major backing slice of the matrix.
func (m *Matrix) Data() []float64 { return m.data }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Mul returns the matrix product m * other.
// It panics if the inner dimensions disagree.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	out := New(m.rows, other.cols)
	// ikj loop order: stream over rows of other for cache friendliness.
	for i := 0; i < m.rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k, a := range mrow {
			if a == 0 {
				continue
			}
			brow := other.Row(k)
			for j, b := range brow {
				orow[j] += a * b
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * v as a new slice.
// It panics if len(v) != m.Cols().
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec length %d, want %d", len(v), m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// TMulVec returns mᵀ * v without forming the transpose.
// It panics if len(v) != m.Rows().
func (m *Matrix) TMulVec(v []float64) []float64 {
	if len(v) != m.rows {
		panic(fmt.Sprintf("linalg: TMulVec length %d, want %d", len(v), m.rows))
	}
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		a := v[i]
		if a == 0 {
			continue
		}
		row := m.Row(i)
		for j, b := range row {
			out[j] += a * b
		}
	}
	return out
}

// Add returns m + other as a new matrix. It panics on shape mismatch.
func (m *Matrix) Add(other *Matrix) *Matrix {
	m.checkSameShape(other, "Add")
	out := m.Clone()
	for i, v := range other.data {
		out.data[i] += v
	}
	return out
}

// Sub returns m - other as a new matrix. It panics on shape mismatch.
func (m *Matrix) Sub(other *Matrix) *Matrix {
	m.checkSameShape(other, "Sub")
	out := m.Clone()
	for i, v := range other.data {
		out.data[i] -= v
	}
	return out
}

// Scale returns s * m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Hadamard returns the entry-wise (Hadamard) product m ∘ other.
// It panics on shape mismatch.
func (m *Matrix) Hadamard(other *Matrix) *Matrix {
	m.checkSameShape(other, "Hadamard")
	out := m.Clone()
	for i, v := range other.data {
		out.data[i] *= v
	}
	return out
}

func (m *Matrix) checkSameShape(other *Matrix, op string) {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("linalg: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, other.rows, other.cols))
	}
}

// Gram returns mᵀ * m computed directly (exploiting symmetry of the result).
func (m *Matrix) Gram() *Matrix {
	n := m.cols
	out := New(n, n)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for a, va := range row {
			if va == 0 {
				continue
			}
			orow := out.Row(a)
			for b := a; b < n; b++ {
				orow[b] += va * row[b]
			}
		}
	}
	// Mirror the upper triangle.
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			out.data[b*n+a] = out.data[a*n+b]
		}
	}
	return out
}

// Trace returns the sum of diagonal entries. It panics if m is not square.
func (m *Matrix) Trace() float64 {
	if m.rows != m.cols {
		panic("linalg: Trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// TraceProduct returns trace(m * other) without forming the product.
// It panics unless m is p x q and other is q x p.
func (m *Matrix) TraceProduct(other *Matrix) float64 {
	if m.cols != other.rows || m.rows != other.cols {
		panic(fmt.Sprintf("linalg: TraceProduct shape mismatch %dx%d vs %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	var t float64
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t += v * other.data[j*other.cols+i]
		}
	}
	return t
}

// ColNorms2 returns the squared L2 norm of every column.
func (m *Matrix) ColNorms2() []float64 {
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v * v
		}
	}
	return out
}

// ColNormsL1 returns the L1 norm of every column.
func (m *Matrix) ColNormsL1() []float64 {
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += math.Abs(v)
		}
	}
	return out
}

// MaxColNorm2 returns the maximum L2 column norm (the L2 sensitivity of a
// query matrix, Prop. 1 of the paper).
func (m *Matrix) MaxColNorm2() float64 {
	var best float64
	for _, s := range m.ColNorms2() {
		if s > best {
			best = s
		}
	}
	return math.Sqrt(best)
}

// MaxColNormL1 returns the maximum L1 column norm (the L1 sensitivity of a
// query matrix).
func (m *Matrix) MaxColNormL1() float64 {
	var best float64
	for _, s := range m.ColNormsL1() {
		if s > best {
			best = s
		}
	}
	return best
}

// FrobeniusNorm returns the Frobenius norm sqrt(Σ m_ij²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// StackRows returns a new matrix whose rows are the rows of the arguments,
// in order. All arguments must have the same number of columns.
func StackRows(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	cols := ms[0].cols
	total := 0
	for _, m := range ms {
		if m.cols != cols {
			panic(fmt.Sprintf("linalg: StackRows column mismatch %d vs %d", m.cols, cols))
		}
		total += m.rows
	}
	out := New(total, cols)
	at := 0
	for _, m := range ms {
		copy(out.data[at:at+len(m.data)], m.data)
		at += len(m.data)
	}
	return out
}

// Kronecker returns the Kronecker product m ⊗ other. Multi-dimensional
// range and hierarchical strategies are Kronecker products of their
// one-dimensional counterparts, so this is a core building block.
func Kronecker(a, b *Matrix) *Matrix {
	out := New(a.rows*b.rows, a.cols*b.cols)
	for ia := 0; ia < a.rows; ia++ {
		arow := a.Row(ia)
		for ib := 0; ib < b.rows; ib++ {
			brow := b.Row(ib)
			orow := out.Row(ia*b.rows + ib)
			for ja, va := range arow {
				if va == 0 {
					continue
				}
				base := ja * b.cols
				for jb, vb := range brow {
					orow[base+jb] = va * vb
				}
			}
		}
	}
	return out
}

// KroneckerAll returns the Kronecker product of all arguments in order.
// With no arguments it returns the 1x1 matrix [1].
func KroneckerAll(ms ...*Matrix) *Matrix {
	out := NewFromRows([][]float64{{1}})
	for _, m := range ms {
		out = Kronecker(out, m)
	}
	return out
}

// PermuteCols returns a copy of m with columns reordered so that new column
// j is old column perm[j]. It panics if perm is not a permutation of
// 0..cols-1 by length (content is the caller's responsibility).
func (m *Matrix) PermuteCols(perm []int) *Matrix {
	if len(perm) != m.cols {
		panic(fmt.Sprintf("linalg: PermuteCols length %d, want %d", len(perm), m.cols))
	}
	out := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		orow := out.Row(i)
		for j, p := range perm {
			orow[j] = row[p]
		}
	}
	return out
}

// Equal reports whether the matrices have the same shape and entries within
// absolute tolerance tol.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-other.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a small matrix for debugging; large matrices are
// summarized by shape.
func (m *Matrix) String() string {
	if m.rows*m.cols > 400 {
		return fmt.Sprintf("Matrix(%dx%d)", m.rows, m.cols)
	}
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "% .4g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
