package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// rangeCase pairs an operator with the reference product a chunked answer
// must reproduce bit for bit. For operators with a write-into kernel the
// reference is MulVecInto; KronOp has none, so its reference is MulVec —
// mirroring exactly what the buffered release path computes.
type rangeCase struct {
	name string
	op   Operator
}

func rangeCases(r *rand.Rand) []rangeCase {
	dense := randMatrix(r, 17, 9)
	sb := NewSparseBuilder(12)
	for i := 0; i < 23; i++ {
		lo := r.Intn(12)
		hi := lo + r.Intn(12-lo)
		sb.AppendRangeRow(lo, hi, 1+r.Float64())
	}
	sparse := sb.Build()
	perm := r.Perm(dense.Rows())
	scale := make([]float64, sparse.Rows())
	for i := range scale {
		scale[i] = r.NormFloat64()
	}
	inner := randMatrix(r, 7, 11)
	outer := randMatrix(r, 19, 7)
	return []rangeCase{
		{"dense", dense},
		{"sparse", sparse},
		{"identity", Eye(13)},
		{"prefix", NewPrefixOp(15)},
		{"intervals", NewIntervalsOp(9)},
		{"kron2", NewKronOp(NewPrefixOp(5), randMatrix(r, 4, 3))},
		{"kron3", NewKronOp(randMatrix(r, 3, 2), NewIntervalsOp(3), NewPrefixOp(4))},
		{"stack", StackOps(NewPrefixOp(8), Eye(8), randMatrix(r, 5, 8))},
		{"blockdiag", BlockDiag(randMatrix(r, 4, 3), NewPrefixOp(5), NewIntervalsOp(4))},
		{"scaled", ScaleOp(NewIntervalsOp(7), 1.0/3)},
		{"rowscaled", ScaleRows(sparse, scale)},
		{"permuted", PermuteRows(dense, perm)},
		{"normed", WithColNorms(NewPrefixOp(10), make([]float64, 10), make([]float64, 10))},
		{"composed", ComposeOps(outer, inner)},
	}
}

// referenceAnswers computes the product the buffered release serves: the
// write-into path, which itself falls back to MulVec for operators
// without an Into kernel (Kron).
func referenceAnswers(op Operator, x []float64) []float64 {
	full := make([]float64, op.Rows())
	MulVecInto(op, full, x)
	return full
}

func TestMulVecRangeIntoMatchesFullBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, tc := range rangeCases(r) {
		t.Run(tc.name, func(t *testing.T) {
			rows, cols := tc.op.Rows(), tc.op.Cols()
			x := make([]float64, cols)
			for i := range x {
				x[i] = r.NormFloat64()
			}
			full := referenceAnswers(tc.op, x)
			// Every possible range on small operators is cheap enough to
			// sweep exhaustively: chunked answers must match the buffered
			// window bit for bit at every boundary, not approximately.
			for lo := 0; lo <= rows; lo++ {
				for hi := lo; hi <= rows; hi++ {
					dst := make([]float64, hi-lo)
					for i := range dst {
						dst[i] = math.NaN() // ensure every cell is written
					}
					MulVecRangeInto(tc.op, dst, x, lo, hi)
					for i := range dst {
						if math.Float64bits(dst[i]) != math.Float64bits(full[lo+i]) {
							t.Fatalf("%s range [%d,%d) row %d: got %v (%#x) want %v (%#x)",
								tc.name, lo, hi, lo+i,
								dst[i], math.Float64bits(dst[i]),
								full[lo+i], math.Float64bits(full[lo+i]))
						}
					}
				}
			}
		})
	}
}

// TestMulVecRangeIntoChunkSweep reassembles the full product from
// contiguous chunks of awkward sizes and requires bit-identity — the
// exact access pattern StreamRelease uses.
func TestMulVecRangeIntoChunkSweep(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, tc := range rangeCases(r) {
		rows, cols := tc.op.Rows(), tc.op.Cols()
		x := make([]float64, cols)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		full := referenceAnswers(tc.op, x)
		for _, chunk := range []int{1, 3, 7, rows, rows + 5} {
			got := make([]float64, rows)
			buf := make([]float64, chunk)
			for lo := 0; lo < rows; lo += chunk {
				hi := lo + chunk
				if hi > rows {
					hi = rows
				}
				MulVecRangeInto(tc.op, buf[:hi-lo], x, lo, hi)
				copy(got[lo:hi], buf[:hi-lo])
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(full[i]) {
					t.Fatalf("%s chunk %d row %d: got %v want %v", tc.name, chunk, i, got[i], full[i])
				}
			}
		}
	}
}

// TestMulVecRangeIntoFallback covers the slow path for operators outside
// the RowChunkAnswerer set.
func TestMulVecRangeIntoFallback(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	op := opaqueOp{randMatrix(r, 6, 4)}
	x := []float64{1, -2, 0.5, 3}
	full := referenceAnswers(op, x)
	dst := make([]float64, 3)
	MulVecRangeInto(op, dst, x, 2, 5)
	for i := range dst {
		if math.Float64bits(dst[i]) != math.Float64bits(full[2+i]) {
			t.Fatalf("fallback row %d: got %v want %v", 2+i, dst[i], full[2+i])
		}
	}
}

// opaqueOp hides a Matrix behind the bare Operator interface so the
// package helper cannot see the fast path.
type opaqueOp struct{ m *Matrix }

func (o opaqueOp) Rows() int                    { return o.m.Rows() }
func (o opaqueOp) Cols() int                    { return o.m.Cols() }
func (o opaqueOp) MulVec(x []float64) []float64 { return o.m.MulVec(x) }
func (o opaqueOp) MulVecT(y []float64) []float64 {
	return o.m.MulVecT(y)
}

func TestMulVecRangeIntoPanics(t *testing.T) {
	op := NewPrefixOp(4)
	x := make([]float64, 4)
	for _, tc := range []struct {
		name       string
		lo, hi, sz int
	}{
		{"negative lo", -1, 2, 3},
		{"hi before lo", 3, 2, 0},
		{"hi past rows", 0, 5, 5},
		{"short buffer", 0, 4, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			MulVecRangeInto(op, make([]float64, tc.sz), x, tc.lo, tc.hi)
		})
	}
}
