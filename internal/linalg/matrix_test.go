package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randMatrix returns a deterministic pseudo-random matrix for tests.
func randMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = r.NormFloat64()
	}
	return m
}

// randSPD returns a random symmetric positive-definite matrix.
func randSPD(r *rand.Rand, n int) *Matrix {
	b := randMatrix(r, n+2, n)
	g := b.Gram()
	for i := 0; i < n; i++ {
		g.Set(i, i, g.At(i, i)+0.5)
	}
	return g
}

func TestNewShapes(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("new matrix not zero at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewFromRowsAndAt(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("bad entries: %v", m)
	}
}

func TestNewFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestNewFromDataPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong data length")
		}
	}()
	NewFromData(2, 2, []float64{1, 2, 3})
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(4)
	d := Diag([]float64{1, 1, 1, 1})
	if !id.Equal(d, 0) {
		t.Fatal("Identity(4) != Diag(ones)")
	}
	d2 := Diag([]float64{2, 3})
	if d2.At(0, 0) != 2 || d2.At(1, 1) != 3 || d2.At(0, 1) != 0 {
		t.Fatalf("Diag wrong: %v", d2)
	}
}

func TestTranspose(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", mt.Rows(), mt.Cols())
	}
	if mt.At(2, 0) != 3 || mt.At(1, 1) != 5 {
		t.Fatalf("transpose entries wrong: %v", mt)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randMatrix(r, 1+r.Intn(8), 1+r.Intn(8))
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := randMatrix(r, 5, 7)
	if !Identity(5).Mul(m).Equal(m, 1e-14) {
		t.Fatal("I*m != m")
	}
	if !m.Mul(Identity(7)).Equal(m, 1e-14) {
		t.Fatal("m*I != m")
	}
}

func TestMulKnown(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	want := NewFromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.Equal(want, 0) {
		t.Fatalf("a*b = %v, want %v", got, want)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMatrix(r, 3, 4)
		b := randMatrix(r, 4, 5)
		c := randMatrix(r, 5, 2)
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)), 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulTransposeIdentity(t *testing.T) {
	// (AB)ᵀ = BᵀAᵀ
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMatrix(r, 4, 3)
		b := randMatrix(r, 3, 5)
		return a.Mul(b).T().Equal(b.T().Mul(a.T()), 1e-11)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randMatrix(r, 6, 4)
	v := []float64{1, -2, 0.5, 3}
	got := a.MulVec(v)
	want := a.Mul(NewFromData(4, 1, append([]float64(nil), v...)))
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MulVec[%d] = %g, want %g", i, got[i], want.At(i, 0))
		}
	}
}

func TestTMulVecMatchesTransposeMul(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := randMatrix(r, 6, 4)
	v := make([]float64, 6)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	got := a.TMulVec(v)
	want := a.T().MulVec(v)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("TMulVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{4, 3}, {2, 1}})
	if got := a.Add(b); !got.Equal(NewFromRows([][]float64{{5, 5}, {5, 5}}), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(a); !got.Equal(New(2, 2), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); !got.Equal(NewFromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestHadamard(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{2, 0}, {-1, 3}})
	want := NewFromRows([][]float64{{2, 0}, {-3, 12}})
	if got := a.Hadamard(b); !got.Equal(want, 0) {
		t.Fatalf("Hadamard = %v, want %v", got, want)
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMatrix(r, 2+r.Intn(6), 1+r.Intn(6))
		return a.Gram().Equal(a.T().Mul(a), 1e-11)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceAndTraceProduct(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	if a.Trace() != 5 {
		t.Fatalf("Trace = %g", a.Trace())
	}
	r := rand.New(rand.NewSource(3))
	x := randMatrix(r, 4, 6)
	y := randMatrix(r, 6, 4)
	want := x.Mul(y).Trace()
	if got := x.TraceProduct(y); math.Abs(got-want) > 1e-11 {
		t.Fatalf("TraceProduct = %g, want %g", got, want)
	}
}

func TestColumnNorms(t *testing.T) {
	m := NewFromRows([][]float64{{3, -1}, {4, 1}})
	n2 := m.ColNorms2()
	if math.Abs(n2[0]-25) > 1e-14 || math.Abs(n2[1]-2) > 1e-14 {
		t.Fatalf("ColNorms2 = %v", n2)
	}
	n1 := m.ColNormsL1()
	if n1[0] != 7 || n1[1] != 2 {
		t.Fatalf("ColNormsL1 = %v", n1)
	}
	if m.MaxColNorm2() != 5 {
		t.Fatalf("MaxColNorm2 = %g", m.MaxColNorm2())
	}
	if m.MaxColNormL1() != 7 {
		t.Fatalf("MaxColNormL1 = %g", m.MaxColNormL1())
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewFromRows([][]float64{{3, 4}})
	if m.FrobeniusNorm() != 5 {
		t.Fatalf("FrobeniusNorm = %g", m.FrobeniusNorm())
	}
}

func TestStackRows(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}})
	b := NewFromRows([][]float64{{3, 4}, {5, 6}})
	s := StackRows(a, b)
	want := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !s.Equal(want, 0) {
		t.Fatalf("StackRows = %v", s)
	}
}

func TestKroneckerKnown(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}})
	b := NewFromRows([][]float64{{0, 1}, {1, 0}})
	got := Kronecker(a, b)
	want := NewFromRows([][]float64{{0, 1, 0, 2}, {1, 0, 2, 0}})
	if !got.Equal(want, 0) {
		t.Fatalf("Kronecker = %v, want %v", got, want)
	}
}

func TestKroneckerMixedProduct(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMatrix(r, 2, 3)
		b := randMatrix(r, 2, 2)
		c := randMatrix(r, 3, 2)
		d := randMatrix(r, 2, 3)
		left := Kronecker(a, b).Mul(Kronecker(c, d))
		right := Kronecker(a.Mul(c), b.Mul(d))
		return left.Equal(right, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKroneckerAll(t *testing.T) {
	if got := KroneckerAll(); got.Rows() != 1 || got.Cols() != 1 || got.At(0, 0) != 1 {
		t.Fatalf("KroneckerAll() = %v", got)
	}
	a := Identity(2)
	b := Identity(3)
	if got := KroneckerAll(a, b); !got.Equal(Identity(6), 0) {
		t.Fatalf("KroneckerAll(I2,I3) != I6")
	}
}

func TestPermuteCols(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	p := m.PermuteCols([]int{2, 0, 1})
	want := NewFromRows([][]float64{{3, 1, 2}, {6, 4, 5}})
	if !p.Equal(want, 0) {
		t.Fatalf("PermuteCols = %v, want %v", p, want)
	}
}

func TestPermuteColsPreservesColNorms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		m := randMatrix(r, 4, n)
		perm := r.Perm(n)
		a := m.ColNorms2()
		b := m.PermuteCols(perm).ColNorms2()
		for j, p := range perm {
			if math.Abs(b[j]-a[p]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := NewFromRows([][]float64{{1, 2}})
	if s := small.String(); s == "" {
		t.Fatal("empty String for small matrix")
	}
	big := New(50, 50)
	if s := big.String(); s != "Matrix(50x50)" {
		t.Fatalf("String for big matrix = %q", s)
	}
}
