package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// intoOps builds one operator of every hot-path representation, each with
// a write-into fast path to check against its allocating matvec.
func intoOps() map[string]Operator {
	sp := NewSparseBuilder(6)
	sp.AppendRangeRow(0, 5, 1)
	sp.AppendRangeRow(0, 2, 2)
	sp.AppendRow([]int{1, 4}, []float64{-1, 3})
	sparse := sp.Build()

	dense := ToDense(sparse)
	scale := []float64{0.5, -1, 2}
	return map[string]Operator{
		"matrix":      dense,
		"sparse":      sparse,
		"identity":    Eye(6),
		"prefix":      NewPrefixOp(6),
		"intervals":   NewIntervalsOp(4),
		"stack":       StackOps(Eye(6), sparse),
		"blockdiag":   BlockDiag(Eye(2), NewPrefixOp(3), Eye(1)),
		"scaled":      ScaleOp(sparse, -2.5),
		"rowscaled":   ScaleRows(sparse, scale),
		"rowpermuted": PermuteRows(sparse, []int{2, 0, 1, 0}),
		"normed":      &NormedOp{Operator: sparse},
		"composed":    ComposeOps(sparse, Eye(6)),
	}
}

// TestMulVecIntoMatchesMulVec checks, for every representation with a
// write-into fast path, that MulVecInto / MulVecTInto write exactly what
// the allocating matvecs return — including overwriting a dirty dst.
func TestMulVecIntoMatchesMulVec(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for name, op := range intoOps() {
		if _, ok := op.(IntoOperator); !ok {
			t.Fatalf("%s: no IntoOperator fast path", name)
		}
		for trial := 0; trial < 10; trial++ {
			x := make([]float64, op.Cols())
			for i := range x {
				x[i] = r.NormFloat64()
			}
			y := make([]float64, op.Rows())
			for i := range y {
				y[i] = r.NormFloat64()
			}
			dst := make([]float64, op.Rows())
			for i := range dst {
				dst[i] = math.NaN()
			}
			MulVecInto(op, dst, x)
			want := op.MulVec(x)
			for i := range dst {
				if math.Abs(dst[i]-want[i]) > 1e-12 {
					t.Fatalf("%s: MulVecInto[%d] = %g, want %g", name, i, dst[i], want[i])
				}
			}
			dstT := make([]float64, op.Cols())
			for i := range dstT {
				dstT[i] = math.NaN()
			}
			MulVecTInto(op, dstT, y)
			wantT := op.MulVecT(y)
			for i := range dstT {
				if math.Abs(dstT[i]-wantT[i]) > 1e-12 {
					t.Fatalf("%s: MulVecTInto[%d] = %g, want %g", name, i, dstT[i], wantT[i])
				}
			}
		}
	}
}

// TestSolveCGLSIntoMatchesSolveCGLS checks the workspace solver against
// the allocating wrapper and pins its zero-alloc steady state.
func TestSolveCGLSIntoMatchesSolveCGLS(t *testing.T) {
	b := NewSparseBuilder(8)
	for _, iv := range [][2]int{{0, 7}, {0, 3}, {4, 7}, {0, 1}, {2, 3}, {4, 5}, {6, 7}} {
		b.AppendRangeRow(iv[0], iv[1], 1)
	}
	a := b.Build()
	rhs := make([]float64, a.Rows())
	for i := range rhs {
		rhs[i] = float64(i%5) - 2
	}
	want, err := SolveCGLS(a, rhs, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ws := &CGWorkspace{}
	dst := make([]float64, a.Cols())
	if err := SolveCGLSInto(a, rhs, dst, CGOptions{}, ws); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("SolveCGLSInto[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
	if n := testing.AllocsPerRun(50, func() {
		if err := SolveCGLSInto(a, rhs, dst, CGOptions{}, ws); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("warmed SolveCGLSInto allocates %v per run, want 0", n)
	}
}
