package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulParallelMatchesMul(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMatrix(r, 1+r.Intn(20), 1+r.Intn(20))
		b := randMatrix(r, a.Cols(), 1+r.Intn(20))
		return a.Mul(b).Equal(a.MulParallel(b), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulParallelLarge(t *testing.T) {
	// Large enough to actually fan out.
	r := rand.New(rand.NewSource(1))
	a := randMatrix(r, 200, 180)
	b := randMatrix(r, 180, 190)
	if !a.Mul(b).Equal(a.MulParallel(b), 0) {
		t.Fatal("parallel product differs")
	}
}

func TestGramParallelMatchesGram(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMatrix(r, 1+r.Intn(25), 1+r.Intn(25))
		return a.Gram().Equal(a.GramParallel(), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGramParallelLarge(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randMatrix(r, 300, 250)
	if !a.Gram().Equal(a.GramParallel(), 0) {
		t.Fatal("parallel gram differs")
	}
}

func TestParallelRowsCoversAll(t *testing.T) {
	seen := make([]bool, 1000)
	ParallelRows(1000, 1<<30, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i] = true
		}
	})
	for i, s := range seen {
		if !s {
			t.Fatalf("row %d not covered", i)
		}
	}
}

func TestParallelRowsSmallInline(t *testing.T) {
	calls := 0
	ParallelRows(4, 10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 4 {
			t.Fatalf("expected single inline block, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
}

func BenchmarkMulSerial256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randMatrix(r, 256, 256)
	y := randMatrix(r, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}

func BenchmarkMulParallel256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randMatrix(r, 256, 256)
	y := randMatrix(r, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MulParallel(y)
	}
}
