// Persistent worker pool for row-blocked kernels. The old ParallelRows
// spawned a goroutine per block on every call, which is fine for one-shot
// design-time factorizations but wrong for the release hot path, where a
// dense matvec may run thousands of times per second: goroutine spawn and
// per-call closure allocation dominate. The pool parks a fixed set of
// workers on a channel once; each parallel call hands the same job object
// to up to poolWorkers() of them, and caller plus workers pull fixed-size
// row blocks off a shared atomic cursor (work stealing, so uneven blocks
// balance). Job and task objects are recycled through sync.Pools, keeping
// steady-state parallel matvecs allocation-free.

package linalg

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// rowTask is a unit of blocked work: runBlock processes rows [lo, hi).
// Implementations are plain structs (not closures) so hot-path callers can
// pool them.
type rowTask interface {
	runBlock(lo, hi int)
}

// rowJob is one parallel invocation: a task, a shared block cursor, and a
// wait group counting worker participations.
type rowJob struct {
	task  rowTask
	n     int
	block int
	next  atomic.Int64
	wg    sync.WaitGroup
}

// grab pulls blocks off the cursor until the range is exhausted.
func (j *rowJob) grab() {
	for {
		hi := int(j.next.Add(int64(j.block)))
		lo := hi - j.block
		if lo >= j.n {
			return
		}
		if hi > j.n {
			hi = j.n
		}
		j.task.runBlock(lo, hi)
	}
}

var (
	poolOnce sync.Once
	poolJobs chan *rowJob
	poolSize int

	jobPool = sync.Pool{New: func() any { return new(rowJob) }}
)

// startPool parks the helper workers. Pool size is fixed at first use:
// GOMAXPROCS-1 helpers (the caller is the remaining worker), but at least
// two so the handoff path stays exercised — and testable — on single-CPU
// machines, where the gate in runParallel keeps them idle.
func startPool() {
	poolOnce.Do(func() {
		poolSize = runtime.GOMAXPROCS(0) - 1
		if poolSize < 2 {
			poolSize = 2
		}
		poolJobs = make(chan *rowJob, poolSize)
		for i := 0; i < poolSize; i++ {
			go func() {
				for j := range poolJobs {
					j.grab()
					j.wg.Done()
				}
			}()
		}
	})
}

// runParallel runs the task over [0, n) in blocks of the given size, the
// caller working alongside up to helpers pool workers. Busy workers are
// skipped rather than waited for — the caller then just does more of the
// work itself. It never blocks on pool capacity and reuses job objects, so
// a steady-state call performs no allocation.
func runParallel(t rowTask, n, block, helpers int) {
	startPool()
	if block < 1 {
		block = 1
	}
	if max := (n + block - 1) / block; helpers > max-1 {
		helpers = max - 1 // no point waking more workers than blocks
	}
	if helpers > poolSize {
		helpers = poolSize
	}
	j := jobPool.Get().(*rowJob)
	j.task = t
	j.n = n
	j.block = block
	j.next.Store(0)
	j.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		select {
		case poolJobs <- j:
		default:
			j.wg.Done() // all workers busy: caller picks up the slack
		}
	}
	j.grab()
	j.wg.Wait()
	j.task = nil
	jobPool.Put(j)
}

// funcTask adapts a closure to rowTask for design-time callers that do not
// care about the allocation.
type funcTask struct{ f func(lo, hi int) }

func (t *funcTask) runBlock(lo, hi int) { t.f(lo, hi) }

// --- pooled dense matvec tasks ---

// denseMatvecThreshold is the flop count above which a dense matvec fans
// out across the pool. Below it the blocked single-thread kernel wins.
const denseMatvecThreshold = 1 << 18

// matvecRowBlock sizes row blocks so each holds on the order of 16k
// multiplies: big enough to amortize the cursor atomics, small enough that
// work stealing evens out scheduling noise and x stays hot in cache while
// a block streams its rows.
func matvecRowBlock(cols int) int {
	if cols <= 0 {
		return 1
	}
	b := 16384 / cols
	if b < 1 {
		b = 1
	}
	return b
}

// matvecTask is a pooled dense A·x task over row blocks.
type matvecTask struct {
	m   *Matrix
	dst []float64
	x   []float64
}

func (t *matvecTask) runBlock(lo, hi int) { t.m.mulVecRange(t.dst, t.x, lo, hi) }

// matvecTTask is a pooled dense Aᵀ·y task over column blocks: each block
// owns dst[lo:hi] and streams the matching column stripe of every row, so
// blocks write disjoint output and each dst[j] accumulates rows in the
// same order as the sequential kernel (results are bit-identical).
type matvecTTask struct {
	m   *Matrix
	dst []float64
	y   []float64
}

func (t *matvecTTask) runBlock(lo, hi int) { t.m.tMulVecRange(t.dst, t.y, lo, hi) }

var (
	matvecTaskPool  = sync.Pool{New: func() any { return new(matvecTask) }}
	matvecTTaskPool = sync.Pool{New: func() any { return new(matvecTTask) }}
)

// mulVecRange writes rows [lo, hi) of m·x into dst, four partial sums per
// row so the compiler can keep independent FMA chains in flight.
func (m *Matrix) mulVecRange(dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+4 <= len(row); j += 4 {
			s0 += row[j] * x[j]
			s1 += row[j+1] * x[j+1]
			s2 += row[j+2] * x[j+2]
			s3 += row[j+3] * x[j+3]
		}
		s := s0 + s1 + s2 + s3
		for ; j < len(row); j++ {
			s += row[j] * x[j]
		}
		dst[i] = s
	}
}

// tMulVecRange accumulates the column stripe [lo, hi) of mᵀ·y into
// dst[lo:hi], skipping zero weights like TMulVec.
func (m *Matrix) tMulVecRange(dst, y []float64, lo, hi int) {
	for j := lo; j < hi; j++ {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		a := y[i]
		if a == 0 {
			continue
		}
		row := m.data[i*m.cols+lo : i*m.cols+hi]
		out := dst[lo:hi]
		for j, b := range row {
			out[j] += a * b
		}
	}
}

// MulVecInto writes m·x into dst without allocating, fanning large
// products out across the worker pool.
func (m *Matrix) MulVecInto(dst, x []float64) {
	checkMulVecLen(m, len(x), m.cols, false)
	checkMulVecLen(m, len(dst), m.rows, false)
	work := m.rows * m.cols
	if helpers := runtime.GOMAXPROCS(0) - 1; helpers > 0 && work > denseMatvecThreshold && m.rows >= 2 {
		t := matvecTaskPool.Get().(*matvecTask)
		t.m, t.dst, t.x = m, dst, x
		runParallel(t, m.rows, matvecRowBlock(m.cols), helpers)
		t.m, t.dst, t.x = nil, nil, nil
		matvecTaskPool.Put(t)
		return
	}
	m.mulVecRange(dst, x, 0, m.rows)
}

// MulVecTInto writes mᵀ·y into dst without allocating, fanning large
// products out across the worker pool by column stripe.
func (m *Matrix) MulVecTInto(dst, y []float64) {
	checkMulVecLen(m, len(y), m.rows, true)
	checkMulVecLen(m, len(dst), m.cols, true)
	work := m.rows * m.cols
	if helpers := runtime.GOMAXPROCS(0) - 1; helpers > 0 && work > denseMatvecThreshold && m.cols >= 2 {
		t := matvecTTaskPool.Get().(*matvecTTask)
		t.m, t.dst, t.y = m, dst, y
		runParallel(t, m.cols, matvecRowBlock(m.rows), helpers)
		t.m, t.dst, t.y = nil, nil, nil
		matvecTTaskPool.Put(t)
		return
	}
	m.tMulVecRange(dst, y, 0, m.cols)
}
