// Write-into matvec variants: the allocation-free half of the Operator
// contract. Operator.MulVec must return freshly allocated output, which
// is the right default for design-time code but wrong for the release hot
// path, where the same mechanism answers the same-shaped product millions
// of times. IntoOperator is the optional extension that lets a
// representation write A·x into a caller-owned buffer; the MulVecInto /
// MulVecTInto helpers fall back to the allocating path (plus a copy) for
// operators that lack it, so callers can always work buffer-first.
//
// dst must not alias x (or y): implementations overwrite dst freely,
// including zeroing it before accumulation.

package linalg

// IntoOperator is implemented by operators whose matvecs can write into a
// caller-supplied buffer. Structured representations on the release hot
// path (Matrix, Sparse, Identity, Prefix, Intervals, BlockDiag and the
// cheap wrappers) implement it allocation-free; combinators that need an
// intermediate vector (Kron, Composed, RowPermuted) may still allocate
// internally but keep the caller's buffer discipline intact.
type IntoOperator interface {
	Operator
	// MulVecInto writes A·x into dst. len(dst) must be Rows(),
	// len(x) must be Cols(), and dst must not alias x.
	MulVecInto(dst, x []float64)
	// MulVecTInto writes Aᵀ·y into dst. len(dst) must be Cols(),
	// len(y) must be Rows(), and dst must not alias y.
	MulVecTInto(dst, y []float64)
}

// MulVecInto writes op·x into dst, using the IntoOperator fast path when
// the representation has one and falling back to MulVec plus a copy
// otherwise. It returns dst.
func MulVecInto(op Operator, dst, x []float64) []float64 {
	checkMulVecLen(op, len(dst), op.Rows(), false)
	if io, ok := op.(IntoOperator); ok {
		io.MulVecInto(dst, x)
		return dst
	}
	copy(dst, op.MulVec(x))
	return dst
}

// MulVecTInto writes opᵀ·y into dst, using the IntoOperator fast path
// when available and falling back to MulVecT plus a copy otherwise. It
// returns dst.
func MulVecTInto(op Operator, dst, y []float64) []float64 {
	checkMulVecLen(op, len(dst), op.Cols(), true)
	if io, ok := op.(IntoOperator); ok {
		io.MulVecTInto(dst, y)
		return dst
	}
	copy(dst, op.MulVecT(y))
	return dst
}

// --- Sparse ---

// MulVecInto writes A·x into dst in O(nnz) without allocating.
func (s *Sparse) MulVecInto(dst, x []float64) {
	checkMulVecLen(s, len(x), s.cols, false)
	checkMulVecLen(s, len(dst), s.rows, false)
	for i := 0; i < s.rows; i++ {
		var acc float64
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			acc += s.val[k] * x[s.colIdx[k]]
		}
		dst[i] = acc
	}
}

// MulVecTInto writes Aᵀ·y into dst in O(nnz) without allocating.
func (s *Sparse) MulVecTInto(dst, y []float64) {
	checkMulVecLen(s, len(y), s.rows, true)
	checkMulVecLen(s, len(dst), s.cols, true)
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < s.rows; i++ {
		v := y[i]
		if v == 0 {
			continue
		}
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			dst[s.colIdx[k]] += v * s.val[k]
		}
	}
}

// --- Identity ---

// MulVecInto copies x into dst.
func (o *IdentityOp) MulVecInto(dst, x []float64) {
	checkMulVecLen(o, len(x), o.n, false)
	checkMulVecLen(o, len(dst), o.n, false)
	copy(dst, x)
}

// MulVecTInto copies y into dst.
func (o *IdentityOp) MulVecTInto(dst, y []float64) {
	checkMulVecLen(o, len(y), o.n, true)
	checkMulVecLen(o, len(dst), o.n, true)
	copy(dst, y)
}

// --- Prefix ---

// MulVecInto writes the running sums of x into dst.
func (o *PrefixOp) MulVecInto(dst, x []float64) {
	checkMulVecLen(o, len(x), o.n, false)
	checkMulVecLen(o, len(dst), o.n, false)
	var s float64
	for i, v := range x {
		s += v
		dst[i] = s
	}
}

// MulVecTInto writes the reverse running sums of y into dst.
func (o *PrefixOp) MulVecTInto(dst, y []float64) {
	checkMulVecLen(o, len(y), o.n, true)
	checkMulVecLen(o, len(dst), o.n, true)
	var s float64
	for j := o.n - 1; j >= 0; j-- {
		s += y[j]
		dst[j] = s
	}
}

// --- Intervals ---

// MulVecInto answers every interval query into dst without the prefix
// array: each lo keeps a running sum over hi, so the values accumulate in
// ascending-cell order (MulVec differences two prefix sums instead and may
// round differently in the last bit).
func (o *IntervalsOp) MulVecInto(dst, x []float64) {
	checkMulVecLen(o, len(x), o.d, false)
	checkMulVecLen(o, len(dst), o.Rows(), false)
	r := 0
	for lo := 0; lo < o.d; lo++ {
		var s float64
		for hi := lo; hi < o.d; hi++ {
			s += x[hi]
			dst[r] = s
			r++
		}
	}
}

// MulVecTInto scatters each interval weight onto its cells via a
// difference array kept inside dst itself: the d+1-th difference cell is
// never read by the prefix pass, so dst[0:d] suffices, and the prefix pass
// reads each dst[j] before overwriting it.
func (o *IntervalsOp) MulVecTInto(dst, y []float64) {
	checkMulVecLen(o, len(y), o.Rows(), true)
	checkMulVecLen(o, len(dst), o.d, true)
	for j := range dst {
		dst[j] = 0
	}
	r := 0
	for lo := 0; lo < o.d; lo++ {
		for hi := lo; hi < o.d; hi++ {
			v := y[r]
			r++
			if v == 0 {
				continue
			}
			dst[lo] += v
			if hi+1 < o.d {
				dst[hi+1] -= v
			}
		}
	}
	var s float64
	for j := 0; j < o.d; j++ {
		s += dst[j]
		dst[j] = s
	}
}

// --- Structural combinators ---

// MulVecInto applies each part into its slice of dst; allocation-free when
// every part is.
func (o *StackOp) MulVecInto(dst, x []float64) {
	checkMulVecLen(o, len(x), o.cols, false)
	checkMulVecLen(o, len(dst), o.rows, false)
	at := 0
	for _, p := range o.parts {
		MulVecInto(p, dst[at:at+p.Rows()], x)
		at += p.Rows()
	}
}

// MulVecTInto accumulates the parts' transposed products. The first part
// writes dst directly; later parts go through a temporary (one allocation
// per call when there are two or more parts).
func (o *StackOp) MulVecTInto(dst, y []float64) {
	checkMulVecLen(o, len(y), o.rows, true)
	checkMulVecLen(o, len(dst), o.cols, true)
	at := 0
	var tmp []float64
	for i, p := range o.parts {
		if i == 0 {
			MulVecTInto(p, dst, y[at:at+p.Rows()])
		} else {
			if tmp == nil {
				tmp = make([]float64, o.cols)
			}
			MulVecTInto(p, tmp, y[at:at+p.Rows()])
			for j, v := range tmp {
				dst[j] += v
			}
		}
		at += p.Rows()
	}
}

// MulVecInto applies each block into its slices of dst and x;
// allocation-free when every part is.
func (o *BlockDiagOp) MulVecInto(dst, x []float64) {
	checkMulVecLen(o, len(x), o.cols, false)
	checkMulVecLen(o, len(dst), o.rows, false)
	atR, atC := 0, 0
	for _, p := range o.parts {
		MulVecInto(p, dst[atR:atR+p.Rows()], x[atC:atC+p.Cols()])
		atR += p.Rows()
		atC += p.Cols()
	}
}

// MulVecTInto applies each block's transpose into its slices of dst and y;
// allocation-free when every part is.
func (o *BlockDiagOp) MulVecTInto(dst, y []float64) {
	checkMulVecLen(o, len(y), o.rows, true)
	checkMulVecLen(o, len(dst), o.cols, true)
	atR, atC := 0, 0
	for _, p := range o.parts {
		MulVecTInto(p, dst[atC:atC+p.Cols()], y[atR:atR+p.Rows()])
		atR += p.Rows()
		atC += p.Cols()
	}
}

// MulVecInto writes s·(A x) into dst.
func (o *ScaledOp) MulVecInto(dst, x []float64) {
	MulVecInto(o.base, dst, x)
	for i := range dst {
		dst[i] *= o.s
	}
}

// MulVecTInto writes s·(Aᵀ y) into dst.
func (o *ScaledOp) MulVecTInto(dst, y []float64) {
	MulVecTInto(o.base, dst, y)
	for i := range dst {
		dst[i] *= o.s
	}
}

// MulVecInto writes diag(scale)·(A x) into dst.
func (o *RowScaledOp) MulVecInto(dst, x []float64) {
	MulVecInto(o.base, dst, x)
	for i := range dst {
		dst[i] *= o.scale[i]
	}
}

// MulVecTInto writes Aᵀ·(diag(scale) y) into dst; it allocates the scaled
// copy of y (the base transpose cannot see dst as its input).
func (o *RowScaledOp) MulVecTInto(dst, y []float64) {
	checkMulVecLen(o, len(y), o.Rows(), true)
	scaled := make([]float64, len(y))
	for i, v := range y {
		scaled[i] = v * o.scale[i]
	}
	MulVecTInto(o.base, dst, scaled)
}

// MulVecInto delegates to the wrapped operator's fast path.
func (o *NormedOp) MulVecInto(dst, x []float64) { MulVecInto(o.Operator, dst, x) }

// MulVecTInto delegates to the wrapped operator's fast path.
func (o *NormedOp) MulVecTInto(dst, y []float64) { MulVecTInto(o.Operator, dst, y) }

// MulVecInto computes the base product and gathers the selected rows; it
// allocates the base-sized intermediate.
func (o *RowPermutedOp) MulVecInto(dst, x []float64) {
	checkMulVecLen(o, len(dst), len(o.perm), false)
	if _, ok := o.base.(*IdentityOp); ok {
		// An identity base's product is a bit-exact copy of x, so gather
		// straight from x — row selections (shard projections) answer
		// allocation-free.
		checkMulVecLen(o, len(x), o.base.Cols(), false)
		for i, p := range o.perm {
			dst[i] = x[p]
		}
		return
	}
	full := o.base.MulVec(x)
	for i, p := range o.perm {
		dst[i] = full[p]
	}
}

// MulVecTInto scatters y into base row positions and applies the base
// transpose; it allocates the base-sized intermediate.
func (o *RowPermutedOp) MulVecTInto(dst, y []float64) {
	checkMulVecLen(o, len(y), len(o.perm), true)
	full := make([]float64, o.base.Rows())
	for i, p := range o.perm {
		full[p] += y[i]
	}
	MulVecTInto(o.base, dst, full)
}

// MulVecInto applies inner then outer through an allocated intermediate of
// inner.Rows() values.
func (o *ComposedOp) MulVecInto(dst, x []float64) {
	mid := make([]float64, o.inner.Rows())
	MulVecInto(o.inner, mid, x)
	MulVecInto(o.outer, dst, mid)
}

// MulVecTInto applies outerᵀ then innerᵀ through an allocated intermediate.
func (o *ComposedOp) MulVecTInto(dst, y []float64) {
	mid := make([]float64, o.outer.Cols())
	MulVecTInto(o.outer, mid, y)
	MulVecTInto(o.inner, dst, mid)
}

// Compile-time checks that the hot-path representations implement the
// write-into extension.
var _ = []IntoOperator{
	(*Matrix)(nil),
	(*Sparse)(nil),
	(*IdentityOp)(nil),
	(*PrefixOp)(nil),
	(*IntervalsOp)(nil),
	(*StackOp)(nil),
	(*BlockDiagOp)(nil),
	(*ScaledOp)(nil),
	(*RowScaledOp)(nil),
	(*RowPermutedOp)(nil),
	(*NormedOp)(nil),
	(*ComposedOp)(nil),
}
