package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	eg, err := SymEigen(Diag([]float64{3, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, v := range eg.Values {
		if math.Abs(v-want[i]) > 1e-12 {
			t.Fatalf("Values = %v, want %v", eg.Values, want)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	eg, err := SymEigen(NewFromRows([][]float64{{2, 1}, {1, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eg.Values[0]-3) > 1e-12 || math.Abs(eg.Values[1]-1) > 1e-12 {
		t.Fatalf("Values = %v", eg.Values)
	}
	// Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
	v := eg.Vectors.Row(0)
	if math.Abs(math.Abs(v[0])-math.Sqrt2/2) > 1e-12 || math.Abs(v[0]-v[1]) > 1e-12 {
		t.Fatalf("leading eigenvector = %v", v)
	}
}

func TestSymEigenReconstruct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randSPD(r, n)
		eg, err := SymEigen(a)
		if err != nil {
			return false
		}
		return eg.Reconstruct().Equal(a, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigenOrthonormalVectors(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		a := randSPD(r, n)
		eg, err := SymEigen(a)
		if err != nil {
			return false
		}
		// Rows of Vectors must be orthonormal: V Vᵀ = I.
		return eg.Vectors.Mul(eg.Vectors.T()).Equal(Identity(n), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigenSortedDescending(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	a := randSPD(r, 12)
	eg, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(eg.Values); i++ {
		if eg.Values[i] > eg.Values[i-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", eg.Values)
		}
	}
}

func TestSymEigenTraceInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(9)
		a := randSPD(r, n)
		eg, err := SymEigen(a)
		if err != nil {
			return false
		}
		var s float64
		for _, v := range eg.Values {
			s += v
		}
		return math.Abs(s-a.Trace()) < 1e-8*(1+math.Abs(a.Trace()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigenEigenEquation(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	a := randSPD(r, 9)
	eg, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for i, lam := range eg.Values {
		v := eg.Vectors.Row(i)
		av := a.MulVec(v)
		for j := range av {
			if math.Abs(av[j]-lam*v[j]) > 1e-8 {
				t.Fatalf("A v != λ v for pair %d", i)
			}
		}
	}
}

func TestSymEigenEmptyAndOne(t *testing.T) {
	eg, err := SymEigen(New(0, 0))
	if err != nil || len(eg.Values) != 0 {
		t.Fatalf("empty eigen: %v %v", eg, err)
	}
	eg, err = SymEigen(NewFromRows([][]float64{{5}}))
	if err != nil || math.Abs(eg.Values[0]-5) > 1e-14 {
		t.Fatalf("1x1 eigen: %v %v", eg, err)
	}
}

func TestSymEigenRepeatedEigenvalues(t *testing.T) {
	// Identity has all eigenvalues 1; vectors must still be orthonormal.
	eg, err := SymEigen(Identity(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range eg.Values {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("Values = %v", eg.Values)
		}
	}
	if !eg.Vectors.Mul(eg.Vectors.T()).Equal(Identity(6), 1e-10) {
		t.Fatal("vectors not orthonormal for repeated eigenvalues")
	}
}

func TestRank(t *testing.T) {
	// Gram of a rank-2 matrix.
	a := NewFromRows([][]float64{{1, 0, 0}, {0, 1, 0}, {1, 1, 0}})
	eg, err := SymEigen(a.Gram())
	if err != nil {
		t.Fatal(err)
	}
	if r := eg.Rank(1e-9); r != 2 {
		t.Fatalf("Rank = %d, want 2", r)
	}
	zero, _ := SymEigen(New(3, 3))
	if r := zero.Rank(1e-9); r != 0 {
		t.Fatalf("Rank of zero = %d", r)
	}
}

func TestPseudoInverseSymProperties(t *testing.T) {
	// For PSD a: a a⁺ a = a and a⁺ a a⁺ = a⁺.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		// Rank-deficient PSD: Gram of a wide matrix.
		b := randMatrix(r, n-1, n)
		a := b.Gram()
		p, err := PseudoInverseSym(a, 1e-10)
		if err != nil {
			return false
		}
		return a.Mul(p).Mul(a).Equal(a, 1e-7) && p.Mul(a).Mul(p).Equal(p, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPseudoInverseFullColumnRank(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	a := randMatrix(r, 8, 4)
	p, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	// A⁺A = I for full column rank.
	if !p.Mul(a).Equal(Identity(4), 1e-8) {
		t.Fatal("A⁺A != I")
	}
}

func TestPseudoInverseMoorePenrose(t *testing.T) {
	// Rank-deficient A: check the four Moore-Penrose conditions.
	a := NewFromRows([][]float64{{1, 2, 3}, {2, 4, 6}, {0, 1, 1}})
	p, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	ap := a.Mul(p)
	pa := p.Mul(a)
	if !a.Mul(pa).Equal(a, 1e-8) {
		t.Fatal("A A⁺ A != A")
	}
	if !p.Mul(ap).Equal(p, 1e-8) {
		t.Fatal("A⁺ A A⁺ != A⁺")
	}
	if !ap.Equal(ap.T(), 1e-8) {
		t.Fatal("A A⁺ not symmetric")
	}
	if !pa.Equal(pa.T(), 1e-8) {
		t.Fatal("A⁺ A not symmetric")
	}
}

func TestSymEigenModerateSize(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := rand.New(rand.NewSource(31))
	a := randSPD(r, 64)
	eg, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !eg.Reconstruct().Equal(a, 1e-7) {
		t.Fatal("reconstruction failed at n=64")
	}
}
