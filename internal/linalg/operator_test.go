package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randVec returns a deterministic random vector.
func randVec(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func vecsClose(t *testing.T, got, want []float64, tol float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	var scale float64
	for _, v := range want {
		scale += v * v
	}
	scale = 1 + math.Sqrt(scale)
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol*scale {
			t.Fatalf("%s: entry %d = %g, want %g", label, i, got[i], want[i])
		}
	}
}

// checkOperatorAgainstDense verifies MulVec, MulVecT, Gram and column
// norms of op against its dense materialization.
func checkOperatorAgainstDense(t *testing.T, op Operator, seed int64, label string) {
	t.Helper()
	dense := ToDense(op)
	if dense.Rows() != op.Rows() || dense.Cols() != op.Cols() {
		t.Fatalf("%s: dense is %dx%d, operator claims %dx%d", label, dense.Rows(), dense.Cols(), op.Rows(), op.Cols())
	}
	r := rand.New(rand.NewSource(seed))
	x := randVec(r, op.Cols())
	y := randVec(r, op.Rows())
	vecsClose(t, op.MulVec(x), dense.MulVec(x), 1e-11, label+" MulVec")
	vecsClose(t, op.MulVecT(y), dense.TMulVec(y), 1e-11, label+" MulVecT")
	vecsClose(t, OperatorColNorms2(op), dense.ColNorms2(), 1e-11, label+" ColNorms2")
	vecsClose(t, OperatorColNormsL1(op), dense.ColNormsL1(), 1e-11, label+" ColNormsL1")
	g := OperatorGram(op)
	gd := dense.Gram()
	if !g.Equal(gd, 1e-9*(1+gd.FrobeniusNorm())) {
		t.Fatalf("%s: Gram mismatch", label)
	}
}

func TestIdentityOp(t *testing.T) {
	checkOperatorAgainstDense(t, Eye(7), 1, "Eye(7)")
}

func TestPrefixOp(t *testing.T) {
	op := NewPrefixOp(9)
	checkOperatorAgainstDense(t, op, 2, "Prefix(9)")
	// Dense prefix matrix is lower-triangular ones.
	d := ToDense(op)
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			want := 0.0
			if j <= i {
				want = 1
			}
			if d.At(i, j) != want {
				t.Fatalf("prefix(%d,%d) = %g", i, j, d.At(i, j))
			}
		}
	}
}

func TestIntervalsOp(t *testing.T) {
	for _, d := range []int{1, 2, 5, 8} {
		op := NewIntervalsOp(d)
		if op.Rows() != d*(d+1)/2 {
			t.Fatalf("Intervals(%d) rows = %d", d, op.Rows())
		}
		checkOperatorAgainstDense(t, op, int64(d), "Intervals")
		// Every dense row is a contiguous block of ones.
		m := ToDense(op)
		r := 0
		for lo := 0; lo < d; lo++ {
			for hi := lo; hi < d; hi++ {
				for j := 0; j < d; j++ {
					want := 0.0
					if j >= lo && j <= hi {
						want = 1
					}
					if m.At(r, j) != want {
						t.Fatalf("interval row (%d,%d) col %d = %g", lo, hi, j, m.At(r, j))
					}
				}
				r++
			}
		}
	}
}

func TestSparseOp(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	dense := randMatrix(r, 12, 7)
	// Zero out ~half the entries.
	for i := range dense.data {
		if r.Intn(2) == 0 {
			dense.data[i] = 0
		}
	}
	sp := SparseFromMatrix(dense)
	checkOperatorAgainstDense(t, sp, 4, "Sparse")
	if !ToDense(sp).Equal(dense, 0) {
		t.Fatal("Sparse round-trip changed values")
	}
}

func TestSparseBuilderRangeRow(t *testing.T) {
	b := NewSparseBuilder(5)
	b.AppendRangeRow(1, 3, 2)
	b.AppendConstRow([]int{0, 4}, -1)
	sp := b.Build()
	d := ToDense(sp)
	want := NewFromRows([][]float64{{0, 2, 2, 2, 0}, {-1, 0, 0, 0, -1}})
	if !d.Equal(want, 0) {
		t.Fatalf("builder rows wrong:\n%v", d)
	}
}

func TestKronOp(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randMatrix(r, 3, 4)
	b := randMatrix(r, 2, 5)
	c := randMatrix(r, 4, 2)
	op := NewKronOp(a, b, c)
	dense := KroneckerAll(a, b, c)
	if !ToDense(op).Equal(dense, 1e-10) {
		t.Fatal("KronOp dense mismatch")
	}
	checkOperatorAgainstDense(t, op, 6, "Kron(dense,dense,dense)")
}

func TestKronOpMixedFactors(t *testing.T) {
	op := NewKronOp(NewIntervalsOp(3), Eye(2), NewPrefixOp(3))
	checkOperatorAgainstDense(t, op, 7, "Kron(intervals,eye,prefix)")
}

func TestStackScalePermuteOps(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := randMatrix(r, 4, 6)
	b := randMatrix(r, 3, 6)
	st := StackOps(a, b)
	wantStack := StackRows(a, b)
	if !ToDense(st).Equal(wantStack, 1e-12) {
		t.Fatal("StackOps mismatch")
	}
	checkOperatorAgainstDense(t, st, 9, "Stack")

	checkOperatorAgainstDense(t, ScaleOp(a, -2.5), 10, "Scale")

	scale := randVec(r, 7)
	checkOperatorAgainstDense(t, ScaleRows(st, scale), 11, "ScaleRows")

	perm := []int{6, 0, 3, 3, 1}
	pr := PermuteRows(st, perm)
	prDense := ToDense(pr)
	for i, p := range perm {
		for j := 0; j < 6; j++ {
			if prDense.At(i, j) != wantStack.At(p, j) {
				t.Fatalf("PermuteRows row %d != base row %d", i, p)
			}
		}
	}
	checkOperatorAgainstDense(t, pr, 12, "PermuteRows")
}

func TestScaledOpDoesNotMutateBaseNorms(t *testing.T) {
	base := WithColNorms(Eye(3), []float64{1, 2, 3}, []float64{1, 2, 3})
	s := ScaleOp(base, 2)
	first := MaxColNorm2Op(s)
	second := MaxColNorm2Op(s)
	if first != second {
		t.Fatalf("repeated sensitivity reads differ: %g vs %g", first, second)
	}
	if cn := base.ColNorms2(); cn[0] != 1 || cn[2] != 3 {
		t.Fatalf("base norm cache corrupted: %v", cn)
	}
	if l1 := MaxColNormL1Op(s); MaxColNormL1Op(s) != l1 {
		t.Fatal("repeated L1 sensitivity reads differ")
	}
}

func TestWithColNorms(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a := randMatrix(r, 5, 4)
	cn2 := a.ColNorms2()
	op := WithColNorms(a, cn2, nil)
	vecsClose(t, OperatorColNorms2(op), cn2, 0, "attached norms")
	vecsClose(t, OperatorColNormsL1(op), a.ColNormsL1(), 1e-12, "fallback L1 norms")
	checkOperatorAgainstDense(t, op, 14, "WithColNorms")
}

func TestKronEigenFactoredMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	mk := func(d int) *EigenSym {
		m := randMatrix(r, d, d)
		eg, err := SymEigen(m.Gram()) // SPD-ish symmetric input
		if err != nil {
			t.Fatal(err)
		}
		return eg
	}
	e1, e2 := mk(3), mk(4)
	dense := KronEigen(e1, e2)
	fact := KronEigenFactored(e1, e2)
	vecsClose(t, fact.Values, dense.Values, 1e-12, "factored eigenvalues")
	for i := 0; i < fact.N(); i++ {
		vecsClose(t, fact.Row(i), dense.Vectors.Row(i), 1e-12, "factored row")
	}
	qd := ToDense(fact.VectorsOperator())
	if !qd.Equal(dense.Vectors, 1e-12) {
		t.Fatal("VectorsOperator mismatch")
	}
}

func TestSolveCGLSMatchesPseudoInverse(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	for trial := 0; trial < 5; trial++ {
		n := 5 + r.Intn(20)
		m := n + r.Intn(2*n)
		a := randMatrix(r, m, n)
		pinv, err := PseudoInverse(a)
		if err != nil {
			t.Fatal(err)
		}
		b := randVec(r, m)
		want := pinv.MulVec(b)
		got, err := SolveCGLS(a, b, CGOptions{})
		if err != nil {
			t.Fatal(err)
		}
		vecsClose(t, got, want, 1e-9, "CGLS vs pinv")
	}
}

func TestSolveCGLSRankDeficientMinNorm(t *testing.T) {
	// Rank-1 matrix: the min-norm least-squares solution is what the
	// pseudo-inverse produces; CGLS from x0=0 must agree.
	a := NewFromRows([][]float64{{1, 2, 3}, {2, 4, 6}})
	pinv, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 5}
	want := pinv.MulVec(b)
	got, err := SolveCGLS(a, b, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vecsClose(t, got, want, 1e-10, "rank-deficient CGLS")
}

func TestSolveNormalCG(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	a := randMatrix(r, 12, 6)
	g := a.Gram()
	x := randVec(r, 6)
	b := g.MulVec(x)
	got, err := SolveNormalCG(a, b, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vecsClose(t, got, x, 1e-8, "normal CG")
}
