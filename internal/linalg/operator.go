// Operator abstraction: matrix-free linear operators.
//
// Historically every layer of this repository bottomed out in the dense
// row-major Matrix, which caps the reachable domain size at a few thousand
// cells (O(n²) memory, O(n³) factorizations). The Operator interface makes
// the representation a pluggable choice: a query workload, a strategy, or a
// Gram matrix can be a dense Matrix, a CSR Sparse matrix, an analytic
// structured form (Identity, Prefix, Intervals), or a Kronecker product of
// any of these — and the mechanism runtime only ever needs matrix-vector
// products (see SolveCGLS for the matrix-free least-squares inference that
// replaces the dense pseudo-inverse past small n).
//
// Representation guide:
//
//   - *Matrix — explicit rows. Right for small or unstructured operators;
//     the only form that supports the dense factorizations (LU, Cholesky,
//     SymEigen, PseudoInverse).
//   - *Sparse — CSR. Right for tree/hierarchical strategies and other
//     operators with few nonzeros per row.
//   - Eye, NewPrefixOp, NewIntervalsOp — O(1)-memory analytic forms with
//     O(rows) matvecs and closed-form Gram matrices / column norms.
//   - NewKronOp — Kronecker product of per-dimension operators; the
//     workhorse for multi-dimensional workloads (a multi-dimensional range
//     is the product of per-dimension intervals).
//   - StackOps, ScaleRows, PermuteRows, ScaleOp — structural combinators
//     used to assemble strategies (weighting, completion) without
//     materializing them.
//
// Optional capability interfaces (Grammer, ColNorms2er, ColNormsL1er) let a
// representation expose analytic shortcuts; the OperatorGram /
// OperatorColNorms2 / OperatorColNormsL1 helpers fall back to probing the
// operator with basis vectors when a shortcut is missing.

package linalg

import (
	"fmt"
	"math"
)

// MaterializeCap is the shared budget, in matrix entries (rows × cols),
// above which the package's consumers refuse to materialize a structured
// operator or workload as a dense Matrix. It bounds transparent
// conversions only — matrix-free answering has no size cap.
const MaterializeCap = 8 << 20

// Operator is a real linear map R^cols → R^rows presented through
// matrix-vector products. Implementations must not retain or modify the
// input slice and must return freshly allocated output.
type Operator interface {
	// Rows returns the output dimension m.
	Rows() int
	// Cols returns the input dimension n.
	Cols() int
	// MulVec returns A·x. It panics if len(x) != Cols().
	MulVec(x []float64) []float64
	// MulVecT returns Aᵀ·y. It panics if len(y) != Rows().
	MulVecT(y []float64) []float64
}

// Grammer is implemented by operators that can produce their dense Gram
// matrix AᵀA analytically (or at least cheaply).
type Grammer interface {
	Gram() *Matrix
}

// ColNorms2er is implemented by operators that know their squared L2 column
// norms (the diagonal of AᵀA) without materializing anything.
type ColNorms2er interface {
	ColNorms2() []float64
}

// ColNormsL1er is implemented by operators that know their L1 column norms.
type ColNormsL1er interface {
	ColNormsL1() []float64
}

// MulVecT returns mᵀ·y; it makes *Matrix satisfy Operator (the dense
// representation). It is TMulVec under the Operator spelling.
func (m *Matrix) MulVecT(y []float64) []float64 { return m.TMulVec(y) }

// ToDense materializes an operator as a dense Matrix by probing it with
// basis vectors (one MulVec per column). The dense representation itself is
// returned unchanged. Use only when rows*cols is affordable.
func ToDense(op Operator) *Matrix {
	if m, ok := op.(*Matrix); ok {
		return m
	}
	rows, cols := op.Rows(), op.Cols()
	out := New(rows, cols)
	e := make([]float64, cols)
	for j := 0; j < cols; j++ {
		e[j] = 1
		col := op.MulVec(e)
		e[j] = 0
		for i, v := range col {
			out.data[i*cols+j] = v
		}
	}
	return out
}

// OperatorGram returns the dense Gram matrix AᵀA of an operator, using the
// Grammer shortcut when available and basis-vector probing otherwise
// (cols MulVec/MulVecT pairs). Dense matrices use the blocked GramParallel.
func OperatorGram(op Operator) *Matrix {
	if m, ok := op.(*Matrix); ok {
		return m.GramParallel()
	}
	if g, ok := op.(Grammer); ok {
		return g.Gram()
	}
	n := op.Cols()
	out := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col := op.MulVecT(op.MulVec(e))
		e[j] = 0
		for i, v := range col {
			out.data[i*n+j] = v
		}
	}
	return out
}

// OperatorColNorms2 returns the squared L2 column norms of an operator,
// via the ColNorms2er / Grammer shortcuts or by probing columns.
func OperatorColNorms2(op Operator) []float64 {
	if m, ok := op.(*Matrix); ok {
		return m.ColNorms2()
	}
	if c, ok := op.(ColNorms2er); ok {
		return c.ColNorms2()
	}
	if g, ok := op.(Grammer); ok {
		gm := g.Gram()
		out := make([]float64, gm.Cols())
		for j := range out {
			out[j] = gm.At(j, j)
		}
		return out
	}
	n := op.Cols()
	out := make([]float64, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col := op.MulVec(e)
		e[j] = 0
		var s float64
		for _, v := range col {
			s += v * v
		}
		out[j] = s
	}
	return out
}

// OperatorColNormsL1 returns the L1 column norms of an operator, via the
// ColNormsL1er shortcut or by probing columns.
func OperatorColNormsL1(op Operator) []float64 {
	if m, ok := op.(*Matrix); ok {
		return m.ColNormsL1()
	}
	if c, ok := op.(ColNormsL1er); ok {
		return c.ColNormsL1()
	}
	n := op.Cols()
	out := make([]float64, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col := op.MulVec(e)
		e[j] = 0
		var s float64
		for _, v := range col {
			s += abs64(v)
		}
		out[j] = s
	}
	return out
}

// MaxColNorm2Op returns the L2 sensitivity ‖A‖₂ of an operator.
func MaxColNorm2Op(op Operator) float64 {
	var best float64
	for _, s := range OperatorColNorms2(op) {
		if s > best {
			best = s
		}
	}
	return sqrtNonNeg(best)
}

// MaxColNormL1Op returns the L1 sensitivity ‖A‖₁ of an operator.
func MaxColNormL1Op(op Operator) float64 {
	var best float64
	for _, v := range OperatorColNormsL1(op) {
		if v > best {
			best = v
		}
	}
	return best
}

func checkMulVecLen(op Operator, got, want int, transposed bool) {
	if got != want {
		dir := "MulVec"
		if transposed {
			dir = "MulVecT"
		}
		panic(fmt.Sprintf("linalg: %s length %d, want %d (%dx%d operator)", dir, got, want, op.Rows(), op.Cols()))
	}
}

// --- Identity ---

// IdentityOp is the n×n identity as an O(1)-memory operator.
type IdentityOp struct{ n int }

// Eye returns the n×n identity operator.
func Eye(n int) *IdentityOp { return &IdentityOp{n: n} }

// Rows returns n.
func (o *IdentityOp) Rows() int { return o.n }

// Cols returns n.
func (o *IdentityOp) Cols() int { return o.n }

// MulVec returns a copy of x.
func (o *IdentityOp) MulVec(x []float64) []float64 {
	checkMulVecLen(o, len(x), o.n, false)
	return append([]float64(nil), x...)
}

// MulVecT returns a copy of y.
func (o *IdentityOp) MulVecT(y []float64) []float64 {
	checkMulVecLen(o, len(y), o.n, true)
	return append([]float64(nil), y...)
}

// Gram returns the identity matrix.
func (o *IdentityOp) Gram() *Matrix { return Identity(o.n) }

// ColNorms2 returns all ones.
func (o *IdentityOp) ColNorms2() []float64 { return onesVec(o.n) }

// ColNormsL1 returns all ones.
func (o *IdentityOp) ColNormsL1() []float64 { return onesVec(o.n) }

// --- Prefix ---

// PrefixOp is the n×n lower-triangular all-ones matrix: query i sums cells
// 0..i (the CDF workload). Matvecs are O(n) running sums.
type PrefixOp struct{ n int }

// NewPrefixOp returns the n-cell prefix-sum (CDF) operator.
func NewPrefixOp(n int) *PrefixOp { return &PrefixOp{n: n} }

// Rows returns n.
func (o *PrefixOp) Rows() int { return o.n }

// Cols returns n.
func (o *PrefixOp) Cols() int { return o.n }

// MulVec returns the running sums of x.
func (o *PrefixOp) MulVec(x []float64) []float64 {
	checkMulVecLen(o, len(x), o.n, false)
	out := make([]float64, o.n)
	var s float64
	for i, v := range x {
		s += v
		out[i] = s
	}
	return out
}

// MulVecT returns the reverse running sums of y: cell j is counted by
// queries j..n-1.
func (o *PrefixOp) MulVecT(y []float64) []float64 {
	checkMulVecLen(o, len(y), o.n, true)
	out := make([]float64, o.n)
	var s float64
	for j := o.n - 1; j >= 0; j-- {
		s += y[j]
		out[j] = s
	}
	return out
}

// Gram returns the analytic Gram matrix: G_ij = n − max(i,j).
func (o *PrefixOp) Gram() *Matrix {
	g := New(o.n, o.n)
	for i := 0; i < o.n; i++ {
		row := g.Row(i)
		for j := range row {
			m := i
			if j > m {
				m = j
			}
			row[j] = float64(o.n - m)
		}
	}
	return g
}

// ColNorms2 returns n−j for column j.
func (o *PrefixOp) ColNorms2() []float64 {
	out := make([]float64, o.n)
	for j := range out {
		out[j] = float64(o.n - j)
	}
	return out
}

// ColNormsL1 equals ColNorms2 for a 0/1 matrix.
func (o *PrefixOp) ColNormsL1() []float64 { return o.ColNorms2() }

// --- Intervals (1-D all-range) ---

// IntervalsOp is the d(d+1)/2 × d matrix of all contiguous interval sums
// [lo,hi] over d cells, rows ordered lo-major then hi ascending (matching
// the explicit all-range construction). Matvecs run in O(rows) via prefix
// sums and difference arrays — the full matrix, with O(d³) nonzeros, is
// never formed.
type IntervalsOp struct{ d int }

// NewIntervalsOp returns the 1-D all-range operator over d cells.
func NewIntervalsOp(d int) *IntervalsOp { return &IntervalsOp{d: d} }

// Rows returns d(d+1)/2.
func (o *IntervalsOp) Rows() int { return o.d * (o.d + 1) / 2 }

// Cols returns d.
func (o *IntervalsOp) Cols() int { return o.d }

// MulVec answers every interval query via prefix sums.
func (o *IntervalsOp) MulVec(x []float64) []float64 {
	checkMulVecLen(o, len(x), o.d, false)
	prefix := make([]float64, o.d+1) // prefix[i] = Σ x[:i]
	for i, v := range x {
		prefix[i+1] = prefix[i] + v
	}
	out := make([]float64, o.Rows())
	r := 0
	for lo := 0; lo < o.d; lo++ {
		p := prefix[lo]
		for hi := lo; hi < o.d; hi++ {
			out[r] = prefix[hi+1] - p
			r++
		}
	}
	return out
}

// MulVecT scatters each interval weight onto its cells via a difference
// array, in O(rows + d).
func (o *IntervalsOp) MulVecT(y []float64) []float64 {
	checkMulVecLen(o, len(y), o.Rows(), true)
	diff := make([]float64, o.d+1)
	r := 0
	for lo := 0; lo < o.d; lo++ {
		for hi := lo; hi < o.d; hi++ {
			v := y[r]
			r++
			if v == 0 {
				continue
			}
			diff[lo] += v
			diff[hi+1] -= v
		}
	}
	out := make([]float64, o.d)
	var s float64
	for j := 0; j < o.d; j++ {
		s += diff[j]
		out[j] = s
	}
	return out
}

// Gram returns the analytic Gram matrix: entry (i,j) counts intervals
// containing both cells, (min(i,j)+1)·(d−max(i,j)).
func (o *IntervalsOp) Gram() *Matrix {
	d := o.d
	g := New(d, d)
	for i := 0; i < d; i++ {
		row := g.Row(i)
		for j := range row {
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			row[j] = float64((lo + 1) * (d - hi))
		}
	}
	return g
}

// ColNorms2 returns (j+1)(d−j): the number of intervals covering cell j.
func (o *IntervalsOp) ColNorms2() []float64 {
	out := make([]float64, o.d)
	for j := range out {
		out[j] = float64((j + 1) * (o.d - j))
	}
	return out
}

// ColNormsL1 equals ColNorms2 for a 0/1 matrix.
func (o *IntervalsOp) ColNormsL1() []float64 { return o.ColNorms2() }

// --- Structural combinators ---

// StackOp is the vertical concatenation of operators over the same column
// space.
type StackOp struct {
	parts []Operator
	rows  int
	cols  int
}

// StackOps stacks the rows of the given operators, in order. All parts must
// share the same Cols. A single part is returned unchanged.
func StackOps(parts ...Operator) Operator {
	if len(parts) == 0 {
		panic("linalg: StackOps of nothing")
	}
	if len(parts) == 1 {
		return parts[0]
	}
	cols := parts[0].Cols()
	rows := 0
	for _, p := range parts {
		if p.Cols() != cols {
			panic(fmt.Sprintf("linalg: StackOps column mismatch %d vs %d", p.Cols(), cols))
		}
		rows += p.Rows()
	}
	return &StackOp{parts: parts, rows: rows, cols: cols}
}

// Rows returns the total row count.
func (o *StackOp) Rows() int { return o.rows }

// Cols returns the shared column count.
func (o *StackOp) Cols() int { return o.cols }

// MulVec concatenates the parts' products.
func (o *StackOp) MulVec(x []float64) []float64 {
	checkMulVecLen(o, len(x), o.cols, false)
	out := make([]float64, 0, o.rows)
	for _, p := range o.parts {
		out = append(out, p.MulVec(x)...)
	}
	return out
}

// MulVecT sums the parts' transposed products over the matching row slices.
func (o *StackOp) MulVecT(y []float64) []float64 {
	checkMulVecLen(o, len(y), o.rows, true)
	out := make([]float64, o.cols)
	at := 0
	for _, p := range o.parts {
		part := p.MulVecT(y[at : at+p.Rows()])
		at += p.Rows()
		for j, v := range part {
			out[j] += v
		}
	}
	return out
}

// Gram returns the sum of the parts' Gram matrices. The first part's Gram
// is cloned before accumulating: a Grammer is allowed to return a retained
// matrix, which the in-place sum must not corrupt.
func (o *StackOp) Gram() *Matrix {
	out := OperatorGram(o.parts[0]).Clone()
	for _, p := range o.parts[1:] {
		g := OperatorGram(p)
		for i, v := range g.data {
			out.data[i] += v
		}
	}
	return out
}

// ColNorms2 sums the parts' squared column norms.
func (o *StackOp) ColNorms2() []float64 {
	out := make([]float64, o.cols)
	for _, p := range o.parts {
		for j, v := range OperatorColNorms2(p) {
			out[j] += v
		}
	}
	return out
}

// ColNormsL1 sums the parts' L1 column norms.
func (o *StackOp) ColNormsL1() []float64 {
	out := make([]float64, o.cols)
	for _, p := range o.parts {
		for j, v := range OperatorColNormsL1(p) {
			out[j] += v
		}
	}
	return out
}

// ScaledOp is s·A for a scalar s.
type ScaledOp struct {
	base Operator
	s    float64
}

// ScaleOp returns the operator s·A.
func ScaleOp(base Operator, s float64) *ScaledOp { return &ScaledOp{base: base, s: s} }

// Rows returns the base row count.
func (o *ScaledOp) Rows() int { return o.base.Rows() }

// Cols returns the base column count.
func (o *ScaledOp) Cols() int { return o.base.Cols() }

// MulVec returns s·(A x).
func (o *ScaledOp) MulVec(x []float64) []float64 { return scaleVec(o.base.MulVec(x), o.s) }

// MulVecT returns s·(Aᵀ y).
func (o *ScaledOp) MulVecT(y []float64) []float64 { return scaleVec(o.base.MulVecT(y), o.s) }

// Gram returns s²·(AᵀA).
func (o *ScaledOp) Gram() *Matrix { return OperatorGram(o.base).Scale(o.s * o.s) }

// ColNorms2 returns s²·colnorms²(A). The base's slice may be a retained
// cache (NormedOp), so scale a copy.
func (o *ScaledOp) ColNorms2() []float64 {
	return scaleVec(append([]float64(nil), OperatorColNorms2(o.base)...), o.s*o.s)
}

// ColNormsL1 returns |s|·colnormsL1(A), scaling a copy like ColNorms2.
func (o *ScaledOp) ColNormsL1() []float64 {
	return scaleVec(append([]float64(nil), OperatorColNormsL1(o.base)...), abs64(o.s))
}

// RowScaledOp is diag(scale)·A: row i of the base operator multiplied by
// scale[i]. It is how weighted strategies Λ·Q are represented without
// materializing the product.
type RowScaledOp struct {
	base  Operator
	scale []float64
}

// ScaleRows returns diag(scale)·A. len(scale) must equal A.Rows().
func ScaleRows(base Operator, scale []float64) *RowScaledOp {
	if len(scale) != base.Rows() {
		panic(fmt.Sprintf("linalg: ScaleRows length %d for %d rows", len(scale), base.Rows()))
	}
	return &RowScaledOp{base: base, scale: scale}
}

// Rows returns the base row count.
func (o *RowScaledOp) Rows() int { return o.base.Rows() }

// Cols returns the base column count.
func (o *RowScaledOp) Cols() int { return o.base.Cols() }

// MulVec returns diag(scale)·(A x).
func (o *RowScaledOp) MulVec(x []float64) []float64 {
	out := o.base.MulVec(x)
	for i := range out {
		out[i] *= o.scale[i]
	}
	return out
}

// MulVecT returns Aᵀ·(diag(scale) y).
func (o *RowScaledOp) MulVecT(y []float64) []float64 {
	checkMulVecLen(o, len(y), o.Rows(), true)
	scaled := make([]float64, len(y))
	for i, v := range y {
		scaled[i] = v * o.scale[i]
	}
	return o.base.MulVecT(scaled)
}

// RowPermutedOp selects (and reorders) rows of a base operator: row i of
// the result is row perm[i] of the base. perm may be shorter than the base
// row count (a row subset).
type RowPermutedOp struct {
	base Operator
	perm []int
}

// PermuteRows returns the operator whose i-th row is base row perm[i].
func PermuteRows(base Operator, perm []int) *RowPermutedOp {
	for _, p := range perm {
		if p < 0 || p >= base.Rows() {
			panic(fmt.Sprintf("linalg: PermuteRows index %d out of %d rows", p, base.Rows()))
		}
	}
	return &RowPermutedOp{base: base, perm: perm}
}

// Rows returns len(perm).
func (o *RowPermutedOp) Rows() int { return len(o.perm) }

// Cols returns the base column count.
func (o *RowPermutedOp) Cols() int { return o.base.Cols() }

// MulVec computes the base product and gathers the selected rows.
func (o *RowPermutedOp) MulVec(x []float64) []float64 {
	full := o.base.MulVec(x)
	out := make([]float64, len(o.perm))
	for i, p := range o.perm {
		out[i] = full[p]
	}
	return out
}

// MulVecT scatters y into base row positions and applies the base
// transpose.
func (o *RowPermutedOp) MulVecT(y []float64) []float64 {
	checkMulVecLen(o, len(y), len(o.perm), true)
	full := make([]float64, o.base.Rows())
	for i, p := range o.perm {
		full[p] += y[i]
	}
	return o.base.MulVecT(full)
}

// NormedOp wraps an operator with precomputed column norms, letting
// assembled strategies (whose norms are known from the weighting program)
// skip the generic probing fallback.
type NormedOp struct {
	Operator
	cn2 []float64
	cn1 []float64
}

// WithColNorms attaches known column norms to an operator. Either slice
// may be nil to leave that norm to the generic helpers.
func WithColNorms(op Operator, colNorms2, colNormsL1 []float64) *NormedOp {
	return &NormedOp{Operator: op, cn2: colNorms2, cn1: colNormsL1}
}

// ColNorms2 returns the attached squared column norms (or probes). A copy
// is returned so callers cannot corrupt the cache.
func (o *NormedOp) ColNorms2() []float64 {
	if o.cn2 != nil {
		return append([]float64(nil), o.cn2...)
	}
	return OperatorColNorms2(o.Operator)
}

// ColNormsL1 returns a copy of the attached L1 column norms (or probes).
func (o *NormedOp) ColNormsL1() []float64 {
	if o.cn1 != nil {
		return append([]float64(nil), o.cn1...)
	}
	return OperatorColNormsL1(o.Operator)
}

// Gram delegates to the wrapped operator.
func (o *NormedOp) Gram() *Matrix { return OperatorGram(o.Operator) }

func onesVec(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func scaleVec(v []float64, s float64) []float64 {
	for i := range v {
		v[i] *= s
	}
	return v
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func sqrtNonNeg(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
