package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// EigenSym holds the eigendecomposition of a real symmetric matrix
// a = Vᵀ diag(values) V, where the rows of V are orthonormal eigenvectors.
// Eigenvalues are sorted in descending order, matching the paper's
// convention that σ₁ is the largest eigenvalue of WᵀW.
type EigenSym struct {
	// Values are the eigenvalues in descending order.
	Values []float64
	// Vectors has the eigenvector for Values[i] in row i.
	Vectors *Matrix
}

// ErrNoConvergence is returned when the QL iteration fails to converge;
// this does not happen for well-scaled symmetric inputs.
var ErrNoConvergence = errors.New("linalg: eigen iteration did not converge")

// SymEigen computes the eigendecomposition of the symmetric matrix a using
// Householder tridiagonalization followed by the implicit-shift QL
// algorithm (the classic tred2/tql2 pair). Only the lower triangle of a is
// read. Cost is O(n³).
func SymEigen(a *Matrix) (*EigenSym, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("linalg: SymEigen of non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	if n == 0 {
		return &EigenSym{Values: nil, Vectors: New(0, 0)}, nil
	}
	// v starts as a copy of a and is overwritten with the accumulated
	// orthogonal transformation (columns are eigenvectors on exit from tql2).
	v := a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(v, d, e)
	if err := tql2(v, d, e); err != nil {
		return nil, err
	}
	// Sort eigenpairs by descending eigenvalue. v currently holds
	// eigenvectors in columns; produce row-oriented output.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return d[idx[x]] > d[idx[y]] })
	values := make([]float64, n)
	vectors := New(n, n)
	for r, j := range idx {
		values[r] = d[j]
		row := vectors.Row(r)
		for i := 0; i < n; i++ {
			row[i] = v.At(i, j)
		}
	}
	return &EigenSym{Values: values, Vectors: vectors}, nil
}

// tred2 reduces a symmetric matrix (stored in v) to tridiagonal form using
// Householder reflections, accumulating the transformation in v. On exit d
// holds the diagonal and e the subdiagonal (e[0] unused). This follows the
// EISPACK/JAMA formulation.
func tred2(v *Matrix, d, e []float64) {
	n := v.rows
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
	}
	for i := n - 1; i > 0; i-- {
		var scale, h float64
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		} else {
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			for j := 0; j < i; j++ {
				f = d[j]
				v.Set(j, i, f)
				g = e[j] + v.At(j, j)*f
				for k := j + 1; k <= i-1; k++ {
					g += v.At(k, j) * d[k]
					e[k] += v.At(k, j) * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j < i; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= i-1; k++ {
					v.Set(k, j, v.At(k, j)-(f*e[k]+g*d[k]))
				}
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
			}
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		v.Set(n-1, i, v.At(i, i))
		v.Set(i, i, 1)
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = v.At(k, i+1) / h
			}
			for j := 0; j <= i; j++ {
				var g float64
				for k := 0; k <= i; k++ {
					g += v.At(k, i+1) * v.At(k, j)
				}
				for k := 0; k <= i; k++ {
					v.Set(k, j, v.At(k, j)-g*d[k])
				}
			}
		}
		for k := 0; k <= i; k++ {
			v.Set(k, i+1, 0)
		}
	}
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
		v.Set(n-1, j, 0)
	}
	v.Set(n-1, n-1, 1)
	e[0] = 0
}

// tql2 diagonalizes a symmetric tridiagonal matrix (d diagonal, e
// subdiagonal) with the implicit-shift QL algorithm, accumulating
// eigenvectors into the columns of v.
func tql2(v *Matrix, d, e []float64) error {
	n := v.rows
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	var f, tst1 float64
	eps := math.Pow(2, -52)
	for l := 0; l < n; l++ {
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter >= 64 {
					return ErrNoConvergence
				}
				// Compute implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				// Implicit QL transformation.
				p = d[m]
				c := 1.0
				c2, c3 := c, c
				el1 := e[l+1]
				var s, s2 float64
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					// Accumulate eigenvectors.
					for k := 0; k < n; k++ {
						h = v.At(k, i+1)
						v.Set(k, i+1, s*v.At(k, i)+c*h)
						v.Set(k, i, c*v.At(k, i)-s*h)
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
	return nil
}

// Rank returns the number of eigenvalues larger than tol relative to the
// largest magnitude eigenvalue. Use on the decomposition of a Gram matrix
// WᵀW to obtain rank(W).
func (eg *EigenSym) Rank(tol float64) int {
	if len(eg.Values) == 0 {
		return 0
	}
	var maxAbs float64
	for _, v := range eg.Values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	r := 0
	for _, v := range eg.Values {
		if math.Abs(v) > tol*maxAbs {
			r++
		}
	}
	return r
}

// Reconstruct returns Vᵀ diag(values) V, useful for verifying the
// decomposition in tests.
func (eg *EigenSym) Reconstruct() *Matrix {
	n := len(eg.Values)
	out := New(n, n)
	for r := 0; r < n; r++ {
		lam := eg.Values[r]
		if lam == 0 {
			continue
		}
		vec := eg.Vectors.Row(r)
		for i := 0; i < n; i++ {
			vi := lam * vec[i]
			if vi == 0 {
				continue
			}
			orow := out.Row(i)
			for j := 0; j < n; j++ {
				orow[j] += vi * vec[j]
			}
		}
	}
	return out
}

// PseudoInverseSym computes the Moore-Penrose pseudo-inverse of a symmetric
// positive semi-definite matrix via its eigendecomposition, treating
// eigenvalues below tol (relative to the largest) as zero.
func PseudoInverseSym(a *Matrix, tol float64) (*Matrix, error) {
	eg, err := SymEigen(a)
	if err != nil {
		return nil, err
	}
	n := len(eg.Values)
	var maxV float64
	for _, v := range eg.Values {
		if v > maxV {
			maxV = v
		}
	}
	out := New(n, n)
	for r := 0; r < n; r++ {
		lam := eg.Values[r]
		if lam <= tol*maxV || lam <= 0 {
			continue
		}
		inv := 1 / lam
		vec := eg.Vectors.Row(r)
		for i := 0; i < n; i++ {
			vi := inv * vec[i]
			if vi == 0 {
				continue
			}
			orow := out.Row(i)
			for j := 0; j < n; j++ {
				orow[j] += vi * vec[j]
			}
		}
	}
	return out, nil
}

// PseudoInverse computes the Moore-Penrose pseudo-inverse A⁺ of a general
// p x n matrix as (AᵀA)⁺Aᵀ, an identity that holds for all real matrices.
// The symmetric pseudo-inverse goes through the eigendecomposition, which
// detects rank deficiency reliably (LU pivot magnitudes do not).
func PseudoInverse(a *Matrix) (*Matrix, error) {
	inv, err := PseudoInverseSym(a.GramParallel(), 1e-11)
	if err != nil {
		return nil, err
	}
	return inv.MulParallel(a.T()), nil
}
