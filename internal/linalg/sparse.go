package linalg

import "fmt"

// Sparse is a compressed sparse row (CSR) matrix implementing Operator.
// It is the right representation for strategies with few nonzeros per row
// — hierarchical/tree strategies, diagonal completion rows — where the
// dense form would waste O(rows·cols) memory for O(nnz) information.
type Sparse struct {
	rows, cols int
	rowPtr     []int // len rows+1; row i spans [rowPtr[i], rowPtr[i+1])
	colIdx     []int
	val        []float64
}

// SparseBuilder accumulates CSR rows in order.
type SparseBuilder struct {
	cols   int
	rowPtr []int
	colIdx []int
	val    []float64
}

// NewSparseBuilder returns a builder for a CSR matrix with the given
// column count.
func NewSparseBuilder(cols int) *SparseBuilder {
	return &SparseBuilder{cols: cols, rowPtr: []int{0}}
}

// AppendRow adds one row given parallel slices of column indices and
// values. Indices must be in range; they need not be sorted.
func (b *SparseBuilder) AppendRow(cols []int, vals []float64) {
	if len(cols) != len(vals) {
		panic(fmt.Sprintf("linalg: AppendRow %d indices, %d values", len(cols), len(vals)))
	}
	for _, c := range cols {
		if c < 0 || c >= b.cols {
			panic(fmt.Sprintf("linalg: AppendRow column %d out of %d", c, b.cols))
		}
	}
	b.colIdx = append(b.colIdx, cols...)
	b.val = append(b.val, vals...)
	b.rowPtr = append(b.rowPtr, len(b.colIdx))
}

// AppendConstRow adds one row whose listed columns all hold the same value.
func (b *SparseBuilder) AppendConstRow(cols []int, v float64) {
	for _, c := range cols {
		if c < 0 || c >= b.cols {
			panic(fmt.Sprintf("linalg: AppendConstRow column %d out of %d", c, b.cols))
		}
		b.colIdx = append(b.colIdx, c)
		b.val = append(b.val, v)
	}
	b.rowPtr = append(b.rowPtr, len(b.colIdx))
}

// AppendRangeRow adds one row with value v on the contiguous columns
// [lo, hi] — the shape of range-query and tree-node rows.
func (b *SparseBuilder) AppendRangeRow(lo, hi int, v float64) {
	if lo < 0 || hi >= b.cols || lo > hi {
		panic(fmt.Sprintf("linalg: AppendRangeRow [%d,%d] out of %d columns", lo, hi, b.cols))
	}
	for c := lo; c <= hi; c++ {
		b.colIdx = append(b.colIdx, c)
		b.val = append(b.val, v)
	}
	b.rowPtr = append(b.rowPtr, len(b.colIdx))
}

// Build finalizes the CSR matrix.
func (b *SparseBuilder) Build() *Sparse {
	return &Sparse{
		rows:   len(b.rowPtr) - 1,
		cols:   b.cols,
		rowPtr: b.rowPtr,
		colIdx: b.colIdx,
		val:    b.val,
	}
}

// SparseFromMatrix converts a dense matrix to CSR, dropping zeros.
func SparseFromMatrix(m *Matrix) *Sparse {
	b := NewSparseBuilder(m.Cols())
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		var cols []int
		var vals []float64
		for j, v := range row {
			if v != 0 {
				cols = append(cols, j)
				vals = append(vals, v)
			}
		}
		b.AppendRow(cols, vals)
	}
	return b.Build()
}

// SparseDiag returns the CSR matrix with the given rows: for each (col,
// value) pair one row holding value at column col. It is the completion
// row block of Program 2 in sparse form.
func SparseDiag(cols int, idx []int, vals []float64) *Sparse {
	b := NewSparseBuilder(cols)
	for k, j := range idx {
		b.AppendRow([]int{j}, []float64{vals[k]})
	}
	return b.Build()
}

// Rows returns the row count.
func (s *Sparse) Rows() int { return s.rows }

// Cols returns the column count.
func (s *Sparse) Cols() int { return s.cols }

// NNZ returns the number of stored entries.
func (s *Sparse) NNZ() int { return len(s.val) }

// MulVec returns A·x in O(nnz).
func (s *Sparse) MulVec(x []float64) []float64 {
	checkMulVecLen(s, len(x), s.cols, false)
	out := make([]float64, s.rows)
	for i := 0; i < s.rows; i++ {
		var acc float64
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			acc += s.val[k] * x[s.colIdx[k]]
		}
		out[i] = acc
	}
	return out
}

// MulVecT returns Aᵀ·y in O(nnz).
func (s *Sparse) MulVecT(y []float64) []float64 {
	checkMulVecLen(s, len(y), s.rows, true)
	out := make([]float64, s.cols)
	for i := 0; i < s.rows; i++ {
		v := y[i]
		if v == 0 {
			continue
		}
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			out[s.colIdx[k]] += v * s.val[k]
		}
	}
	return out
}

// Gram returns the dense AᵀA accumulated row by row in O(Σ nnz(row)²).
func (s *Sparse) Gram() *Matrix {
	out := New(s.cols, s.cols)
	for i := 0; i < s.rows; i++ {
		lo, hi := s.rowPtr[i], s.rowPtr[i+1]
		for a := lo; a < hi; a++ {
			ca, va := s.colIdx[a], s.val[a]
			orow := out.Row(ca)
			for b := lo; b < hi; b++ {
				orow[s.colIdx[b]] += va * s.val[b]
			}
		}
	}
	return out
}

// ColNorms2 returns the squared L2 column norms.
func (s *Sparse) ColNorms2() []float64 {
	out := make([]float64, s.cols)
	for k, v := range s.val {
		out[s.colIdx[k]] += v * v
	}
	return out
}

// ColNormsL1 returns the L1 column norms.
func (s *Sparse) ColNormsL1() []float64 {
	out := make([]float64, s.cols)
	for k, v := range s.val {
		out[s.colIdx[k]] += abs64(v)
	}
	return out
}
