// Operator codec: a self-describing binary serialization for every
// operator kind in the package, so strategies designed once can be
// persisted and rehydrated byte-exactly across process restarts (the plan
// store in internal/planstore builds on it).
//
// Wire format. MarshalOperator frames the record as
//
//	magic "AMO1" | payload | crc32c(payload)
//
// and UnmarshalOperator refuses frames whose magic or checksum does not
// match — a truncated or bit-flipped file is reported as corrupt, never
// decoded into a wrong operator. Inside the payload each operator is one
// tagged record: a kind byte followed by kind-specific fields (uvarint
// integers, IEEE-754 bits for floats, length-prefixed slices). Composite
// kinds (Kronecker, Stack, BlockDiag, Compose, the wrappers) nest their
// children recursively; nesting depth is bounded so a hostile file cannot
// overflow the stack.
//
// Every decoded record is validated structurally (dimensions must chain,
// indices must be in range, CSR row pointers must be monotone) before an
// operator is constructed, so Decode returns errors where the package
// constructors would panic.

package linalg

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"adaptivemm/internal/binenc"
)

// operatorMagic frames a marshalled operator record.
const operatorMagic = "AMO1"

// maxCodecDepth bounds operator nesting during encode and decode. Real
// strategies nest a handful of levels (Normed → Compose → BlockDiag →
// Kron → Sparse); 64 leaves room without risking decode-time stack
// exhaustion on crafted input.
const maxCodecDepth = 64

// Operator kind tags. The values are part of the wire format: never
// reorder or reuse them, only append.
const (
	opKindDense       = 1
	opKindIdentity    = 2
	opKindPrefix      = 3
	opKindIntervals   = 4
	opKindSparse      = 5
	opKindKron        = 6
	opKindStack       = 7
	opKindScaled      = 8
	opKindRowScaled   = 9
	opKindRowPermuted = 10
	opKindNormed      = 11
	opKindBlockDiag   = 12
	opKindComposed    = 13
)

var codecCRC = crc32.MakeTable(crc32.Castagnoli)

// MarshalOperator serializes an operator (any kind in this package) into
// a checksummed, self-describing binary frame.
func MarshalOperator(op Operator) ([]byte, error) {
	var payload bytes.Buffer
	if err := encodeOperator(&payload, op, 0); err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(operatorMagic)+payload.Len()+4)
	out = append(out, operatorMagic...)
	out = append(out, payload.Bytes()...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload.Bytes(), codecCRC))
	return out, nil
}

// UnmarshalOperator decodes a frame produced by MarshalOperator,
// verifying the magic and the integrity checksum before touching the
// payload.
func UnmarshalOperator(b []byte) (Operator, error) {
	if len(b) < len(operatorMagic)+4 {
		return nil, fmt.Errorf("linalg: operator frame truncated (%d bytes)", len(b))
	}
	if string(b[:len(operatorMagic)]) != operatorMagic {
		return nil, fmt.Errorf("linalg: bad operator magic %q", b[:len(operatorMagic)])
	}
	payload := b[len(operatorMagic) : len(b)-4]
	want := binary.LittleEndian.Uint32(b[len(b)-4:])
	if got := crc32.Checksum(payload, codecCRC); got != want {
		return nil, fmt.Errorf("linalg: operator checksum mismatch (got %08x, want %08x)", got, want)
	}
	r := binenc.NewReader(payload)
	op, err := decodeOperator(r, 0)
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("linalg: %d trailing bytes after operator record", r.Remaining())
	}
	return op, nil
}

// --- encoding ---

// The primitive writers and the bounds-checked reader are shared with
// the plan codec in internal/planstore; see internal/binenc.

func encodeOperator(w *bytes.Buffer, op Operator, depth int) error {
	if depth > maxCodecDepth {
		return fmt.Errorf("linalg: operator nesting exceeds depth %d", maxCodecDepth)
	}
	switch o := op.(type) {
	case *Matrix:
		w.WriteByte(opKindDense)
		binenc.PutInt(w, o.rows)
		binenc.PutInt(w, o.cols)
		for _, v := range o.data {
			binenc.PutFloat(w, v)
		}
	case *IdentityOp:
		w.WriteByte(opKindIdentity)
		binenc.PutInt(w, o.n)
	case *PrefixOp:
		w.WriteByte(opKindPrefix)
		binenc.PutInt(w, o.n)
	case *IntervalsOp:
		w.WriteByte(opKindIntervals)
		binenc.PutInt(w, o.d)
	case *Sparse:
		w.WriteByte(opKindSparse)
		binenc.PutInt(w, o.rows)
		binenc.PutInt(w, o.cols)
		binenc.PutInts(w, o.rowPtr)
		binenc.PutInts(w, o.colIdx)
		binenc.PutFloats(w, o.val)
	case *KronOp:
		w.WriteByte(opKindKron)
		binenc.PutInt(w, len(o.factors))
		for _, f := range o.factors {
			if err := encodeOperator(w, f, depth+1); err != nil {
				return err
			}
		}
	case *StackOp:
		w.WriteByte(opKindStack)
		binenc.PutInt(w, len(o.parts))
		for _, p := range o.parts {
			if err := encodeOperator(w, p, depth+1); err != nil {
				return err
			}
		}
	case *ScaledOp:
		w.WriteByte(opKindScaled)
		binenc.PutFloat(w, o.s)
		return encodeOperator(w, o.base, depth+1)
	case *RowScaledOp:
		w.WriteByte(opKindRowScaled)
		binenc.PutFloats(w, o.scale)
		return encodeOperator(w, o.base, depth+1)
	case *RowPermutedOp:
		w.WriteByte(opKindRowPermuted)
		binenc.PutInts(w, o.perm)
		return encodeOperator(w, o.base, depth+1)
	case *NormedOp:
		w.WriteByte(opKindNormed)
		hasCN2 := byte(0)
		if o.cn2 != nil {
			hasCN2 = 1
		}
		hasCN1 := byte(0)
		if o.cn1 != nil {
			hasCN1 = 1
		}
		w.WriteByte(hasCN2)
		if o.cn2 != nil {
			binenc.PutFloats(w, o.cn2)
		}
		w.WriteByte(hasCN1)
		if o.cn1 != nil {
			binenc.PutFloats(w, o.cn1)
		}
		return encodeOperator(w, o.Operator, depth+1)
	case *BlockDiagOp:
		w.WriteByte(opKindBlockDiag)
		binenc.PutInt(w, len(o.parts))
		for _, p := range o.parts {
			if err := encodeOperator(w, p, depth+1); err != nil {
				return err
			}
		}
	case *ComposedOp:
		w.WriteByte(opKindComposed)
		if err := encodeOperator(w, o.outer, depth+1); err != nil {
			return err
		}
		return encodeOperator(w, o.inner, depth+1)
	default:
		return fmt.Errorf("linalg: cannot serialize operator type %T", op)
	}
	return nil
}

// --- decoding ---

// maxCodecDim bounds any single decoded dimension; it exists only to keep
// rows*cols arithmetic from overflowing, not as a size policy.
const maxCodecDim = math.MaxInt32

func decodeOperator(r *binenc.Reader, depth int) (Operator, error) {
	if depth > maxCodecDepth {
		return nil, fmt.Errorf("linalg: operator nesting exceeds depth %d", maxCodecDepth)
	}
	kind, err := r.Byte()
	if err != nil {
		return nil, err
	}
	switch kind {
	case opKindDense:
		rows, err := r.IntBounded(maxCodecDim, "dense rows")
		if err != nil {
			return nil, err
		}
		cols, err := r.IntBounded(maxCodecDim, "dense cols")
		if err != nil {
			return nil, err
		}
		if cols != 0 && rows > r.Remaining()/8/cols {
			return nil, fmt.Errorf("linalg: dense payload truncated (%dx%d)", rows, cols)
		}
		data := make([]float64, rows*cols)
		for i := range data {
			if data[i], err = r.Float(); err != nil {
				return nil, err
			}
		}
		return NewFromData(rows, cols, data), nil
	case opKindIdentity:
		n, err := r.IntBounded(maxCodecDim, "identity size")
		if err != nil {
			return nil, err
		}
		return Eye(n), nil
	case opKindPrefix:
		n, err := r.IntBounded(maxCodecDim, "prefix size")
		if err != nil {
			return nil, err
		}
		return NewPrefixOp(n), nil
	case opKindIntervals:
		d, err := r.IntBounded(maxCodecDim, "intervals size")
		if err != nil {
			return nil, err
		}
		return NewIntervalsOp(d), nil
	case opKindSparse:
		return decodeSparse(r)
	case opKindKron:
		parts, err := decodeParts(r, depth, "Kronecker")
		if err != nil {
			return nil, err
		}
		return NewKronOp(parts...), nil
	case opKindStack:
		parts, err := decodeParts(r, depth, "stack")
		if err != nil {
			return nil, err
		}
		cols := parts[0].Cols()
		for i, p := range parts {
			if p.Cols() != cols {
				return nil, fmt.Errorf("linalg: stack part %d has %d cols, part 0 has %d", i, p.Cols(), cols)
			}
		}
		return StackOps(parts...), nil
	case opKindScaled:
		s, err := r.Float()
		if err != nil {
			return nil, err
		}
		base, err := decodeOperator(r, depth+1)
		if err != nil {
			return nil, err
		}
		return ScaleOp(base, s), nil
	case opKindRowScaled:
		scale, err := r.Floats()
		if err != nil {
			return nil, err
		}
		base, err := decodeOperator(r, depth+1)
		if err != nil {
			return nil, err
		}
		if len(scale) != base.Rows() {
			return nil, fmt.Errorf("linalg: row-scale length %d for %d rows", len(scale), base.Rows())
		}
		return ScaleRows(base, scale), nil
	case opKindRowPermuted:
		perm, err := r.Ints()
		if err != nil {
			return nil, err
		}
		base, err := decodeOperator(r, depth+1)
		if err != nil {
			return nil, err
		}
		for _, p := range perm {
			if p < 0 || p >= base.Rows() {
				return nil, fmt.Errorf("linalg: permuted row index %d out of %d rows", p, base.Rows())
			}
		}
		return PermuteRows(base, perm), nil
	case opKindNormed:
		return decodeNormed(r, depth)
	case opKindBlockDiag:
		parts, err := decodeParts(r, depth, "block-diagonal")
		if err != nil {
			return nil, err
		}
		return BlockDiag(parts...), nil
	case opKindComposed:
		outer, err := decodeOperator(r, depth+1)
		if err != nil {
			return nil, err
		}
		inner, err := decodeOperator(r, depth+1)
		if err != nil {
			return nil, err
		}
		if outer.Cols() != inner.Rows() {
			return nil, fmt.Errorf("linalg: composed operators do not chain (outer %dx%d, inner %dx%d)",
				outer.Rows(), outer.Cols(), inner.Rows(), inner.Cols())
		}
		return ComposeOps(outer, inner), nil
	default:
		return nil, fmt.Errorf("linalg: unknown operator kind %d", kind)
	}
}

func decodeParts(r *binenc.Reader, depth int, what string) ([]Operator, error) {
	// Each part record is ≥1 byte, so the remaining payload bounds the count.
	count, err := r.IntBounded(r.Remaining(), what+" part count")
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, fmt.Errorf("linalg: %s of zero parts", what)
	}
	parts := make([]Operator, count)
	for i := range parts {
		if parts[i], err = decodeOperator(r, depth+1); err != nil {
			return nil, err
		}
	}
	return parts, nil
}

func decodeNormed(r *binenc.Reader, depth int) (Operator, error) {
	var cn2, cn1 []float64
	has, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if has == 1 {
		if cn2, err = r.Floats(); err != nil {
			return nil, err
		}
	}
	if has, err = r.Byte(); err != nil {
		return nil, err
	}
	if has == 1 {
		if cn1, err = r.Floats(); err != nil {
			return nil, err
		}
	}
	base, err := decodeOperator(r, depth+1)
	if err != nil {
		return nil, err
	}
	if cn2 != nil && len(cn2) != base.Cols() {
		return nil, fmt.Errorf("linalg: attached col-norms² have %d entries for %d cols", len(cn2), base.Cols())
	}
	if cn1 != nil && len(cn1) != base.Cols() {
		return nil, fmt.Errorf("linalg: attached L1 col norms have %d entries for %d cols", len(cn1), base.Cols())
	}
	return WithColNorms(base, cn2, cn1), nil
}

func decodeSparse(r *binenc.Reader) (Operator, error) {
	rows, err := r.IntBounded(maxCodecDim, "sparse rows")
	if err != nil {
		return nil, err
	}
	cols, err := r.IntBounded(maxCodecDim, "sparse cols")
	if err != nil {
		return nil, err
	}
	rowPtr, err := r.Ints()
	if err != nil {
		return nil, err
	}
	colIdx, err := r.Ints()
	if err != nil {
		return nil, err
	}
	val, err := r.Floats()
	if err != nil {
		return nil, err
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("linalg: sparse rowPtr has %d entries for %d rows", len(rowPtr), rows)
	}
	if len(colIdx) != len(val) {
		return nil, fmt.Errorf("linalg: sparse has %d column indices for %d values", len(colIdx), len(val))
	}
	if rowPtr[0] != 0 || rowPtr[rows] != len(val) {
		return nil, fmt.Errorf("linalg: sparse rowPtr does not span the %d stored values", len(val))
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, fmt.Errorf("linalg: sparse rowPtr decreases at row %d", i)
		}
	}
	for _, c := range colIdx {
		if c < 0 || c >= cols {
			return nil, fmt.Errorf("linalg: sparse column index %d out of %d", c, cols)
		}
	}
	return &Sparse{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}
