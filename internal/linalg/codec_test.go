package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randMatrix is shared with matrix_test.go.

func randSparse(r *rand.Rand, rows, cols int) *Sparse {
	b := NewSparseBuilder(cols)
	for i := 0; i < rows; i++ {
		nnz := 1 + r.Intn(3)
		idx := make([]int, 0, nnz)
		vals := make([]float64, 0, nnz)
		for k := 0; k < nnz; k++ {
			idx = append(idx, r.Intn(cols))
			vals = append(vals, r.NormFloat64())
		}
		b.AppendRow(idx, vals)
	}
	return b.Build()
}

// codecCases builds one instance of every serializable operator kind,
// including nested composites shaped like real strategies.
func codecCases(r *rand.Rand) map[string]Operator {
	perm := r.Perm(10)[:8] // IntervalsOp(4) has 10 rows
	scale := make([]float64, 10)
	for i := range scale {
		scale[i] = 0.25 + r.Float64()
	}
	sharded := ComposeOps(
		BlockDiag(randMatrix(r, 6, 4), randSparse(r, 5, 3)),
		StackOps(randMatrix(r, 4, 7), randMatrix(r, 3, 7)),
	)
	return map[string]Operator{
		"dense":        randMatrix(r, 7, 5),
		"identity":     Eye(9),
		"prefix":       NewPrefixOp(11),
		"intervals":    NewIntervalsOp(6),
		"sparse":       randSparse(r, 8, 6),
		"kron":         NewKronOp(NewIntervalsOp(4), Eye(3), randMatrix(r, 2, 5)),
		"stack":        StackOps(NewPrefixOp(8), randSparse(r, 5, 8), randMatrix(r, 3, 8)),
		"scaled":       ScaleOp(NewIntervalsOp(5), -1.75),
		"row-scaled":   ScaleRows(randMatrix(r, 10, 4), scale),
		"row-permuted": PermuteRows(NewIntervalsOp(4), perm),
		"normed": WithColNorms(randSparse(r, 6, 5),
			[]float64{1, 2, 3, 4, 5}, []float64{2, 2, 2, 2, 2}),
		"normed-nil-l1": WithColNorms(Eye(4), []float64{1, 1, 1, 1}, nil),
		"block-diag":    BlockDiag(NewPrefixOp(4), randMatrix(r, 3, 2), Eye(2)),
		"composed":      ComposeOps(randMatrix(r, 4, 6), randSparse(r, 6, 9)),
		"sharded-shape": WithColNorms(sharded, nil, nil),
	}
}

// TestOperatorCodecRoundTrip is the property test behind plan
// persistence: every operator kind must round-trip through the codec
// bit-exactly — MulVec and MulVecT on random probe vectors agree to
// 1e-12 before and after, and dimensions are preserved.
func TestOperatorCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for name, op := range codecCases(r) {
		t.Run(name, func(t *testing.T) {
			blob, err := MarshalOperator(op)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got, err := UnmarshalOperator(blob)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if got.Rows() != op.Rows() || got.Cols() != op.Cols() {
				t.Fatalf("dims %dx%d, want %dx%d", got.Rows(), got.Cols(), op.Rows(), op.Cols())
			}
			for trial := 0; trial < 4; trial++ {
				x := make([]float64, op.Cols())
				for i := range x {
					x[i] = r.NormFloat64()
				}
				compareVecs(t, "MulVec", op.MulVec(x), got.MulVec(x))
				y := make([]float64, op.Rows())
				for i := range y {
					y[i] = r.NormFloat64()
				}
				compareVecs(t, "MulVecT", op.MulVecT(y), got.MulVecT(y))
			}
			// Column norms must survive too: sensitivity is derived from
			// them, so a codec that loses attached norms would recalibrate
			// noise on rehydrated strategies.
			compareVecs(t, "ColNorms2", OperatorColNorms2(op), OperatorColNorms2(got))
			compareVecs(t, "ColNormsL1", OperatorColNormsL1(op), OperatorColNormsL1(got))
		})
	}
}

func compareVecs(t *testing.T, what string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-12 {
			t.Fatalf("%s[%d] = %g, want %g", what, i, got[i], want[i])
		}
	}
}

// TestOperatorCodecDetectsCorruption flips each byte of a marshalled
// frame in turn and asserts the decoder reports an error instead of
// returning a silently different operator.
func TestOperatorCodecDetectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	op := StackOps(NewIntervalsOp(5), randMatrix(r, 4, 5))
	blob, err := MarshalOperator(op)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blob {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x40
		if _, err := UnmarshalOperator(bad); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	for cut := 0; cut < len(blob); cut += 7 {
		if _, err := UnmarshalOperator(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
}

// TestOperatorCodecRefusesUnknownType ensures the encoder fails loudly on
// operator types outside the wire format instead of writing garbage.
func TestOperatorCodecRefusesUnknownType(t *testing.T) {
	if _, err := MarshalOperator(alienOp{}); err == nil {
		t.Fatal("marshal of an unknown operator type did not error")
	}
}

type alienOp struct{}

func (alienOp) Rows() int                     { return 1 }
func (alienOp) Cols() int                     { return 1 }
func (alienOp) MulVec(x []float64) []float64  { return x }
func (alienOp) MulVecT(y []float64) []float64 { return y }
