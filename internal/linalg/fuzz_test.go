package linalg

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// fuzzSeedOperators marshals one operator per representative kind so the
// fuzzer starts from well-formed frames (more live in testdata/fuzz).
func fuzzSeedOperators(f *testing.F) [][]byte {
	ops := []Operator{
		Identity(4),
		NewPrefixOp(8),
		NewIntervalsOp(6),
		NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}}),
		NewKronOp(Identity(2), NewPrefixOp(3)),
	}
	var out [][]byte
	for _, op := range ops {
		b, err := MarshalOperator(op)
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// FuzzUnmarshalOperator feeds the operator codec hostile frames: any
// input must be cleanly rejected or decode into an operator that
// re-marshals and round-trips — never panic, never a checksum-passing
// frame that decodes into something the encoder refuses.
func FuzzUnmarshalOperator(f *testing.F) {
	for _, b := range fuzzSeedOperators(f) {
		f.Add(b)
	}
	f.Add([]byte(operatorMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		check := func(b []byte) {
			op, err := UnmarshalOperator(b)
			if err != nil {
				return
			}
			if op == nil {
				t.Fatal("nil operator with nil error")
			}
			re, err := MarshalOperator(op)
			if err != nil {
				t.Fatalf("re-marshal of decoded operator failed: %v", err)
			}
			op2, err := UnmarshalOperator(re)
			if err != nil {
				t.Fatalf("round-trip decode failed: %v", err)
			}
			if op2.Rows() != op.Rows() || op2.Cols() != op.Cols() {
				t.Fatalf("round trip changed dims: %dx%d -> %dx%d",
					op.Rows(), op.Cols(), op2.Rows(), op2.Cols())
			}
		}
		// As provided: hostile frames are rejected at the magic or checksum.
		check(data)
		// Re-framed with a valid checksum, so mutations exercise the payload
		// decoder behind the crc instead of dying at the integrity check.
		framed := append([]byte(operatorMagic), data...)
		framed = binary.LittleEndian.AppendUint32(framed, crc32.Checksum(data, codecCRC))
		check(framed)
	})
}
