// Package accountant enforces per-dataset privacy budgets for a release
// server under basic sequential composition. It replaces a
// charge-after-release ledger — which can only record overspending, never
// prevent it — with atomic check-reserve-commit semantics:
//
//	res, err := acct.Reserve("adult", accountant.Budget{Epsilon: 0.5, Delta: 1e-4})
//	if err != nil { /* over budget: refuse the release */ }
//	answers, err := mechanism.Release(...)
//	if err != nil { res.Refund() } else { res.Commit() }
//
// Reserve atomically checks the dataset's cap against committed spend plus
// all in-flight reservations and claims the requested budget, so
// concurrent releases can never jointly exceed a cap no matter how they
// interleave: the budget is spoken for before any noise is drawn. Commit
// converts the reservation into committed spend; Refund returns it when
// the release fails, since a release that produced no output consumed no
// privacy.
//
// Datasets without a cap are unlimited but still tracked, preserving the
// pure-bookkeeping behaviour for ad-hoc datasets.
package accountant

import (
	"fmt"
	"sort"
	"sync"
)

// slackRel absorbs float round-off when summing many small charges
// against a cap (e.g. ten reservations of 0.1 against a cap of 1.0 must
// all fit). It is relative to the cap: summation error scales with the
// cap's magnitude, and an absolute tolerance would dwarf realistic δ caps
// (1e-10 and below), silently admitting many over-cap releases.
const slackRel = 1e-9

// Budget is a privacy budget or spend under (ε,δ)-differential privacy.
type Budget struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

// add returns b + o.
func (b Budget) add(o Budget) Budget {
	return Budget{Epsilon: b.Epsilon + o.Epsilon, Delta: b.Delta + o.Delta}
}

// sub returns b − o, clamped at zero componentwise.
func (b Budget) sub(o Budget) Budget {
	out := Budget{Epsilon: b.Epsilon - o.Epsilon, Delta: b.Delta - o.Delta}
	if out.Epsilon < 0 {
		out.Epsilon = 0
	}
	if out.Delta < 0 {
		out.Delta = 0
	}
	return out
}

// OverBudgetError reports a refused reservation together with the budget
// still available, so callers can surface "remaining" to the analyst.
type OverBudgetError struct {
	Dataset   string
	Requested Budget
	Remaining Budget
}

func (e *OverBudgetError) Error() string {
	return fmt.Sprintf("accountant: dataset %q over budget: requested (ε=%g, δ=%g), remaining (ε=%g, δ=%g)",
		e.Dataset, e.Requested.Epsilon, e.Requested.Delta, e.Remaining.Epsilon, e.Remaining.Delta)
}

type state struct {
	cap      Budget // zero components are unlimited
	capped   bool
	spent    Budget // committed releases
	reserved Budget // in-flight releases
}

// Accountant tracks privacy budgets for any number of datasets.
type Accountant struct {
	mu       sync.Mutex
	datasets map[string]*state
}

// New returns an empty accountant.
func New() *Accountant {
	return &Accountant{datasets: map[string]*state{}}
}

func (a *Accountant) get(dataset string) *state {
	st, ok := a.datasets[dataset]
	if !ok {
		st = &state{}
		a.datasets[dataset] = st
	}
	return st
}

// SetCap installs a budget cap for a dataset. A zero component of the cap
// leaves that parameter unlimited; negative components are rejected (they
// would silently read as unlimited — the dangerous typo for a cap).
// Existing spend is kept: lowering a cap below what is already spent
// refuses all further reservations.
func (a *Accountant) SetCap(dataset string, cap Budget) error {
	if cap.Epsilon < 0 || cap.Delta < 0 {
		return fmt.Errorf("accountant: negative cap (ε=%g, δ=%g)", cap.Epsilon, cap.Delta)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.get(dataset)
	st.cap = cap
	st.capped = true
	return nil
}

// Cap returns the dataset's cap and whether one is set.
func (a *Accountant) Cap(dataset string) (Budget, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.datasets[dataset]
	if !ok || !st.capped {
		return Budget{}, false
	}
	return st.cap, true
}

// Spent returns the committed spend for a dataset.
func (a *Accountant) Spent(dataset string) Budget {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.datasets[dataset]
	if !ok {
		return Budget{}
	}
	return st.spent
}

// Remaining returns cap − spent − reserved for a capped dataset; the
// second result is false for uncapped (unlimited) datasets. Unlimited
// components report zero remaining with ok still true when the other
// component is capped — check the cap to interpret zeros.
func (a *Accountant) Remaining(dataset string) (Budget, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.datasets[dataset]
	if !ok || !st.capped {
		return Budget{}, false
	}
	return st.cap.sub(st.spent.add(st.reserved)), true
}

// Len returns the number of tracked datasets. Tracking state is never
// evicted, so callers use Len to bound growth before admitting a release
// under a brand-new name.
func (a *Accountant) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.datasets)
}

// Tracked reports whether the dataset already has accountant state.
func (a *Accountant) Tracked(dataset string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.datasets[dataset]
	return ok
}

// Datasets returns the names of all tracked datasets, sorted.
func (a *Accountant) Datasets() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.datasets))
	for name := range a.datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Reservation is an in-flight budget claim. Exactly one of Commit or
// Refund must be called; both are idempotent and later calls are no-ops.
type Reservation struct {
	a       *Accountant
	dataset string
	amount  Budget
	settled bool
}

// Reserve atomically claims budget for one release against the dataset's
// cap. It fails with *OverBudgetError when committed spend plus in-flight
// reservations plus the request would exceed a capped component.
func (a *Accountant) Reserve(dataset string, p Budget) (*Reservation, error) {
	if p.Epsilon < 0 || p.Delta < 0 {
		return nil, fmt.Errorf("accountant: negative budget (ε=%g, δ=%g)", p.Epsilon, p.Delta)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.get(dataset)
	if st.capped {
		claimed := st.spent.add(st.reserved)
		overEps := st.cap.Epsilon > 0 && claimed.Epsilon+p.Epsilon > st.cap.Epsilon*(1+slackRel)
		overDelta := st.cap.Delta > 0 && claimed.Delta+p.Delta > st.cap.Delta*(1+slackRel)
		if overEps || overDelta {
			return nil, &OverBudgetError{
				Dataset:   dataset,
				Requested: p,
				Remaining: st.cap.sub(claimed),
			}
		}
	}
	st.reserved = st.reserved.add(p)
	return &Reservation{a: a, dataset: dataset, amount: p}, nil
}

// Commit converts the reservation into committed spend.
func (r *Reservation) Commit() {
	r.settle(true)
}

// Refund releases the reservation without charging it; use when the
// release failed and no private output was produced.
func (r *Reservation) Refund() {
	r.settle(false)
}

func (r *Reservation) settle(commit bool) {
	r.a.mu.Lock()
	defer r.a.mu.Unlock()
	if r.settled {
		return
	}
	r.settled = true
	st := r.a.get(r.dataset)
	st.reserved = st.reserved.sub(r.amount)
	if commit {
		st.spent = st.spent.add(r.amount)
	}
}
