package accountant

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestReserveCommitRefund(t *testing.T) {
	a := New()
	a.SetCap("d", Budget{Epsilon: 1, Delta: 1e-3})

	res, err := a.Reserve("d", Budget{Epsilon: 0.4, Delta: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Spent("d"); got.Epsilon != 0 {
		t.Fatalf("spend before commit: %+v", got)
	}
	// The reservation already counts against the cap.
	if rem, ok := a.Remaining("d"); !ok || math.Abs(rem.Epsilon-0.6) > 1e-12 {
		t.Fatalf("remaining with reservation in flight: %+v ok=%v", rem, ok)
	}
	res.Commit()
	if got := a.Spent("d"); math.Abs(got.Epsilon-0.4) > 1e-12 || math.Abs(got.Delta-1e-4) > 1e-18 {
		t.Fatalf("spend after commit: %+v", got)
	}
	res.Commit() // idempotent
	res.Refund() // no-op after settle
	if got := a.Spent("d"); math.Abs(got.Epsilon-0.4) > 1e-12 {
		t.Fatalf("double settle changed spend: %+v", got)
	}

	res2, err := a.Reserve("d", Budget{Epsilon: 0.5, Delta: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	res2.Refund()
	if got := a.Spent("d"); math.Abs(got.Epsilon-0.4) > 1e-12 {
		t.Fatalf("refund charged the ledger: %+v", got)
	}
	if rem, ok := a.Remaining("d"); !ok || math.Abs(rem.Epsilon-0.6) > 1e-12 {
		t.Fatalf("remaining after refund: %+v", rem)
	}
}

func TestOverBudgetReporting(t *testing.T) {
	a := New()
	a.SetCap("d", Budget{Epsilon: 1, Delta: 1e-3})
	res, err := a.Reserve("d", Budget{Epsilon: 0.7, Delta: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	res.Commit()

	_, err = a.Reserve("d", Budget{Epsilon: 0.5, Delta: 1e-4})
	var over *OverBudgetError
	if !errors.As(err, &over) {
		t.Fatalf("want OverBudgetError, got %v", err)
	}
	if over.Dataset != "d" || math.Abs(over.Remaining.Epsilon-0.3) > 1e-9 {
		t.Fatalf("over-budget detail: %+v", over)
	}
	// The refused reservation must not have claimed anything.
	ok, err := a.Reserve("d", Budget{Epsilon: 0.3, Delta: 1e-4})
	if err != nil {
		t.Fatalf("in-cap reservation after refusal: %v", err)
	}
	ok.Commit()
}

func TestUncappedDatasetIsTrackedButUnlimited(t *testing.T) {
	a := New()
	for i := 0; i < 50; i++ {
		res, err := a.Reserve("free", Budget{Epsilon: 10, Delta: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		res.Commit()
	}
	if got := a.Spent("free"); math.Abs(got.Epsilon-500) > 1e-9 {
		t.Fatalf("spend %+v", got)
	}
	if _, ok := a.Remaining("free"); ok {
		t.Fatal("uncapped dataset reported a remaining budget")
	}
}

func TestPartialCapOnlyEpsilon(t *testing.T) {
	a := New()
	a.SetCap("d", Budget{Epsilon: 1}) // δ unlimited
	res, err := a.Reserve("d", Budget{Epsilon: 0.9, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res.Commit()
	if _, err := a.Reserve("d", Budget{Epsilon: 0.2, Delta: 0.5}); err == nil {
		t.Fatal("epsilon cap not enforced")
	}
}

// TestConcurrentReservationsNeverOverspend is the core guarantee: many
// goroutines racing to release against one capped dataset, with some
// refunding, must end with committed spend within the cap and exactly the
// number of successes the cap allows. Run under -race in CI.
func TestConcurrentReservationsNeverOverspend(t *testing.T) {
	a := New()
	const cap = 1.0
	const per = 0.1
	a.SetCap("shared", Budget{Epsilon: cap, Delta: 1e-2})

	const workers = 64
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed := 0
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := a.Reserve("shared", Budget{Epsilon: per, Delta: 1e-4})
			if err != nil {
				var over *OverBudgetError
				if !errors.As(err, &over) {
					t.Errorf("unexpected error: %v", err)
				}
				return
			}
			// Every 4th worker simulates a failed release and refunds,
			// making room for a later worker.
			if g%4 == 3 {
				res.Refund()
				return
			}
			res.Commit()
			mu.Lock()
			committed++
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	spent := a.Spent("shared")
	if spent.Epsilon > cap+1e-6 {
		t.Fatalf("overspent: %+v against cap %g", spent, cap)
	}
	if got := float64(committed) * per; math.Abs(got-spent.Epsilon) > 1e-9 {
		t.Fatalf("committed count %d inconsistent with spend %+v", committed, spent)
	}
	// With refunds freeing budget, later reservations can still land, but
	// never more than cap/per commits in total.
	if maxCommits := int(math.Round(cap / per)); committed > maxCommits {
		t.Fatalf("%d commits exceed the %g/%g cap", committed, cap, per)
	}
}

func TestNegativeBudgetRejected(t *testing.T) {
	a := New()
	if _, err := a.Reserve("d", Budget{Epsilon: -1}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
	// A negative cap component would silently read as unlimited.
	if err := a.SetCap("d", Budget{Epsilon: -1}); err == nil {
		t.Fatal("negative cap accepted")
	}
	if _, capped := a.Cap("d"); capped {
		t.Fatal("rejected cap was installed")
	}
}

// TestTinyDeltaCapEnforced: the round-off slack is relative to the cap.
// An absolute slack of 1e-9 would dwarf a δ cap of 1e-10 and admit ~11
// over-cap releases before refusing anything.
func TestTinyDeltaCapEnforced(t *testing.T) {
	a := New()
	a.SetCap("d", Budget{Delta: 1e-10})
	res, err := a.Reserve("d", Budget{Delta: 1e-10})
	if err != nil {
		t.Fatalf("exact-cap reservation refused: %v", err)
	}
	res.Commit()
	if _, err := a.Reserve("d", Budget{Delta: 1e-10}); err == nil {
		t.Fatal("second 1e-10 reservation admitted past a 1e-10 delta cap")
	}
}

// TestLenAndTracked covers the growth-bounding probes.
func TestLenAndTracked(t *testing.T) {
	a := New()
	if a.Len() != 0 || a.Tracked("d") {
		t.Fatalf("empty accountant: len=%d tracked=%v", a.Len(), a.Tracked("d"))
	}
	res, err := a.Reserve("d", Budget{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res.Refund()
	if a.Len() != 1 || !a.Tracked("d") {
		t.Fatalf("after reserve: len=%d tracked=%v", a.Len(), a.Tracked("d"))
	}
}
