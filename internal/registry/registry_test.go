package registry

import (
	"errors"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	r := New()
	hist := []float64{1, 2, 3, 4}
	if err := r.Put("adult", hist); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's slice must not reach the registered copy.
	hist[0] = 99
	d, err := r.Get("adult")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "adult" || d.Cells() != 4 || d.Histogram[0] != 1 {
		t.Fatalf("round trip: %+v", d)
	}
}

func TestUnknownDataset(t *testing.T) {
	r := New()
	if _, err := r.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestDuplicateAndInvalid(t *testing.T) {
	r := New()
	if err := r.Put("d", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("d", []float64{2}); !errors.Is(err, ErrExists) {
		t.Fatalf("want ErrExists, got %v", err)
	}
	if err := r.Put("", []float64{1}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.Put("empty", nil); err == nil {
		t.Fatal("empty histogram accepted")
	}
}

func TestNamesSortedAndConcurrentAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	names := []string{"c", "a", "b"}
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if err := r.Put(name, []float64{1, 2}); err != nil {
				t.Error(err)
			}
		}(name)
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Names()
			_, _ = r.Get("a")
		}()
	}
	wg.Wait()
	got := r.Names()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("names: %v", got)
	}
	if r.Len() != 3 {
		t.Fatalf("len: %d", r.Len())
	}
}
