// Package registry stores named histogram datasets for the release
// server. A histogram is uploaded once (POST /datasets) and every
// subsequent release references it by name, so high-traffic clients stop
// shipping million-cell vectors in each /answer body — the shared-dataset
// serving model: one upload, many analysts, one tracked budget.
//
// The registry is purely in-memory storage: histograms are copied in on
// Put, and Get hands out the stored slice read-only (releases only ever
// multiply against it). Budget enforcement lives in the accountant
// package.
package registry

import (
	"fmt"
	"sort"
	"sync"
)

// ErrNotFound is returned by Get for unknown dataset names.
var ErrNotFound = fmt.Errorf("registry: dataset not found")

// ErrExists is returned by Put when the name is already registered:
// silently replacing a dataset would retroactively change what previous
// releases were computed on, so replacement must be explicit (Delete +
// Put) if ever needed.
var ErrExists = fmt.Errorf("registry: dataset already registered")

// Dataset is one registered histogram.
type Dataset struct {
	Name      string
	Histogram []float64
}

// Cells returns the histogram length.
func (d *Dataset) Cells() int { return len(d.Histogram) }

// Registry is a concurrency-safe name → histogram store.
type Registry struct {
	mu   sync.RWMutex
	data map[string]*Dataset
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{data: map[string]*Dataset{}}
}

// Put registers a histogram under a name, copying the slice so later
// caller mutations cannot alter registered data. It fails with ErrExists
// for duplicate names and rejects empty names and empty histograms.
func (r *Registry) Put(name string, histogram []float64) error {
	if name == "" {
		return fmt.Errorf("registry: dataset name required")
	}
	if len(histogram) == 0 {
		return fmt.Errorf("registry: dataset %q has an empty histogram", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.data[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	r.data[name] = &Dataset{
		Name:      name,
		Histogram: append([]float64(nil), histogram...),
	}
	return nil
}

// Get returns the dataset registered under name. The histogram is shared,
// not copied: callers must treat it as read-only (releases only ever
// multiply against it).
func (r *Registry) Get(name string) (*Dataset, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.data[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return d, nil
}

// Names returns all registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.data))
	for name := range r.data {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.data)
}
