package core

import (
	"math"
	"testing"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/workload"
)

// lowThreshold forces the factored pipeline at test-friendly sizes;
// highThreshold forces the dense pipeline on the same workload.
const (
	lowThreshold  = 10
	highThreshold = 1 << 30
)

var structuredPrivacy = mm.Privacy{Epsilon: 0.5, Delta: 1e-4}

func workloadError(t *testing.T, w *workload.Workload, op linalg.Operator) float64 {
	t.Helper()
	e, err := mm.Error(w, op, structuredPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// The factored branch must reproduce the dense branch: same program, same
// error, for each of the three design entry points.
func TestFactoredMatchesDense(t *testing.T) {
	w := workload.AllRange(domain.MustShape(12, 12))
	cases := []struct {
		name string
		run  func(o Options) (*Result, error)
	}{
		{"design", func(o Options) (*Result, error) { return Design(w, o) }},
		{"separation", func(o Options) (*Result, error) { return EigenSeparation(w, 8, o) }},
		{"principal", func(o Options) (*Result, error) { return PrincipalVectors(w, 6, o) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fact, err := c.run(Options{StructuredThreshold: lowThreshold})
			if err != nil {
				t.Fatal(err)
			}
			if fact.Strategy != nil {
				t.Fatal("factored result materialized a dense strategy")
			}
			if fact.Op == nil {
				t.Fatal("factored result has no operator")
			}
			dense, err := c.run(Options{StructuredThreshold: highThreshold})
			if err != nil {
				t.Fatal(err)
			}
			if dense.Strategy == nil {
				t.Fatal("dense result missing strategy matrix")
			}
			eF := workloadError(t, w, fact.Op)
			eD := workloadError(t, w, dense.Strategy)
			if math.Abs(eF-eD) > 1e-6*eD {
				t.Fatalf("errors diverge: factored %g vs dense %g", eF, eD)
			}
			// The attached column norms must match the materialized truth.
			got := linalg.OperatorColNorms2(fact.Op)
			want := linalg.ToDense(fact.Op).ColNorms2()
			for j := range want {
				if math.Abs(got[j]-want[j]) > 1e-8*(1+want[j]) {
					t.Fatalf("column norm %d: %g vs %g", j, got[j], want[j])
				}
			}
		})
	}
}

// Eigenvalues from the factored path must match the dense path (they feed
// the server's lower-bound report).
func TestFactoredEigenvaluesMatchDense(t *testing.T) {
	w := workload.AllRange(domain.MustShape(8, 10))
	fact, err := PrincipalVectors(w, 4, Options{StructuredThreshold: lowThreshold})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := PrincipalVectors(w, 4, Options{StructuredThreshold: highThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if len(fact.Eigenvalues) != len(dense.Eigenvalues) {
		t.Fatalf("eigenvalue counts differ: %d vs %d", len(fact.Eigenvalues), len(dense.Eigenvalues))
	}
	for i := range fact.Eigenvalues {
		if math.Abs(fact.Eigenvalues[i]-dense.Eigenvalues[i]) > 1e-8*(1+dense.Eigenvalues[i]) {
			t.Fatalf("eigenvalue %d: %g vs %g", i, fact.Eigenvalues[i], dense.Eigenvalues[i])
		}
	}
}

// One-dimensional and small workloads must never take the factored branch.
func TestFactoredGate(t *testing.T) {
	if _, ok := factoredEigenFor(workload.AllRange(domain.MustShape(4096)), Options{}.withDefaults()); ok {
		t.Fatal("1-D workload took the factored branch")
	}
	if _, ok := factoredEigenFor(workload.AllRange(domain.MustShape(8, 8)), Options{}.withDefaults()); ok {
		t.Fatal("small workload took the factored branch")
	}
	o := Options{L1: true, StructuredThreshold: lowThreshold}.withDefaults()
	if _, ok := factoredEigenFor(workload.AllRange(domain.MustShape(12, 12)), o); ok {
		t.Fatal("L1 weighting took the factored branch")
	}
	if _, ok := factoredEigenFor(workload.AllRange(domain.MustShape(12, 12)), Options{StructuredThreshold: lowThreshold}.withDefaults()); !ok {
		t.Fatal("eligible workload did not take the factored branch")
	}
}
