package core

import (
	"math"
	"testing"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/workload"
)

var structuredPrivacy = mm.Privacy{Epsilon: 0.5, Delta: 1e-4}

func workloadError(t *testing.T, w *workload.Workload, op linalg.Operator) float64 {
	t.Helper()
	e, err := mm.Error(w, op, structuredPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// The factored branch must reproduce the dense branch: same program, same
// error, for each of the three design entry points.
func TestFactoredMatchesDense(t *testing.T) {
	w := workload.AllRange(domain.MustShape(12, 12))
	cases := []struct {
		name string
		run  func(o Options) (*Result, error)
	}{
		{"design", func(o Options) (*Result, error) { return Design(w, o) }},
		{"separation", func(o Options) (*Result, error) { return EigenSeparation(w, 8, o) }},
		{"principal", func(o Options) (*Result, error) { return PrincipalVectors(w, 6, o) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fact, err := c.run(Options{Pipeline: PipelineFactored})
			if err != nil {
				t.Fatal(err)
			}
			if fact.Strategy != nil {
				t.Fatal("factored result materialized a dense strategy")
			}
			if fact.Op == nil {
				t.Fatal("factored result has no operator")
			}
			dense, err := c.run(Options{})
			if err != nil {
				t.Fatal(err)
			}
			if dense.Strategy == nil {
				t.Fatal("dense result missing strategy matrix")
			}
			eF := workloadError(t, w, fact.Op)
			eD := workloadError(t, w, dense.Strategy)
			if math.Abs(eF-eD) > 1e-6*eD {
				t.Fatalf("errors diverge: factored %g vs dense %g", eF, eD)
			}
			// The attached column norms must match the materialized truth.
			got := linalg.OperatorColNorms2(fact.Op)
			want := linalg.ToDense(fact.Op).ColNorms2()
			for j := range want {
				if math.Abs(got[j]-want[j]) > 1e-8*(1+want[j]) {
					t.Fatalf("column norm %d: %g vs %g", j, got[j], want[j])
				}
			}
		})
	}
}

// Eigenvalues from the factored path must match the dense path (they feed
// the server's lower-bound report).
func TestFactoredEigenvaluesMatchDense(t *testing.T) {
	w := workload.AllRange(domain.MustShape(8, 10))
	fact, err := PrincipalVectors(w, 4, Options{Pipeline: PipelineFactored})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := PrincipalVectors(w, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fact.Eigenvalues) != len(dense.Eigenvalues) {
		t.Fatalf("eigenvalue counts differ: %d vs %d", len(fact.Eigenvalues), len(dense.Eigenvalues))
	}
	for i := range fact.Eigenvalues {
		if math.Abs(fact.Eigenvalues[i]-dense.Eigenvalues[i]) > 1e-8*(1+dense.Eigenvalues[i]) {
			t.Fatalf("eigenvalue %d: %g vs %g", i, fact.Eigenvalues[i], dense.Eigenvalues[i])
		}
	}
}

// The factored pipeline is explicit-request only: requesting it on an
// ineligible workload (no product form, L1 weighting, custom basis) must
// error instead of silently running dense, and the eligibility predicate
// the planner keys on must agree.
func TestFactoredPipelineEligibility(t *testing.T) {
	oneD := workload.AllRange(domain.MustShape(4096))
	if FactoredEligible(oneD) {
		t.Fatal("1-D workload reported factored-eligible")
	}
	if _, err := Design(oneD, Options{Pipeline: PipelineFactored}); err == nil {
		t.Fatal("factored design of a 1-D workload did not error")
	}
	twoD := workload.AllRange(domain.MustShape(12, 12))
	if !FactoredEligible(twoD) {
		t.Fatal("product-form workload not reported factored-eligible")
	}
	if _, err := Design(twoD, Options{Pipeline: PipelineFactored, L1: true}); err == nil {
		t.Fatal("factored design under L1 did not error")
	}
	basis := linalg.Identity(twoD.Cells())
	if _, err := Design(twoD, Options{Pipeline: PipelineFactored, DesignBasis: basis}); err == nil {
		t.Fatal("factored design with a custom basis did not error")
	}
	if _, err := factoredEigen(twoD, Options{}.withDefaults()); err != nil {
		t.Fatalf("eligible workload refused the factored branch: %v", err)
	}
}
