package core

import (
	"errors"
	"fmt"
	"math"

	"adaptivemm/internal/linalg"
	"adaptivemm/internal/workload"
)

// This file implements the factored (matrix-free) branch of the
// Eigen-Design pipeline, selected explicitly via Options.Pipeline (the
// cost-based planner owns the rule for when large product-form workloads
// should take it). When a workload has product form — its Gram matrix is
// a Kronecker product of per-dimension factors, as for multi-dimensional
// all-range — the eigendecomposition is composed from per-dimension
// decompositions (O(Σdᵢ³) instead of O(n³)) and, crucially,
// never materialized: design queries are streamed one row at a time into
// the weighting program, and the resulting strategy is returned as a
// linalg.Operator
//
//	A = [ diag(λ) · P · (V₁ ⊗ … ⊗ V_k) ;  D ]
//
// (weighted, eigenvalue-sorted Kronecker eigenbasis plus sparse completion
// rows D), whose matvecs cost O(n·Σdᵢ) — the form the CGLS inference path
// consumes. This converts the old dense O(n²)-memory/O(n³)-time ceiling on
// Design into a per-dimension cost.

// FactoredEligible reports whether the factored pipeline can run on w:
// product (Kronecker) form with at least two Gram factors. The planner
// uses it as an admission predicate; whether a given domain size *should*
// go factored is the planner's call, not core's.
func FactoredEligible(w *workload.Workload) bool {
	factors, ok := w.GramFactors()
	return ok && len(factors) >= 2
}

// factoredEigen returns the factored eigendecomposition of the workload's
// Gram matrix for an explicitly requested PipelineFactored run. It errors
// when the pipeline does not apply: the factored branch needs product
// form with at least two factors, the L2 weighting, and the eigen design
// set (no custom basis).
func factoredEigen(w *workload.Workload, o Options) (*linalg.FactoredEigen, error) {
	if o.L1 {
		return nil, errors.New("core: the factored pipeline supports only the L2 weighting")
	}
	if o.DesignBasis != nil {
		return nil, errors.New("core: the factored pipeline uses the eigen design set; custom bases are dense-only")
	}
	factors, ok := w.GramFactors()
	if !ok || len(factors) < 2 {
		return nil, fmt.Errorf("core: workload %q has no product (Kronecker) Gram form; the factored pipeline needs per-dimension factors", w.Name())
	}
	parts := make([]*linalg.EigenSym, len(factors))
	for i, f := range factors {
		eg, err := linalg.SymEigen(f)
		if err != nil {
			return nil, err
		}
		parts[i] = eg
	}
	return linalg.KronEigenFactored(parts...), nil
}

// designFactored is the exact Program 2 on a factored eigenbasis: every
// eigen-query gets its own weight. The constraint matrix is still n×n
// (streamed row by row), so this remains the most expensive design; the
// payoff is the strategy operator, which skips the dense assembly and the
// O(n³) pseudo-inverse entirely.
func designFactored(fe *linalg.FactoredEigen, o Options) (*Result, error) {
	sigma := clampNonNegative(fe.Values)
	n := fe.N()
	b := linalg.New(n, n)
	for r := 0; r < n; r++ {
		row := fe.Row(r)
		dst := b.Row(r)
		for j, v := range row {
			dst[j] = v * v
		}
	}
	u, err := solveWeightingPrepared(b, sigma, o)
	if err != nil {
		return nil, err
	}
	cn2 := b.TMulVec(u)
	res, err := assembleFactored(fe, sqrtAll(u), cn2, o)
	if err != nil {
		return nil, err
	}
	res.Eigenvalues = sigma
	return res, nil
}

// separationFactored runs eigen-query separation (Sec 4.2) on a factored
// eigenbasis: groups of eigen rows are materialized transiently (g×n at a
// time), weighted independently, then rescaled by the per-group program.
func separationFactored(fe *linalg.FactoredEigen, groupSize int, o Options) (*Result, error) {
	sigma := clampNonNegative(fe.Values)
	n := fe.N()
	// Eigenvalues are sorted descending, so the rank cutoff keeps a prefix.
	kept := len(keptIndices(sigma, o.RankTol))
	if kept == 0 {
		return nil, errors.New("core: workload has no information (all eigenvalues zero)")
	}

	u := make([]float64, n)
	type group struct{ lo, hi int } // [lo, hi)
	var groups []group
	for at := 0; at < kept; at += groupSize {
		end := at + groupSize
		if end > kept {
			end = kept
		}
		groups = append(groups, group{at, end})
	}

	// Phase 1 per group; accumulate the aggregated squared rows for phase 2.
	bRows := linalg.New(len(groups), n)
	cGroups := make([]float64, len(groups))
	for gi, g := range groups {
		qg := linalg.New(g.hi-g.lo, n)
		for r := g.lo; r < g.hi; r++ {
			copy(qg.Row(r-g.lo), fe.Row(r))
		}
		ug, err := solveWeighting(qg, sigma[g.lo:g.hi], o)
		if err != nil {
			return nil, err
		}
		row := bRows.Row(gi)
		var cost float64
		for r := g.lo; r < g.hi; r++ {
			ui := ug[r-g.lo]
			u[r] = ui
			qr := qg.Row(r - g.lo)
			for j, qv := range qr {
				row[j] += qv * qv * ui
			}
			if ui > 0 {
				cost += sigma[r] / ui
			}
		}
		cGroups[gi] = cost
	}

	// Phase 2: one scale factor per group — the same program shape.
	v, err := solveWeightingPrepared(bRows, cGroups, o)
	if err != nil {
		return nil, err
	}
	for gi, g := range groups {
		for r := g.lo; r < g.hi; r++ {
			u[r] *= v[gi]
		}
	}
	cn2 := bRows.TMulVec(v)
	res, err := assembleFactored(fe, sqrtAll(u), cn2, o)
	if err != nil {
		return nil, err
	}
	res.Eigenvalues = sigma
	return res, nil
}

// principalFactored runs the principal-vector optimization (Sec 4.2) on a
// factored eigenbasis: only the k leading eigen-queries are materialized
// (O(k·n) transient memory); every remaining eigen-query shares one weight.
// Because the full eigenbasis is orthonormal, the shared tail's squared
// column profile is 1 − Σ_principal qᵢⱼ² analytically — no tail row is ever
// formed. This is the design that scales: k+1 variables regardless of n.
func principalFactored(fe *linalg.FactoredEigen, k int, o Options) (*Result, error) {
	sigma := clampNonNegative(fe.Values)
	n := fe.N()
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		return nil, fmt.Errorf("core: principal vector count %d < 1", k)
	}
	b := linalg.New(k+1, n)
	c := make([]float64, k+1)
	tail := b.Row(k)
	for j := range tail {
		tail[j] = 1
	}
	for r := 0; r < k; r++ {
		row := fe.Row(r)
		dst := b.Row(r)
		for j, v := range row {
			sq := v * v
			dst[j] = sq
			tail[j] -= sq
		}
		c[r] = sigma[r]
	}
	for j, v := range tail {
		if v < 0 { // orthonormality round-off
			tail[j] = 0
		}
	}
	var tailCost float64
	for _, s := range sigma[k:] {
		tailCost += s
	}
	c[k] = tailCost

	u, err := solveWeightingPrepared(b, c, o)
	if err != nil {
		return nil, err
	}
	scales := make([]float64, n)
	for r := 0; r < k; r++ {
		scales[r] = sqrtNonNegative(u[r])
	}
	tailScale := sqrtNonNegative(u[k])
	for r := k; r < n; r++ {
		scales[r] = tailScale
	}
	cn2 := b.TMulVec(u)
	res, err := assembleFactored(fe, scales, cn2, o)
	if err != nil {
		return nil, err
	}
	res.Eigenvalues = sigma
	return res, nil
}

// assembleFactored builds the strategy operator from the factored
// eigenbasis and solved row scales: steps 3–5 of Program 2 in matrix-free
// form. cn2 must hold the squared column norms of the scaled strategy
// (available as Bᵀu from every weighting program).
func assembleFactored(fe *linalg.FactoredEigen, scales, cn2 []float64, o Options) (*Result, error) {
	rank := 0
	for _, s := range scales {
		if s > 0 {
			rank++
		}
	}
	if rank == 0 {
		return nil, errors.New("core: weighting produced an all-zero strategy")
	}
	n := fe.N()
	var op linalg.Operator = linalg.ScaleRows(fe.VectorsOperator(), scales)
	colNorms := append([]float64(nil), cn2...)
	if !o.SkipCompletion {
		var maxN float64
		for _, v := range colNorms {
			if v > maxN {
				maxN = v
			}
		}
		var idx []int
		var vals []float64
		for j, v := range colNorms {
			gap := maxN - v
			if gap <= 1e-12*maxN {
				continue
			}
			idx = append(idx, j)
			vals = append(vals, math.Sqrt(gap))
			colNorms[j] = maxN
		}
		if len(idx) > 0 {
			op = linalg.StackOps(op, linalg.SparseDiag(n, idx, vals))
		}
	}
	// L1 column norms have no analytic form here (the factored pipeline is
	// L2-gated); a Laplace release on a factored strategy would probe all
	// n basis vectors on first use — correct but O(n²·Σdᵢ).
	op = linalg.WithColNorms(op, colNorms, nil)
	return &Result{Op: op, Weights: scales, Rank: rank}, nil
}

func sqrtAll(u []float64) []float64 {
	out := make([]float64, len(u))
	for i, v := range u {
		out[i] = sqrtNonNegative(v)
	}
	return out
}

func sqrtNonNegative(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
