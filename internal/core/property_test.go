package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/workload"
)

// randomSmallWorkload draws a random workload of a random class.
func randomSmallWorkload(r *rand.Rand) *workload.Workload {
	n := 4 + r.Intn(10)
	shape := domain.MustShape(n)
	switch r.Intn(5) {
	case 0:
		return workload.AllRange(shape)
	case 1:
		return workload.RandomRange(shape, 2+r.Intn(2*n), r)
	case 2:
		return workload.Prefix(n)
	case 3:
		return workload.Predicate(shape, 2+r.Intn(n), r)
	default:
		// Random dense workload with a few rows.
		m := linalg.New(2+r.Intn(n), n)
		for i := 0; i < m.Rows(); i++ {
			row := m.Row(i)
			for j := range row {
				row[j] = r.NormFloat64()
			}
		}
		return workload.FromMatrix("random dense", shape, m)
	}
}

// TestPropertyDesignSandwich checks, on random workloads, the fundamental
// sandwich: bound ≤ eigen error ≤ identity error, plus the Thm 3 cap.
func TestPropertyDesignSandwich(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := randomSmallWorkload(r)
		res, err := Design(w, Options{})
		if err != nil {
			return false
		}
		eig, err := mm.Error(w, res.Strategy, testPrivacy)
		if err != nil {
			return false
		}
		id, err := mm.Error(w, linalg.Identity(w.Cells()), testPrivacy)
		if err != nil {
			return false
		}
		lb := mm.LowerBoundFromEigenvalues(res.Eigenvalues, w.NumQueries(), testPrivacy)
		if eig < lb*(1-1e-9) {
			return false
		}
		if eig > id*(1+1e-9) {
			return false
		}
		return eig/lb <= ApproxRatioBound(res.Eigenvalues)*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDesignSupportsWorkload: the designed strategy always answers
// the workload it was designed for (ErrorChecked never rejects).
func TestPropertyDesignSupportsWorkload(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := randomSmallWorkload(r)
		res, err := Design(w, Options{})
		if err != nil {
			return false
		}
		_, err = mm.ErrorChecked(w, res.Strategy, testPrivacy)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySensitivityNormalized: designed strategies use the whole
// sensitivity budget — max column norm 1 (scale cancels in error, but a
// normalized output is the contract).
func TestPropertySensitivityNormalized(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := randomSmallWorkload(r)
		res, err := Design(w, Options{})
		if err != nil {
			return false
		}
		s := res.Strategy.MaxColNorm2()
		return s > 0.999 && s < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyScaleInvariance: scaling the whole workload scales the error
// linearly and leaves the chosen strategy's relative quality unchanged.
func TestPropertyScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := randomSmallWorkload(r)
		res, err := Design(w, Options{})
		if err != nil {
			return false
		}
		e1, err := mm.Error(w, res.Strategy, testPrivacy)
		if err != nil {
			return false
		}
		k := 1 + 5*r.Float64()
		e2, err := mm.Error(w.Scale(k), res.Strategy, testPrivacy)
		if err != nil {
			return false
		}
		return abs(e2-k*e1) < 1e-6*k*e1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUnionAtLeastAsHard: adding queries can only increase the
// total (non-averaged) difficulty — check via the svdb bound on the union
// versus its parts, using the un-averaged form m·Error².
func TestPropertyUnionAtLeastAsHard(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(8)
		shape := domain.MustShape(n)
		w1 := workload.RandomRange(shape, 2+r.Intn(n), r)
		w2 := workload.Predicate(shape, 2+r.Intn(n), r)
		u := workload.Union("u", w1, w2)
		s1, err := mm.SVDB(w1)
		if err != nil {
			return false
		}
		su, err := mm.SVDB(u)
		if err != nil {
			return false
		}
		// svdb is (Σ√σ)²/n of WᵀW; the union's Gram dominates w1's in the
		// PSD order, so its svdb cannot be smaller.
		return su >= s1*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
