package core

import (
	"math"
	"sort"
	"testing"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/workload"
)

func TestDesignMarginalsMeetsBoundExactly(t *testing.T) {
	// The closed form achieves the Thm 2 singular value bound exactly:
	// β_T = m_T/n makes the Lagrange objective equal svdb(W).
	cases := []struct {
		shape   domain.Shape
		subsets [][]int
	}{
		{domain.MustShape(4, 4), [][]int{{0}, {1}}},
		{domain.MustShape(3, 4, 2), [][]int{{0, 1}, {0, 2}, {1, 2}}},
		{domain.MustShape(2, 2, 2), [][]int{{0, 1, 2}}},
		{domain.MustShape(5, 3), [][]int{{0}, {1}, {0, 1}, {}}},
	}
	for _, c := range cases {
		res, err := DesignMarginals(c.shape, c.subsets)
		if err != nil {
			t.Fatal(err)
		}
		w := workload.MarginalSet("m", c.shape, c.subsets)
		e, err := mm.Error(w, res.Strategy, testPrivacy)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := mm.LowerBound(w, testPrivacy)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e/lb-1) > 1e-6 {
			t.Fatalf("%v %v: error %g != bound %g (ratio %g)", c.shape, c.subsets, e, lb, e/lb)
		}
	}
}

func TestDesignMarginalsMatchesGenericDesign(t *testing.T) {
	// The generic eigen-design should find (numerically) the same optimum.
	shape := domain.MustShape(3, 3, 2)
	subsets := [][]int{{0}, {1}, {0, 1}, {2}}
	res, err := DesignMarginals(shape, subsets)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.MarginalSet("m", shape, subsets)
	closed, err := mm.Error(w, res.Strategy, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	generic := designError(t, w, Options{})
	if math.Abs(closed-generic) > 0.01*closed {
		t.Fatalf("closed form %g vs generic %g", closed, generic)
	}
	if generic < closed*(1-1e-9) {
		t.Fatal("generic beat the provably optimal closed form")
	}
}

func TestDesignMarginalsEigenvaluesMatchGram(t *testing.T) {
	shape := domain.MustShape(3, 4)
	subsets := [][]int{{0}, {0, 1}}
	res, err := DesignMarginals(shape, subsets)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.MarginalSet("m", shape, subsets)
	eg, err := linalg.SymEigen(w.Gram())
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), eg.Values...)
	got := append([]float64(nil), res.Eigenvalues...)
	// Pad closed-form list with zeros to n.
	for len(got) < len(want) {
		got = append(got, 0)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(got)))
	for i := range want {
		if math.Abs(got[i]-math.Max(want[i], 0)) > 1e-8*(1+want[i]) {
			t.Fatalf("eigenvalue %d: closed form %g vs gram %g", i, got[i], want[i])
		}
	}
}

func TestDesignMarginalsSupportsWorkload(t *testing.T) {
	shape := domain.MustShape(4, 2, 3)
	subsets := [][]int{{0, 2}, {1}}
	res, err := DesignMarginals(shape, subsets)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.MarginalSet("m", shape, subsets)
	if _, err := mm.ErrorChecked(w, res.Strategy, testPrivacy); err != nil {
		t.Fatalf("closed-form strategy does not support its workload: %v", err)
	}
}

func TestDesignMarginalsRepeatedSubsetsAddWeight(t *testing.T) {
	// Requesting a marginal twice shifts weight toward it: its own error
	// must not increase, and the sibling marginal's error must not drop.
	shape := domain.MustShape(4, 4)
	once, err := DesignMarginals(shape, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	twice, err := DesignMarginals(shape, [][]int{{0}, {0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	m0 := workload.MarginalSet("m0", shape, [][]int{{0}})
	e1, err := mm.Error(m0, once.Strategy, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := mm.Error(m0, twice.Strategy, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if e2 >= e1 {
		t.Fatalf("doubling a marginal did not reduce its error: %g vs %g", e2, e1)
	}
}

func TestDesignMarginalsTotalOnly(t *testing.T) {
	// The empty subset (total query) alone.
	shape := domain.MustShape(4, 4)
	res, err := DesignMarginals(shape, [][]int{{}})
	if err != nil {
		t.Fatal(err)
	}
	w := workload.MarginalSet("total", shape, [][]int{{}})
	e, err := mm.Error(w, res.Strategy, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := mm.LowerBound(w, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e/lb-1) > 1e-6 {
		t.Fatalf("total-only error %g != bound %g", e, lb)
	}
}

func TestDesignMarginalsValidation(t *testing.T) {
	shape := domain.MustShape(2, 2)
	if _, err := DesignMarginals(shape, nil); err == nil {
		t.Fatal("accepted empty subsets")
	}
	if _, err := DesignMarginals(shape, [][]int{{5}}); err == nil {
		t.Fatal("accepted out-of-range attribute")
	}
}

func TestDesignMarginalsUnitDimension(t *testing.T) {
	// A dimension of size 1 contributes no Helmert vectors; the designer
	// must still work.
	shape := domain.MustShape(4, 1, 3)
	res, err := DesignMarginals(shape, [][]int{{0}, {2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	w := workload.MarginalSet("m", shape, [][]int{{0}, {2}, {0, 2}})
	e, err := mm.Error(w, res.Strategy, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := mm.LowerBound(w, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e/lb-1) > 1e-6 {
		t.Fatalf("unit-dim error %g != bound %g", e, lb)
	}
}

func TestDesignMarginalsLargeDomainFast(t *testing.T) {
	// The whole point: exact optimal marginal strategies at scale (512
	// cells here; the sec41 experiment goes to 2048) in milliseconds, with
	// no O(n³) decomposition. Verification via mm.Error is the slow part,
	// which is why this test stops at 512 cells.
	shape := domain.MustShape(8, 8, 8)
	subsets := [][]int{{0, 1}, {0, 2}, {1, 2}}
	res, err := DesignMarginals(shape, subsets)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.Cols() != 512 {
		t.Fatalf("cols = %d", res.Strategy.Cols())
	}
	// Error vs the closed-form bound computed from its own eigenvalues.
	w := workload.MarginalSet("2way", shape, subsets)
	e, err := mm.Error(w, res.Strategy, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	lb := mm.LowerBoundFromEigenvalues(res.Eigenvalues, w.NumQueries(), testPrivacy)
	if math.Abs(e/lb-1) > 1e-6 {
		t.Fatalf("paper-scale marginal design off bound: %g vs %g", e, lb)
	}
}
