// Package core implements the paper's primary contribution: the
// Eigen-Design algorithm (Program 2) that adapts the matrix mechanism's
// strategy to a given workload, together with the Sec 4 performance
// optimizations (eigen-query separation and principal-vector optimization),
// alternative design bases, and the ε-differential-privacy (L1) variant of
// the weighting program (Sec 3.5).
package core

import (
	"errors"
	"fmt"
	"math"

	"adaptivemm/internal/linalg"
	"adaptivemm/internal/opt"
	"adaptivemm/internal/workload"
)

// Solver selects the optimizer used for the query weighting program.
type Solver int

const (
	// SolverAuto uses the interior-point solver up to
	// Options.FirstOrderThreshold design queries and the first-order solver
	// beyond that.
	SolverAuto Solver = iota
	// SolverBarrier forces the log-barrier Newton interior-point method.
	SolverBarrier
	// SolverFirstOrder forces the scalable first-order method.
	SolverFirstOrder
)

// Pipeline selects the representation the design pipeline works in. Core
// no longer decides this on its own: the cost-based planner
// (internal/planner) owns the admission rule that sends large product-form
// workloads down the factored pipeline, and requests it explicitly here.
type Pipeline int

const (
	// PipelineDense is the dense pipeline: explicit design queries, an
	// explicit strategy matrix (Result.Strategy set), O(n³) algebra.
	PipelineDense Pipeline = iota
	// PipelineFactored keeps the eigen-structure of a product (Kronecker)
	// form workload factored per dimension and returns the strategy as a
	// matrix-free operator (Result.Strategy nil, use Result.Op). It
	// requires product form with at least two Gram factors, the L2
	// weighting, and no custom design basis; Design returns an error
	// otherwise (see FactoredEligible).
	PipelineFactored
)

// Options configures the Eigen-Design algorithm. The zero value gives the
// paper's default behaviour: eigen-query design set, L2/(ε,δ) weighting,
// column completion enabled, automatic solver choice, dense pipeline.
type Options struct {
	// Solver picks the weighting optimizer.
	Solver Solver
	// FirstOrderThreshold is the design-set size above which SolverAuto
	// switches to the first-order solver. Default 384.
	FirstOrderThreshold int
	// L1 switches to the ε-differential-privacy variant of Sec 3.5: the
	// weighting program constrains L1 column norms (Power 2).
	L1 bool
	// DesignBasis overrides the design queries (rows). When nil the
	// eigen-queries of the workload are used (Def. 6). Used by the Fig. 5
	// experiment to compare wavelet and Fourier design sets.
	DesignBasis *linalg.Matrix
	// SkipCompletion disables steps 4–5 of Program 2 (an ablation; the
	// completed strategy is never worse).
	SkipCompletion bool
	// RankTol is the relative eigenvalue cutoff below which design queries
	// are dropped (Sec 4.1). Default 1e-10.
	RankTol float64
	// Pipeline selects the dense or factored (matrix-free) pipeline.
	Pipeline Pipeline
	// Barrier and FirstOrder tune the respective solvers.
	Barrier    opt.BarrierOptions
	FirstOrder opt.FirstOrderOptions
}

func (o Options) withDefaults() Options {
	if o.FirstOrderThreshold <= 0 {
		o.FirstOrderThreshold = 384
	}
	if o.RankTol <= 0 {
		o.RankTol = 1e-10
	}
	return o
}

// Result is the output of the Eigen-Design algorithm.
type Result struct {
	// Op is the strategy as a linear operator — always set. For the dense
	// pipeline it is the Strategy matrix itself; for structured (factored
	// Kronecker) designs it is a matrix-free composition of the
	// per-dimension eigenvector matrices, the solved weights, and the
	// completion rows.
	Op linalg.Operator
	// Strategy is the full strategy matrix A (weighted design queries plus
	// completion rows). It is nil for structured designs, which are too
	// large to materialize — use Op.
	Strategy *linalg.Matrix
	// Weights holds the solved weight λᵢ of each design query.
	Weights []float64
	// Design holds the design queries used (rows); nil for structured
	// designs (the design set is the factored eigenbasis).
	Design *linalg.Matrix
	// Eigenvalues are the eigenvalues of WᵀW in descending order (clamped
	// at zero); nil when a custom design basis was supplied.
	Eigenvalues []float64
	// Rank is the number of design queries kept after the rank cutoff.
	Rank int
}

// Design runs the Eigen-Design algorithm (Program 2) on the workload and
// returns the adapted strategy.
func Design(w *workload.Workload, o Options) (*Result, error) {
	o = o.withDefaults()
	if o.DesignBasis != nil {
		if o.Pipeline == PipelineFactored {
			return nil, errors.New("core: custom design bases run the dense pipeline only")
		}
		return designWithBasis(w, o.DesignBasis, o)
	}
	if o.Pipeline == PipelineFactored {
		fe, err := factoredEigen(w, o)
		if err != nil {
			return nil, err
		}
		return designFactored(fe, o)
	}

	// Step 1: eigendecomposition of WᵀW; design queries are eigen-queries.
	eg, err := gramEigen(w)
	if err != nil {
		return nil, err
	}
	sigma := clampNonNegative(eg.Values)

	// Step 2: optimal query weighting with cᵢ = σᵢ.
	u, err := solveWeighting(eg.Vectors, sigma, o)
	if err != nil {
		return nil, err
	}

	res, err := assemble(eg.Vectors, u, o)
	if err != nil {
		return nil, err
	}
	res.Eigenvalues = sigma
	return res, nil
}

// designWithBasis runs the weighting program over an arbitrary design set
// Q: the costs are the squared column norms of WQ⁺ (Theorem 1), computed
// from the workload's Gram matrix so implicit workloads work too.
func designWithBasis(w *workload.Workload, q *linalg.Matrix, o Options) (*Result, error) {
	if q.Cols() != w.Cells() {
		return nil, fmt.Errorf("core: design basis has %d columns for %d cells", q.Cols(), w.Cells())
	}
	qpinv, err := linalg.PseudoInverse(q)
	if err != nil {
		return nil, err
	}
	// cᵢ = ‖(WQ⁺) column i‖² = (Q⁺ᵀ (WᵀW) Q⁺)_{ii}.
	gq := w.Gram().MulParallel(qpinv)
	c := make([]float64, q.Rows())
	for i := range c {
		var s float64
		for row := 0; row < qpinv.Rows(); row++ {
			s += qpinv.At(row, i) * gq.At(row, i)
		}
		c[i] = math.Max(s, 0)
	}
	u, err := solveWeighting(q, c, o)
	if err != nil {
		return nil, err
	}
	return assemble(q, u, o)
}

// solveWeighting solves the weighting program for design matrix q and
// costs c, returning the solved variables u (u = λ² for L2, u = λ for L1).
func solveWeighting(q *linalg.Matrix, c []float64, o Options) ([]float64, error) {
	return solveWeightingPrepared(constraintMatrix(q, o.L1), c, o)
}

// solveWeightingPrepared is solveWeighting for callers that build the
// constraint matrix themselves (the factored pipeline, which squares
// eigen rows as it streams them).
func solveWeightingPrepared(b *linalg.Matrix, c []float64, o Options) ([]float64, error) {
	prog := &opt.Program{C: c, B: b, Power: powerFor(o.L1)}
	// Apply the rank cutoff relative to the largest cost.
	var maxC float64
	for _, v := range c {
		if v > maxC {
			maxC = v
		}
	}
	if maxC == 0 {
		return nil, errors.New("core: workload has no information (all costs zero)")
	}
	cut := make([]float64, len(c))
	for i, v := range c {
		if v > o.RankTol*maxC {
			cut[i] = v
		}
	}
	prog.C = cut

	useFirstOrder := o.Solver == SolverFirstOrder ||
		(o.Solver == SolverAuto && len(c) > o.FirstOrderThreshold)
	if useFirstOrder {
		return opt.SolveFirstOrder(prog, o.FirstOrder)
	}
	return opt.SolveBarrier(prog, o.Barrier)
}

// assemble builds the strategy matrix from the design set and solved
// variables: steps 3–5 of Program 2.
func assemble(q *linalg.Matrix, u []float64, o Options) (*Result, error) {
	lambda := make([]float64, len(u))
	rank := 0
	for i, v := range u {
		if v <= 0 {
			continue
		}
		rank++
		if o.L1 {
			lambda[i] = v
		} else {
			lambda[i] = math.Sqrt(v)
		}
	}
	if rank == 0 {
		return nil, errors.New("core: weighting produced an all-zero strategy")
	}
	// Step 3: A' = ΛQ keeping rows with positive weight.
	aPrime := linalg.New(rank, q.Cols())
	r := 0
	for i, l := range lambda {
		if l <= 0 {
			continue
		}
		src := q.Row(i)
		dst := aPrime.Row(r)
		for j, v := range src {
			dst[j] = l * v
		}
		r++
	}
	a := aPrime
	if !o.SkipCompletion {
		a = complete(aPrime, o.L1)
	}
	return &Result{Op: a, Strategy: a, Weights: lambda, Design: q, Rank: rank}, nil
}

// complete implements steps 4–5 of Program 2: append diagonal rows raising
// every column to the maximum column norm, adding information at no
// sensitivity cost. Under L1 the completion uses L1 column norms.
func complete(aPrime *linalg.Matrix, l1 bool) *linalg.Matrix {
	var norms []float64
	if l1 {
		norms = aPrime.ColNormsL1()
	} else {
		norms = aPrime.ColNorms2()
	}
	var maxN float64
	for _, v := range norms {
		if v > maxN {
			maxN = v
		}
	}
	diag := make([]float64, len(norms))
	nonzero := 0
	for j, v := range norms {
		gap := maxN - v
		if gap <= 1e-12*maxN {
			continue
		}
		if l1 {
			diag[j] = gap
		} else {
			diag[j] = math.Sqrt(gap)
		}
		nonzero++
	}
	if nonzero == 0 {
		return aPrime
	}
	d := linalg.New(nonzero, len(norms))
	r := 0
	for j, v := range diag {
		if v > 0 {
			d.Set(r, j, v)
			r++
		}
	}
	return linalg.StackRows(aPrime, d)
}

// constraintMatrix returns B: entrywise square of q for the L2 program,
// entrywise absolute value for the L1 variant.
func constraintMatrix(q *linalg.Matrix, l1 bool) *linalg.Matrix {
	b := linalg.New(q.Rows(), q.Cols())
	for i := 0; i < q.Rows(); i++ {
		src := q.Row(i)
		dst := b.Row(i)
		for j, v := range src {
			if l1 {
				dst[j] = math.Abs(v)
			} else {
				dst[j] = v * v
			}
		}
	}
	return b
}

func powerFor(l1 bool) int {
	if l1 {
		return 2
	}
	return 1
}

// gramEigen returns the eigendecomposition of the workload's Gram matrix,
// composing per-dimension decompositions when the workload has product
// (Kronecker) form — an O(Σdᵢ³) shortcut past the O(n³) dense solve.
func gramEigen(w *workload.Workload) (*linalg.EigenSym, error) {
	factors, ok := w.GramFactors()
	if !ok || len(factors) < 2 {
		return linalg.SymEigen(w.Gram())
	}
	parts := make([]*linalg.EigenSym, len(factors))
	for i, f := range factors {
		eg, err := linalg.SymEigen(f)
		if err != nil {
			return nil, err
		}
		parts[i] = eg
	}
	return linalg.KronEigen(parts...), nil
}

func clampNonNegative(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		if x > 0 {
			out[i] = x
		}
	}
	return out
}

// ApproxRatioBound returns Theorem 3's bound (n·σ₁/svdb)^{1/4} on the
// approximation ratio of Program 2, from the eigenvalues of WᵀW.
func ApproxRatioBound(eigenvalues []float64) float64 {
	if len(eigenvalues) == 0 {
		return math.NaN()
	}
	var sqsum, sigma1 float64
	for _, v := range eigenvalues {
		if v > 0 {
			sqsum += math.Sqrt(v)
		}
		if v > sigma1 {
			sigma1 = v
		}
	}
	n := float64(len(eigenvalues))
	svdb := sqsum * sqsum / n
	if svdb == 0 {
		return math.NaN()
	}
	return math.Pow(n*sigma1/svdb, 0.25)
}
