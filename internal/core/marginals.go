package core

import (
	"fmt"
	"math"
	"sort"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/strategy"
)

// MarginalsResult is the output of the closed-form marginal designer.
type MarginalsResult struct {
	// Strategy is the optimal strategy matrix.
	Strategy *linalg.Matrix
	// Eigenvalues are the eigenvalues of WᵀW in descending order (with
	// multiplicity), available here in closed form without an O(n³)
	// decomposition.
	Eigenvalues []float64
	// BlockWeights maps each attribute-subset block (by mask index into
	// Blocks) to its solved weight λ_T.
	BlockWeights []float64
	// Blocks lists the attribute subsets indexing BlockWeights.
	Blocks [][]int
}

// DesignMarginals computes the exactly optimal strategy for a workload
// that is a union of marginals over the given attribute subsets (repeats
// allowed — a subset requested twice carries double weight, as when two
// analysts ask for the same marginal).
//
// Marginal workloads have closed-form spectral structure: WᵀW lies in the
// commutative algebra spanned by Kronecker products of {identity, all-ones}
// per dimension, so its eigenvectors are the Fourier (constant+Helmert)
// basis grouped into blocks indexed by attribute subsets T, with
//
//	σ_T = Σ_{S ⊇ T} Π_{i∉S} dᵢ        (eigenvalue of block T)
//	m_T = Π_{i∈T} (dᵢ−1)              (multiplicity)
//	β_T = m_T / n                      (per-column mass of block T)
//
// Because each block spreads its mass evenly over the columns, the optimal
// weighting program collapses to a single constraint Σ_T β_T u_T ≤ 1 whose
// Lagrange solution is u_T ∝ sqrt(m_T σ_T / β_T); and since β_T = m_T/n the
// resulting error meets the Thm 2 singular value bound exactly. This is the
// structural reason the paper's Fig 3(c) reports the eigen-design matching
// the optimal error on every marginal workload, and it runs in
// O(2^k · n + n·rows) instead of O(n⁴).
func DesignMarginals(shape domain.Shape, subsets [][]int) (*MarginalsResult, error) {
	dims := shape.Dims()
	if dims > 30 {
		return nil, fmt.Errorf("core: %d dimensions exceed the subset-mask limit", dims)
	}
	if len(subsets) == 0 {
		return nil, fmt.Errorf("core: no marginal subsets given")
	}
	// Count requested subsets by mask (repeats accumulate).
	reqCount := map[uint32]float64{}
	for _, s := range subsets {
		var mask uint32
		for _, a := range s {
			if a < 0 || a >= dims {
				return nil, fmt.Errorf("core: attribute %d out of range for %v", a, shape)
			}
			mask |= 1 << a
		}
		reqCount[mask]++
	}

	n := shape.Size()
	nBlocks := 1 << dims
	sigma := make([]float64, nBlocks) // eigenvalue per block mask
	mult := make([]int, nBlocks)      // multiplicity per block mask
	for t := 0; t < nBlocks; t++ {
		m := 1
		for i := 0; i < dims; i++ {
			if t&(1<<i) != 0 {
				m *= shape[i] - 1
			}
		}
		mult[t] = m
		// σ_T = Σ_{S ⊇ T} count(S)·Π_{i∉S} dᵢ.
		var s float64
		for mask, cnt := range reqCount {
			if uint32(t)&^mask != 0 {
				continue // S does not contain T
			}
			prod := 1.0
			for i := 0; i < dims; i++ {
				if mask&(1<<i) == 0 {
					prod *= float64(shape[i])
				}
			}
			s += cnt * prod
		}
		sigma[t] = s
	}

	// Closed-form weights: u_T = sqrt(m_T σ_T / β_T) / Z with β_T = m_T/n,
	// so u_T = sqrt(n σ_T) / Z, normalized so Σ β_T u_T = 1.
	u := make([]float64, nBlocks)
	var z float64
	for t := 0; t < nBlocks; t++ {
		if sigma[t] <= 0 || mult[t] == 0 {
			continue
		}
		u[t] = math.Sqrt(float64(n) * sigma[t])
		z += float64(mult[t]) / float64(n) * u[t]
	}
	if z == 0 {
		return nil, fmt.Errorf("core: marginal workload carries no information")
	}
	blockWeights := make([]float64, 0, nBlocks)
	blocks := make([][]int, 0, nBlocks)
	var rows []*linalg.Matrix
	for t := 0; t < nBlocks; t++ {
		if u[t] == 0 {
			continue
		}
		u[t] /= z
		lambda := math.Sqrt(u[t])
		basis := fourierBlock(shape, t)
		rows = append(rows, basis.Scale(lambda))
		blockWeights = append(blockWeights, lambda)
		sub := make([]int, 0, dims)
		for i := 0; i < dims; i++ {
			if t&(1<<i) != 0 {
				sub = append(sub, i)
			}
		}
		blocks = append(blocks, sub)
	}

	// Expand the eigenvalue list with multiplicities, descending.
	var values []float64
	for t := 0; t < nBlocks; t++ {
		for r := 0; r < mult[t]; r++ {
			values = append(values, sigma[t])
		}
	}
	// Pad zero eigenvalues up to n (blocks outside any requested subset
	// already contribute zeros through σ_T = 0).
	sort.Sort(sort.Reverse(sort.Float64Slice(values)))
	if len(values) > n {
		values = values[:n]
	}

	return &MarginalsResult{
		Strategy:     linalg.StackRows(rows...),
		Eigenvalues:  values,
		BlockWeights: blockWeights,
		Blocks:       blocks,
	}, nil
}

// fourierBlock returns the orthonormal basis rows of block T: the
// Kronecker product of Helmert contrasts on dimensions in T and the
// normalized constant row elsewhere.
func fourierBlock(shape domain.Shape, mask int) *linalg.Matrix {
	sub := make([]int, 0, shape.Dims())
	for i := 0; i < shape.Dims(); i++ {
		if mask&(1<<i) != 0 {
			sub = append(sub, i)
		}
	}
	return strategy.FourierBlock(shape, sub)
}
