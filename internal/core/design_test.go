package core

import (
	"math"
	"math/rand"
	"testing"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

var testPrivacy = mm.Privacy{Epsilon: 0.5, Delta: 1e-4}

// designError runs the Eigen-Design algorithm and returns the resulting
// workload error.
func designError(t *testing.T, w *workload.Workload, o Options) float64 {
	t.Helper()
	res, err := Design(w, o)
	if err != nil {
		t.Fatal(err)
	}
	e, err := mm.Error(w, res.Strategy, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExample4AdaptiveBeatsWavelet(t *testing.T) {
	// Paper Example 4: the adaptive strategy (29.79) improves on wavelet
	// (34.62) and identity (45.36), and is within 1.03 of optimal (29.18).
	w := workload.Fig1()
	eigen := designError(t, w, Options{})
	wav, err := mm.Error(w, strategy.Wavelet(domain.MustShape(8)).A, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	id, err := mm.Error(w, linalg.Identity(8), testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if !(eigen < wav && wav < id) {
		t.Fatalf("expected eigen < wavelet < identity, got %g, %g, %g", eigen, wav, id)
	}
	lb, err := mm.LowerBound(w, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if eigen < lb*(1-1e-9) {
		t.Fatalf("eigen error %g below lower bound %g", eigen, lb)
	}
	// Paper: 29.79/29.18 ≈ 1.021 to the bound; allow a little slack.
	if eigen/lb > 1.05 {
		t.Fatalf("eigen/lower = %g, want ≤ 1.05", eigen/lb)
	}
}

func TestDesignBeatsCompetitorsOnRanges(t *testing.T) {
	// Sec 5.1: the eigen-strategy uniformly improves on Hierarchical and
	// Wavelet for range workloads.
	shape := domain.MustShape(32)
	w := workload.AllRange(shape)
	eigen := designError(t, w, Options{})
	for _, s := range []*strategy.Strategy{
		strategy.Wavelet(shape),
		strategy.Hierarchical(shape, 2),
		strategy.Identity(shape),
	} {
		e, err := mm.Error(w, s.A, testPrivacy)
		if err != nil {
			t.Fatal(err)
		}
		if eigen > e*(1+1e-9) {
			t.Fatalf("eigen %g worse than %s %g", eigen, s.Name, e)
		}
	}
}

func TestDesignBeatsCompetitorsOnMarginals(t *testing.T) {
	shape := domain.MustShape(4, 4, 2)
	w := workload.Marginals(shape, 2)
	subsets := [][]int{{0, 1}, {0, 2}, {1, 2}}
	eigen := designError(t, w, Options{})
	for _, s := range []*strategy.Strategy{
		strategy.Fourier(shape, subsets),
		strategy.DataCube(shape, subsets),
	} {
		e, err := mm.Error(w, s.A, testPrivacy)
		if err != nil {
			t.Fatal(err)
		}
		if eigen > e*(1+1e-9) {
			t.Fatalf("eigen %g worse than %s %g", eigen, s.Name, e)
		}
	}
	// Paper: for marginal workloads the eigen-design matches the lower
	// bound (optimal strategies).
	lb, err := mm.LowerBound(w, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if eigen/lb > 1.02 {
		t.Fatalf("eigen/lower = %g on marginals, want ≈ 1", eigen/lb)
	}
}

func TestApproximationRatioWithinTheorem3(t *testing.T) {
	// Thm 3: error ratio to optimum ≤ (nσ₁/svdb)^{1/4}; the bound uses the
	// (unachievable) svdb as the optimum proxy so it also bounds error/lb.
	for _, build := range []func() *workload.Workload{
		func() *workload.Workload { return workload.AllRange(domain.MustShape(24)) },
		func() *workload.Workload { return workload.Prefix(24) },
		func() *workload.Workload { return workload.Marginals(domain.MustShape(3, 4, 2), 1) },
	} {
		w := build()
		res, err := Design(w, Options{})
		if err != nil {
			t.Fatal(err)
		}
		e, err := mm.Error(w, res.Strategy, testPrivacy)
		if err != nil {
			t.Fatal(err)
		}
		lb := mm.LowerBoundFromEigenvalues(res.Eigenvalues, w.NumQueries(), testPrivacy)
		bound := ApproxRatioBound(res.Eigenvalues)
		if ratio := e / lb; ratio > bound*(1+1e-6) {
			t.Fatalf("%s: ratio %g exceeds Thm 3 bound %g", w.Name(), ratio, bound)
		}
		// Paper: never witnessed an approximation rate above 1.3.
		if ratio := e / lb; ratio > 1.3 {
			t.Fatalf("%s: ratio %g > 1.3", w.Name(), ratio)
		}
	}
}

func TestSemanticEquivalenceProp5(t *testing.T) {
	// Prop 5: permuting cell conditions leaves the error unchanged.
	r := rand.New(rand.NewSource(7))
	w := workload.AllRange(domain.MustShape(20))
	perm := r.Perm(20)
	wp := w.PermuteCells(perm, "permuted")
	e1 := designError(t, w, Options{})
	e2 := designError(t, wp, Options{})
	if math.Abs(e1-e2) > 0.02*e1 {
		t.Fatalf("Prop 5 violated: %g vs %g", e1, e2)
	}
}

func TestErrorEquivalenceProp6(t *testing.T) {
	// Prop 6: W and QW (orthogonal Q) get strategies with equal error.
	w := workload.Prefix(12)
	// Build an orthogonal Q from the eigenvectors of a random symmetric
	// matrix.
	r := rand.New(rand.NewSource(11))
	b := linalg.New(12, 12)
	for i := 0; i < 12; i++ {
		for j := 0; j <= i; j++ {
			v := r.NormFloat64()
			b.Set(i, j, v)
			b.Set(j, i, v)
		}
	}
	eg, err := linalg.SymEigen(b)
	if err != nil {
		t.Fatal(err)
	}
	q := eg.Vectors
	wq := workload.FromMatrix("QW", w.Shape(), q.Mul(w.Matrix()))
	e1 := designError(t, w, Options{})
	e2 := designError(t, wq, Options{})
	if math.Abs(e1-e2) > 0.02*e1 {
		t.Fatalf("Prop 6 violated: %g vs %g", e1, e2)
	}
}

func TestCompletionNeverHurts(t *testing.T) {
	for _, build := range []func() *workload.Workload{
		workload.Fig1,
		func() *workload.Workload { return workload.AllRange(domain.MustShape(16)) },
		func() *workload.Workload { return workload.Prefix(16) },
	} {
		w := build()
		with := designError(t, w, Options{})
		without := designError(t, w, Options{SkipCompletion: true})
		if with > without*(1+1e-9) {
			t.Fatalf("%s: completion hurt: %g vs %g", w.Name(), with, without)
		}
	}
}

func TestDesignSupportsWorkload(t *testing.T) {
	// The strategy must support the workload (checked error must succeed).
	w := workload.Marginals(domain.MustShape(3, 3), 1)
	res, err := Design(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mm.ErrorChecked(w, res.Strategy, testPrivacy); err != nil {
		t.Fatalf("strategy does not support workload: %v", err)
	}
}

func TestRankDeficientWorkload(t *testing.T) {
	// Fig. 1 workload has rank 4 < 8 cells: design must drop the null
	// eigen-queries and still support the workload.
	w := workload.Fig1()
	res, err := Design(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rank != 4 {
		t.Fatalf("rank = %d, want 4", res.Rank)
	}
	if _, err := mm.ErrorChecked(w, res.Strategy, testPrivacy); err != nil {
		t.Fatalf("rank-deficient workload unsupported: %v", err)
	}
}

func TestKroneckerFastPathMatchesDense(t *testing.T) {
	// Multi-dim all-range carries Gram factors; the composed
	// eigendecomposition must give the same design error as the dense path.
	w := workload.AllRange(domain.MustShape(6, 4))
	if _, ok := w.GramFactors(); !ok {
		t.Fatal("all-range lost its Gram factors")
	}
	fast := designError(t, w, Options{})
	// Strip the factors to force the dense path.
	dense := designError(t, workload.FromMatrix("dense", w.Shape(), w.Matrix()), Options{})
	if math.Abs(fast-dense) > 0.01*dense {
		t.Fatalf("fast path %g vs dense %g", fast, dense)
	}
}

func TestSolversAgree(t *testing.T) {
	w := workload.AllRange(domain.MustShape(24))
	eb := designError(t, w, Options{Solver: SolverBarrier})
	ef := designError(t, w, Options{Solver: SolverFirstOrder})
	if ef > eb*1.03 {
		t.Fatalf("first-order %g much worse than barrier %g", ef, eb)
	}
}

func TestDesignBasisWavelet(t *testing.T) {
	// Using the wavelet matrix as design basis must do at least as well as
	// the plain wavelet strategy (weights can only help).
	shape := domain.MustShape(16)
	w := workload.AllRange(shape)
	wav := strategy.Wavelet(shape)
	res, err := Design(w, Options{DesignBasis: wav.A})
	if err != nil {
		t.Fatal(err)
	}
	eWeighted, err := mm.Error(w, res.Strategy, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	ePlain, err := mm.Error(w, wav.A, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if eWeighted > ePlain*(1+1e-9) {
		t.Fatalf("weighted wavelet design %g worse than plain wavelet %g", eWeighted, ePlain)
	}
}

func TestL1VariantProducesUsableStrategy(t *testing.T) {
	// Sec 3.5: the ε-DP weighting over the wavelet basis should improve on
	// the unweighted wavelet under L1 error accounting.
	shape := domain.MustShape(16)
	w := workload.AllRange(shape)
	wav := strategy.Wavelet(shape)
	res, err := Design(w, Options{L1: true, DesignBasis: wav.A})
	if err != nil {
		t.Fatal(err)
	}
	if l1ScaledError(t, w, res.Strategy) > l1ScaledError(t, w, wav.A)*(1+1e-9) {
		t.Fatal("L1-weighted wavelet worse than plain wavelet under L1 accounting")
	}
}

// l1ScaledError computes ‖A‖₁²·trace(WᵀW(AᵀA)⁺), the ε-DP analogue of the
// workload error (up to the Laplace constant).
func l1ScaledError(t *testing.T, w *workload.Workload, a *linalg.Matrix) float64 {
	t.Helper()
	inv, err := linalg.PseudoInverseSym(a.Gram(), 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	s := a.MaxColNormL1()
	return s * s * w.Gram().TraceProduct(inv)
}

func TestEigenSeparationQuality(t *testing.T) {
	// Sec 5.2: separation trades a small error increase for speed. With
	// group size near n^{1/3} the error should stay within ~15% of exact.
	w := workload.AllRange(domain.MustShape(27))
	exact := designError(t, w, Options{})
	res, err := EigenSeparation(w, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sep, err := mm.Error(w, res.Strategy, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	// Separated solutions are a subset of Program 2's space, so separation
	// cannot genuinely beat exact; allow 1% solver tolerance either way.
	if sep < exact*(1-0.01) {
		t.Fatalf("separation beat exact: %g vs %g", sep, exact)
	}
	if sep > exact*1.15 {
		t.Fatalf("separation error %g too far above exact %g", sep, exact)
	}
}

func TestEigenSeparationSingleGroupMatchesExact(t *testing.T) {
	// One group containing everything must match the exact algorithm.
	w := workload.Prefix(10)
	exact := designError(t, w, Options{})
	res, err := EigenSeparation(w, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sep, err := mm.Error(w, res.Strategy, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sep-exact) > 0.01*exact {
		t.Fatalf("single-group separation %g != exact %g", sep, exact)
	}
}

func TestPrincipalVectorsQuality(t *testing.T) {
	w := workload.AllRange(domain.MustShape(32))
	exact := designError(t, w, Options{})
	res, err := PrincipalVectors(w, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pv, err := mm.Error(w, res.Strategy, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if pv < exact*(1-1e-9) {
		t.Fatalf("principal vectors beat exact: %g vs %g", pv, exact)
	}
	// Paper: good results with as little as 10% of eigenvectors; at 25% we
	// allow 15%.
	if pv > exact*1.15 {
		t.Fatalf("principal-vector error %g too far above exact %g", pv, exact)
	}
}

func TestPrincipalVectorsKTooLargeFallsBack(t *testing.T) {
	w := workload.Prefix(8)
	res, err := PrincipalVectors(w, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pv, err := mm.Error(w, res.Strategy, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	exact := designError(t, w, Options{})
	if math.Abs(pv-exact) > 0.01*exact {
		t.Fatalf("fallback mismatch: %g vs %g", pv, exact)
	}
}

func TestOptimizationArgumentValidation(t *testing.T) {
	w := workload.Prefix(8)
	if _, err := EigenSeparation(w, 0, Options{}); err == nil {
		t.Fatal("accepted group size 0")
	}
	if _, err := PrincipalVectors(w, 0, Options{}); err == nil {
		t.Fatal("accepted k = 0")
	}
}

func TestApproxRatioBoundEdgeCases(t *testing.T) {
	if !math.IsNaN(ApproxRatioBound(nil)) {
		t.Fatal("expected NaN for empty eigenvalues")
	}
	if !math.IsNaN(ApproxRatioBound([]float64{0, 0})) {
		t.Fatal("expected NaN for all-zero eigenvalues")
	}
	// Uniform eigenvalues → bound 1 (identity-like workloads are easy).
	if b := ApproxRatioBound([]float64{2, 2, 2}); math.Abs(b-1) > 1e-12 {
		t.Fatalf("bound = %g, want 1", b)
	}
}

func TestDesignAdHocWorkload(t *testing.T) {
	// Ad hoc union of ranges, marginals and predicates — the adaptivity
	// headline. Eigen must beat all four competitors.
	r := rand.New(rand.NewSource(3))
	shape := domain.MustShape(4, 4)
	adhoc := workload.Union("ad hoc",
		workload.RandomRange(shape, 20, r),
		workload.Marginals(shape, 1),
		workload.Predicate(shape, 10, r),
	)
	eigen := designError(t, adhoc, Options{})
	subsets := [][]int{{0}, {1}}
	supported := 0
	for _, s := range []*strategy.Strategy{
		strategy.Wavelet(shape),
		strategy.Hierarchical(shape, 2),
		strategy.Fourier(shape, [][]int{{0, 1}}),
		strategy.DataCube(shape, subsets),
		strategy.Identity(shape),
	} {
		// Skip strategies that cannot answer this workload at all (the
		// DataCube marginal subset does not span range or predicate
		// queries) — the paper likewise only compares applicable methods.
		e, err := mm.ErrorChecked(adhoc, s.A, testPrivacy)
		if err == mm.ErrNotSupported {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		supported++
		if eigen > e*(1+1e-9) {
			t.Fatalf("eigen %g worse than %s %g on ad hoc workload", eigen, s.Name, e)
		}
	}
	if supported < 3 {
		t.Fatalf("only %d competitors supported the ad hoc workload", supported)
	}
}
