package core

import (
	"errors"
	"fmt"

	"adaptivemm/internal/linalg"
	"adaptivemm/internal/opt"
	"adaptivemm/internal/workload"
)

// EigenSeparation runs the eigen-query separation optimization of Sec 4.2:
// the eigen-queries are partitioned by descending eigenvalue into groups of
// groupSize; Program 1 is solved within each group independently, and a
// second optimization assigns one scale factor per group. Both phases are
// instances of the same weighting program, so the asymptotic cost drops to
// O(n²·g³ + n·(n/g)³), minimized near g = n^{1/3}.
func EigenSeparation(w *workload.Workload, groupSize int, o Options) (*Result, error) {
	o = o.withDefaults()
	if groupSize < 1 {
		return nil, fmt.Errorf("core: group size %d < 1", groupSize)
	}
	if o.Pipeline == PipelineFactored {
		fe, err := factoredEigen(w, o)
		if err != nil {
			return nil, err
		}
		return separationFactored(fe, groupSize, o)
	}
	eg, err := gramEigen(w)
	if err != nil {
		return nil, err
	}
	sigma := clampNonNegative(eg.Values)
	n := len(sigma)

	// Indices of design queries that survive the rank cutoff, in descending
	// eigenvalue order (already sorted by SymEigen).
	kept := keptIndices(sigma, o.RankTol)
	if len(kept) == 0 {
		return nil, errors.New("core: workload has no information (all eigenvalues zero)")
	}

	// Phase 1: per-group weighting. Constraints use only the group's own
	// rows, which is Program 1 with the other eigenvalues set to zero.
	u := make([]float64, n)
	type group struct {
		idx []int
	}
	var groups []group
	for at := 0; at < len(kept); at += groupSize {
		end := at + groupSize
		if end > len(kept) {
			end = len(kept)
		}
		groups = append(groups, group{idx: kept[at:end]})
	}
	for _, g := range groups {
		qg := subRows(eg.Vectors, g.idx)
		cg := subVals(sigma, g.idx)
		ug, err := solveWeighting(qg, cg, o)
		if err != nil {
			return nil, err
		}
		for r, i := range g.idx {
			u[i] = ug[r]
		}
	}

	// Phase 2: one scale factor per group. With v_g the squared group
	// scale, column norms add as Σ_g v_g·(B_gᵀ u_g)_j and the trace term is
	// Σ_g (Σ_{i∈g} σᵢ/u_i)/v_g — again the same program shape.
	bRows := linalg.New(len(groups), w.Cells())
	cGroups := make([]float64, len(groups))
	l1 := o.L1
	for gi, g := range groups {
		row := bRows.Row(gi)
		var cost float64
		for _, i := range g.idx {
			qi := eg.Vectors.Row(i)
			for j, qv := range qi {
				if l1 {
					row[j] += abs(qv) * u[i]
				} else {
					row[j] += qv * qv * u[i]
				}
			}
			cost += sigma[i] / ipowLocal(u[i], powerFor(l1))
		}
		cGroups[gi] = cost
	}
	prog := &opt.Program{C: cGroups, B: bRows, Power: powerFor(l1)}
	var v []float64
	if o.Solver == SolverFirstOrder || (o.Solver == SolverAuto && len(groups) > o.FirstOrderThreshold) {
		v, err = opt.SolveFirstOrder(prog, o.FirstOrder)
	} else {
		v, err = opt.SolveBarrier(prog, o.Barrier)
	}
	if err != nil {
		return nil, err
	}
	for gi, g := range groups {
		for _, i := range g.idx {
			u[i] *= v[gi]
		}
	}

	res, err := assemble(eg.Vectors, u, o)
	if err != nil {
		return nil, err
	}
	res.Eigenvalues = sigma
	return res, nil
}

// PrincipalVectors runs the principal-vector optimization of Sec 4.2: only
// the k eigen-queries with the largest eigenvalues get individual weights;
// all remaining eigen-queries with nonzero eigenvalues share one common
// weight, reducing the optimization to k+1 variables.
func PrincipalVectors(w *workload.Workload, k int, o Options) (*Result, error) {
	o = o.withDefaults()
	if k < 1 {
		return nil, fmt.Errorf("core: principal vector count %d < 1", k)
	}
	if o.Pipeline == PipelineFactored {
		fe, err := factoredEigen(w, o)
		if err != nil {
			return nil, err
		}
		return principalFactored(fe, k, o)
	}
	eg, err := gramEigen(w)
	if err != nil {
		return nil, err
	}
	sigma := clampNonNegative(eg.Values)
	kept := keptIndices(sigma, o.RankTol)
	if len(kept) == 0 {
		return nil, errors.New("core: workload has no information (all eigenvalues zero)")
	}
	if k >= len(kept) {
		// Nothing to share; fall through to the exact algorithm over the
		// kept eigen-queries.
		return Design(w, o)
	}
	principal := kept[:k]
	rest := kept[k:]

	// Build the reduced program: one row per principal vector plus a single
	// aggregated row for the shared tail.
	l1 := o.L1
	b := linalg.New(k+1, w.Cells())
	c := make([]float64, k+1)
	for r, i := range principal {
		row := b.Row(r)
		qi := eg.Vectors.Row(i)
		for j, qv := range qi {
			if l1 {
				row[j] = abs(qv)
			} else {
				row[j] = qv * qv
			}
		}
		c[r] = sigma[i]
	}
	tail := b.Row(k)
	var tailCost float64
	for _, i := range rest {
		qi := eg.Vectors.Row(i)
		for j, qv := range qi {
			if l1 {
				tail[j] += abs(qv)
			} else {
				tail[j] += qv * qv
			}
		}
		tailCost += sigma[i]
	}
	c[k] = tailCost

	prog := &opt.Program{C: c, B: b, Power: powerFor(l1)}
	var sol []float64
	if o.Solver == SolverFirstOrder || (o.Solver == SolverAuto && k+1 > o.FirstOrderThreshold) {
		sol, err = opt.SolveFirstOrder(prog, o.FirstOrder)
	} else {
		sol, err = opt.SolveBarrier(prog, o.Barrier)
	}
	if err != nil {
		return nil, err
	}

	u := make([]float64, len(sigma))
	for r, i := range principal {
		u[i] = sol[r]
	}
	for _, i := range rest {
		u[i] = sol[k]
	}
	res, err := assemble(eg.Vectors, u, o)
	if err != nil {
		return nil, err
	}
	res.Eigenvalues = sigma
	return res, nil
}

func keptIndices(sigma []float64, tol float64) []int {
	var maxS float64
	for _, v := range sigma {
		if v > maxS {
			maxS = v
		}
	}
	var kept []int
	for i, v := range sigma {
		if v > tol*maxS {
			kept = append(kept, i)
		}
	}
	return kept
}

func subRows(m *linalg.Matrix, idx []int) *linalg.Matrix {
	out := linalg.New(len(idx), m.Cols())
	for r, i := range idx {
		copy(out.Row(r), m.Row(i))
	}
	return out
}

func subVals(v []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for r, i := range idx {
		out[r] = v[i]
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func ipowLocal(x float64, p int) float64 {
	if p == 2 {
		return x * x
	}
	return x
}
