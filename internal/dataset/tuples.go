package dataset

import (
	"fmt"
	"sort"

	"adaptivemm/internal/domain"
)

// Bucketizer maps one attribute of a raw tuple to its bucket index,
// defining the cell conditions φ of Definition 1 for that attribute: the
// buckets must partition the attribute's domain (every value maps to
// exactly one bucket, which the function contract guarantees).
type Bucketizer func(value float64) int

// RangeBuckets returns a Bucketizer over the given ascending cut points:
// bucket i covers [cuts[i], cuts[i+1]), with the first bucket open below
// and the last open above, yielding len(cuts)+1 buckets.
func RangeBuckets(cuts ...float64) (Bucketizer, int) {
	sorted := append([]float64(nil), cuts...)
	sort.Float64s(sorted)
	return func(v float64) int {
		// First cut point strictly greater than v.
		lo, hi := 0, len(sorted)
		for lo < hi {
			mid := (lo + hi) / 2
			if v < sorted[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}, len(sorted) + 1
}

// CategoryBuckets returns a Bucketizer for a categorical attribute with n
// known categories; values outside [0,n) are clamped into the last bucket
// (an "other" category).
func CategoryBuckets(n int) (Bucketizer, int) {
	return func(v float64) int {
		i := int(v)
		if i < 0 || i >= n {
			return n - 1
		}
		return i
	}, n
}

// Schema bundles one Bucketizer per attribute, defining the full data
// vector of Definition 1 over the cross product of the bucketings.
type Schema struct {
	shape   domain.Shape
	buckets []Bucketizer
}

// NewSchema builds a schema from per-attribute bucketizers and their
// bucket counts (as returned by RangeBuckets / CategoryBuckets).
func NewSchema(bucketizers []Bucketizer, counts []int) (*Schema, error) {
	if len(bucketizers) != len(counts) {
		return nil, fmt.Errorf("dataset: %d bucketizers for %d counts", len(bucketizers), len(counts))
	}
	shape, err := domain.NewShape(counts...)
	if err != nil {
		return nil, err
	}
	return &Schema{shape: shape, buckets: bucketizers}, nil
}

// Shape returns the cell domain induced by the schema.
func (s *Schema) Shape() domain.Shape { return s.shape }

// Cell returns the flat cell index of a tuple (one value per attribute).
func (s *Schema) Cell(tuple []float64) (int, error) {
	if len(tuple) != len(s.buckets) {
		return 0, fmt.Errorf("dataset: tuple has %d attributes, schema expects %d", len(tuple), len(s.buckets))
	}
	coords := make([]int, len(tuple))
	for i, v := range tuple {
		b := s.buckets[i](v)
		if b < 0 || b >= s.shape[i] {
			return 0, fmt.Errorf("dataset: bucketizer %d returned %d outside [0,%d)", i, b, s.shape[i])
		}
		coords[i] = b
	}
	return s.shape.Index(coords), nil
}

// FromTuples builds the data vector x of Definition 1: xᵢ counts the
// tuples falling in cell i. Weights, when non-nil, must parallel tuples
// and produce a weighted histogram (as in the Adult experiments).
func FromTuples(name string, s *Schema, tuples [][]float64, weights []float64) (*Dataset, error) {
	if weights != nil && len(weights) != len(tuples) {
		return nil, fmt.Errorf("dataset: %d weights for %d tuples", len(weights), len(tuples))
	}
	x := make([]float64, s.shape.Size())
	var total float64
	for i, tup := range tuples {
		cell, err := s.Cell(tup)
		if err != nil {
			return nil, fmt.Errorf("tuple %d: %w", i, err)
		}
		w := 1.0
		if weights != nil {
			w = weights[i]
			if w < 0 {
				return nil, fmt.Errorf("dataset: negative weight %g for tuple %d", w, i)
			}
		}
		x[cell] += w
		total += w
	}
	return &Dataset{Name: name, Shape: s.shape.Clone(), X: x, Total: total}, nil
}
