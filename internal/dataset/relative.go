package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/workload"
)

// RelativeErrorOptions configures the Monte-Carlo relative-error harness.
type RelativeErrorOptions struct {
	// Trials is the number of mechanism invocations averaged. Default 5.
	Trials int
	// SanityFraction sets the sanity bound s = SanityFraction·Total used in
	// |est−true|/max(true, s); queries with tiny true answers otherwise
	// dominate the average. Default 0.001 (0.1% of the dataset).
	SanityFraction float64
}

func (o RelativeErrorOptions) withDefaults() RelativeErrorOptions {
	if o.Trials <= 0 {
		o.Trials = 5
	}
	if o.SanityFraction <= 0 {
		o.SanityFraction = 0.001
	}
	return o
}

// RelativeError measures the average relative error of answering the
// explicit workload w on the dataset with strategy a under (ε,δ)-privacy,
// averaged over queries and trials:
//
//	mean |ŵx − wx| / max(wx, s)
//
// This is the experimental quantity of the paper's Figs. 3(b,d); unlike
// workload error it depends on the data.
func RelativeError(d *Dataset, w *workload.Workload, a *linalg.Matrix, p mm.Privacy,
	o RelativeErrorOptions, r *rand.Rand) (float64, error) {
	o = o.withDefaults()
	if len(d.X) != w.Cells() {
		return 0, fmt.Errorf("dataset: %d cells vs workload %d", len(d.X), w.Cells())
	}
	mech, err := mm.NewMechanism(a)
	if err != nil {
		return 0, err
	}
	truth := w.Matrix().MulVec(d.X)
	s := o.SanityFraction * d.Total
	var sum float64
	count := 0
	for trial := 0; trial < o.Trials; trial++ {
		est, err := mech.AnswerGaussian(w, d.X, p, r)
		if err != nil {
			return 0, err
		}
		for i := range est {
			denom := truth[i]
			if denom < s {
				denom = s
			}
			sum += math.Abs(est[i]-truth[i]) / denom
			count++
		}
	}
	return sum / float64(count), nil
}
