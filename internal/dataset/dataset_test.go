package dataset

import (
	"math"
	"math/rand"
	"testing"

	"adaptivemm/internal/mm"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

func TestCensusLikeShapeAndTotal(t *testing.T) {
	d := CensusLike()
	if d.Shape.Size() != 2048 {
		t.Fatalf("cells = %d, want 2048 (8x16x16)", d.Shape.Size())
	}
	var sum float64
	for _, v := range d.X {
		if v < 0 {
			t.Fatal("negative cell count")
		}
		sum += v
	}
	if math.Abs(sum-15_000_000) > 0.5 {
		t.Fatalf("total = %g, want 15M", sum)
	}
	if math.Abs(sum-d.Total) > 0.5 {
		t.Fatalf("Total field %g inconsistent with data %g", d.Total, sum)
	}
}

func TestAdultLikeShapeAndWeights(t *testing.T) {
	d := AdultLike()
	if d.Shape.Size() != 2048 {
		t.Fatalf("cells = %d, want 2048 (8x8x16x2)", d.Shape.Size())
	}
	if len(d.Shape) != 4 {
		t.Fatalf("dims = %d, want 4", len(d.Shape))
	}
	// Weighted counts: non-integral cells must exist.
	nonIntegral := 0
	var sum float64
	for _, v := range d.X {
		if v < 0 {
			t.Fatal("negative weighted count")
		}
		if v != math.Trunc(v) {
			nonIntegral++
		}
		sum += v
	}
	if nonIntegral == 0 {
		t.Fatal("no weighted (non-integral) cells")
	}
	if math.Abs(sum-d.Total) > 1e-6*d.Total {
		t.Fatalf("Total %g inconsistent with sum %g", d.Total, sum)
	}
	// Weights average ≈ 1, so total near 33K.
	if sum < 25_000 || sum > 42_000 {
		t.Fatalf("weighted total %g implausible for 33K tuples", sum)
	}
}

func TestDatasetsAreSkewed(t *testing.T) {
	// The relative-error experiments rely on realistic skew: the top 10% of
	// cells should hold well over half the mass.
	for _, d := range []*Dataset{CensusLike(), AdultLike()} {
		sorted := append([]float64(nil), d.X...)
		// Simple selection of top decile mass.
		var total float64
		for _, v := range sorted {
			total += v
		}
		k := len(sorted) / 10
		top := topSum(sorted, k)
		if top/total < 0.5 {
			t.Fatalf("%s: top decile holds only %.0f%%", d.Name, 100*top/total)
		}
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a, b := CensusLike(), CensusLike()
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("CensusLike not deterministic")
		}
	}
}

func TestIncomeAgeCorrelationPresent(t *testing.T) {
	// Marginal independence would make P(high income | prime age) equal to
	// P(high income | young); the synthetic census must correlate them.
	d := CensusLike()
	// age bucket 0 (young) vs 3-4 (prime); income >= 12 is "high".
	highYoung, young, highPrime, prime := 0.0, 0.0, 0.0, 0.0
	for i, v := range d.X {
		c := d.Shape.Coords(i)
		age, inc := c[0], c[2]
		switch {
		case age == 0:
			young += v
			if inc >= 12 {
				highYoung += v
			}
		case age == 3 || age == 4:
			prime += v
			if inc >= 12 {
				highPrime += v
			}
		}
	}
	if highPrime/prime <= highYoung/young {
		t.Fatal("no age-income correlation in synthetic census")
	}
}

func TestRelativeErrorSmokeAndOrdering(t *testing.T) {
	// On a small projected workload, a better strategy must yield lower
	// relative error. Use the marginal workload on the adult-like data.
	d := AdultLike()
	w := workload.Marginals(d.Shape, 1)
	p := mm.Privacy{Epsilon: 1.0, Delta: 1e-4}
	r := rand.New(rand.NewSource(1))
	opts := RelativeErrorOptions{Trials: 3}

	idErr, err := RelativeError(d, w, strategy.Identity(d.Shape).A, p, opts, r)
	if err != nil {
		t.Fatal(err)
	}
	if idErr <= 0 || math.IsNaN(idErr) {
		t.Fatalf("relative error = %g", idErr)
	}
	// More noise (smaller ε) must hurt.
	r2 := rand.New(rand.NewSource(1))
	worse, err := RelativeError(d, w, strategy.Identity(d.Shape).A,
		mm.Privacy{Epsilon: 0.1, Delta: 1e-4}, opts, r2)
	if err != nil {
		t.Fatal(err)
	}
	if worse <= idErr {
		t.Fatalf("ε=0.1 error %g not worse than ε=1 error %g", worse, idErr)
	}
}

func TestRelativeErrorValidatesShape(t *testing.T) {
	d := AdultLike()
	w := workload.Prefix(8)
	r := rand.New(rand.NewSource(2))
	if _, err := RelativeError(d, w, strategy.Identity(w.Shape()).A,
		mm.Privacy{Epsilon: 1, Delta: 1e-4}, RelativeErrorOptions{}, r); err == nil {
		t.Fatal("accepted mismatched shapes")
	}
}

func topSum(v []float64, k int) float64 {
	// Partial selection: repeatedly take the max (k is small in tests).
	taken := make([]bool, len(v))
	var sum float64
	for i := 0; i < k; i++ {
		best, bi := -1.0, -1
		for j, x := range v {
			if !taken[j] && x > best {
				best, bi = x, j
			}
		}
		taken[bi] = true
		sum += best
	}
	return sum
}
