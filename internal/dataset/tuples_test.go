package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeBuckets(t *testing.T) {
	b, n := RangeBuckets(2.0, 3.0, 3.5)
	if n != 4 {
		t.Fatalf("buckets = %d, want 4", n)
	}
	cases := []struct {
		v    float64
		want int
	}{
		{1.0, 0}, {1.99, 0}, {2.0, 1}, {2.9, 1}, {3.0, 2}, {3.4, 2}, {3.5, 3}, {4.0, 3},
	}
	for _, c := range cases {
		if got := b(c.v); got != c.want {
			t.Fatalf("bucket(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestRangeBucketsPartition(t *testing.T) {
	// Every value maps to exactly one bucket in range (property test).
	b, n := RangeBuckets(0, 10, 20, 30)
	f := func(v float64) bool {
		i := b(v)
		return i >= 0 && i < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCategoryBuckets(t *testing.T) {
	b, n := CategoryBuckets(4)
	if n != 4 {
		t.Fatalf("n = %d", n)
	}
	if b(2) != 2 || b(0) != 0 {
		t.Fatal("category mapping wrong")
	}
	// Out-of-range values clamp to the last bucket.
	if b(-1) != 3 || b(99) != 3 {
		t.Fatal("clamping wrong")
	}
}

func TestSchemaAndFromTuples(t *testing.T) {
	// Recreate the paper's Fig 1 cells: gender (2 categories) × gpa ranges
	// [1,2), [2,3), [3,3.5), [3.5,4].
	gender, gn := CategoryBuckets(2)
	gpa, pn := RangeBuckets(2.0, 3.0, 3.5)
	s, err := NewSchema([]Bucketizer{gender, gpa}, []int{gn, pn})
	if err != nil {
		t.Fatal(err)
	}
	if s.Shape().Size() != 8 {
		t.Fatalf("cells = %d, want 8", s.Shape().Size())
	}
	tuples := [][]float64{
		{0, 1.5}, {0, 1.7}, // male, gpa [1,2)
		{0, 3.2},           // male, gpa [3,3.5)
		{1, 3.9}, {1, 3.6}, // female, gpa [3.5,4]
	}
	d, err := FromTuples("students", s, tuples, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Total != 5 {
		t.Fatalf("total = %g", d.Total)
	}
	if d.X[0] != 2 { // male × gpa bucket 0
		t.Fatalf("x[0] = %g, want 2", d.X[0])
	}
	if d.X[2] != 1 { // male × gpa bucket 2
		t.Fatalf("x[2] = %g, want 1", d.X[2])
	}
	if d.X[4+3] != 2 { // female × gpa bucket 3
		t.Fatalf("x[7] = %g, want 2", d.X[7])
	}
}

func TestFromTuplesWeighted(t *testing.T) {
	cat, n := CategoryBuckets(3)
	s, err := NewSchema([]Bucketizer{cat}, []int{n})
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromTuples("w", s, [][]float64{{0}, {0}, {2}}, []float64{1.5, 0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.X[0] != 2 || d.X[2] != 2 || d.Total != 4 {
		t.Fatalf("weighted histogram = %v (total %g)", d.X, d.Total)
	}
}

func TestFromTuplesErrors(t *testing.T) {
	cat, n := CategoryBuckets(2)
	s, err := NewSchema([]Bucketizer{cat}, []int{n})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromTuples("e", s, [][]float64{{0, 1}}, nil); err == nil {
		t.Fatal("accepted wrong arity tuple")
	}
	if _, err := FromTuples("e", s, [][]float64{{0}}, []float64{1, 2}); err == nil {
		t.Fatal("accepted mismatched weights")
	}
	if _, err := FromTuples("e", s, [][]float64{{0}}, []float64{-1}); err == nil {
		t.Fatal("accepted negative weight")
	}
	if _, err := NewSchema([]Bucketizer{cat}, []int{n, n}); err == nil {
		t.Fatal("accepted mismatched schema")
	}
}

func TestFromTuplesTotalMatchesCount(t *testing.T) {
	// Property: unweighted histogram total equals tuple count, regardless
	// of values.
	cat, cn := CategoryBuckets(4)
	rng, rn := RangeBuckets(0, 1, 2)
	s, err := NewSchema([]Bucketizer{cat, rng}, []int{cn, rn})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nT := r.Intn(50)
		tuples := make([][]float64, nT)
		for i := range tuples {
			tuples[i] = []float64{float64(r.Intn(6) - 1), r.NormFloat64() * 2}
		}
		d, err := FromTuples("p", s, tuples, nil)
		if err != nil {
			return false
		}
		return math.Abs(d.Total-float64(nT)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProjectBasics(t *testing.T) {
	d := AdultLike()
	pr, err := d.Project([]int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Shape.Size() != 16 {
		t.Fatalf("projected cells = %d", pr.Shape.Size())
	}
	var sum float64
	for _, v := range pr.X {
		sum += v
	}
	var orig float64
	for _, v := range d.X {
		orig += v
	}
	if math.Abs(sum-orig) > 1e-6*orig {
		t.Fatal("projection lost mass")
	}
}

func TestProjectErrors(t *testing.T) {
	d := AdultLike()
	if _, err := d.Project(nil); err == nil {
		t.Fatal("accepted empty projection")
	}
	if _, err := d.Project([]int{9}); err == nil {
		t.Fatal("accepted out-of-range dim")
	}
	if _, err := d.Project([]int{0, 0}); err == nil {
		t.Fatal("accepted duplicate dim")
	}
}

func TestProjectReorders(t *testing.T) {
	// Projection respects the order of dims: project (0,1) vs (1,0) are
	// transposes of each other.
	d := CensusLike()
	a, err := d.Project([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Project([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 16; j++ {
			if a.X[i*16+j] != b.X[j*8+i] {
				t.Fatal("projection order not respected")
			}
		}
	}
}
