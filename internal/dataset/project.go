package dataset

import (
	"fmt"

	"adaptivemm/internal/domain"
)

// Project marginalizes the dataset onto the given attribute subset (in the
// given order), summing out the remaining attributes. It is used to run the
// relative-error experiments at reduced scale without losing the data's
// skew: a marginal of a skewed histogram is still skewed.
func (d *Dataset) Project(dims []int) (*Dataset, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("dataset: empty projection")
	}
	seen := make(map[int]bool, len(dims))
	newDims := make([]int, len(dims))
	for i, a := range dims {
		if a < 0 || a >= len(d.Shape) {
			return nil, fmt.Errorf("dataset: projection dim %d out of range for %v", a, d.Shape)
		}
		if seen[a] {
			return nil, fmt.Errorf("dataset: duplicate projection dim %d", a)
		}
		seen[a] = true
		newDims[i] = d.Shape[a]
	}
	shape := domain.MustShape(newDims...)
	x := make([]float64, shape.Size())
	coords := make([]int, len(dims))
	for i, v := range d.X {
		if v == 0 {
			continue
		}
		c := d.Shape.Coords(i)
		for j, a := range dims {
			coords[j] = c[a]
		}
		x[shape.Index(coords)] += v
	}
	return &Dataset{
		Name:  fmt.Sprintf("%s projected %v", d.Name, dims),
		Shape: shape,
		X:     x,
		Total: d.Total,
	}, nil
}
