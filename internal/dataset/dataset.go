// Package dataset provides the data used by the paper's relative-error
// experiments. The originals — five years of US Census microdata from
// IPUMS aggregated on age × occupation × income (8×16×16, 15M tuples) and
// the UCI Adult dataset weight-aggregated on age × work × education ×
// income (8×8×16×2, 33K tuples) — are not redistributable here, so this
// package generates seeded synthetic histograms with the same shapes,
// totals, and qualitative skew (age pyramid, Zipfian occupations,
// log-normal-style income, age/income correlation). Absolute workload
// error is data-independent (Sec 5 of the paper), so only the
// relative-error experiments touch this data, and for those the relevant
// property is a realistically skewed histogram.
package dataset

import (
	"math"

	"adaptivemm/internal/domain"
)

// Dataset is a histogram over a cell domain.
type Dataset struct {
	Name  string
	Shape domain.Shape
	// X is the data vector: X[i] is the (possibly weighted) count of cell i.
	X []float64
	// Total is the sum of X.
	Total float64
}

// CensusLike synthesizes the US-Census-style dataset: 8 age buckets × 16
// occupation categories × 16 income brackets, 15M individuals.
func CensusLike() *Dataset {
	shape := domain.MustShape(8, 16, 16)
	const total = 15_000_000

	age := pyramid(8)          // population pyramid over age buckets
	occ := zipf(16, 1.07)      // occupations follow a Zipf-like law
	income := logNormalish(16) // incomes are right-skewed

	probs := make([]float64, shape.Size())
	var sum float64
	coords := make([]int, 3)
	for i := range probs {
		c := shape.Coords(i)
		copy(coords, c)
		a, o, inc := coords[0], coords[1], coords[2]
		p := age[a] * occ[o] * income[inc]
		// Correlations: prime-age workers earn more; a few occupations are
		// strongly tied to the top brackets.
		p *= 1 + 0.6*incomeAgeAffinity(a, inc, 8, 16)
		if o < 3 && inc >= 12 {
			p *= 1.8
		}
		if o >= 13 && inc <= 3 {
			p *= 1.5
		}
		probs[i] = p
		sum += p
	}
	x := apportion(probs, sum, total)
	return &Dataset{Name: "US Census (synthetic)", Shape: shape, X: x, Total: total}
}

// AdultLike synthesizes the Adult-style dataset: 8 age × 8 work class × 16
// education × 2 income, 33K tuples, weight-aggregated so cells hold
// non-integral weighted counts.
func AdultLike() *Dataset {
	shape := domain.MustShape(8, 8, 16, 2)
	const tuples = 33_000

	age := pyramid(8)
	work := zipf(8, 1.2)
	edu := logNormalish(16)
	probs := make([]float64, shape.Size())
	var sum float64
	for i := range probs {
		c := shape.Coords(i)
		a, w, e, inc := c[0], c[1], c[2], c[3]
		p := age[a] * work[w] * edu[e]
		// High income (inc=1) is the rare class, strongly tied to education
		// and prime age.
		if inc == 1 {
			p *= 0.15 * (1 + 2.5*float64(e)/15) * (1 + incomeAgeAffinity(a, e, 8, 16))
		} else {
			p *= 0.85
		}
		probs[i] = p
		sum += p
	}
	counts := apportion(probs, sum, tuples)
	// Weight-aggregate: deterministic per-cell weight factors around 1
	// emulate survey weights.
	x := make([]float64, len(counts))
	var total float64
	for i, c := range counts {
		w := 0.75 + 0.5*hash01(i)
		x[i] = c * w
		total += x[i]
	}
	return &Dataset{Name: "Adult (synthetic)", Shape: shape, X: x, Total: total}
}

// pyramid returns a normalized population-pyramid distribution: mass rises
// to the second bucket then decays.
func pyramid(n int) []float64 {
	p := make([]float64, n)
	var sum float64
	for i := range p {
		x := float64(i) / float64(n-1)
		p[i] = math.Exp(-3 * (x - 0.25) * (x - 0.25) / 0.3)
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// zipf returns a normalized Zipf(s) distribution over n ranks.
func zipf(n int, s float64) []float64 {
	p := make([]float64, n)
	var sum float64
	for i := range p {
		p[i] = 1 / math.Pow(float64(i+1), s)
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// logNormalish returns a right-skewed distribution over n buckets shaped
// like a discretized log-normal.
func logNormalish(n int) []float64 {
	p := make([]float64, n)
	var sum float64
	const mu, sd = 1.1, 0.7
	for i := range p {
		x := math.Log(float64(i) + 1.5)
		p[i] = math.Exp(-(x-mu)*(x-mu)/(2*sd*sd)) / (float64(i) + 1.5)
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// incomeAgeAffinity gives a bump when the bucket positions of age and the
// second attribute co-vary (prime-age ↔ upper-middle values).
func incomeAgeAffinity(a, b, na, nb int) float64 {
	x := float64(a)/float64(na-1) - 0.45
	y := float64(b)/float64(nb-1) - 0.55
	return math.Exp(-(x*x + y*y) / 0.18)
}

// apportion converts unnormalized probabilities into integral counts
// summing exactly to total, using largest-remainder rounding (deterministic
// — no RNG, so dataset construction is reproducible by construction).
func apportion(probs []float64, sum float64, total int) []float64 {
	x := make([]float64, len(probs))
	type frac struct {
		i int
		f float64
	}
	rem := total
	fracs := make([]frac, len(probs))
	for i, p := range probs {
		exact := float64(total) * p / sum
		fl := math.Floor(exact)
		x[i] = fl
		rem -= int(fl)
		fracs[i] = frac{i, exact - fl}
	}
	// Selection of the rem largest fractional parts (simple partial sort —
	// len(probs) is at most a few thousand).
	for k := 0; k < rem; k++ {
		best := -1
		bestF := -1.0
		for j := range fracs {
			if fracs[j].f > bestF {
				bestF = fracs[j].f
				best = j
			}
		}
		x[fracs[best].i]++
		fracs[best].f = -2
	}
	return x
}

// hash01 maps an integer to a deterministic pseudo-random value in [0,1).
func hash01(i int) float64 {
	h := uint64(i)*0x9e3779b97f4a7c15 + 0x123456789abcdef
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h%1_000_000) / 1_000_000
}
