package obs

import (
	"sync"
	"testing"
	"time"
)

// TestTraceSpans: spans are offsets from the trace start, ordered as
// recorded, and Finish stamps status + total duration.
func TestTraceSpans(t *testing.T) {
	tr := NewTrace("answer", "parent123")
	if len(tr.ID) != 16 {
		t.Fatalf("trace ID %q is not 16 hex digits", tr.ID)
	}
	t0 := time.Now()
	tr.AddSpan("noise", t0)
	tr.AddSpanRange("infer", t0, t0.Add(time.Millisecond))
	tr.Finish(200)
	if tr.Status != 200 || tr.Duration <= 0 {
		t.Fatalf("Finish left status=%d duration=%v", tr.Status, tr.Duration)
	}
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "noise" || spans[1].Name != "infer" {
		t.Fatalf("spans = %+v", spans)
	}
	if d := spans[1].End - spans[1].Start; d != time.Millisecond {
		t.Fatalf("explicit span width = %v, want 1ms", d)
	}
	if spans[0].Start < 0 || spans[0].End < spans[0].Start {
		t.Fatalf("span offsets not monotone: %+v", spans[0])
	}
}

// TestTraceNilSafe: every method is a no-op on a nil trace, so
// optional tracing threads through the hot path without branches.
func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.AddSpan("x", time.Now())
	tr.AddSpanRange("y", time.Now(), time.Now())
	tr.Finish(500)
	if tr.Spans() != nil {
		t.Fatal("nil trace returned spans")
	}
	var ring *TraceRing
	ring.Put(NewTrace("r", ""))
	if ring.Snapshot() != nil || ring.Len() != 0 {
		t.Fatal("nil ring is not inert")
	}
}

// TestTraceIDsUnique: the Weyl sequence never repeats within any
// realistic window, including under concurrency.
func TestTraceIDsUnique(t *testing.T) {
	const perG, gs = 1000, 8
	seen := make(map[string]bool, perG*gs)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]string, perG)
			for i := range ids {
				ids[i] = NewTraceID()
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate trace ID %s", id)
					return
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

// TestTraceRingBoundedNewestFirst: the ring keeps exactly the last N
// finished traces and snapshots them newest-first.
func TestTraceRingBoundedNewestFirst(t *testing.T) {
	ring := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		tr := NewTrace("answer", "")
		tr.Finish(200 + i)
		ring.Put(tr)
	}
	snap := ring.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d traces, want 4", len(snap))
	}
	for i, tr := range snap {
		if want := 209 - i; tr.Status != want {
			t.Fatalf("snapshot[%d].Status = %d, want %d (newest first)", i, tr.Status, want)
		}
	}
	if ring.Len() != 10 {
		t.Fatalf("Len = %d, want 10", ring.Len())
	}
}

// TestTraceRingRace: concurrent Put + Snapshot + span writes while a
// reader walks spans — the -race half of the trace contract.
func TestTraceRingRace(t *testing.T) {
	ring := NewTraceRing(16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					tr := NewTrace("release", "")
					tr.AddSpan("noise", tr.Begin())
					tr.Finish(200)
					ring.Put(tr)
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, tr := range ring.Snapshot() {
						_ = tr.Spans()
						_ = tr.Duration
					}
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}
