package obs

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// textBufPool recycles the scratch buffer the encoder renders into, in
// the same pooled-buffer discipline as the release JSON encoder: the
// scrape path should not pay a fresh multi-kilobyte allocation per
// poll.
var textBufPool = sync.Pool{New: func() any { return make([]byte, 0, 16<<10) }}

const maxPooledTextBuf = 1 << 20

// WriteText renders the registry as a Prometheus text exposition
// (version 0.0.4): families sorted by name, each with # HELP and
// # TYPE headers, histogram series expanded to cumulative _bucket,
// _sum and _count lines. Collect-at-scrape families run their
// callback under the registry lock.
func (r *Registry) WriteText(w io.Writer) error {
	buf := textBufPool.Get().([]byte)[:0]
	r.mu.Lock()
	names := make([]string, 0, len(r.families)+1)
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		buf = appendFamily(buf, r.families[name])
	}
	buf = appendHeader(buf, "am_obs_dropped_series_total",
		"Series registrations refused by the per-family cardinality cap.", KindCounter)
	buf = append(buf, "am_obs_dropped_series_total "...)
	buf = strconv.AppendInt(buf, r.dropped.Value(), 10)
	buf = append(buf, '\n')
	r.mu.Unlock()
	_, err := w.Write(buf)
	if cap(buf) <= maxPooledTextBuf {
		textBufPool.Put(buf[:0])
	}
	return err
}

func appendHeader(buf []byte, name, help string, kind Kind) []byte {
	buf = append(buf, "# HELP "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = appendEscapedHelp(buf, help)
	buf = append(buf, "\n# TYPE "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = append(buf, kind.String()...)
	buf = append(buf, '\n')
	return buf
}

func appendFamily(buf []byte, f *family) []byte {
	buf = appendHeader(buf, f.name, f.help, f.kind)
	if f.collect != nil {
		emitted := 0
		f.collect(func(v float64, labels ...Label) {
			if emitted >= maxSeriesPerFamily {
				return
			}
			emitted++
			buf = appendSample(buf, f.name, "", labels, Label{}, v)
		})
		return buf
	}
	for _, s := range f.series {
		switch f.kind {
		case KindCounter:
			if s.c != nil {
				buf = appendIntSample(buf, f.name, s.labels, s.c.Value())
			}
		case KindGauge:
			if s.g != nil {
				buf = appendIntSample(buf, f.name, s.labels, s.g.Value())
			}
		case KindHistogram:
			if s.h != nil {
				buf = appendHistogram(buf, f.name, s.labels, s.h)
			}
		}
	}
	return buf
}

func appendHistogram(buf []byte, name string, labels []Label, h *Histogram) []byte {
	counts := h.snapshot()
	var cum int64
	for i, bound := range h.bounds {
		cum += counts[i]
		le := Label{Name: "le", Value: formatLE(bound)}
		buf = appendSample(buf, name, "_bucket", labels, le, float64(cum))
	}
	cum += counts[len(h.bounds)]
	buf = appendSample(buf, name, "_bucket", labels, Label{Name: "le", Value: "+Inf"}, float64(cum))
	buf = appendSample(buf, name, "_sum", labels, Label{}, h.Sum())
	buf = appendIntSampleSuffix(buf, name, "_count", labels, cum)
	return buf
}

func formatLE(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func appendIntSample(buf []byte, name string, labels []Label, v int64) []byte {
	return appendIntSampleSuffix(buf, name, "", labels, v)
}

func appendIntSampleSuffix(buf []byte, name, suffix string, labels []Label, v int64) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	buf = appendLabels(buf, labels, Label{})
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, v, 10)
	buf = append(buf, '\n')
	return buf
}

func appendSample(buf []byte, name, suffix string, labels []Label, extra Label, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	buf = appendLabels(buf, labels, extra)
	buf = append(buf, ' ')
	buf = appendValue(buf, v)
	buf = append(buf, '\n')
	return buf
}

func appendValue(buf []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(buf, "+Inf"...)
	case math.IsInf(v, -1):
		return append(buf, "-Inf"...)
	case math.IsNaN(v):
		return append(buf, "NaN"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

func appendLabels(buf []byte, labels []Label, extra Label) []byte {
	if len(labels) == 0 && extra.Name == "" {
		return buf
	}
	buf = append(buf, '{')
	first := true
	for _, l := range labels {
		buf = appendOneLabel(buf, l, &first)
	}
	if extra.Name != "" {
		buf = appendOneLabel(buf, extra, &first)
	}
	buf = append(buf, '}')
	return buf
}

func appendOneLabel(buf []byte, l Label, first *bool) []byte {
	if !*first {
		buf = append(buf, ',')
	}
	*first = false
	buf = append(buf, l.Name...)
	buf = append(buf, '=', '"')
	for i := 0; i < len(l.Value); i++ {
		switch c := l.Value[i]; c {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '"':
			buf = append(buf, '\\', '"')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, c)
		}
	}
	buf = append(buf, '"')
	return buf
}

func appendEscapedHelp(buf []byte, help string) []byte {
	for i := 0; i < len(help); i++ {
		switch c := help[i]; c {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, c)
		}
	}
	return buf
}

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is the parsed form of a Prometheus text page: the sample
// list in page order plus the declared family types.
type Exposition struct {
	Samples []Sample
	Types   map[string]string
}

// Value returns the value of the first sample matching name and all
// given label pairs (pairs = name, value, name, value, ...), and
// whether such a sample exists.
func (e *Exposition) Value(name string, pairs ...string) (float64, bool) {
	if len(pairs)%2 != 0 {
		return 0, false
	}
next:
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		for i := 0; i+1 < len(pairs); i += 2 {
			if s.Labels[pairs[i]] != pairs[i+1] {
				continue next
			}
		}
		return s.Value, true
	}
	return 0, false
}

// ParseText parses a Prometheus text exposition (the subset WriteText
// emits: # HELP / # TYPE comments, then `name{l="v",...} value`
// lines). It validates that every sample belongs to a family with a
// declared TYPE (allowing the _bucket/_sum/_count suffixes of a
// declared histogram) — the format check the CI bench-smoke job runs
// against a live scrape.
func ParseText(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				exp.Types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if familyType(exp.Types, s.Name) == "" {
			return nil, fmt.Errorf("line %d: sample %s has no declared # TYPE", lineNo, s.Name)
		}
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

// familyType resolves a sample name to its declared family type,
// stripping histogram suffixes.
func familyType(types map[string]string, name string) string {
	if t, ok := types[name]; ok {
		return t
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if ok && types[base] == "histogram" {
			return "histogram"
		}
	}
	return ""
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 && brace < strings.IndexByte(rest+" ", ' ') {
		nameEnd = brace
	} else {
		nameEnd = strings.IndexByte(rest, ' ')
		if nameEnd < 0 {
			return s, errors.New("no value field")
		}
	}
	s.Name = rest[:nameEnd]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q", rest)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {name="value",...} block starting at rest[0]
// and returns the index one past the closing brace.
func parseLabels(rest string, out map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		for i < len(rest) && (rest[i] == ',' || rest[i] == ' ') {
			i++
		}
		if i < len(rest) && rest[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(rest[i:], '=')
		if eq < 0 {
			return 0, errors.New("unterminated label block")
		}
		name := rest[i : i+eq]
		if !validName(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(rest) || rest[i] != '"' {
			return 0, errors.New("label value is not quoted")
		}
		i++
		var val strings.Builder
		for {
			if i >= len(rest) {
				return 0, errors.New("unterminated label value")
			}
			c := rest[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(rest) {
					return 0, errors.New("dangling escape in label value")
				}
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(rest[i+1])
				default:
					return 0, fmt.Errorf("bad escape \\%c", rest[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		out[name] = val.String()
	}
}
