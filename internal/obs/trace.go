package obs

import (
	"crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one named stage of a trace, stored as monotonic offsets from
// the trace start so spans from concurrent goroutines order cleanly.
type Span struct {
	Name  string
	Start time.Duration
	End   time.Duration
}

// Trace is the flight record of one release (or one worker-side shard
// call): an ID, the parent ID when the work was fanned out from a
// coordinator (propagated via the X-AM-Trace header), and per-stage
// spans stamped against one monotonic start time. Traces are opt-in
// per request — the always-on instrumentation is metrics-only — so a
// trace may allocate freely without disturbing the zero-alloc release
// pins.
type Trace struct {
	ID       string
	Parent   string
	Route    string
	Status   int
	Duration time.Duration

	begin time.Time
	mu    sync.Mutex
	spans []Span
}

// traceIDState is a Weyl-sequence generator seeded once from the
// CSPRNG: IDs are unique per process and unpredictable across
// processes without taking a lock or an allocation beyond the ID
// string itself.
var traceIDState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		traceIDState.Store(binary.LittleEndian.Uint64(seed[:]))
	}
}

// NewTraceID returns a fresh 16-hex-digit trace ID.
func NewTraceID() string {
	n := traceIDState.Add(0x9e3779b97f4a7c15)
	const hexdigits = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hexdigits[n&0xf]
		n >>= 4
	}
	return string(buf[:])
}

// NewTrace starts a trace for the given route. parent is the upstream
// trace ID ("" at the request origin).
func NewTrace(route, parent string) *Trace {
	return &Trace{ID: NewTraceID(), Parent: parent, Route: route, begin: time.Now()}
}

// Begin returns the trace's monotonic start time; stage code captures
// time.Now() against it.
func (t *Trace) Begin() time.Time { return t.begin }

// AddSpan records a span from start until now. Safe for concurrent use
// (per-shard spans land from fan-out goroutines). No-op on a nil
// trace so call sites can thread an optional trace without branching.
func (t *Trace) AddSpan(name string, start time.Time) {
	if t == nil {
		return
	}
	t.AddSpanRange(name, start, time.Now())
}

// AddSpanRange records a span with an explicit end time.
func (t *Trace) AddSpanRange(name string, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start.Sub(t.begin), End: end.Sub(t.begin)})
	t.mu.Unlock()
}

// Finish stamps the total duration and terminal status. It must be
// called before the trace is Put into a ring.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	t.Status = status
	t.Duration = time.Since(t.begin)
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	return out
}

// TraceRing is a bounded lock-free ring of finished traces: writers
// claim a slot with one atomic add and store a pointer, readers
// snapshot without blocking writers. When the ring wraps, the oldest
// trace is overwritten — the ring is a flight recorder, not an
// archive.
type TraceRing struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

// NewTraceRing builds a ring holding the most recent n traces.
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{slots: make([]atomic.Pointer[Trace], n)}
}

// Put records a finished trace. No-op on a nil ring or nil trace.
func (r *TraceRing) Put(t *Trace) {
	if r == nil || t == nil {
		return
	}
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

// Len reports how many traces have ever been put (not the current
// occupancy).
func (r *TraceRing) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Snapshot returns the resident traces newest-first.
func (r *TraceRing) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	n := r.next.Load()
	size := uint64(len(r.slots))
	out := make([]*Trace, 0, len(r.slots))
	for off := uint64(0); off < size && off < n; off++ {
		t := r.slots[(n-1-off)%size].Load()
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}
