// Package obs is the engine's dependency-free observability core: a
// metrics registry (counters, gauges, fixed-bucket histograms) whose
// record operations are single atomic instructions — safe inside the
// pinned zero-allocation release path — plus a Prometheus text
// exposition encoder (text.go), a small exposition parser for
// harnesses, and a bounded per-release trace ring (trace.go).
//
// Cardinality is a first-class constraint: every series is registered
// up front with a fixed label set, a family refuses new series past a
// hard cap (counted in am_obs_dropped_series_total), and the amlint
// obscard analyzer enforces compile-time-constant metric names and
// label values at every registration call site.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value pair of a metric series. Label values must
// come from a bounded set fixed at registration time; the registry has
// no concept of recording "with" ad-hoc labels.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label at a registration site.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Kind discriminates the three series types of a family.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing integer. The zero value is
// ready to use, detached from any registry; Registry.RegisterCounter
// adopts an existing counter so one value can back both an internal
// stats API and the /metrics exposition.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the exposition to stay
// monotone; this is not checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer that can go up and down. The zero value is ready
// to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Observe is lock-free and
// allocation-free: one binary search over the (immutable) bounds, one
// atomic bucket increment, one CAS loop for the float sum.
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf last
	counts []atomic.Int64
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// DefTimeBuckets is the default latency bucket layout, in seconds,
// spanning 10µs to 10s — wide enough for an in-memory release on one
// end and a cold sharded design on the other.
var DefTimeBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// NewHistogram builds a detached histogram over the given ascending
// bucket upper bounds (a trailing +Inf bucket is implicit). The bounds
// slice is copied. Panics if bounds are empty or not strictly
// ascending — histogram construction is a startup-time act.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if !(b[i] > b[i-1]) {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) => +Inf
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0, in seconds.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot copies the per-bucket (non-cumulative) counts.
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q < 1) by linear
// interpolation inside the bucket holding the target rank, the same
// estimate a Prometheus histogram_quantile() would produce. Returns
// NaN when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	return BucketQuantile(q, h.bounds, h.snapshot())
}

// BucketQuantile computes the interpolated q-quantile of a fixed-bucket
// histogram given the ascending bucket upper bounds and per-bucket
// (non-cumulative) counts, where len(counts) == len(bounds)+1 and the
// final count is the +Inf bucket. It is exported so harnesses (ambench)
// can derive tail latencies from a scraped exposition.
func BucketQuantile(q float64, bounds []float64, counts []int64) float64 {
	if len(counts) != len(bounds)+1 {
		return math.NaN()
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || q <= 0 || q >= 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(bounds) {
			// Target falls in the +Inf bucket: the best point
			// estimate is the largest finite bound.
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi
		}
		within := rank - float64(cum-c)
		return lo + (hi-lo)*(within/float64(c))
	}
	return bounds[len(bounds)-1]
}

// series is one labeled instance inside a family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    Kind
	bounds  []float64
	series  []*series
	byKey   map[string]*series
	collect func(emit func(v float64, labels ...Label))
}

// maxSeriesPerFamily bounds the series count of any one family. A
// family that hits the cap stops admitting new series (recorded in
// am_obs_dropped_series_total) rather than growing without bound.
const maxSeriesPerFamily = 128

// Registry owns a set of metric families and renders them as a
// Prometheus text exposition. Registration takes a lock and may
// allocate; recording on the returned Counter/Gauge/Histogram values
// never does either.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	dropped  Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// DroppedSeries reports how many series registrations were refused by
// the per-family cardinality cap.
func (r *Registry) DroppedSeries() int64 { return r.dropped.Value() }

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func labelKey(labels []Label) string {
	key := ""
	for _, l := range labels {
		key += l.Name + "\x01" + l.Value + "\x02"
	}
	return key
}

// ensureFamily fetches or creates the family, panicking on a
// name/kind/help conflict — registration is startup-time and a
// conflict is a programming error the tests must catch.
func (r *Registry) ensureFamily(name, help string, kind Kind, bounds []float64) *family {
	if !validName(name) {
		panic("obs: invalid metric name " + name)
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, byKey: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic("obs: metric " + name + " re-registered with a different kind")
	}
	return f
}

// register adds (or finds) a series under name with the given labels.
func (r *Registry) register(name, help string, kind Kind, bounds []float64, labels []Label) *series {
	for _, l := range labels {
		if !validName(l.Name) {
			panic("obs: invalid label name " + l.Name + " on metric " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.ensureFamily(name, help, kind, bounds)
	key := labelKey(labels)
	if s, ok := f.byKey[key]; ok {
		return s
	}
	if len(f.series) >= maxSeriesPerFamily {
		r.dropped.Inc()
		return nil
	}
	owned := make([]Label, len(labels))
	copy(owned, labels)
	s := &series{labels: owned}
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s
}

// Counter registers (or fetches) a counter series. Past the family
// cardinality cap it returns a detached counter so call sites keep
// working; the refusal is visible in am_obs_dropped_series_total.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, KindCounter, nil, labels)
	if s == nil {
		return new(Counter)
	}
	if s.c == nil {
		s.c = new(Counter)
	}
	return s.c
}

// RegisterCounter adopts an existing counter as the series value, so
// one atomic backs both an internal stats API and the exposition. If
// the series already exists its current counter wins (and is
// returned); callers should use the returned pointer.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) *Counter {
	s := r.register(name, help, KindCounter, nil, labels)
	if s == nil {
		return c
	}
	if s.c == nil {
		s.c = c
	}
	return s.c
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, KindGauge, nil, labels)
	if s == nil {
		return new(Gauge)
	}
	if s.g == nil {
		s.g = new(Gauge)
	}
	return s.g
}

// Histogram registers (or fetches) a histogram series over the given
// bucket bounds. All series of one family share the first-registered
// bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.register(name, help, KindHistogram, bounds, labels)
	if s == nil {
		return NewHistogram(bounds)
	}
	if s.h == nil {
		r.mu.Lock()
		fb := r.families[name].bounds
		r.mu.Unlock()
		s.h = NewHistogram(fb)
	}
	return s.h
}

// GaugeFunc registers a collect-at-scrape gauge family: fn runs during
// every exposition and emits zero or more labeled samples. It is the
// bridge for values that live elsewhere (accountant budgets, fleet
// worker health, queue depths) — the emitter caps the sample count at
// the family cardinality bound and counts overflow as dropped series.
func (r *Registry) GaugeFunc(name, help string, fn func(emit func(v float64, labels ...Label))) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.ensureFamily(name, help, KindGauge, nil)
	f.collect = fn
}
