package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecordZeroAlloc is the allocation regression pin for the metric
// primitives: the instrumentation rides inside the pinned zero-alloc
// release hot path, so recording on a counter, gauge or histogram must
// not allocate once the series is registered.
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("am_test_total", "test counter", L("route", "answer"))
	g := r.Gauge("am_test_gauge", "test gauge")
	h := r.Histogram("am_test_seconds", "test histogram", DefTimeBuckets)
	t0 := time.Now()
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(7)
		g.Add(-1)
		h.Observe(0.003)
		h.ObserveSince(t0)
	}); allocs != 0 {
		t.Fatalf("recording allocates %v per run, want 0", allocs)
	}
}

// TestCounterGaugeValues checks the trivial read-back contracts.
func TestCounterGaugeValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("am_v_total", "v")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("am_v_total", "v"); again != c {
		t.Fatal("re-registering the same series returned a different counter")
	}
	g := r.Gauge("am_v_gauge", "v")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

// TestRegisterCounterAdopts pins the single-source contract the fleet
// counters rely on: adopting an existing counter makes that same
// atomic visible in the exposition, and a second adoption of the same
// series returns the first counter.
func TestRegisterCounterAdopts(t *testing.T) {
	r := NewRegistry()
	ext := new(Counter)
	got := r.RegisterCounter("am_adopt_total", "adopted", ext)
	if got != ext {
		t.Fatal("RegisterCounter did not adopt the provided counter")
	}
	ext.Add(41)
	ext.Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("am_adopt_total"); !ok || v != 42 {
		t.Fatalf("exposition has am_adopt_total = %v (ok=%v), want 42", v, ok)
	}
	other := new(Counter)
	if got := r.RegisterCounter("am_adopt_total", "adopted", other); got != ext {
		t.Fatal("second adoption of the same series did not return the original counter")
	}
}

// TestHistogramQuantile checks the interpolated quantile against a
// uniform fill: 1000 samples spread evenly over (0, 1] should put p50
// near 0.5 and p99 near 0.99.
func TestHistogramQuantile(t *testing.T) {
	bounds := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	h := NewHistogram(bounds)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	if s := h.Sum(); math.Abs(s-500.5) > 1e-9 {
		t.Fatalf("sum = %v, want 500.5", s)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 0.5, 0.01},
		{0.95, 0.95, 0.01},
		{0.99, 0.99, 0.01},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%v = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
	if !math.IsNaN(NewHistogram(bounds).Quantile(0.5)) {
		t.Error("quantile of an empty histogram is not NaN")
	}
	// Values past the last bound land in +Inf and clamp to the last
	// finite bound.
	h2 := NewHistogram([]float64{1, 2})
	for i := 0; i < 10; i++ {
		h2.Observe(100)
	}
	if got := h2.Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %v, want 2", got)
	}
}

// TestSeriesCapDropped: a family past maxSeriesPerFamily refuses new
// series, counts the refusal, and still hands back a usable value.
func TestSeriesCapDropped(t *testing.T) {
	r := NewRegistry()
	var last *Counter
	for i := 0; i < maxSeriesPerFamily+5; i++ {
		last = r.Counter("am_capped_total", "capped", L("v", string(rune('a'+i%26))+string(rune('a'+i/26)))) //lint:allow obscard cardinality-cap test deliberately registers dynamic label values
	}
	if last == nil {
		t.Fatal("over-cap registration returned nil")
	}
	last.Inc() // must not panic
	if d := r.DroppedSeries(); d != 5 {
		t.Fatalf("dropped series = %d, want 5", d)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("am_obs_dropped_series_total"); !ok || v != 5 {
		t.Fatalf("am_obs_dropped_series_total = %v (ok=%v), want 5", v, ok)
	}
}

// TestWriteTextParseRoundTrip registers one family of each kind (plus
// a collect-at-scrape family), renders the exposition and re-parses
// it — the parser validation is the same check the CI bench-smoke job
// performs against a live scrape.
func TestWriteTextParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("am_rt_requests_total", "requests", L("route", "answer"), L("code", "2xx"))
	c.Add(3)
	g := r.Gauge("am_rt_in_flight", "in flight")
	g.Set(2)
	h := r.Histogram("am_rt_seconds", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.004)
	h.Observe(0.05)
	h.Observe(7)
	r.GaugeFunc("am_rt_budget", "per-dataset budget", func(emit func(v float64, labels ...Label)) {
		emit(0.25, L("dataset", "med\"ical\n"))
		emit(0.75, L("dataset", "census"))
	})

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	page := sb.String()
	exp, err := ParseText(strings.NewReader(page))
	if err != nil {
		t.Fatalf("self-emitted exposition does not parse: %v\n%s", err, page)
	}
	if got := exp.Types["am_rt_seconds"]; got != "histogram" {
		t.Fatalf("am_rt_seconds TYPE = %q, want histogram", got)
	}
	if v, ok := exp.Value("am_rt_requests_total", "route", "answer", "code", "2xx"); !ok || v != 3 {
		t.Fatalf("counter sample = %v (ok=%v), want 3", v, ok)
	}
	if v, ok := exp.Value("am_rt_in_flight"); !ok || v != 2 {
		t.Fatalf("gauge sample = %v (ok=%v), want 2", v, ok)
	}
	if v, ok := exp.Value("am_rt_seconds_bucket", "le", "0.01"); !ok || v != 1 {
		t.Fatalf("le=0.01 bucket = %v (ok=%v), want cumulative 1", v, ok)
	}
	if v, ok := exp.Value("am_rt_seconds_bucket", "le", "+Inf"); !ok || v != 3 {
		t.Fatalf("+Inf bucket = %v (ok=%v), want 3", v, ok)
	}
	if v, ok := exp.Value("am_rt_seconds_count"); !ok || v != 3 {
		t.Fatalf("_count = %v (ok=%v), want 3", v, ok)
	}
	if v, ok := exp.Value("am_rt_seconds_sum"); !ok || math.Abs(v-7.054) > 1e-9 {
		t.Fatalf("_sum = %v (ok=%v), want 7.054", v, ok)
	}
	if v, ok := exp.Value("am_rt_budget", "dataset", "med\"ical\n"); !ok || v != 0.25 {
		t.Fatalf("escaped label round-trip = %v (ok=%v), want 0.25", v, ok)
	}
}

// TestParseTextRejectsMalformed: samples without a declared TYPE, bad
// values and broken label blocks are parse errors, not silence.
func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"am_untyped_total 3\n",
		"# TYPE am_x counter\nam_x notanumber\n",
		"# TYPE am_x counter\nam_x{l=\"unterminated 3\n",
		"# TYPE am_x counter\nam_x{9bad=\"v\"} 3\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText accepted malformed input %q", bad)
		}
	}
}

// TestBucketQuantileFromParsedPage is the ambench path end to end:
// scrape a histogram, rebuild per-bucket counts from the cumulative
// _bucket samples, and recover the quantile.
func TestBucketQuantileFromParsedPage(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{0.01, 0.1, 1}
	h := r.Histogram("am_bq_seconds", "bq", bounds)
	for i := 0; i < 90; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, len(bounds)+1)
	var prev float64
	for i, b := range bounds {
		v, ok := exp.Value("am_bq_seconds_bucket", "le", formatLE(b))
		if !ok {
			t.Fatalf("missing bucket le=%v", b)
		}
		counts[i] = int64(v - prev)
		prev = v
	}
	inf, _ := exp.Value("am_bq_seconds_bucket", "le", "+Inf")
	counts[len(bounds)] = int64(inf - prev)
	p99 := BucketQuantile(0.99, bounds, counts)
	if p99 < 0.1 || p99 > 1 {
		t.Fatalf("parsed p99 = %v, want within (0.1, 1]", p99)
	}
}

// TestRegistryRace hammers registration, recording, collect callbacks
// and scrapes concurrently; run under -race this is the concurrency
// contract for the whole registry.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("am_race_total", "race")
	h := r.Histogram("am_race_seconds", "race", DefTimeBuckets)
	r.GaugeFunc("am_race_gauge", "race", func(emit func(v float64, labels ...Label)) {
		emit(float64(c.Value()))
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.001)
					_ = h.Quantile(0.5)
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					var sb strings.Builder
					if err := r.WriteText(&sb); err != nil {
						t.Error(err)
						return
					}
					if _, err := ParseText(strings.NewReader(sb.String())); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}
