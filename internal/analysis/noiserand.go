// The noiserand analyzer. PR 2 shipped the engine's worst bug class:
// release noise seeded from a predictable counter, making every "random"
// release reproducible by anyone who could guess the seed — the noise
// can be subtracted and the exact data recovered at nominal ε cost.
// The fix was the NoiseSource abstraction over a crypto-keyed stream;
// this analyzer makes the fix permanent by forbidding math/rand (and
// wall-clock seeding) in the packages that draw or route release noise.

package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// NoiseProductionPrefixes are the import-path prefixes where release
// noise is drawn or routed: only NoiseSource implementations (with a
// documented //lint:allow) may touch math/rand there. Tests, examples
// and benchmark drivers are exempt — deterministic streams are the point
// of those.
var NoiseProductionPrefixes = []string{
	"adaptivemm/internal/mm",
	"adaptivemm/internal/server",
	"adaptivemm/internal/planner",
}

// noiseExemptPrefixes are never production noise code even when nested
// under a production prefix in a fixture tree.
var noiseExemptPrefixes = []string{
	"adaptivemm/examples/",
	"adaptivemm/cmd/ambench",
}

// NoiseRand forbids math/rand and time-derived seeding in production
// noise packages.
var NoiseRand = &Analyzer{
	Name: "noiserand",
	Doc: "forbid math/rand and wall-clock seeding where release noise is drawn: " +
		"noise must come from a CSPRNG-backed NoiseSource (predictable noise = recoverable data)",
	Run: runNoiseRand,
}

func noiseProduction(path string) bool {
	for _, ex := range noiseExemptPrefixes {
		if path == strings.TrimSuffix(ex, "/") || strings.HasPrefix(path, ex) {
			return false
		}
	}
	for _, p := range NoiseProductionPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runNoiseRand(pass *Pass) error {
	if !noiseProduction(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"%s imported in production noise package %s: draw release noise from a NoiseSource (mm.NewCryptoSeededSource); math/rand streams are enumerable",
					path, pass.Pkg.Path())
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !callNameSuggestsSeeding(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if pos, ok := findWallClock(pass, arg); ok {
					pass.Reportf(pos,
						"wall-clock-derived seed: time.Now-based seeding makes the noise stream predictable to anyone who can guess the timestamp; use crypto/rand entropy")
				}
			}
			return true
		})
	}
	return nil
}

// callNameSuggestsSeeding reports whether the call installs a seed or
// constructs a randomness source (NewSource, Seed, WithSeed, ...).
func callNameSuggestsSeeding(pass *Pass, call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "seed") || strings.Contains(lower, "source")
}

// findWallClock finds a call to time.Now (or a Unix* conversion of one)
// inside e.
func findWallClock(pass *Pass, e ast.Expr) (token.Pos, bool) {
	var found ast.Node
	ast.Inspect(e, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || found != nil {
			return true
		}
		if obj := calleeObj(pass.TypesInfo, call); obj != nil && isPkgFunc(obj, "time", "Now") {
			found = call
			return false
		}
		return true
	})
	if found == nil {
		return token.NoPos, false
	}
	return found.Pos(), true
}
