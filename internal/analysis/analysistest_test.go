// The fixture runner: the analysis suite's equivalent of
// golang.org/x/tools/go/analysis/analysistest. Fixture packages live
// under testdata/src/<import path>/ (GOPATH-style, served through the
// loader's Overlay so a fixture can sit at a path the analyzers treat as
// production, e.g. adaptivemm/internal/mm/badnoise) and annotate the
// lines where diagnostics are expected:
//
//	rand.New(rand.NewSource(...)) // want `wall-clock-derived seed`
//
// Each backquoted or double-quoted string after "want" is a regexp that
// must match exactly one diagnostic on that line; diagnostics without a
// matching want, and wants without a matching diagnostic, fail the test.
// Fixtures import the real production packages (accountant, mm), so they
// also prove the acceptance criterion directly: re-introducing PR 2's
// math/rand seeding or leaking a reservation fails the lint build.

package analysis

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// fixtureLoader is shared across fixture tests so the production packages
// and their standard-library dependencies type-check once per test run.
var fixtureLoader = sync.OnceValues(func() (*Loader, error) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		return nil, err
	}
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	overlay, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		return nil, err
	}
	l.Overlay = overlay
	return l, nil
})

// expectation is one quoted regexp from a // want comment.
type expectation struct {
	re      *regexp.Regexp
	text    string
	matched bool
}

// wantArg matches one backquoted or double-quoted string.
var wantArg = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses the // want comments of the fixture package into a
// (file base name, line) → expectations map.
func collectWants(t *testing.T, pkg *Package) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := wantKey(pos.Filename, pos.Line)
				args := wantArg.FindAllString(rest, -1)
				if len(args) == 0 {
					t.Errorf("%s: want comment with no quoted pattern", pos)
				}
				for _, a := range args {
					pat := strings.Trim(a, "`")
					if a[0] == '"' {
						unq, err := strconv.Unquote(a)
						if err != nil {
							t.Errorf("%s: bad want pattern %s: %v", pos, a, err)
							continue
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants[key] = append(wants[key], &expectation{re: re, text: pat})
				}
			}
		}
	}
	return wants
}

func wantKey(filename string, line int) string {
	return filepath.Base(filename) + ":" + strconv.Itoa(line)
}

// runFixture loads the fixture package at path and checks the analyzers'
// diagnostics against its // want comments.
func runFixture(t *testing.T, path string, analyzers ...*Analyzer) {
	t.Helper()
	l, err := fixtureLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		exps := wants[wantKey(d.Pos.Filename, d.Pos.Line)]
		found := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, e.text)
			}
		}
	}
}

func TestNoiseRandFixture(t *testing.T) {
	// The fixture sits under the mm production prefix via the overlay: this
	// is exactly PR 2's bug re-introduced, and it must fail the lint build.
	runFixture(t, "adaptivemm/internal/mm/badnoise", NoiseRand)
}

func TestNoiseRandExemptFixture(t *testing.T) {
	// examples/ is exempt: deterministic streams are the point there.
	runFixture(t, "adaptivemm/examples/noiseok", NoiseRand)
}

func TestBudgetSettleFixture(t *testing.T) {
	runFixture(t, "budgetfixture", BudgetSettle)
}

func TestPoolEscapeFixture(t *testing.T) {
	runFixture(t, "poolfixture", PoolEscape)
}

func TestFloatEqFixture(t *testing.T) {
	runFixture(t, "floatfixture", FloatEq)
}

func TestIntoAliasFixture(t *testing.T) {
	runFixture(t, "intofixture", IntoAlias)
}

func TestObsCardFixture(t *testing.T) {
	runFixture(t, "obsfixture", ObsCard)
}

// TestLintAllowFixture pins the escape hatch's exact semantics, which the
// want-comment form cannot express (an allow directive and a want comment
// cannot share a line): a reasoned allow suppresses the finding on its
// line and the line below, a bare allow suppresses nothing and is itself
// a finding, and lintallow findings cannot be allowed away.
func TestLintAllowFixture(t *testing.T) {
	l, err := fixtureLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("lintallowfixture")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{FloatEq})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+":"+strconv.Itoa(d.Pos.Line))
	}
	// Line numbers are pinned by testdata/src/lintallowfixture/lintallow.go:
	// the suppressed comparison (line 9) must be absent, the bare allow
	// (line 12) must report itself, and the comparison it failed to
	// suppress (line 13) plus the unannotated one (line 16) must survive.
	want := []string{"lintallow:12", "floateq:13", "floateq:16"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got diagnostics %v, want %v", got, want)
	}
}
