// The floateq analyzer. The engine's numerical contracts are tolerance
// contracts — CGLS converges to 1e-8, error analyses match to round-off —
// so == and != on floating-point operands are almost always a latent bug:
// they silently become "never equal" after any reordering of a sum.
// The analyzer forbids them outside three deliberate idioms:
//
//   - comparison against an exact-zero constant (sentinel and
//     skip-work checks: `if w == 0 { continue }` is exact arithmetic);
//   - self-comparison (`x != x` is the NaN test);
//   - bodies of named tolerance helpers (FloatEqToleranceFuncs), whose
//     whole point is to implement the comparison once.
//
// Anything else that genuinely wants bit-exact semantics (the float
// emitter's integer fast path, round-trip pinning) documents itself with
// //lint:allow.

package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEqToleranceFuncs names functions allowed to compare floats
// exactly: the tolerance helpers themselves and equality kernels whose
// contract is bit-exactness.
var FloatEqToleranceFuncs = map[string]bool{
	"approxEqual": true,
	"almostEqual": true,
	"withinTol":   true,
	"floatsEqual": true,
}

// FloatEq forbids ==/!= on floating-point operands outside tolerance
// helpers and exact-zero checks.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "no ==/!= on floating-point operands outside tolerance helpers, exact-zero sentinel checks " +
		"and the x != x NaN test; use a tolerance or document exact semantics with //lint:allow",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, f := range pass.Files {
		// Track the enclosing named function so tolerance helpers can be
		// exempted wholesale.
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if FloatEqToleranceFuncs[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloatOperand(pass, be.X) && !isFloatOperand(pass, be.Y) {
					return true
				}
				if isExactZero(pass, be.X) || isExactZero(pass, be.Y) {
					return true
				}
				if exprString(be.X) == exprString(be.Y) {
					return true // x != x: the NaN test
				}
				pass.Reportf(be.OpPos,
					"floating-point %s comparison: use a tolerance, or //lint:allow with why exact equality is correct here",
					be.Op)
				return true
			})
		}
	}
	return nil
}

// isFloatOperand reports whether e has floating-point type (including
// untyped float constants).
func isFloatOperand(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}

// isExactZero reports whether e is a constant with value exactly zero.
func isExactZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float && v.Kind() != constant.Int {
		return false
	}
	return constant.Sign(v) == 0
}
